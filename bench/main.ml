(* Benchmark harness: regenerates every table and figure of the
   reproduction (see DESIGN.md §3 and EXPERIMENTS.md).

   Default mode prints the experiment tables T1-T9 and figures F1-F2 with
   simulated local-step counts — the paper's complexity measure.

   --bechamel additionally runs one Bechamel wall-clock benchmark per
   table/figure (the full experiment as the measured unit) and prints the
   OLS estimate of its execution time.

   --json <file> writes every selected table plus the per-run
   observations (metrics summary, register contention profile, phase-span
   aggregates) as one exsel-bench/1 document — see DESIGN.md §7.

   --perf runs the hot-path microbenchmark suites of bench/perf.ml
   instead of the experiment tables (combine with --json to emit
   BENCH_perf.json, and --baseline to gate against a reference file).

   --conformance runs a small conformance-campaign smoke (every honest
   algorithm adapter under every fault regime, 2 seeds, k = 4) and exits
   1 on any claim violation — the cheap CI gate in front of the full
   seeded campaign of `exsel_cli conformance`.

   --only <ID> restricts any experiment mode to a single experiment. *)

module E = Exsel_harness.Experiments
module Report = Exsel_harness.Report
module Table = Exsel_harness.Table

let experiments = E.all_named

let valid_ids () = String.concat " " (List.map fst experiments)

let selected only =
  match only with
  | None -> experiments
  | Some id -> (
      let id = String.uppercase_ascii id in
      match List.filter (fun (i, _) -> i = id) experiments with
      | [] ->
          Printf.eprintf "unknown experiment id %S; valid ids: %s\n" id
            (valid_ids ());
          exit 2
      | sel -> sel)

let print_tables only =
  List.iter
    (fun (_, f) ->
      let t = f () in
      Table.print t;
      flush stdout)
    (selected only)

let write_json only path =
  let entries = Report.observe (selected only) in
  List.iter (fun e -> Table.print e.Report.table; flush stdout) entries;
  Report.write_file path entries;
  Printf.printf "wrote %s (%d experiments)\n" path (List.length entries)

let run_bechamel only =
  let open Bechamel in
  let tests =
    List.map
      (fun (id, f) -> Test.make ~name:id (Staged.stage (fun () -> ignore (f ()))))
      (selected only)
  in
  let grouped = Test.make_grouped ~name:"exsel" tests in
  let cfg = Benchmark.cfg ~limit:10 ~quota:(Time.second 2.0) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "== Bechamel wall-clock (one benchmark per table/figure) ==\n";
  Printf.printf "%-12s  %14s  %8s\n" "experiment" "time/run" "r^2";
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      let est =
        match Analyze.OLS.estimates v with Some (e :: _) -> e | Some [] | None -> nan
      in
      let r2 = match Analyze.OLS.r_square v with Some r -> r | None -> nan in
      let human =
        if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
        else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
        else Printf.sprintf "%.0f ns" est
      in
      Printf.printf "%-12s  %14s  %8.4f\n" name human r2)
    (List.sort compare rows)

let run_conformance ~json =
  let module C = Exsel_conformance.Campaign in
  let cfg = { C.default with seeds = [ 1; 2 ]; k = 4 } in
  let t0 = Sys.time () in
  let report = C.run cfg in
  Format.printf "%a%!" C.pp_summary report;
  Printf.printf "conformance smoke: %d cells in %.2fs cpu\n"
    (List.length report.C.r_cells)
    (Sys.time () -. t0);
  (match json with
  | Some path ->
      Exsel_obs.Trace_export.write_file path (C.to_json report);
      Printf.printf "wrote %s\n" path
  | None -> ());
  if report.C.r_violations > 0 then exit 1

let usage_text () =
  Printf.sprintf
    "usage: %s [--bechamel | --perf | --conformance] [--json <file>]\n\
    \       %*s [--baseline <file>] [--only <T1..T9|F1|F2|A1..A3|X1..X3|P1..P9>]\n\
    \       %*s [--p7-max-n <n>] [--warmup <k>]\n\n\
     modes (mutually exclusive):\n\
    \  (default)          print the experiment tables\n\
    \  --bechamel         wall-clock one Bechamel benchmark per experiment\n\
    \  --perf             run the hot-path microbenchmarks (DESIGN.md \xc2\xa78)\n\
    \  --conformance      run the conformance-campaign smoke (exit 1 on any\n\
    \                     claim violation)\n\n\
     options:\n\
    \  --json <file>      write results as an exsel-bench/1 JSON document\n\
    \                     (exsel-conformance/1 with --conformance; not\n\
    \                     --bechamel)\n\
    \  --baseline <file>  with --perf: fail (exit 1) if any metric drops\n\
    \                     below half its reference value in <file>\n\
    \  --only <ID>        restrict to one experiment (or, with --perf, one\n\
    \                     perf suite P1..P9).  IDs are case-insensitive:\n\
    \                     they are normalized to upper case before\n\
    \                     matching, so `--only t3` selects T3\n\
    \  --p7-max-n <n>     with --perf: cap the native-suite sweep at n\n\
    \                     contenders (full sweep reaches n=1024; CI smokes\n\
    \                     cap it to stay fast)\n\
    \  --warmup <k>       with --perf: run k throwaway native campaigns per\n\
    \                     P7 cell before the measured one; their cost is\n\
    \                     reported separately, never in the latencies\n\
    \  --help             show this message\n"
    Sys.argv.(0)
    (String.length Sys.argv.(0))
    ""
    (String.length Sys.argv.(0))
    ""

let usage_error msg =
  Printf.eprintf "%s: %s\n%s" Sys.argv.(0) msg (usage_text ());
  exit 2

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse bech perf conf only json baseline p7_max_n warmup = function
    | [] -> (bech, perf, conf, only, json, baseline, p7_max_n, warmup)
    | ("--help" | "-help" | "-h") :: _ ->
        print_string (usage_text ());
        exit 0
    | "--bechamel" :: rest ->
        parse true perf conf only json baseline p7_max_n warmup rest
    | "--perf" :: rest ->
        parse bech true conf only json baseline p7_max_n warmup rest
    | "--conformance" :: rest ->
        parse bech perf true only json baseline p7_max_n warmup rest
    | "--only" :: id :: rest ->
        parse bech perf conf (Some id) json baseline p7_max_n warmup rest
    | "--json" :: path :: rest ->
        parse bech perf conf only (Some path) baseline p7_max_n warmup rest
    | "--baseline" :: path :: rest ->
        parse bech perf conf only json (Some path) p7_max_n warmup rest
    | "--p7-max-n" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n > 0 ->
            parse bech perf conf only json baseline (Some n) warmup rest
        | Some _ | None ->
            usage_error
              (Printf.sprintf "--p7-max-n expects a positive integer (got %S)" v))
    | "--warmup" :: v :: rest -> (
        match int_of_string_opt v with
        | Some k when k >= 0 ->
            parse bech perf conf only json baseline p7_max_n (Some k) rest
        | Some _ | None ->
            usage_error
              (Printf.sprintf "--warmup expects a non-negative integer (got %S)" v))
    | [ ("--only" | "--json" | "--baseline" | "--p7-max-n" | "--warmup") ] as flag
      ->
        usage_error (Printf.sprintf "%s requires an argument" (List.hd flag))
    | arg :: _ -> usage_error (Printf.sprintf "unexpected argument %S" arg)
  in
  let bech, perf, conf, only, json, baseline, p7_max_n, warmup =
    parse false false false None None None None None args
  in
  if (bech && perf) || (bech && conf) || (perf && conf) then
    usage_error "--bechamel, --perf and --conformance are mutually exclusive";
  if bech && json <> None then
    usage_error "--bechamel and --json are mutually exclusive";
  if baseline <> None && not perf then usage_error "--baseline requires --perf";
  if p7_max_n <> None && not perf then usage_error "--p7-max-n requires --perf";
  if warmup <> None && not perf then usage_error "--warmup requires --perf";
  if only <> None && conf then usage_error "--only does not apply to --conformance";
  if perf then Perf.run ~json ~baseline ~only ~p7_max_n ~warmup
  else if conf then run_conformance ~json
  else
    match json with
    | Some path -> write_json only path
    | None -> if bech then run_bechamel only else print_tables only
