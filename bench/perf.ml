(* Performance-regression microbenchmarks (DESIGN.md §8).

   Four suites, each emitted as one table of the exsel-bench/1 document
   written by `bench --perf --json BENCH_perf.json`:

   P1  commit throughput — commits/sec of the simulator commit loop at
       n ∈ {16, 64, 256} processes under the round-robin policy;
   P2  scheduler-policy overhead — commits/sec of the same workload under
       sequential / round-robin / random, isolating decision cost;
   P3  explorer throughput — paths/sec of the rewritten explorer on the
       seed compete/splitter instances, next to the *seed engine*
       (replay-from-root at every DFS node, reproduced below) on the same
       instances, and the resulting speedup;
   P4  explorer pruning statistics — deterministic effort counters
       (replays, sleep-set prunes, state-hash hits/misses) per instance
       and reduction mode, tracked in the JSON but not baseline-gated;
   P5  campaign scaling — wall-clock cells/sec of one conformance
       campaign at -j 1/2/4 domains plus the speedup ratios, and a
       cross-check that every report is byte-identical to -j 1.
       Tracked in the JSON but not baseline-gated: speedup depends on
       the core count of the machine (a 1-core runner time-slices the
       domains and legitimately reports ~1.0x);
   P6  rename latency quantiles — p50/p90/p99/p999 of per-operation
       rename latency (decide − invoke in commit-clock) per algorithm at
       n ∈ {16, 64, 256}, read back from the adapters' ambient
       Exsel_obs.Metrics instrumentation; the deterministic observation
       counts are baseline-gated and the merged registry is embedded in
       the --json document as its exsel-metrics/1 "metrics" field.

   `--baseline <file>` reads `<metric> <reference>` lines and fails (exit
   1) if any measured metric drops below reference/2 — the CI regression
   gate against bench/perf_baseline.txt. *)

module Memory = Exsel_sim.Memory
module Register = Exsel_sim.Register
module Runtime = Exsel_sim.Runtime
module Scheduler = Exsel_sim.Scheduler
module Explore = Exsel_sim.Explore
module Rng = Exsel_sim.Rng
module R = Exsel_renaming
module Table = Exsel_harness.Table
module Report = Exsel_harness.Report

(* Repeat [f] (returning a unit count) until [min_seconds] of CPU time
   elapsed; returns (units/sec, units, seconds). *)
let rate ?(min_seconds = 0.3) f =
  let t0 = Sys.time () in
  let total = ref 0 in
  let iters = ref 0 in
  while Sys.time () -. t0 < min_seconds || !iters = 0 do
    total := !total + f ();
    incr iters
  done;
  let dt = Sys.time () -. t0 in
  let dt = if dt > 0.0 then dt else 1e-9 in
  (float_of_int !total /. dt, !total, dt)

(* --- P1/P2: commit-loop workload --------------------------------------- *)

(* n processes, each alternating a read of a shared register with a write
   to its own — every commit exercises suspend, schedule, resume. *)
let commit_workload n policy =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let shared = Register.create mem ~name:"shared" 0 in
  let own = Array.init n (fun i -> Register.create mem ~name:(string_of_int i) 0) in
  for i = 0 to n - 1 do
    ignore
      (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
           for _ = 1 to 50 do
             let v = Runtime.read shared in
             Runtime.write own.(i) (v + 1)
           done))
  done;
  Scheduler.run rt (policy ());
  Runtime.commits rt

let p1_commit_throughput () =
  let metrics = ref [] in
  let rows =
    List.map
      (fun n ->
        let per_sec, commits, dt =
          rate (fun () -> commit_workload n (fun () -> Scheduler.round_robin ()))
        in
        metrics := (Printf.sprintf "commit_throughput_n%d" n, per_sec) :: !metrics;
        [
          Table.cell_int n;
          Table.cell_int commits;
          Table.cell_float dt;
          Printf.sprintf "%.0f" per_sec;
        ])
      [ 16; 64; 256 ]
  in
  ( Table.make ~id:"P1" ~title:"perf: commit throughput (round-robin)"
      ~header:[ "n"; "commits"; "sec"; "commits/sec" ]
      ~notes:
        [
          "Simulator commit loop: read-shared/write-own, 100 ops per process.";
          "Tracked across PRs; CI fails if a metric halves vs the baseline.";
        ]
      rows,
    List.rev !metrics )

let p2_scheduler_overhead () =
  let n = 64 in
  let metrics = ref [] in
  let policies =
    [
      ("sequential", fun () -> Scheduler.sequential ());
      ("round_robin", fun () -> Scheduler.round_robin ());
      ("random", fun () -> Scheduler.random (Rng.create ~seed:42));
    ]
  in
  let rows =
    List.map
      (fun (name, mk) ->
        let per_sec, commits, dt = rate (fun () -> commit_workload n mk) in
        metrics := (Printf.sprintf "scheduler_%s" name, per_sec) :: !metrics;
        [ name; Table.cell_int commits; Table.cell_float dt; Printf.sprintf "%.0f" per_sec ])
      policies
  in
  ( Table.make ~id:"P2"
      ~title:(Printf.sprintf "perf: scheduler-policy overhead (n=%d)" n)
      ~header:[ "policy"; "commits"; "sec"; "commits/sec" ]
      ~notes:[ "Same workload as P1; differences isolate per-decision policy cost." ]
      rows,
    List.rev !metrics )

(* --- P3: explorer ------------------------------------------------------ *)

let compete_init n () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let c = R.Compete.create mem ~name:"c" in
  let wins = Array.make n false in
  for i = 0 to n - 1 do
    ignore
      (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
           wins.(i) <- R.Compete.compete c ~me:i))
  done;
  ((), rt)

let splitter_init n () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let s = R.Splitter.create mem ~name:"s" in
  for i = 0 to n - 1 do
    ignore
      (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
           ignore (R.Splitter.enter s ~me:i)))
  done;
  ((), rt)

(* The seed explorer engine, reproduced for comparison: re-instantiate the
   runtime and replay the whole prefix at every DFS node (O(depth^2) work
   per path, `prefix @ [x]` appends included). *)
let seed_engine_paths ~init =
  let paths = ref 0 in
  let rec explore prefix =
    let (), rt = init () in
    List.iter (fun pid -> Runtime.commit rt (Runtime.proc_by_pid rt pid)) prefix;
    match Runtime.runnable rt with
    | [] -> incr paths
    | runnable ->
        List.iter (fun p -> explore (prefix @ [ Runtime.pid p ])) runnable
  in
  explore [];
  !paths

let rewritten_paths ~init =
  (Explore.run ~init ~check:(fun () _ -> Ok ()) ()).Explore.paths

let p3_explorer () =
  let metrics = ref [] in
  let instances =
    [ ("compete x3", compete_init 3); ("splitter x2", splitter_init 2) ]
  in
  let speedups = ref [] in
  let rows =
    List.concat_map
      (fun (label, init) ->
        let seed_rate, seed_paths, seed_dt =
          rate (fun () -> seed_engine_paths ~init)
        in
        let new_rate, new_paths, new_dt = rate (fun () -> rewritten_paths ~init) in
        let speedup = new_rate /. seed_rate in
        speedups := speedup :: !speedups;
        let slug =
          String.map (function ' ' -> '_' | c -> c) label
        in
        metrics :=
          (Printf.sprintf "explorer_%s_paths_per_sec" slug, new_rate)
          :: (Printf.sprintf "explorer_%s_seed_paths_per_sec" slug, seed_rate)
          :: !metrics;
        [
          [
            label; "seed engine"; Table.cell_int seed_paths; Table.cell_float seed_dt;
            Printf.sprintf "%.0f" seed_rate; "-";
          ];
          [
            label; "rewritten"; Table.cell_int new_paths; Table.cell_float new_dt;
            Printf.sprintf "%.0f" new_rate; Printf.sprintf "%.2fx" speedup;
          ];
        ])
      instances
  in
  let min_speedup = List.fold_left min infinity !speedups in
  metrics := ("explorer_speedup", min_speedup) :: !metrics;
  ( Table.make ~id:"P3" ~title:"perf: explorer throughput, seed engine vs rewritten"
      ~header:[ "instance"; "engine"; "paths"; "sec"; "paths/sec"; "speedup" ]
      ~notes:
        [
          "Seed engine replays the full prefix at every DFS node; the rewrite";
          "replays once per emitted path.  `explorer_speedup` is the minimum";
          "per-instance ratio and must stay >= 2.";
        ]
      rows,
    List.rev !metrics )

(* --- P4: explorer pruning statistics ----------------------------------- *)

(* Not rates: absolute effort counters from the explorer's stats record,
   exported so the trajectory of pruning effectiveness (how many nodes the
   reductions cut, how much replay work a run costs) is visible across
   PRs.  Counts are deterministic per instance, so they are reported in
   the table and JSON but deliberately kept out of the throughput-style
   baseline gate. *)
let p4_pruning_stats () =
  let metrics = ref [] in
  let cases =
    [
      ("compete x3", "none", `None, compete_init 3);
      ("compete x3", "state_hash", `State_hash, compete_init 3);
      ("splitter x2", "none", `None, splitter_init 2);
      ("splitter x2", "sleep_sets", `Sleep_sets, splitter_init 2);
      ("splitter x3", "sleep_sets", `Sleep_sets, splitter_init 3);
    ]
  in
  let rows =
    List.map
      (fun (label, red_name, reduction, init) ->
        let o = Explore.run ~reduction ~init ~check:(fun () _ -> Ok ()) () in
        let st = o.Explore.stats in
        let slug =
          String.map (function ' ' -> '_' | c -> c) (label ^ "_" ^ red_name)
        in
        metrics :=
          (Printf.sprintf "explorer_%s_paths" slug, float_of_int o.Explore.paths)
          :: (Printf.sprintf "explorer_%s_replays" slug, float_of_int st.Explore.replays)
          :: !metrics;
        [
          label;
          red_name;
          Table.cell_int o.Explore.paths;
          Table.cell_int o.Explore.states;
          Table.cell_int st.Explore.max_depth;
          Table.cell_int st.Explore.replays;
          Table.cell_int st.Explore.sleep_prunes;
          Printf.sprintf "%d/%d" st.Explore.hash_hits st.Explore.hash_misses;
        ])
      cases
  in
  ( Table.make ~id:"P4" ~title:"perf: explorer pruning statistics"
      ~header:
        [ "instance"; "reduction"; "paths"; "states"; "depth"; "replays"; "sleep-prunes"; "hash hit/miss" ]
      ~notes:
        [
          "Effort counters from Explore.run's stats record (deterministic";
          "per instance).  sleep-prunes counts nodes whose every enabled";
          "move was sleeping; hash hit/miss counts memo-table lookups.";
        ]
      rows,
    List.rev !metrics )

(* --- P5: campaign scaling ---------------------------------------------- *)

(* Wall-clock (not CPU-time) measurement: with [jobs > 1] the work is
   spread across domains, so CPU time stays flat while wall time is what
   actually shrinks. *)
let time_wall f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let p5_campaign_scaling () =
  let module C = Exsel_conformance.Campaign in
  let cfg = { C.default with C.seeds = [ 1; 2 ]; k = 4 } in
  let metrics = ref [] in
  let json_of jobs =
    Exsel_obs.Json.to_string (C.to_json (C.run ~jobs cfg))
  in
  let reference = json_of 1 in
  let cells =
    List.length cfg.C.algos * List.length cfg.C.regimes
  in
  let base_rate = ref nan in
  let all_identical = ref true in
  let rows =
    List.map
      (fun jobs ->
        let report, dt = time_wall (fun () -> C.run ~jobs cfg) in
        let identical = json_of jobs = reference in
        all_identical := !all_identical && identical;
        let rate = float_of_int (List.length report.C.r_cells) /. dt in
        if jobs = 1 then base_rate := rate;
        let speedup = rate /. !base_rate in
        metrics :=
          (Printf.sprintf "campaign_cells_per_sec_j%d" jobs, rate)
          :: (if jobs = 1 then []
              else [ (Printf.sprintf "campaign_speedup_j%d" jobs, speedup) ])
          @ !metrics;
        [
          Table.cell_int jobs;
          Table.cell_int (List.length report.C.r_cells);
          Table.cell_float dt;
          Printf.sprintf "%.1f" rate;
          Printf.sprintf "%.2fx" speedup;
          (if identical then "yes" else "NO");
        ])
      [ 1; 2; 4 ]
  in
  if not !all_identical then begin
    prerr_endline "P5: parallel campaign report differs from -j 1";
    exit 1
  end;
  ( Table.make ~id:"P5"
      ~title:
        (Printf.sprintf "perf: campaign scaling (%d cells, seeds=2, k=%d)"
           cells cfg.C.k)
      ~header:[ "jobs"; "cells"; "wall sec"; "cells/sec"; "speedup"; "= -j 1" ]
      ~notes:
        [
          "Wall-clock time of one conformance campaign sharded across";
          "domains (Campaign.run ~jobs).  Speedup tracks the machine's";
          "core count — a 1-core runner reports ~1.0x — so these metrics";
          "are recorded in the JSON but not gated against the baseline.";
          "The `= -j 1` column asserts the exsel-conformance/1 document";
          "is byte-identical across jobs (the bench aborts if not).";
        ]
      rows,
    List.rev !metrics )

(* --- P6: rename latency quantiles -------------------------------------- *)

(* Not a rate: one seeded random-schedule run per (algorithm, n), with
   the per-operation rename-latency histogram (decide − invoke, in
   commits) that the conformance adapters record into the ambient
   Exsel_obs.Metrics registry.  The observation counts are exact —
   under the crash-free schedule every contender renames, so the count
   equals n — and they are baseline-gated: a count of 0 means the
   instrumentation came unwired, which is precisely the regression this
   suite exists to catch.  The quantiles are reported in the table and
   JSON but not gated (they are properties of the algorithms, not of
   this codebase's speed).  The per-run registries merge into one that
   the --json document embeds as its exsel-metrics/1 "metrics" field;
   there the histograms aggregate over n per algorithm, while the per-n
   quantiles live in this table. *)
let p6_latency_quantiles () =
  let module A = Exsel_conformance.Adapter in
  let module Runner = Exsel_conformance.Runner in
  let module M = Exsel_obs.Metrics in
  let merged = M.create () in
  let metrics = ref [] in
  let rows =
    List.concat_map
      (fun algo ->
        let adapter =
          match A.find algo with
          | Some a -> a
          | None ->
              Printf.eprintf "P6: unknown adapter %S\n" algo;
              exit 1
        in
        List.map
          (fun n ->
            let spec = adapter.A.make ~seed:1 ~k:n ~steps_multiple:1.0 in
            let reg = M.create () in
            M.with_ambient reg (fun () ->
                let inst = spec.Runner.init () in
                Scheduler.run inst.Runner.runtime
                  (Scheduler.random (Rng.create ~seed:(0x6e + n)));
                match inst.Runner.check () with
                | Ok () -> ()
                | Error msg ->
                    Printf.eprintf "P6: %s at n=%d violates its claim: %s\n"
                      algo n msg;
                    exit 1);
            let h =
              M.histogram reg "exsel_rename_latency_commits"
                ~labels:[ ("algo", algo) ]
            in
            let count = M.hist_count h in
            metrics :=
              (Printf.sprintf "p6_%s_renames_n%d" algo n, float_of_int count)
              :: !metrics;
            M.merge ~into:merged reg;
            [
              algo;
              Table.cell_int n;
              Table.cell_int count;
              Table.cell_int (M.hquantile h 0.50);
              Table.cell_int (M.hquantile h 0.90);
              Table.cell_int (M.hquantile h 0.99);
              Table.cell_int (M.hquantile h 0.999);
              Table.cell_int (M.hist_max h);
            ])
          [ 16; 64; 256 ])
      [ "ma"; "efficient"; "adaptive" ]
  in
  ( Table.make ~id:"P6" ~title:"perf: rename latency quantiles (commit clock)"
      ~header:[ "algo"; "n"; "renames"; "p50"; "p90"; "p99"; "p999"; "max" ]
      ~notes:
        [
          "Per-operation rename latency (decide - invoke in commits) under";
          "one seeded uniformly-random crash-free schedule, from the";
          "adapters' ambient-registry instrumentation.  The rename counts";
          "are deterministic (= n) and baseline-gated; the quantiles are";
          "nearest-rank estimates off the log-bucketed histogram (<= 3.2%";
          "relative error) and tracked but not gated.";
        ]
      rows,
    List.rev !metrics,
    merged )

(* --- P7: native rename throughput and tail latency ---------------------- *)

(* Real OCaml 5 domains over Atomic.t registers (lib/native): one run per
   (algorithm, n, domains) cell, n logical processes work-queued onto the
   domain pool.  Every cell's decision log is claim-checked post hoc
   (exclusiveness, name bound, completion) — a violation aborts the bench
   with exit 1, the same contract as P6.  Baseline-gated metrics are the
   machine-independent decided counts at the small n only, so a
   [--p7-max-n]-capped run (CI) gates the same keys as the full sweep;
   larger cells are still claim-checked.  Wall-clock throughput and the
   per-process latency quantiles are machine-dependent: table and JSON
   only, with the ns histograms merged into the embedded exsel-metrics/1
   document. *)
let p7_native_rename ?(max_n = 1024) ?(warmup = 0) () =
  let module H = Exsel_native.Harness in
  let module E = Exsel_native.Engine in
  let module M = Exsel_obs.Metrics in
  let warmup_total = ref 0L in
  let merged = M.create () in
  let metrics = ref [] in
  let ns = List.filter (fun n -> n <= max_n) [ 16; 64; 256; 1024 ] in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let gated_n = [ 16; 64 ] in
  let rows =
    List.concat_map
      (fun (algo, name) ->
        List.concat_map
          (fun n ->
            let decided_at_n = ref 0 in
            let rows =
              List.map
                (fun domains ->
                  let r = H.run ~warmup ~algo ~n ~domains ~seed:1 () in
                  warmup_total := Int64.add !warmup_total r.H.warmup_ns;
                  (match H.check r with
                  | Ok () -> ()
                  | Error msg ->
                      Printf.eprintf
                        "P7: %s at n=%d domains=%d violates its claim: %s\n"
                        name n domains msg;
                      exit 1);
                  decided_at_n := !decided_at_n + H.decided r;
                  let reg = M.create () in
                  H.observe reg r;
                  M.merge ~into:merged reg;
                  let h =
                    M.histogram reg "exsel_rename_latency_ns"
                      ~labels:[ ("algo", name); ("backend", "native") ]
                  in
                  let wall_s = Int64.to_float r.H.wall_ns /. 1e9 in
                  let throughput = float_of_int n /. wall_s in
                  [
                    name;
                    Table.cell_int n;
                    Table.cell_int domains;
                    Table.cell_int (H.decided r);
                    Printf.sprintf "%.0f" throughput;
                    Table.cell_int (M.hquantile h 0.50);
                    Table.cell_int (M.hquantile h 0.90);
                    Table.cell_int (M.hquantile h 0.99);
                    Table.cell_int (M.hquantile h 0.999);
                    Table.cell_int (M.hist_max h);
                    Printf.sprintf "%.1f"
                      (E.utilization r.H.telemetry *. 100.0);
                    Table.cell_int (H.ns_to_int r.H.telemetry.E.tl_spawn_ns);
                    Table.cell_int (H.ns_to_int r.H.telemetry.E.tl_join_ns);
                  ])
                domain_counts
            in
            if List.mem n gated_n then
              metrics :=
                ( Printf.sprintf "p7_%s_decided_n%d" name n,
                  float_of_int !decided_at_n )
                :: !metrics;
            rows)
          ns)
      [ (H.Ma, "ma"); (H.Efficient, "efficient"); (H.Adaptive, "adaptive") ]
  in
  ( Table.make ~id:"P7"
      ~title:"perf: native rename throughput and tail latency (OCaml 5 domains)"
      ~header:
        [
          "algo"; "n"; "domains"; "decided"; "renames/sec"; "p50 ns"; "p90 ns";
          "p99 ns"; "p999 ns"; "max ns"; "util %"; "spawn ns"; "join ns";
        ]
      ~notes:
        ([
           "Real Atomic.t registers and Domain-pool processes (lib/native),";
           "one engine run per cell; latencies are wall-clock nanoseconds";
           "per rename.  Decision logs are claim-checked post hoc; the";
           "decided counts at n <= 64 are baseline-gated (present under any";
           "--p7-max-n cap), throughput and quantiles are machine-dependent";
           "and tracked in the JSON only.  util % is busy/(wall*domains)";
           "from the engine flight record; spawn/join ns are the pool's";
           "per-run management overhead.";
         ]
        @
        if warmup = 0 then []
        else
          [
            Printf.sprintf
              "%d warmup run(s) per cell, %.1f ms total, excluded from all \
               measured columns."
              warmup
              (Int64.to_float !warmup_total /. 1e6);
          ])
      rows,
    List.rev !metrics,
    merged )

(* --- P8: service held-names steady-state throughput ---------------------- *)

(* One churn-campaign cell per (backend, regime) on a fixed small service
   (2 shards, cap 3, 5 sessions, 5 rounds, seed 1), claim-checked by the
   campaign itself.  The baseline-gated metrics are the acquire counts:
   the round planner draws only on the seeded rng and the session phase
   ledger — never on assigned slots, names or timing — so the counts are
   machine-independent on both backends (a drop means the planner or the
   service wiring changed, which is what this suite gates).  Latency
   quantiles (commit clock on sim, wall ns on native) are reported and
   merged into the JSON metrics but not gated. *)
let p8_service_churn () =
  let module Churn = Exsel_service.Churn in
  let module M = Exsel_obs.Metrics in
  let merged = M.create () in
  let metrics = ref [] in
  let base =
    {
      Churn.default with
      Churn.shards = 2;
      cap = 3;
      sessions = 5;
      rounds = 5;
      seeds = [ 1 ];
    }
  in
  let underscored s = String.map (fun c -> if c = '-' then '_' else c) s in
  let rows =
    List.concat_map
      (fun backend ->
        let bname = Churn.backend_name backend in
        List.map
          (fun regime ->
            let rid = Churn.regime_id regime in
            let cfg = { base with Churn.backend; regimes = [ regime ] } in
            let report = Churn.run cfg in
            let c =
              match report.Churn.r_cells with
              | [ c ] -> c
              | _ -> assert false
            in
            (match c.Churn.c_violations with
            | [] -> ()
            | v :: _ ->
                Printf.eprintf "P8: %s %s violates a service claim: %s\n"
                  bname rid v;
                exit 1);
            M.merge ~into:merged report.Churn.r_metrics;
            metrics :=
              ( Printf.sprintf "p8_%s_acquires_%s" bname (underscored rid),
                float_of_int c.Churn.c_acquires )
              :: !metrics;
            let unit =
              match backend with Churn.Sim -> "commits" | _ -> "ns"
            in
            let h =
              M.histogram c.Churn.c_metrics
                ("exsel_acquire_latency_" ^ unit)
                ~labels:[ ("regime", rid); ("backend", bname) ]
            in
            [
              bname;
              rid;
              Table.cell_int c.Churn.c_acquires;
              Table.cell_int c.Churn.c_releases;
              Table.cell_int c.Churn.c_crashes;
              Table.cell_int c.Churn.c_spills;
              Table.cell_int c.Churn.c_recycles;
              Table.cell_int c.Churn.c_max_name;
              Table.cell_int (M.hquantile h 0.50);
              Table.cell_int (M.hquantile h 0.99);
            ])
          Churn.all_regimes)
      [ Churn.Sim; Churn.Native { domains = 2 } ]
  in
  ( Table.make ~id:"P8"
      ~title:"perf: service held-names churn (sim commit clock + native domains)"
      ~header:
        [
          "backend"; "regime"; "acquires"; "releases"; "crashes"; "spills";
          "recycles"; "max name"; "acq p50"; "acq p99";
        ]
      ~notes:
        [
          "One exsel_service churn cell per (backend, regime): 2 shards,";
          "cap 3, 5 sessions, 5 rounds, seed 1, claim-checked in-run";
          "(exclusive holds, generation reuse, adaptive bound, leaks).";
          "Acquire counts depend only on the seeded round planner, never";
          "on slots/names/timing, so they are machine-independent on both";
          "backends and baseline-gated.  Acquire latency quantiles are in";
          "the backend's unit (commits on sim, wall ns on native) and";
          "tracked but not gated.";
        ]
      rows,
    List.rev !metrics,
    merged )

(* --- P9: open-loop workload latency tails ------------------------------- *)

(* One open-loop workload cell per (backend, arrival pattern) on a fixed
   small service (2 shards, cap 3, 8 rounds, rate 3, hold 2, seed 1),
   claim-checked by the campaign itself.  The baseline-gated metrics are
   the offered/served counts: arrivals are drawn from the seeded
   integer-only arrival process and acquires from the seeded session
   plans — never from slots, names or timing — so both are
   machine-independent on both backends (a drop means the arrival
   process or the open-loop wiring changed).  Acquire latency quantiles
   (commit clock on sim, wall ns on native) show the tail cost of
   clumped arrivals and are reported but not gated. *)
let p9_open_loop () =
  let module Churn = Exsel_service.Churn in
  let module Workload = Exsel_service.Workload in
  let module M = Exsel_obs.Metrics in
  let merged = M.create () in
  let metrics = ref [] in
  let base =
    {
      Workload.default with
      Workload.shards = 2;
      cap = 3;
      rounds = 8;
      rate = 3;
      hold = 2;
      seeds = [ 1 ];
    }
  in
  let rows =
    List.concat_map
      (fun backend ->
        let bname = Churn.backend_name backend in
        List.map
          (fun pattern ->
            let pid = Workload.pattern_id pattern in
            let cfg =
              { base with Workload.backend; patterns = [ pattern ] }
            in
            let report = Workload.run cfg in
            let c =
              match report.Workload.wr_cells with
              | [ c ] -> c
              | _ -> assert false
            in
            (match c.Workload.w_violations with
            | [] -> ()
            | v :: _ ->
                Printf.eprintf "P9: %s %s violates a service claim: %s\n"
                  bname pid v;
                exit 1);
            M.merge ~into:merged report.Workload.wr_metrics;
            metrics :=
              (Printf.sprintf "p9_%s_acquires_%s" bname pid,
                float_of_int c.Workload.w_acquires)
              :: (Printf.sprintf "p9_%s_arrivals_%s" bname pid,
                   float_of_int c.Workload.w_arrivals)
              :: !metrics;
            let unit =
              match backend with Churn.Sim -> "commits" | _ -> "ns"
            in
            let h =
              M.histogram c.Workload.w_metrics
                ("exsel_workload_acquire_latency_" ^ unit)
                ~labels:[ ("pattern", pid); ("backend", bname) ]
            in
            [
              bname;
              pid;
              Table.cell_int c.Workload.w_arrivals;
              Table.cell_int c.Workload.w_admitted;
              Table.cell_int c.Workload.w_rejected;
              Table.cell_int c.Workload.w_acquires;
              Table.cell_int c.Workload.w_releases;
              Table.cell_int (M.hquantile h 0.50);
              Table.cell_int (M.hquantile h 0.99);
              Table.cell_int (M.hquantile h 0.999);
            ])
          Workload.all_patterns)
      [ Churn.Sim; Churn.Native { domains = 2 } ]
  in
  ( Table.make ~id:"P9"
      ~title:"perf: open-loop workload latency tails (sim + native)"
      ~header:
        [
          "backend"; "pattern"; "arrivals"; "admitted"; "rejected"; "acquires";
          "releases"; "acq p50"; "acq p99"; "acq p999";
        ]
      ~notes:
        [
          "One exsel_service open-loop workload cell per (backend,";
          "pattern): 2 shards, cap 3, 8 rounds, rate 3, hold 2, seed 1,";
          "claim-checked in-run.  Arrivals are drawn from the seeded";
          "integer-only arrival process and acquires from the seeded";
          "session plans, never from slots/names/timing, so both counts";
          "are machine-independent on both backends and baseline-gated.";
          "Acquire latency quantiles are in the backend's unit (commits";
          "on sim, wall ns on native) and tracked but not gated.";
        ]
      rows,
    List.rev !metrics,
    merged )

(* --- driver ------------------------------------------------------------ *)

let suite_ids = [ "P1"; "P2"; "P3"; "P4"; "P5"; "P6"; "P7"; "P8"; "P9" ]

let run ~json ~baseline ~only ~p7_max_n ~warmup =
  let registry = Exsel_obs.Metrics.create () in
  let with_registry f () =
    let table, metrics, reg = f () in
    Exsel_obs.Metrics.merge ~into:registry reg;
    (table, metrics)
  in
  let suites =
    [
      ("P1", p1_commit_throughput);
      ("P2", p2_scheduler_overhead);
      ("P3", p3_explorer);
      ("P4", p4_pruning_stats);
      ("P5", p5_campaign_scaling);
      ("P6", with_registry p6_latency_quantiles);
      ( "P7",
        with_registry (fun () -> p7_native_rename ?max_n:p7_max_n ?warmup ()) );
      ("P8", with_registry p8_service_churn);
      ("P9", with_registry p9_open_loop);
    ]
  in
  let selected =
    match only with
    | None -> suites
    | Some id -> (
        let id = String.uppercase_ascii id in
        match List.filter (fun (i, _) -> i = id) suites with
        | [] ->
            Printf.eprintf "unknown perf suite %S; valid ids: %s\n" id
              (String.concat " " suite_ids);
            exit 2
        | sel -> sel)
  in
  let tables_metrics = List.map (fun (_, f) -> f ()) selected in
  let entries =
    List.map (fun (table, _) -> { Report.table; runs = [] }) tables_metrics
  in
  let metrics = List.concat_map snd tables_metrics in
  List.iter (fun e -> Table.print e.Report.table; flush stdout) entries;
  (match json with
  | None -> ()
  | Some path ->
      Report.write_file ~metrics:registry path entries;
      Printf.printf "wrote %s (%d perf suites, %d metrics)\n" path (List.length entries)
        (List.length metrics));
  match baseline with
  | None -> ()
  | Some path ->
      let ic = open_in path in
      let refs = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && not (String.length line > 0 && line.[0] = '#') then
             Scanf.sscanf line "%s %f" (fun k v -> refs := (k, v) :: !refs)
         done
       with End_of_file -> close_in ic);
      let failures = ref 0 in
      List.iter
        (fun (key, reference) ->
          match List.assoc_opt key metrics with
          | None
            when only <> None
                 || (p7_max_n <> None && String.starts_with ~prefix:"p7_" key)
            ->
              (* a restricted run (--only, or a --p7-max-n cap below the
                 gated n) legitimately skips those keys *)
              ()
          | None ->
              incr failures;
              Printf.eprintf "perf baseline: metric %S missing from this run\n" key
          | Some measured ->
              let floor = reference /. 2.0 in
              if measured < floor then begin
                incr failures;
                Printf.eprintf
                  "perf baseline: %s regressed: measured %.0f < %.0f (reference %.0f / 2)\n"
                  key measured floor reference
              end
              else
                Printf.printf "perf baseline: %s ok (%.0f >= %.0f)\n" key measured floor)
        !refs;
      if !failures > 0 then exit 1
