(* exsel — command-line driver for the asynchronous-exclusive-selection
   library: run any renaming algorithm, repository, or experiment from the
   shell with explicit seeds and crash schedules. *)

open Exsel_sim
module R = Exsel_renaming
module SD = Exsel_repository.Selfish_deposit
module AD = Exsel_repository.Altruistic_deposit
module UN = Exsel_repository.Unbounded_naming
module Adversary = Exsel_lowerbound.Adversary
module E = Exsel_harness.Experiments
module Report = Exsel_harness.Report
module Table = Exsel_harness.Table
module Json = Exsel_obs.Json
module Probe = Exsel_obs.Probe
module Span = Exsel_obs.Span
module Trace_export = Exsel_obs.Trace_export
(* Exsel_sim.Metrics (per-run summaries) is shadowed by [open Exsel_sim]
   below; the registry subsystem gets an unambiguous alias. *)
module Obs_metrics = Exsel_obs.Metrics

let spread ~count ~bound = List.init count (fun i -> i * (max 1 (bound / count)) mod bound)

(* -j 0 means "one domain per core"; anything negative is a usage error. *)
let resolve_jobs jobs =
  if jobs < 0 then begin
    Printf.eprintf "--jobs must be >= 0 (got %d)\n" jobs;
    exit 2
  end
  else if jobs = 0 then Exsel_sim.Pool.default_jobs ()
  else jobs

(* An unwritable --metrics-out/--events path is a usage error (exit 2),
   caught before any work runs rather than after a long campaign. *)
let open_out_or_exit2 path =
  try open_out path
  with Sys_error msg ->
    Printf.eprintf "cannot open output file: %s\n" msg;
    exit 2

let check_us_per_commit us =
  if us <= 0 then begin
    Printf.eprintf "--us-per-commit must be positive (got %d)\n" us;
    exit 2
  end

(* NDJSON event emitter for the exsel-events/1 streams: every line is
   written and flushed under one mutex, so events arriving concurrently
   from -j N worker domains never interleave mid-line. *)
type emitter = { em_mutex : Mutex.t; em_sinks : out_channel list }

let make_emitter ~events_oc ~progress =
  let sinks =
    (match events_oc with Some oc -> [ oc ] | None -> [])
    @ if progress then [ stderr ] else []
  in
  { em_mutex = Mutex.create (); em_sinks = sinks }

let emit em j =
  if em.em_sinks <> [] then begin
    Mutex.lock em.em_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock em.em_mutex)
      (fun () ->
        let line = Json.to_string j in
        List.iter
          (fun oc ->
            output_string oc line;
            output_char oc '\n';
            flush oc)
          em.em_sinks)
  end

(* The channel was opened (and the path validated) before the run began;
   the exposition is written once, at the end. *)
let write_openmetrics oc path reg =
  output_string oc (Obs_metrics.to_openmetrics reg);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* rename subcommand                                                   *)
(* ------------------------------------------------------------------ *)

type algo =
  | Moir_anderson
  | Snapshot_renaming
  | Majority
  | Basic
  | Polylog
  | Efficient
  | Almost_adaptive
  | Adaptive
  | Chain

let algo_conv =
  let parse = function
    | "ma" | "moir-anderson" -> Ok Moir_anderson
    | "snapshot" | "attiya" -> Ok Snapshot_renaming
    | "majority" -> Ok Majority
    | "basic" -> Ok Basic
    | "polylog" -> Ok Polylog
    | "efficient" -> Ok Efficient
    | "almost-adaptive" -> Ok Almost_adaptive
    | "adaptive" -> Ok Adaptive
    | "chain" -> Ok Chain
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  let print ppf a =
    Format.pp_print_string ppf
      (match a with
      | Moir_anderson -> "ma"
      | Snapshot_renaming -> "snapshot"
      | Majority -> "majority"
      | Basic -> "basic"
      | Polylog -> "polylog"
      | Efficient -> "efficient"
      | Almost_adaptive -> "almost-adaptive"
      | Adaptive -> "adaptive"
      | Chain -> "chain")
  in
  Cmdliner.Arg.conv (parse, print)

(* Returns the rename function together with the instance's name bound M
   (used by the adversary's stage-budget formula). *)
let build_renamer algo mem ~k ~n ~n_names ~seed =
  let rng = Rng.create ~seed in
  match algo with
  | Moir_anderson ->
      let ma = R.Moir_anderson.create mem ~name:"ma" ~side:k in
      ((fun ~me -> R.Moir_anderson.rename ma ~me), R.Moir_anderson.capacity ma)
  | Snapshot_renaming ->
      let a = R.Attiya_renaming.create mem ~name:"at" ~slots:n_names () in
      ((fun ~me -> R.Attiya_renaming.rename a ~slot:me), (2 * k) - 1)
  | Majority ->
      let m = R.Majority.create ~rng mem ~name:"maj" ~l:k ~inputs:n_names in
      ((fun ~me -> R.Majority.rename m ~me), R.Majority.names m)
  | Basic ->
      let b = R.Basic_rename.create ~rng mem ~name:"bas" ~k ~inputs:n_names in
      ((fun ~me -> R.Basic_rename.rename b ~me), R.Basic_rename.names b)
  | Polylog ->
      let p = R.Polylog_rename.create ~rng mem ~name:"pl" ~k ~inputs:n_names in
      ((fun ~me -> R.Polylog_rename.rename p ~me), R.Polylog_rename.names p)
  | Efficient ->
      let e = R.Efficient_rename.create ~rng mem ~name:"ef" ~k in
      ((fun ~me -> R.Efficient_rename.rename e ~me), R.Efficient_rename.names e)
  | Almost_adaptive ->
      let a = R.Almost_adaptive.create ~rng mem ~name:"aa" ~n ~inputs:n_names in
      ( (fun ~me -> Some (R.Almost_adaptive.rename a ~me)),
        R.Almost_adaptive.name_bound_for_contention a ~k )
  | Adaptive ->
      let a = R.Adaptive_rename.create ~rng mem ~name:"ad" ~n in
      ( (fun ~me -> Some (R.Adaptive_rename.rename a ~me)),
        R.Adaptive_rename.name_bound_for_contention ~k )
  | Chain ->
      let c = R.Chain_rename.create mem ~name:"ch" ~m:((2 * k) - 1) in
      ((fun ~me -> R.Chain_rename.rename c ~me), R.Chain_rename.names c)

(* Native-backend rename: real Atomic.t registers, real domains
   (lib/native).  The contender count is --procs and the instance is
   sized for exactly that contention; there is no scheduler, no crash
   injection and no commit clock, so the sim-only flags are rejected up
   front and claims are checked post hoc on the decision log.  The run
   always probes the backend (per-register counters feed --profile and
   --metrics-out; one interactive run does not care about the overhead),
   and the engine's flight record feeds --trace/--chrome wall-clock
   documents (DESIGN.md §13). *)
let run_rename_native algo procs seed domains warmup profile json trace chrome
    metrics_out =
  let module H = Exsel_native.Harness in
  let module E = Exsel_native.Engine in
  let halgo =
    match algo with
    | Moir_anderson -> H.Ma
    | Efficient -> H.Efficient
    | Adaptive -> H.Adaptive
    | _ ->
        Printf.eprintf
          "--backend native supports --algo ma, efficient and adaptive (got %s)\n"
          (Format.asprintf "%a" (Cmdliner.Arg.conv_printer algo_conv) algo);
        exit 2
  in
  if warmup < 0 then begin
    Printf.eprintf "--warmup must be non-negative (got %d)\n" warmup;
    exit 2
  end;
  let metrics_oc = Option.map open_out_or_exit2 metrics_out in
  let r = H.run ~warmup ~probe:true ~algo:halgo ~n:procs ~domains ~seed () in
  let reg =
    match Obs_metrics.ambient () with
    | Some reg -> reg
    | None -> Obs_metrics.create ()
  in
  H.observe reg r;
  Printf.printf "process  original  new-name  latency-ns  status\n";
  Array.iteri
    (fun i me ->
      Printf.printf "p%-6d  %-8d  %-8s  %-10Ld  done\n" i me
        (match r.H.names.(i) with Some nm -> string_of_int nm | None -> "-")
        r.H.latency_ns.(i))
    r.H.ids;
  Printf.printf "backend: native  domains: %d  registers: %d  wall: %.3f ms\n"
    domains r.H.registers
    (Int64.to_float r.H.wall_ns /. 1e6);
  let tl = r.H.telemetry in
  Printf.printf
    "engine: %d worker(s)  utilization %.1f%%  spawn %.3f ms  join %.3f ms\n"
    tl.E.tl_domains
    (E.utilization tl *. 100.0)
    (Int64.to_float tl.E.tl_spawn_ns /. 1e6)
    (Int64.to_float tl.E.tl_join_ns /. 1e6);
  if r.H.warmup > 0 then
    Printf.printf "warmup: %d run(s), %.3f ms (excluded from measurements)\n"
      r.H.warmup
      (Int64.to_float r.H.warmup_ns /. 1e6);
  if profile then begin
    Printf.printf "per-domain:\n";
    Array.iter
      (fun (w : E.worker_stat) ->
        Printf.printf "  domain %-3d  tasks %-5d  busy %.3f ms\n" w.E.ws_worker
          w.E.ws_tasks
          (Int64.to_float w.E.ws_busy_ns /. 1e6))
      tl.E.tl_workers;
    Printf.printf "hot registers (reads+writes, hottest first):\n";
    List.iter
      (fun (s : H.reg_stat) ->
        Printf.printf "  %-12s  reads %-8d  writes %-8d  total %d\n" s.H.rs_name
          s.H.rs_reads s.H.rs_writes
          (s.H.rs_reads + s.H.rs_writes))
      (H.hot_registers r)
  end;
  let h =
    Obs_metrics.histogram reg "exsel_rename_latency_ns"
      ~labels:[ ("algo", r.H.algo); ("backend", "native") ]
  in
  Printf.printf
    "latency ns: p50=%d p90=%d p99=%d p999=%d max=%d (%d renames)\n"
    (Obs_metrics.hquantile h 0.50)
    (Obs_metrics.hquantile h 0.90)
    (Obs_metrics.hquantile h 0.99)
    (Obs_metrics.hquantile h 0.999)
    (Obs_metrics.hist_max h) (Obs_metrics.hist_count h);
  let claim = H.check r in
  (match claim with
  | Ok () ->
      let names = Array.to_list r.H.names |> List.filter_map Fun.id in
      Printf.printf "exclusive: yes  max-name: %d  bound: %d\n"
        (List.fold_left max (-1) names)
        r.H.bound
  | Error msg -> Printf.printf "claim VIOLATED: %s\n" msg);
  (match json with
  | Some path ->
      let assignment =
        Array.to_list
          (Array.mapi
             (fun i me ->
               Json.Obj
                 [
                   ("process", Json.String (Printf.sprintf "p%d" i));
                   ("original", Json.Int me);
                   ( "name",
                     match r.H.names.(i) with
                     | Some nm -> Json.Int nm
                     | None -> Json.Null );
                   ("latency_ns", Json.Int (H.ns_to_int r.H.latency_ns.(i)));
                   ("status", Json.String "done");
                 ])
             r.H.ids)
      in
      let doc =
        Json.Obj
          [
            ("schema", Json.String "exsel-rename/1");
            ( "algorithm",
              Json.String
                (Format.asprintf "%a" (Cmdliner.Arg.conv_printer algo_conv) algo)
            );
            ("backend", Json.String "native");
            ("domains", Json.Int domains);
            ("seed", Json.Int seed);
            ("assignment", Json.List assignment);
            ("wall_ns", Json.Int (Int64.to_int r.H.wall_ns));
            ("registers", Json.Int r.H.registers);
            ("metrics", Obs_metrics.to_json reg);
          ]
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Json.output oc doc);
      Printf.printf "wrote %s\n" path
  | None -> ());
  let flight = lazy (H.trace_doc r) in
  (match trace with
  | Some path ->
      Trace_export.write_file path
        (Trace_export.Native.to_json (Lazy.force flight));
      Printf.printf "wrote %s\n" path
  | None -> ());
  (match chrome with
  | Some path ->
      Trace_export.write_file path
        (Trace_export.Native.chrome (Lazy.force flight));
      Printf.printf "wrote %s (open at ui.perfetto.dev)\n" path
  | None -> ());
  (match (metrics_oc, metrics_out) with
  | Some oc, Some path -> write_openmetrics oc path reg
  | _ -> ());
  if claim <> Ok () then exit 1

let run_rename_sim algo k n n_names procs seed crashes profile json chrome
    us_per_commit =
  check_us_per_commit us_per_commit;
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let rename, _m = build_renamer algo mem ~k ~n ~n_names ~seed in
  let ids = spread ~count:procs ~bound:n_names in
  let observing = profile || json <> None || chrome <> None in
  (* span sink before spawning (bodies may open spans at spawn time),
     probe after, so its initial scan sees the whole pending burst *)
  let span = if observing then Some (Span.attach rt) else None in
  let trace = if chrome <> None then Some (Trace.attach rt) else None in
  let results = Array.make procs None in
  List.iteri
    (fun i me ->
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
             results.(i) <- rename ~me)))
    ids;
  let probe = if observing then Some (Probe.attach rt) else None in
  let policy = Scheduler.random (Rng.create ~seed:(seed + 1)) in
  let policy =
    if crashes = [] then policy else Scheduler.with_crashes ~crash_at:crashes policy
  in
  Scheduler.run ~max_commits:500_000_000 rt policy;
  let summary = Metrics.of_runtime rt in
  Printf.printf "process  original  new-name  steps  status\n";
  List.iteri
    (fun i (p, me) ->
      Printf.printf "p%-6d  %-8d  %-8s  %-5d  %s\n" i me
        (match results.(i) with Some nm -> string_of_int nm | None -> "-")
        (Runtime.steps p)
        (match Runtime.status p with
        | Runtime.Done -> "done"
        | Runtime.Crashed -> "crashed"
        | Runtime.Runnable -> "runnable"))
    (List.combine (Runtime.procs rt) ids);
  let names = Array.to_list results |> List.filter_map Fun.id in
  let distinct = List.length (List.sort_uniq compare names) = List.length names in
  Format.printf "%a@." Metrics.pp summary;
  Printf.printf "exclusive: %s  max-name: %d\n"
    (if distinct then "yes" else "NO (BUG)")
    (List.fold_left max (-1) names);
  (match (span, probe) with
  | Some sp, Some pr ->
      let report = Probe.report pr in
      let aggs = Span.aggregate sp in
      if profile then begin
        Format.printf "%a@." Probe.pp report;
        Format.printf "%a@." Span.pp_aggregate aggs
      end;
      (match json with
      | Some path ->
          let assignment =
            List.mapi
              (fun i (p, me) ->
                Json.Obj
                  [
                    ("process", Json.String (Printf.sprintf "p%d" i));
                    ("original", Json.Int me);
                    ( "name",
                      match results.(i) with Some nm -> Json.Int nm | None -> Json.Null );
                    ("steps", Json.Int (Runtime.steps p));
                    ( "status",
                      Json.String
                        (match Runtime.status p with
                        | Runtime.Done -> "done"
                        | Runtime.Crashed -> "crashed"
                        | Runtime.Runnable -> "runnable") );
                  ])
              (List.combine (Runtime.procs rt) ids)
          in
          let doc =
            Json.Obj
              [
                ("schema", Json.String "exsel-rename/1");
                ( "algorithm",
                  Json.String
                    (Format.asprintf "%a" (Cmdliner.Arg.conv_printer algo_conv) algo) );
                ("seed", Json.Int seed);
                ("assignment", Json.List assignment);
                ("summary", Json.of_summary summary);
                ("probe", Probe.to_json report);
                ("spans", Span.aggregate_to_json aggs);
                ("span_trees", Span.to_json sp);
              ]
          in
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> Json.output oc doc);
          Printf.printf "wrote %s\n" path
      | None -> ());
      (match (chrome, trace) with
      | Some path, Some tr ->
          (* one Perfetto track per process: phase spans as bars, commits
             (with their values) and lifecycle marks as instants *)
          Trace_export.write_file path
            (Trace_export.chrome ~spans:sp ~us_per_commit (Trace.events tr));
          Printf.printf "wrote %s (open at ui.perfetto.dev)\n" path
      | _ -> ());
      Span.detach sp
  | _ -> ());
  if not distinct then exit 1

(* Backend dispatch.  The sim path is byte-identical to the historical
   behaviour; each backend rejects the other's exclusive flags with a
   specific message and exit 2.  Native now renders --profile (register
   contention + per-domain stats from the probe/flight record) and
   --chrome (wall-clock trace) natively; --crash stays sim-only (real
   domains cannot be crashed mid-run), while --trace/--metrics-out/
   --warmup/--domains are native-only on this subcommand. *)
let run_rename backend domains warmup algo k n n_names procs seed crashes
    profile json trace chrome metrics_out us_per_commit =
  match backend with
  | "sim" ->
      let reject_native_only name = function
        | None -> ()
        | Some _ ->
            Printf.eprintf "%s applies only to --backend native\n" name;
            exit 2
      in
      reject_native_only "--domains" domains;
      reject_native_only "--warmup" warmup;
      reject_native_only "--trace" trace;
      reject_native_only "--metrics-out" metrics_out;
      run_rename_sim algo k n n_names procs seed crashes profile json chrome
        us_per_commit
  | "native" ->
      if crashes <> [] then begin
        Printf.eprintf
          "--crash applies only to --backend sim (native domains cannot be \
           crashed mid-run)\n";
        exit 2
      end;
      let domains =
        match domains with
        | Some d when d <= 0 ->
            Printf.eprintf "--domains must be positive (got %d)\n" d;
            exit 2
        | Some d -> d
        | None -> 4
      in
      run_rename_native algo procs seed domains
        (Option.value warmup ~default:0)
        profile json trace chrome metrics_out
  | other ->
      Printf.eprintf "unknown backend %S (expected sim or native)\n" other;
      exit 2

(* ------------------------------------------------------------------ *)
(* deposit subcommand                                                  *)
(* ------------------------------------------------------------------ *)

let run_deposit altruistic n per crashed seed =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  if altruistic then begin
    let ad = AD.create mem ~name:"ad" ~n in
    let acked = ref [] in
    AD.spawn_all rt ad
      ~values:(fun me -> List.init per (fun v -> (100 * me) + v))
      ~on_deposit:(fun ~me ~index ~value -> acked := (me, index, value) :: !acked);
    let rng = Rng.create ~seed in
    Scheduler.run_for rt ~commits:(200 * n) (Scheduler.random rng);
    List.iter
      (fun p ->
        let nm = Runtime.proc_name p in
        if
          List.exists
            (fun i ->
              nm = Printf.sprintf "depositor%d" i || nm = Printf.sprintf "provider%d" i)
            (List.init crashed Fun.id)
        then Runtime.crash rt p)
      (Runtime.procs rt);
    Scheduler.run ~max_commits:500_000_000 rt (Scheduler.random rng);
    Printf.printf "altruistic repository: n=%d per=%d crashed=%d\n" n per crashed;
    Printf.printf "acknowledged deposits: %d\n" (List.length !acked);
    Printf.printf "registers deposited:   %d\n" (List.length (AD.deposits ad));
    let stranded =
      Exsel_repository.Help_board.stranded (AD.board ad) ~alive:(fun q -> q >= crashed)
    in
    Printf.printf "names stranded:        %d (bound n(n-1) = %d)\n"
      (List.length stranded)
      (n * (n - 1))
  end
  else begin
    let sd = SD.create mem ~name:"sd" ~n in
    let procs =
      Array.init n (fun i ->
          Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
              for v = 1 to per do
                ignore (SD.deposit sd ~me:i ((100 * i) + v))
              done))
    in
    let rng = Rng.create ~seed in
    Scheduler.run_for rt ~commits:(100 * n) (Scheduler.random rng);
    for i = 0 to crashed - 1 do
      Runtime.crash rt procs.(i)
    done;
    Scheduler.run ~max_commits:500_000_000 rt (Scheduler.random rng);
    let pinned = SD.pinned sd ~alive:(fun q -> q >= crashed) in
    Printf.printf "selfish repository: n=%d per=%d crashed=%d\n" n per crashed;
    Printf.printf "registers deposited: %d\n" (List.length (SD.deposits sd));
    Printf.printf "registers pinned:    %d (bound n-1 = %d)\n" (List.length pinned) (n - 1)
  end;
  Format.printf "%a@." Metrics.pp (Metrics.of_runtime rt)

(* ------------------------------------------------------------------ *)
(* naming subcommand                                                   *)
(* ------------------------------------------------------------------ *)

let run_naming n per seed =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let un = UN.create mem ~name:"un" ~n in
  for i = 0 to n - 1 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
           for _ = 1 to per do
             ignore (UN.acquire un ~me:i)
           done))
  done;
  Scheduler.run ~max_commits:500_000_000 rt (Scheduler.random (Rng.create ~seed));
  let names = UN.committed_names un in
  let distinct = List.length (List.sort_uniq compare names) = List.length names in
  Printf.printf "unbounded naming: n=%d per-process=%d\n" n per;
  Printf.printf "committed: %d  exclusive: %s  high-water: %d\n" (List.length names)
    (if distinct then "yes" else "NO (BUG)")
    (List.fold_left max 0 names);
  List.iter
    (fun (name, owner) -> Printf.printf "  name %-4d -> p%d\n" name owner)
    (UN.committed un);
  if not distinct then exit 1

(* ------------------------------------------------------------------ *)
(* adversary subcommand                                                *)
(* ------------------------------------------------------------------ *)

let run_adversary algo k n_names seed =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let rename, m = build_renamer algo mem ~k ~n:k ~n_names ~seed in
  let spawn v =
    Runtime.spawn rt ~name:(Printf.sprintf "p%d" v) (fun () -> ignore (rename ~me:v))
  in
  let r = Memory.registers mem in
  let res = Adversary.force rt ~spawn ~n_names ~k ~m ~r in
  Printf.printf "adversary vs %s: N=%d k=%d r=%d\n"
    (Format.asprintf "%a" (Cmdliner.Arg.conv_printer algo_conv) algo)
    n_names k r;
  List.iter
    (fun s ->
      Printf.printf "  stage %d: pool %d -> %d via %s on register %d\n"
        s.Adversary.index s.Adversary.pool_before s.Adversary.pool_after
        (match s.Adversary.op_class with `Read -> "reads" | `Write -> "writes")
        s.Adversary.register)
    res.Adversary.stages;
  Printf.printf "forced %d stages (theory %d); bound %d; measured max steps %d\n"
    res.Adversary.forced_stages res.Adversary.theoretical_stages res.Adversary.bound
    res.Adversary.max_steps

(* ------------------------------------------------------------------ *)
(* lease subcommand (long-lived renaming)                              *)
(* ------------------------------------------------------------------ *)

let run_lease n rounds seed =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let ll = R.Long_lived.create mem ~name:"ll" ~n in
  let max_seen = ref 0 in
  let acquires = ref 0 in
  for i = 0 to n - 1 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
           for _ = 1 to rounds do
             let x = R.Long_lived.acquire ll ~me:i in
             incr acquires;
             if x > !max_seen then max_seen := x;
             R.Long_lived.release ll ~me:i
           done))
  done;
  Scheduler.run ~max_commits:500_000_000 rt (Scheduler.random (Rng.create ~seed));
  Printf.printf "long-lived renaming: n=%d rounds=%d\n" n rounds;
  Printf.printf "acquires: %d  max name: %d  (2n-1 = %d)\n" !acquires !max_seen
    ((2 * n) - 1);
  Format.printf "%a@." Metrics.pp (Metrics.of_runtime rt)

(* ------------------------------------------------------------------ *)
(* msgrename subcommand (ABDPR, message passing)                       *)
(* ------------------------------------------------------------------ *)

let run_msgrename n f crashed seed =
  let module Mnet = Exsel_msgnet.Mnet in
  let module Abdpr = Exsel_msgnet.Abdpr_renaming in
  let net = Abdpr.make_net ~n in
  let originals = List.init n (fun i -> (i, 1000 + (13 * i))) in
  let crash_after = List.init crashed (fun i -> (i, 20 + (15 * i))) in
  let decided =
    Abdpr.run ~net ~f ~originals ~rng:(Rng.create ~seed) ~crash_after ()
  in
  Printf.printf "ABDPR renaming (message passing): n=%d f=%d crashed=%d\n" n f crashed;
  Printf.printf "original  new-name\n";
  List.iter (fun (o, nm) -> Printf.printf "%8d  %d\n" o nm) decided;
  Printf.printf "decided: %d/%d  bound M=(f+1)n=%d  max msgs/proc=%d\n"
    (List.length decided) n
    (Abdpr.name_bound ~n ~f)
    (List.fold_left (fun a p -> max a (Mnet.sent p)) 0 (Mnet.procs net))

(* ------------------------------------------------------------------ *)
(* explore subcommand (model checking)                                 *)
(* ------------------------------------------------------------------ *)

(* Exit codes: 0 invariant holds, 1 violation found, 2 usage error,
   3 exploration truncated at --max-paths before finishing. *)
let run_explore target contenders crashes reduce do_shrink max_paths jobs
    trace_file chrome_file json_file metrics_out events_file progress
    us_per_commit =
  let open Exsel_sim in
  let init_compete () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let c = R.Compete.create mem ~name:"c" in
    let wins = Array.make contenders false in
    for i = 0 to contenders - 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             wins.(i) <- R.Compete.compete c ~me:i))
    done;
    (wins, rt)
  in
  let check_compete wins _rt =
    if (Array.to_list wins |> List.filter Fun.id |> List.length) > 1 then
      Error "two winners"
    else Ok ()
  in
  let init_splitter () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let s = R.Splitter.create mem ~name:"s" in
    let outs = Array.make contenders None in
    for i = 0 to contenders - 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             outs.(i) <- Some (R.Splitter.enter s ~me:i)))
    done;
    (outs, rt)
  in
  let check_splitter outs _rt =
    let stops =
      Array.to_list outs
      |> List.filter (fun o -> o = Some R.Splitter.Stop)
      |> List.length
    in
    if stops > 1 then Error "two stops" else Ok ()
  in
  (* deliberately racy read-increment-write counter: a known-violating
     target for exercising the forensics pipeline end-to-end *)
  let init_race () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let r = Register.create mem ~name:"ctr" 0 in
    Register.set_printer r string_of_int;
    for i = 0 to contenders - 1 do
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "inc%d" i) (fun () ->
             let v = Runtime.read r in
             Runtime.write r (v + 1)))
    done;
    (r, rt)
  in
  let check_race r _rt =
    let v = Register.peek r in
    if v = contenders then Ok ()
    else Error (Printf.sprintf "lost update: counter %d, expected %d" v contenders)
  in
  let reduction = if reduce then `Sleep_sets else `None in
  let choice_str = Format.asprintf "%a" Explore.pp_choice in
  let stats_json (s : Explore.stats) =
    Json.Obj
      [
        ("max_depth", Json.Int s.Explore.max_depth);
        ("replays", Json.Int s.Explore.replays);
        ("sleep_prunes", Json.Int s.Explore.sleep_prunes);
        ("hash_hits", Json.Int s.Explore.hash_hits);
        ("hash_misses", Json.Int s.Explore.hash_misses);
        ( "depth_histogram",
          Json.List
            (List.map
               (fun (d, c) -> Json.List [ Json.Int d; Json.Int c ])
               s.Explore.depth_histogram) );
      ]
  in
  (* generic over the instance's context type; generalizes because it is a
     syntactic value *)
  let jobs = resolve_jobs jobs in
  check_us_per_commit us_per_commit;
  let metrics_oc = Option.map open_out_or_exit2 metrics_out in
  let events_oc = Option.map open_out_or_exit2 events_file in
  let em = make_emitter ~events_oc ~progress in
  let drive ~init ~check =
    emit em
      (Json.Obj
         [
           ("schema", Json.String "exsel-events/1");
           ("event", Json.String "start");
           ("kind", Json.String "explore");
           ("target", Json.String target);
           ("contenders", Json.Int contenders);
           ("max_crashes", Json.Int crashes);
           ("reduction", Json.String (if reduce then "sleep_sets" else "none"));
           ("max_paths", Json.Int max_paths);
         ]);
    (* Live path counts are shard-local increments folded into one atomic
       total: approximate while running under -j N (see Explore.run), so
       the progress lines are the one part of the stream that is not
       jobs-deterministic — the done line reports the exact outcome. *)
    let total_paths = Atomic.make 0 in
    let on_progress d =
      let t = Atomic.fetch_and_add total_paths d + d in
      emit em
        (Json.Obj
           [ ("event", Json.String "explore_progress"); ("paths", Json.Int t) ])
    in
    let outcome =
      Explore.run ~max_crashes:crashes ~max_paths ~reduction ~jobs ~on_progress
        ~init ~check ()
    in
    Printf.printf "model-checked %s with %d contenders (crashes<=%d, reduction=%b)\n"
      target contenders crashes reduce;
    Printf.printf "paths: %d  decisions: %d  truncated: %b\n" outcome.Explore.paths
      outcome.Explore.states outcome.Explore.truncated;
    let st = outcome.Explore.stats in
    Printf.printf
      "effort: max-depth %d  replays %d  sleep-prunes %d  hash hits/misses %d/%d\n"
      st.Explore.max_depth st.Explore.replays st.Explore.sleep_prunes
      st.Explore.hash_hits st.Explore.hash_misses;
    let failure_json, exit_code =
      match outcome.Explore.failure with
      | None ->
          if outcome.Explore.truncated then begin
            Printf.printf
              "no violation in the first %d schedules (exploration truncated)\n"
              outcome.Explore.paths;
            (Json.Null, 3)
          end
          else begin
            Printf.printf "invariant holds on every explored schedule\n";
            (Json.Null, 0)
          end
      | Some (msg, sched) ->
          Printf.printf "VIOLATION: %s\n" msg;
          Printf.printf "schedule (%d choices):\n" (List.length sched);
          List.iter (fun c -> Printf.printf "  %s\n" (choice_str c)) sched;
          let final_sched, shrunk =
            if do_shrink then begin
              let s = Explore.shrink ~init ~check sched in
              Printf.printf "shrunk to %d choices:\n" (List.length s);
              List.iter (fun c -> Printf.printf "  %s\n" (choice_str c)) s;
              (s, true)
            end
            else (sched, false)
          in
          (* the shrunk schedule needs a fresh trace capture; the original
             schedule's trace rode along in the outcome *)
          let events =
            if shrunk then begin
              let _ctx, rt = init () in
              let tr = Trace.attach rt in
              Explore.replay rt final_sched;
              Trace.events tr
            end
            else outcome.Explore.failure_trace
          in
          let label = Printf.sprintf "%s x%d: %s" target contenders msg in
          (match trace_file with
          | Some path ->
              Trace_export.write_file path (Trace_export.to_json ~label events);
              Printf.printf "wrote %s\n" path
          | None -> ());
          (match chrome_file with
          | Some path ->
              Trace_export.write_file path
                (Trace_export.chrome ~us_per_commit events);
              Printf.printf "wrote %s (open at ui.perfetto.dev)\n" path
          | None -> ());
          ( Json.Obj
              [
                ("message", Json.String msg);
                ("original_length", Json.Int (List.length sched));
                ("shrunk", Json.Bool shrunk);
                ( "schedule",
                  Json.List (List.map (fun c -> Json.String (choice_str c)) final_sched)
                );
                ("trace", Trace_export.to_json ~label events);
              ],
            1 )
    in
    (match json_file with
    | Some path ->
        let doc =
          Json.Obj
            [
              ("schema", Json.String "exsel-explore/1");
              ("target", Json.String target);
              ("contenders", Json.Int contenders);
              ("max_crashes", Json.Int crashes);
              ( "reduction",
                Json.String (if reduce then "sleep_sets" else "none") );
              ("paths", Json.Int outcome.Explore.paths);
              ("states", Json.Int outcome.Explore.states);
              ("truncated", Json.Bool outcome.Explore.truncated);
              ("stats", stats_json st);
              ("failure", failure_json);
            ]
        in
        Trace_export.write_file path doc;
        Printf.printf "wrote %s\n" path
    | None -> ());
    (* Explorer effort counters as a registry: prune rates and the path
       depth distribution (rebuilt from the exact depth histogram, so the
       exposition is jobs-deterministic even though progress lines are
       not). *)
    let reg = Obs_metrics.create () in
    let labels = [ ("target", target) ] in
    let count name v = Obs_metrics.inc (Obs_metrics.counter reg name ~labels) v in
    count "exsel_explore_paths" outcome.Explore.paths;
    count "exsel_explore_states" outcome.Explore.states;
    count "exsel_explore_replays" st.Explore.replays;
    count "exsel_explore_sleep_prunes" st.Explore.sleep_prunes;
    count "exsel_explore_hash_hits" st.Explore.hash_hits;
    count "exsel_explore_hash_misses" st.Explore.hash_misses;
    Obs_metrics.set_gauge
      (Obs_metrics.gauge reg "exsel_explore_max_depth" ~labels)
      st.Explore.max_depth;
    Obs_metrics.set_gauge
      (Obs_metrics.gauge reg "exsel_explore_truncated" ~labels)
      (if outcome.Explore.truncated then 1 else 0);
    let depth_h = Obs_metrics.histogram reg "exsel_explore_path_depth" ~labels in
    List.iter
      (fun (d, c) ->
        for _ = 1 to c do
          Obs_metrics.observe depth_h d
        done)
      st.Explore.depth_histogram;
    emit em
      (Json.Obj
         [
           ("event", Json.String "done");
           ("paths", Json.Int outcome.Explore.paths);
           ("states", Json.Int outcome.Explore.states);
           ("truncated", Json.Bool outcome.Explore.truncated);
           ("violation", Json.Bool (outcome.Explore.failure <> None));
           ("metrics", Obs_metrics.summary_json reg);
         ]);
    Option.iter close_out events_oc;
    (match (metrics_oc, metrics_out) with
    | Some oc, Some path -> write_openmetrics oc path reg
    | _ -> ());
    if exit_code <> 0 then exit exit_code
  in
  match target with
  | "compete" -> drive ~init:init_compete ~check:check_compete
  | "splitter" -> drive ~init:init_splitter ~check:check_splitter
  | "race" -> drive ~init:init_race ~check:check_race
  | other ->
      Printf.eprintf "unknown target %S (compete|splitter|race)\n" other;
      exit 2

(* ------------------------------------------------------------------ *)
(* experiments subcommand                                              *)
(* ------------------------------------------------------------------ *)

let run_experiments only json =
  let named =
    match only with
    | None -> E.all_named
    | Some id -> (
        let id = String.uppercase_ascii id in
        match List.filter (fun (i, _) -> i = id) E.all_named with
        | [] ->
            Printf.eprintf "unknown experiment id %S; valid ids: %s\n" id
              (String.concat " " (List.map fst E.all_named));
            exit 2
        | sel -> sel)
  in
  match json with
  | Some path ->
      let entries = Report.observe named in
      List.iter (fun e -> Table.print e.Report.table) entries;
      Report.write_file path entries;
      Printf.printf "wrote %s (%d experiments)\n" path (List.length entries)
  | None -> List.iter (fun (_, f) -> Table.print (f ())) named

(* ------------------------------------------------------------------ *)
(* conformance subcommand                                              *)
(* ------------------------------------------------------------------ *)

module Conf_adapter = Exsel_conformance.Adapter
module Conf_regime = Exsel_conformance.Regime
module Campaign = Exsel_conformance.Campaign

let run_conformance algos regimes adversary seeds_spec k steps_multiple
    max_commits no_shrink jobs json chrome metrics_out events_file progress
    us_per_commit =
  let algos =
    match algos with
    | [] -> Conf_adapter.honest
    | ids ->
        List.map
          (fun id ->
            match Conf_adapter.find id with
            | Some a -> a
            | None ->
                Printf.eprintf "unknown algorithm %S; valid ids: %s\n" id
                  (String.concat " " (Conf_adapter.ids ()));
                exit 2)
          ids
  in
  let named_regimes =
    List.map
      (fun id ->
        match Conf_regime.find id with
        | Some r -> r
        | None ->
            Printf.eprintf "unknown regime %S; valid ids: %s\n" id
              (String.concat " " (Conf_regime.ids ()));
            exit 2)
      regimes
  in
  let dsl_regimes =
    List.map
      (fun expr ->
        match Conf_regime.of_string expr with
        | Ok r -> r
        | Error msg ->
            Printf.eprintf "--adversary %S: %s\n" expr msg;
            exit 2)
      adversary
  in
  let regimes =
    match named_regimes @ dsl_regimes with
    | [] -> Conf_regime.all
    | rs -> rs
  in
  let seeds =
    match Campaign.seeds_of_string seeds_spec with
    | Ok seeds -> seeds
    | Error msg ->
        Printf.eprintf "--seeds %s: %s\n" seeds_spec msg;
        exit 2
  in
  if k < 2 then begin
    Printf.eprintf "--k must be at least 2\n";
    exit 2
  end;
  let jobs = resolve_jobs jobs in
  check_us_per_commit us_per_commit;
  let metrics_oc = Option.map open_out_or_exit2 metrics_out in
  let events_oc = Option.map open_out_or_exit2 events_file in
  let em = make_emitter ~events_oc ~progress in
  let cfg =
    {
      Campaign.algos;
      regimes;
      seeds;
      k;
      steps_multiple;
      max_commits;
      shrink = not no_shrink;
    }
  in
  emit em (Campaign.start_event cfg);
  let report =
    Campaign.run ~jobs ~on_event:(fun ev -> emit em (Campaign.event_json ev)) cfg
  in
  emit em (Campaign.done_event report);
  Option.iter close_out events_oc;
  Format.printf "%a" Campaign.pp_summary report;
  (match (metrics_oc, metrics_out) with
  | Some oc, Some path -> write_openmetrics oc path report.Campaign.r_metrics
  | _ -> ());
  (match json with
  | Some path ->
      Trace_export.write_file path (Campaign.to_json report);
      Printf.printf "wrote %s\n" path
  | None -> ());
  (match chrome with
  | Some path -> (
      let first_trace =
        List.find_map
          (fun c ->
            match c.Campaign.c_violation with
            | Some v when v.Campaign.v_trace <> [] -> Some v.Campaign.v_trace
            | _ -> None)
          report.Campaign.r_cells
      in
      match first_trace with
      | Some events ->
          Trace_export.write_file path
            (Trace_export.chrome ~us_per_commit events);
          Printf.printf "wrote %s\n" path
      | None -> Printf.printf "no violation trace to export to %s\n" path)
  | None -> ());
  if report.Campaign.r_violations > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* service subcommand                                                  *)
(* ------------------------------------------------------------------ *)

module Service_core = Exsel_service.Core
module Churn = Exsel_service.Churn

let parse_adversary_opt = function
  | None -> None
  | Some expr -> (
      match Exsel_adversary.Dsl.parse expr with
      | Ok e -> Some e
      | Error msg ->
          Printf.eprintf "--adversary %S: %s\n" expr msg;
          exit 2)

let run_service backend domains shards cap sessions rounds entry churn
    seeds_spec max_commits adversary jobs json chrome metrics_out events_file
    progress us_per_commit =
  let backend =
    match backend with
    | "sim" ->
        (match domains with
        | Some _ ->
            Printf.eprintf "--domains only applies to --backend native\n";
            exit 2
        | None -> ());
        Churn.Sim
    | "native" -> Churn.Native { domains = Option.value domains ~default:4 }
    | other ->
        Printf.eprintf "unknown backend %S; valid: sim, native\n" other;
        exit 2
  in
  (match (backend, chrome) with
  | Churn.Native _, Some _ ->
      Printf.eprintf
        "--chrome only applies to --backend sim (traces are commit-clock)\n";
      exit 2
  | _ -> ());
  let entry =
    match Service_core.entry_algo_of_string entry with
    | Some e -> e
    | None ->
        Printf.eprintf "unknown entry renamer %S; valid: efficient, adaptive\n"
          entry;
        exit 2
  in
  let regimes =
    match churn with
    | [] -> Churn.all_regimes
    | ids ->
        List.map
          (fun id ->
            match Churn.regime_of_string id with
            | Some r -> r
            | None ->
                Printf.eprintf "unknown churn regime %S; valid ids: %s\n" id
                  (String.concat " " (Churn.regime_ids ()));
                exit 2)
          ids
  in
  let seeds =
    match Campaign.seeds_of_string seeds_spec with
    | Ok seeds -> seeds
    | Error msg ->
        Printf.eprintf "--seeds %s: %s\n" seeds_spec msg;
        exit 2
  in
  let adversary = parse_adversary_opt adversary in
  let cfg =
    {
      Churn.shards;
      cap;
      sessions;
      rounds;
      entry;
      regimes;
      seeds;
      backend;
      max_commits;
      adversary;
    }
  in
  (match Churn.validate cfg with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2);
  let jobs = resolve_jobs jobs in
  check_us_per_commit us_per_commit;
  let metrics_oc = Option.map open_out_or_exit2 metrics_out in
  let events_oc = Option.map open_out_or_exit2 events_file in
  let em = make_emitter ~events_oc ~progress in
  emit em (Churn.start_event cfg);
  let report =
    Churn.run ~jobs ~on_event:(fun ev -> emit em (Churn.event_json ev)) cfg
  in
  emit em (Churn.done_event report);
  Option.iter close_out events_oc;
  Format.printf "%a" Churn.pp_summary report;
  (match (metrics_oc, metrics_out) with
  | Some oc, Some path -> write_openmetrics oc path report.Churn.r_metrics
  | _ -> ());
  (match json with
  | Some path ->
      Trace_export.write_file path (Churn.to_json report);
      Printf.printf "wrote %s\n" path
  | None -> ());
  (match chrome with
  | Some path ->
      (* re-run one cell with traces attached — prefer the hot-shard
         regime (the skew is what the Perfetto view is for) — and export
         the busiest shard's commit-clock track *)
      let regime =
        if List.mem Churn.Hot_shard regimes then Churn.Hot_shard
        else List.hd regimes
      in
      let traces = Churn.shard_traces cfg regime ~seed:(List.hd seeds) in
      let shard, _, events =
        List.fold_left
          (fun ((_, best, _) as acc) ((_, commits, _) as cand) ->
            if commits > best then cand else acc)
          (List.hd traces) (List.tl traces)
      in
      Trace_export.write_file path (Trace_export.chrome ~us_per_commit events);
      Printf.printf "wrote %s (shard %d, %s regime)\n" path shard
        (Churn.regime_id regime)
  | None -> ());
  if report.Churn.r_violations > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* workload subcommand                                                 *)
(* ------------------------------------------------------------------ *)

module Workload = Exsel_service.Workload

let run_workload backend domains shards cap entry rounds rate burst_every hold
    patterns seeds_spec max_commits adversary jobs json chrome metrics_out
    events_file progress us_per_commit =
  let backend =
    match backend with
    | "sim" ->
        (match domains with
        | Some _ ->
            Printf.eprintf "--domains only applies to --backend native\n";
            exit 2
        | None -> ());
        Churn.Sim
    | "native" -> Churn.Native { domains = Option.value domains ~default:4 }
    | other ->
        Printf.eprintf "unknown backend %S; valid: sim, native\n" other;
        exit 2
  in
  (match (backend, chrome) with
  | Churn.Native _, Some _ ->
      Printf.eprintf
        "--chrome only applies to --backend sim (traces are commit-clock)\n";
      exit 2
  | _ -> ());
  let entry =
    match Service_core.entry_algo_of_string entry with
    | Some e -> e
    | None ->
        Printf.eprintf "unknown entry renamer %S; valid: efficient, adaptive\n"
          entry;
        exit 2
  in
  let patterns =
    match patterns with
    | [] -> Workload.all_patterns
    | ids ->
        List.map
          (fun id ->
            match Workload.pattern_of_string id with
            | Some p -> p
            | None ->
                Printf.eprintf "unknown arrival pattern %S; valid ids: %s\n" id
                  (String.concat " " (Workload.pattern_ids ()));
                exit 2)
          ids
  in
  let seeds =
    match Campaign.seeds_of_string seeds_spec with
    | Ok seeds -> seeds
    | Error msg ->
        Printf.eprintf "--seeds %s: %s\n" seeds_spec msg;
        exit 2
  in
  let adversary = parse_adversary_opt adversary in
  let cfg =
    {
      Workload.shards;
      cap;
      entry;
      rounds;
      rate;
      burst_every;
      hold;
      patterns;
      seeds;
      backend;
      max_commits;
      adversary;
    }
  in
  (match Workload.validate cfg with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2);
  let jobs = resolve_jobs jobs in
  check_us_per_commit us_per_commit;
  let metrics_oc = Option.map open_out_or_exit2 metrics_out in
  let events_oc = Option.map open_out_or_exit2 events_file in
  let em = make_emitter ~events_oc ~progress in
  emit em (Workload.start_event cfg);
  let report =
    Workload.run ~jobs ~on_event:(fun ev -> emit em (Workload.event_json ev)) cfg
  in
  emit em (Workload.done_event report);
  Option.iter close_out events_oc;
  Format.printf "%a" Workload.pp_summary report;
  (match (metrics_oc, metrics_out) with
  | Some oc, Some path -> write_openmetrics oc path report.Workload.wr_metrics
  | _ -> ());
  (match json with
  | Some path ->
      Trace_export.write_file path (Workload.to_json report);
      Printf.printf "wrote %s\n" path
  | None -> ());
  (match chrome with
  | Some path ->
      (* re-run one cell with traces attached — prefer the bursty
         pattern (the clumped arrivals are what the Perfetto view is
         for) — and export the busiest shard's commit-clock track *)
      let pattern =
        if List.mem Workload.Bursty patterns then Workload.Bursty
        else List.hd patterns
      in
      let traces = Workload.shard_traces cfg pattern ~seed:(List.hd seeds) in
      let shard, _, events =
        List.fold_left
          (fun ((_, best, _) as acc) ((_, commits, _) as cand) ->
            if commits > best then cand else acc)
          (List.hd traces) (List.tl traces)
      in
      Trace_export.write_file path (Trace_export.chrome ~us_per_commit events);
      Printf.printf "wrote %s (shard %d, %s pattern)\n" path shard
        (Workload.pattern_id pattern)
  | None -> ());
  if report.Workload.wr_violations > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* cmdliner wiring                                                     *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (runs are reproducible).")

let k_t = Arg.(value & opt int 8 & info [ "k"; "contention" ] ~docv:"K" ~doc:"Contention bound known to the code.")
let n_t = Arg.(value & opt int 16 & info [ "n"; "total" ] ~docv:"N" ~doc:"Total number of processes.")

let n_names_t =
  Arg.(value & opt int 1024 & info [ "names" ] ~docv:"NAMES" ~doc:"Size of the original name space.")

let procs_t =
  Arg.(value & opt int 8 & info [ "procs" ] ~docv:"P" ~doc:"Number of contending processes to run.")

let crash_t =
  let crash_conv =
    let parse s =
      match String.split_on_char '@' s with
      | [ pid; commit ] -> (
          match (int_of_string_opt pid, int_of_string_opt commit) with
          | Some p, Some c -> Ok (c, p)
          | _ -> Error (`Msg "expected PID@COMMIT"))
      | _ -> Error (`Msg "expected PID@COMMIT")
    in
    Arg.conv (parse, fun ppf (c, p) -> Format.fprintf ppf "%d@%d" p c)
  in
  Arg.(value & opt_all crash_conv [] & info [ "crash" ] ~docv:"PID@COMMIT" ~doc:"Crash process PID just before global commit COMMIT (repeatable).")

let algo_t =
  Arg.(
    value
    & opt algo_conv Adaptive
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:
          "Algorithm: ma, snapshot, majority, basic, polylog, efficient, almost-adaptive, adaptive, chain.")

let profile_t =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Print the per-register contention profile after the run (on the \
           simulator also the per-phase span aggregates; on --backend \
           native the hot-register ranking and per-domain busy/task \
           stats).")

let json_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the run's metrics, contention profile and span trees to $(docv).")

let chrome_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event file to $(docv), loadable at \
           ui.perfetto.dev: on the simulator one track per process (phase \
           spans, value-carrying commit instants, commit clock); on \
           --backend native one track per domain (wall-clock rename spans \
           plus the engine's spawn/join overheads).")

let us_per_commit_t =
  Arg.(
    value & opt int 1000
    & info [ "us-per-commit" ] ~docv:"US"
        ~doc:
          "Chrome-trace time scale: microseconds per simulator commit \
           (default 1000).  Use a smaller scale to keep dense campaign \
           traces readable in Perfetto.")

let metrics_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's metrics registry as an OpenMetrics/Prometheus \
           text exposition to $(docv) (an unwritable path exits 2 before \
           the run starts).")

let events_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:
          "Stream live exsel-events/1 progress events to $(docv) as NDJSON, \
           flushed per event (an unwritable path exits 2 before the run \
           starts).")

let progress_t =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:"Mirror the exsel-events/1 NDJSON progress stream to stderr.")

let backend_t =
  Arg.(
    value & opt string "sim"
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Substrate to run on: $(b,sim) (the deterministic simulator; \
           default) or $(b,native) (real Atomic.t registers on OCaml 5 \
           domains; supports --algo ma, efficient and adaptive, sizes the \
           instance from --procs, and checks the paper's claims post hoc \
           on the decision log).")

let domains_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "With --backend native: real domains in the worker pool (default \
           4); logical processes beyond $(docv) are work-queued.")

let warmup_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "warmup" ] ~docv:"K"
        ~doc:
          "With --backend native: run $(docv) complete throwaway campaigns \
           before the measured one (pool cold-start stays out of the \
           reported latencies; the warmup cost is printed separately).")

let rename_trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "With --backend native: write the engine's wall-clock flight \
           record as an exsel-native-trace/1 document to $(docv).")

let rename_cmd =
  let doc = "run a renaming algorithm and print the assignment" in
  Cmd.v (Cmd.info "rename" ~doc)
    Term.(
      const run_rename $ backend_t $ domains_t $ warmup_t $ algo_t $ k_t $ n_t
      $ n_names_t $ procs_t $ seed_t $ crash_t $ profile_t $ json_t
      $ rename_trace_t $ chrome_t $ metrics_out_t $ us_per_commit_t)

let deposit_cmd =
  let doc = "run a repository (Selfish- or Altruistic-Deposit) with crashes" in
  let altruistic =
    Arg.(value & flag & info [ "altruistic" ] ~doc:"Use the wait-free Altruistic-Deposit.")
  in
  let per = Arg.(value & opt int 5 & info [ "per" ] ~docv:"D" ~doc:"Deposits per process.") in
  let crashed =
    Arg.(value & opt int 1 & info [ "crashed" ] ~docv:"C" ~doc:"Processes to crash mid-run.")
  in
  Cmd.v (Cmd.info "deposit" ~doc)
    Term.(const run_deposit $ altruistic $ n_t $ per $ crashed $ seed_t)

let naming_cmd =
  let doc = "acquire unbounded names exclusively (Theorem 10)" in
  let per = Arg.(value & opt int 5 & info [ "per" ] ~docv:"D" ~doc:"Names per process.") in
  Cmd.v (Cmd.info "naming" ~doc) Term.(const run_naming $ n_t $ per $ seed_t)

let adversary_cmd =
  let doc = "drive the lower-bound adversary (Theorem 6) against an algorithm" in
  Cmd.v (Cmd.info "adversary" ~doc)
    Term.(const run_adversary $ algo_t $ k_t $ n_names_t $ seed_t)

let lease_cmd =
  let doc = "run long-lived renaming (acquire/release churn)" in
  let rounds = Arg.(value & opt int 5 & info [ "rounds" ] ~docv:"R" ~doc:"Acquire/release rounds per process.") in
  Cmd.v (Cmd.info "lease" ~doc) Term.(const run_lease $ n_t $ rounds $ seed_t)

let msgrename_cmd =
  let doc = "run the ABDPR message-passing renaming (reference [14])" in
  let f_t = Arg.(value & opt int 1 & info [ "f"; "faults" ] ~docv:"F" ~doc:"Crash bound, 2f < n.") in
  let crashed = Arg.(value & opt int 0 & info [ "crashed" ] ~docv:"C" ~doc:"Processes to crash mid-run.") in
  Cmd.v (Cmd.info "msgrename" ~doc) Term.(const run_msgrename $ n_t $ f_t $ crashed $ seed_t)

let explore_cmd =
  let doc = "model-check a primitive over every schedule of a small instance" in
  let target = Arg.(value & pos 0 string "compete" & info [] ~docv:"TARGET" ~doc:"compete, splitter, or race (a deliberately buggy counter).") in
  let contenders = Arg.(value & opt int 2 & info [ "contenders" ] ~docv:"K" ~doc:"Concurrent contenders.") in
  let crashes = Arg.(value & opt int 0 & info [ "crashes" ] ~docv:"C" ~doc:"Crash decisions allowed per schedule.") in
  let reduce = Arg.(value & flag & info [ "reduce" ] ~doc:"Enable sleep-set partial-order reduction.") in
  let shrink = Arg.(value & flag & info [ "shrink" ] ~doc:"Minimize the counterexample schedule (ddmin) before reporting it.") in
  let max_paths = Arg.(value & opt int 1_000_000 & info [ "max-paths" ] ~docv:"P" ~doc:"Stop after checking $(docv) schedules (exit 3 when hit).") in
  let jobs = Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Shard top-level schedule branches across $(docv) domains (0 = one per core); the outcome is identical to -j 1.") in
  let trace = Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"On violation, write the counterexample's value-carrying trace as an exsel-trace/1 document to $(docv).") in
  let chrome = Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE" ~doc:"On violation, write the counterexample as Chrome trace-event JSON to $(docv) (open at ui.perfetto.dev).") in
  let json = Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Write the exploration outcome (stats, failure, trace) as one exsel-explore/1 document to $(docv).") in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const run_explore $ target $ contenders $ crashes $ reduce $ shrink $ max_paths
      $ jobs $ trace $ chrome $ json $ metrics_out_t $ events_t $ progress_t
      $ us_per_commit_t)

let conformance_cmd =
  let doc =
    "run crash-fault conformance campaigns checking every paper claim"
  in
  let algos =
    Arg.(
      value & opt_all string []
      & info [ "algo" ] ~docv:"ID"
          ~doc:
            "Algorithm adapter to campaign (repeatable; default: all honest \
             adapters).  Ids: compete, ma, attiya, majority, basic, polylog, \
             efficient, almost-adaptive, adaptive, buggy-ma.")
  in
  let regimes =
    Arg.(
      value & opt_all string []
      & info [ "regime" ] ~docv:"ID"
          ~doc:
            "Fault regime to campaign under (repeatable; default: all).  Ids: \
             random, crash-half, crash-on-write, freeze, lockstep.")
  in
  let seeds =
    Arg.(
      value & opt string "3"
      & info [ "seeds" ] ~docv:"N|LIST"
          ~doc:
            "Seeds per cell: a count (campaigns run seeds 1..N) or an \
             explicit comma-separated list (e.g. 3,7,11).  Duplicate and \
             negative seeds are rejected.")
  in
  let k =
    Arg.(
      value & opt int 5
      & info [ "k"; "contention" ] ~docv:"K" ~doc:"Contenders per instance.")
  in
  let steps_multiple =
    Arg.(
      value & opt float 1.0
      & info [ "steps-multiple" ] ~docv:"X"
          ~doc:
            "Tolerance on each adapter's local-steps budget (1.0 = exactly as \
             claimed).")
  in
  let max_commits =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-commits" ] ~docv:"C"
          ~doc:"Per-run liveness budget (exhausting it is a violation).")
  in
  let adversary =
    Arg.(
      value & opt_all string []
      & info [ "adversary" ] ~docv:"EXPR"
          ~doc:
            "Campaign under an adversary DSL term (repeatable), e.g. \
             $(b,crash(half, budget(1, uniform))) or $(b,phase(40, lockstep) \
             >> freeze([0,1], 10..60, uniform)).  Terms: uniform, lockstep, \
             first, halt, crash(V, E), crashw(V, E), freeze(V, E), freeze(V, \
             LO..HI, E), cap(N, E), budget(B, E), phase(N, E) >> E'.  \
             Victims V: half, or an explicit pid list [0,2,5].  Without \
             --regime, only the given terms run.")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ]
          ~doc:"Skip ddmin minimization of violating schedules.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Shard the algo\xc3\x97regime matrix across $(docv) domains (0 = \
             one per core).  The report is byte-identical to -j 1.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the full report as one exsel-conformance/1 document to \
             $(docv).")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Write the first violation's value-carrying trace as Chrome \
             trace-event JSON to $(docv) (open at ui.perfetto.dev).")
  in
  Cmd.v (Cmd.info "conformance" ~doc)
    Term.(
      const run_conformance $ algos $ regimes $ adversary $ seeds $ k
      $ steps_multiple $ max_commits $ no_shrink $ jobs $ json $ chrome
      $ metrics_out_t $ events_t $ progress_t $ us_per_commit_t)

let service_cmd =
  let doc =
    "run the long-lived renaming service through seeded churn campaigns"
  in
  let shards =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Independent service shards; the global namespace is partitioned \
             statically, shard $(i,i) owning names [i\xc2\xb7stride, \
             (i+1)\xc2\xb7stride).")
  in
  let cap =
    Arg.(
      value & opt int 4
      & info [ "cap" ] ~docv:"K"
          ~doc:
            "Per-shard session capacity: admission control keeps occupancy \
             (live + crash-pinned) at most $(docv), bounding acquired local \
             names below 2\xc2\xb7$(docv) \xe2\x88\x92 1.")
  in
  let sessions =
    Arg.(
      value & opt int 6
      & info [ "sessions" ] ~docv:"N"
          ~doc:"Service-wide target of concurrent sessions.")
  in
  let rounds =
    Arg.(
      value & opt int 6
      & info [ "rounds" ] ~docv:"R" ~doc:"Churn rounds per campaign cell.")
  in
  let entry =
    Arg.(
      value & opt string "efficient"
      & info [ "entry" ] ~docv:"ALGO"
          ~doc:
            "One-shot entry renamer assigning arriving sessions their \
             component slot: $(b,efficient) or $(b,adaptive).")
  in
  let churn =
    Arg.(
      value & opt_all string []
      & info [ "churn" ] ~docv:"ID"
          ~doc:
            "Churn regime to campaign under (repeatable; default: all).  \
             Ids: waves, crash-rejoin, hot-shard.")
  in
  let seeds =
    Arg.(
      value & opt string "3"
      & info [ "seeds" ] ~docv:"N|LIST"
          ~doc:
            "Seeds per regime: a count (campaigns run seeds 1..N) or an \
             explicit comma-separated list (e.g. 3,7,11).")
  in
  let max_commits =
    Arg.(
      value & opt int 200_000
      & info [ "max-commits" ] ~docv:"C"
          ~doc:
            "Per-round liveness budget on the simulator (exhausting it is a \
             violation).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Shard the regime\xc3\x97seed matrix across $(docv) domains (0 = \
             one per core).  The report is byte-identical to -j 1.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the full report as one exsel-service/1 document to \
                $(docv).")
  in
  let adversary =
    Arg.(
      value
      & opt (some string) None
      & info [ "adversary" ] ~docv:"EXPR"
          ~doc:
            "Replace the uniform within-shard simulator scheduler with a \
             crash-free adversary DSL term, e.g. $(b,cap(2, lockstep)) or \
             $(b,budget(1, uniform)) (sim backend only; crash decisions are \
             rejected — the churn regime owns the session ledger).")
  in
  Cmd.v (Cmd.info "service" ~doc)
    Term.(
      const run_service $ backend_t $ domains_t $ shards $ cap $ sessions
      $ rounds $ entry $ churn $ seeds $ max_commits $ adversary $ jobs $ json
      $ chrome_t $ metrics_out_t $ events_t $ progress_t $ us_per_commit_t)

let workload_cmd =
  let doc =
    "drive open-loop seeded traffic at the service and measure latency tails"
  in
  let shards =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"S" ~doc:"Independent service shards.")
  in
  let cap =
    Arg.(
      value & opt int 4
      & info [ "cap" ] ~docv:"K"
          ~doc:
            "Per-shard session capacity; arrivals beyond the service's total \
             room are rejected open-loop (they never retry).")
  in
  let entry =
    Arg.(
      value & opt string "efficient"
      & info [ "entry" ] ~docv:"ALGO"
          ~doc:"One-shot entry renamer: $(b,efficient) or $(b,adaptive).")
  in
  let rounds =
    Arg.(
      value & opt int 8
      & info [ "rounds" ] ~docv:"R" ~doc:"Arrival rounds per campaign cell.")
  in
  let rate =
    Arg.(
      value & opt int 3
      & info [ "rate" ] ~docv:"L"
          ~doc:"Mean arrivals per round (every pattern has this long-run mean).")
  in
  let burst_every =
    Arg.(
      value & opt int 4
      & info [ "burst-every" ] ~docv:"B"
          ~doc:
            "Bursty pattern: a burst of rate\xc2\xb7$(docv) arrivals every \
             $(docv) rounds, nothing in between.")
  in
  let hold =
    Arg.(
      value & opt int 2
      & info [ "hold" ] ~docv:"H"
          ~doc:"Mean rounds a session holds its name before releasing.")
  in
  let patterns =
    Arg.(
      value & opt_all string []
      & info [ "pattern" ] ~docv:"ID"
          ~doc:
            "Arrival pattern to campaign under (repeatable; default: all).  \
             Ids: poisson, bursty, steady.")
  in
  let seeds =
    Arg.(
      value & opt string "3"
      & info [ "seeds" ] ~docv:"N|LIST"
          ~doc:
            "Seeds per pattern: a count (campaigns run seeds 1..N) or an \
             explicit comma-separated list (e.g. 3,7,11).")
  in
  let max_commits =
    Arg.(
      value & opt int 200_000
      & info [ "max-commits" ] ~docv:"C"
          ~doc:
            "Per-round liveness budget on the simulator (exhausting it is a \
             violation).")
  in
  let adversary =
    Arg.(
      value
      & opt (some string) None
      & info [ "adversary" ] ~docv:"EXPR"
          ~doc:
            "Replace the uniform within-shard simulator scheduler with a \
             crash-free adversary DSL term, e.g. $(b,cap(2, lockstep)) or \
             $(b,budget(1, uniform)) (sim backend only).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Shard the pattern\xc3\x97seed matrix across $(docv) domains (0 = \
             one per core).  The report is byte-identical to -j 1.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the full report as one exsel-workload/1 document to \
                $(docv).")
  in
  Cmd.v (Cmd.info "workload" ~doc)
    Term.(
      const run_workload $ backend_t $ domains_t $ shards $ cap $ entry
      $ rounds $ rate $ burst_every $ hold $ patterns $ seeds $ max_commits
      $ adversary $ jobs $ json $ chrome_t $ metrics_out_t $ events_t
      $ progress_t $ us_per_commit_t)

let experiments_cmd =
  let doc = "regenerate the paper-reproduction tables and figures" in
  let only =
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"ID" ~doc:"Run a single experiment (T1..T9, F1, F2, A1..A3, X1..X3).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write every selected table plus per-run observations as one \
             exsel-bench/1 document to $(docv).")
  in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const run_experiments $ only $ json)

let () =
  let doc = "asynchronous exclusive selection (Chlebus & Kowalski, PODC 2008)" in
  let info = Cmd.info "exsel" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            rename_cmd;
            deposit_cmd;
            naming_cmd;
            adversary_cmd;
            lease_cmd;
            msgrename_cmd;
            explore_cmd;
            conformance_cmd;
            service_cmd;
            workload_cmd;
            experiments_cmd;
          ]))
