(* Tests for the wait-free atomic snapshot. *)

open Exsel_sim
module Snapshot = Exsel_snapshot.Snapshot

let test_sequential_update_scan () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let snap = Snapshot.create mem ~name:"w" ~n:3 ~init:0 in
  let view = ref [||] in
  let _p =
    Runtime.spawn rt ~name:"p" (fun () ->
        Snapshot.update snap ~me:0 7;
        Snapshot.update snap ~me:0 8;
        view := Snapshot.scan snap ~me:0)
  in
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check (array int)) "sees own last update" [| 8; 0; 0 |] !view

let test_solo_scan_is_flat_collect () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let snap = Snapshot.create mem ~name:"w" ~n:4 ~init:(-1) in
  let view = ref [||] in
  let _p = Runtime.spawn rt ~name:"p" (fun () -> view := Snapshot.scan snap ~me:0) in
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check (array int)) "initial view" [| -1; -1; -1; -1 |] !view

let test_scan_linearizable_under_random_schedules () =
  let trials = 40 in
  for seed = 1 to trials do
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let n = 3 in
    let snap = Snapshot.create mem ~name:"w" ~n ~init:0 in
    (* Each updater records (commit_index, comp, value) right after its
       update returns — the commit counter at that point is exactly the
       index of the update's write commit.  A scan records its start/end
       commit indices as its linearization window. *)
    let writes = ref [] in
    let scans = ref [] in
    for i = 0 to n - 1 do
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "u%d" i) (fun () ->
             for v = 1 to 3 do
               let value = (10 * (i + 1)) + v in
               Snapshot.update snap ~me:i value;
               writes := (Runtime.commits rt, i, value) :: !writes
             done))
    done;
    ignore
      (Runtime.spawn rt ~name:"scanner" (fun () ->
           let lo = Runtime.commits rt in
           let view = Snapshot.scan snap ~me:0 in
           let hi = Runtime.commits rt in
           scans := (lo, hi, view) :: !scans));
    Scheduler.run rt (Scheduler.random (Rng.create ~seed));
    (* The recorded write index is the commit counter when the updater
       resumed after its write, i.e. an upper bound on the linearization
       point; validity windows built from it are conservative but sound
       for cut checking because relative order per component is exact. *)
    List.iter
      (fun (lo, hi, view) ->
        let writes =
          List.rev_map
            (fun (at, location, value) -> { Linearize.at; location; value })
            !writes
        in
        let view_pairs = Array.to_list (Array.mapi (fun i v -> (i, v)) view) in
        if
          not
            (Linearize.consistent_cut ~writes ~window:(lo, hi) ~view:view_pairs
               ~init:(fun _ -> 0))
        then
          Alcotest.failf "seed %d: scan view %s is not a consistent cut" seed
            (String.concat ","
               (Array.to_list (Array.map string_of_int view))))
      !scans
  done

let test_scan_never_goes_backwards () =
  (* Repeated scans by one process must observe monotonically advancing
     per-component values (single-writer components only advance). *)
  for seed = 1 to 20 do
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let n = 3 in
    let snap = Snapshot.create mem ~name:"w" ~n ~init:0 in
    for i = 1 to n - 1 do
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "u%d" i) (fun () ->
             for v = 1 to 5 do
               Snapshot.update snap ~me:i v
             done))
    done;
    let violation = ref false in
    ignore
      (Runtime.spawn rt ~name:"scanner" (fun () ->
           let prev = ref (Array.make n 0) in
           for _ = 1 to 5 do
             let view = Snapshot.scan snap ~me:0 in
             Array.iteri (fun i v -> if v < !prev.(i) then violation := true) view;
             prev := view
           done));
    Scheduler.run rt (Scheduler.random (Rng.create ~seed));
    Alcotest.(check bool) (Printf.sprintf "monotone (seed %d)" seed) false !violation
  done

let test_update_embeds_valid_help () =
  (* Force the helping path: a scanner interleaved with a fast updater
     must still return, and the value must be one actually written. *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let snap = Snapshot.create mem ~name:"w" ~n:2 ~init:0 in
  let view = ref [||] in
  let scanner = Runtime.spawn rt ~name:"scanner" (fun () -> view := Snapshot.scan snap ~me:0) in
  let updater =
    Runtime.spawn rt ~name:"updater" (fun () ->
        for v = 1 to 8 do
          Snapshot.update snap ~me:1 v
        done)
  in
  (* adversarial interleaving: one scanner step, then one full update *)
  let rec drive () =
    if Runtime.status scanner = Runtime.Runnable then begin
      Runtime.commit rt scanner;
      let before = Runtime.steps updater in
      let rec updater_burst () =
        if Runtime.status updater = Runtime.Runnable && Runtime.steps updater - before < 30
        then begin
          Runtime.commit rt updater;
          updater_burst ()
        end
      in
      updater_burst ();
      drive ()
    end
  in
  drive ();
  Alcotest.(check bool) "scanner finished" true (Runtime.status scanner = Runtime.Done);
  Alcotest.(check bool) "component 1 saw a written value" true
    (let v = !view.(1) in v >= 0 && v <= 8)

let test_crashed_updater_does_not_block_scan () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let snap = Snapshot.create mem ~name:"w" ~n:2 ~init:0 in
  let updater =
    Runtime.spawn rt ~name:"updater" (fun () ->
        for v = 1 to 100 do
          Snapshot.update snap ~me:1 v
        done)
  in
  (* let the updater make some progress, then crash it mid-update *)
  for _ = 1 to 7 do
    Runtime.commit rt updater
  done;
  Runtime.crash rt updater;
  let view = ref [||] in
  let scanner = Runtime.spawn rt ~name:"scanner" (fun () -> view := Snapshot.scan snap ~me:0) in
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check bool) "scan finished despite crash" true
    (Runtime.status scanner = Runtime.Done);
  Alcotest.(check int) "own component untouched" 0 !view.(0)

let test_wait_free_solo_scan_steps () =
  (* a solo scan costs exactly 2 collects = 2n reads *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let n = 5 in
  let snap = Snapshot.create mem ~name:"w" ~n ~init:0 in
  let p = Runtime.spawn rt ~name:"p" (fun () -> ignore (Snapshot.scan snap ~me:0)) in
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check int) "2n reads" (2 * n) (Runtime.steps p)

module IS = Exsel_snapshot.Immediate_snapshot

let is_run ~n ~participants ~seed =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let is = IS.create mem ~name:"is" ~n in
  let views = Array.make n None in
  List.iter
    (fun slot ->
      ignore
        (Runtime.spawn rt ~name:(string_of_int slot) (fun () ->
             views.(slot) <- Some (IS.access is ~me:slot (100 + slot)))))
    participants;
  Scheduler.run rt (Scheduler.random (Rng.create ~seed));
  views

let check_is_properties ~label views =
  let present =
    Array.to_list views
    |> List.mapi (fun slot v -> (slot, v))
    |> List.filter_map (fun (slot, v) -> Option.map (fun x -> (slot, x)) v)
  in
  (* self-inclusion *)
  List.iter
    (fun (slot, view) ->
      if not (List.mem_assoc slot view) then
        Alcotest.failf "%s: slot %d missing from own view" label slot)
    present;
  (* containment: views totally ordered by inclusion *)
  let subset a b = List.for_all (fun x -> List.mem x b) a in
  List.iter
    (fun (s1, v1) ->
      List.iter
        (fun (s2, v2) ->
          if not (subset v1 v2 || subset v2 v1) then
            Alcotest.failf "%s: views of %d and %d incomparable" label s1 s2)
        present)
    present;
  (* immediacy: q in p's view => q's view included in p's *)
  List.iter
    (fun (_, vp) ->
      List.iter
        (fun (q, _) ->
          match views.(q) with
          | Some vq ->
              if not (subset vq vp) then
                Alcotest.failf "%s: immediacy violated" label
          | None -> ())
        vp)
    present

let test_is_properties_random_schedules () =
  for seed = 1 to 60 do
    let n = 4 in
    let participants = List.init (1 + (seed mod n)) Fun.id in
    let views = is_run ~n ~participants ~seed in
    check_is_properties ~label:(Printf.sprintf "seed %d" seed) views;
    (* every participant got a view *)
    List.iter
      (fun slot ->
        if views.(slot) = None then Alcotest.failf "seed %d: no view" seed)
      participants
  done

let test_is_solo_sees_only_self () =
  let views = is_run ~n:3 ~participants:[ 1 ] ~seed:3 in
  Alcotest.(check (option (list (pair int int)))) "singleton view"
    (Some [ (1, 101) ])
    views.(1)

let test_is_full_participation_largest_view () =
  let n = 3 in
  let views = is_run ~n ~participants:[ 0; 1; 2 ] ~seed:9 in
  (* the largest view contains everyone *)
  let sizes =
    Array.to_list views |> List.filter_map Fun.id |> List.map List.length
  in
  Alcotest.(check int) "max view is full" n (List.fold_left max 0 sizes)

let () =
  Alcotest.run "exsel_snapshot"
    [
      ( "snapshot",
        [
          Alcotest.test_case "sequential update/scan" `Quick test_sequential_update_scan;
          Alcotest.test_case "solo scan" `Quick test_solo_scan_is_flat_collect;
          Alcotest.test_case "scan linearizable (random schedules)" `Quick
            test_scan_linearizable_under_random_schedules;
          Alcotest.test_case "scans monotone" `Quick test_scan_never_goes_backwards;
          Alcotest.test_case "helping path" `Quick test_update_embeds_valid_help;
          Alcotest.test_case "crash tolerance" `Quick test_crashed_updater_does_not_block_scan;
          Alcotest.test_case "solo scan step count" `Quick test_wait_free_solo_scan_steps;
        ] );
      ( "immediate-snapshot",
        [
          Alcotest.test_case "properties (random schedules)" `Quick
            test_is_properties_random_schedules;
          Alcotest.test_case "solo view" `Quick test_is_solo_sees_only_self;
          Alcotest.test_case "full participation" `Quick test_is_full_participation_largest_view;
        ] );
    ]
