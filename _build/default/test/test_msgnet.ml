(* Tests for the message-passing substrate and the ABDPR stable-vectors
   renaming (the paper's reference [14], where renaming was introduced). *)

module Mnet = Exsel_msgnet.Mnet
module Abdpr = Exsel_msgnet.Abdpr_renaming
module Rng = Exsel_sim.Rng

(* --- Mnet --- *)

let test_send_receive_roundtrip () =
  let net = Mnet.create ~n:2 in
  let got = ref None in
  let _sender = Mnet.spawn net ~me:0 (fun () -> Mnet.send net ~to_:1 "hello") in
  let receiver = Mnet.spawn net ~me:1 (fun () -> got := Some (Mnet.receive net)) in
  Mnet.run_random net (Rng.create ~seed:1);
  Alcotest.(check bool) "delivered" true (!got = Some (0, "hello"));
  Alcotest.(check bool) "receiver done" true (Mnet.status receiver = Mnet.Done)

let test_receive_blocks_until_message () =
  let net = Mnet.create ~n:2 in
  let receiver = Mnet.spawn net ~me:1 (fun () -> ignore (Mnet.receive net)) in
  Mnet.run_random net (Rng.create ~seed:1);
  Alcotest.(check bool) "still waiting" true (Mnet.status receiver = Mnet.Waiting);
  Alcotest.(check bool) "quiescent with a blocked process" true (Mnet.quiescent net)

let test_unordered_delivery_reachable () =
  (* two messages from the same sender can arrive in either order: find a
     seed for each order *)
  let order_for seed =
    let net = Mnet.create ~n:2 in
    let log = ref [] in
    let _s =
      Mnet.spawn net ~me:0 (fun () ->
          Mnet.send net ~to_:1 "a";
          Mnet.send net ~to_:1 "b")
    in
    let _r =
      Mnet.spawn net ~me:1 (fun () ->
          for _ = 1 to 2 do
            let _, m = Mnet.receive net in
            log := m :: !log
          done)
    in
    Mnet.run_random net (Rng.create ~seed);
    List.rev !log
  in
  let orders = List.init 40 order_for |> List.sort_uniq compare in
  Alcotest.(check bool) "both orders reachable" true
    (List.mem [ "a"; "b" ] orders && List.mem [ "b"; "a" ] orders)

let test_broadcast_counts () =
  let net = Mnet.create ~n:3 in
  let sender = Mnet.spawn net ~me:0 (fun () -> Mnet.broadcast net "x") in
  Mnet.run_random net (Rng.create ~seed:2);
  Alcotest.(check int) "n sends" 3 (Mnet.sent sender);
  Alcotest.(check int) "self in-flight" 1 (Mnet.in_flight net ~to_:0);
  Alcotest.(check int) "peer in-flight" 1 (Mnet.in_flight net ~to_:1)

let test_crash_drops_inbox_keeps_outbox () =
  let net = Mnet.create ~n:2 in
  let victim =
    Mnet.spawn net ~me:0 (fun () ->
        Mnet.send net ~to_:1 "survives";
        ignore (Mnet.receive net))
  in
  (* commit the send, leaving the victim waiting on an empty channel *)
  Mnet.run_random net (Rng.create ~seed:3);
  Alcotest.(check bool) "victim waiting" true (Mnet.status victim = Mnet.Waiting);
  Mnet.crash net victim;
  Alcotest.(check bool) "victim crashed" true (Mnet.status victim = Mnet.Crashed);
  Alcotest.(check int) "victim's inbox dropped" 0 (Mnet.in_flight net ~to_:0);
  (* the message it sent before crashing is still deliverable *)
  Alcotest.(check int) "sent message survives" 1 (Mnet.in_flight net ~to_:1)

let test_spawn_slot_validation () =
  let net = Mnet.create ~n:2 in
  let _a = Mnet.spawn net ~me:0 (fun () -> ()) in
  Alcotest.(check bool) "double spawn rejected" true
    (try ignore (Mnet.spawn net ~me:0 (fun () -> ())); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad slot rejected" true
    (try ignore (Mnet.spawn net ~me:9 (fun () -> ())); false
     with Invalid_argument _ -> true)

let test_send_to_self () =
  let net = Mnet.create ~n:2 in
  let got = ref None in
  let _p =
    Mnet.spawn net ~me:0 (fun () ->
        Mnet.send net ~to_:0 "loop";
        got := Some (Mnet.receive net))
  in
  Mnet.run_random net (Rng.create ~seed:4);
  Alcotest.(check bool) "self-delivery" true (!got = Some (0, "loop"))

let test_crash_during_pending_send_drops_message () =
  let net = Mnet.create ~n:2 in
  let victim = Mnet.spawn net ~me:0 (fun () -> Mnet.send net ~to_:1 "never") in
  (* the send is pending but not committed; crash now *)
  Mnet.crash net victim;
  Alcotest.(check bool) "crashed" true (Mnet.status victim = Mnet.Crashed);
  Alcotest.(check int) "uncommitted send lost" 0 (Mnet.in_flight net ~to_:1)

let test_bad_destination_rejected () =
  let net = Mnet.create ~n:2 in
  let saw = ref false in
  let _p =
    Mnet.spawn net ~me:0 (fun () ->
        try Mnet.send net ~to_:7 "x" with Invalid_argument _ -> saw := true)
  in
  Mnet.run_random net (Rng.create ~seed:1);
  Alcotest.(check bool) "rejected" true !saw

let test_abdpr_duplicate_originals_rejected () =
  let net = Abdpr.make_net ~n:4 in
  Alcotest.(check bool) "duplicates rejected" true
    (try
       ignore
         (Abdpr.run ~net ~f:1
            ~originals:[ (0, 5); (1, 5) ]
            ~rng:(Rng.create ~seed:1) ());
       false
     with Invalid_argument _ -> true)

let prop_exactly_once_delivery =
  QCheck.Test.make ~name:"mnet: every sent message is delivered exactly once"
    ~count:60
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, msgs) ->
      let net = Mnet.create ~n:2 in
      let received = ref [] in
      let _s =
        Mnet.spawn net ~me:0 (fun () ->
            for i = 1 to msgs do
              Mnet.send net ~to_:1 i
            done)
      in
      let _r =
        Mnet.spawn net ~me:1 (fun () ->
            for _ = 1 to msgs do
              let _, m = Mnet.receive net in
              received := m :: !received
            done)
      in
      Mnet.run_random net (Rng.create ~seed);
      List.sort compare !received = List.init msgs (fun i -> i + 1))

(* --- ABDPR renaming --- *)

let run_abdpr ~n ~f ~participants ~seed ?(crash_after = []) () =
  let net = Abdpr.make_net ~n in
  let originals = List.init participants (fun i -> (i, 100 + (7 * i))) in
  let decided =
    Abdpr.run ~net ~f ~originals ~rng:(Rng.create ~seed) ~crash_after ()
  in
  (originals, decided)

let test_abdpr_failure_free_dense () =
  (* with f = 0 every process stabilises on the full set: names are
     exactly the ranks 0..n-1 *)
  let _, decided = run_abdpr ~n:4 ~f:0 ~participants:4 ~seed:5 () in
  Alcotest.(check (list int)) "dense ranks" [ 0; 1; 2; 3 ]
    (List.sort compare (List.map snd decided))

let test_abdpr_with_f_margin () =
  let _, decided = run_abdpr ~n:5 ~f:2 ~participants:5 ~seed:6 () in
  Alcotest.(check int) "all decided" 5 (List.length decided);
  let names = List.map snd decided in
  Alcotest.(check bool) "distinct" true
    (List.length (List.sort_uniq compare names) = 5);
  List.iter
    (fun nm ->
      Alcotest.(check bool) "within (f+1)n" true (nm >= 0 && nm < Abdpr.name_bound ~n:5 ~f:2))
    names

let test_abdpr_with_crashes () =
  for seed = 1 to 10 do
    let n = 5 and f = 2 in
    let _, decided =
      run_abdpr ~n ~f ~participants:n ~seed
        ~crash_after:[ (0, 10 + seed); (1, 30 + seed) ]
        ()
    in
    (* survivors (at least n - f = 3) decide; crashed may or may not have *)
    if List.length decided < n - f then
      Alcotest.failf "seed %d: only %d decided" seed (List.length decided);
    let names = List.map snd decided in
    if List.length (List.sort_uniq compare names) <> List.length names then
      Alcotest.failf "seed %d: duplicate names" seed;
    List.iter
      (fun nm ->
        if nm < 0 || nm >= Abdpr.name_bound ~n ~f then
          Alcotest.failf "seed %d: name %d out of range" seed nm)
      names
  done

let test_abdpr_rejects_bad_f () =
  let net = Abdpr.make_net ~n:4 in
  Alcotest.(check bool) "2f >= n rejected" true
    (try
       ignore (Abdpr.run ~net ~f:2 ~originals:[ (0, 1) ] ~rng:(Rng.create ~seed:1) ());
       false
     with Invalid_argument _ -> true)

let prop_abdpr_exclusive =
  QCheck.Test.make ~name:"abdpr: distinct in-range names over seeds and crash counts"
    ~count:15
    QCheck.(pair small_int (int_range 0 2))
    (fun (seed, crashes) ->
      let n = 5 and f = 2 in
      let crash_after = List.init crashes (fun i -> (i, 20 + (10 * i))) in
      let _, decided = run_abdpr ~n ~f ~participants:n ~seed ~crash_after () in
      let names = List.map snd decided in
      List.length decided >= n - f
      && List.length (List.sort_uniq compare names) = List.length names
      && List.for_all (fun nm -> nm >= 0 && nm < Abdpr.name_bound ~n ~f) names)

let test_abdpr_message_complexity_bounded () =
  (* each process changes its view at most n times, broadcasting n messages
     per change: total sends <= n^2 per process (loose structural bound) *)
  let n = 4 in
  let net = Abdpr.make_net ~n in
  let originals = List.init n (fun i -> (i, 10 * i)) in
  ignore (Abdpr.run ~net ~f:1 ~originals ~rng:(Rng.create ~seed:9) ());
  List.iter
    (fun p ->
      Alcotest.(check bool) "sends bounded by n^2" true (Mnet.sent p <= n * n))
    (Mnet.procs net)

let () =
  Alcotest.run "exsel_msgnet"
    [
      ( "mnet",
        [
          Alcotest.test_case "send/receive roundtrip" `Quick test_send_receive_roundtrip;
          Alcotest.test_case "receive blocks" `Quick test_receive_blocks_until_message;
          Alcotest.test_case "unordered delivery" `Quick test_unordered_delivery_reachable;
          Alcotest.test_case "broadcast counts" `Quick test_broadcast_counts;
          Alcotest.test_case "crash semantics" `Quick test_crash_drops_inbox_keeps_outbox;
          Alcotest.test_case "spawn validation" `Quick test_spawn_slot_validation;
          Alcotest.test_case "send to self" `Quick test_send_to_self;
          Alcotest.test_case "crash drops pending send" `Quick
            test_crash_during_pending_send_drops_message;
          Alcotest.test_case "bad destination" `Quick test_bad_destination_rejected;
          Alcotest.test_case "abdpr duplicate originals" `Quick
            test_abdpr_duplicate_originals_rejected;
          QCheck_alcotest.to_alcotest prop_exactly_once_delivery;
        ] );
      ( "abdpr",
        [
          Alcotest.test_case "failure-free dense ranks" `Quick test_abdpr_failure_free_dense;
          Alcotest.test_case "f margin" `Quick test_abdpr_with_f_margin;
          Alcotest.test_case "with crashes" `Quick test_abdpr_with_crashes;
          Alcotest.test_case "rejects bad f" `Quick test_abdpr_rejects_bad_f;
          QCheck_alcotest.to_alcotest prop_abdpr_exclusive;
          Alcotest.test_case "message complexity" `Quick test_abdpr_message_complexity_bounded;
        ] );
    ]
