test/test_explore.ml: Alcotest Array Explore Exsel_renaming Exsel_sim Exsel_snapshot Format Fun Hashtbl List Memory Printf Register Runtime String
