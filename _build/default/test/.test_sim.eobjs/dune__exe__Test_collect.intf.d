test/test_collect.mli:
