test/test_repository.mli:
