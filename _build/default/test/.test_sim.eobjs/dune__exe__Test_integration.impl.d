test/test_integration.ml: Alcotest Array Exsel_collect Exsel_lowerbound Exsel_renaming Exsel_repository Exsel_sim Fun List Memory Printf Rng Runtime Scheduler
