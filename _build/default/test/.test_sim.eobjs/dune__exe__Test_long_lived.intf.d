test/test_long_lived.mli:
