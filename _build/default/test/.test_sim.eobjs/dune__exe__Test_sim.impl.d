test/test_sim.ml: Alcotest Array Exsel_sim Format Linearize List Memory Metrics QCheck QCheck_alcotest Register Rng Runtime Scheduler String Trace
