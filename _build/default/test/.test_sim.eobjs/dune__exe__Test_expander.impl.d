test/test_expander.ml: Alcotest Array Bipartite Check Exsel_expander Exsel_sim Gen List Params QCheck QCheck_alcotest
