test/test_harness.ml: Alcotest Exsel_harness Exsel_renaming List String
