test/test_lowerbound.ml: Alcotest Array Exsel_lowerbound Exsel_renaming Exsel_sim List Memory Printf Rng Runtime
