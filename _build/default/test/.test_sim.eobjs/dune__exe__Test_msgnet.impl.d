test/test_msgnet.ml: Alcotest Exsel_msgnet Exsel_sim List QCheck QCheck_alcotest
