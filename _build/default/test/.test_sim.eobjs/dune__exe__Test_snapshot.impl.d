test/test_snapshot.ml: Alcotest Array Exsel_sim Exsel_snapshot Fun Linearize List Memory Option Printf Rng Runtime Scheduler String
