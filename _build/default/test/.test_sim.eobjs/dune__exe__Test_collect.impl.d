test/test_collect.ml: Alcotest Exsel_collect Exsel_sim List Memory Printf QCheck QCheck_alcotest Rng Runtime Scheduler
