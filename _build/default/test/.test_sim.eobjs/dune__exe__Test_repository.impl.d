test/test_repository.ml: Alcotest Array Exsel_repository Exsel_sim Fun List Memory Printf QCheck QCheck_alcotest Register Rng Runtime Scheduler
