test/test_long_lived.ml: Alcotest Array Explore Exsel_renaming Exsel_sim List Memory Printf QCheck QCheck_alcotest Rng Runtime Scheduler
