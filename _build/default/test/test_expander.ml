(* Tests for the lossless-expander substrate (Lemmas 2-3). *)

open Exsel_expander
module Rng = Exsel_sim.Rng

let test_bipartite_validation () =
  let ok =
    Bipartite.create ~inputs:2 ~outputs:3 ~neighbours:[| [| 0; 1 |]; [| 1; 2 |] |]
  in
  Alcotest.(check int) "degree" 2 (Bipartite.degree ok);
  Alcotest.(check int) "edges" 4 (Bipartite.edges ok);
  let invalid f = Alcotest.(check bool) "rejects" true (try ignore (f ()); false with Invalid_argument _ -> true) in
  invalid (fun () ->
      Bipartite.create ~inputs:2 ~outputs:3 ~neighbours:[| [| 0; 0 |]; [| 1; 2 |] |]);
  invalid (fun () ->
      Bipartite.create ~inputs:2 ~outputs:3 ~neighbours:[| [| 0; 3 |]; [| 1; 2 |] |]);
  invalid (fun () ->
      Bipartite.create ~inputs:2 ~outputs:3 ~neighbours:[| [| 0 |]; [| 1; 2 |] |]);
  invalid (fun () -> Bipartite.create ~inputs:0 ~outputs:3 ~neighbours:[||])

let test_params_monotone () =
  let p = Params.practical in
  let w1 = Params.width p ~inputs:1024 ~l:4 in
  let w2 = Params.width p ~inputs:1024 ~l:8 in
  Alcotest.(check bool) "width grows with l" true (w2 > w1);
  let d1 = Params.degree p ~inputs:1024 ~l:8 in
  let d2 = Params.degree p ~inputs:65536 ~l:8 in
  Alcotest.(check bool) "degree grows with inputs" true (d2 > d1);
  Alcotest.(check bool) "paper width galactic vs practical" true
    (Params.width Params.paper ~inputs:1024 ~l:4 > 100 * w1)

let test_sample_shape () =
  let rng = Rng.create ~seed:7 in
  let g = Gen.sample rng Params.practical ~inputs:256 ~l:8 in
  Alcotest.(check int) "inputs" 256 (Bipartite.inputs g);
  Alcotest.(check int) "outputs as planned" (Params.width Params.practical ~inputs:256 ~l:8)
    (Bipartite.outputs g);
  Alcotest.(check int) "degree as planned" (Params.degree Params.practical ~inputs:256 ~l:8)
    (Bipartite.degree g)

let test_sample_deterministic () =
  let g1 = Gen.sample (Rng.create ~seed:3) Params.practical ~inputs:128 ~l:4 in
  let g2 = Gen.sample (Rng.create ~seed:3) Params.practical ~inputs:128 ~l:4 in
  let same = ref true in
  for v = 0 to 127 do
    if Bipartite.neighbours g1 v <> Bipartite.neighbours g2 v then same := false
  done;
  Alcotest.(check bool) "same seed, same graph" true !same

let test_unique_neighbours_hand_graph () =
  (* inputs 0 and 1 share output 0; input 0 uniquely owns 1, input 1 owns 2,
     input 2 owns 3 and 4. *)
  let g =
    Bipartite.create ~inputs:3 ~outputs:5
      ~neighbours:[| [| 0; 1 |]; [| 0; 2 |]; [| 3; 4 |] |]
  in
  Alcotest.(check (list int)) "all three have unique neighbours" [ 0; 1; 2 ]
    (List.sort compare (Check.unique_neighbour_inputs g [ 0; 1; 2 ]));
  Alcotest.(check int) "neighbourhood" 5 (Check.neighbourhood_size g [ 0; 1; 2 ]);
  Alcotest.(check bool) "majority holds" true (Check.majority_ok g [ 0; 1; 2 ])

let test_unique_neighbours_collision () =
  (* two inputs with identical adjacency: no unique neighbours at all *)
  let g =
    Bipartite.create ~inputs:2 ~outputs:2 ~neighbours:[| [| 0; 1 |]; [| 0; 1 |] |]
  in
  Alcotest.(check (list int)) "none unique" []
    (Check.unique_neighbour_inputs g [ 0; 1 ]);
  Alcotest.(check bool) "majority fails" false (Check.majority_ok g [ 0; 1 ]);
  Alcotest.(check bool) "singleton fine" true (Check.majority_ok g [ 0 ])

let test_duplicate_subset_rejected () =
  let g = Bipartite.create ~inputs:2 ~outputs:2 ~neighbours:[| [| 0 |]; [| 1 |] |] in
  Alcotest.(check bool) "duplicate rejected" true
    (try ignore (Check.unique_neighbour_inputs g [ 0; 0 ]); false
     with Invalid_argument _ -> true)

let test_exhaustive_cost () =
  Alcotest.(check int) "n=4 l=2: 1+4+6" 11 (Check.exhaustive_cost ~inputs:4 ~l:2);
  Alcotest.(check int) "n=10 l=1: 1+10" 11 (Check.exhaustive_cost ~inputs:10 ~l:1);
  Alcotest.(check bool) "saturates" true (Check.exhaustive_cost ~inputs:500 ~l:250 > 1_000_000)

let test_exhaustive_detects_violation () =
  let g =
    Bipartite.create ~inputs:2 ~outputs:2 ~neighbours:[| [| 0; 1 |]; [| 0; 1 |] |]
  in
  match Check.verify_exhaustive g ~l:2 with
  | Ok () -> Alcotest.fail "should have found the colliding pair"
  | Error xs -> Alcotest.(check (list int)) "violating pair" [ 0; 1 ] (List.sort compare xs)

let test_sampled_graph_passes_checks () =
  let rng = Rng.create ~seed:42 in
  let g = Gen.sample rng Params.practical ~inputs:512 ~l:8 in
  (match Check.verify_sampled (Rng.create ~seed:1) g ~l:8 ~trials:300 with
  | Ok () -> ()
  | Error xs ->
      Alcotest.failf "sampled violation on subset of size %d" (List.length xs));
  match Check.verify_greedy_adversarial g ~l:8 ~restarts:10 ~seed:5 with
  | Ok () -> ()
  | Error xs ->
      Alcotest.failf "adversarial violation on subset of size %d" (List.length xs)

let test_expansion_counts =
  QCheck.Test.make ~name:"neighbourhood at most x*degree and at least degree"
    ~count:100
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, size) ->
      let rng = Rng.create ~seed in
      let g = Gen.sample rng Params.practical ~inputs:64 ~l:8 in
      let subset = List.init (min size 64) (fun i -> i) in
      let nb = Check.neighbourhood_size g subset in
      nb <= List.length subset * Bipartite.degree g && nb >= Bipartite.degree g)

let test_majority_random_subsets =
  QCheck.Test.make ~name:"majority holds on random subsets of sampled graphs"
    ~count:60
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, l_sub) ->
      let rng = Rng.create ~seed in
      let g = Gen.sample rng Params.practical ~inputs:256 ~l:8 in
      let subset_rng = Rng.create ~seed:(seed + 1000) in
      let all = Array.init 256 (fun i -> i) in
      Rng.shuffle subset_rng all;
      let subset = Array.to_list (Array.sub all 0 l_sub) in
      Check.majority_ok g subset)

let test_functional_graph_lazy_and_valid () =
  (* a functional graph over a huge input space costs nothing until
     touched, and validates its adjacency on access *)
  let g =
    Bipartite.functional ~inputs:1_000_000 ~outputs:64 ~degree:4 (fun v ->
        Array.init 4 (fun i -> (v + (17 * i)) mod 64))
  in
  Alcotest.(check int) "degree" 4 (Bipartite.degree g);
  Alcotest.(check int) "adjacency computed on demand" 4
    (Array.length (Bipartite.neighbours g 999_999));
  let bad =
    Bipartite.functional ~inputs:10 ~outputs:4 ~degree:2 (fun _ -> [| 1; 1 |])
  in
  Alcotest.(check bool) "duplicate adjacency rejected on access" true
    (try ignore (Bipartite.neighbours bad 0); false with Invalid_argument _ -> true)

let test_functional_out_of_range_input () =
  let g = Bipartite.functional ~inputs:4 ~outputs:4 ~degree:1 (fun v -> [| v |]) in
  Alcotest.(check bool) "input bound enforced" true
    (try ignore (Bipartite.neighbours g 4); false with Invalid_argument _ -> true)

let test_paper_preset_dimensions () =
  (* Lemma 3 verbatim: degree 4 lg(N/L), width 12e4 L lg(N/L) *)
  let inputs = 1 lsl 20 and l = 16 in
  let d = Params.degree Params.paper ~inputs ~l in
  let w = Params.width Params.paper ~inputs ~l in
  Alcotest.(check int) "degree 4*16" 64 d;
  Alcotest.(check bool) "width ~ 12e4*16*16" true
    (let expect = 12.0 *. exp 4.0 *. 16.0 *. 16.0 in
     float_of_int w >= expect && float_of_int w < expect +. 2.0)

let test_tight_preset_narrower () =
  let inputs = 4096 and l = 16 in
  Alcotest.(check bool) "tight narrower than practical" true
    (Params.width Params.tight ~inputs ~l < Params.width Params.practical ~inputs ~l)

let test_greedy_adversarial_finds_planted_violation () =
  (* a graph whose first two inputs share all their neighbours: local
     search must find the violating pair *)
  let neighbours =
    Array.init 32 (fun v ->
        if v < 2 then [| 0; 1 |] else [| 2 + (v mod 30); (2 + ((v * 7) mod 30)) mod 32 |])
  in
  (* fix up duplicates in the filler rows *)
  let neighbours =
    Array.map
      (fun adj -> if adj.(0) = adj.(1) then [| adj.(0); (adj.(0) + 1) mod 32 |] else adj)
      neighbours
  in
  let g = Bipartite.create ~inputs:32 ~outputs:32 ~neighbours in
  match Check.verify_greedy_adversarial g ~l:2 ~restarts:150 ~seed:3 with
  | Ok () -> Alcotest.fail "planted violation not found"
  | Error xs -> Alcotest.(check int) "pair-sized violation" 2 (List.length xs)

let test_lazy_graph_deterministic_adjacency =
  QCheck.Test.make ~name:"sampled adjacency is a pure function of the seed" ~count:100
    QCheck.(pair small_int (int_range 0 255))
    (fun (seed, v) ->
      let g1 = Gen.sample (Rng.create ~seed) Params.practical ~inputs:256 ~l:4 in
      let g2 = Gen.sample (Rng.create ~seed) Params.practical ~inputs:256 ~l:4 in
      Bipartite.neighbours g1 v = Bipartite.neighbours g2 v)

let test_unique_neighbour_monotone =
  QCheck.Test.make ~name:"adding members never helps uniqueness" ~count:80
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, size) ->
      let g = Gen.sample (Rng.create ~seed:11) Params.tight ~inputs:128 ~l:8 in
      let rng = Rng.create ~seed in
      let all = Array.init 128 (fun i -> i) in
      Rng.shuffle rng all;
      let smaller = Array.to_list (Array.sub all 0 (size - 1)) in
      let larger = Array.to_list (Array.sub all 0 size) in
      let u_small = Check.unique_neighbour_inputs g smaller in
      let u_large = Check.unique_neighbour_inputs g larger in
      (* members of the smaller set that lose uniqueness in the larger set
         can exist; members that were not unique cannot become unique *)
      List.for_all
        (fun v -> List.mem v u_small || not (List.mem v u_large))
        smaller)

let () =
  Alcotest.run "exsel_expander"
    [
      ( "bipartite",
        [
          Alcotest.test_case "validation" `Quick test_bipartite_validation;
          Alcotest.test_case "params monotone" `Quick test_params_monotone;
        ] );
      ( "gen",
        [
          Alcotest.test_case "shape" `Quick test_sample_shape;
          Alcotest.test_case "deterministic" `Quick test_sample_deterministic;
        ] );
      ( "check",
        [
          Alcotest.test_case "hand graph uniques" `Quick test_unique_neighbours_hand_graph;
          Alcotest.test_case "collision graph" `Quick test_unique_neighbours_collision;
          Alcotest.test_case "duplicate subset rejected" `Quick test_duplicate_subset_rejected;
          Alcotest.test_case "exhaustive cost" `Quick test_exhaustive_cost;
          Alcotest.test_case "exhaustive detects violation" `Quick test_exhaustive_detects_violation;
          Alcotest.test_case "sampled graph certified" `Quick test_sampled_graph_passes_checks;
          QCheck_alcotest.to_alcotest test_expansion_counts;
          QCheck_alcotest.to_alcotest test_majority_random_subsets;
        ] );
      ( "lazy-and-presets",
        [
          Alcotest.test_case "functional graph lazy+valid" `Quick test_functional_graph_lazy_and_valid;
          Alcotest.test_case "functional input bound" `Quick test_functional_out_of_range_input;
          Alcotest.test_case "paper preset dimensions" `Quick test_paper_preset_dimensions;
          Alcotest.test_case "tight preset narrower" `Quick test_tight_preset_narrower;
          Alcotest.test_case "adversarial search finds planted pair" `Quick
            test_greedy_adversarial_finds_planted_violation;
          QCheck_alcotest.to_alcotest test_lazy_graph_deterministic_adjacency;
          QCheck_alcotest.to_alcotest test_unique_neighbour_monotone;
        ] );
    ]
