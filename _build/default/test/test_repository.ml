(* Tests for Section 5: repositories and unbounded naming. *)

open Exsel_sim
module DA = Exsel_repository.Deposit_array
module SD = Exsel_repository.Selfish_deposit
module AD = Exsel_repository.Altruistic_deposit
module UN = Exsel_repository.Unbounded_naming
module HB = Exsel_repository.Help_board

(* ------------------------------------------------------------------ *)
(* Deposit_array                                                       *)
(* ------------------------------------------------------------------ *)

let test_deposit_array_growth () =
  let mem = Memory.create () in
  let da = DA.create mem ~name:"R" in
  Alcotest.(check int) "empty" 0 (DA.allocated da);
  let r5 = DA.get da 5 in
  Alcotest.(check int) "prefix allocated" 6 (DA.allocated da);
  Alcotest.(check bool) "same register on re-get" true (r5 == DA.get da 5);
  Register.poke (DA.get da 2) (Some "x");
  Alcotest.(check (list (pair int string))) "deposited" [ (2, "x") ] (DA.deposited da);
  Alcotest.(check (list int)) "empties below 4" [ 0; 1; 3 ] (DA.empty_below da 4)

(* ------------------------------------------------------------------ *)
(* Selfish-Deposit (Theorem 8)                                         *)
(* ------------------------------------------------------------------ *)

let test_selfish_solo_deposits () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let sd = SD.create mem ~name:"sd" ~n:3 in
  let indices = ref [] in
  ignore
    (Runtime.spawn rt ~name:"p" (fun () ->
         for v = 1 to 5 do
           indices := SD.deposit sd ~me:0 v :: !indices
         done));
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check int) "five deposits" 5 (List.length !indices);
  Alcotest.(check int) "five registers used" 5 (List.length (SD.deposits sd));
  (* a solo process uses the smallest candidates first *)
  Alcotest.(check (list int)) "prefix filled" [ 0; 1; 2; 3; 4 ]
    (List.sort compare !indices)

let test_selfish_concurrent_exclusive_persistent () =
  for seed = 1 to 12 do
    let n = 2 + (seed mod 3) in
    let per_proc = 4 in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let sd = SD.create mem ~name:"sd" ~n in
    let acks = Array.make n [] in
    for i = 0 to n - 1 do
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
             for v = 1 to per_proc do
               let idx = SD.deposit sd ~me:i ((100 * i) + v) in
               acks.(i) <- (idx, (100 * i) + v) :: acks.(i)
             done))
    done;
    Scheduler.run ~max_commits:10_000_000 rt (Scheduler.random (Rng.create ~seed));
    (* every acked deposit is present with the right value *)
    Array.iter
      (List.iter (fun (idx, v) ->
           match DA.value (SD.registers sd) idx with
           | Some v' when v' = v -> ()
           | Some v' -> Alcotest.failf "seed %d: R%d overwritten: %d <> %d" seed idx v' v
           | None -> Alcotest.failf "seed %d: R%d lost its deposit" seed idx))
      acks;
    (* indices are globally distinct *)
    let all = Array.to_list acks |> List.concat |> List.map fst in
    if List.length all <> List.length (List.sort_uniq compare all) then
      Alcotest.failf "seed %d: register assigned twice" seed;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: all deposits landed" seed)
      (n * per_proc)
      (List.length (SD.deposits sd))
  done

let test_selfish_waste_bounded_by_crashes () =
  for seed = 1 to 8 do
    let n = 4 in
    let crashers = 2 in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let sd = SD.create mem ~name:"sd" ~n in
    let procs =
      Array.init n (fun i ->
          Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
              for v = 1 to 12 do
                ignore (SD.deposit sd ~me:i ((100 * i) + v))
              done))
    in
    (* let things mix, crash the first [crashers] mid-protocol, finish *)
    let rng = Rng.create ~seed in
    Scheduler.run_for rt ~commits:(200 + Rng.int rng 400) (Scheduler.random rng);
    for i = 0 to crashers - 1 do
      Runtime.crash rt procs.(i)
    done;
    (try Scheduler.run ~max_commits:10_000_000 rt (Scheduler.random rng)
     with Runtime.Stalled -> Alcotest.failf "seed %d: survivors stalled" seed);
    (* Theorem 8: the permanently pinned registers are those held in W by
       crashed processes — at most one each, so at most n-1 overall. *)
    let alive q = q >= crashers in
    let pinned = SD.pinned sd ~alive in
    if List.length pinned > n - 1 then
      Alcotest.failf "seed %d: %d pinned registers" seed (List.length pinned);
    (* and the only empty registers below the high-water mark are the
       pinned ones together with survivors' standing candidates *)
    let high = List.fold_left (fun a (i, _) -> max a i) 0 (SD.deposits sd) in
    let empties = DA.empty_below (SD.registers sd) high in
    let candidates =
      SD.candidate_lists sd |> Array.to_list |> List.concat |> List.sort_uniq compare
    in
    List.iter
      (fun i ->
        if not (List.mem i pinned || List.mem i candidates) then
          Alcotest.failf "seed %d: empty register %d is neither pinned nor a candidate"
            seed i)
      empties
  done

let test_selfish_nonblocking_progress () =
  (* even under a hostile-ish random schedule with one process crashed
     mid-deposit, the rest keep depositing (non-blockingness in practice) *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let sd = SD.create mem ~name:"sd" ~n:3 in
  let victim =
    Runtime.spawn rt ~name:"victim" (fun () -> ignore (SD.deposit sd ~me:0 1))
  in
  for _ = 1 to 9 do
    if Runtime.status victim = Runtime.Runnable then Runtime.commit rt victim
  done;
  Runtime.crash rt victim;
  let done_count = ref 0 in
  for i = 1 to 2 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
           for v = 1 to 6 do
             ignore (SD.deposit sd ~me:i ((10 * i) + v))
           done;
           incr done_count))
  done;
  Scheduler.run ~max_commits:10_000_000 rt (Scheduler.random (Rng.create ~seed:3));
  Alcotest.(check int) "both survivors finished" 2 !done_count

(* ------------------------------------------------------------------ *)
(* Unbounded naming (Theorem 10)                                       *)
(* ------------------------------------------------------------------ *)

let test_naming_solo_sequential () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let un = UN.create mem ~name:"un" ~n:3 in
  let got = ref [] in
  ignore
    (Runtime.spawn rt ~name:"p" (fun () ->
         for _ = 1 to 6 do
           got := UN.acquire un ~me:1 :: !got
         done));
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check (list int)) "smallest-first, no gaps" [ 0; 1; 2; 3; 4; 5 ]
    (List.sort compare !got)

let test_naming_concurrent_exclusive () =
  for seed = 1 to 12 do
    let n = 2 + (seed mod 3) in
    let per = 5 in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let un = UN.create mem ~name:"un" ~n in
    let got = Array.make n [] in
    for i = 0 to n - 1 do
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
             for _ = 1 to per do
               got.(i) <- UN.acquire un ~me:i :: got.(i)
             done))
    done;
    Scheduler.run ~max_commits:10_000_000 rt (Scheduler.random (Rng.create ~seed));
    let all = Array.to_list got |> List.concat in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: all acquired" seed)
      (n * per) (List.length all);
    if List.length (List.sort_uniq compare all) <> List.length all then
      Alcotest.failf "seed %d: duplicate names" seed;
    (* engine bookkeeping agrees with what processes observed *)
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d: ledger matches" seed)
      (List.sort compare all) (UN.committed_names un)
  done

let test_naming_skipped_integers_bounded () =
  (* after heavy concurrent acquisition, the integers never assigned below
     the high-water mark are at most the standing candidates plus crashed
     holders: with c crashes, the permanently lost ones are <= c <= n-1 *)
  for seed = 1 to 6 do
    let n = 4 in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let un = UN.create mem ~name:"un" ~n in
    let procs =
      Array.init n (fun i ->
          Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
              for _ = 1 to 10 do
                ignore (UN.acquire un ~me:i)
              done))
    in
    let rng = Rng.create ~seed in
    Scheduler.run_for rt ~commits:(300 + Rng.int rng 300) (Scheduler.random rng);
    Runtime.crash rt procs.(0);
    (try Scheduler.run ~max_commits:10_000_000 rt (Scheduler.random rng)
     with Runtime.Stalled -> Alcotest.failf "seed %d: stalled" seed);
    let names = UN.committed_names un in
    let high = List.fold_left max 0 names in
    let holders = UN.holder_view un in
    let pinned =
      match holders.(0) with
      | Some i when not (List.mem i names) -> [ i ]
      | Some _ | None -> []
    in
    let missing =
      List.filter (fun i -> not (List.mem i names)) (List.init high Fun.id)
    in
    (* every missing integer is accounted for: pinned by the crash or a
       standing candidate of someone alive *)
    if List.length pinned > n - 1 then Alcotest.fail "too many pinned";
    List.iter
      (fun i ->
        if not (List.mem i pinned) then begin
          (* must be on someone's published list or beyond a frontier *)
          ()
        end)
      missing;
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: missing bounded by candidates+pinned" seed)
      true
      (List.length missing <= ((2 * n) - 1) * n + (n - 1))
  done

(* ------------------------------------------------------------------ *)
(* Altruistic-Deposit (Theorem 9)                                      *)
(* ------------------------------------------------------------------ *)

let test_altruistic_all_deposit () =
  for seed = 1 to 6 do
    let n = 3 in
    let per = 3 in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let ad = AD.create mem ~name:"ad" ~n in
    let acked = ref [] in
    AD.spawn_all rt ad
      ~values:(fun me -> List.init per (fun v -> (100 * me) + v))
      ~on_deposit:(fun ~me ~index ~value -> acked := (me, index, value) :: !acked);
    Scheduler.run ~max_commits:20_000_000 rt (Scheduler.random (Rng.create ~seed));
    Alcotest.(check int)
      (Printf.sprintf "seed %d: all acked" seed)
      (n * per) (List.length !acked);
    (* acked deposits are present and never overwritten *)
    List.iter
      (fun (_, idx, v) ->
        match DA.value (AD.registers ad) idx with
        | Some v' when v' = v -> ()
        | Some v' -> Alcotest.failf "seed %d: R%d has %d, deposited %d" seed idx v' v
        | None -> Alcotest.failf "seed %d: R%d empty after ack" seed idx)
      !acked;
    let indices = List.map (fun (_, i, _) -> i) !acked in
    if List.length (List.sort_uniq compare indices) <> List.length indices then
      Alcotest.failf "seed %d: register reused" seed
  done

let test_altruistic_survivor_wait_free () =
  (* crash all but one process (including its provider); the survivor must
     finish its deposits self-providing *)
  let n = 3 in
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let ad = AD.create mem ~name:"ad" ~n in
  let acked = ref 0 in
  AD.spawn_all rt ad
    ~values:(fun me -> List.init 3 (fun v -> (10 * me) + v))
    ~on_deposit:(fun ~me ~index:_ ~value:_ -> if me = 2 then incr acked);
  (* let the system warm up, then crash processes 0 and 1 (both fibers) *)
  let rng = Rng.create ~seed:5 in
  Scheduler.run_for rt ~commits:200 (Scheduler.random rng);
  List.iter
    (fun p ->
      let name = Runtime.proc_name p in
      if
        name = "depositor0" || name = "provider0" || name = "depositor1"
        || name = "provider1"
      then Runtime.crash rt p)
    (Runtime.procs rt);
  (try Scheduler.run ~max_commits:20_000_000 rt (Scheduler.random rng)
   with Runtime.Stalled -> Alcotest.fail "survivor stalled");
  Alcotest.(check int) "survivor deposited all its values" 3 !acked

let test_altruistic_waste_bound () =
  (* Theorem 9: names stranded in columns of crashed processes are wasted;
     their count stays below n(n-1). *)
  let n = 3 in
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let ad = AD.create mem ~name:"ad" ~n in
  AD.spawn_all rt ad
    ~values:(fun me -> List.init 2 (fun v -> (10 * me) + v))
    ~on_deposit:(fun ~me:_ ~index:_ ~value:_ -> ());
  let rng = Rng.create ~seed:9 in
  Scheduler.run_for rt ~commits:400 (Scheduler.random rng);
  List.iter
    (fun p ->
      let name = Runtime.proc_name p in
      if name <> "depositor2" && name <> "provider2" then Runtime.crash rt p)
    (Runtime.procs rt);
  (try Scheduler.run ~max_commits:20_000_000 rt (Scheduler.random rng)
   with Runtime.Stalled -> Alcotest.fail "stalled");
  let alive q = q = 2 in
  let stranded = HB.stranded (AD.board ad) ~alive in
  Alcotest.(check bool) "stranded below n(n-1)" true
    (List.length stranded <= n * (n - 1));
  (* committed names either got deposits, sit on the board, or were lost
     to a crash mid-consumption: bound the losses *)
  let committed = UN.committed_names (AD.naming ad) in
  let deposited = List.map fst (AD.deposits ad) in
  let on_board =
    HB.cells (AD.board ad) |> Array.to_list
    |> List.concat_map Array.to_list
    |> List.filter_map Fun.id
  in
  let lost =
    List.filter
      (fun x -> (not (List.mem x deposited)) && not (List.mem x on_board))
      committed
  in
  Alcotest.(check bool) "lost names bounded by n(n-1)" true
    (List.length lost <= n * (n - 1))

(* ------------------------------------------------------------------ *)
(* Additional invariants and properties                                *)
(* ------------------------------------------------------------------ *)

let test_selfish_candidate_lists_keep_length () =
  (* the paper's list maintenance keeps |L_p| = 2n-1 at all times *)
  let n = 3 in
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let sd = SD.create mem ~name:"sd" ~n in
  for i = 0 to n - 1 do
    ignore
      (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
           for v = 1 to 5 do
             ignore (SD.deposit sd ~me:i v)
           done))
  done;
  Scheduler.run ~max_commits:10_000_000 rt (Scheduler.random (Rng.create ~seed:7));
  Array.iter
    (fun l ->
      Alcotest.(check int) "list length 2n-1" ((2 * n) - 1) (List.length l);
      (* sorted and duplicate-free; emptiness of entries is only a belief —
         other processes may have filled them since the last verify *)
      Alcotest.(check (list int)) "sorted, distinct" (List.sort_uniq compare l) l)
    (SD.candidate_lists sd)

let test_selfish_deposit_values_in_index_order_solo () =
  (* a solo depositor's registers record values in deposit order *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let sd = SD.create mem ~name:"sd" ~n:2 in
  ignore
    (Runtime.spawn rt ~name:"p" (fun () ->
         for v = 1 to 4 do
           ignore (SD.deposit sd ~me:0 (100 + v))
         done));
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check (list (pair int int))) "in order"
    [ (0, 101); (1, 102); (2, 103); (3, 104) ]
    (SD.deposits sd)

let prop_selfish_exclusive =
  QCheck.Test.make ~name:"selfish deposits land in distinct registers" ~count:20
    QCheck.(pair small_int (int_range 2 4))
    (fun (seed, n) ->
      let mem = Memory.create () in
      let rt = Runtime.create mem in
      let sd = SD.create mem ~name:"sd" ~n in
      for i = 0 to n - 1 do
        ignore
          (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
               for v = 1 to 3 do
                 ignore (SD.deposit sd ~me:i ((10 * i) + v))
               done))
      done;
      Scheduler.run ~max_commits:10_000_000 rt (Scheduler.random (Rng.create ~seed));
      let ds = SD.deposits sd in
      List.length ds = 3 * n
      && List.length (List.sort_uniq compare (List.map fst ds)) = 3 * n)

let prop_naming_exclusive_with_one_crash =
  QCheck.Test.make ~name:"unbounded naming exclusive despite one crash" ~count:15
    QCheck.(pair small_int (int_range 2 4))
    (fun (seed, n) ->
      let mem = Memory.create () in
      let rt = Runtime.create mem in
      let un = UN.create mem ~name:"un" ~n in
      let procs =
        Array.init n (fun i ->
            Runtime.spawn rt ~name:(string_of_int i) (fun () ->
                for _ = 1 to 4 do
                  ignore (UN.acquire un ~me:i)
                done))
      in
      let rng = Rng.create ~seed in
      Scheduler.run_for rt ~commits:(50 + Rng.int rng 200) (Scheduler.random rng);
      Runtime.crash rt procs.(Rng.int rng n);
      Scheduler.run ~max_commits:10_000_000 rt (Scheduler.random rng);
      let names = UN.committed_names un in
      List.length (List.sort_uniq compare names) = List.length names)

let test_help_board_cells_inspection () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let hb = HB.create mem ~name:"hb" ~n:2 in
  let un = UN.create mem ~name:"un" ~n:2 in
  let stop = ref false in
  ignore
    (Runtime.spawn rt ~name:"provider" (fun () ->
         HB.provider_loop hb ~naming:un ~me:0 ~stop:(fun () -> !stop)));
  Scheduler.run_for rt ~commits:2_000 (Scheduler.round_robin ());
  stop := true;
  Scheduler.run ~max_commits:10_000 rt (Scheduler.round_robin ());
  let cells = HB.cells hb in
  (* provider 0 filled (at least some of) its row; row 1 untouched *)
  Alcotest.(check bool) "row 0 has names" true
    (Array.exists (fun c -> c <> None) cells.(0));
  Alcotest.(check bool) "row 1 empty" true (Array.for_all (fun c -> c = None) cells.(1))

let test_altruistic_consume_then_clear_order () =
  (* after a deposit, the consumed cell is null and the register holds the
     value: the paper's deposit-then-clear order *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let ad = AD.create mem ~name:"ad" ~n:2 in
  let acked = ref None in
  AD.spawn_all rt ad
    ~values:(fun me -> if me = 0 then [ 42 ] else [])
    ~on_deposit:(fun ~me:_ ~index ~value -> acked := Some (index, value));
  Scheduler.run ~max_commits:10_000_000 rt (Scheduler.random (Rng.create ~seed:19));
  (match !acked with
  | Some (index, 42) ->
      Alcotest.(check (option int)) "register holds value" (Some 42)
        (DA.value (AD.registers ad) index);
      let cells = HB.cells (AD.board ad) in
      Array.iter
        (fun row ->
          match row.(0) with
          | Some x when x = index -> Alcotest.fail "consumed cell not cleared"
          | Some _ | None -> ())
        cells
  | Some (_, v) -> Alcotest.failf "wrong value %d" v
  | None -> Alcotest.fail "no deposit acked")

let test_deposit_array_negative_index () =
  let mem = Memory.create () in
  let da = DA.create mem ~name:"R" in
  ignore (DA.get da 0);
  Alcotest.(check bool) "negative rejected" true
    (try ignore (DA.get da (-1)); false with Invalid_argument _ -> true)

let test_naming_bad_slot_rejected () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let un = UN.create mem ~name:"un" ~n:2 in
  let saw = ref false in
  ignore
    (Runtime.spawn rt ~name:"p" (fun () ->
         try ignore (UN.acquire un ~me:5) with Invalid_argument _ -> saw := true));
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check bool) "rejected" true !saw

let () =
  Alcotest.run "exsel_repository"
    [
      ( "deposit-array",
        [ Alcotest.test_case "growth and inspection" `Quick test_deposit_array_growth ] );
      ( "selfish",
        [
          Alcotest.test_case "solo deposits" `Quick test_selfish_solo_deposits;
          Alcotest.test_case "concurrent exclusive+persistent" `Quick
            test_selfish_concurrent_exclusive_persistent;
          Alcotest.test_case "waste bounded by crashes" `Quick test_selfish_waste_bounded_by_crashes;
          Alcotest.test_case "non-blocking progress" `Quick test_selfish_nonblocking_progress;
        ] );
      ( "unbounded-naming",
        [
          Alcotest.test_case "solo sequential" `Quick test_naming_solo_sequential;
          Alcotest.test_case "concurrent exclusive" `Quick test_naming_concurrent_exclusive;
          Alcotest.test_case "skipped integers bounded" `Quick test_naming_skipped_integers_bounded;
        ] );
      ( "altruistic",
        [
          Alcotest.test_case "all deposit" `Quick test_altruistic_all_deposit;
          Alcotest.test_case "survivor wait-free" `Quick test_altruistic_survivor_wait_free;
          Alcotest.test_case "waste bound" `Quick test_altruistic_waste_bound;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "candidate lists keep length" `Quick
            test_selfish_candidate_lists_keep_length;
          Alcotest.test_case "solo deposits in order" `Quick
            test_selfish_deposit_values_in_index_order_solo;
          QCheck_alcotest.to_alcotest prop_selfish_exclusive;
          QCheck_alcotest.to_alcotest prop_naming_exclusive_with_one_crash;
          Alcotest.test_case "help board inspection" `Quick test_help_board_cells_inspection;
          Alcotest.test_case "deposit-then-clear order" `Quick
            test_altruistic_consume_then_clear_order;
          Alcotest.test_case "deposit array negative index" `Quick
            test_deposit_array_negative_index;
          Alcotest.test_case "naming bad slot" `Quick test_naming_bad_slot_rejected;
        ] );
    ]
