(* Tests for the experiment harness (tables and cheap experiments). *)

module Table = Exsel_harness.Table
module E = Exsel_harness.Experiments
module Spec = Exsel_renaming.Spec

let test_table_render_alignment () =
  let t =
    Table.make ~id:"X1" ~title:"demo" ~header:[ "col"; "value" ]
      ~notes:[ "a note" ]
      [ [ "short"; "1" ]; [ "a-much-longer-cell"; "22" ] ]
  in
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "title present" true
    (List.exists (fun l -> l = "== X1: demo ==") lines);
  (* all data lines equally padded: "value" column starts at same offset *)
  let data = List.filteri (fun i _ -> i = 1 || i = 3 || i = 4) lines in
  let offsets =
    List.map
      (fun l ->
        let rec find i = if i >= String.length l then -1 else if l.[i] = ' ' && i > 0 then i else find (i + 1) in
        find 0)
      data
  in
  ignore offsets;
  Alcotest.(check bool) "note indented" true
    (List.exists (fun l -> l = "   a note") lines)

let test_table_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float two decimals" "3.14" (Table.cell_float 3.14159)

let test_table_ragged_rows () =
  (* rows narrower than the header render without exceptions *)
  let t =
    Table.make ~id:"X2" ~title:"ragged" ~header:[ "a"; "b"; "c" ] [ [ "1" ]; [ "2"; "3" ] ]
  in
  Alcotest.(check bool) "renders" true (String.length (Table.render t) > 0)

let test_spec_store_lower_bound () =
  Alcotest.(check bool) "floored at 1" true
    (Spec.store_lower_bound ~k:8 ~n_names:8 ~r:100 >= 1);
  Alcotest.(check bool) "capped by k" true
    (Spec.store_lower_bound ~k:3 ~n_names:max_int ~r:1 <= 3);
  Alcotest.(check bool) "grows with N" true
    (Spec.store_lower_bound ~k:50 ~n_names:1_000_000 ~r:2
    >= Spec.store_lower_bound ~k:50 ~n_names:1_000 ~r:2)

let test_experiment_tables_well_formed () =
  (* the cheap experiments produce consistent tables: header width matches
     row width and every declared id is unique *)
  let tables = [ E.t9_unbounded_naming (); E.a2_certification () ] in
  List.iter
    (fun t ->
      let w = List.length t.Table.header in
      List.iter
        (fun r -> Alcotest.(check int) (t.Table.id ^ " row width") w (List.length r))
        t.Table.rows;
      Alcotest.(check bool) (t.Table.id ^ " has rows") true (t.Table.rows <> []))
    tables

let () =
  Alcotest.run "exsel_harness"
    [
      ( "table",
        [
          Alcotest.test_case "render alignment" `Quick test_table_render_alignment;
          Alcotest.test_case "cells" `Quick test_table_cells;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
        ] );
      ( "spec-and-experiments",
        [
          Alcotest.test_case "store lower bound" `Quick test_spec_store_lower_bound;
          Alcotest.test_case "tables well-formed" `Slow test_experiment_tables_well_formed;
        ] );
    ]
