(* Tests for the paper's renaming algorithms and their building blocks. *)

open Exsel_sim
open Exsel_renaming

(* Run [bodies] as concurrent processes under the given scheduling seed and
   return their results. *)
let run_concurrent ?(seed = 1) ?(crash_at = []) bodies =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let results = Array.make (List.length bodies) None in
  List.iteri
    (fun i body ->
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
             results.(i) <- Some (body ()))))
    bodies;
  let policy = Scheduler.random (Rng.create ~seed) in
  let policy =
    if crash_at = [] then policy else Scheduler.with_crashes ~crash_at policy
  in
  Scheduler.run ~max_commits:10_000_000 rt policy;
  (rt, results)

let distinct_somes results =
  let vals = Array.to_list results |> List.filter_map (fun r -> Option.join r) in
  List.length vals = List.length (List.sort_uniq compare vals)

(* ------------------------------------------------------------------ *)
(* Compete-For-Register (Lemma 1)                                      *)
(* ------------------------------------------------------------------ *)

let test_compete_solo_wins () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let c = Compete.create mem ~name:"c" in
  let won = ref false in
  let p = Runtime.spawn rt ~name:"solo" (fun () -> won := Compete.compete c ~me:3) in
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check bool) "solo contender wins" true !won;
  Alcotest.(check bool) "within step bound" true (Runtime.steps p <= Compete.steps_bound)

let test_compete_exclusive_under_schedules () =
  (* property: over many schedules and contender counts, never two winners *)
  for seed = 1 to 200 do
    let contenders = 2 + (seed mod 5) in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let c = Compete.create mem ~name:"c" in
    let wins = Array.make contenders false in
    for i = 0 to contenders - 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             wins.(i) <- Compete.compete c ~me:i))
    done;
    Scheduler.run rt (Scheduler.random (Rng.create ~seed));
    let winners = Array.to_list wins |> List.filter Fun.id |> List.length in
    if winners > 1 then Alcotest.failf "seed %d: %d winners" seed winners
  done

let test_compete_exclusive_with_crashes () =
  for seed = 1 to 100 do
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let c = Compete.create mem ~name:"c" in
    let wins = Array.make 4 false in
    for i = 0 to 3 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             wins.(i) <- Compete.compete c ~me:i))
    done;
    let rng = Rng.create ~seed in
    Scheduler.run rt
      (Scheduler.random_crashes rng ~victims:[ 0; 1 ] ~prob:0.1
         (Scheduler.random (Rng.create ~seed:(seed + 77))));
    let winners = Array.to_list wins |> List.filter Fun.id |> List.length in
    if winners > 1 then Alcotest.failf "seed %d: %d winners" seed winners
  done

let test_compete_single_use_registers () =
  let mem = Memory.create () in
  let _c = Compete.create mem ~name:"c" in
  Alcotest.(check int) "2 registers" Compete.registers_per_instance (Memory.registers mem)

(* ------------------------------------------------------------------ *)
(* Splitter and Moir-Anderson grid                                     *)
(* ------------------------------------------------------------------ *)

let test_splitter_solo_stops () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let s = Splitter.create mem ~name:"s" in
  let out = ref Splitter.Right in
  let _p = Runtime.spawn rt ~name:"p" (fun () -> out := Splitter.enter s ~me:1) in
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check bool) "solo stops" true (!out = Splitter.Stop)

let test_splitter_properties () =
  (* at most one Stop; never all Right; never all Down *)
  for seed = 1 to 300 do
    let contenders = 2 + (seed mod 4) in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let s = Splitter.create mem ~name:"s" in
    let outs = Array.make contenders None in
    for i = 0 to contenders - 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             outs.(i) <- Some (Splitter.enter s ~me:i)))
    done;
    Scheduler.run rt (Scheduler.random (Rng.create ~seed));
    let count o = Array.to_list outs |> List.filter (fun x -> x = Some o) |> List.length in
    if count Splitter.Stop > 1 then Alcotest.failf "seed %d: two stops" seed;
    if count Splitter.Right = contenders then Alcotest.failf "seed %d: all right" seed;
    if count Splitter.Down = contenders then Alcotest.failf "seed %d: all down" seed
  done

let test_ma_names_distinct_and_bounded () =
  for seed = 1 to 60 do
    let k = 2 + (seed mod 7) in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let ma = Moir_anderson.create mem ~name:"ma" ~side:k in
    let names = Array.make k None in
    for i = 0 to k - 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             names.(i) <- Moir_anderson.rename ma ~me:(100 + i)))
    done;
    Scheduler.run rt (Scheduler.random (Rng.create ~seed));
    Array.iteri
      (fun i n ->
        match n with
        | None -> Alcotest.failf "seed %d: process %d walked off a big-enough grid" seed i
        | Some name ->
            if name < 0 || name >= Moir_anderson.max_name_bound ~contenders:k then
              Alcotest.failf "seed %d: name %d out of adaptive bound %d" seed name
                (Moir_anderson.max_name_bound ~contenders:k))
      names;
    let vals = Array.to_list names |> List.filter_map Fun.id in
    if List.length (List.sort_uniq compare vals) <> k then
      Alcotest.failf "seed %d: duplicate names" seed
  done

let test_ma_adaptive_names_small_under_low_contention () =
  (* big grid, few contenders: names stay within the contention bound *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let ma = Moir_anderson.create mem ~name:"ma" ~side:16 in
  let k = 3 in
  let names = Array.make k None in
  for i = 0 to k - 1 do
    ignore
      (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
           names.(i) <- Moir_anderson.rename ma ~me:i))
  done;
  Scheduler.run rt (Scheduler.random (Rng.create ~seed:5));
  Array.iter
    (fun n ->
      match n with
      | Some name ->
          Alcotest.(check bool) "adaptive bound" true
            (name < Moir_anderson.max_name_bound ~contenders:k)
      | None -> Alcotest.fail "walked off")
    names

let test_ma_overflow_detection () =
  (* more contenders than the grid side: someone may overflow, and all
     assigned names remain distinct *)
  let overflowed = ref false in
  for seed = 1 to 40 do
    let side = 2 in
    let k = 6 in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let ma = Moir_anderson.create mem ~name:"ma" ~side in
    let names = Array.make k None in
    for i = 0 to k - 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             names.(i) <- Moir_anderson.rename ma ~me:i))
    done;
    Scheduler.run rt (Scheduler.random (Rng.create ~seed));
    if Array.exists (fun n -> n = None) names then overflowed := true;
    let vals = Array.to_list names |> List.filter_map Fun.id in
    if List.length (List.sort_uniq compare vals) <> List.length vals then
      Alcotest.failf "seed %d: duplicate names under overflow" seed
  done;
  Alcotest.(check bool) "overflow observed at least once" true !overflowed

let test_ma_name_numbering () =
  Alcotest.(check int) "(0,0)" 0 (Moir_anderson.name_of_position ~r:0 ~c:0);
  Alcotest.(check int) "(0,1) on diag 1" 1 (Moir_anderson.name_of_position ~r:0 ~c:1);
  Alcotest.(check int) "(1,0) on diag 1" 2 (Moir_anderson.name_of_position ~r:1 ~c:0);
  Alcotest.(check int) "(2,0) on diag 2" 5 (Moir_anderson.name_of_position ~r:2 ~c:0)

(* ------------------------------------------------------------------ *)
(* Snapshot-based (2k-1)-renaming                                      *)
(* ------------------------------------------------------------------ *)

let test_attiya_solo () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let a = Attiya_renaming.create mem ~name:"a" ~slots:8 () in
  let name = ref None in
  let _p = Runtime.spawn rt ~name:"p" (fun () -> name := Attiya_renaming.rename a ~slot:5) in
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check (option int)) "solo gets smallest name" (Some 0) !name

let test_attiya_names_bounded_and_distinct () =
  for seed = 1 to 40 do
    let k = 2 + (seed mod 5) in
    let slots = 3 * k in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let a = Attiya_renaming.create mem ~name:"a" ~slots () in
    let names = Array.make k None in
    (* occupy k arbitrary distinct slots *)
    let slot_of i = (i * 3) mod slots in
    for i = 0 to k - 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             names.(i) <- Attiya_renaming.rename a ~slot:(slot_of i)))
    done;
    Scheduler.run ~max_commits:2_000_000 rt (Scheduler.random (Rng.create ~seed));
    Array.iter
      (fun n ->
        match n with
        | None -> Alcotest.failf "seed %d: no name without cap" seed
        | Some v ->
            if v < 0 || v >= Attiya_renaming.name_bound ~contenders:k then
              Alcotest.failf "seed %d: name %d outside [0,%d)" seed v
                (Attiya_renaming.name_bound ~contenders:k))
      names;
    let vals = Array.to_list names |> List.filter_map Fun.id in
    if List.length (List.sort_uniq compare vals) <> k then
      Alcotest.failf "seed %d: duplicates" seed
  done

let test_attiya_crash_tolerance () =
  (* crash one participant mid-protocol; the others still decide *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let a = Attiya_renaming.create mem ~name:"a" ~slots:4 () in
  let names = Array.make 3 None in
  let procs =
    List.init 3 (fun i ->
        Runtime.spawn rt ~name:(string_of_int i) (fun () ->
            names.(i) <- Attiya_renaming.rename a ~slot:i))
  in
  (* let everyone advance a little, crash process 0, finish the rest *)
  let p0 = List.nth procs 0 in
  for _ = 1 to 5 do
    List.iter
      (fun p -> if Runtime.status p = Runtime.Runnable then Runtime.commit rt p)
      procs
  done;
  Runtime.crash rt p0;
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check bool) "p1 decided" true (names.(1) <> None);
  Alcotest.(check bool) "p2 decided" true (names.(2) <> None);
  Alcotest.(check bool) "distinct" true (names.(1) <> names.(2))

let test_attiya_cap_withdrawal () =
  (* cap 0 with two contenders: at most one can decide name 0, the other
     must withdraw rather than exceed the cap *)
  let decided = ref 0 and withdrawn = ref 0 in
  for seed = 1 to 30 do
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let a = Attiya_renaming.create mem ~name:"a" ~slots:2 ~cap:0 () in
    let names = Array.make 2 None in
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             names.(i) <- Attiya_renaming.rename a ~slot:i))
    done;
    Scheduler.run ~max_commits:100_000 rt (Scheduler.random (Rng.create ~seed));
    Array.iter
      (fun n ->
        match n with
        | Some 0 -> incr decided
        | Some v -> Alcotest.failf "seed %d: name %d above cap" seed v
        | None -> incr withdrawn)
      names;
    if names.(0) = Some 0 && names.(1) = Some 0 then
      Alcotest.failf "seed %d: duplicate capped name" seed
  done;
  Alcotest.(check bool) "withdrawals happened" true (!withdrawn > 0);
  Alcotest.(check bool) "decisions happened" true (!decided > 0)

(* ------------------------------------------------------------------ *)
(* Majority / Basic / PolyLog                                          *)
(* ------------------------------------------------------------------ *)

let pick_distinct rng ~bound ~count =
  let all = Array.init bound (fun i -> i) in
  Rng.shuffle rng all;
  Array.to_list (Array.sub all 0 count)

let test_majority_at_least_half_win () =
  for seed = 1 to 25 do
    let l = 2 + (seed mod 6) in
    let inputs = 128 in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let m =
      Majority.create ~rng:(Rng.create ~seed:(seed * 13)) mem ~name:"maj" ~l ~inputs
    in
    let ids = pick_distinct (Rng.create ~seed:(seed + 500)) ~bound:inputs ~count:l in
    let names = Array.make l None in
    List.iteri
      (fun i me ->
        ignore
          (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
               names.(i) <- Majority.rename m ~me)))
      ids;
    Scheduler.run rt (Scheduler.random (Rng.create ~seed));
    let winners = Array.to_list names |> List.filter_map Fun.id in
    if 2 * List.length winners < l then
      Alcotest.failf "seed %d: only %d of %d won" seed (List.length winners) l;
    if List.length (List.sort_uniq compare winners) <> List.length winners then
      Alcotest.failf "seed %d: duplicate names" seed;
    List.iter
      (fun w ->
        if w < 0 || w >= Majority.names m then
          Alcotest.failf "seed %d: name %d out of range %d" seed w (Majority.names m))
      winners
  done

let test_majority_steps_bound () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let m = Majority.create ~rng:(Rng.create ~seed:3) mem ~name:"maj" ~l:4 ~inputs:256 in
  let procs =
    List.init 4 (fun i ->
        Runtime.spawn rt ~name:(string_of_int i) (fun () ->
            ignore (Majority.rename m ~me:(i * 50))))
  in
  Scheduler.run rt (Scheduler.random (Rng.create ~seed:9));
  List.iter
    (fun p ->
      Alcotest.(check bool) "steps within 5*degree" true
        (Runtime.steps p <= Majority.steps_bound m))
    procs

let test_basic_rename_all_named () =
  for seed = 1 to 15 do
    let k = 2 + (seed mod 6) in
    let inputs = 256 in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let b =
      Basic_rename.create ~rng:(Rng.create ~seed:(seed * 7)) mem ~name:"b" ~k ~inputs
    in
    let ids = pick_distinct (Rng.create ~seed:(seed + 900)) ~bound:inputs ~count:k in
    let names = Array.make k None in
    List.iteri
      (fun i me ->
        ignore
          (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
               names.(i) <- Basic_rename.rename b ~me)))
      ids;
    Scheduler.run rt (Scheduler.random (Rng.create ~seed));
    Array.iter
      (fun n ->
        match n with
        | None -> Alcotest.failf "seed %d: a process failed all stages" seed
        | Some v ->
            if v < 0 || v >= Basic_rename.names b then
              Alcotest.failf "seed %d: name out of range" seed)
      names;
    let vals = Array.to_list names |> List.filter_map Fun.id in
    if List.length (List.sort_uniq compare vals) <> k then
      Alcotest.failf "seed %d: duplicates" seed
  done

let test_basic_rename_stage_budgets () =
  let mem = Memory.create () in
  let b = Basic_rename.create ~rng:(Rng.create ~seed:1) mem ~name:"b" ~k:8 ~inputs:512 in
  Alcotest.(check (list int)) "budgets halve" [ 8; 4; 2; 1 ] (Basic_rename.stage_budgets b);
  Alcotest.(check int) "names match plan" (Basic_rename.plan_names ~k:8 ~inputs:512 ())
    (Basic_rename.names b)

let test_polylog_contracts_and_names () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let k = 4 in
  let inputs = 4096 in
  let p = Polylog_rename.create ~rng:(Rng.create ~seed:2) mem ~name:"plog" ~k ~inputs in
  let ranges = Polylog_rename.epoch_ranges p in
  Alcotest.(check bool) "at least one epoch for big N" true (Polylog_rename.epochs p >= 1);
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "ranges strictly contract" true (decreasing ranges);
  Alcotest.(check bool) "final range much smaller than N" true
    (Polylog_rename.names p * 4 < inputs);
  let ids = pick_distinct (Rng.create ~seed:77) ~bound:inputs ~count:k in
  let names = Array.make k None in
  List.iteri
    (fun i me ->
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             names.(i) <- Polylog_rename.rename p ~me)))
    ids;
  Scheduler.run rt (Scheduler.random (Rng.create ~seed:4));
  Array.iter
    (fun n ->
      match n with
      | None -> Alcotest.fail "an epoch failed"
      | Some v ->
          Alcotest.(check bool) "within M" true (v >= 0 && v < Polylog_rename.names p))
    names;
  Alcotest.(check bool) "distinct" true
    (let vals = Array.to_list names |> List.filter_map Fun.id in
     List.length (List.sort_uniq compare vals) = k)

let test_polylog_identity_when_tiny () =
  let mem = Memory.create () in
  let p = Polylog_rename.create ~rng:(Rng.create ~seed:2) mem ~name:"plog" ~k:4 ~inputs:8 in
  Alcotest.(check int) "no epochs" 0 (Polylog_rename.epochs p);
  Alcotest.(check int) "identity range" 8 (Polylog_rename.names p);
  Alcotest.(check int) "no registers" 0 (Memory.registers mem)

(* ------------------------------------------------------------------ *)
(* Efficient / Almost-Adaptive / Adaptive                              *)
(* ------------------------------------------------------------------ *)

let test_efficient_names_optimal_range () =
  for seed = 1 to 8 do
    let k = 2 + (seed mod 5) in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let e = Efficient_rename.create ~rng:(Rng.create ~seed:(seed * 3)) mem ~name:"eff" ~k in
    let names = Array.make k None in
    for i = 0 to k - 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             names.(i) <- Efficient_rename.rename e ~me:(1000 + (i * 37))))
    done;
    Scheduler.run ~max_commits:5_000_000 rt (Scheduler.random (Rng.create ~seed));
    Array.iter
      (fun n ->
        match n with
        | None -> Alcotest.failf "seed %d: failed within design contention" seed
        | Some v ->
            if v < 0 || v > (2 * k) - 2 then
              Alcotest.failf "seed %d: name %d outside [0,2k-2]" seed v)
      names;
    let vals = Array.to_list names |> List.filter_map Fun.id in
    if List.length (List.sort_uniq compare vals) <> k then
      Alcotest.failf "seed %d: duplicates" seed
  done

let test_efficient_overflow_reports_none () =
  (* contention above k: overflow must be reported, names stay exclusive *)
  let saw_none = ref false in
  for seed = 1 to 10 do
    let k = 2 in
    let procs = 5 in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let e = Efficient_rename.create ~rng:(Rng.create ~seed:(seed * 3)) mem ~name:"eff" ~k in
    let names = Array.make procs None in
    for i = 0 to procs - 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             names.(i) <- Efficient_rename.rename e ~me:i))
    done;
    Scheduler.run ~max_commits:5_000_000 rt (Scheduler.random (Rng.create ~seed));
    if Array.exists (fun n -> n = None) names then saw_none := true;
    Array.iter
      (fun n ->
        match n with
        | Some v when v < 0 || v > (2 * k) - 2 ->
            Alcotest.failf "seed %d: name %d escaped the capped range" seed v
        | Some _ | None -> ())
      names;
    let vals = Array.to_list names |> List.filter_map Fun.id in
    if List.length (List.sort_uniq compare vals) <> List.length vals then
      Alcotest.failf "seed %d: duplicates under overflow" seed
  done;
  Alcotest.(check bool) "overflow observed" true !saw_none

let test_almost_adaptive_bound_tracks_contention () =
  for seed = 1 to 6 do
    let n = 16 in
    let inputs = 256 in
    let k = 1 + (seed mod 5) in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let a =
      Almost_adaptive.create ~rng:(Rng.create ~seed:(seed * 11)) mem ~name:"aa" ~n ~inputs
    in
    let ids = pick_distinct (Rng.create ~seed:(seed + 321)) ~bound:inputs ~count:k in
    let names = Array.make k 0 in
    List.iteri
      (fun i me ->
        ignore
          (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
               names.(i) <- Almost_adaptive.rename a ~me)))
      ids;
    Scheduler.run ~max_commits:5_000_000 rt (Scheduler.random (Rng.create ~seed));
    let bound = Almost_adaptive.name_bound_for_contention a ~k in
    Array.iter
      (fun v ->
        if v < 0 || v >= bound then
          Alcotest.failf "seed %d: name %d exceeds adaptive bound %d (k=%d)" seed v bound k)
      names;
    Alcotest.(check int) "reserve untouched" 0 (Almost_adaptive.reserve_uses a);
    let vals = Array.to_list names in
    if List.length (List.sort_uniq compare vals) <> k then
      Alcotest.failf "seed %d: duplicates" seed
  done

let test_adaptive_rename_paper_bound () =
  for seed = 1 to 6 do
    let n = 16 in
    let k = 1 + (seed mod 6) in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let a = Adaptive_rename.create ~rng:(Rng.create ~seed:(seed * 5)) mem ~name:"ad" ~n in
    let names = Array.make k 0 in
    for i = 0 to k - 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             names.(i) <- Adaptive_rename.rename a ~me:(5000 + (i * 101))))
    done;
    Scheduler.run ~max_commits:5_000_000 rt (Scheduler.random (Rng.create ~seed));
    let bound = Adaptive_rename.name_bound_for_contention ~k in
    Array.iter
      (fun v ->
        if v < 0 || v >= bound then
          Alcotest.failf "seed %d: name %d exceeds 8k-lgk-1=%d (k=%d)" seed v bound k)
      names;
    Alcotest.(check int) "reserve untouched" 0 (Adaptive_rename.reserve_uses a);
    let vals = Array.to_list names in
    if List.length (List.sort_uniq compare vals) <> k then
      Alcotest.failf "seed %d: duplicates" seed
  done

let test_adaptive_rename_with_crashes () =
  (* crashed processes must not block survivors, names stay exclusive *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let a = Adaptive_rename.create ~rng:(Rng.create ~seed:31) mem ~name:"ad" ~n:8 in
  let k = 5 in
  let names = Array.make k None in
  for i = 0 to k - 1 do
    ignore
      (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
           names.(i) <- Some (Adaptive_rename.rename a ~me:i)))
  done;
  Scheduler.run ~max_commits:5_000_000 rt
    (Scheduler.with_crashes
       ~crash_at:[ (20, 0); (45, 1) ]
       (Scheduler.random (Rng.create ~seed:8)));
  (* survivors finished *)
  for i = 2 to k - 1 do
    Alcotest.(check bool) (Printf.sprintf "p%d named" i) true (names.(i) <> None)
  done;
  Alcotest.(check bool) "exclusive" true
    (let vals = Array.to_list names |> List.filter_map Fun.id in
     List.length (List.sort_uniq compare vals) = List.length vals)

(* ------------------------------------------------------------------ *)
(* Property-based tests (qcheck)                                       *)
(* ------------------------------------------------------------------ *)

let prop_compete_exclusive =
  QCheck.Test.make ~name:"compete: never two winners (any seed, 2-6 contenders)"
    ~count:300
    QCheck.(pair small_int (int_range 2 6))
    (fun (seed, contenders) ->
      let mem = Memory.create () in
      let rt = Runtime.create mem in
      let c = Compete.create mem ~name:"c" in
      let wins = Array.make contenders false in
      for i = 0 to contenders - 1 do
        ignore
          (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
               wins.(i) <- Compete.compete c ~me:i))
      done;
      Scheduler.run rt (Scheduler.random (Rng.create ~seed));
      Array.to_list wins |> List.filter Fun.id |> List.length <= 1)

let prop_ma_names_adaptive =
  QCheck.Test.make ~name:"MA: distinct names within the adaptive bound" ~count:150
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, k) ->
      let mem = Memory.create () in
      let rt = Runtime.create mem in
      let ma = Moir_anderson.create mem ~name:"ma" ~side:12 in
      let names = Array.make k None in
      for i = 0 to k - 1 do
        ignore
          (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
               names.(i) <- Moir_anderson.rename ma ~me:(i * 31)))
      done;
      Scheduler.run rt (Scheduler.random (Rng.create ~seed));
      let vals = Array.to_list names |> List.filter_map Fun.id in
      List.length vals = k
      && List.length (List.sort_uniq compare vals) = k
      && List.for_all (fun v -> v < Moir_anderson.max_name_bound ~contenders:k) vals)

let prop_attiya_optimal_range =
  QCheck.Test.make ~name:"snapshot renaming: names within 2k-1, distinct" ~count:60
    QCheck.(pair small_int (int_range 1 5))
    (fun (seed, k) ->
      let mem = Memory.create () in
      let rt = Runtime.create mem in
      let a = Attiya_renaming.create mem ~name:"a" ~slots:(4 * k) () in
      let names = Array.make k None in
      for i = 0 to k - 1 do
        ignore
          (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
               names.(i) <- Attiya_renaming.rename a ~slot:(i * 3)))
      done;
      Scheduler.run ~max_commits:500_000 rt (Scheduler.random (Rng.create ~seed));
      let vals = Array.to_list names |> List.filter_map Fun.id in
      List.length vals = k
      && List.length (List.sort_uniq compare vals) = k
      && List.for_all (fun v -> v >= 0 && v < Attiya_renaming.name_bound ~contenders:k) vals)

let prop_chain_exclusive =
  QCheck.Test.make ~name:"chain: exclusive names under any schedule" ~count:150
    QCheck.(pair small_int (int_range 2 5))
    (fun (seed, k) ->
      let mem = Memory.create () in
      let rt = Runtime.create mem in
      let c = Chain_rename.create mem ~name:"ch" ~m:((2 * k) - 1) in
      let names = Array.make k None in
      for i = 0 to k - 1 do
        ignore
          (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
               names.(i) <- Chain_rename.rename c ~me:i))
      done;
      Scheduler.run rt (Scheduler.random (Rng.create ~seed));
      let vals = Array.to_list names |> List.filter_map Fun.id in
      List.length (List.sort_uniq compare vals) = List.length vals)

let prop_polylog_exclusive_random_dims =
  QCheck.Test.make ~name:"polylog: exclusive in-range names over random (k, N, seed)"
    ~count:25
    QCheck.(triple small_int (int_range 2 8) (int_range 6 11))
    (fun (seed, k, log_n) ->
      let inputs = 1 lsl log_n in
      let mem = Memory.create () in
      let rt = Runtime.create mem in
      let p =
        Polylog_rename.create ~rng:(Rng.create ~seed:(seed + 1)) mem ~name:"pl" ~k
          ~inputs
      in
      let ids = pick_distinct (Rng.create ~seed:(seed + 2)) ~bound:inputs ~count:k in
      let names = Array.make k None in
      List.iteri
        (fun i me ->
          ignore
            (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
                 names.(i) <- Polylog_rename.rename p ~me)))
        ids;
      Scheduler.run ~max_commits:2_000_000 rt (Scheduler.random (Rng.create ~seed));
      let vals = Array.to_list names |> List.filter_map Fun.id in
      List.length vals = k
      && List.length (List.sort_uniq compare vals) = k
      && List.for_all (fun v -> v >= 0 && v < Polylog_rename.names p) vals)

let prop_adaptive_bound_random =
  QCheck.Test.make ~name:"adaptive: names within 8k-lgk-1 over random contention"
    ~count:12
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, k) ->
      let mem = Memory.create () in
      let rt = Runtime.create mem in
      let a = Adaptive_rename.create ~rng:(Rng.create ~seed:(seed + 5)) mem ~name:"ad" ~n:8 in
      let names = Array.make k 0 in
      for i = 0 to k - 1 do
        ignore
          (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
               names.(i) <- Adaptive_rename.rename a ~me:(i * 1000)))
      done;
      Scheduler.run ~max_commits:5_000_000 rt (Scheduler.random (Rng.create ~seed));
      let bound = Adaptive_rename.name_bound_for_contention ~k in
      Array.for_all (fun v -> v >= 0 && v < bound) names
      && List.length (List.sort_uniq compare (Array.to_list names)) = k)

let prop_spec_monotone =
  QCheck.Test.make ~name:"spec bounds are monotone in k and N" ~count:200
    QCheck.(pair (int_range 2 100) (int_range 2 100))
    (fun (k, extra) ->
      let n_names = 1024 * extra in
      Spec.polylog_steps ~k:(k + 1) ~n_names >= Spec.polylog_steps ~k ~n_names
      && Spec.polylog_steps ~k ~n_names:(2 * n_names) >= Spec.polylog_steps ~k ~n_names
      && Spec.efficient_names ~k:(k + 1) > Spec.efficient_names ~k
      && Spec.adaptive_names ~k:(k + 1) > Spec.adaptive_names ~k)

let prop_name_range_disjoint =
  QCheck.Test.make ~name:"name ranges are pairwise disjoint and contiguous" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 10) (int_range 0 50))
    (fun sizes ->
      let a = Name_range.allocator () in
      let ranges = List.map (Name_range.take a) sizes in
      let cover = List.concat_map (fun r -> List.init r.Name_range.size (Name_range.global r)) ranges in
      List.length cover = List.length (List.sort_uniq compare cover)
      && Name_range.used a = List.fold_left ( + ) 0 sizes)

(* ------------------------------------------------------------------ *)
(* Additional unit tests                                               *)
(* ------------------------------------------------------------------ *)

let test_basic_budgets_non_power_of_two () =
  let mem = Memory.create () in
  let b = Basic_rename.create ~rng:(Rng.create ~seed:1) mem ~name:"b" ~k:11 ~inputs:256 in
  Alcotest.(check (list int)) "11 -> 6 -> 3 -> 2 -> 1" [ 11; 6; 3; 2; 1 ]
    (Basic_rename.stage_budgets b)

let test_efficient_rejects_bad_k () =
  let mem = Memory.create () in
  Alcotest.(check bool) "k=0 rejected" true
    (try
       ignore (Efficient_rename.create ~rng:(Rng.create ~seed:1) mem ~name:"e" ~k:0);
       false
     with Invalid_argument _ -> true)

let test_majority_rejects_out_of_range_input () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let m = Majority.create ~rng:(Rng.create ~seed:1) mem ~name:"m" ~l:2 ~inputs:16 in
  let saw = ref false in
  ignore
    (Runtime.spawn rt ~name:"p" (fun () ->
         try ignore (Majority.rename m ~me:99)
         with Invalid_argument _ -> saw := true));
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check bool) "rejected" true !saw

let test_attiya_sequential_rank_spacing () =
  (* Sequential callers: each sees all earlier (still-published) proposals
     and proposes its rank-th free name, giving 0, 2, 4, 6 — the classic
     2k-1 pattern where the last of k sequential arrivals takes 2k-2. *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let a = Attiya_renaming.create mem ~name:"a" ~slots:8 () in
  let names = Array.make 4 None in
  for slot = 0 to 3 do
    ignore
      (Runtime.spawn rt ~name:(string_of_int slot) (fun () ->
           names.(slot) <- Attiya_renaming.rename a ~slot))
  done;
  (* sequential policy: each runs to completion in turn *)
  Scheduler.run rt (Scheduler.sequential ());
  Alcotest.(check (array (option int)))
    "rank spacing" [| Some 0; Some 2; Some 4; Some 6 |] names

let test_polylog_threading_order () =
  (* the name fed to epoch j+1 is the name won in epoch j: check the
     final name is within the last epoch's range even for max input *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let p = Polylog_rename.create ~rng:(Rng.create ~seed:6) mem ~name:"pl" ~k:2 ~inputs:2048 in
  QCheck.assume (Polylog_rename.epochs p >= 1);
  let got = ref None in
  ignore
    (Runtime.spawn rt ~name:"p" (fun () -> got := Polylog_rename.rename p ~me:2047));
  Scheduler.run rt (Scheduler.round_robin ());
  match !got with
  | Some v ->
      Alcotest.(check bool) "within final range" true (v < Polylog_rename.names p)
  | None -> Alcotest.fail "solo process must be renamed"

let test_moir_anderson_solo_takes_origin () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let ma = Moir_anderson.create mem ~name:"ma" ~side:4 in
  let got = ref None in
  ignore (Runtime.spawn rt ~name:"p" (fun () -> got := Moir_anderson.rename ma ~me:5));
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check (option int)) "solo stops at the origin" (Some 0) !got

(* ------------------------------------------------------------------ *)
(* Immediate-snapshot renaming                                         *)
(* ------------------------------------------------------------------ *)

let test_is_rename_solo () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let ir = Is_rename.create mem ~name:"ir" ~n:4 in
  let got = ref (-1) in
  ignore (Runtime.spawn rt ~name:"p" (fun () -> got := Is_rename.rename ir ~slot:2));
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check int) "solo gets the smallest name" 0 !got

let test_is_rename_adaptive_bound () =
  for seed = 1 to 40 do
    let n = 6 in
    let k = 1 + (seed mod n) in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let ir = Is_rename.create mem ~name:"ir" ~n in
    let names = Array.make k (-1) in
    for i = 0 to k - 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             names.(i) <- Is_rename.rename ir ~slot:i))
    done;
    Scheduler.run rt (Scheduler.random (Rng.create ~seed));
    let vals = Array.to_list names in
    if List.length (List.sort_uniq compare vals) <> k then
      Alcotest.failf "seed %d: duplicate names" seed;
    List.iter
      (fun v ->
        if v < 0 || v >= Is_rename.name_bound ~contenders:k then
          Alcotest.failf "seed %d: name %d outside k(k+1)/2=%d" seed v
            (Is_rename.name_bound ~contenders:k))
      vals
  done

(* ------------------------------------------------------------------ *)
(* Randomized loose renaming                                           *)
(* ------------------------------------------------------------------ *)

let test_randomized_solo () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let rr = Randomized_rename.create mem ~name:"rr" ~seed:4 ~k:4 ~epsilon:1.0 in
  let got = ref None in
  let p = Runtime.spawn rt ~name:"p" (fun () -> got := Randomized_rename.rename rr ~me:9) in
  Scheduler.run rt (Scheduler.round_robin ());
  (match !got with
  | Some s -> Alcotest.(check bool) "slot in table" true (s >= 0 && s < Randomized_rename.slots rr)
  | None -> Alcotest.fail "solo probe failed");
  Alcotest.(check bool) "few steps" true (Runtime.steps p <= Compete.steps_bound)

let test_randomized_exclusive_and_live () =
  let none_count = ref 0 in
  for seed = 1 to 40 do
    let k = 2 + (seed mod 6) in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let rr =
      Randomized_rename.create mem ~name:"rr" ~seed:(seed * 17) ~k ~epsilon:1.0
    in
    let names = Array.make k None in
    for i = 0 to k - 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             names.(i) <- Randomized_rename.rename rr ~me:i))
    done;
    Scheduler.run rt (Scheduler.random (Rng.create ~seed));
    let vals = Array.to_list names |> List.filter_map Fun.id in
    if List.length (List.sort_uniq compare vals) <> List.length vals then
      Alcotest.failf "seed %d: duplicate slots" seed;
    none_count := !none_count + (k - List.length vals)
  done;
  (* with a 2x-oversized table failures should be rare *)
  Alcotest.(check bool) "at most a couple of misses over 40 runs" true (!none_count <= 2)

let test_randomized_private_coins_deterministic () =
  let mem = Memory.create () in
  let rr1 = Randomized_rename.create mem ~name:"a" ~seed:5 ~k:4 ~epsilon:0.5 in
  let rr2 = Randomized_rename.create mem ~name:"b" ~seed:5 ~k:4 ~epsilon:0.5 in
  Alcotest.(check int) "same table size" (Randomized_rename.slots rr1)
    (Randomized_rename.slots rr2);
  Alcotest.(check bool) "validation" true
    (try ignore (Randomized_rename.create mem ~name:"c" ~seed:1 ~k:0 ~epsilon:1.0); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Name ranges and spec formulas                                       *)
(* ------------------------------------------------------------------ *)

let test_name_range_alloc () =
  let a = Name_range.allocator ~base:10 () in
  let r1 = Name_range.take a 5 in
  let r2 = Name_range.take a 3 in
  Alcotest.(check int) "r1 base" 10 r1.Name_range.base;
  Alcotest.(check int) "r2 base" 15 r2.Name_range.base;
  Alcotest.(check int) "used" 8 (Name_range.used a);
  Alcotest.(check bool) "contains" true (Name_range.contains r1 12);
  Alcotest.(check bool) "not contains" false (Name_range.contains r1 15);
  Alcotest.(check int) "global" 16 (Name_range.global r2 1);
  Alcotest.(check bool) "global out of range rejected" true
    (try ignore (Name_range.global r2 3); false with Invalid_argument _ -> true)

let test_spec_formulas () =
  Alcotest.(check int) "efficient names" 15 (Spec.efficient_names ~k:8);
  Alcotest.(check int) "adaptive names" (64 - 3 - 1) (Spec.adaptive_names ~k:8);
  Alcotest.(check bool) "lower bound at least 1" true
    (Spec.lower_bound_steps ~k:8 ~n_names:1024 ~m:16 ~r:64 >= 1);
  Alcotest.(check int) "lower bound capped by k-2" 2
    (Spec.lower_bound_steps ~k:4 ~n_names:max_int ~m:8 ~r:4 - 1);
  Alcotest.(check bool) "polylog steps grows with N" true
    (Spec.polylog_steps ~k:8 ~n_names:1_000_000 > Spec.polylog_steps ~k:8 ~n_names:1024)

let () =
  ignore run_concurrent;
  ignore distinct_somes;
  Alcotest.run "exsel_renaming"
    [
      ( "compete",
        [
          Alcotest.test_case "solo wins" `Quick test_compete_solo_wins;
          Alcotest.test_case "exclusive (200 schedules)" `Quick test_compete_exclusive_under_schedules;
          Alcotest.test_case "exclusive with crashes" `Quick test_compete_exclusive_with_crashes;
          Alcotest.test_case "register accounting" `Quick test_compete_single_use_registers;
        ] );
      ( "splitter",
        [
          Alcotest.test_case "solo stops" `Quick test_splitter_solo_stops;
          Alcotest.test_case "properties (300 schedules)" `Quick test_splitter_properties;
        ] );
      ( "moir-anderson",
        [
          Alcotest.test_case "distinct bounded names" `Quick test_ma_names_distinct_and_bounded;
          Alcotest.test_case "adaptive small names" `Quick test_ma_adaptive_names_small_under_low_contention;
          Alcotest.test_case "overflow detection" `Quick test_ma_overflow_detection;
          Alcotest.test_case "name numbering" `Quick test_ma_name_numbering;
        ] );
      ( "attiya",
        [
          Alcotest.test_case "solo" `Quick test_attiya_solo;
          Alcotest.test_case "bounded distinct names" `Quick test_attiya_names_bounded_and_distinct;
          Alcotest.test_case "crash tolerance" `Quick test_attiya_crash_tolerance;
          Alcotest.test_case "cap withdrawal" `Quick test_attiya_cap_withdrawal;
        ] );
      ( "majority",
        [
          Alcotest.test_case "at least half win" `Quick test_majority_at_least_half_win;
          Alcotest.test_case "steps bound" `Quick test_majority_steps_bound;
        ] );
      ( "basic-rename",
        [
          Alcotest.test_case "all named" `Quick test_basic_rename_all_named;
          Alcotest.test_case "stage budgets" `Quick test_basic_rename_stage_budgets;
        ] );
      ( "polylog-rename",
        [
          Alcotest.test_case "contracts and names" `Quick test_polylog_contracts_and_names;
          Alcotest.test_case "identity when tiny" `Quick test_polylog_identity_when_tiny;
        ] );
      ( "efficient-rename",
        [
          Alcotest.test_case "optimal range" `Quick test_efficient_names_optimal_range;
          Alcotest.test_case "overflow reports" `Quick test_efficient_overflow_reports_none;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "almost-adaptive bound" `Quick test_almost_adaptive_bound_tracks_contention;
          Alcotest.test_case "adaptive paper bound" `Quick test_adaptive_rename_paper_bound;
          Alcotest.test_case "adaptive with crashes" `Quick test_adaptive_rename_with_crashes;
        ] );
      ( "ranges-and-spec",
        [
          Alcotest.test_case "name ranges" `Quick test_name_range_alloc;
          Alcotest.test_case "spec formulas" `Quick test_spec_formulas;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_compete_exclusive;
          QCheck_alcotest.to_alcotest prop_ma_names_adaptive;
          QCheck_alcotest.to_alcotest prop_attiya_optimal_range;
          QCheck_alcotest.to_alcotest prop_chain_exclusive;
          QCheck_alcotest.to_alcotest prop_polylog_exclusive_random_dims;
          QCheck_alcotest.to_alcotest prop_adaptive_bound_random;
          QCheck_alcotest.to_alcotest prop_spec_monotone;
          QCheck_alcotest.to_alcotest prop_name_range_disjoint;
        ] );
      ( "is-rename",
        [
          Alcotest.test_case "solo name zero" `Quick test_is_rename_solo;
          Alcotest.test_case "adaptive triangular bound" `Quick test_is_rename_adaptive_bound;
        ] );
      ( "randomized",
        [
          Alcotest.test_case "solo" `Quick test_randomized_solo;
          Alcotest.test_case "exclusive and live" `Quick test_randomized_exclusive_and_live;
          Alcotest.test_case "coins deterministic" `Quick test_randomized_private_coins_deterministic;
        ] );
      ( "edges",
        [
          Alcotest.test_case "basic budgets non-power-of-2" `Quick test_basic_budgets_non_power_of_two;
          Alcotest.test_case "efficient rejects k=0" `Quick test_efficient_rejects_bad_k;
          Alcotest.test_case "majority rejects bad input" `Quick test_majority_rejects_out_of_range_input;
          Alcotest.test_case "attiya sequential rank spacing" `Quick test_attiya_sequential_rank_spacing;
          Alcotest.test_case "polylog threading" `Quick test_polylog_threading_order;
          Alcotest.test_case "MA solo takes origin" `Quick test_moir_anderson_solo_takes_origin;
        ] );
    ]
