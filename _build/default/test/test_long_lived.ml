(* Tests for the long-lived renaming extension: exclusive holds across
   acquire/release cycles, adaptive name ranges, reuse, crash pinning. *)

open Exsel_sim
module LL = Exsel_renaming.Long_lived

(* Shared hold ledger: entries are updated inside process fibers, which is
   sound under cooperative scheduling (no interleaving between commits). *)
let make_ledger n = Array.make n None

let assert_exclusive_hold ledger me name =
  Array.iteri
    (fun q h ->
      if q <> me && h = Some name then
        Alcotest.failf "name %d held by p%d and p%d simultaneously" name q me)
    ledger

let test_sequential_reuse () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let ll = LL.create mem ~name:"ll" ~n:4 in
  let log = ref [] in
  ignore
    (Runtime.spawn rt ~name:"p" (fun () ->
         for _ = 1 to 3 do
           let x = LL.acquire ll ~me:0 in
           log := x :: !log;
           LL.release ll ~me:0
         done));
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check (list int)) "solo always reuses the smallest name" [ 0; 0; 0 ]
    (List.rev !log)

let test_released_name_taken_by_other () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let ll = LL.create mem ~name:"ll" ~n:2 in
  let a = ref (-1) and b = ref (-1) in
  let p0 =
    Runtime.spawn rt ~name:"p0" (fun () ->
        a := LL.acquire ll ~me:0;
        LL.release ll ~me:0)
  in
  (* p0 acquires and releases first; p1 then gets the same smallest name *)
  Scheduler.run rt (Scheduler.sequential ());
  ignore (Runtime.spawn rt ~name:"p1" (fun () -> b := LL.acquire ll ~me:1));
  Scheduler.run rt (Scheduler.sequential ());
  ignore p0;
  Alcotest.(check int) "p0 had 0" 0 !a;
  Alcotest.(check int) "p1 reuses 0" 0 !b

let test_concurrent_holds_exclusive_over_schedules () =
  for seed = 1 to 30 do
    let n = 3 in
    let rounds = 4 in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let ll = LL.create mem ~name:"ll" ~n in
    let ledger = make_ledger n in
    let max_seen = ref 0 in
    for i = 0 to n - 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             for _ = 1 to rounds do
               let x = LL.acquire ll ~me:i in
               assert_exclusive_hold ledger i x;
               ledger.(i) <- Some x;
               max_seen := max !max_seen x;
               LL.release ll ~me:i;
               ledger.(i) <- None
             done))
    done;
    Scheduler.run ~max_commits:5_000_000 rt (Scheduler.random (Rng.create ~seed));
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: names within 2n-1" seed)
      true
      (!max_seen <= (2 * n) - 2)
  done

let test_point_contention_adaptivity () =
  (* one process churning alone after others left sees small names again *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let ll = LL.create mem ~name:"ll" ~n:4 in
  (* phase 1: all four hold concurrently *)
  let names = Array.make 4 (-1) in
  for i = 0 to 3 do
    ignore (Runtime.spawn rt ~name:(string_of_int i) (fun () -> names.(i) <- LL.acquire ll ~me:i))
  done;
  Scheduler.run rt (Scheduler.random (Rng.create ~seed:3));
  (* phase 2: everyone releases, then one process churns alone *)
  for i = 0 to 3 do
    ignore (Runtime.spawn rt ~name:(Printf.sprintf "r%d" i) (fun () -> LL.release ll ~me:i))
  done;
  Scheduler.run rt (Scheduler.round_robin ());
  let solo = ref (-1) in
  ignore (Runtime.spawn rt ~name:"solo" (fun () -> solo := LL.acquire ll ~me:2));
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check int) "solo reacquire gets the smallest name" 0 !solo

let test_crash_pins_name () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let ll = LL.create mem ~name:"ll" ~n:2 in
  let victim = Runtime.spawn rt ~name:"victim" (fun () -> ignore (LL.acquire ll ~me:0)) in
  Scheduler.run rt (Scheduler.round_robin ());
  (* victim holds name 0 and crashes (here: just never releases) *)
  Runtime.crash rt victim;
  let b = ref (-1) in
  ignore (Runtime.spawn rt ~name:"p1" (fun () -> b := LL.acquire ll ~me:1));
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check bool) "other must avoid the pinned name" true (!b <> 0);
  Alcotest.(check bool) "still within 2k-1 for k=2" true (!b <= 2)

let test_exhaustive_two_process_churn () =
  (* model-check: interleavings of two acquire-release rounds maintain
     exclusive holds (path-capped; still tens of thousands of schedules) *)
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let ll = LL.create mem ~name:"ll" ~n:2 in
    let ledger = make_ledger 2 in
    let violation = ref None in
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             for _ = 1 to 1 do
               let x = LL.acquire ll ~me:i in
               (match ledger.(1 - i) with
               | Some y when y = x -> violation := Some x
               | Some _ | None -> ());
               ledger.(i) <- Some x;
               LL.release ll ~me:i;
               ledger.(i) <- None
             done))
    done;
    (violation, rt)
  in
  let check violation _rt =
    match !violation with
    | Some x -> Error (Printf.sprintf "overlapping hold of %d" x)
    | None -> Ok ()
  in
  let o = Explore.run ~max_paths:60_000 ~init ~check () in
  (match o.Explore.failure with
  | Some (msg, _) -> Alcotest.fail msg
  | None -> ());
  Alcotest.(check bool) "explored many paths" true (o.Explore.paths > 100)

let prop_long_lived_range =
  QCheck.Test.make ~name:"long-lived: names stay within 2n-1 over random churn"
    ~count:25
    QCheck.(pair small_int (int_range 2 4))
    (fun (seed, n) ->
      let mem = Memory.create () in
      let rt = Runtime.create mem in
      let ll = LL.create mem ~name:"ll" ~n in
      let ok = ref true in
      for i = 0 to n - 1 do
        ignore
          (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
               for _ = 1 to 3 do
                 let x = LL.acquire ll ~me:i in
                 if x > (2 * n) - 2 then ok := false;
                 LL.release ll ~me:i
               done))
      done;
      Scheduler.run ~max_commits:5_000_000 rt (Scheduler.random (Rng.create ~seed));
      !ok)

let () =
  Alcotest.run "exsel_long_lived"
    [
      ( "long-lived",
        [
          Alcotest.test_case "sequential reuse" `Quick test_sequential_reuse;
          Alcotest.test_case "released name taken by other" `Quick test_released_name_taken_by_other;
          Alcotest.test_case "concurrent holds exclusive" `Quick
            test_concurrent_holds_exclusive_over_schedules;
          Alcotest.test_case "point-contention adaptivity" `Quick test_point_contention_adaptivity;
          Alcotest.test_case "crash pins name" `Quick test_crash_pins_name;
          Alcotest.test_case "exhaustive 2-process churn" `Slow test_exhaustive_two_process_churn;
          QCheck_alcotest.to_alcotest prop_long_lived_range;
        ] );
    ]
