(* Tests for the lower-bound adversary (Theorems 6-7). *)

open Exsel_sim
module Adversary = Exsel_lowerbound.Adversary
module R = Exsel_renaming

let test_theoretical_stage_formula () =
  (* with huge N the k-2 term binds; with small N the log term binds *)
  let r1 =
    R.Spec.lower_bound_steps ~k:6 ~n_names:1_000_000_000 ~m:11 ~r:10
  in
  Alcotest.(check bool) "capped by k-1 total" true (r1 <= 5);
  let r2 = R.Spec.lower_bound_steps ~k:100 ~n_names:4096 ~m:2048 ~r:64 in
  Alcotest.(check int) "log term zero when N<=2M" 1 r2

let force_on_majority ~n_names ~l ~seed =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let m =
    R.Majority.create ~rng:(Rng.create ~seed) mem ~name:"maj" ~l ~inputs:n_names
  in
  let results = Array.make n_names None in
  let spawn v =
    Runtime.spawn rt ~name:(Printf.sprintf "p%d" v) (fun () ->
        results.(v) <- R.Majority.rename m ~me:v)
  in
  let res =
    Adversary.force rt ~spawn ~n_names ~k:l ~m:(R.Majority.names m)
      ~r:(Memory.registers mem)
  in
  (res, results)

let test_adversary_forces_bound_on_majority () =
  let res, _ = force_on_majority ~n_names:512 ~l:4 ~seed:3 in
  Alcotest.(check bool) "bound at least 1" true (res.Adversary.bound >= 1);
  Alcotest.(check bool) "measured max steps meets the bound" true
    (res.Adversary.max_steps >= res.Adversary.bound);
  Alcotest.(check bool) "drove the predicted stages" true
    (res.Adversary.forced_stages <= res.Adversary.theoretical_stages)

let test_adversary_pool_shrinks_no_faster_than_2r () =
  let res, _ = force_on_majority ~n_names:1024 ~l:4 ~seed:5 in
  List.iter
    (fun s ->
      Alcotest.(check bool) "pool nonempty" true (s.Adversary.pool_after >= 1);
      Alcotest.(check bool) "pool shrank" true
        (s.Adversary.pool_after <= s.Adversary.pool_before))
    res.Adversary.stages

let test_adversary_on_moir_anderson () =
  (* MA's first operation is a write to the same splitter door for all
     processes: the adversary's first stage keeps everyone *)
  let n_names = 64 in
  let k = 4 in
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let ma = R.Moir_anderson.create mem ~name:"ma" ~side:k in
  let spawn v =
    Runtime.spawn rt ~name:(Printf.sprintf "p%d" v) (fun () ->
        ignore (R.Moir_anderson.rename ma ~me:v))
  in
  let res =
    Adversary.force rt ~spawn ~n_names ~k
      ~m:(R.Moir_anderson.capacity ma)
      ~r:(Memory.registers mem)
  in
  Alcotest.(check bool) "completed" true (res.Adversary.max_steps >= 1);
  match res.Adversary.stages with
  | first :: _ ->
      Alcotest.(check bool) "first stage is a write" true
        (first.Adversary.op_class = `Write);
      Alcotest.(check int) "nobody eliminated at the door" n_names
        first.Adversary.pool_after
  | [] -> ()

let test_adversary_stage_accounting () =
  let res, _ = force_on_majority ~n_names:2048 ~l:6 ~seed:11 in
  Alcotest.(check int) "stages recorded" res.Adversary.forced_stages
    (List.length res.Adversary.stages);
  Alcotest.(check bool) "residue bounded by stages" true
    (res.Adversary.residue <= res.Adversary.forced_stages)

let test_identical_histories_property () =
  (* all pool members committed exactly [forced_stages] operations when the
     stage loop stopped; we re-derive this from the step counters of the
     surviving pool before completion by re-running with a probe *)
  let n_names = 256 in
  let l = 4 in
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let m =
    R.Majority.create ~rng:(Rng.create ~seed:7) mem ~name:"maj" ~l ~inputs:n_names
  in
  let spawn v =
    Runtime.spawn rt ~name:(Printf.sprintf "p%d" v) (fun () ->
        ignore (R.Majority.rename m ~me:v))
  in
  let res =
    Adversary.force rt ~spawn ~n_names ~k:l ~m:(R.Majority.names m)
      ~r:(Memory.registers mem)
  in
  (* after completion every non-crashed process has at least stage-many
     steps *)
  List.iter
    (fun p ->
      if Runtime.status p = Runtime.Done then
        Alcotest.(check bool) "done procs stepped through all stages" true
          (Runtime.steps p >= res.Adversary.forced_stages))
    (Runtime.procs rt)

(* --- Corollary 2: the freeze argument, executably --- *)

let test_corollary2_freeze () =
  for seed = 1 to 10 do
    let res = Exsel_lowerbound.Freeze.corollary2 ~n:4 ~deposits_per_other:6 ~seed in
    if not res.Exsel_lowerbound.Freeze.untouched_while_frozen then
      Alcotest.failf "seed %d: some process deposited into the frozen register" seed;
    if not res.Exsel_lowerbound.Freeze.deposit_completed_after_thaw then
      Alcotest.failf "seed %d: thawed deposit did not land cleanly" seed;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: others unhindered" seed)
      18 res.Exsel_lowerbound.Freeze.others_deposits
  done

let test_corollary2_minimal_n () =
  let res = Exsel_lowerbound.Freeze.corollary2 ~n:2 ~deposits_per_other:3 ~seed:1 in
  Alcotest.(check bool) "untouched" true res.Exsel_lowerbound.Freeze.untouched_while_frozen;
  Alcotest.(check bool) "n=1 rejected" true
    (try ignore (Exsel_lowerbound.Freeze.corollary2 ~n:1 ~deposits_per_other:1 ~seed:1); false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "exsel_lowerbound"
    [
      ( "adversary",
        [
          Alcotest.test_case "stage formula" `Quick test_theoretical_stage_formula;
          Alcotest.test_case "forces bound on majority" `Quick
            test_adversary_forces_bound_on_majority;
          Alcotest.test_case "pool shrink accounting" `Quick
            test_adversary_pool_shrinks_no_faster_than_2r;
          Alcotest.test_case "moir-anderson first stage" `Quick test_adversary_on_moir_anderson;
          Alcotest.test_case "stage accounting" `Quick test_adversary_stage_accounting;
          Alcotest.test_case "identical histories" `Quick test_identical_histories_property;
        ] );
      ( "corollary-2",
        [
          Alcotest.test_case "freeze pins the register" `Quick test_corollary2_freeze;
          Alcotest.test_case "minimal n" `Quick test_corollary2_minimal_n;
        ] );
    ]
