(* Cross-module integration tests: end-to-end flows that chain the
   paper's building blocks the way an application would. *)

open Exsel_sim
module R = Exsel_renaming
module SC = Exsel_collect.Store_collect
module SD = Exsel_repository.Selfish_deposit
module Adversary = Exsel_lowerbound.Adversary

(* --------------------------------------------------------------- *)
(* rename -> store&collect -> repository pipeline                   *)
(* --------------------------------------------------------------- *)

let test_full_pipeline () =
  (* workers with sparse ids: (1) adaptively rename, (2) publish progress
     under the new dense name, (3) one of them collects the board and
     deposits a durable summary *)
  let n = 6 in
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let renamer = R.Adaptive_rename.create ~rng:(Rng.create ~seed:1) mem ~name:"rn" ~n in
  let board = SC.create_adaptive ~rng:(Rng.create ~seed:2) mem ~name:"sc" ~n in
  let archive = SD.create mem ~name:"ar" ~n in
  let summaries = ref [] in
  let sparse_ids = [ 1001; 777; 31337; 42; 9999; 123456 ] in
  List.iteri
    (fun i sparse ->
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "w%d" i) (fun () ->
             let dense = R.Adaptive_rename.rename renamer ~me:sparse in
             SC.store board ~me:sparse (dense * 10);
             (* the lowest-slot worker archives a summary of the board *)
             if i = 0 then begin
               let seen = SC.collect board in
               let idx = SD.deposit archive ~me:0 (List.length seen) in
               summaries := (idx, List.length seen) :: !summaries
             end)))
    sparse_ids;
  Scheduler.run ~max_commits:50_000_000 rt (Scheduler.random (Rng.create ~seed:3));
  (* all workers stored under distinct slots *)
  let collected = ref [] in
  ignore (Runtime.spawn rt ~name:"verify" (fun () -> collected := SC.collect board));
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check int) "all workers on the board" n (List.length !collected);
  (* the archive deposit landed exactly once and was never overwritten *)
  (match !summaries with
  | [ (idx, count) ] ->
      Alcotest.(check (option int)) "summary durable" (Some count)
        (Exsel_repository.Deposit_array.value (SD.registers archive) idx)
  | other -> Alcotest.failf "expected one summary, got %d" (List.length other));
  (* dense names were within the adaptive bound *)
  List.iter
    (fun (owner, v) ->
      Alcotest.(check bool) "value encodes a dense name" true
        (v / 10 < R.Adaptive_rename.name_bound_for_contention ~k:n);
      Alcotest.(check bool) "owner is a sparse id" true (List.mem owner sparse_ids))
    !collected

let test_pipeline_with_crash_storm () =
  (* half the workers crash at random points; survivors complete the
     pipeline and exclusiveness holds throughout *)
  for seed = 1 to 8 do
    let n = 6 in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let renamer = R.Adaptive_rename.create ~rng:(Rng.create ~seed:(seed * 3)) mem ~name:"rn" ~n in
    let board = SC.create_adaptive ~rng:(Rng.create ~seed:(seed * 5)) mem ~name:"sc" ~n in
    let names = Array.make n None in
    for i = 0 to n - 1 do
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "w%d" i) (fun () ->
             let dense = R.Adaptive_rename.rename renamer ~me:(i * 71) in
             names.(i) <- Some dense;
             SC.store board ~me:i dense))
    done;
    let rng = Rng.create ~seed in
    (try
       Scheduler.run ~max_commits:50_000_000 rt
         (Scheduler.random_crashes rng ~victims:[ 0; 1; 2 ] ~prob:0.01
            (Scheduler.random (Rng.create ~seed:(seed + 50))))
     with Runtime.Stalled -> Alcotest.failf "seed %d: stalled" seed);
    let assigned = Array.to_list names |> List.filter_map Fun.id in
    if List.length (List.sort_uniq compare assigned) <> List.length assigned then
      Alcotest.failf "seed %d: duplicate dense names" seed;
    (* the board is consistent: one entry per storing worker *)
    let collected = ref [] in
    ignore (Runtime.spawn rt ~name:"verify" (fun () -> collected := SC.collect board));
    Scheduler.run rt (Scheduler.round_robin ());
    let owners = List.map fst !collected in
    if List.length (List.sort_uniq compare owners) <> List.length owners then
      Alcotest.failf "seed %d: duplicate board owners" seed
  done

(* --------------------------------------------------------------- *)
(* adversary vs composed algorithms                                 *)
(* --------------------------------------------------------------- *)

let test_adversary_vs_efficient () =
  let n_names = 128 in
  let k = 4 in
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let e = R.Efficient_rename.create ~rng:(Rng.create ~seed:11) mem ~name:"ef" ~k in
  let spawn v =
    Runtime.spawn rt ~name:(Printf.sprintf "p%d" v) (fun () ->
        ignore (R.Efficient_rename.rename e ~me:v))
  in
  let res =
    Adversary.force rt ~spawn ~n_names ~k ~m:(R.Efficient_rename.names e)
      ~r:(Memory.registers mem)
  in
  Alcotest.(check bool) "bound respected" true
    (res.Adversary.max_steps >= res.Adversary.bound)

let test_adversary_vs_store () =
  let n_names = 512 in
  let k = 4 in
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let sc = SC.create_known ~rng:(Rng.create ~seed:13) mem ~name:"sc" ~k ~inputs:n_names in
  let spawn v =
    Runtime.spawn rt ~name:(Printf.sprintf "p%d" v) (fun () -> SC.store sc ~me:v v)
  in
  let r = Memory.registers mem in
  let budget = R.Spec.store_lower_bound ~k ~n_names ~r - 1 in
  let res =
    Adversary.force ~stage_budget:budget rt ~spawn ~n_names ~k ~m:(SC.slots sc) ~r
  in
  Alcotest.(check bool) "store bound respected" true
    (res.Adversary.max_steps >= res.Adversary.bound)

(* --------------------------------------------------------------- *)
(* schedule diversity                                               *)
(* --------------------------------------------------------------- *)

let test_rename_under_three_schedulers () =
  let run policy =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let a =
      R.Almost_adaptive.create ~rng:(Rng.create ~seed:21) mem ~name:"aa" ~n:8
        ~inputs:64
    in
    let names = Array.make 4 (-1) in
    for i = 0 to 3 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             names.(i) <- R.Almost_adaptive.rename a ~me:(i * 11)))
    done;
    Scheduler.run ~max_commits:50_000_000 rt (policy ());
    Array.to_list names
  in
  List.iter
    (fun (label, policy) ->
      let names = run policy in
      Alcotest.(check bool) (label ^ ": all named") true (List.for_all (fun v -> v >= 0) names);
      Alcotest.(check bool) (label ^ ": distinct") true
        (List.length (List.sort_uniq compare names) = 4))
    [
      ("round-robin", fun () -> Scheduler.round_robin ());
      ("sequential", fun () -> Scheduler.sequential ());
      ("random", fun () -> Scheduler.random (Rng.create ~seed:5));
    ]

let test_deterministic_replay_end_to_end () =
  (* the same seed reproduces the same execution, names, and step counts *)
  let run () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let e = R.Efficient_rename.create ~rng:(Rng.create ~seed:31) mem ~name:"ef" ~k:4 in
    let names = Array.make 4 None in
    for i = 0 to 3 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             names.(i) <- R.Efficient_rename.rename e ~me:i))
    done;
    Scheduler.run ~max_commits:50_000_000 rt (Scheduler.random (Rng.create ~seed:32));
    (Array.to_list names, Runtime.max_steps rt, Memory.reads (Runtime.memory rt))
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-for-bit reproducible" true (a = b)

let () =
  Alcotest.run "exsel_integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "rename->collect->deposit" `Quick test_full_pipeline;
          Alcotest.test_case "crash storm" `Quick test_pipeline_with_crash_storm;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "vs efficient" `Quick test_adversary_vs_efficient;
          Alcotest.test_case "vs store" `Quick test_adversary_vs_store;
        ] );
      ( "schedulers",
        [
          Alcotest.test_case "three schedulers" `Quick test_rename_under_three_schedulers;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay_end_to_end;
        ] );
    ]
