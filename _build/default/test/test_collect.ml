(* Tests for Store&Collect (Theorem 5). *)

open Exsel_sim
module SC = Exsel_collect.Store_collect

let run_with ~seed ?(max_commits = 10_000_000) rt =
  Scheduler.run ~max_commits rt (Scheduler.random (Rng.create ~seed))

let test_store_then_collect_known () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let sc = SC.create_known ~rng:(Rng.create ~seed:1) mem ~name:"sc" ~k:4 ~inputs:64 in
  let collected = ref [] in
  for i = 0 to 3 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "s%d" i) (fun () ->
           SC.store sc ~me:(i * 10) (100 + i)))
  done;
  Scheduler.run rt (Scheduler.round_robin ());
  ignore (Runtime.spawn rt ~name:"collector" (fun () -> collected := SC.collect sc));
  Scheduler.run rt (Scheduler.round_robin ());
  let sorted = List.sort compare !collected in
  Alcotest.(check (list (pair int int)))
    "all proposals collected"
    [ (0, 100); (10, 101); (20, 102); (30, 103) ]
    sorted

let test_store_overwrites_own_value () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let sc = SC.create_known ~rng:(Rng.create ~seed:2) mem ~name:"sc" ~k:2 ~inputs:16 in
  let collected = ref [] in
  ignore
    (Runtime.spawn rt ~name:"s" (fun () ->
         SC.store sc ~me:3 1;
         SC.store sc ~me:3 2;
         SC.store sc ~me:3 3;
         collected := SC.collect sc));
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check (list (pair int int))) "latest value only" [ (3, 3) ] !collected

let test_subsequent_store_is_one_step () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let sc = SC.create_known ~rng:(Rng.create ~seed:3) mem ~name:"sc" ~k:2 ~inputs:16 in
  let after_first = ref 0 in
  let p =
    Runtime.spawn rt ~name:"s" (fun () ->
        SC.store sc ~me:1 10;
        after_first := Runtime.steps (List.hd (Runtime.procs rt));
        SC.store sc ~me:1 11)
  in
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check int) "second store costs 1 step" (!after_first + 1) (Runtime.steps p)

let test_collect_steps_linear_in_contention () =
  (* collect reads only the raised prefix: O(k) slots, not the whole table *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let sc = SC.create_adaptive ~rng:(Rng.create ~seed:4) mem ~name:"sc" ~n:16 in
  let k = 3 in
  for i = 0 to k - 1 do
    ignore (Runtime.spawn rt ~name:(Printf.sprintf "s%d" i) (fun () -> SC.store sc ~me:i i))
  done;
  Scheduler.run ~max_commits:10_000_000 rt (Scheduler.random (Rng.create ~seed:5));
  let collector = Runtime.spawn rt ~name:"c" (fun () -> ignore (SC.collect sc)) in
  Scheduler.run rt (Scheduler.round_robin ());
  let total_slots = SC.slots sc in
  Alcotest.(check bool) "far fewer reads than slots" true
    (Runtime.steps collector < total_slots / 2);
  Alcotest.(check bool) "collector did some reads" true (Runtime.steps collector > 0)

let test_concurrent_store_collect_regular () =
  (* a collect concurrent with stores returns, for each process, either
     nothing or one of its stored values *)
  for seed = 1 to 10 do
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let sc = SC.create_known ~rng:(Rng.create ~seed:(seed * 3)) mem ~name:"sc" ~k:3 ~inputs:32 in
    let collected = ref [] in
    for i = 0 to 2 do
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "s%d" i) (fun () ->
             SC.store sc ~me:i (10 * i);
             SC.store sc ~me:i ((10 * i) + 1)))
    done;
    ignore (Runtime.spawn rt ~name:"c" (fun () -> collected := SC.collect sc));
    run_with ~seed rt;
    List.iter
      (fun (owner, v) ->
        if v <> 10 * owner && v <> (10 * owner) + 1 then
          Alcotest.failf "seed %d: bogus pair (%d,%d)" seed owner v)
      !collected;
    let owners = List.map fst !collected in
    if List.length owners <> List.length (List.sort_uniq compare owners) then
      Alcotest.failf "seed %d: duplicate owner in collect" seed
  done

let test_collect_after_quiescence_complete () =
  for seed = 1 to 8 do
    let k = 2 + (seed mod 4) in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let sc =
      SC.create_almost ~rng:(Rng.create ~seed:(seed * 7)) mem ~name:"sc" ~n:8 ~inputs:64
    in
    for i = 0 to k - 1 do
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "s%d" i) (fun () ->
             SC.store sc ~me:(i * 7) i))
    done;
    run_with ~seed rt;
    let collected = ref [] in
    ignore (Runtime.spawn rt ~name:"c" (fun () -> collected := SC.collect sc));
    Scheduler.run rt (Scheduler.round_robin ());
    Alcotest.(check int)
      (Printf.sprintf "seed %d: all k stores visible" seed)
      k (List.length !collected)
  done

let test_crashed_storer_invisible_or_complete () =
  (* a storer crashed mid-first-store leaves either nothing or a complete
     proposal, never a torn state that breaks collect *)
  for crash_point = 1 to 30 do
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let sc = SC.create_known ~rng:(Rng.create ~seed:9) mem ~name:"sc" ~k:2 ~inputs:16 in
    let victim = Runtime.spawn rt ~name:"victim" (fun () -> SC.store sc ~me:1 111) in
    let committed = ref 0 in
    (try
       while Runtime.status victim = Runtime.Runnable && !committed < crash_point do
         Runtime.commit rt victim;
         incr committed
       done
     with _ -> ());
    if Runtime.status victim = Runtime.Runnable then Runtime.crash rt victim;
    ignore (Runtime.spawn rt ~name:"s2" (fun () -> SC.store sc ~me:2 222));
    Scheduler.run rt (Scheduler.round_robin ());
    let collected = ref [] in
    ignore (Runtime.spawn rt ~name:"c" (fun () -> collected := SC.collect sc));
    Scheduler.run rt (Scheduler.round_robin ());
    (* the survivor's value is always there *)
    Alcotest.(check bool)
      (Printf.sprintf "crash@%d: survivor visible" crash_point)
      true
      (List.mem (2, 222) !collected);
    List.iter
      (fun (owner, v) ->
        if owner = 1 && v <> 111 then Alcotest.failf "torn value %d" v)
      !collected
  done

let test_four_settings_work () =
  let check_setting label make =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let sc = make mem in
    let k = 3 in
    for i = 0 to k - 1 do
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "s%d" i) (fun () -> SC.store sc ~me:i i))
    done;
    run_with ~seed:11 rt;
    let collected = ref [] in
    ignore (Runtime.spawn rt ~name:"c" (fun () -> collected := SC.collect sc));
    Scheduler.run rt (Scheduler.round_robin ());
    Alcotest.(check int) (label ^ ": complete") k (List.length !collected)
  in
  check_setting "known k,N" (fun mem ->
      SC.create_known ~rng:(Rng.create ~seed:21) mem ~name:"sc" ~k:3 ~inputs:32);
  check_setting "N=O(n)" (fun mem ->
      SC.create_almost ~rng:(Rng.create ~seed:22) mem ~name:"sc" ~n:8 ~inputs:8);
  check_setting "N=poly(n)" (fun mem ->
      SC.create_almost ~rng:(Rng.create ~seed:23) mem ~name:"sc" ~n:8 ~inputs:64);
  check_setting "adaptive" (fun mem ->
      SC.create_adaptive ~rng:(Rng.create ~seed:24) mem ~name:"sc" ~n:8)

let test_collect_on_untouched_board () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let sc = SC.create_known ~rng:(Rng.create ~seed:31) mem ~name:"sc" ~k:4 ~inputs:32 in
  let collected = ref [ (0, 0) ] in
  let c = Runtime.spawn rt ~name:"c" (fun () -> collected := SC.collect sc) in
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check (list (pair int int))) "empty board" [] !collected;
  Alcotest.(check int) "one control read suffices" 1 (Runtime.steps c)

let test_multiple_collectors_agree_at_quiescence () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let sc = SC.create_known ~rng:(Rng.create ~seed:32) mem ~name:"sc" ~k:3 ~inputs:32 in
  for i = 0 to 2 do
    ignore (Runtime.spawn rt ~name:(Printf.sprintf "s%d" i) (fun () -> SC.store sc ~me:i (i * 5)))
  done;
  run_with ~seed:33 rt;
  let a = ref [] and b = ref [] in
  ignore (Runtime.spawn rt ~name:"ca" (fun () -> a := SC.collect sc));
  ignore (Runtime.spawn rt ~name:"cb" (fun () -> b := SC.collect sc));
  Scheduler.run rt (Scheduler.random (Rng.create ~seed:34));
  Alcotest.(check (list (pair int int))) "same board" (List.sort compare !a)
    (List.sort compare !b)

let test_slot_of_reflects_acquisition () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let sc = SC.create_known ~rng:(Rng.create ~seed:35) mem ~name:"sc" ~k:2 ~inputs:16 in
  Alcotest.(check (option int)) "no slot before store" None (SC.slot_of sc ~me:3);
  ignore (Runtime.spawn rt ~name:"s" (fun () -> SC.store sc ~me:3 30));
  Scheduler.run rt (Scheduler.round_robin ());
  match SC.slot_of sc ~me:3 with
  | None -> Alcotest.fail "slot not recorded"
  | Some s -> Alcotest.(check bool) "slot within table" true (s >= 0 && s < SC.slots sc)

let test_store_collect_property =
  QCheck.Test.make ~name:"collect returns exactly the quiescent stores" ~count:30
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, k) ->
      let mem = Memory.create () in
      let rt = Runtime.create mem in
      let sc =
        SC.create_known ~rng:(Rng.create ~seed:(seed + 100)) mem ~name:"sc" ~k
          ~inputs:64
      in
      for i = 0 to k - 1 do
        ignore
          (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
               SC.store sc ~me:(i * 9) (1000 + i)))
      done;
      Scheduler.run ~max_commits:5_000_000 rt (Scheduler.random (Rng.create ~seed));
      let collected = ref [] in
      ignore (Runtime.spawn rt ~name:"c" (fun () -> collected := SC.collect sc));
      Scheduler.run rt (Scheduler.round_robin ());
      List.sort compare !collected
      = List.init k (fun i -> (i * 9, 1000 + i)))

let test_interleaved_store_rounds () =
  (* several rounds of stores with collects in between: each collect shows
     the latest quiescent values *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let sc = SC.create_known ~rng:(Rng.create ~seed:36) mem ~name:"sc" ~k:2 ~inputs:8 in
  for round = 1 to 3 do
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt
           ~name:(Printf.sprintf "s%d-%d" i round)
           (fun () -> SC.store sc ~me:i ((10 * round) + i)))
    done;
    Scheduler.run rt (Scheduler.random (Rng.create ~seed:(40 + round)));
    let collected = ref [] in
    ignore (Runtime.spawn rt ~name:"c" (fun () -> collected := SC.collect sc));
    Scheduler.run rt (Scheduler.round_robin ());
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "round %d board" round)
      [ (0, 10 * round); (1, (10 * round) + 1) ]
      (List.sort compare !collected)
  done

let () =
  Alcotest.run "exsel_collect"
    [
      ( "store-collect",
        [
          Alcotest.test_case "store then collect" `Quick test_store_then_collect_known;
          Alcotest.test_case "store overwrites own value" `Quick test_store_overwrites_own_value;
          Alcotest.test_case "subsequent store O(1)" `Quick test_subsequent_store_is_one_step;
          Alcotest.test_case "collect reads O(k) prefix" `Quick test_collect_steps_linear_in_contention;
          Alcotest.test_case "concurrent regularity" `Quick test_concurrent_store_collect_regular;
          Alcotest.test_case "quiescent completeness" `Quick test_collect_after_quiescence_complete;
          Alcotest.test_case "crash mid-store" `Quick test_crashed_storer_invisible_or_complete;
          Alcotest.test_case "four settings" `Quick test_four_settings_work;
          Alcotest.test_case "untouched board" `Quick test_collect_on_untouched_board;
          Alcotest.test_case "collectors agree" `Quick test_multiple_collectors_agree_at_quiescence;
          Alcotest.test_case "slot_of" `Quick test_slot_of_reflects_acquisition;
          QCheck_alcotest.to_alcotest test_store_collect_property;
          Alcotest.test_case "interleaved rounds" `Quick test_interleaved_store_rounds;
        ] );
    ]
