(* Benchmark harness: regenerates every table and figure of the
   reproduction (see DESIGN.md §3 and EXPERIMENTS.md).

   Default mode prints the experiment tables T1-T9 and figures F1-F2 with
   simulated local-step counts — the paper's complexity measure.

   --bechamel additionally runs one Bechamel wall-clock benchmark per
   table/figure (the full experiment as the measured unit) and prints the
   OLS estimate of its execution time.

   --only <ID> restricts either mode to a single experiment. *)

module E = Exsel_harness.Experiments
module Table = Exsel_harness.Table

let experiments : (string * (unit -> Table.t)) list =
  [
    ("T1", E.t1_comparison);
    ("T2", E.t2_polylog);
    ("T3", E.t3_efficient);
    ("T4", E.t4_almost_adaptive);
    ("T5", E.t5_adaptive);
    ("T6", E.t6_store_collect);
    ("T7", E.t7_lower_bound);
    ("T8", E.t8_repositories);
    ("T9", E.t9_unbounded_naming);
    ("F1", E.f1_majority_progress);
    ("F2", E.f2_crossover);
    ("A1", E.a1_expander_constants);
    ("A2", E.a2_certification);
    ("A3", E.a3_reserve_lane);
    ("X1", E.x1_long_lived);
    ("X2", E.x2_message_passing);
    ("X3", E.x3_randomized);
  ]

let selected only =
  match only with
  | None -> experiments
  | Some id -> List.filter (fun (i, _) -> String.uppercase_ascii id = i) experiments

let print_tables only =
  List.iter
    (fun (_, f) ->
      let t = f () in
      Table.print t;
      flush stdout)
    (selected only)

let run_bechamel only =
  let open Bechamel in
  let tests =
    List.map
      (fun (id, f) -> Test.make ~name:id (Staged.stage (fun () -> ignore (f ()))))
      (selected only)
  in
  let grouped = Test.make_grouped ~name:"exsel" tests in
  let cfg = Benchmark.cfg ~limit:10 ~quota:(Time.second 2.0) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "== Bechamel wall-clock (one benchmark per table/figure) ==\n";
  Printf.printf "%-12s  %14s  %8s\n" "experiment" "time/run" "r^2";
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      let est =
        match Analyze.OLS.estimates v with Some (e :: _) -> e | Some [] | None -> nan
      in
      let r2 = match Analyze.OLS.r_square v with Some r -> r | None -> nan in
      let human =
        if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
        else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
        else Printf.sprintf "%.0f ns" est
      in
      Printf.printf "%-12s  %14s  %8.4f\n" name human r2)
    (List.sort compare rows)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse bech only = function
    | [] -> (bech, only)
    | "--bechamel" :: rest -> parse true only rest
    | "--only" :: id :: rest -> parse bech (Some id) rest
    | arg :: _ ->
        Printf.eprintf "usage: %s [--bechamel] [--only <T1..T9|F1|F2|A1..A3|X1..X3>] (got %s)\n"
          Sys.argv.(0) arg;
        exit 2
  in
  let bech, only = parse false None args in
  if bech then run_bechamel only else print_tables only
