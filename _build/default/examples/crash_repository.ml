(* Durable audit log: the paper's Section 5 repositories side by side.

   Events must be deposited — written once to a register that is never
   overwritten — even while writers crash.  Selfish-Deposit is
   non-blocking and wastes at most n-1 registers; Altruistic-Deposit is
   wait-free (a lone survivor still finishes) at the cost of stranding up
   to n(n-1) pre-acquired slots on its Help board.

   Run with:  dune exec examples/crash_repository.exe *)

open Exsel_sim
module SD = Exsel_repository.Selfish_deposit
module AD = Exsel_repository.Altruistic_deposit
module HB = Exsel_repository.Help_board
module DA = Exsel_repository.Deposit_array

let n = 4
let events_per_writer = 6

let run_selfish () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let repo = SD.create mem ~name:"audit" ~n in
  let writers =
    Array.init n (fun i ->
        Runtime.spawn rt ~name:(Printf.sprintf "writer%d" i) (fun () ->
            for e = 1 to events_per_writer do
              let index = SD.deposit repo ~me:i ((1000 * i) + e) in
              ignore index
            done))
  in
  let rng = Rng.create ~seed:21 in
  (* writer 0 dies mid-deposit *)
  Scheduler.run_for rt ~commits:250 (Scheduler.random rng);
  Runtime.crash rt writers.(0);
  Scheduler.run rt (Scheduler.random rng);
  let pinned = SD.pinned repo ~alive:(fun q -> q > 0) in
  Printf.printf "Selfish-Deposit: %d events durable, %d register(s) pinned by the crash (bound %d)\n"
    (List.length (SD.deposits repo))
    (List.length pinned) (n - 1)

let run_altruistic () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let repo = AD.create mem ~name:"audit" ~n in
  let acked = ref 0 in
  AD.spawn_all rt repo
    ~values:(fun me -> List.init events_per_writer (fun e -> (1000 * me) + e))
    ~on_deposit:(fun ~me:_ ~index:_ ~value:_ -> incr acked);
  let rng = Rng.create ~seed:22 in
  Scheduler.run_for rt ~commits:600 (Scheduler.random rng);
  (* everyone but writer 3 dies — wait-freedom means it still finishes *)
  List.iter
    (fun p ->
      let nm = Runtime.proc_name p in
      if
        List.exists
          (fun i -> nm = Printf.sprintf "depositor%d" i || nm = Printf.sprintf "provider%d" i)
          [ 0; 1; 2 ]
      then Runtime.crash rt p)
    (Runtime.procs rt);
  Scheduler.run ~max_commits:50_000_000 rt (Scheduler.random rng);
  let stranded = HB.stranded (AD.board repo) ~alive:(fun q -> q = 3) in
  Printf.printf
    "Altruistic-Deposit: %d events durable despite 3/4 writers crashing;\n\
    \  %d name(s) stranded on the Help board (bound n(n-1) = %d)\n"
    (List.length (AD.deposits repo))
    (List.length stranded)
    (n * (n - 1))

let () =
  run_selfish ();
  run_altruistic ();
  print_endline "\nBoth repositories guarantee: a deposited event is never overwritten."
