(* Sensor board: the workload the paper's Store&Collect targets.

   A fleet of sensors periodically publishes its latest reading; a monitor
   collects a consistent board of "one latest value per sensor" in O(k)
   steps, where k is how many sensors actually showed up — not how many
   could exist.  Sensors crash; the board stays readable.

   Run with:  dune exec examples/log_slots.exe *)

open Exsel_sim
module SC = Exsel_collect.Store_collect

type reading = { temperature : float; round : int }

let () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in

  (* Sensor ids live in a large sparse space (serial numbers up to 4096);
     the number of live sensors is unknown: setting (iii) of Theorem 5. *)
  let board =
    SC.create_almost ~rng:(Rng.create ~seed:11) mem ~name:"board" ~n:32 ~inputs:4096
  in

  let serials = [ 3011; 17; 2048; 999; 1234; 4000 ] in
  List.iter
    (fun serial ->
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "sensor-%d" serial) (fun () ->
             for round = 1 to 5 do
               let temperature = 20.0 +. float_of_int ((serial + round) mod 10) in
               SC.store board ~me:serial { temperature; round }
             done)))
    serials;

  (* One sensor dies mid-campaign. *)
  Scheduler.run rt
    (Scheduler.with_crashes ~crash_at:[ (120, 3) ]
       (Scheduler.random (Rng.create ~seed:5)));

  (* The monitor turns up later and collects the board. *)
  let collected = ref [] in
  let monitor = Runtime.spawn rt ~name:"monitor" (fun () -> collected := SC.collect board) in
  Scheduler.run rt (Scheduler.round_robin ());

  Printf.printf "sensor board (%d entries, collected in %d steps):\n"
    (List.length !collected) (Runtime.steps monitor);
  List.iter
    (fun (serial, r) ->
      Printf.printf "  sensor %-5d  %.1f degC  (round %d)\n" serial r.temperature r.round)
    (List.sort compare !collected);
  Printf.printf "\nslots provisioned: %d — the monitor read only the raised prefix.\n"
    (SC.slots board)
