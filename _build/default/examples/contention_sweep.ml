(* Contention sweep: adaptivity in action.

   The same Adaptive-Rename code path is exercised at k = 1, 2, 4, ..., 32
   contenders.  Neither k nor the identifier range appears in the code;
   the measured name range and step counts track k, not the system bound
   n — the substance of Theorem 4.

   Run with:  dune exec examples/contention_sweep.exe *)

open Exsel_sim
module R = Exsel_renaming

let n = 32

let run_at_contention k =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let a = R.Adaptive_rename.create ~rng:(Rng.create ~seed:(100 + k)) mem ~name:"ad" ~n in
  let names = Array.make k 0 in
  for i = 0 to k - 1 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
           names.(i) <- R.Adaptive_rename.rename a ~me:(123_456 + (7919 * i))))
  done;
  Scheduler.run ~max_commits:100_000_000 rt (Scheduler.random (Rng.create ~seed:k));
  let max_name = Array.fold_left max 0 names in
  let max_steps = Runtime.max_steps rt in
  (max_name, max_steps, R.Adaptive_rename.name_bound_for_contention ~k)

let () =
  Printf.printf "contention  max name  bound 8k-lgk-1  max steps\n";
  Printf.printf "-------------------------------------------------\n";
  List.iter
    (fun k ->
      let max_name, max_steps, bound = run_at_contention k in
      Printf.printf "%10d  %8d  %14d  %9d\n" k max_name bound max_steps)
    [ 1; 2; 4; 8; 16; 32 ];
  Printf.printf
    "\nNames track the *realised* contention k, not the system size n=%d —\n\
     the code never learns k; that is Theorem 4's adaptivity.\n"
    n
