(* Cluster bootstrap over a real (simulated) network: nodes with opaque
   hardware ids join a cluster and must self-assign dense ranks without
   any coordinator, tolerating node crashes — the original renaming
   problem of Attiya et al. [14], in the model it was born in.

   Run with:  dune exec examples/cluster_bootstrap.exe *)

module Mnet = Exsel_msgnet.Mnet
module Abdpr = Exsel_msgnet.Abdpr_renaming
module Rng = Exsel_sim.Rng

let () =
  let n = 5 in
  let f = 2 in
  (* hardware ids: opaque, sparse, unordered *)
  let nodes = [ (0, 0xDEAD); (1, 0x0042); (2, 0xBEEF); (3, 0x1234); (4, 0xCAFE) ] in
  let net = Abdpr.make_net ~n in

  (* node 4 dies during the gossip *)
  let ranks =
    Abdpr.run ~net ~f ~originals:nodes ~rng:(Rng.create ~seed:7)
      ~crash_after:[ (4, 40) ] ()
  in

  Printf.printf "cluster bootstrap: %d nodes, tolerating f=%d crashes\n\n" n f;
  Printf.printf "hardware id  ->  rank\n";
  List.iter
    (fun (hw, rank) -> Printf.printf "   0x%04X    ->  %d\n" hw rank)
    (List.sort compare ranks);
  let crashed = n - List.length ranks in
  Printf.printf
    "\n%d node(s) crashed mid-gossip; every survivor self-assigned a rank\n\
     below (f+1)n = %d using only unordered, unbounded-delay messages —\n\
     message complexity per node: at most %d sends.\n"
    crashed
    (Abdpr.name_bound ~n ~f)
    (List.fold_left (fun a p -> max a (Mnet.sent p)) 0 (Mnet.procs net))
