(* Quickstart: eight crash-prone workers with sparse identifiers grab
   dense, exclusive small names — without knowing how many of them there
   are — using Adaptive-Rename (Theorem 4).

   Run with:  dune exec examples/quickstart.exe *)

open Exsel_sim
module R = Exsel_renaming

let () =
  (* 1. One shared memory, one runtime, one Adaptive-Rename instance.
        [n] only bounds how many processes could ever show up. *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let rename =
    R.Adaptive_rename.create ~rng:(Rng.create ~seed:42) mem ~name:"names" ~n:16
  in

  (* 2. Spawn workers.  Identifiers are arbitrary integers — think process
        ids, user ids, MAC addresses. *)
  let worker_ids = [ 9120; 17; 88_001; 4242; 7; 55_555; 1_000_000; 3 ] in
  let results = Array.make (List.length worker_ids) (-1) in
  List.iteri
    (fun i me ->
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "worker-%d" me) (fun () ->
             results.(i) <- R.Adaptive_rename.rename rename ~me)))
    worker_ids;

  (* 3. Run them under an adversarial (seeded random) schedule. *)
  Scheduler.run rt (Scheduler.random (Rng.create ~seed:7));

  (* 4. Every worker ended up with a small exclusive name. *)
  print_endline "worker id  ->  new name   (steps)";
  List.iteri
    (fun i (p, me) ->
      Printf.printf "%9d  ->  %4d       (%d)\n" me results.(i) (Runtime.steps p))
    (List.combine (Runtime.procs rt) worker_ids);
  let k = List.length worker_ids in
  Printf.printf "\nall names < 8k - lg k - 1 = %d; registers used: %d\n"
    (R.Adaptive_rename.name_bound_for_contention ~k)
    (Memory.registers mem);
  assert (
    let sorted = Array.to_list results |> List.sort_uniq compare in
    List.length sorted = k)
