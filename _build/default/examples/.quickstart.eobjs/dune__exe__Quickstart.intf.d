examples/quickstart.mli:
