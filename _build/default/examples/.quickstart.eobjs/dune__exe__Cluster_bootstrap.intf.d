examples/cluster_bootstrap.mli:
