examples/cluster_bootstrap.ml: Exsel_msgnet Exsel_sim List Printf
