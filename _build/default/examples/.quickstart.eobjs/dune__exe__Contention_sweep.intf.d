examples/contention_sweep.mli:
