examples/worker_pool.mli:
