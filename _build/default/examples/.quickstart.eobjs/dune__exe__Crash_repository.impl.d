examples/crash_repository.ml: Array Exsel_repository Exsel_sim List Memory Printf Rng Runtime Scheduler
