examples/log_slots.ml: Exsel_collect Exsel_sim List Memory Printf Rng Runtime Scheduler
