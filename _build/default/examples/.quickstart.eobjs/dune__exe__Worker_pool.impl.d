examples/worker_pool.ml: Exsel_renaming Exsel_sim List Memory Printf Rng Runtime Scheduler
