examples/log_slots.mli:
