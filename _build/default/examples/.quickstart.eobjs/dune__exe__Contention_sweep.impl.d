examples/contention_sweep.ml: Array Exsel_renaming Exsel_sim List Memory Printf Rng Runtime Scheduler
