examples/crash_repository.mli:
