(* Worker pool with leased shard ids: the long-lived renaming extension.

   A dynamic pool of workers processes jobs; each worker leases a dense
   shard id while busy and releases it when done, so shard ids stay small
   (proportional to the number of *concurrently* busy workers) no matter
   how many workers come and go over time.

   Run with:  dune exec examples/worker_pool.exe *)

open Exsel_sim
module LL = Exsel_renaming.Long_lived

let n = 6 (* max workers ever alive at once *)

let () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let leases = LL.create mem ~name:"shards" ~n in
  let log = ref [] in
  let jobs_per_worker = 3 in

  for w = 0 to n - 1 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "worker%d" w) (fun () ->
           for job = 1 to jobs_per_worker do
             let shard = LL.acquire leases ~me:w in
             (* process the job against the leased shard; in a real system
                this is where the shard-local work happens *)
             log := (w, job, shard) :: !log;
             LL.release leases ~me:w
           done))
  done;
  Scheduler.run rt (Scheduler.random (Rng.create ~seed:17));

  let entries = List.rev !log in
  Printf.printf "worker  job  leased shard\n";
  List.iter (fun (w, j, s) -> Printf.printf "  w%-4d  #%d   shard %d\n" w j s) entries;
  let max_shard = List.fold_left (fun a (_, _, s) -> max a s) 0 entries in
  Printf.printf
    "\n%d lease operations total, yet every shard id stayed below 2n-1 = %d\n\
     (max seen: %d) — ids track concurrent holders, not lease history.\n"
    (List.length entries)
    ((2 * n) - 1)
    max_shard
