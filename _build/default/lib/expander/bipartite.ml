type t = {
  inputs : int;
  outputs : int;
  degree : int;
  adjacency : int -> int array;
}

let validate_adj ~outputs ~degree v adj =
  if Array.length adj <> degree then
    invalid_arg
      (Printf.sprintf "Bipartite: input %d has degree %d, expected %d" v
         (Array.length adj) degree);
  let seen = Hashtbl.create degree in
  Array.iter
    (fun w ->
      if w < 0 || w >= outputs then
        invalid_arg (Printf.sprintf "Bipartite: edge (%d,%d) out of range" v w);
      if Hashtbl.mem seen w then
        invalid_arg (Printf.sprintf "Bipartite: duplicate edge (%d,%d)" v w);
      Hashtbl.add seen w ())
    adj

let create ~inputs ~outputs ~neighbours =
  if inputs <= 0 then invalid_arg "Bipartite.create: inputs must be positive";
  if outputs <= 0 then invalid_arg "Bipartite.create: outputs must be positive";
  if Array.length neighbours <> inputs then
    invalid_arg "Bipartite.create: adjacency size mismatch";
  let degree =
    match Array.length neighbours with
    | 0 -> invalid_arg "Bipartite.create: no inputs"
    | _ -> Array.length neighbours.(0)
  in
  if degree = 0 then invalid_arg "Bipartite.create: zero input degree";
  Array.iteri (validate_adj ~outputs ~degree) neighbours;
  { inputs; outputs; degree; adjacency = (fun v -> neighbours.(v)) }

let functional ~inputs ~outputs ~degree f =
  if inputs <= 0 then invalid_arg "Bipartite.functional: inputs must be positive";
  if outputs <= 0 then invalid_arg "Bipartite.functional: outputs must be positive";
  if degree <= 0 || degree > outputs then
    invalid_arg "Bipartite.functional: bad degree";
  let adjacency v =
    let adj = f v in
    validate_adj ~outputs ~degree v adj;
    adj
  in
  { inputs; outputs; degree; adjacency }

let inputs t = t.inputs
let outputs t = t.outputs
let degree t = t.degree

let neighbours t v =
  if v < 0 || v >= t.inputs then invalid_arg "Bipartite.neighbours: out of range";
  t.adjacency v

let edges t = t.inputs * t.degree
