module Rng = Exsel_sim.Rng

let check_distinct xs =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun v ->
      if Hashtbl.mem seen v then
        invalid_arg "Check: duplicate input in subset"
      else Hashtbl.add seen v ())
    xs

(* Count, for every output touched by [xs], how many members are adjacent
   to it.  Returns the table output -> multiplicity. *)
let touch_counts g xs =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun v ->
      Array.iter
        (fun w ->
          let c = try Hashtbl.find counts w with Not_found -> 0 in
          Hashtbl.replace counts w (c + 1))
        (Bipartite.neighbours g v))
    xs;
  counts

let unique_neighbour_inputs g xs =
  check_distinct xs;
  let counts = touch_counts g xs in
  List.filter
    (fun v ->
      Array.exists (fun w -> Hashtbl.find counts w = 1) (Bipartite.neighbours g v))
    xs

let neighbourhood_size g xs =
  check_distinct xs;
  Hashtbl.length (touch_counts g xs)

let majority_ok g xs =
  let x = List.length xs in
  let winners = List.length (unique_neighbour_inputs g xs) in
  2 * winners >= x

let exhaustive_cost ~inputs ~l =
  (* sum_{x<=l} (inputs choose x), saturating at max_int *)
  let rec go x acc binom =
    if x > l then acc
    else
      let binom =
        if x = 0 then 1
        else
          let num = binom * (inputs - x + 1) in
          if num < 0 then max_int else num / x
      in
      let acc = if acc > max_int - binom then max_int else acc + binom in
      if binom = max_int then max_int else go (x + 1) acc binom
  in
  go 0 0 1

let verify_exhaustive g ~l =
  let n = Bipartite.inputs g in
  let violation = ref None in
  (* enumerate subsets of size <= l by recursive choice *)
  let rec go start chosen size =
    match !violation with
    | Some _ -> ()
    | None ->
        if size > 0 && not (majority_ok g chosen) then violation := Some chosen
        else if size < l then
          for v = start to n - 1 do
            go (v + 1) (v :: chosen) (size + 1)
          done
  in
  go 0 [] 0;
  match !violation with None -> Ok () | Some xs -> Error xs

let random_subset rng n size =
  let all = Array.init n (fun i -> i) in
  Rng.shuffle rng all;
  Array.to_list (Array.sub all 0 size)

let verify_sampled rng g ~l ~trials =
  let n = Bipartite.inputs g in
  let size = min l n in
  let rec go t =
    if t = 0 then Ok ()
    else
      let xs = random_subset rng n size in
      if majority_ok g xs then go (t - 1) else Error xs
  in
  go trials

(* Local search: starting from a random subset, repeatedly swap a member for
   an outsider if the swap lowers the unique-neighbour count. *)
let verify_greedy_adversarial g ~l ~restarts ~seed =
  let n = Bipartite.inputs g in
  let size = min l n in
  let rng = Rng.create ~seed in
  let score xs = List.length (unique_neighbour_inputs g xs) in
  let improve xs =
    let best = ref (score xs, xs) in
    let try_swap out_v in_v =
      let cand = in_v :: List.filter (fun v -> v <> out_v) xs in
      let s = score cand in
      if s < fst !best then best := (s, cand)
    in
    (* probe a bounded number of random swaps to keep the search cheap *)
    for _ = 1 to 32 + (4 * size) do
      let out_v = List.nth xs (Rng.int rng size) in
      let in_v = Rng.int rng n in
      if not (List.mem in_v xs) then try_swap out_v in_v
    done;
    !best
  in
  let rec descend xs s rounds =
    if rounds = 0 then (s, xs)
    else
      let s', xs' = improve xs in
      if s' < s then descend xs' s' (rounds - 1) else (s, xs)
  in
  let rec go r =
    if r = 0 then Ok ()
    else
      let xs = random_subset rng n size in
      let _, worst = descend xs (score xs) 20 in
      if majority_ok g worst then go (r - 1) else Error worst
  in
  go restarts
