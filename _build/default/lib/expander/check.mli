(** Certification of the unique-neighbour property the algorithms rely on.

    The renaming analysis (Lemmas 2 and 4) needs one consequence of lossless
    expansion: every set [X] of at most [L] active inputs has at least
    ⌈|X|/2⌉ members owning a {e unique neighbour} — an output adjacent to no
    other member of [X].  Such members provably win a register (Lemma 1), so
    each Majority stage renames at least half of its contenders.

    [Check] certifies this property directly: exhaustively over all subsets
    when the search space is small, statistically otherwise (adversarial
    subsets are also probed by hill-climbing in the test suite). *)

val unique_neighbour_inputs : Bipartite.t -> int list -> int list
(** [unique_neighbour_inputs g xs] lists the members of [xs] that have at
    least one output adjacent to exactly one member of [xs].  Duplicate
    members of [xs] are rejected with [Invalid_argument]. *)

val neighbourhood_size : Bipartite.t -> int list -> int
(** Number of distinct outputs adjacent to the set — the expansion measure
    [|Γ(X)|] of Lemma 3. *)

val majority_ok : Bipartite.t -> int list -> bool
(** [majority_ok g xs] holds when at least ⌈|xs|/2⌉ members have a unique
    neighbour ([true] on the empty set). *)

val verify_exhaustive : Bipartite.t -> l:int -> (unit, int list) result
(** Check {!majority_ok} for {e every} subset of inputs of size ≤ [l];
    returns the first violating subset on failure.  Cost grows as
    [inputs choose l]; guard with {!exhaustive_cost}. *)

val exhaustive_cost : inputs:int -> l:int -> int
(** Number of subsets [verify_exhaustive] would enumerate (saturating). *)

val verify_sampled :
  Exsel_sim.Rng.t -> Bipartite.t -> l:int -> trials:int -> (unit, int list) result
(** Check {!majority_ok} on [trials] uniformly drawn subsets of size exactly
    [min l inputs]; returns the first violating subset found. *)

val verify_greedy_adversarial :
  Bipartite.t -> l:int -> restarts:int -> seed:int -> (unit, int list) result
(** Adversarial probe: greedily grow subsets that minimise the
    unique-neighbour count (local search with [restarts] random restarts).
    Far more likely to find violations than uniform sampling. *)
