lib/expander/check.mli: Bipartite Exsel_sim
