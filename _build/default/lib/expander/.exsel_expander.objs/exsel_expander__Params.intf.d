lib/expander/params.mli:
