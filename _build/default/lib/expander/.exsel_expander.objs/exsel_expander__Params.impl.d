lib/expander/params.ml: Float
