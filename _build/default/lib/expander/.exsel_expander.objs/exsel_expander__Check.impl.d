lib/expander/check.ml: Array Bipartite Exsel_sim Hashtbl List
