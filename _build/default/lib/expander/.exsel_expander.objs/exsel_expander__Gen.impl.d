lib/expander/gen.ml: Array Bipartite Exsel_sim Hashtbl Int64 Params
