lib/expander/bipartite.mli:
