lib/expander/bipartite.ml: Array Hashtbl Printf
