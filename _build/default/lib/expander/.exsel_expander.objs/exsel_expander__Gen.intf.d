lib/expander/gen.mli: Bipartite Exsel_sim Params
