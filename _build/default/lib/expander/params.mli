(** Expander dimensioning constants.

    Lemma 3 of the paper fixes input-degree Δ = 4 lg(|V|/L) and output width
    |W| = 12e⁴ · L · lg(|V|/L).  The 12e⁴ ≈ 655 constant makes name ranges
    astronomically large; it exists to push the union bound of the
    probabilistic argument below 1.  We expose both the paper's constants
    and a practical preset whose sampled graphs are verified (exhaustively
    for small instances, statistically otherwise) by {!Check}. *)

type t = {
  degree_factor : float;  (** Δ = max(min_degree, ⌈degree_factor · lg(N/L)⌉) *)
  width_factor : float;  (** |W| = max(width_floor·L, ⌈width_factor · L · lg(N/L)⌉) *)
  min_degree : int;  (** lower bound on Δ, ≥ 1 *)
  width_floor : int;  (** |W| ≥ width_floor · L *)
}

val paper : t
(** Lemma 3 verbatim: degree_factor 4, width_factor 12e⁴. *)

val practical : t
(** Scaled-down constants (degree_factor 4, width_factor 2.5, with floors)
    giving name ranges usable in experiments; sampled graphs are certified
    and resampled by [Majority.create].  DESIGN.md, Substitution 1. *)

val tight : t
(** Deliberately marginal constants (majority holds by a thin margin) used
    by experiments that want to observe Lemma 5's per-stage halving rather
    than full-stage success. *)

val degree : t -> inputs:int -> l:int -> int
(** The input degree Δ for a graph over [inputs] names with contention
    budget [l]. *)

val width : t -> inputs:int -> l:int -> int
(** The output count |W| (the bound [M] on new names of one Majority
    instance). *)

val lg_ratio : inputs:int -> l:int -> float
(** [max 1 (lg (inputs / l))], the lg(N/L) term, floored at 1 so degenerate
    ranges keep positive degree. *)
