type t = {
  degree_factor : float;
  width_factor : float;
  min_degree : int;
  width_floor : int;
}

let paper =
  { degree_factor = 4.0; width_factor = 12.0 *. exp 4.0; min_degree = 1; width_floor = 1 }

(* Dimensioning heuristic behind the practical preset: with x ≤ L active
   inputs, the expected load on an output is λ = xΔ/|W| ≤
   degree_factor/width_factor per lg-unit; an output adjacent to an active
   input is its unique neighbour with probability ≈ e^{-λ}, so an input has
   one with probability ≈ 1 − (1 − e^{-λ})^Δ.  With λ ≤ 1.6 and Δ ≥ 4 this
   stays well above 1/2 in expectation; Majority.create additionally
   certifies each sampled graph and resamples on failure. *)
let practical = { degree_factor = 4.0; width_factor = 2.5; min_degree = 4; width_floor = 3 }

(* Deliberately marginal dimensioning: majority holds by a thin margin, so
   the per-stage halving of Lemma 5 is visible instead of every stage
   renaming everyone.  Used by the F1 experiment. *)
let tight = { degree_factor = 2.0; width_factor = 1.0; min_degree = 2; width_floor = 2 }

let lg_ratio ~inputs ~l =
  if inputs <= 0 || l <= 0 then invalid_arg "Params.lg_ratio: positive sizes required";
  Float.max 1.0 (Float.log2 (float_of_int inputs /. float_of_int l))

(* Δ is additionally capped at the output width by Gen.sample, since
   neighbours are distinct outputs. *)
let degree t ~inputs ~l =
  let d = int_of_float (Float.ceil (t.degree_factor *. lg_ratio ~inputs ~l)) in
  max t.min_degree d

let width t ~inputs ~l =
  let w = int_of_float (Float.ceil (t.width_factor *. float_of_int l *. lg_ratio ~inputs ~l)) in
  max (t.width_floor * l) w
