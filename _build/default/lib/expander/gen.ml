module Rng = Exsel_sim.Rng

(* Draw [degree] distinct outputs for one input.  For small degree relative
   to the range, rejection sampling is cheap; fall back to a partial
   Fisher-Yates when the degree is a large fraction of the range. *)
let draw_distinct rng ~degree ~outputs =
  if degree * 3 >= outputs then begin
    let all = Array.init outputs (fun i -> i) in
    Rng.shuffle rng all;
    Array.sub all 0 degree
  end
  else begin
    let chosen = Hashtbl.create degree in
    let adj = Array.make degree 0 in
    let filled = ref 0 in
    while !filled < degree do
      let w = Rng.int rng outputs in
      if not (Hashtbl.mem chosen w) then begin
        Hashtbl.add chosen w ();
        adj.(!filled) <- w;
        incr filled
      end
    done;
    adj
  end

(* Adjacency is a pure function of (graph seed, input): each input derives
   its own generator, matching Lemma 3's independent per-input choices and
   letting graphs over huge name spaces stay unmaterialised. *)
let sample_dims rng ~degree ~inputs ~outputs =
  if inputs <= 0 || outputs <= 0 then
    invalid_arg "Gen.sample_dims: positive dimensions required";
  let degree = max 1 (min degree outputs) in
  let graph_seed = Int64.to_int (Rng.bits64 rng) land max_int in
  let adjacency v =
    let vrng = Rng.create ~seed:(graph_seed lxor (v * 0x9E3779B9) lxor v) in
    draw_distinct vrng ~degree ~outputs
  in
  Bipartite.functional ~inputs ~outputs ~degree adjacency

let sample rng params ~inputs ~l =
  if inputs <= 0 || l <= 0 then invalid_arg "Gen.sample: positive sizes required";
  let degree = Params.degree params ~inputs ~l in
  let outputs = Params.width params ~inputs ~l in
  sample_dims rng ~degree ~inputs ~outputs
