(** Simple bipartite graphs with regular input degree.

    Inputs [0 .. inputs-1] stand for original names, outputs
    [0 .. outputs-1] for candidate new names; edges say which names an input
    competes for, in traversal order (paper, Section 2, "Graphs"). *)

type t

val create : inputs:int -> outputs:int -> neighbours:int array array -> t
(** [create ~inputs ~outputs ~neighbours] builds a graph where
    [neighbours.(v)] lists the outputs adjacent to input [v], in the order
    the renaming algorithms traverse them.  All inputs must have the same
    positive number of distinct neighbours, each within bounds.
    @raise Invalid_argument on malformed adjacency. *)

val functional : inputs:int -> outputs:int -> degree:int -> (int -> int array) -> t
(** [functional ~inputs ~outputs ~degree f] builds a graph whose adjacency
    is computed on demand by [f] — Lemma 3's per-input independent choices
    derived from a seed, so graphs over huge name spaces (N = 2¹⁸ and
    beyond) cost nothing until an input is actually traversed.  [f v] must
    be deterministic; each computed adjacency is validated on access. *)

val inputs : t -> int
val outputs : t -> int

val degree : t -> int
(** The common input-degree Δ. *)

val neighbours : t -> int -> int array
(** [neighbours g v] is the adjacency of input [v] in traversal order.
    The returned array must not be mutated. *)

val edges : t -> int
(** Total edge count, [inputs * degree]. *)
