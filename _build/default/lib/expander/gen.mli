(** Seeded sampling of candidate lossless expanders (Lemma 3's recipe).

    Lemma 3 proves a graph with the required expansion exists by selecting,
    for each input, Δ uniformly random distinct outputs.  [sample] performs
    exactly that selection from an explicit generator, so a graph is a pure
    function of its seed and dimensions; {!Check} then certifies the
    property we actually rely on. *)

val sample : Exsel_sim.Rng.t -> Params.t -> inputs:int -> l:int -> Bipartite.t
(** [sample rng params ~inputs ~l] draws a graph over [inputs] inputs with
    contention budget [l] ([1 <= l]); dimensions come from [params].
    @raise Invalid_argument if [inputs <= 0] or [l <= 0]. *)

val sample_dims :
  Exsel_sim.Rng.t -> degree:int -> inputs:int -> outputs:int -> Bipartite.t
(** Sampling with explicit dimensions (used by tests and by the harness to
    probe non-standard shapes).  [degree] is capped at [outputs]. *)
