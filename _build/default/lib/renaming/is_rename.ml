module Memory = Exsel_sim.Memory
module IS = Exsel_snapshot.Immediate_snapshot

type t = { n : int; snapshot : int IS.t }

let create mem ~name ~n =
  if n <= 0 then invalid_arg "Is_rename.create: n must be positive";
  { n; snapshot = IS.create mem ~name ~n }

let n t = t.n

let rename t ~slot =
  let view = IS.access t.snapshot ~me:slot slot in
  let size = List.length view in
  let rank =
    let rec go i = function
      | [] -> invalid_arg "Is_rename: self-inclusion violated"
      | (j, _) :: rest -> if j = slot then i else go (i + 1) rest
    in
    go 1 view
  in
  (size * (size - 1) / 2) + rank - 1

let name_bound ~contenders = contenders * (contenders + 1) / 2
