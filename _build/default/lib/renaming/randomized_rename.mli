(** Randomized loose renaming, in the style the paper surveys [10–12].

    Each process draws private coins to probe slots of a name table of
    size [(1+ε)·k] in random order, competing for each probed slot with
    {!Compete}; it adopts the first slot it wins.  Exclusiveness is
    unconditional (Lemma 1); termination holds whenever fewer processes
    than slots participate (every process's permutation eventually reaches
    a slot nobody else ever wins, and a solo contender on a slot wins it —
    but a slot contended by several may be won by nobody, which is why the
    table is oversized).  The expected number of probes per process is
    O(1/ε) at full contention — compare with the deterministic
    alternatives in experiment X3.

    Coins are drawn from a generator derived from the instance seed and
    the caller's identifier, so executions stay reproducible: "randomized"
    refers to the algorithm's use of private coins, not to
    irreproducibility of the simulation. *)

type t

val create :
  Exsel_sim.Memory.t -> name:string -> seed:int -> k:int -> epsilon:float -> t
(** Table of [⌈(1+epsilon)·k⌉] slots (2 registers each).
    @raise Invalid_argument if [k <= 0] or [epsilon <= 0]. *)

val slots : t -> int
(** Table size — the bound [M] on names. *)

val rename : t -> me:int -> int option
(** Probe slots in a private random order; [Some slot] on the first win,
    [None] only if every slot was probed and lost (possible only when
    contention reaches the table size).  Must run inside a runtime
    process, once per process. *)

val probes_bound : t -> int
(** Worst-case probes of one call (the table size). *)
