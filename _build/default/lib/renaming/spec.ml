let lg x = Float.log2 (float_of_int (max 2 x))

let majority_steps ~n_names = lg n_names

let basic_steps ~k ~n_names = lg k *. lg n_names

let polylog_steps ~k ~n_names =
  lg k *. (lg n_names +. (lg k *. Float.log2 (Float.max 2.0 (lg n_names))))

let efficient_steps ~k = float_of_int k

let almost_adaptive_steps ~k ~n_names = lg k *. polylog_steps ~k ~n_names

let adaptive_steps ~k = float_of_int k

let efficient_names ~k = (2 * k) - 1

let adaptive_names ~k = Adaptive_rename.name_bound_for_contention ~k

let polylog_registers ~k ~n_names =
  float_of_int k *. Float.max 1.0 (lg n_names -. lg k)

let lower_bound_steps ~k ~n_names ~m ~r =
  let log_term =
    if n_names <= 2 * m then 0
    else
      int_of_float
        (Float.log (float_of_int n_names /. (2.0 *. float_of_int m))
        /. Float.log (float_of_int (max 2 (2 * r))))
  in
  1 + max 0 (min (k - 2) log_term)

let store_lower_bound ~k ~n_names ~r =
  let log_term =
    if n_names <= k then 0
    else
      int_of_float
        (Float.log (float_of_int n_names /. float_of_int k)
        /. Float.log (float_of_int (max 2 (2 * r))))
  in
  max 1 (min k log_term)

let store_steps_known ~k ~n_names = polylog_steps ~k ~n_names

let store_steps_almost ~k ~n = lg k *. polylog_steps ~k ~n_names:n

let collect_steps ~k = float_of_int k
