(** One-shot renaming from an immediate snapshot.

    The order-based renaming that underlies the machinery of
    Borowsky–Gafni [22]: every process deposits its identifier in a single
    {!Exsel_snapshot.Immediate_snapshot} and takes the pair
    [(s, r)] — its view's size and its identifier's rank within the view —
    as its name, encoded as the triangular index [s(s−1)/2 + r − 1].

    Correctness is immediate from the snapshot's properties: views form a
    chain, so equal sizes mean equal views (then ranks differ) and
    different sizes differ — the pair is injective.  Adaptivity comes for
    free: a view only contains actual participants, so with [k]
    contenders all names fall below [k(k+1)/2].

    Costs one immediate-snapshot access: O(n²) reads, [2n] registers —
    a completely different route to the same name range as the
    Moir–Anderson grid (experiment X3 compares them).  The full BG
    subdivision-walking algorithm reaching 2k−1 is out of scope
    (DESIGN.md). *)

type t

val create : Exsel_sim.Memory.t -> name:string -> n:int -> t

val n : t -> int

val rename : t -> slot:int -> int
(** One-shot per slot ([0 .. n−1]); always succeeds (wait-free).  Must
    run inside a runtime process. *)

val name_bound : contenders:int -> int
(** Exclusive upper bound with [contenders] participants:
    [contenders·(contenders+1)/2]. *)
