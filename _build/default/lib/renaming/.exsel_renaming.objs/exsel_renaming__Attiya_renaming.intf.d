lib/renaming/attiya_renaming.mli: Exsel_sim
