lib/renaming/majority.mli: Exsel_expander Exsel_sim
