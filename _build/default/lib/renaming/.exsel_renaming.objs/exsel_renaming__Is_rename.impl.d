lib/renaming/is_rename.ml: Exsel_sim Exsel_snapshot List
