lib/renaming/basic_rename.mli: Exsel_expander Exsel_sim
