lib/renaming/moir_anderson.mli: Exsel_sim
