lib/renaming/randomized_rename.ml: Array Compete Exsel_sim Float Printf
