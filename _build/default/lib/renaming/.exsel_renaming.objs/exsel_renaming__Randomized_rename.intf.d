lib/renaming/randomized_rename.mli: Exsel_sim
