lib/renaming/almost_adaptive.mli: Exsel_expander Exsel_sim
