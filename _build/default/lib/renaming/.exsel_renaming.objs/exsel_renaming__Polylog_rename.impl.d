lib/renaming/polylog_rename.ml: Array Basic_rename Exsel_sim List Printf
