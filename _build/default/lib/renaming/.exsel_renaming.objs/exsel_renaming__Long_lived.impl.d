lib/renaming/long_lived.ml: Array Exsel_sim Exsel_snapshot List
