lib/renaming/spec.mli:
