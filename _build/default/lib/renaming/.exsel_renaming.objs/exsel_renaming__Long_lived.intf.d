lib/renaming/long_lived.mli: Exsel_sim
