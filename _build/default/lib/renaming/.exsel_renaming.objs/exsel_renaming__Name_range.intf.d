lib/renaming/name_range.mli:
