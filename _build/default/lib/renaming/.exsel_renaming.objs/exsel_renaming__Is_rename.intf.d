lib/renaming/is_rename.mli: Exsel_sim
