lib/renaming/splitter.mli: Exsel_sim
