lib/renaming/compete.ml: Exsel_sim
