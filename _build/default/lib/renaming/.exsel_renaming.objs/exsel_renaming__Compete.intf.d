lib/renaming/compete.mli: Exsel_sim
