lib/renaming/majority.ml: Array Compete Exsel_expander Exsel_sim Printf
