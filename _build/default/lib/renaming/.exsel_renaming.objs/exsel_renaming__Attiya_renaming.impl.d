lib/renaming/attiya_renaming.ml: Array Exsel_sim Exsel_snapshot List
