lib/renaming/almost_adaptive.ml: Array Exsel_sim Moir_anderson Name_range Polylog_rename Printf
