lib/renaming/chain_rename.mli: Exsel_sim
