lib/renaming/adaptive_rename.ml: Array Efficient_rename Exsel_sim Moir_anderson Name_range Printf
