lib/renaming/moir_anderson.ml: Array Exsel_sim Printf Splitter
