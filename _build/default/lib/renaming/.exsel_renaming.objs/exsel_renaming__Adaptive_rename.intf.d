lib/renaming/adaptive_rename.mli: Exsel_expander Exsel_sim
