lib/renaming/splitter.ml: Exsel_sim
