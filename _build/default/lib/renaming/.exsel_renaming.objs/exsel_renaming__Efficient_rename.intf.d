lib/renaming/efficient_rename.mli: Exsel_expander Exsel_sim
