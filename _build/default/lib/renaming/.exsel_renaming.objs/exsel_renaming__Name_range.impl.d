lib/renaming/name_range.ml:
