lib/renaming/spec.ml: Adaptive_rename Float
