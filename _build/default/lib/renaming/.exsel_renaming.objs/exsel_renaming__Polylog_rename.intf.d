lib/renaming/polylog_rename.mli: Exsel_expander Exsel_sim
