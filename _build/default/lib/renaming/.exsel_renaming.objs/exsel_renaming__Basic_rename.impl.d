lib/renaming/basic_rename.ml: Array Exsel_expander Exsel_sim List Majority Name_range Printf
