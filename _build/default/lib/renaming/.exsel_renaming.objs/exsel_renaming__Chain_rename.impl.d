lib/renaming/chain_rename.ml: Array Compete Printf
