(** Chain-Rename: a register-lean strawman for the lower-bound experiments.

    Processes compete for names 0, 1, 2, … in order through a chain of
    {!Compete} objects and adopt the first name they win.  Names are
    exclusive unconditionally (Lemma 1), and the construction uses only
    [2·m] registers for [m] names — the fewest of any algorithm in this
    repository — which is exactly what makes the lower bound of Theorem 6
    bind: with [r] this small, [1 + log₂ᵣ(N/2M)] forces multiple steps.

    It is {e not} a wait-free renaming solution: under contention a
    Compete object can be won by nobody, so a process may fail the whole
    chain ([rename] returns [None]).  The experiment harness uses it to
    demonstrate the register/time trade-off; production code should use
    the certified algorithms. *)

type t

val create : Exsel_sim.Memory.t -> name:string -> m:int -> t
(** A chain of [m] names using [2m] registers. *)

val names : t -> int

val rename : t -> me:int -> int option
(** Walk the chain; [Some i] is the first name won.  At most [5m] local
    steps. *)

val steps_bound : t -> int
