type range = { base : int; size : int }

type t = { start : int; mutable next : int }

let allocator ?(base = 0) () = { start = base; next = base }

let take t size =
  if size < 0 then invalid_arg "Name_range.take: negative size";
  let r = { base = t.next; size } in
  t.next <- t.next + size;
  r

let used t = t.next - t.start

let contains r name = name >= r.base && name < r.base + r.size

let global r local =
  if local < 0 || local >= r.size then
    invalid_arg "Name_range.global: local name out of range";
  r.base + local
