(** Disjoint name-interval bookkeeping.

    The paper's composed algorithms (Basic-Rename stages, PolyLog epochs,
    the doubling constructions of Theorems 3–4) each consume "the first
    interval of new names not used before".  An allocator hands out
    consecutive disjoint intervals; names local to a component are offset
    by the interval base. *)

type range = { base : int; size : int }

type t

val allocator : ?base:int -> unit -> t
(** Fresh allocator starting at [base] (default 0). *)

val take : t -> int -> range
(** Next interval of the given size.  @raise Invalid_argument on negative
    size. *)

val used : t -> int
(** Total names handed out (the composed algorithm's bound [M] relative to
    the starting base). *)

val contains : range -> int -> bool
val global : range -> int -> int
(** [global r local] = [r.base + local]; checks bounds. *)
