module Memory = Exsel_sim.Memory
module Rng = Exsel_sim.Rng

type t = {
  seed : int;
  table : Compete.t array;
}

let create mem ~name ~seed ~k ~epsilon =
  if k <= 0 then invalid_arg "Randomized_rename.create: k must be positive";
  if epsilon <= 0.0 then invalid_arg "Randomized_rename.create: epsilon must be positive";
  let m = int_of_float (Float.ceil ((1.0 +. epsilon) *. float_of_int k)) in
  let m = max m (k + 1) in
  {
    seed;
    table =
      Array.init m (fun i -> Compete.create mem ~name:(Printf.sprintf "%s.%d" name i));
  }

let slots t = Array.length t.table

(* The caller's private coins: a permutation of the table derived from the
   instance seed and the identifier. *)
let permutation t ~me =
  let coins = Rng.create ~seed:(t.seed lxor (me * 0x9E3779B9) lxor me) in
  let order = Array.init (Array.length t.table) (fun i -> i) in
  Rng.shuffle coins order;
  order

let rename t ~me =
  let order = permutation t ~me in
  let rec probe i =
    if i >= Array.length order then None
    else if Compete.compete t.table.(order.(i)) ~me then Some order.(i)
    else probe (i + 1)
  in
  probe 0

let probes_bound t = Array.length t.table
