type t = { chain : Compete.t array }

let create mem ~name ~m =
  if m <= 0 then invalid_arg "Chain_rename.create: m must be positive";
  {
    chain =
      Array.init m (fun i -> Compete.create mem ~name:(Printf.sprintf "%s.%d" name i));
  }

let names t = Array.length t.chain

let rename t ~me =
  let rec go i =
    if i >= Array.length t.chain then None
    else if Compete.compete t.chain.(i) ~me then Some i
    else go (i + 1)
  in
  go 0

let steps_bound t = Compete.steps_bound * Array.length t.chain
