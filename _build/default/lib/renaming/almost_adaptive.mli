(** Almost-Adaptive(N): renaming with k unknown, N known (Theorem 3).

    Levels [i = 0, 1, …, ⌈lg n⌉] each hold a PolyLog-Rename(2ⁱ, N)
    instance on disjoint registers and a disjoint name interval.  A process
    tries the levels in order until one yields a name; with contention [k],
    level [⌈lg k⌉] is the last one it can need, so final names are bounded
    by the sum of the first [⌈lg k⌉+1] level ranges — O(k) names overall —
    and the step count depends on [k], not [n].

    A Moir–Anderson grid of side [n] sits behind the last level as an
    unconditional wait-freedom reserve; it is not used in any certified
    run and its use is observable via {!reserve_uses}. *)

type t

val create :
  ?params:Exsel_expander.Params.t ->
  rng:Exsel_sim.Rng.t ->
  Exsel_sim.Memory.t ->
  name:string ->
  n:int ->
  inputs:int ->
  t
(** [n] is the total number of processes (bounds the doubling); [inputs]
    is the known bound [N] on original names. *)

val levels : t -> int

val rename : t -> me:int -> int
(** Always succeeds (wait-free).  [me] in [0 .. inputs−1]. *)

val rename_leveled : t -> me:int -> int * int
(** Name together with the level that served it ([levels t] for the
    reserve), for adaptivity experiments. *)

val name_bound_for_contention : t -> k:int -> int
(** Exclusive upper bound on names assigned when the realised contention
    is [k] (sum of the ranges of levels [0 .. ⌈lg k⌉]) — the paper's
    "M is a function of k" claim, checkable per run. *)

val reserve_uses : t -> int
(** Number of processes served by the reserve lane so far. *)

val registers : t -> int
