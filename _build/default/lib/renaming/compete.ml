module Memory = Exsel_sim.Memory
module Register = Exsel_sim.Register
module Runtime = Exsel_sim.Runtime

type t = {
  hr : int option Register.t;  (* placeholder holding a reservation for r *)
  r : int option Register.t;
}

let create mem ~name =
  {
    hr = Register.create mem ~name:(name ^ ".HR") None;
    r = Register.create mem ~name:(name ^ ".R") None;
  }

(* Figure 1.  Exclusiveness argument (Lemma 1): p's value in HR is only
   overwritten once R already stores p, so any later contender fails the
   read of R; an earlier contender that wrote HR before p would have made
   p's first read non-null. *)
let compete t ~me =
  match Runtime.read t.hr with
  | Some _ -> false
  | None -> (
      Runtime.write t.hr (Some me);
      match Runtime.read t.r with
      | Some _ -> false
      | None ->
          Runtime.write t.r (Some me);
          Runtime.read t.hr = Some me)

let occupant t = Register.peek t.r

let steps_bound = 5
let registers_per_instance = 2
