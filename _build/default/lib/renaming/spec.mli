(** The paper's complexity bounds as executable functions.

    Tests and the experiment harness compare measured local steps, name
    bounds and register counts against these shapes.  Asymptotic bounds
    are reported without their hidden constants; harness tables print the
    measured-to-bound ratio, which should stay flat (or shrink) along a
    sweep if the shape holds. *)

val lg : int -> float
(** Base-2 logarithm of [max 2 x] — the guarded lg the bound formulas use
    so that tiny parameters do not send shapes to 0 or −∞. *)

val polylog_steps : k:int -> n_names:int -> float
(** Theorem 1: [log k (log N + log k log log N)]. *)

val basic_steps : k:int -> n_names:int -> float
(** Lemma 5: [log k · log N]. *)

val majority_steps : n_names:int -> float
(** Lemma 4: [log N]. *)

val efficient_steps : k:int -> float
(** Theorem 2: [k]. *)

val almost_adaptive_steps : k:int -> n_names:int -> float
(** Theorem 3: [log² k (log N + log k log log N)]. *)

val adaptive_steps : k:int -> float
(** Theorem 4: [k]. *)

val efficient_names : k:int -> int
(** Theorem 2: [2k − 1]. *)

val adaptive_names : k:int -> int
(** Theorem 4: [8k − lg k − 1]. *)

val polylog_registers : k:int -> n_names:int -> float
(** Theorem 1: [k log(N/k)]. *)

val lower_bound_steps : k:int -> n_names:int -> m:int -> r:int -> int
(** Theorem 6: [1 + min{k − 2, log_{2r}(N/2M)}] (floored at 1). *)

val store_lower_bound : k:int -> n_names:int -> r:int -> int
(** Theorem 7: [min{k, log_{2r}(N/k)}] local steps for a first store
    (floored at 1). *)

val store_steps_known : k:int -> n_names:int -> float
(** Theorem 5(i): first store, k and N known. *)

val store_steps_almost : k:int -> n:int -> float
(** Theorem 5(ii–iii): first store, N = poly(n) known, k unknown. *)

val collect_steps : k:int -> float
(** Theorem 5: collect is [O(k)] in every setting. *)
