(** Majority(ℓ, N): expander-traversal majority renaming (Lemma 4).

    Names [0 .. N−1] are the inputs of a bipartite graph sampled per
    Lemma 3; outputs are candidate new names, each guarded by a
    {!Compete} pair.  A process walks the Δ neighbours of its input in
    order, competing for each, and adopts the first output it wins.

    Guarantees, given the graph's unique-neighbour property (certified by
    {!Exsel_expander.Check}): with at most ℓ contenders holding distinct
    inputs, at least ⌈half⌉ of them win, every winner's name is exclusive
    (unconditionally, by Lemma 1), and each process takes at most
    [5Δ = O(log N)] local steps.  Uses [2·M] registers where
    [M = O(ℓ log(N/ℓ))] is the output count. *)

type t

val create :
  ?params:Exsel_expander.Params.t ->
  rng:Exsel_sim.Rng.t ->
  Exsel_sim.Memory.t ->
  name:string ->
  l:int ->
  inputs:int ->
  t
(** [create ~rng mem ~name ~l ~inputs] builds an instance for contention
    budget [l] over original names [0 .. inputs−1].  [params] defaults to
    {!Exsel_expander.Params.practical}. *)

val graph : t -> Exsel_expander.Bipartite.t
val contention_budget : t -> int

val names : t -> int
(** The bound [M] on new names (the graph's output count). *)

val rename : t -> me:int -> int option
(** Traverse and compete; [Some w] is the captured output index.
    [me] must lie in [0 .. inputs−1].  Must run inside a runtime process,
    once per process. *)

val steps_bound : t -> int
(** Worst-case local steps: [5·Δ]. *)

val registers : t -> int
(** Registers allocated: [2·names]. *)
