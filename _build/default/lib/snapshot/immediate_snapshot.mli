(** One-shot immediate atomic snapshot (Borowsky–Gafni).

    The object behind the paper's reference [22] ("immediate atomic
    snapshots and fast renaming").  Each of [n] processes calls [access]
    at most once, depositing a value and receiving a view — a set of
    (slot, value) pairs — satisfying, for all participants [p], [q]:

    - {e self-inclusion}: [p]'s pair is in [p]'s view;
    - {e containment}: views are totally ordered by inclusion;
    - {e immediacy}: if [q]'s pair is in [p]'s view, then [q]'s view is
      included in [p]'s view.

    Implementation: the classic level-descent construction — a process
    starts at level [n] and descends; at each level it publishes its
    level and scans; it stops at level [ℓ] when at least [ℓ] processes
    sit at levels [≤ ℓ], returning their values.  Wait-free, O(n²) reads,
    [2n] registers. *)

type 'a t

val create : Exsel_sim.Memory.t -> name:string -> n:int -> 'a t

val size : 'a t -> int

val access : 'a t -> me:int -> 'a -> (int * 'a) list
(** Deposit a value and obtain a view, as [(slot, value)] pairs sorted by
    slot.  One-shot: each slot may call this at most once.  Must run
    inside a runtime process. *)
