module Memory = Exsel_sim.Memory
module Register = Exsel_sim.Register
module Runtime = Exsel_sim.Runtime

type 'a t = {
  n : int;
  values : 'a option Register.t array;
  levels : int Register.t array;  (* n+1 = not started *)
}

let create mem ~name ~n =
  if n <= 0 then invalid_arg "Immediate_snapshot.create: n must be positive";
  {
    n;
    values =
      Array.init n (fun i ->
          Register.create mem ~name:(Printf.sprintf "%s.val%d" name i) None);
    levels =
      Array.init n (fun i ->
          Register.create mem ~name:(Printf.sprintf "%s.lvl%d" name i) (n + 1));
  }

let size t = t.n

(* Level descent: stopping at level ℓ exactly when ℓ processes occupy
   levels <= ℓ yields the three properties — the processes that stop at
   the same level see each other (immediacy), and lower levels see subsets
   (containment). *)
let access t ~me v =
  if me < 0 || me >= t.n then invalid_arg "Immediate_snapshot.access: bad slot";
  Runtime.write t.values.(me) (Some v);
  let rec descend level =
    Runtime.write t.levels.(me) level;
    let below = ref [] in
    for j = 0 to t.n - 1 do
      if Runtime.read t.levels.(j) <= level then below := j :: !below
    done;
    if List.length !below >= level then List.sort compare !below
    else descend (level - 1)
  in
  let members = descend t.n in
  List.map
    (fun j ->
      match Runtime.read t.values.(j) with
      | Some x -> (j, x)
      | None ->
          (* a process at a level has already published its value *)
          assert false)
    members
