lib/snapshot/immediate_snapshot.ml: Array Exsel_sim List Printf
