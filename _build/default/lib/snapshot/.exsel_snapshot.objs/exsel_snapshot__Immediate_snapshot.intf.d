lib/snapshot/immediate_snapshot.mli: Exsel_sim
