lib/snapshot/snapshot.ml: Array Exsel_sim Printf
