lib/snapshot/snapshot.mli: Exsel_sim
