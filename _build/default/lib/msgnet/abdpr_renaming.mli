(** Renaming in asynchronous message passing — where the problem began.

    The stable-vectors renaming of Attiya, Bar-Noy, Dolev, Peleg and
    Reischuk (JACM 1990; the paper's reference [14]): [n] processes with
    original names from an unbounded domain, at most [f < n/2] crashes.
    Each process repeatedly broadcasts the set of original names it has
    heard of and merges incoming sets; when [n − f] processes (itself
    included) have last reported {e exactly} its current set [V], the set
    is {e stable} and the process decides.

    Because any two stable sets are reported by majorities that intersect
    in a process whose reports grow monotonically, stable sets form a
    chain under inclusion; hence the pair [(|V|, rank of own name in V)]
    is unique per decider and we map it to the integer
    [(|V| − (n − f))·n + rank − 1].  This simple mapping yields
    [M = (f + 1)·n] names; the cited paper refines it to the optimal
    [M = n + f], a refinement we do not reproduce (DESIGN.md,
    Substitution 5).  Deciders keep echoing so slower processes also
    stabilise, as the model requires. *)

type message
(** The view-exchange message (a set of original names). *)

val make_net : n:int -> message Mnet.t
(** A network carrying this algorithm's messages. *)

val run :
  net:message Mnet.t ->
  f:int ->
  originals:(int * int) list ->
  rng:Exsel_sim.Rng.t ->
  ?crash_after:(int * int) list ->
  unit ->
  (int * int) list
(** [run ~net ~f ~originals ~rng ()] spawns one process per
    [(slot, original_name)] pair (original names must be distinct and
    non-negative), drives the network with a random adversary — crashing
    slot [s] after the [c]-th global event for each [(s, c)] in
    [crash_after] — and returns the decided [(original_name, new_name)]
    pairs.  With at most [f] crashes every surviving process decides;
    names are exclusive and lie below [(f + 1)·n].
    @raise Invalid_argument unless [0 ≤ f] and [2f < n]. *)

val name_bound : n:int -> f:int -> int
(** The implemented mapping's bound [M = (f+1)·n].  (The cited paper's
    refined mapping achieves [n + f].) *)
