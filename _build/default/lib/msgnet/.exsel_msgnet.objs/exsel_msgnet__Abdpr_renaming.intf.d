lib/msgnet/abdpr_renaming.mli: Exsel_sim Mnet
