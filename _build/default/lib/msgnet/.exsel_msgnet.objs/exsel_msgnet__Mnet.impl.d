lib/msgnet/mnet.ml: Array Effect Exsel_sim Fun List
