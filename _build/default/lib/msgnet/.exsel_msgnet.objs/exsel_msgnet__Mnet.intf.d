lib/msgnet/mnet.mli: Exsel_sim
