lib/msgnet/abdpr_renaming.ml: Array Exsel_sim Int List Mnet Set
