module Rng = Exsel_sim.Rng
module IntSet = Set.Make (Int)

type message = { view : IntSet.t }

let make_net ~n : message Mnet.t = Mnet.create ~n

let name_bound ~n ~f = (f + 1) * n

(* Decide the new name from a stable set: sizes range over
   [n-f .. n] and the rank of the own name within the set over
   [1 .. |V|]; the lexicographic pair maps injectively below (f+1)n. *)
let name_of ~n ~f ~view ~orig =
  let sorted = IntSet.elements view in
  let rank =
    let rec go i = function
      | [] -> invalid_arg "Abdpr: own name missing from stable set"
      | x :: rest -> if x = orig then i else go (i + 1) rest
    in
    go 1 sorted
  in
  ((IntSet.cardinal view - (n - f)) * n) + rank - 1

let body net ~n ~f ~me ~orig ~(decide : int -> unit) () =
  let view = ref (IntSet.singleton orig) in
  (* last set reported by each slot (self included) *)
  let last_report = Array.make n IntSet.empty in
  last_report.(me) <- !view;
  Mnet.broadcast net { view = !view };
  let decided = ref false in
  let check_stability () =
    if not !decided then begin
      let reporters =
        Array.to_list last_report
        |> List.filter (fun r -> IntSet.equal r !view)
        |> List.length
      in
      if reporters >= n - f then begin
        decided := true;
        decide (name_of ~n ~f ~view:!view ~orig)
      end
    end
  in
  check_stability ();
  (* Serve forever: even after deciding, keep merging and echoing so that
     slower processes can stabilise.  The process parks in [receive] once
     the protocol quiesces. *)
  let rec serve () =
    let from, { view = v' } = Mnet.receive net in
    (* channels are unordered, but a sender's reports form a chain, so the
       union reconstructs its latest report even under reordering *)
    last_report.(from) <- IntSet.union last_report.(from) v';
    if not (IntSet.subset v' !view) then begin
      view := IntSet.union !view v';
      last_report.(me) <- !view;
      Mnet.broadcast net { view = !view }
    end;
    check_stability ();
    serve ()
  in
  serve ()

let run ~net ~f ~originals ~rng ?(crash_after = []) () =
  let n = Mnet.n net in
  if f < 0 || 2 * f >= n then invalid_arg "Abdpr.run: need 0 <= f and 2f < n";
  if List.length originals > n then invalid_arg "Abdpr.run: too many processes";
  let distinct l = List.length (List.sort_uniq compare l) = List.length l in
  if not (distinct (List.map snd originals) && distinct (List.map fst originals))
  then invalid_arg "Abdpr.run: slots and original names must be distinct";
  let decisions = ref [] in
  let members =
    List.map
      (fun (slot, orig) ->
        let p =
          Mnet.spawn net ~me:slot
            (body net ~n ~f ~me:slot ~orig ~decide:(fun name ->
                 decisions := (orig, name) :: !decisions))
        in
        (slot, p))
      originals
  in
  (* random adversary with a crash plan counted in global events *)
  let events = ref 0 in
  let plan = ref crash_after in
  let rec drive () =
    let due, later = List.partition (fun (_, c) -> c <= !events) !plan in
    plan := later;
    List.iter
      (fun (slot, _) ->
        match List.assoc_opt slot members with
        | Some p -> Mnet.crash net p
        | None -> ())
      due;
    if Mnet.step_random net rng then begin
      incr events;
      if !events > 10_000_000 then raise Exsel_sim.Runtime.Stalled;
      drive ()
    end
  in
  drive ();
  List.rev !decisions
