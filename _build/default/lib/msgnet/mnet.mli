(** Asynchronous message-passing simulator.

    The model in which renaming was introduced (Attiya, Bar-Noy, Dolev,
    Peleg and Reischuk, JACM 1990 — the paper's reference [14]): [n]
    processes, point-to-point channels with unbounded delays and no order
    guarantees, up to [f] crash failures.  This simulator mirrors
    {!Exsel_sim.Runtime} for the message world: processes are direct-style
    OCaml suspended at every [send]/[receive]; an adversarial scheduler
    decides when sends take effect and which in-flight message a receive
    consumes, so every asynchronous execution is reachable and runs are
    reproducible from a seed.

    Complexity accounting: [sent] and [received] count per-process message
    events (message complexity), the standard measure in this model. *)

type 'm t
(** A network carrying messages of type ['m]. *)

type proc

type status =
  | Running  (** has a pending send awaiting commit *)
  | Waiting  (** blocked in [receive] *)
  | Done
  | Crashed

val create : n:int -> 'm t
(** [n] process slots, empty channels. *)

val n : 'm t -> int

val spawn : 'm t -> me:int -> (unit -> unit) -> proc
(** Install the process for slot [me] (at most one per slot).  Like
    {!Exsel_sim.Runtime.spawn}, the body runs to its first operation. *)

(** {2 Operations inside process bodies} *)

val send : 'm t -> to_:int -> 'm -> unit
(** Asynchronously send; the message enters the channel when the scheduler
    commits the operation. *)

val broadcast : 'm t -> 'm -> unit
(** Send to every slot, including the caller ([n] operations). *)

val receive : 'm t -> int * 'm
(** Block until the scheduler delivers some in-flight message addressed to
    the caller; returns [(sender, message)].  Channels are unordered: any
    in-flight message may arrive. *)

(** {2 Scheduling} *)

val procs : 'm t -> proc list
val pid : proc -> int
val status : proc -> status
val sent : proc -> int
val received : proc -> int

val in_flight : 'm t -> to_:int -> int
(** Number of undelivered messages addressed to a slot. *)

val crash : 'm t -> proc -> unit
(** Crash: the process takes no further events; messages it already sent
    remain in flight (asynchronous network), undelivered messages to it
    are discarded. *)

val step_random : 'm t -> Exsel_sim.Rng.t -> bool
(** Commit one uniformly chosen committable event; [false] if none was
    possible.  Building block for custom drivers (crash schedules etc.). *)

val run_random :
  ?max_events:int -> 'm t -> Exsel_sim.Rng.t -> unit
(** Drive the network to quiescence under a uniformly random adversary:
    at each point pick uniformly among committable events (a pending send
    taking effect, or the delivery of one specific in-flight message).
    Stops when no event is possible — all processes done/crashed, or the
    rest blocked on empty channels.  [max_events] (default 10⁷) guards
    against livelock; exceeding it raises {!Exsel_sim.Runtime.Stalled}. *)

val quiescent : 'm t -> bool
(** No committable event remains. *)
