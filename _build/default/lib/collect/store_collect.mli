(** Store&Collect built on renaming (Theorem 5).

    Each process owns one value slot, acquired through a renaming
    subroutine on its first [store].  Slots are organised in geometric
    intervals of lengths 2, 4, 8, …, each fronted by a boolean control
    register; a first store raises the control bits of every interval up
    to its own, so a collect can scan intervals in order and stop at the
    first unraised control — reading only an O(k)-length prefix.

    The four knowledge settings of Theorem 5 choose the subroutine:
    - (i)   [create_known]: k and N known → PolyLog-Rename(k, N);
    - (ii)  [create_almost] with N = O(n), and
    - (iii) [create_almost] with N = poly(n): k unknown → Almost-Adaptive(N);
    - (iv)  [create_adaptive]: neither known → Adaptive-Rename.

    First store: renaming + slot write + O(log k) control writes.
    Subsequent stores: 1 local step.  Collect: O(k) local steps. *)

type 'v t

val create_known :
  ?params:Exsel_expander.Params.t ->
  rng:Exsel_sim.Rng.t ->
  Exsel_sim.Memory.t ->
  name:string ->
  k:int ->
  inputs:int ->
  'v t
(** Setting (i).  Stores must come from at most [k] processes whose
    identifiers lie in [0 .. inputs−1]. *)

val create_almost :
  ?params:Exsel_expander.Params.t ->
  rng:Exsel_sim.Rng.t ->
  Exsel_sim.Memory.t ->
  name:string ->
  n:int ->
  inputs:int ->
  'v t
(** Settings (ii)/(iii).  Identifiers in [0 .. inputs−1]; any contention
    up to [n]. *)

val create_adaptive :
  ?params:Exsel_expander.Params.t ->
  rng:Exsel_sim.Rng.t ->
  Exsel_sim.Memory.t ->
  name:string ->
  n:int ->
  'v t
(** Setting (iv).  Identifiers arbitrary; any contention up to [n]. *)

val store : 'v t -> me:int -> 'v -> unit
(** Propose a value; it replaces the process's previous proposal.  Must be
    called from inside a runtime process. *)

val collect : 'v t -> (int * 'v) list
(** All proposals visible so far, as [(identifier, value)] pairs, one per
    storing process, ordered by slot.  Must be called from inside a
    runtime process. *)

val slots : 'v t -> int
(** Slot-space size (the renaming bound [M]); intervals and controls are
    sized from it. *)

val slot_of : 'v t -> me:int -> int option
(** The slot a process acquired, if it stored already (test inspection). *)

val registers : 'v t -> int
(** Registers used by slots and controls (excluding the renaming
    subroutine's own registers, which the shared memory also counts). *)
