module Memory = Exsel_sim.Memory
module Register = Exsel_sim.Register
module Runtime = Exsel_sim.Runtime
module R = Exsel_renaming

type rename_engine =
  | Known of R.Polylog_rename.t * R.Moir_anderson.t  (* polylog + reserve *)
  | Almost of R.Almost_adaptive.t
  | Adaptive of R.Adaptive_rename.t

type 'v t = {
  engine : rename_engine;
  slots : (int * 'v) option Register.t array;
  controls : bool Register.t array;  (* controls.(j) fronts interval j *)
  acquired : (int, int) Hashtbl.t;  (* process identifier -> slot *)
  slot_registers : int;
}

(* Interval j covers slots [2^{j+1}-2, 2^{j+2}-3] (lengths 2, 4, 8, ...). *)
let interval_start j = (1 lsl (j + 1)) - 2

let interval_of_slot s =
  let rec go j = if s < interval_start (j + 1) then j else go (j + 1) in
  go 0

let intervals_for m =
  let rec go j = if interval_start j >= m then j else go (j + 1) in
  go 1

let make mem ~name ~engine ~slot_count =
  let slots =
    Array.init slot_count (fun s ->
        Register.create mem ~name:(Printf.sprintf "%s.slot%d" name s) None)
  in
  let controls =
    Array.init (intervals_for slot_count) (fun j ->
        Register.create mem ~name:(Printf.sprintf "%s.ctl%d" name j) false)
  in
  {
    engine;
    slots;
    controls;
    acquired = Hashtbl.create 16;
    slot_registers = slot_count + Array.length controls;
  }

let create_known ?params ~rng mem ~name ~k ~inputs =
  let polylog =
    R.Polylog_rename.create ?params ~rng mem ~name:(name ^ ".plog") ~k ~inputs
  in
  let reserve = R.Moir_anderson.create mem ~name:(name ^ ".reserve") ~side:k in
  let slot_count =
    R.Polylog_rename.names polylog + R.Moir_anderson.capacity reserve
  in
  make mem ~name ~engine:(Known (polylog, reserve)) ~slot_count

let create_almost ?params ~rng mem ~name ~n ~inputs =
  let engine = R.Almost_adaptive.create ?params ~rng mem ~name:(name ^ ".aa") ~n ~inputs in
  (* slots cover every name the engine can assign: all doubling levels plus
     the reserve grid's n(n+1)/2 names *)
  let slot_count =
    R.Almost_adaptive.name_bound_for_contention engine ~k:n + (n * (n + 1) / 2)
  in
  make mem ~name ~engine:(Almost engine) ~slot_count

let create_adaptive ?params ~rng mem ~name ~n =
  let engine = R.Adaptive_rename.create ?params ~rng mem ~name:(name ^ ".ad") ~n in
  let slot_count =
    R.Adaptive_rename.name_bound_for_contention ~k:n + (n * (n + 1) / 2)
  in
  make mem ~name ~engine:(Adaptive engine) ~slot_count

let acquire_slot t ~me =
  match t.engine with
  | Known (polylog, reserve) -> (
      match R.Polylog_rename.rename polylog ~me with
      | Some s -> s
      | None -> (
          match R.Moir_anderson.rename reserve ~me with
          | Some w -> R.Polylog_rename.names polylog + w
          | None ->
              (* unreachable under the setting's contract (contention <= k) *)
              assert false))
  | Almost engine -> R.Almost_adaptive.rename engine ~me
  | Adaptive engine -> R.Adaptive_rename.rename engine ~me

let store t ~me v =
  match Hashtbl.find_opt t.acquired me with
  | Some slot -> Runtime.write t.slots.(slot) (Some (me, v))
  | None ->
      let slot = acquire_slot t ~me in
      assert (slot >= 0 && slot < Array.length t.slots);
      Hashtbl.replace t.acquired me slot;
      Runtime.write t.slots.(slot) (Some (me, v));
      (* raise the controls of every interval up to ours so collectors
         reach the slot; value first, so a raised control implies the
         completed store is visible *)
      for j = 0 to interval_of_slot slot do
        Runtime.write t.controls.(j) true
      done

let collect t =
  let out = ref [] in
  let m = Array.length t.slots in
  let rec scan_interval j =
    if j < Array.length t.controls && Runtime.read t.controls.(j) then begin
      let lo = interval_start j and hi = min (m - 1) (interval_start (j + 1) - 1) in
      for s = lo to hi do
        match Runtime.read t.slots.(s) with
        | Some (owner, v) -> out := (owner, v) :: !out
        | None -> ()
      done;
      scan_interval (j + 1)
    end
  in
  scan_interval 0;
  List.rev !out

let slots t = Array.length t.slots
let slot_of t ~me = Hashtbl.find_opt t.acquired me
let registers t = t.slot_registers
