lib/collect/store_collect.ml: Array Exsel_renaming Exsel_sim Hashtbl List Printf
