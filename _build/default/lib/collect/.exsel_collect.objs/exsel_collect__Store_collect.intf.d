lib/collect/store_collect.mli: Exsel_expander Exsel_sim
