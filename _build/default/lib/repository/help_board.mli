(** The n×n Help matrix of Altruistic-Deposit (Theorem 9).

    [Help.(p).(q)] is written by provider [p] with a freshly committed
    name destined for consumer [q], and cleared by [q] after use.  Each
    process runs two concurrent activities: a {e provider} loop that fills
    the null cells of its row with names it acquires, and a {e consumer}
    that scans its column until a name appears.  Consumption is wait-free
    as long as acquisitions keep completing somewhere in the system —
    which the non-blocking {!Unbounded_naming} engine guarantees. *)

type t

val create : Exsel_sim.Memory.t -> name:string -> n:int -> t
(** Allocates the n² cell registers, all null. *)

val n : t -> int

val provider_loop :
  t -> naming:Unbounded_naming.t -> me:int -> stop:(unit -> bool) -> unit
(** Cycle over row [me]: whenever a cell is null, acquire a name and write
    it there.  Returns when [stop ()] becomes true (checked between
    operations).  Must run inside a runtime process. *)

val peek_name : t -> me:int -> int * int
(** Scan column [me] cyclically until a cell holds a name; return
    [(row, name)] without clearing, so the caller can use the name first
    and {!clear} afterwards (the paper's crash-safe order: a crash in
    between wastes nothing).  Must run inside a runtime process.  Only
    process [me] may consume from column [me]. *)

val clear : t -> row:int -> me:int -> unit
(** Null the cell after its name has been used. *)

val cells : t -> int option array array
(** Current matrix contents — test inspection, non-atomic. *)

val stranded : t -> alive:(int -> bool) -> int list
(** Names currently sitting in cells whose consumer column belongs to a
    non-[alive] process — the waste of Theorem 9's worst case. *)
