module Memory = Exsel_sim.Memory
module Register = Exsel_sim.Register
module Runtime = Exsel_sim.Runtime

type t = {
  n : int;
  cells : int option Register.t array array;  (* cells.(p).(q): p -> q *)
}

let create mem ~name ~n =
  if n <= 0 then invalid_arg "Help_board.create: n must be positive";
  {
    n;
    cells =
      Array.init n (fun p ->
          Array.init n (fun q ->
              Register.create mem ~name:(Printf.sprintf "%s[%d,%d]" name p q) None));
  }

let n t = t.n

let provider_loop t ~naming ~me ~stop =
  let q = ref 0 in
  while not (stop ()) do
    (match Runtime.read t.cells.(me).(!q) with
    | None ->
        let x = Unbounded_naming.acquire naming ~me in
        Runtime.write t.cells.(me).(!q) (Some x)
    | Some _ -> ());
    q := (!q + 1) mod t.n
  done

let peek_name t ~me =
  let rec scan r =
    match Runtime.read t.cells.(r).(me) with
    | Some x -> (r, x)
    | None -> scan ((r + 1) mod t.n)
  in
  scan 0

let clear t ~row ~me = Runtime.write t.cells.(row).(me) None

let cells t = Array.map (Array.map Register.peek) t.cells

let stranded t ~alive =
  let out = ref [] in
  for p = 0 to t.n - 1 do
    for q = 0 to t.n - 1 do
      if not (alive q) then
        match Register.peek t.cells.(p).(q) with
        | Some x -> out := x :: !out
        | None -> ()
    done
  done;
  List.sort compare !out
