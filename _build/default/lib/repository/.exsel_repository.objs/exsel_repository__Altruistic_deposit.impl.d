lib/repository/altruistic_deposit.ml: Array Deposit_array Exsel_sim Fun Help_board List Printf Unbounded_naming
