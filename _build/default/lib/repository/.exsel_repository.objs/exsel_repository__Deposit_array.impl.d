lib/repository/deposit_array.ml: Array Exsel_sim List Printf
