lib/repository/unbounded_naming.mli: Exsel_sim
