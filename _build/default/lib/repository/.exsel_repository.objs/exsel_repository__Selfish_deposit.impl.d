lib/repository/selfish_deposit.ml: Array Deposit_array Exsel_sim Exsel_snapshot Fun List
