lib/repository/help_board.mli: Exsel_sim Unbounded_naming
