lib/repository/unbounded_naming.ml: Array Exsel_sim Exsel_snapshot Fun List Printf
