lib/repository/help_board.ml: Array Exsel_sim List Printf Unbounded_naming
