lib/repository/deposit_array.mli: Exsel_sim
