lib/repository/selfish_deposit.mli: Deposit_array Exsel_sim
