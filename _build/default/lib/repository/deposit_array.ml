module Memory = Exsel_sim.Memory
module Register = Exsel_sim.Register

type 'v t = {
  mem : Memory.t;
  name : string;
  mutable regs : 'v option Register.t option array;  (* capacity buffer *)
  mutable allocated : int;  (* contiguous created prefix *)
}

let create mem ~name = { mem; name; regs = Array.make 16 None; allocated = 0 }

(* Touching R_i creates the whole prefix up to i — accesses in the
   protocols are prefix-contiguous anyway (lists and pointers scan in index
   order), and a contiguous prefix keeps the waste accounting simple. *)
let ensure t i =
  if i >= Array.length t.regs then begin
    let cap = max (i + 1) (2 * Array.length t.regs) in
    let fresh = Array.make cap None in
    Array.blit t.regs 0 fresh 0 (Array.length t.regs);
    t.regs <- fresh
  end;
  for j = t.allocated to i do
    t.regs.(j) <-
      Some (Register.create t.mem ~name:(Printf.sprintf "%s.R%d" t.name j) None)
  done;
  if i >= t.allocated then t.allocated <- i + 1

let get t i =
  if i < 0 then invalid_arg "Deposit_array.get: negative index";
  ensure t i;
  match t.regs.(i) with
  | Some r -> r
  | None -> assert false (* ensured above *)

let allocated t = t.allocated

let reg t i = match t.regs.(i) with Some r -> r | None -> assert false

let value t i = if i < t.allocated then Register.peek (reg t i) else None

let deposited t =
  let out = ref [] in
  for i = t.allocated - 1 downto 0 do
    match Register.peek (reg t i) with
    | Some v -> out := (i, v) :: !out
    | None -> ()
  done;
  !out

let empty_below t bound =
  let out = ref [] in
  for i = min bound t.allocated - 1 downto 0 do
    if Register.peek (reg t i) = None then out := i :: !out
  done;
  let beyond = ref [] in
  for i = t.allocated to bound - 1 do
    beyond := i :: !beyond
  done;
  !out @ List.rev !beyond
