module Memory = Exsel_sim.Memory
module Register = Exsel_sim.Register
module Runtime = Exsel_sim.Runtime
module Snapshot = Exsel_snapshot.Snapshot

type local = {
  mutable list : int list;  (* sorted candidate register indices *)
  mutable pointer : int;  (* next index to probe when replenishing *)
}

type 'v t = {
  n : int;
  regs : 'v Deposit_array.t;
  w : int option Snapshot.t;
  locals : local array;
}

let list_len n = (2 * n) - 1

let create mem ~name ~n =
  if n <= 0 then invalid_arg "Selfish_deposit.create: n must be positive";
  {
    n;
    regs = Deposit_array.create mem ~name:(name ^ ".R");
    w = Snapshot.create mem ~name:(name ^ ".W") ~n ~init:None;
    locals =
      Array.init n (fun _ ->
          { list = List.init (list_len n) Fun.id; pointer = list_len n });
  }

let n t = t.n

let is_empty t i = Runtime.read (Deposit_array.get t.regs i) = None

(* Scan forward from the pointer for the next empty register; append it to
   the (sorted) list — fresh indices always exceed existing entries. *)
let replenish t local =
  let rec find a = if is_empty t a then a else find (a + 1) in
  let k = find local.pointer in
  local.list <- local.list @ [ k ];
  local.pointer <- k + 1

let remove_candidate local x = local.list <- List.filter (fun j -> j <> x) local.list

(* The paper's list verification: drop candidates whose register filled up,
   replenishing each from the pointer scan. *)
let verify t ~me =
  let local = t.locals.(me) in
  List.iter
    (fun j ->
      if not (is_empty t j) then begin
        remove_candidate local j;
        replenish t local
      end)
    local.list

let choose_by_rank t ~me local view =
  let on_list v = List.mem v local.list in
  let holders =
    List.filter_map
      (fun q -> match view.(q) with Some v when on_list v -> Some q | Some _ | None -> None)
      (List.init t.n Fun.id)
  in
  let rank = 1 + List.length (List.filter (fun q -> q < me) holders) in
  let proposed =
    Array.to_list view |> List.filter_map Fun.id |> List.sort_uniq compare
  in
  let candidates = List.filter (fun v -> not (List.mem v proposed)) local.list in
  match List.nth_opt candidates (rank - 1) with
  | Some x -> x
  | None -> (
      match List.rev candidates with
      | x :: _ -> x
      | [] -> invalid_arg "Selfish_deposit: exhausted candidate list")

let deposit t ~me v =
  if me < 0 || me >= t.n then invalid_arg "Selfish_deposit.deposit: bad slot";
  let local = t.locals.(me) in
  let rec attempt proposal =
    Snapshot.update t.w ~me (Some proposal);
    let view = Snapshot.scan t.w ~me in
    let unique =
      not
        (List.exists
           (fun q -> q <> me && view.(q) = Some proposal)
           (List.init t.n Fun.id))
    in
    if not unique then attempt (choose_by_rank t ~me local view)
    else if is_empty t proposal then begin
      Runtime.write (Deposit_array.get t.regs proposal) (Some v);
      remove_candidate local proposal;
      replenish t local;
      proposal
    end
    else begin
      verify t ~me;
      attempt (List.hd local.list)
    end
  in
  attempt (List.hd local.list)

let registers t = t.regs
let deposits t = Deposit_array.deposited t.regs
let candidate_lists t = Array.map (fun l -> l.list) t.locals

let pinned t ~alive =
  let held = Snapshot.peek t.w in
  let out = ref [] in
  Array.iteri
    (fun q v ->
      match v with
      | Some i when (not (alive q)) && Deposit_array.value t.regs i = None ->
          out := i :: !out
      | Some _ | None -> ())
    held;
  List.sort compare !out
