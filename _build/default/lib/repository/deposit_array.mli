(** The paper's infinite array R₀, R₁, R₂, … of dedicated deposit registers.

    Section 5 assumes infinitely many read/write registers dedicated to
    depositing, all initialised to [null].  We simulate the infinite array
    by allocating registers on first touch; an execution only ever reaches
    a finite prefix, which is the prefix the theorems' waste bounds
    quantify over. *)

type 'v t

val create : Exsel_sim.Memory.t -> name:string -> 'v t

val get : 'v t -> int -> 'v option Exsel_sim.Register.t
(** [get t i] is register Rᵢ (0-based), allocating the prefix up to [i] on
    demand.  Allocation is a bookkeeping action of the simulation, not a
    step of any process. *)

val allocated : 'v t -> int
(** Size of the touched prefix. *)

val value : 'v t -> int -> 'v option
(** Current content of Rᵢ ([None] if empty or beyond the prefix) — test
    inspection, non-atomic. *)

val deposited : 'v t -> (int * 'v) list
(** All non-empty registers in the touched prefix, in index order — test
    inspection, non-atomic. *)

val empty_below : 'v t -> int -> int list
(** Indices of empty registers strictly below the given bound — the waste
    measure of Theorems 8 and 9. *)
