module Memory = Exsel_sim.Memory
module Runtime = Exsel_sim.Runtime

type 'v t = {
  n : int;
  naming : Unbounded_naming.t;
  board : Help_board.t;
  regs : 'v Deposit_array.t;
}

let create mem ~name ~n =
  {
    n;
    naming = Unbounded_naming.create mem ~name:(name ^ ".naming") ~n;
    board = Help_board.create mem ~name:(name ^ ".help") ~n;
    regs = Deposit_array.create mem ~name:(name ^ ".R");
  }

let n t = t.n

let deposit t ~me v =
  let row, x = Help_board.peek_name t.board ~me in
  Runtime.write (Deposit_array.get t.regs x) (Some v);
  Help_board.clear t.board ~row ~me;
  x

let provider_loop t ~me ~stop =
  Help_board.provider_loop t.board ~naming:t.naming ~me ~stop

let spawn_all rt t ~values ~on_deposit =
  let finished = Array.make t.n false in
  let depositors =
    Array.init t.n (fun me ->
        Runtime.spawn rt ~name:(Printf.sprintf "depositor%d" me) (fun () ->
            List.iter
              (fun v ->
                let index = deposit t ~me v in
                on_deposit ~me ~index ~value:v)
              (values me);
            finished.(me) <- true))
  in
  let all_settled () =
    Array.for_all Fun.id
      (Array.mapi
         (fun i p -> finished.(i) || Runtime.status p = Runtime.Crashed)
         depositors)
  in
  Array.iteri
    (fun me _ ->
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "provider%d" me) (fun () ->
             provider_loop t ~me ~stop:all_settled)))
    depositors

let naming t = t.naming
let board t = t.board
let registers t = t.regs
let deposits t = Deposit_array.deposited t.regs
