(** Altruistic-Deposit: a wait-free repository (Theorem 9).

    Extends the naming machinery with an n×n {!Help_board}: every process
    runs a {e provider} activity that fills the null cells of its Help row
    with names freshly committed through {!Unbounded_naming}, and deposits
    by {e consuming} a name from its Help column — writing its value into
    the corresponding dedicated register and clearing the cell.  A name
    committed by the naming engine is exclusive, so the register it
    denotes is written exactly once: persistence is structural.

    Depositing is wait-free: the consumer only scans its own column, and
    the non-blocking naming engine keeps providers (collectively)
    producing names.  At most n(n−1) dedicated registers are never used:
    the worst case leaves a full Help matrix minus one column stranded by
    crashes.

    The two activities of a process are modelled as two runtime fibers
    (the paper interleaves their events fairly); {!spawn_all} wires them
    up. *)

type 'v t

val create : Exsel_sim.Memory.t -> name:string -> n:int -> 'v t

val n : 'v t -> int

val deposit : 'v t -> me:int -> 'v -> int
(** Consume a name from column [me], deposit the value in its register and
    return the register index.  Wait-free given ongoing provision.  Must
    run inside a runtime process. *)

val provider_loop : 'v t -> me:int -> stop:(unit -> bool) -> unit
(** Run the provider activity of process [me] until [stop ()].  Must run
    inside a runtime process (normally a dedicated fiber). *)

val spawn_all :
  Exsel_sim.Runtime.t ->
  'v t ->
  values:(int -> 'v list) ->
  on_deposit:(me:int -> index:int -> value:'v -> unit) ->
  unit
(** Spawn, for every process [p], a depositor fiber that deposits
    [values p] in order (invoking [on_deposit] after each acknowledged
    deposit) and a provider fiber that serves names until every depositor
    has finished or crashed. *)

val naming : 'v t -> Unbounded_naming.t
val board : 'v t -> Help_board.t
val registers : 'v t -> 'v Deposit_array.t
val deposits : 'v t -> (int * 'v) list
