(** Selfish-Deposit: a non-blocking repository (Theorem 8, Corollary 2).

    Each process keeps a sorted local list [L_p] of 2n−1 indices of deposit
    registers it believes empty, plus a scan pointer [A_p].  To deposit it
    proposes the smallest candidate through the snapshot object [W]; while
    the proposal collides it re-proposes by rank; once its proposal [i] is
    unique it double-checks that Rᵢ is still empty and then deposits —
    the value is never overwritten because any later claimant of [i] either
    sees it held in [W] or finds Rᵢ non-empty.  If Rᵢ turned out full the
    process {e verifies} its list (drops filled registers, replenishing
    each from the scan pointer) and retries.

    Non-blocking; at most n−1 dedicated registers are never used for
    deposits (one per crashed process pinning its held index), which
    Corollary 2 proves optimal. *)

type 'v t

val create : Exsel_sim.Memory.t -> name:string -> n:int -> 'v t

val n : 'v t -> int

val deposit : 'v t -> me:int -> 'v -> int
(** Deposit a value; returns the index of the register it now occupies
    forever.  Must run inside a runtime process; a process must not
    interleave two of its own deposits (the paper's no-pipelining rule). *)

val registers : 'v t -> 'v Deposit_array.t
(** The dedicated deposit array (for inspection and waste accounting). *)

val deposits : 'v t -> (int * 'v) list
(** All deposits visible now, in index order — test inspection. *)

val candidate_lists : 'v t -> int list array
(** Current local lists [L_p] — test inspection. *)

val pinned : 'v t -> alive:(int -> bool) -> int list
(** Indices currently held in [W] by non-[alive] processes and still
    empty — the registers a crash has pinned forever (Theorem 8's waste). *)
