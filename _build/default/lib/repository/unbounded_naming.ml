module Memory = Exsel_sim.Memory
module Register = Exsel_sim.Register
module Runtime = Exsel_sim.Runtime
module Snapshot = Exsel_snapshot.Snapshot

type suite = {
  entries : int Register.t array;  (* the 2n-1 published candidates *)
  frontier : int Register.t;  (* published A_p *)
}

type local = {
  values : int array;  (* mirror of the published candidate multiset *)
  mutable pointer : int;  (* mirror of A_p *)
}

type t = {
  n : int;
  w : int option Snapshot.t;
  suites : suite array;
  locals : local array;
  mutable committed : (int * int) list;  (* (name, owner), newest first *)
}

let list_len n = (2 * n) - 1

let create mem ~name ~n =
  if n <= 0 then invalid_arg "Unbounded_naming.create: n must be positive";
  let len = list_len n in
  let suites =
    Array.init n (fun p ->
        {
          entries =
            Array.init len (fun i ->
                Register.create mem ~name:(Printf.sprintf "%s.B%d[%d]" name p i) i);
          frontier = Register.create mem ~name:(Printf.sprintf "%s.A%d" name p) len;
        })
  in
  let locals =
    Array.init n (fun _ -> { values = Array.init len (fun i -> i); pointer = len })
  in
  {
    n;
    w = Snapshot.create mem ~name:(name ^ ".W") ~n ~init:None;
    suites;
    locals;
    committed = [];
  }

let n t = t.n

let min_value values =
  Array.fold_left min values.(0) values

(* Replace candidate [x] in [me]'s list by a fresh frontier integer, and
   publish the change: the entry slot is written before the frontier so a
   concurrent reader never sees the fresh integer as unavailable. *)
let replace_candidate t ~me x =
  let local = t.locals.(me) in
  let suite = t.suites.(me) in
  let idx =
    let rec find i =
      if i >= Array.length local.values then
        invalid_arg "Unbounded_naming: candidate not in list"
      else if local.values.(i) = x then i
      else find (i + 1)
    in
    find 0
  in
  let fresh = local.pointer in
  local.values.(idx) <- fresh;
  local.pointer <- fresh + 1;
  Runtime.write suite.entries.(idx) fresh;
  Runtime.write suite.frontier local.pointer

(* Does process [q] (per its published B registers) still believe [x] is
   available?  Available-according-to-q means x is on q's list or at least
   as large as q's frontier. *)
let available_per t ~q x =
  let suite = t.suites.(q) in
  let rec in_entries i =
    i < Array.length suite.entries
    && (Runtime.read suite.entries.(i) = x || in_entries (i + 1))
  in
  if in_entries 0 then true else x >= Runtime.read suite.frontier

let available_to_all t ~me x =
  let rec go q =
    q >= t.n || ((q = me || available_per t ~q x) && go (q + 1))
  in
  go 0

(* Choose by rank: with k = rank of me among processes whose proposal is on
   my list, pick the k-th smallest of my candidates that appear in nobody's
   proposal. *)
let choose_by_rank t ~me view =
  let local = t.locals.(me) in
  let on_list v = Array.exists (fun e -> e = v) local.values in
  let holders =
    List.filter_map
      (fun q -> match view.(q) with Some v when on_list v -> Some q | Some _ | None -> None)
      (List.init t.n Fun.id)
  in
  let rank = 1 + List.length (List.filter (fun q -> q < me) holders) in
  let proposed =
    Array.to_list view |> List.filter_map Fun.id |> List.sort_uniq compare
  in
  let candidates =
    Array.to_list local.values
    |> List.filter (fun v -> not (List.mem v proposed))
    |> List.sort compare
  in
  match List.nth_opt candidates (rank - 1) with
  | Some x -> x
  | None -> (
      (* cannot happen with 2n-1 candidates and a duplicated proposal in
         the view (at most n-1 distinct proposals); keep a defensive
         fallback on the largest free candidate *)
      match List.rev candidates with
      | x :: _ -> x
      | [] -> invalid_arg "Unbounded_naming: exhausted candidate list")

let acquire t ~me =
  if me < 0 || me >= t.n then invalid_arg "Unbounded_naming.acquire: bad slot";
  let local = t.locals.(me) in
  let rec attempt proposal =
    Snapshot.update t.w ~me (Some proposal);
    let view = Snapshot.scan t.w ~me in
    let unique =
      not
        (List.exists
           (fun q -> q <> me && view.(q) = Some proposal)
           (List.init t.n Fun.id))
    in
    if not unique then attempt (choose_by_rank t ~me view)
    else if available_to_all t ~me proposal then begin
      (* commit: publish unavailability before the proposal can be
         released from W by a later update *)
      replace_candidate t ~me proposal;
      t.committed <- (proposal, me) :: t.committed;
      proposal
    end
    else begin
      (* someone committed to it earlier: drop it and retry *)
      replace_candidate t ~me proposal;
      attempt (min_value local.values)
    end
  in
  attempt (min_value local.values)

let committed t = List.rev t.committed
let committed_names t = List.sort compare (List.map fst t.committed)
let holder_view t = Snapshot.peek t.w
