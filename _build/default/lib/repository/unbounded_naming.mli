(** Exclusive acquisition of unbounded integer names (Theorem 10).

    Each process keeps a local candidate list [L_p] of 2n−1 integers and a
    frontier pointer [A_p], mirrored in shared registers [B_p] (2n
    registers per process).  To acquire, a process proposes candidates
    through an atomic-snapshot object [W]: it re-proposes by rank while its
    proposal collides, and once its proposal [i] is unique in a snapshot it
    checks every [B_q] to confirm that all processes still believe [i] is
    available (i.e. [i ∈ L_q] or [i ≥ A_q]); if so it {e commits} to [i],
    removes [i] from its list, replenishes from its frontier and publishes
    the change in [B_p] {e before} releasing [i] in [W].

    Exclusiveness: committing requires holding [i] uniquely in [W], and a
    process that already released [i] has published its unavailability
    first, so a later claimant's availability check fails.

    Progress: non-blocking.  A crashed process can pin forever at most the
    one integer it holds in [W], hence at most n−1 integers are never
    assigned — which Corollary 2 shows is optimal.  The wait-free variant
    of Theorem 10 is obtained by serving names through a {!Help_board}. *)

type t

val create : Exsel_sim.Memory.t -> name:string -> n:int -> t
(** [n] processes, slots [0 .. n−1].  Allocates the snapshot object and
    the [n·2n] registers of the [B] suites. *)

val n : t -> int

val acquire : t -> me:int -> int
(** Commit to a fresh integer, exclusively.  Non-blocking: may loop while
    other processes acquire, but some acquisition always completes.  Must
    run inside a runtime process; a process must not interleave two of its
    own acquisitions. *)

val committed : t -> (int * int) list
(** All [(name, owner)] commitments so far, in commitment order — test
    inspection. *)

val committed_names : t -> int list
(** Names only, sorted — test inspection. *)

val holder_view : t -> int option array
(** Current proposals in [W] — test inspection, non-atomic. *)
