type t = {
  mutable next_id : int;
  mutable reads : int;
  mutable writes : int;
}

let create () = { next_id = 0; reads = 0; writes = 0 }

let registers t = t.next_id
let reads t = t.reads
let writes t = t.writes

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let note_read t = t.reads <- t.reads + 1
let note_write t = t.writes <- t.writes + 1
