type choice = Step of int | Crash of int

type reduction = [ `None | `Sleep_sets ]

type outcome = {
  paths : int;
  states : int;
  truncated : bool;
  failure : (string * choice list) option;
}

exception Done of outcome

let pp_choice ppf = function
  | Step pid -> Format.fprintf ppf "step p%d" pid
  | Crash pid -> Format.fprintf ppf "crash p%d" pid

let independent op1 op2 =
  match (op1, op2) with
  | Runtime.Read _, Runtime.Read _ -> true
  | Runtime.Read r, Runtime.Write w | Runtime.Write w, Runtime.Read r -> r <> w
  | Runtime.Write a, Runtime.Write b -> a <> b

let proc_by_pid rt pid =
  match List.find_opt (fun p -> Runtime.pid p = pid) (Runtime.procs rt) with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Explore: no process with pid %d" pid)

let apply rt = function
  | Step pid -> Runtime.commit rt (proc_by_pid rt pid)
  | Crash pid -> Runtime.crash rt (proc_by_pid rt pid)

let replay rt choices = List.iter (apply rt) choices

let run ?(max_crashes = 0) ?(max_paths = 1_000_000) ?(reduction = `None) ~init ~check
    () =
  if reduction = `Sleep_sets && max_crashes > 0 then
    invalid_arg "Explore.run: sleep-set reduction requires max_crashes = 0";
  let paths = ref 0 in
  let states = ref 0 in
  let finish_path ctx rt prefix =
    incr paths;
    (match check ctx rt with
    | Ok () -> ()
    | Error msg ->
        raise
          (Done
             { paths = !paths; states = !states; truncated = false; failure = Some (msg, prefix) }));
    if !paths >= max_paths then
      raise (Done { paths = !paths; states = !states; truncated = true; failure = None })
  in
  (* Depth-first over choice sequences; each node re-instantiates and
     replays its prefix, so state reconstruction is exact and memory use
     stays flat.  [sleep] holds (pid, pending op) pairs whose immediate
     exploration from this node is provably redundant: executing a
     sleeping operation first only commutes independent neighbours of an
     already-explored branch.  A sleeping process wakes (drops out of the
     set) as soon as a dependent operation executes. *)
  let rec explore prefix sleep =
    let ctx, rt = init () in
    replay rt prefix;
    match Runtime.runnable rt with
    | [] -> finish_path ctx rt prefix
    | runnable ->
        let enabled =
          List.map
            (fun p ->
              match Runtime.pending p with
              | Some op -> (Runtime.pid p, op)
              | None -> assert false (* runnable implies pending *))
            runnable
        in
        let candidates =
          List.filter (fun (pid, _) -> not (List.mem_assoc pid sleep)) enabled
        in
        (* all enabled moves sleeping: this branch is covered elsewhere *)
        if candidates <> [] then begin
          let explored = ref [] in
          List.iter
            (fun (pid, op) ->
              incr states;
              let child_sleep =
                List.filter (fun (_, op') -> independent op op') (sleep @ !explored)
              in
              explore (prefix @ [ Step pid ]) child_sleep;
              explored := (pid, op) :: !explored)
            candidates
        end
  in
  try
    (if reduction = `Sleep_sets then explore [] []
     else
       (* unreduced engine: every enabled step, plus crash decisions *)
       let rec explore_full prefix crashes =
         let ctx, rt = init () in
         replay rt prefix;
         match Runtime.runnable rt with
         | [] -> finish_path ctx rt prefix
         | runnable ->
             let pids = List.map Runtime.pid runnable in
             List.iter
               (fun pid ->
                 incr states;
                 explore_full (prefix @ [ Step pid ]) crashes)
               pids;
             if crashes < max_crashes then
               List.iter
                 (fun pid ->
                   incr states;
                   explore_full (prefix @ [ Crash pid ]) (crashes + 1))
                 pids
       in
       explore_full [] 0);
    { paths = !paths; states = !states; truncated = false; failure = None }
  with Done o -> o
