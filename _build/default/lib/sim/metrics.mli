(** Execution summaries.

    A {!summary} captures the complexity measures the paper reports:
    worst-case local steps over processes, the number of shared registers
    used, and outcome counts. *)

type summary = {
  processes : int;
  completed : int;
  crashed : int;
  max_steps : int;  (** worst-case local steps (the paper's time measure) *)
  total_steps : int;
  registers : int;  (** the paper's register count [r] *)
  reads : int;
  writes : int;
}

val of_runtime : Runtime.t -> summary
(** Snapshot the measures of an execution. *)

val pp : Format.formatter -> summary -> unit
(** Human-readable one-line rendering. *)
