type event = {
  index : int;
  pid : int;
  proc_name : string;
  op : Runtime.op_kind;
  step : int;
}

type t = { mutable events_rev : event list; mutable count : int }

let attach rt =
  let t = { events_rev = []; count = 0 } in
  Runtime.on_commit rt (fun p op ->
      let e =
        {
          index = t.count;
          pid = Runtime.pid p;
          proc_name = Runtime.proc_name p;
          op;
          step = Runtime.steps p;
        }
      in
      t.events_rev <- e :: t.events_rev;
      t.count <- t.count + 1);
  t

let events t = List.rev t.events_rev
let length t = t.count

let by_process t pid = List.filter (fun e -> e.pid = pid) (events t)

let writes_to t reg_id =
  List.filter
    (fun e -> match e.op with Runtime.Write r -> r = reg_id | Runtime.Read _ -> false)
    (events t)

let pp_event ppf e =
  let kind, reg =
    match e.op with Runtime.Read r -> ("read", r) | Runtime.Write r -> ("write", r)
  in
  Format.fprintf ppf "#%d %s(p%d) %s reg%d (local step %d)" e.index e.proc_name
    e.pid kind reg e.step

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)
