type policy = Runtime.t -> Runtime.proc option

let round_robin () =
  let last = ref (-1) in
  fun t ->
    match Runtime.runnable t with
    | [] -> None
    | rs ->
        let after =
          List.filter (fun p -> Runtime.pid p > !last) rs
        in
        let p = match after with p :: _ -> p | [] -> List.hd rs in
        last := Runtime.pid p;
        Some p

let random rng t =
  match Runtime.runnable t with
  | [] -> None
  | rs -> Some (List.nth rs (Rng.int rng (List.length rs)))

let sequential () t =
  match Runtime.runnable t with [] -> None | p :: _ -> Some p

let with_crashes ~crash_at inner =
  let plan = ref crash_at in
  fun t ->
    let now = Runtime.commits t in
    let due, later = List.partition (fun (c, _) -> c <= now) !plan in
    plan := later;
    List.iter
      (fun (_, pid) ->
        match List.find_opt (fun p -> Runtime.pid p = pid) (Runtime.procs t) with
        | Some p -> Runtime.crash t p
        | None -> ())
      due;
    inner t

let random_crashes rng ~victims ~prob inner t =
  List.iter
    (fun p ->
      if
        Runtime.status p = Runtime.Runnable
        && List.mem (Runtime.pid p) victims
        && Rng.float rng < prob
      then Runtime.crash t p)
    (Runtime.procs t);
  inner t

let run ?max_commits t policy = Runtime.run ?max_commits t policy

let run_for t ~commits policy =
  try Runtime.run ~max_commits:commits t policy with Runtime.Stalled -> ()
