lib/sim/metrics.mli: Format Runtime
