lib/sim/trace.mli: Format Runtime
