lib/sim/register.mli: Memory
