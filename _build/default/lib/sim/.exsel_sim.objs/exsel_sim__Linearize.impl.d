lib/sim/linearize.ml: List
