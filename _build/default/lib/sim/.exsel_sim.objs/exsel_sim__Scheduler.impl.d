lib/sim/scheduler.ml: List Rng Runtime
