lib/sim/explore.ml: Format List Printf Runtime
