lib/sim/scheduler.mli: Rng Runtime
