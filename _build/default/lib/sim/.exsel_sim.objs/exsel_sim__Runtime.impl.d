lib/sim/runtime.ml: Effect List Memory Register
