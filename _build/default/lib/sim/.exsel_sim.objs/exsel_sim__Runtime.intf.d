lib/sim/runtime.mli: Memory Register
