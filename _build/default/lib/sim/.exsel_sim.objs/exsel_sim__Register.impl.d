lib/sim/register.ml: Memory
