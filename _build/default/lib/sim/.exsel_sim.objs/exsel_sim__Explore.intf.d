lib/sim/explore.mli: Format Runtime
