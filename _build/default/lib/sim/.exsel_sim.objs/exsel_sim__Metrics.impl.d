lib/sim/metrics.ml: Format List Memory Runtime
