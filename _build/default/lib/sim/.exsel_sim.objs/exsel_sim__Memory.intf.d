lib/sim/memory.mli:
