lib/sim/linearize.mli:
