lib/sim/memory.ml:
