lib/sim/rng.mli:
