(** Execution traces.

    A trace records committed operations in order — the linearization of
    the execution — for debugging, for invariant checkers that need
    history (e.g. the snapshot consistent-cut test), and for rendering
    schedules found by {!Explore}.  Recording costs one list cell per
    commit; attach only when needed. *)

type event = {
  index : int;  (** global commit index, from 0 *)
  pid : int;
  proc_name : string;
  op : Runtime.op_kind;
  step : int;  (** the process's local step count after this commit *)
}

type t

val attach : Runtime.t -> t
(** Start recording the runtime's commits (from now on). *)

val events : t -> event list
(** Events recorded so far, oldest first. *)

val length : t -> int

val by_process : t -> int -> event list
(** Events of one process, oldest first. *)

val writes_to : t -> int -> event list
(** Write events targeting a register id, oldest first. *)

val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> t -> unit
(** Full trace, one event per line. *)
