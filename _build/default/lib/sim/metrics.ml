type summary = {
  processes : int;
  completed : int;
  crashed : int;
  max_steps : int;
  total_steps : int;
  registers : int;
  reads : int;
  writes : int;
}

let of_runtime t =
  let procs = Runtime.procs t in
  let count st = List.length (List.filter (fun p -> Runtime.status p = st) procs) in
  let mem = Runtime.memory t in
  {
    processes = List.length procs;
    completed = count Runtime.Done;
    crashed = count Runtime.Crashed;
    max_steps = Runtime.max_steps t;
    total_steps = List.fold_left (fun acc p -> acc + Runtime.steps p) 0 procs;
    registers = Memory.registers mem;
    reads = Memory.reads mem;
    writes = Memory.writes mem;
  }

let pp ppf s =
  Format.fprintf ppf
    "procs=%d done=%d crashed=%d max_steps=%d total_steps=%d regs=%d r/w=%d/%d"
    s.processes s.completed s.crashed s.max_steps s.total_steps s.registers
    s.reads s.writes
