(** Consistent-cut checking for composite read operations.

    A scan-like operation (an atomic snapshot's [scan], a collect) claims
    to return values of many registers "at one instant".  This module
    checks that claim against a recorded execution: given the per-location
    write history (commit index, location, value) and the operation's
    commit window, [consistent_cut] decides whether some single point [G]
    inside the window exists at which every returned value was the latest
    write to its location.

    Histories are typically gathered with {!Trace} or an
    {!Runtime.on_commit} hook; the snapshot test suite uses this checker
    to validate linearizability of scans under random schedules. *)

type 'v write = { at : int; location : int; value : 'v }
(** One committed write: [at] is the global commit index. *)

val consistent_cut :
  writes:'v write list ->
  window:int * int ->
  view:(int * 'v) list ->
  init:(int -> 'v) ->
  bool
(** [consistent_cut ~writes ~window:(lo, hi) ~view ~init] holds when there
    is a linearization point [G] with [lo ≤ G ≤ hi] such that for every
    [(location, value)] in [view], [value] is the latest write to
    [location] at index [≤ G] ([init location] if none).  Locations absent
    from [view] are unconstrained. *)

val validity_windows :
  writes:'v write list -> location:int -> value:'v -> init:(int -> 'v) ->
  (int * int) list
(** The half-open index intervals [(from, until)] during which [value] was
    current at [location]; [max_int] marks "still current".  Exposed for
    diagnostics. *)
