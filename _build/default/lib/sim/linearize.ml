type 'v write = { at : int; location : int; value : 'v }

let validity_windows ~writes ~location ~value ~init =
  let ws =
    writes
    |> List.filter (fun w -> w.location = location)
    |> List.sort (fun a b -> compare a.at b.at)
  in
  let timeline = { at = -1; location; value = init location } :: ws in
  let rec windows = function
    | [] -> []
    | [ w ] -> [ (w.value, w.at, max_int) ]
    | w :: (w' :: _ as rest) -> (w.value, w.at, w'.at) :: windows rest
  in
  List.filter_map
    (fun (v, from, until) -> if v = value then Some (from, until) else None)
    (windows timeline)

let consistent_cut ~writes ~window:(lo, hi) ~view ~init =
  let candidate_windows =
    List.map
      (fun (location, value) -> validity_windows ~writes ~location ~value ~init)
      view
  in
  (* a common point G exists iff some choice of one window per location
     has max(froms) <= G < min(untils) with lo <= G <= hi *)
  let rec feasible chosen = function
    | [] ->
        let from_max = List.fold_left (fun a (f, _) -> max a f) (-1) chosen in
        let until_min = List.fold_left (fun a (_, u) -> min a u) max_int chosen in
        let g_lo = max from_max lo in
        let g_hi = min (until_min - 1) hi in
        g_lo <= g_hi
    | ws :: rest -> List.exists (fun w -> feasible (w :: chosen) rest) ws
  in
  feasible [] candidate_windows
