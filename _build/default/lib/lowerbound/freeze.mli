(** Corollary 2's optimality argument, executably.

    The paper shows no repository implementation can waste fewer than
    [n − 1] registers: freeze a process at the instant its deposit write
    to register [R] is {e enabled but not yet committed}.  No other
    process may ever deposit into [R] — if some process did and
    acknowledged, un-freezing the pending write would overwrite a
    deposited value, contradicting Persistence.  So a crash at that
    instant pins [R] forever, and [n − 1] crashes pin [n − 1] registers.

    [corollary2] replays this construction against our Selfish-Deposit:
    it drives a victim until its deposit write is pending, freezes it,
    lets the other processes deposit arbitrarily often, and reports
    whether the frozen register stayed untouched — and that un-freezing
    afterwards completes the deposit without any overwrite. *)

type result = {
  frozen_register : int;  (** index of the register pinned by the freeze *)
  others_deposits : int;  (** deposits completed by the other processes *)
  untouched_while_frozen : bool;  (** nobody wrote it while frozen *)
  deposit_completed_after_thaw : bool;
      (** the victim's write landed cleanly when resumed *)
}

val corollary2 :
  n:int -> deposits_per_other:int -> seed:int -> result
(** Run the construction with [n] processes ([n ≥ 2]); the victim is
    process 0, the other [n − 1] each deposit [deposits_per_other]
    values while the victim is frozen. *)
