module Runtime = Exsel_sim.Runtime

type stage = {
  index : int;
  pool_before : int;
  op_class : [ `Read | `Write ];
  register : int;
  pool_after : int;
}

type result = {
  stages : stage list;
  forced_stages : int;
  theoretical_stages : int;
  bound : int;
  pool_final : int;
  residue : int;
  max_steps : int;
}

let theoretical_stages ~n_names ~k ~m ~r =
  max 0 (min (k - 2) (Exsel_renaming.Spec.lower_bound_steps ~k ~n_names ~m ~r - 1))

(* Partition the runnable pool by pending-operation class and pick the
   most-contended register of the majority class. *)
let classify pool =
  let tagged =
    List.filter_map
      (fun p ->
        match Runtime.pending p with
        | Some (Runtime.Read reg) -> Some (`Read, reg, p)
        | Some (Runtime.Write reg) -> Some (`Write, reg, p)
        | None -> None)
      pool
  in
  let reads = List.filter (fun (c, _, _) -> c = `Read) tagged in
  let writes = List.filter (fun (c, _, _) -> c = `Write) tagged in
  let cls, members =
    if List.length reads >= List.length writes then (`Read, reads) else (`Write, writes)
  in
  (* largest same-register group *)
  let by_reg = Hashtbl.create 16 in
  List.iter
    (fun (_, reg, p) ->
      let cur = try Hashtbl.find by_reg reg with Not_found -> [] in
      Hashtbl.replace by_reg reg (p :: cur))
    members;
  let best =
    Hashtbl.fold
      (fun reg ps acc ->
        match acc with
        | Some (_, best_ps) when List.length best_ps >= List.length ps -> acc
        | _ -> Some (reg, ps))
      by_reg None
  in
  match best with
  | None -> None
  | Some (reg, ps) -> Some (cls, reg, List.rev ps)

let force ?stage_budget rt ~spawn ~n_names ~k ~m ~r =
  let procs = Array.init n_names spawn in
  let t_target =
    match stage_budget with
    | Some t -> max 0 t
    | None -> theoretical_stages ~n_names ~k ~m ~r
  in
  let residue = ref [] in
  let rec stage_loop i pool stages =
    if i >= t_target || List.length pool <= 1 then (i, pool, List.rev stages)
    else
      match classify pool with
      | None -> (i, pool, List.rev stages)
      | Some (cls, reg, members) ->
          List.iter
            (fun p ->
              if Runtime.status p = Runtime.Runnable then Runtime.commit rt p)
            members;
          (if cls = `Write then
             match List.rev members with
             | last :: _ -> residue := last :: !residue
             | [] -> ());
          let info =
            {
              index = i;
              pool_before = List.length pool;
              op_class = cls;
              register = reg;
              pool_after = List.length members;
            }
          in
          stage_loop (i + 1) members (info :: stages)
  in
  let initial_pool =
    Array.to_list procs |> List.filter (fun p -> Runtime.status p = Runtime.Runnable)
  in
  let forced, pool, stages = stage_loop 0 initial_pool [] in
  (* The execution we account for is the theorem's K: the residue (the
     writers whose values are visible) plus enough pool members to reach k
     contenders; everything else is crashed, so the surviving contention
     matches the algorithm's design. *)
  let residue_pids = List.map Runtime.pid !residue in
  let pool_only =
    List.filter (fun p -> not (List.mem (Runtime.pid p) residue_pids)) pool
  in
  let keep = max 2 (k - List.length !residue) in
  let pool_kept = List.filteri (fun i _ -> i < keep) pool_only in
  let survivors = pool_kept @ !residue in
  let is_survivor p = List.exists (fun q -> Runtime.pid q = Runtime.pid p) survivors in
  Array.iter (fun p -> if not (is_survivor p) then Runtime.crash rt p) procs;
  let policy t =
    match List.filter is_survivor (Runtime.runnable t) with
    | [] -> None
    | p :: _ -> Some p
  in
  Runtime.run ~max_commits:50_000_000 rt policy;
  let max_steps =
    List.fold_left (fun acc p -> max acc (Runtime.steps p)) 0 survivors
  in
  {
    stages;
    forced_stages = forced;
    theoretical_stages = t_target;
    bound = 1 + t_target;
    pool_final = List.length pool;
    residue = List.length !residue;
    max_steps;
  }
