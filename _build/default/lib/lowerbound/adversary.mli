(** The lower-bound adversary of Theorems 6 and 7, as an executable driver.

    The proof constructs an execution stage by stage: keep a pool of
    processes with identical histories; at each stage look at the pending
    operations of the pool, keep the majority class (reads or writes),
    focus on the most-contended register — by pigeonhole the pool shrinks
    by a factor of at most 2r — schedule exactly those operations, and
    absorb the last writer into a residue.  After
    t = min\{k−2, log₂ᵣ(N/2M)\} stages the surviving pool still has 2M
    processes with identical read histories, at most M names to decide
    among, and a residue of at most k−2 writers: some process must take at
    least one more step, i.e. 1 + t in total.

    This module replays the construction against {e any} algorithm running
    in our runtime (whose pending operations are exactly the visibility
    the proof needs) and reports what it forced. *)

type stage = {
  index : int;
  pool_before : int;
  op_class : [ `Read | `Write ];
  register : int;  (** id of the most-contended register *)
  pool_after : int;
}

type result = {
  stages : stage list;
  forced_stages : int;  (** stages driven, ≤ the theorem's t *)
  theoretical_stages : int;  (** t = min\{k−2, ⌊log₂ᵣ(N/2M)⌋\} *)
  bound : int;  (** 1 + t, the step lower bound *)
  pool_final : int;
  residue : int;
  max_steps : int;  (** measured max local steps after completion *)
}

val force :
  ?stage_budget:int ->
  Exsel_sim.Runtime.t ->
  spawn:(int -> Exsel_sim.Runtime.proc) ->
  n_names:int ->
  k:int ->
  m:int ->
  r:int ->
  result
(** [force rt ~spawn ~n_names ~k ~m ~r] spawns one process per original
    name in [0 .. n_names−1] via [spawn], drives the staged construction,
    crashes everything outside the final pool and residue, completes the
    survivors (round-robin) and reports the forced step counts.  [m] and
    [r] are the algorithm's name bound and register count, used for the
    theoretical stage budget.  [stage_budget] overrides that budget —
    Theorem 7's store variant passes
    [Spec.store_lower_bound ~k ~n_names ~r - 1] here, since its recursion
    stops at [min{k−2, ⌈log₂ᵣ(N/k)⌉}] stages instead. *)
