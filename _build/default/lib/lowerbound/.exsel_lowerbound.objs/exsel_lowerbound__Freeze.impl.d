lib/lowerbound/freeze.ml: Exsel_repository Exsel_sim List Printf
