lib/lowerbound/adversary.mli: Exsel_sim
