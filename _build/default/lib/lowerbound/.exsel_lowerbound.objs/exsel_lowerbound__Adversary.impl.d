lib/lowerbound/adversary.ml: Array Exsel_renaming Exsel_sim Hashtbl List
