lib/lowerbound/freeze.mli:
