lib/harness/experiments.ml: Array Exsel_collect Exsel_expander Exsel_lowerbound Exsel_msgnet Exsel_renaming Exsel_repository Exsel_sim Fun List Memory Metrics Printf Rng Runtime Scheduler Table
