lib/harness/table.mli:
