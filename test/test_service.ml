(* Tests for the long-lived renaming service (lib/service): shard-router
   bookkeeping, per-shard core generation soundness, cross-validation
   against the functorized Long_lived oracle, and churn campaigns. *)

open Exsel_sim
module Core = Exsel_service.Core
module Router = Exsel_service.Router
module Churn = Exsel_service.Churn
module LL = Exsel_renaming.Long_lived
module Json = Exsel_obs.Json
module Validate = Exsel_testkit.Validate

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

let test_router_balances_cheapest () =
  let r = Router.create ~shards:3 ~cap:2 in
  let take () =
    match Router.route r with
    | Some i ->
        Router.admit r i;
        i
    | None -> Alcotest.fail "router rejected with free shards"
  in
  (* least (occupancy, admitted, index): round-robin while all equal *)
  Alcotest.(check (list int))
    "fills shards evenly" [ 0; 1; 2; 0; 1; 2 ]
    (List.init 6 (fun _ -> take ()))

let test_router_spills_ring_wise () =
  let r = Router.create ~shards:3 ~cap:1 in
  (match Router.route ~prefer:0 r with
  | Some 0 -> Router.admit r 0
  | _ -> Alcotest.fail "preferred shard should be honored");
  Alcotest.(check int) "no spill yet" 0 (Router.spills r);
  (match Router.route ~prefer:0 r with
  | Some 1 -> Router.admit r 1
  | other ->
      Alcotest.failf "expected spill to shard 1, got %s"
        (match other with Some i -> string_of_int i | None -> "reject"));
  Alcotest.(check int) "one spill" 1 (Router.spills r);
  (match Router.route ~prefer:0 r with
  | Some 2 -> Router.admit r 2
  | _ -> Alcotest.fail "expected spill to shard 2");
  Alcotest.(check (option int)) "full service rejects" None (Router.route r);
  Alcotest.(check int) "one reject" 1 (Router.rejects r)

let test_router_recycle_gating () =
  let r = Router.create ~shards:1 ~cap:2 in
  Router.admit r 0;
  Router.admit r 0;
  Alcotest.(check bool) "worn but live" false (Router.needs_recycle r 0);
  Router.crash r 0;
  Router.depart r 0;
  (* one pinned session left: still not recyclable *)
  Alcotest.(check bool) "pinned blocks recycle" false (Router.needs_recycle r 0);
  Alcotest.(check int) "occupancy counts pinned" 1 (Router.occupancy r 0);
  Alcotest.(check_raises) "recycled refuses"
    (Invalid_argument "Router.recycled: not recyclable") (fun () ->
      Router.recycled r 0)

let test_router_recycle_resets_wear () =
  let r = Router.create ~shards:1 ~cap:1 in
  Router.admit r 0;
  Alcotest.(check (option int)) "worn out" None (Router.route r);
  Router.depart r 0;
  Alcotest.(check bool) "recyclable" true (Router.needs_recycle r 0);
  Router.recycled r 0;
  Alcotest.(check int) "epoch bumped" 1 (Router.epoch r 0);
  Alcotest.(check int) "wear reset" 0 (Router.admitted r 0);
  Alcotest.(check (option int)) "admissible again" (Some 0) (Router.route r)

(* ------------------------------------------------------------------ *)
(* Core: generations                                                   *)
(* ------------------------------------------------------------------ *)

let seq_run rt body =
  ignore (Runtime.spawn rt ~name:"op" body);
  Scheduler.run rt (Scheduler.sequential ())

let test_core_generations_never_reissued () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let core =
    Core.create ~rng:(Rng.create ~seed:7) mem ~name:"shard" ~cap:2
  in
  let slots = ref [] in
  seq_run rt (fun () ->
      slots := List.filter_map (fun c -> Core.join core ~client:c) [ 11; 22 ]);
  let slots = !slots in
  Alcotest.(check int) "both sessions joined" 2 (List.length slots);
  let seen = Hashtbl.create 32 in
  for round = 1 to 5 do
    List.iter
      (fun slot ->
        seq_run rt (fun () ->
            let name, gen = Core.acquire core ~slot in
            if Hashtbl.mem seen (name, gen) then
              Alcotest.failf "round %d: lease (%d, %d) reissued" round name gen;
            Hashtbl.add seen (name, gen) ();
            Core.release core ~slot ~name))
      slots
  done;
  Alcotest.(check int) "10 distinct leases" 10 (Hashtbl.length seen)

let test_core_crash_pins_name_and_generation () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let core =
    Core.create ~rng:(Rng.create ~seed:3) mem ~name:"shard" ~cap:2
  in
  let slot = ref (-1) and lease = ref (-1, -1) in
  seq_run rt (fun () ->
      slot := Option.get (Core.join core ~client:5);
      lease := Core.acquire core ~slot:!slot);
  (* the holder vanishes without releasing: name stays published and its
     generation is never incremented *)
  let name, gen = !lease in
  Alcotest.(check (option int))
    "pinned name still published" (Some name)
    (Core.holder_view core).(!slot);
  Alcotest.(check int) "generation frozen" gen (Core.generations core).(name)

let test_core_recycle_carries_generations () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let core =
    Core.create ~rng:(Rng.create ~seed:9) mem ~name:"shard.e0" ~cap:1
  in
  seq_run rt (fun () ->
      let slot = Option.get (Core.join core ~client:1) in
      for _ = 1 to 3 do
        let name, _ = Core.acquire core ~slot in
        Core.release core ~slot ~name
      done);
  let gens = Core.generations core in
  Alcotest.(check int) "three releases bumped name 0" 3 gens.(0);
  let core' =
    Core.create ~gen0:gens ~rng:(Rng.create ~seed:10) mem ~name:"shard.e1"
      ~cap:1
  in
  Alcotest.(check (array int))
    "fresh incarnation starts at the old generations" gens
    (Core.generations core');
  let lease = ref (-1, -1) in
  seq_run rt (fun () ->
      let slot = Option.get (Core.join core' ~client:2) in
      lease := Core.acquire core' ~slot);
  Alcotest.(check (pair int int))
    "recycled name is a new generation" (0, 3) !lease

let test_core_entry_wears_out () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let core =
    Core.create ~rng:(Rng.create ~seed:2) mem ~name:"shard" ~cap:1
  in
  let a = ref None and b = ref None in
  seq_run rt (fun () -> a := Core.join core ~client:1);
  seq_run rt (fun () -> b := Core.join core ~client:2);
  Alcotest.(check bool) "first admission lands" true (!a <> None);
  Alcotest.(check (option int)) "second admission overflows" None !b

(* ------------------------------------------------------------------ *)
(* Cross-validation against the Long_lived oracle                      *)
(* ------------------------------------------------------------------ *)

(* The service core must agree with the bare functorized Long_lived
   object (satellite of this PR: Long_lived.Make is the reference
   oracle) on any sequential acquire/release script: the generation
   plumbing must not perturb which names the snapshot core hands out. *)
let test_core_matches_long_lived_oracle () =
  for seed = 1 to 10 do
    let cap = 3 in
    let rng = Rng.create ~seed in
    (* service side *)
    let mem_s = Memory.create () in
    let rt_s = Runtime.create mem_s in
    let core =
      Core.create ~rng:(Rng.create ~seed:100) mem_s ~name:"svc" ~cap
    in
    let slots = Array.make cap (-1) in
    seq_run rt_s (fun () ->
        Array.iteri
          (fun i _ ->
            slots.(i) <- Option.get (Core.join core ~client:(1000 + i)))
          slots);
    (* oracle side: bare long-lived object over the same slot space *)
    let mem_o = Memory.create () in
    let rt_o = Runtime.create mem_o in
    let ll = LL.create mem_o ~name:"oracle" ~n:(Core.slots core) in
    let holding = Array.make cap None in
    for _step = 1 to 40 do
      let i = Rng.int rng cap in
      match holding.(i) with
      | None ->
          let svc = ref (-1, -1) and ora = ref (-1) in
          seq_run rt_s (fun () -> svc := Core.acquire core ~slot:slots.(i));
          seq_run rt_o (fun () -> ora := LL.acquire ll ~me:slots.(i));
          let name, _gen = !svc in
          if name <> !ora then
            Alcotest.failf "seed %d: service name %d, oracle name %d" seed
              name !ora;
          holding.(i) <- Some name
      | Some name ->
          seq_run rt_s (fun () -> Core.release core ~slot:slots.(i) ~name);
          seq_run rt_o (fun () -> LL.release ll ~me:slots.(i));
          holding.(i) <- None
    done
  done

(* ------------------------------------------------------------------ *)
(* Churn campaigns                                                     *)
(* ------------------------------------------------------------------ *)

let small_config =
  {
    Churn.default with
    Churn.shards = 2;
    cap = 3;
    sessions = 5;
    rounds = 5;
    seeds = [ 1; 2 ];
  }

let test_churn_campaign_green () =
  let report = Churn.run small_config in
  Alcotest.(check int) "cells" 6 (List.length report.Churn.r_cells);
  List.iter
    (fun c ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s seed %d clean" c.Churn.c_regime c.Churn.c_seed)
        [] c.Churn.c_violations;
      Alcotest.(check bool)
        (Printf.sprintf "%s seed %d acquired" c.Churn.c_regime c.Churn.c_seed)
        true (c.Churn.c_acquires > 0))
    report.Churn.r_cells;
  Alcotest.(check int) "no violations" 0 report.Churn.r_violations

let cells_of_regime report regime =
  List.filter
    (fun c -> c.Churn.c_regime = Churn.regime_id regime)
    report.Churn.r_cells

let test_churn_regimes_exercise_faults () =
  let report = Churn.run small_config in
  let sum f regime =
    List.fold_left (fun acc c -> acc + f c) 0 (cells_of_regime report regime)
  in
  Alcotest.(check bool)
    "crash-rejoin crashes" true
    (sum (fun c -> c.Churn.c_crashes) Churn.Crash_rejoin > 0);
  Alcotest.(check bool)
    "hot-shard spills" true
    (sum (fun c -> c.Churn.c_spills) Churn.Hot_shard > 0);
  Alcotest.(check bool)
    "waves departs and rejoins" true
    (sum (fun c -> c.Churn.c_joins) Churn.Waves > small_config.Churn.sessions)

let test_churn_recycles_worn_shards () =
  (* one seat, one entry slot: every departure wears the shard out and
     the next arrival needs a recycled incarnation *)
  let cfg =
    {
      Churn.default with
      Churn.shards = 1;
      cap = 1;
      sessions = 1;
      rounds = 8;
      regimes = [ Churn.Waves ];
      seeds = [ 1; 2; 3 ];
    }
  in
  let report = Churn.run cfg in
  Alcotest.(check int) "clean" 0 report.Churn.r_violations;
  let recycles =
    List.fold_left (fun a c -> a + c.Churn.c_recycles) 0 report.Churn.r_cells
  in
  Alcotest.(check bool) "some shard recycled" true (recycles > 0)

let test_churn_adaptive_entry_green () =
  let cfg = { small_config with Churn.entry = Core.Adaptive; seeds = [ 4 ] } in
  let report = Churn.run cfg in
  Alcotest.(check int) "adaptive entry clean" 0 report.Churn.r_violations

let test_churn_parallel_byte_identical () =
  let seq = Churn.run ~jobs:1 small_config in
  let par = Churn.run ~jobs:2 small_config in
  Alcotest.(check string)
    "-j 2 report is byte-identical to -j 1"
    (Json.to_string (Churn.to_json seq))
    (Json.to_string (Churn.to_json par))

let test_churn_events_cover_cells () =
  let started = ref 0 and finished = ref 0 in
  let on_event = function
    | Churn.Cell_started _ -> incr started
    | Churn.Cell_finished _ -> incr finished
  in
  let report = Churn.run ~on_event small_config in
  Alcotest.(check int) "started" (List.length report.Churn.r_cells) !started;
  Alcotest.(check int) "finished" (List.length report.Churn.r_cells) !finished

let test_churn_native_smoke () =
  let cfg =
    {
      Churn.default with
      Churn.shards = 2;
      cap = 2;
      sessions = 3;
      rounds = 3;
      seeds = [ 1 ];
      backend = Churn.Native { domains = 2 };
    }
  in
  let report = Churn.run cfg in
  Alcotest.(check int) "native churn clean" 0 report.Churn.r_violations;
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%s native acquired" c.Churn.c_regime)
        true (c.Churn.c_acquires > 0))
    report.Churn.r_cells;
  match Validate.service (Churn.to_json report) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "native report invalid: %s" e

let test_churn_rejects_bad_config () =
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Churn.run: shards must be positive") (fun () ->
      ignore (Churn.run { small_config with Churn.shards = 0 }));
  Alcotest.check_raises "no regimes"
    (Invalid_argument "Churn.run: at least one churn regime required")
    (fun () -> ignore (Churn.run { small_config with Churn.regimes = [] }))

let test_churn_traces_sim_only () =
  let traces = Churn.shard_traces small_config Churn.Hot_shard ~seed:1 in
  Alcotest.(check int) "one trace per shard" small_config.Churn.shards
    (List.length traces);
  let busiest =
    List.fold_left (fun a (_, c, _) -> max a c) 0 traces
  in
  Alcotest.(check bool) "busiest shard committed" true (busiest > 0);
  List.iter
    (fun (_, commits, events) ->
      Alcotest.(check bool)
        "trace events track commits" true
        (commits = 0 || events <> []))
    traces;
  Alcotest.check_raises "native traces refused"
    (Invalid_argument "Churn.shard_traces: traces are commit-clock (sim only)")
    (fun () ->
      ignore
        (Churn.shard_traces
           { small_config with Churn.backend = Churn.Native { domains = 2 } }
           Churn.Waves ~seed:1))

(* ------------------------------------------------------------------ *)
(* Report documents and validators                                     *)
(* ------------------------------------------------------------------ *)

let test_report_json_schema_and_validator () =
  let report = Churn.run small_config in
  let j = Churn.to_json report in
  Alcotest.(check (option string))
    "schema tag" (Some "exsel-service/1")
    (match Json.member "schema" j with
    | Some (Json.String s) -> Some s
    | _ -> None);
  (match Validate.service j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "report rejected: %s" e);
  match Validate.metrics_doc (Exsel_obs.Metrics.to_json report.Churn.r_metrics)
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "metrics rejected: %s" e

let test_validator_catches_lying_ok () =
  let report = Churn.run { small_config with Churn.seeds = [ 1 ] } in
  let j = Churn.to_json report in
  let rec patch = function
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               if k = "ok" then (k, Json.Bool false) else (k, patch v))
             fields)
    | Json.List l -> Json.List (List.map patch l)
    | other -> other
  in
  match Validate.service (patch j) with
  | Ok () -> Alcotest.fail "validator accepted ok=false with no violations"
  | Error _ -> ()

(* Tests execute in _build/default/test; the documentation lives in the
   source tree, so walk upward to the repo root (CI also gates the same
   checks through tools/validate_docs.exe docs). *)
let test_docs_cross_references () =
  let rec find_root dir depth =
    if depth > 6 then None
    else if Sys.file_exists (Filename.concat dir "DESIGN.md") then Some dir
    else find_root (Filename.dirname dir) (depth + 1)
  in
  match find_root (Sys.getcwd ()) 0 with
  | None -> Alcotest.skip ()
  | Some root -> (
      let read name =
        In_channel.with_open_text (Filename.concat root name)
          In_channel.input_all
      in
      match
        Validate.service_docs ~design:(read "DESIGN.md")
          ~experiments:(read "EXPERIMENTS.md")
          ~algorithms:(read "doc/ALGORITHMS.md") ~readme:(read "README.md")
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "docs cross-reference broken: %s" e)

(* ------------------------------------------------------------------ *)
(* qcheck: concurrent holders never collide                            *)
(* ------------------------------------------------------------------ *)

let prop_no_colliding_holders =
  QCheck.Test.make ~count:30 ~name:"concurrent holders never collide"
    QCheck.(
      quad (int_range 1 3) (int_range 1 4) (int_range 2 6) (int_range 1 1000))
    (fun (shards, cap, sessions, seed) ->
      let cfg =
        {
          Churn.default with
          Churn.shards;
          cap;
          sessions;
          rounds = 4;
          seeds = [ seed ];
        }
      in
      let report = Churn.run cfg in
      List.for_all
        (fun c ->
          not
            (List.exists
               (fun v ->
                 String.length v >= 15
                 && String.sub v 0 15 = "exclusive-holds")
               c.Churn.c_violations))
        report.Churn.r_cells)

let () =
  Alcotest.run "service"
    [
      ( "router",
        [
          Alcotest.test_case "cheapest balancing" `Quick
            test_router_balances_cheapest;
          Alcotest.test_case "ring-wise spill and reject" `Quick
            test_router_spills_ring_wise;
          Alcotest.test_case "recycle gating" `Quick test_router_recycle_gating;
          Alcotest.test_case "recycle resets wear" `Quick
            test_router_recycle_resets_wear;
        ] );
      ( "core",
        [
          Alcotest.test_case "generations never reissued" `Quick
            test_core_generations_never_reissued;
          Alcotest.test_case "crash pins name and generation" `Quick
            test_core_crash_pins_name_and_generation;
          Alcotest.test_case "recycle carries generations" `Quick
            test_core_recycle_carries_generations;
          Alcotest.test_case "entry wears out" `Quick test_core_entry_wears_out;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "core matches Long_lived oracle" `Quick
            test_core_matches_long_lived_oracle;
        ] );
      ( "churn",
        [
          Alcotest.test_case "campaign green" `Quick test_churn_campaign_green;
          Alcotest.test_case "regimes exercise faults" `Quick
            test_churn_regimes_exercise_faults;
          Alcotest.test_case "recycles worn shards" `Quick
            test_churn_recycles_worn_shards;
          Alcotest.test_case "adaptive entry" `Quick
            test_churn_adaptive_entry_green;
          Alcotest.test_case "-j 2 byte-identical" `Quick
            test_churn_parallel_byte_identical;
          Alcotest.test_case "events cover cells" `Quick
            test_churn_events_cover_cells;
          Alcotest.test_case "native smoke" `Quick test_churn_native_smoke;
          Alcotest.test_case "bad config rejected" `Quick
            test_churn_rejects_bad_config;
          Alcotest.test_case "traces are sim-only" `Quick
            test_churn_traces_sim_only;
        ] );
      ( "json",
        [
          Alcotest.test_case "exsel-service/1 validates" `Quick
            test_report_json_schema_and_validator;
          Alcotest.test_case "validator rejects lying ok" `Quick
            test_validator_catches_lying_ok;
          Alcotest.test_case "docs cross-references" `Quick
            test_docs_cross_references;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_no_colliding_holders ] );
    ]
