(* Domain-parallelism tests (DESIGN.md §10).

   Three layers:
   - Pool: order preservation and deterministic error propagation of the
     domain pool, however the domains' completion order falls out;
   - determinism: `Campaign.run ~jobs` and `Explore.run ~jobs` must be
     field-for-field identical to the sequential run — counters, first
     violation, shrunk counterexample, replayed trace included;
   - domain-local ambient state: the regressions the DLS migration fixed
     (span cross-attribution between live runtimes, stale observations
     surviving an aborted report run). *)

open Exsel_sim
module R = Exsel_renaming
module Span = Exsel_obs.Span
module E = Exsel_harness.Experiments
module Campaign = Exsel_conformance.Campaign
module Adapter = Exsel_conformance.Adapter
module Regime = Exsel_conformance.Regime
module Json = Exsel_obs.Json

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let adapter id =
  match Adapter.find id with
  | Some a -> a
  | None -> Alcotest.failf "adapter %s missing" id

let regime id =
  match Regime.find id with
  | Some r -> r
  | None -> Alcotest.failf "regime %s missing" id

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

(* deterministic busywork so items finish in an order unrelated to their
   position: big inputs complete late on one domain, early on another *)
let slow_double x =
  let acc = ref 0 in
  for i = 1 to (x mod 17) * 1_000 do
    acc := (!acc + i) mod 7919
  done;
  ignore !acc;
  2 * x

let test_pool_preserves_order () =
  let items = List.init 50 (fun i -> 37 * i mod 101) in
  let expected = List.map slow_double items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Pool.map ~jobs slow_double items))
    [ 1; 2; 4; 8 ]

let test_pool_empty_and_oversubscribed () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 slow_double []);
  Alcotest.(check (list int)) "more jobs than items" [ 2; 4 ]
    (Pool.map ~jobs:16 slow_double [ 1; 2 ])

let test_pool_raises_earliest_failure () =
  (* two items raise; whichever domain finishes first, the exception of
     the earliest *input position* must win *)
  let f i = if i = 3 || i = 7 then failwith (string_of_int i) else i in
  List.iter
    (fun jobs ->
      match Pool.map ~jobs f (List.init 10 Fun.id) with
      | _ -> Alcotest.failf "jobs=%d: expected an exception" jobs
      | exception Failure msg ->
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d: earliest failure" jobs)
            "3" msg)
    [ 1; 2; 4 ]

let prop_pool_order_any_completion_order =
  QCheck.Test.make
    ~name:"Pool.map = List.map whatever the domain completion order" ~count:25
    QCheck.(pair (small_list (int_range 0 200)) (int_range 1 6))
    (fun (items, jobs) -> Pool.map ~jobs slow_double items = List.map slow_double items)

(* ------------------------------------------------------------------ *)
(* --seeds parsing                                                     *)
(* ------------------------------------------------------------------ *)

let test_seeds_count_and_list () =
  (match Campaign.seeds_of_string "3" with
  | Ok s -> Alcotest.(check (list int)) "count" [ 1; 2; 3 ] s
  | Error e -> Alcotest.failf "count rejected: %s" e);
  match Campaign.seeds_of_string " 3, 7,11 " with
  | Ok s -> Alcotest.(check (list int)) "list" [ 3; 7; 11 ] s
  | Error e -> Alcotest.failf "list rejected: %s" e

let check_rejects label spec needle =
  match Campaign.seeds_of_string spec with
  | Ok _ -> Alcotest.failf "%s: %S accepted" label spec
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S names %S (got %S)" label spec needle msg)
        true (contains msg needle)

let test_seeds_rejections () =
  check_rejects "zero count" "0" "0";
  check_rejects "negative count" "-4" "-4";
  check_rejects "negative seed" "3,-7,11" "-7";
  check_rejects "duplicate seed" "3,7,3" "3";
  check_rejects "garbage" "3,x,7" "x";
  check_rejects "trailing comma" "3,7," ""

(* ------------------------------------------------------------------ *)
(* Campaign determinism across jobs                                    *)
(* ------------------------------------------------------------------ *)

(* The exsel-conformance/1 document has no timing fields, so rendering
   both reports and comparing the strings checks every field of every
   cell at once — including violation schedules, shrunk counterexamples
   and embedded traces. *)
let campaign_json ~jobs cfg = Json.to_string (Campaign.to_json (Campaign.run ~jobs cfg))

let test_campaign_jobs_identical_honest () =
  let cfg =
    { Campaign.default with Campaign.algos = Adapter.honest; seeds = [ 1 ]; k = 3 }
  in
  let reference = campaign_json ~jobs:1 cfg in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "honest matrix, -j %d = -j 1" jobs)
        true
        (campaign_json ~jobs cfg = reference))
    [ 2; 4 ]

let test_campaign_jobs_identical_violation () =
  (* the negative control: first-violation-per-cell, shrinking and trace
     replay must also be unaffected by sharding *)
  let cfg =
    {
      Campaign.default with
      Campaign.algos = [ adapter "buggy-ma"; adapter "ma" ];
      regimes = [ regime "lockstep"; regime "random" ];
      seeds = [ 1; 2; 3 ];
      k = 4;
    }
  in
  let r1 = Campaign.run ~jobs:1 cfg in
  Alcotest.(check bool) "negative control caught" true (r1.Campaign.r_violations > 0);
  let reference = Json.to_string (Campaign.to_json r1) in
  Alcotest.(check bool)
    "violating matrix, -j 3 = -j 1" true
    (campaign_json ~jobs:3 cfg = reference)

let test_campaign_on_cell_order () =
  let cfg =
    {
      Campaign.default with
      Campaign.algos = [ adapter "ma" ];
      regimes = [ regime "lockstep"; regime "random" ];
      seeds = [ 1 ];
      k = 3;
    }
  in
  let order jobs =
    let seen = ref [] in
    ignore
      (Campaign.run ~jobs
         ~on_cell:(fun c -> seen := (c.Campaign.c_algo, c.Campaign.c_regime) :: !seen)
         cfg);
    List.rev !seen
  in
  Alcotest.(check bool)
    "on_cell fires in matrix order under -j" true
    (order 1 = order 2)

(* ------------------------------------------------------------------ *)
(* Explore determinism across jobs                                     *)
(* ------------------------------------------------------------------ *)

let compete_init n () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let c = R.Compete.create mem ~name:"c" in
  let wins = Array.make n false in
  for i = 0 to n - 1 do
    ignore
      (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
           wins.(i) <- R.Compete.compete c ~me:i))
  done;
  (wins, rt)

let splitter_init n () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let s = R.Splitter.create mem ~name:"s" in
  for i = 0 to n - 1 do
    ignore
      (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
           ignore (R.Splitter.enter s ~me:i)))
  done;
  ((), rt)

let exclusive wins _rt =
  let winners = Array.to_list wins |> List.filter Fun.id |> List.length in
  if winners > 1 then Error "two winners" else Ok ()

let check_outcome_equal label (a : Explore.outcome) (b : Explore.outcome) =
  Alcotest.(check int) (label ^ ": paths") a.Explore.paths b.Explore.paths;
  Alcotest.(check int) (label ^ ": states") a.Explore.states b.Explore.states;
  Alcotest.(check bool) (label ^ ": truncated") a.Explore.truncated b.Explore.truncated;
  Alcotest.(check bool)
    (label ^ ": failure") true
    (a.Explore.failure = b.Explore.failure);
  Alcotest.(check bool)
    (label ^ ": failure trace") true
    (a.Explore.failure_trace = b.Explore.failure_trace);
  Alcotest.(check bool) (label ^ ": stats") true (a.Explore.stats = b.Explore.stats)

let test_explore_jobs_identical_none () =
  let run jobs = Explore.run ~jobs ~init:(compete_init 3) ~check:exclusive () in
  let reference = run 1 in
  Alcotest.(check bool) "explored" true (reference.Explore.paths > 100);
  List.iter
    (fun jobs -> check_outcome_equal (Printf.sprintf "none -j %d" jobs) reference (run jobs))
    [ 2; 4 ]

let test_explore_jobs_identical_sleep_sets () =
  let run jobs =
    Explore.run ~jobs ~reduction:`Sleep_sets ~init:(splitter_init 3)
      ~check:(fun () _ -> Ok ()) ()
  in
  check_outcome_equal "sleep_sets -j 3" (run 1) (run 3)

let test_explore_jobs_identical_crashes () =
  let run jobs =
    Explore.run ~jobs ~max_crashes:1 ~init:(compete_init 2) ~check:exclusive ()
  in
  check_outcome_equal "crashes -j 2" (run 1) (run 2)

let test_explore_jobs_identical_truncated () =
  let run jobs =
    Explore.run ~jobs ~max_paths:500 ~init:(compete_init 3) ~check:exclusive ()
  in
  let reference = run 1 in
  Alcotest.(check bool) "budget expires mid-tree" true reference.Explore.truncated;
  List.iter
    (fun jobs ->
      check_outcome_equal (Printf.sprintf "truncated -j %d" jobs) reference (run jobs))
    [ 2; 3 ]

let test_explore_jobs_identical_failure () =
  (* a check that fails on some schedules: the parallel run must report
     the same first failing schedule as the sequential DFS *)
  let check wins rt =
    ignore rt;
    if wins.(1) then Error "contender 1 won" else Ok ()
  in
  let run jobs = Explore.run ~jobs ~init:(compete_init 2) ~check () in
  let reference = run 1 in
  Alcotest.(check bool) "failure found" true (reference.Explore.failure <> None);
  List.iter
    (fun jobs ->
      check_outcome_equal (Printf.sprintf "failure -j %d" jobs) reference (run jobs))
    [ 2; 4 ]

let prop_explore_jobs_identical =
  let reference = lazy (Explore.run ~init:(compete_init 2) ~check:exclusive ()) in
  QCheck.Test.make ~name:"Explore.run ~jobs = sequential for random jobs" ~count:10
    QCheck.(int_range 2 6)
    (fun jobs ->
      let o = Explore.run ~jobs ~init:(compete_init 2) ~check:exclusive () in
      let r = Lazy.force reference in
      o.Explore.paths = r.Explore.paths
      && o.Explore.states = r.Explore.states
      && o.Explore.stats = r.Explore.stats
      && o.Explore.failure = r.Explore.failure)

(* ------------------------------------------------------------------ *)
(* Span attribution with several live runtimes (regression)            *)
(* ------------------------------------------------------------------ *)

(* Before the sink registry, Span kept one installed sink in a global
   ref: attaching runtime B's sink hijacked runtime A's subsequent span
   records, and detaching B's sink silenced A entirely.  Interleave two
   live runtimes and check each sink saw only its own runtime. *)
let test_span_two_live_runtimes () =
  let mem_a = Memory.create () in
  let rt_a = Runtime.create mem_a in
  let ra = Register.create mem_a ~name:"ra" 0 in
  let sink_a = Span.attach rt_a in
  let pa =
    Runtime.spawn rt_a ~name:"pa" (fun () ->
        Span.wrap "a:phase=1" (fun () ->
            Runtime.write ra 1;
            Runtime.write ra 2))
  in
  let mem_b = Memory.create () in
  let rt_b = Runtime.create mem_b in
  let rb = Register.create mem_b ~name:"rb" 0 in
  let sink_b = Span.attach rt_b in
  let pb =
    Runtime.spawn rt_b ~name:"pb" (fun () ->
        Span.wrap "b:phase=1" (fun () -> Runtime.write rb 1))
  in
  (* interleave the two runtimes; b finishes (and detaches) first *)
  Runtime.commit rt_a pa;
  Runtime.commit rt_b pb;
  Span.detach sink_b;
  Runtime.commit rt_a pa;
  (match Span.per_process sink_a with
  | [ (_, name, [ node ]) ] ->
      Alcotest.(check string) "a: proc" "pa" name;
      Alcotest.(check string) "a: label" "a:phase=1" node.Span.label;
      Alcotest.(check int) "a: steps (none leaked to b)" 2 node.Span.steps;
      Alcotest.(check bool) "a: closed after b detached" true node.Span.complete
  | l -> Alcotest.failf "sink a: expected 1 process, got %d" (List.length l));
  (match Span.per_process sink_b with
  | [ (_, name, [ node ]) ] ->
      Alcotest.(check string) "b: proc" "pb" name;
      Alcotest.(check string) "b: label" "b:phase=1" node.Span.label;
      Alcotest.(check int) "b: steps (none leaked from a)" 1 node.Span.steps
  | l -> Alcotest.failf "sink b: expected 1 process, got %d" (List.length l));
  Span.detach sink_a

let test_span_nested_runtime () =
  (* runtime B lives entirely inside one of runtime A's process bodies —
     the shape Campaign.analyse produces when it replays a counterexample
     while the driving runtime is still live *)
  let mem_a = Memory.create () in
  let rt_a = Runtime.create mem_a in
  let ra = Register.create mem_a ~name:"ra" 0 in
  let sink_a = Span.attach rt_a in
  let inner = ref None in
  let pa =
    Runtime.spawn rt_a ~name:"pa" (fun () ->
        Span.wrap "a:outer" (fun () ->
            Runtime.write ra 1;
            let mem_b = Memory.create () in
            let rt_b = Runtime.create mem_b in
            let rb = Register.create mem_b ~name:"rb" 0 in
            let sink_b = Span.attach rt_b in
            let pb =
              Runtime.spawn rt_b ~name:"pb" (fun () ->
                  Span.wrap "b:inner" (fun () -> Runtime.write rb 7))
            in
            Runtime.commit rt_b pb;
            inner := Some (Span.per_process sink_b);
            Span.detach sink_b;
            Runtime.write ra 2))
  in
  Runtime.commit rt_a pa;
  Runtime.commit rt_a pa;
  (match !inner with
  | Some [ (_, _, [ node ]) ] ->
      Alcotest.(check string) "inner label" "b:inner" node.Span.label;
      Alcotest.(check int) "inner steps" 1 node.Span.steps;
      Alcotest.(check bool) "inner complete" true node.Span.complete
  | Some l -> Alcotest.failf "inner sink: expected 1 process, got %d" (List.length l)
  | None -> Alcotest.fail "inner runtime never ran");
  (match Span.per_process sink_a with
  | [ (_, _, [ node ]) ] ->
      Alcotest.(check string) "outer label" "a:outer" node.Span.label;
      Alcotest.(check int) "outer steps" 2 node.Span.steps;
      Alcotest.(check bool) "outer survived inner detach" true node.Span.complete
  | l -> Alcotest.failf "sink a: expected 1 process, got %d" (List.length l));
  Span.detach sink_a

(* ------------------------------------------------------------------ *)
(* Observation queue cleared on enable (regression)                    *)
(* ------------------------------------------------------------------ *)

let test_observations_cleared_on_enable () =
  (* baseline: how many observations one A1 run queues *)
  E.set_observing true;
  ignore (E.a1_expander_constants ());
  let n = List.length (E.drain_observations ()) in
  Alcotest.(check bool) "A1 produces observations" true (n > 0);
  (* a run whose caller raised before draining leaves the queue full … *)
  E.set_observing true;
  ignore (E.a1_expander_constants ());
  (* … no drain here (the abort); the next enable must discard it *)
  E.set_observing true;
  ignore (E.a1_expander_constants ());
  let n' = List.length (E.drain_observations ()) in
  E.set_observing false;
  Alcotest.(check int) "stale observations discarded on enable" n n'

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "order preserved" `Quick test_pool_preserves_order;
          Alcotest.test_case "empty & oversubscribed" `Quick
            test_pool_empty_and_oversubscribed;
          Alcotest.test_case "earliest failure wins" `Quick
            test_pool_raises_earliest_failure;
          QCheck_alcotest.to_alcotest prop_pool_order_any_completion_order;
        ] );
      ( "seeds",
        [
          Alcotest.test_case "count & list" `Quick test_seeds_count_and_list;
          Alcotest.test_case "rejections" `Quick test_seeds_rejections;
        ] );
      ( "campaign determinism",
        [
          Alcotest.test_case "honest matrix" `Quick test_campaign_jobs_identical_honest;
          Alcotest.test_case "violating matrix" `Quick
            test_campaign_jobs_identical_violation;
          Alcotest.test_case "on_cell order" `Quick test_campaign_on_cell_order;
        ] );
      ( "explore determinism",
        [
          Alcotest.test_case "no reduction" `Quick test_explore_jobs_identical_none;
          Alcotest.test_case "sleep sets" `Quick test_explore_jobs_identical_sleep_sets;
          Alcotest.test_case "crashes" `Quick test_explore_jobs_identical_crashes;
          Alcotest.test_case "truncation" `Quick test_explore_jobs_identical_truncated;
          Alcotest.test_case "first failure" `Quick test_explore_jobs_identical_failure;
          QCheck_alcotest.to_alcotest prop_explore_jobs_identical;
        ] );
      ( "domain-local state",
        [
          Alcotest.test_case "two live runtimes" `Quick test_span_two_live_runtimes;
          Alcotest.test_case "nested runtime" `Quick test_span_nested_runtime;
          Alcotest.test_case "observations cleared on enable" `Quick
            test_observations_cleared_on_enable;
        ] );
    ]
