(* Tests for the shared-memory simulator substrate. *)

open Exsel_sim

let test_register_basics () =
  let mem = Memory.create () in
  let r = Register.create mem ~name:"r" 0 in
  Alcotest.(check int) "initial" 0 (Register.peek r);
  Register.poke r 7;
  Alcotest.(check int) "poked" 7 (Register.peek r);
  Alcotest.(check int) "one register" 1 (Memory.registers mem)

let test_spawn_runs_to_first_op () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let side = ref 0 in
  let p =
    Runtime.spawn rt ~name:"p" (fun () ->
        side := 1;
        Runtime.write r 42)
  in
  Alcotest.(check int) "ran local prefix" 1 !side;
  Alcotest.(check bool) "pending write" true (Runtime.pending p = Some (Runtime.Write (Register.id r)));
  Alcotest.(check int) "not yet applied" 0 (Register.peek r);
  Runtime.commit rt p;
  Alcotest.(check int) "applied" 42 (Register.peek r);
  Alcotest.(check bool) "done" true (Runtime.status p = Runtime.Done);
  Alcotest.(check int) "one step" 1 (Runtime.steps p)

let test_read_sees_commit_time_value () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let got = ref (-1) in
  let reader = Runtime.spawn rt ~name:"reader" (fun () -> got := Runtime.read r) in
  let writer = Runtime.spawn rt ~name:"writer" (fun () -> Runtime.write r 9) in
  (* Reader suspended first, but the writer commits first: the read must
     observe the committed value, not the value at suspension time. *)
  Runtime.commit rt writer;
  Runtime.commit rt reader;
  Alcotest.(check int) "linearized read" 9 !got

let test_crash_stops_process () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let reached = ref false in
  let p =
    Runtime.spawn rt ~name:"p" (fun () ->
        Runtime.write r 1;
        reached := true;
        Runtime.write r 2)
  in
  Runtime.commit rt p;
  Alcotest.(check bool) "mid-body" true !reached;
  Runtime.crash rt p;
  Alcotest.(check bool) "crashed" true (Runtime.status p = Runtime.Crashed);
  Alcotest.(check int) "second write lost" 1 (Register.peek r);
  (* crash is idempotent *)
  Runtime.crash rt p;
  Alcotest.(check bool) "still crashed" true (Runtime.status p = Runtime.Crashed)

let test_round_robin_fairness () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let order = ref [] in
  Runtime.on_commit rt (fun p _ -> order := Runtime.proc_name p :: !order);
  let mk label =
    let r = Register.create mem ~name:label 0 in
    Runtime.spawn rt ~name:label (fun () ->
        for i = 1 to 3 do
          Runtime.write r i
        done)
  in
  let _a = mk "a" and _b = mk "b" and _c = mk "c" in
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check (list string))
    "cyclic order"
    [ "a"; "b"; "c"; "a"; "b"; "c"; "a"; "b"; "c" ]
    (List.rev !order);
  Alcotest.(check bool) "quiet" true (Runtime.all_quiet rt)

let test_lost_update_race_is_reachable () =
  (* A read-modify-write over one register loses updates under the
     all-read-then-all-write interleaving: the simulator must expose it. *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let procs =
    List.init 3 (fun i ->
        Runtime.spawn rt ~name:(string_of_int i) (fun () ->
            let v = Runtime.read r in
            Runtime.write r (v + 1)))
  in
  List.iter (fun p -> Runtime.commit rt p) procs (* all reads commit *);
  List.iter (fun p -> Runtime.commit rt p) procs (* all writes commit *);
  Alcotest.(check int) "updates lost" 1 (Register.peek r)

let test_random_schedule_deterministic () =
  let run seed =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let r = Register.create mem ~name:"r" 0 in
    for i = 0 to 4 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             let v = Runtime.read r in
             Runtime.write r (v + i)))
    done;
    Scheduler.run rt (Scheduler.random (Rng.create ~seed));
    Register.peek r
  in
  Alcotest.(check int) "same seed same result" (run 11) (run 11)

let test_stalled_detection () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let _p =
    Runtime.spawn rt ~name:"spinner" (fun () ->
        while Runtime.read r = 0 do
          ()
        done)
  in
  Alcotest.check_raises "budget exhausted" Runtime.Stalled (fun () ->
      Scheduler.run ~max_commits:50 rt (Scheduler.round_robin ()))

let test_crash_plan () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let mk i =
    Runtime.spawn rt ~name:(string_of_int i) (fun () ->
        for _ = 1 to 10 do
          let v = Runtime.read r in
          Runtime.write r (v + 1)
        done)
  in
  let p0 = mk 0 and _p1 = mk 1 in
  Scheduler.run rt
    (Scheduler.with_crashes ~crash_at:[ (3, 0) ] (Scheduler.round_robin ()));
  Alcotest.(check bool) "p0 crashed" true (Runtime.status p0 = Runtime.Crashed);
  Alcotest.(check bool) "quiet" true (Runtime.all_quiet rt)

let test_metrics () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let _p =
    Runtime.spawn rt ~name:"p" (fun () ->
        Runtime.write r 1;
        ignore (Runtime.read r))
  in
  Scheduler.run rt (Scheduler.round_robin ());
  let s = Metrics.of_runtime rt in
  Alcotest.(check int) "max steps" 2 s.Metrics.max_steps;
  Alcotest.(check int) "reads" 1 s.Metrics.reads;
  Alcotest.(check int) "writes" 1 s.Metrics.writes;
  Alcotest.(check int) "registers" 1 s.Metrics.registers

let test_sequential_policy () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let order = ref [] in
  Runtime.on_commit rt (fun p _ -> order := Runtime.proc_name p :: !order);
  let mk label =
    let r = Register.create mem ~name:label 0 in
    Runtime.spawn rt ~name:label (fun () ->
        Runtime.write r 1;
        Runtime.write r 2)
  in
  let _a = mk "a" and _b = mk "b" in
  Scheduler.run rt (Scheduler.sequential ());
  Alcotest.(check (list string)) "a runs to completion first" [ "a"; "a"; "b"; "b" ]
    (List.rev !order)

let test_run_for_partial () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let _p =
    Runtime.spawn rt ~name:"p" (fun () ->
        for i = 1 to 10 do
          Runtime.write r i
        done)
  in
  Scheduler.run_for rt ~commits:3 (Scheduler.round_robin ());
  Alcotest.(check int) "three commits happened" 3 (Runtime.commits rt);
  Alcotest.(check int) "register reflects them" 3 (Register.peek r);
  Alcotest.(check bool) "work remains" true (not (Runtime.all_quiet rt));
  (* run_for never raises even when asked for more than remains *)
  Scheduler.run_for rt ~commits:1_000 (Scheduler.round_robin ());
  Alcotest.(check bool) "finished" true (Runtime.all_quiet rt)

let test_trace_records_linearization () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let trace = Trace.attach rt in
  let r = Register.create mem ~name:"r" 0 in
  let s = Register.create mem ~name:"s" 0 in
  Register.set_printer r string_of_int;
  Register.set_printer s string_of_int;
  let _p =
    Runtime.spawn rt ~name:"p" (fun () ->
        Runtime.write r 1;
        ignore (Runtime.read s))
  in
  let _q = Runtime.spawn rt ~name:"q" (fun () -> Runtime.write s 9) in
  Scheduler.run rt (Scheduler.round_robin ());
  (* 2 spawns + 3 commits + 2 completions *)
  let events = Trace.events trace in
  Alcotest.(check int) "seven events" 7 (List.length events);
  Alcotest.(check (list int)) "indices sequential" [ 0; 1; 2; 3; 4; 5; 6 ]
    (List.map (fun e -> e.Trace.index) events);
  Alcotest.(check bool) "forward list is cached" true
    (Trace.events trace == Trace.events trace);
  (* round-robin: p writes r:=1, q writes s:=9 (and finishes), p reads s=9 *)
  let values =
    List.filter_map
      (fun e ->
        match e.Trace.kind with
        | Trace.Write { reg_name; value; _ } -> Some (reg_name ^ ":=" ^ value)
        | Trace.Read { reg_name; value; _ } -> Some (reg_name ^ "=" ^ value)
        | Trace.Spawn | Trace.Done | Trace.Crash -> None)
      events
  in
  Alcotest.(check (list string))
    "values captured in linearization order"
    [ "r:=1"; "s:=9"; "s=9" ] values;
  Alcotest.(check int) "p has four events" 4 (List.length (Trace.by_process trace 0));
  Alcotest.(check int) "one write to s" 1
    (List.length (Trace.writes_to trace (Register.id s)));
  (* pretty-printing exercises the formatter paths *)
  let rendered = Format.asprintf "%a" Trace.pp trace in
  Alcotest.(check bool) "render mentions both procs" true
    (String.length rendered > 0)

let test_trace_attach_midway () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let p =
    Runtime.spawn rt ~name:"p" (fun () ->
        Runtime.write r 1;
        Runtime.write r 2)
  in
  Runtime.commit rt p;
  let trace = Trace.attach rt in
  Runtime.commit rt p;
  (* synthesized Spawn + the post-attach commit + Done; the pre-attach
     commit is not recorded *)
  Alcotest.(check int) "spawn+write+done" 3 (Trace.length trace);
  let kinds = List.map (fun e -> e.Trace.kind) (Trace.events trace) in
  (match kinds with
  | [ Trace.Spawn; Trace.Write w; Trace.Done ] ->
      (* no printer installed: values render as fingerprint hashes *)
      Alcotest.(check bool) "fallback fingerprint" true
        (String.length w.value = 7 && w.value.[0] = '#')
  | _ -> Alcotest.fail "unexpected event kinds");
  Alcotest.(check int) "register reflects both writes" 2 (Register.peek r)

let test_trace_lifecycle_crash () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let trace = Trace.attach rt in
  let r = Register.create mem ~name:"r" 0 in
  let p =
    Runtime.spawn rt ~name:"p" (fun () ->
        Runtime.write r 1;
        Runtime.write r 2)
  in
  Runtime.commit rt p;
  Runtime.crash rt p;
  let kinds = List.map (fun e -> e.Trace.kind) (Trace.events trace) in
  (match kinds with
  | [ Trace.Spawn; Trace.Write _; Trace.Crash ] -> ()
  | _ -> Alcotest.fail "expected spawn/write/crash");
  Alcotest.(check int) "crash event at p's step count" 1
    (List.nth (Trace.events trace) 2).Trace.step

let test_metrics_pp () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let s = Format.asprintf "%a" Metrics.pp (Metrics.of_runtime rt) in
  Alcotest.(check bool) "renders" true (String.length s > 10)

let test_random_crashes_policy () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let mk i =
    let r = Register.create mem ~name:(string_of_int i) 0 in
    Runtime.spawn rt ~name:(string_of_int i) (fun () ->
        for j = 1 to 20 do
          Runtime.write r j
        done)
  in
  let p0 = mk 0 and p1 = mk 1 in
  let rng = Rng.create ~seed:3 in
  Scheduler.run rt
    (Scheduler.random_crashes rng ~victims:[ 0 ] ~prob:0.5
       (Scheduler.round_robin ()));
  Alcotest.(check bool) "victim crashed with these dice" true
    (Runtime.status p0 = Runtime.Crashed);
  Alcotest.(check bool) "non-victim finished" true (Runtime.status p1 = Runtime.Done)

let test_commit_on_finished_rejected () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let p = Runtime.spawn rt ~name:"p" (fun () -> Runtime.write r 1) in
  Runtime.commit rt p;
  Alcotest.(check bool) "no pending after done" true (Runtime.pending p = None);
  Alcotest.(check bool) "commit on done rejected" true
    (try Runtime.commit rt p; false with Invalid_argument _ -> true)

let test_multiple_commit_hooks () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let a = ref 0 and b = ref 0 in
  Runtime.on_commit rt (fun _ _ -> incr a);
  Runtime.on_commit rt (fun _ _ -> incr b);
  let _p = Runtime.spawn rt ~name:"p" (fun () -> Runtime.write r 1) in
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check (pair int int)) "both hooks fired" (1, 1) (!a, !b)

let test_spawn_after_partial_run () =
  (* late arrivals join a running execution *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let _p1 = Runtime.spawn rt ~name:"p1" (fun () -> Runtime.write r 1) in
  Scheduler.run rt (Scheduler.round_robin ());
  let _p2 = Runtime.spawn rt ~name:"p2" (fun () -> Runtime.write r 2) in
  Scheduler.run rt (Scheduler.round_robin ());
  Alcotest.(check int) "late write landed" 2 (Register.peek r);
  Alcotest.(check int) "two procs tracked" 2 (List.length (Runtime.procs rt))

let test_linearize_basic () =
  let writes =
    [
      { Linearize.at = 2; location = 0; value = 1 };
      { Linearize.at = 5; location = 0; value = 2 };
      { Linearize.at = 3; location = 1; value = 9 };
    ]
  in
  let init _ = 0 in
  (* view {0->1, 1->9} is current exactly during [3,5) — window [0,10] ok *)
  Alcotest.(check bool) "cut exists" true
    (Linearize.consistent_cut ~writes ~window:(0, 10) ~view:[ (0, 1); (1, 9) ] ~init);
  (* view {0->2, 1->0} impossible: location 1 became 9 at 3 < 5 *)
  Alcotest.(check bool) "impossible cut rejected" false
    (Linearize.consistent_cut ~writes ~window:(0, 10) ~view:[ (0, 2); (1, 0) ] ~init);
  (* window too early for value 2 *)
  Alcotest.(check bool) "window constrains" false
    (Linearize.consistent_cut ~writes ~window:(0, 4) ~view:[ (0, 2) ] ~init);
  (* initial values before any write *)
  Alcotest.(check bool) "initial cut" true
    (Linearize.consistent_cut ~writes ~window:(0, 1) ~view:[ (0, 0); (1, 0) ] ~init)

let test_linearize_windows () =
  let writes =
    [
      { Linearize.at = 2; location = 7; value = "a" };
      { Linearize.at = 6; location = 7; value = "b" };
      { Linearize.at = 9; location = 7; value = "a" };
    ]
  in
  Alcotest.(check (list (pair int int))) "two windows for a"
    [ (2, 6); (9, max_int) ]
    (Linearize.validity_windows ~writes ~location:7 ~value:"a" ~init:(fun _ -> ""));
  Alcotest.(check (list (pair int int))) "init window"
    [ (-1, 2) ]
    (Linearize.validity_windows ~writes ~location:7 ~value:"" ~init:(fun _ -> ""))

let test_rng_bounds =
  QCheck.Test.make ~name:"rng int within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_rng_split_independent () =
  let rng = Rng.create ~seed:1 in
  let a = Rng.split rng in
  let b = Rng.split rng in
  Alcotest.(check bool) "split streams differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_shuffle_permutation =
  QCheck.Test.make ~name:"rng shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      Rng.shuffle (Rng.create ~seed) a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

(* --- runnable index: consistency with proc status across transitions --- *)

let check_runnable_consistent label rt =
  let by_status =
    List.filter (fun p -> Runtime.status p = Runtime.Runnable) (Runtime.procs rt)
  in
  let expected = List.map Runtime.pid by_status in
  Alcotest.(check (list int))
    (label ^ ": runnable matches statuses, in pid order")
    expected
    (List.map Runtime.pid (Runtime.runnable rt));
  Alcotest.(check int) (label ^ ": num_runnable") (List.length expected)
    (Runtime.num_runnable rt);
  Alcotest.(check bool) (label ^ ": all_quiet") (expected = []) (Runtime.all_quiet rt);
  List.iteri
    (fun k pid ->
      Alcotest.(check int)
        (Printf.sprintf "%s: nth_runnable %d" label k)
        pid
        (Runtime.pid (Runtime.nth_runnable rt k));
      Alcotest.(check (option int))
        (Printf.sprintf "%s: rank of p%d" label pid)
        (Some k)
        (Runtime.runnable_rank (Runtime.proc_by_pid rt pid)))
    expected;
  List.iter
    (fun p ->
      if Runtime.status p <> Runtime.Runnable then
        Alcotest.(check (option int))
          (Printf.sprintf "%s: p%d has no rank" label (Runtime.pid p))
          None
          (Runtime.runnable_rank p))
    (Runtime.procs rt)

let test_runnable_index_transitions () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  check_runnable_consistent "empty" rt;
  let spawn i =
    Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
        Runtime.write r i;
        ignore (Runtime.read r);
        Runtime.write r (i + 10))
  in
  let p0 = spawn 0 in
  check_runnable_consistent "after spawn p0" rt;
  let p1 = spawn 1 in
  let p2 = spawn 2 in
  check_runnable_consistent "after spawn p1 p2" rt;
  (* a body that finishes inside spawn never enters the index *)
  let side = ref false in
  let p3 = Runtime.spawn rt ~name:"p3" (fun () -> side := true) in
  Alcotest.(check bool) "p3 ran" true !side;
  Alcotest.(check bool) "p3 done" true (Runtime.status p3 = Runtime.Done);
  check_runnable_consistent "after no-op spawn" rt;
  (* commits in arbitrary order keep mid-flight procs runnable *)
  Runtime.commit rt p1;
  Runtime.commit rt p0;
  Runtime.commit rt p2;
  check_runnable_consistent "mid-flight" rt;
  (* crash the middle pid: shift-remove must keep pid order and ranks *)
  Runtime.crash rt p1;
  Alcotest.(check bool) "p1 crashed" true (Runtime.status p1 = Runtime.Crashed);
  check_runnable_consistent "after crash p1" rt;
  (* crash is idempotent and leaves the index alone *)
  Runtime.crash rt p1;
  check_runnable_consistent "after double crash" rt;
  (* run p0 to Done: it must leave the index exactly when status flips *)
  Runtime.commit rt p0;
  Runtime.commit rt p0;
  Alcotest.(check bool) "p0 done" true (Runtime.status p0 = Runtime.Done);
  check_runnable_consistent "after p0 done" rt;
  (* late spawn re-enters scheduling after others finished *)
  let p4 = spawn 4 in
  check_runnable_consistent "after late spawn" rt;
  Alcotest.(check (option int))
    "next_runnable_after cursor"
    (Some (Runtime.pid p4))
    (Option.map Runtime.pid (Runtime.next_runnable_after rt (Runtime.pid p2)));
  Scheduler.run rt (Scheduler.round_robin ());
  check_runnable_consistent "quiescent" rt;
  Alcotest.(check int) "max_steps maintained" 3 (Runtime.max_steps rt)

let test_rng_pick_matches_nth =
  QCheck.Test.make ~name:"rng pick matches historical nth idiom" ~count:300
    QCheck.(pair small_int (list_of_size Gen.(1 -- 20) small_int))
    (fun (seed, xs) ->
      QCheck.assume (xs <> []);
      let a = Rng.pick (Rng.create ~seed) xs in
      let rng = Rng.create ~seed in
      let b = List.nth xs (Rng.int rng (List.length xs)) in
      a = b)

let test_rng_pick_weighted () =
  let rng = Rng.create ~seed:7 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 3000 do
    let x, j = Rng.pick_weighted rng [ ("a", 1); ("b", 0); ("c", 3) ] in
    Alcotest.(check bool) "offset within weight" true
      (j >= 0 && j < if x = "a" then 1 else 3);
    Alcotest.(check bool) "zero-weight never chosen" true (x <> "b");
    Hashtbl.replace counts x (1 + try Hashtbl.find counts x with Not_found -> 0)
  done;
  let c = try Hashtbl.find counts "c" with Not_found -> 0 in
  let a = try Hashtbl.find counts "a" with Not_found -> 0 in
  Alcotest.(check bool) "roughly 3:1 ratio" true (c > 2 * a && a > 0);
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Rng.pick_weighted rng []);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "exsel_sim"
    [
      ( "register",
        [
          Alcotest.test_case "basics" `Quick test_register_basics;
          Alcotest.test_case "metrics" `Quick test_metrics;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "spawn runs to first op" `Quick test_spawn_runs_to_first_op;
          Alcotest.test_case "read sees commit-time value" `Quick test_read_sees_commit_time_value;
          Alcotest.test_case "crash stops process" `Quick test_crash_stops_process;
          Alcotest.test_case "stalled detection" `Quick test_stalled_detection;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "round robin fairness" `Quick test_round_robin_fairness;
          Alcotest.test_case "lost-update race reachable" `Quick test_lost_update_race_is_reachable;
          Alcotest.test_case "random deterministic" `Quick test_random_schedule_deterministic;
          Alcotest.test_case "crash plan" `Quick test_crash_plan;
          Alcotest.test_case "sequential policy" `Quick test_sequential_policy;
          Alcotest.test_case "run_for partial" `Quick test_run_for_partial;
          Alcotest.test_case "random crashes policy" `Quick test_random_crashes_policy;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records linearization" `Quick test_trace_records_linearization;
          Alcotest.test_case "attach midway" `Quick test_trace_attach_midway;
          Alcotest.test_case "lifecycle crash" `Quick test_trace_lifecycle_crash;
          Alcotest.test_case "metrics pp" `Quick test_metrics_pp;
          Alcotest.test_case "commit on finished" `Quick test_commit_on_finished_rejected;
          Alcotest.test_case "multiple hooks" `Quick test_multiple_commit_hooks;
          Alcotest.test_case "late spawn" `Quick test_spawn_after_partial_run;
          Alcotest.test_case "linearize basic" `Quick test_linearize_basic;
          Alcotest.test_case "linearize windows" `Quick test_linearize_windows;
        ] );
      ( "rng",
        [
          QCheck_alcotest.to_alcotest test_rng_bounds;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          QCheck_alcotest.to_alcotest test_rng_shuffle_permutation;
          QCheck_alcotest.to_alcotest test_rng_pick_matches_nth;
          Alcotest.test_case "pick_weighted" `Quick test_rng_pick_weighted;
        ] );
      ( "runnable-index",
        [
          Alcotest.test_case "consistent across transitions" `Quick
            test_runnable_index_transitions;
        ] );
    ]
