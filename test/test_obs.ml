(* Tests for the observability layer: Metrics.of_runtime against a
   hand-scheduled execution, the register probe against a deliberately
   contended schedule, the span sink, and the JSON encoder (escaping
   plus shape checks round-tripped through Exsel_testkit.Json_parse —
   the shared parser CI's validate_docs uses too). *)

open Exsel_sim
module Json = Exsel_obs.Json
module Probe = Exsel_obs.Probe
module Span = Exsel_obs.Span
module JP = Exsel_testkit.Json_parse

let parse_json s = JP.parse s
let roundtrip = JP.roundtrip

(* Json_parse's accessors raise Parse; surface that as the alcotest
   failure message so a shape regression names the field. *)
let wrap f key j = try f key j with JP.Parse msg -> Alcotest.failf "%s" msg
let get_int key j = wrap JP.get_int key j
let get_list key j = wrap JP.get_list key j
let get_string key j = wrap JP.get_string key j

(* ------------------------------------------------------------------ *)
(* Metrics.of_runtime on a hand-scheduled execution                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_hand_scheduled () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let a = Register.create mem ~name:"a" 0 in
  let b = Register.create mem ~name:"b" 0 in
  (* p0: write a; read b  — 2 steps, completes
     p1: write a; write b — 1 step committed, then crashes
     p2: read a           — 1 step, completes *)
  let p0 =
    Runtime.spawn rt ~name:"p0" (fun () ->
        Runtime.write a 1;
        ignore (Runtime.read b))
  in
  let p1 =
    Runtime.spawn rt ~name:"p1" (fun () ->
        Runtime.write a 2;
        Runtime.write b 9)
  in
  let p2 = Runtime.spawn rt ~name:"p2" (fun () -> ignore (Runtime.read a)) in
  Runtime.commit rt p1;
  Runtime.commit rt p0;
  Runtime.crash rt p1;
  Runtime.commit rt p2;
  Runtime.commit rt p0;
  let s = Metrics.of_runtime rt in
  Alcotest.(check int) "processes" 3 s.Metrics.processes;
  Alcotest.(check int) "completed" 2 s.Metrics.completed;
  Alcotest.(check int) "crashed" 1 s.Metrics.crashed;
  Alcotest.(check int) "max steps" 2 s.Metrics.max_steps;
  Alcotest.(check int) "total steps" 4 s.Metrics.total_steps;
  Alcotest.(check int) "registers" 2 s.Metrics.registers;
  Alcotest.(check int) "reads" 2 s.Metrics.reads;
  Alcotest.(check int) "writes" 2 s.Metrics.writes

(* ------------------------------------------------------------------ *)
(* Probe                                                               *)
(* ------------------------------------------------------------------ *)

let test_probe_peak_contention () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let hot = Register.create mem ~name:"hot" 0 in
  let cold = Register.create mem ~name:"cold" 0 in
  (* all three suspend on [hot] first: peak pending contention 3, sampled
     by the probe's initial scan; then they separate *)
  let p0 =
    Runtime.spawn rt ~name:"p0" (fun () ->
        Runtime.write hot 1;
        ignore (Runtime.read cold))
  in
  let p1 = Runtime.spawn rt ~name:"p1" (fun () -> Runtime.write hot 2) in
  let p2 = Runtime.spawn rt ~name:"p2" (fun () -> ignore (Runtime.read hot)) in
  let probe = Probe.attach rt in
  Runtime.commit rt p0;
  Runtime.commit rt p1;
  Runtime.commit rt p2;
  Runtime.commit rt p0;
  let r = Probe.report probe in
  Alcotest.(check int) "registers = memory registers" (Memory.registers mem) r.Probe.registers;
  Alcotest.(check int) "touched" 2 r.Probe.touched;
  Alcotest.(check int) "peak pending" 3 r.Probe.peak_pending;
  Alcotest.(check int) "max distinct writers" 2 r.Probe.max_writers;
  let hot_p =
    List.find (fun (p : Probe.reg_profile) -> p.Probe.id = Register.id hot) r.Probe.profiles
  in
  Alcotest.(check int) "hot reads" 1 hot_p.Probe.reads;
  Alcotest.(check int) "hot writes" 2 hot_p.Probe.writes;
  Alcotest.(check int) "hot writers" 2 hot_p.Probe.writers;
  Alcotest.(check int) "hot peak" 3 hot_p.Probe.peak_pending;
  let cold_p =
    List.find (fun (p : Probe.reg_profile) -> p.Probe.id = Register.id cold) r.Probe.profiles
  in
  Alcotest.(check int) "cold peak" 1 cold_p.Probe.peak_pending;
  Alcotest.(check (list (pair int int))) "steps histogram" [ (1, 2); (2, 1) ]
    r.Probe.steps_histogram

let test_probe_totals_match_summary () =
  (* a real algorithm run under a random schedule: every committed access
     must land in exactly one register profile *)
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let e =
    Exsel_renaming.Efficient_rename.create ~rng:(Rng.create ~seed:17) mem ~name:"ef" ~k:6
  in
  List.iteri
    (fun i me ->
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
             ignore (Exsel_renaming.Efficient_rename.rename e ~me))))
    [ 3; 14; 15; 92; 65; 35 ];
  let probe = Probe.attach rt in
  Scheduler.run rt (Scheduler.random (Rng.create ~seed:18));
  let s = Metrics.of_runtime rt in
  let r = Probe.report probe in
  let reads = List.fold_left (fun acc (p : Probe.reg_profile) -> acc + p.Probe.reads) 0 r.Probe.profiles in
  let writes = List.fold_left (fun acc (p : Probe.reg_profile) -> acc + p.Probe.writes) 0 r.Probe.profiles in
  Alcotest.(check int) "probe reads = summary reads" s.Metrics.reads reads;
  Alcotest.(check int) "probe writes = summary writes" s.Metrics.writes writes;
  Alcotest.(check int) "probe registers = summary registers" s.Metrics.registers
    r.Probe.registers

(* ------------------------------------------------------------------ *)
(* Span                                                                *)
(* ------------------------------------------------------------------ *)

let test_span_tree_and_deltas () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let sink = Span.attach rt in
  let p =
    Runtime.spawn rt ~name:"p" (fun () ->
        Span.wrap "outer:phase=a" (fun () ->
            Runtime.write r 1;
            Span.wrap "inner:phase=b" (fun () -> ignore (Runtime.read r));
            Runtime.write r 2))
  in
  Runtime.commit rt p;
  Runtime.commit rt p;
  Runtime.commit rt p;
  (match Span.per_process sink with
  | [ (pid, name, [ outer ]) ] ->
      Alcotest.(check int) "pid" (Runtime.pid p) pid;
      Alcotest.(check string) "proc name" "p" name;
      Alcotest.(check string) "outer label" "outer:phase=a" outer.Span.label;
      Alcotest.(check int) "outer steps" 3 outer.Span.steps;
      Alcotest.(check int) "outer reads" 1 outer.Span.reads;
      Alcotest.(check int) "outer writes" 2 outer.Span.writes;
      Alcotest.(check bool) "outer complete" true outer.Span.complete;
      (match Span.children outer with
      | [ inner ] ->
          Alcotest.(check string) "inner label" "inner:phase=b" inner.Span.label;
          Alcotest.(check int) "inner steps" 1 inner.Span.steps;
          Alcotest.(check int) "inner reads" 1 inner.Span.reads;
          Alcotest.(check int) "inner writes" 0 inner.Span.writes
      | l -> Alcotest.failf "expected one child, got %d" (List.length l))
  | _ -> Alcotest.fail "expected one process with one root span");
  Span.detach sink

let test_span_incomplete_on_crash () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let sink = Span.attach rt in
  let p =
    Runtime.spawn rt ~name:"p" (fun () ->
        Span.wrap "doomed:phase=x" (fun () ->
            Runtime.write r 1;
            Runtime.write r 2))
  in
  Runtime.commit rt p;
  Runtime.crash rt p;
  (match Span.per_process sink with
  | [ (_, _, [ node ]) ] ->
      Alcotest.(check string) "label" "doomed:phase=x" node.Span.label;
      Alcotest.(check bool) "incomplete" false node.Span.complete;
      Alcotest.(check int) "steps before crash" 1 node.Span.steps
  | _ -> Alcotest.fail "expected one crashed span");
  let aggs = Span.aggregate sink in
  (match aggs with
  | [ a ] ->
      Alcotest.(check string) "agg label" "doomed:phase=x" a.Span.agg_label;
      Alcotest.(check int) "agg count" 1 a.Span.count;
      Alcotest.(check int) "agg incomplete" 1 a.Span.incomplete
  | _ -> Alcotest.fail "expected one aggregate");
  Span.detach sink

let test_span_noop_without_sink () =
  (* wrap must be transparent when no sink is attached *)
  Alcotest.(check int) "value" 42 (Span.wrap "whatever" (fun () -> 42))

(* ------------------------------------------------------------------ *)
(* JSON encoder                                                        *)
(* ------------------------------------------------------------------ *)

let test_json_escaping () =
  let v =
    Json.Obj
      [
        ("plain", Json.String "hello");
        ("quote", Json.String "say \"hi\"");
        ("backslash", Json.String "a\\b");
        ("control", Json.String "line1\nline2\ttab");
        ("unit", Json.String "\001");
      ]
  in
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let s = Json.to_string v in
  Alcotest.(check bool) "escapes quote" true (contains ~sub:{|say \"hi\"|} s);
  Alcotest.(check bool) "escapes backslash" true (contains ~sub:{|a\\b|} s);
  Alcotest.(check bool) "escapes newline" true (contains ~sub:{|line1\nline2\ttab|} s);
  Alcotest.(check bool) "escapes control" true (contains ~sub:{|\u0001|} s);
  (* the authoritative check: our parser round-trips the strings *)
  match roundtrip v with
  | Json.Obj fields ->
      List.iter
        (fun (k, expected) ->
          match (List.assoc k fields, expected) with
          | Json.String got, Json.String want ->
              Alcotest.(check string) ("roundtrip " ^ k) want got
          | _ -> Alcotest.fail "non-string field")
        (match v with Json.Obj f -> f | _ -> []);
  | _ -> Alcotest.fail "expected object"

let test_json_unicode_escapes () =
  (* Other writers (python's json.dump) escape non-ASCII as \uXXXX;
     the parser must decode them to the UTF-8 bytes our own writer
     emits raw, pairing UTF-16 surrogates into one scalar. *)
  let str j = match j with Json.String s -> s | _ -> Alcotest.fail "string" in
  Alcotest.(check string) "ascii" "A" (str (JP.parse {|"A"|}));
  Alcotest.(check string) "latin-1" "\xc2\xb5"
    (str (JP.parse {|"\u00b5"|}));
  Alcotest.(check string) "em dash" "\xe2\x80\x94"
    (str (JP.parse {|"\u2014"|}));
  Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80"
    (str (JP.parse {|"\ud83d\ude00"|}));
  Alcotest.(check string) "raw utf-8 passthrough" "\xc2\xb5"
    (str (JP.parse "\"\xc2\xb5\""));
  Alcotest.(check string) "lone surrogate replaced" "\xef\xbf\xbd"
    (str (JP.parse {|"\ud83d"|}));
  Alcotest.check_raises "bad hex"
    (JP.Parse "bad \\u escape at 6")
    (fun () -> ignore (JP.parse {|"\uzzzz"|}))

let test_json_values_roundtrip () =
  let v =
    Json.List
      [
        Json.Null;
        Json.Bool true;
        Json.Bool false;
        Json.Int (-3);
        Json.Int 0;
        Json.Float 2.5;
        Json.List [];
        Json.Obj [];
      ]
  in
  Alcotest.(check string) "compact form"
    "[null,true,false,-3,0,2.5,[],{}]" (Json.to_string v);
  Alcotest.(check bool) "pretty parses too"
    true (parse_json (Json.to_string_pretty v) = v);
  Alcotest.(check bool) "roundtrip" true (roundtrip v = v)

let test_json_nonfinite_floats () =
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float nan));
  Alcotest.(check string) "inf is null" "null" (Json.to_string (Json.Float infinity))

let test_json_of_summary_shape () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let p = Runtime.spawn rt ~name:"p" (fun () -> Runtime.write r 5) in
  Runtime.commit rt p;
  let s = Metrics.of_runtime rt in
  let j = roundtrip (Json.of_summary s) in
  Alcotest.(check int) "processes" 1 (get_int "processes" j);
  Alcotest.(check int) "completed" 1 (get_int "completed" j);
  Alcotest.(check int) "crashed" 0 (get_int "crashed" j);
  Alcotest.(check int) "registers" 1 (get_int "registers" j);
  Alcotest.(check int) "writes" 1 (get_int "writes" j)

let test_json_probe_shape () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let p0 = Runtime.spawn rt ~name:"p0" (fun () -> Runtime.write r 1) in
  let p1 = Runtime.spawn rt ~name:"p1" (fun () -> Runtime.write r 2) in
  let probe = Probe.attach rt in
  Runtime.commit rt p0;
  Runtime.commit rt p1;
  let j = roundtrip (Probe.to_json (Probe.report probe)) in
  Alcotest.(check string) "schema" "exsel-probe/1" (get_string "schema" j);
  Alcotest.(check int) "registers" 1 (get_int "registers" j);
  Alcotest.(check int) "peak_pending" 2 (get_int "peak_pending" j);
  match get_list "profiles" j with
  | [ prof ] ->
      Alcotest.(check int) "profile id" (Register.id r) (get_int "id" prof);
      Alcotest.(check int) "profile writes" 2 (get_int "writes" prof);
      Alcotest.(check int) "profile writers" 2 (get_int "writers" prof)
  | l -> Alcotest.failf "expected one profile, got %d" (List.length l)

let test_json_span_tree_shape () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"r" 0 in
  let sink = Span.attach rt in
  let p =
    Runtime.spawn rt ~name:"p" (fun () ->
        Span.wrap "outer:phase=a" (fun () ->
            Span.wrap "inner:phase=b" (fun () -> Runtime.write r 1)))
  in
  Runtime.commit rt p;
  let j = roundtrip (Span.to_json sink) in
  Span.detach sink;
  match get_list "processes" j with
  | [ proc ] -> (
      Alcotest.(check string) "proc" "p" (get_string "proc" proc);
      match get_list "spans" proc with
      | [ outer ] -> (
          Alcotest.(check string) "outer label" "outer:phase=a" (get_string "label" outer);
          match get_list "children" outer with
          | [ inner ] ->
              Alcotest.(check string) "inner label" "inner:phase=b"
                (get_string "label" inner);
              Alcotest.(check int) "inner writes" 1 (get_int "writes" inner)
          | l -> Alcotest.failf "expected one child, got %d" (List.length l))
      | l -> Alcotest.failf "expected one root span, got %d" (List.length l))
  | l -> Alcotest.failf "expected one process, got %d" (List.length l)

let test_json_table_shape () =
  let t =
    Exsel_harness.Table.make ~id:"T0" ~title:"a \"quoted\" title"
      ~header:[ "k"; "steps" ]
      ~notes:[ "note" ]
      [ [ "1"; "10" ]; [ "2"; "20" ] ]
  in
  let j = roundtrip (Exsel_harness.Table.to_json t) in
  Alcotest.(check string) "id" "T0" (get_string "id" j);
  Alcotest.(check string) "title" "a \"quoted\" title" (get_string "title" j);
  (match get_list "header" j with
  | [ Json.String "k"; Json.String "steps" ] -> ()
  | _ -> Alcotest.fail "bad header");
  match get_list "rows" j with
  | [ Json.List [ Json.String "1"; Json.String "10" ]; Json.List _ ] -> ()
  | _ -> Alcotest.fail "bad rows"

(* --- trace export: exsel-trace/1 and Chrome trace-event documents --- *)

module Trace_export = Exsel_obs.Trace_export

(* two processes racing on one printed register, with a phase span on p *)
let export_fixture () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let sink = Span.attach rt in
  let trace = Trace.attach rt in
  let r = Register.create mem ~name:"r" 0 in
  Register.set_printer r string_of_int;
  let p =
    Runtime.spawn rt ~name:"p" (fun () ->
        Span.wrap "phase:a" (fun () ->
            Runtime.write r 1;
            ignore (Runtime.read r)))
  in
  let q = Runtime.spawn rt ~name:"q" (fun () -> Runtime.write r 7) in
  Runtime.commit rt p;
  Runtime.commit rt q;
  Runtime.commit rt p;
  Span.detach sink;
  (trace, sink)

let test_trace_export_shape () =
  let trace, _sink = export_fixture () in
  let j = roundtrip (Trace_export.to_json ~label:"fixture" (Trace.events trace)) in
  Alcotest.(check string) "schema" "exsel-trace/1" (get_string "schema" j);
  Alcotest.(check string) "label" "fixture" (get_string "label" j);
  (* 2 spawns + 3 commits + 2 dones *)
  Alcotest.(check int) "length" 7 (get_int "length" j);
  (match get_list "processes" j with
  | [ p0; p1 ] ->
      Alcotest.(check string) "pid 0 name" "p" (get_string "proc" p0);
      Alcotest.(check string) "pid 1 name" "q" (get_string "proc" p1)
  | l -> Alcotest.failf "expected two processes, got %d" (List.length l));
  let events = get_list "events" j in
  Alcotest.(check int) "events listed" 7 (List.length events);
  let kinds = List.map (get_string "kind") events in
  Alcotest.(check (list string)) "kinds in order"
    [ "spawn"; "spawn"; "write"; "write"; "done"; "read"; "done" ]
    kinds;
  (* value-carrying: p's read sees q's overwrite *)
  let read_ev = List.find (fun e -> get_string "kind" e = "read") events in
  Alcotest.(check string) "read value" "7" (get_string "value" read_ev);
  Alcotest.(check string) "read register name" "r" (get_string "reg_name" read_ev)

let test_chrome_export_shape () =
  let trace, sink = export_fixture () in
  let j = roundtrip (Trace_export.chrome ~spans:sink (Trace.events trace)) in
  Alcotest.(check string) "time unit" "ms" (get_string "displayTimeUnit" j);
  let evs = get_list "traceEvents" j in
  let by_name n = List.filter (fun e -> get_string "name" e = n) evs in
  let by_ph ph = List.filter (fun e -> get_string "ph" e = ph) evs in
  Alcotest.(check int) "one track (thread_name) per process" 2
    (List.length (by_name "thread_name"));
  Alcotest.(check int) "one process_name record" 1
    (List.length (by_name "process_name"));
  (* every trace event becomes one instant; spans become X events *)
  Alcotest.(check int) "instants" 7 (List.length (by_ph "i"));
  (match by_ph "X" with
  | [ span ] ->
      Alcotest.(check string) "span label" "phase:a" (get_string "name" span);
      Alcotest.(check int) "span starts at clock 0" 0 (get_int "ts" span);
      (* the span covers p's two commits: clock 0 to 3 = 3000 us *)
      Alcotest.(check int) "span duration scaled x1000" 3000 (get_int "dur" span)
  | l -> Alcotest.failf "expected one X event, got %d" (List.length l));
  (* instants carry the scaled commit clock *)
  let reads = List.filter (fun e -> get_string "name" e = "read r=7") evs in
  match reads with
  | [ rd ] -> Alcotest.(check int) "instant ts scaled x1000" 3000 (get_int "ts" rd)
  | l -> Alcotest.failf "expected one read instant, got %d" (List.length l)

let test_chrome_export_custom_scale () =
  let trace, sink = export_fixture () in
  let j =
    roundtrip (Trace_export.chrome ~spans:sink ~us_per_commit:10 (Trace.events trace))
  in
  let evs = get_list "traceEvents" j in
  (match List.filter (fun e -> get_string "ph" e = "X") evs with
  | [ span ] ->
      Alcotest.(check int) "span start still 0" 0 (get_int "ts" span);
      Alcotest.(check int) "span duration scaled x10" 30 (get_int "dur" span)
  | l -> Alcotest.failf "expected one X event, got %d" (List.length l));
  Alcotest.check_raises "rejects non-positive scale"
    (Invalid_argument "Trace_export.chrome: us_per_commit must be positive")
    (fun () -> ignore (Trace_export.chrome ~us_per_commit:0 (Trace.events trace)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [ Alcotest.test_case "hand-scheduled summary" `Quick test_metrics_hand_scheduled ] );
      ( "probe",
        [
          Alcotest.test_case "peak contention" `Quick test_probe_peak_contention;
          Alcotest.test_case "totals match summary" `Quick test_probe_totals_match_summary;
        ] );
      ( "span",
        [
          Alcotest.test_case "tree and deltas" `Quick test_span_tree_and_deltas;
          Alcotest.test_case "incomplete on crash" `Quick test_span_incomplete_on_crash;
          Alcotest.test_case "no-op without sink" `Quick test_span_noop_without_sink;
        ] );
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
          Alcotest.test_case "values roundtrip" `Quick test_json_values_roundtrip;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite_floats;
          Alcotest.test_case "summary shape" `Quick test_json_of_summary_shape;
          Alcotest.test_case "probe shape" `Quick test_json_probe_shape;
          Alcotest.test_case "span tree shape" `Quick test_json_span_tree_shape;
          Alcotest.test_case "table shape" `Quick test_json_table_shape;
        ] );
      ( "trace-export",
        [
          Alcotest.test_case "exsel-trace/1 shape" `Quick test_trace_export_shape;
          Alcotest.test_case "chrome trace shape" `Quick test_chrome_export_shape;
          Alcotest.test_case "chrome custom us_per_commit" `Quick
            test_chrome_export_custom_scale;
        ] );
    ]
