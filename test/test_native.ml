(* Tests for the native OCaml 5 backend (DESIGN.md §12): the pure
   decision-log claim checker shared with the conformance adapters, the
   one-shot domain-pool engine, register accounting on the atomic
   backend, cross-validation of every ported renaming algorithm against
   the paper's claims across several domain counts and repeated trials,
   and the harness's metrics observation. *)

module Claims = Exsel_backend.Claims
module Engine = Exsel_native.Engine
module Backend = Exsel_native.Backend
module H = Exsel_native.Harness
module M = Exsel_obs.Metrics
module Json = Exsel_obs.Json
module JP = Exsel_testkit.Json_parse

(* ------------------------------------------------------------------ *)
(* Claims: the pure checker, exact message formats                     *)
(* ------------------------------------------------------------------ *)

let outcome ?(status = Claims.Done) ?(steps = 0) name result =
  { Claims.name; status; result; steps }

let check_err what expected = function
  | Ok () -> Alcotest.failf "%s: expected %S, got Ok" what expected
  | Error msg -> Alcotest.(check string) what expected msg

let test_claims_ok () =
  let outcomes = [| outcome "p0" (Some 2); outcome "p1" (Some 0) |] in
  match
    Claims.check ~completion:Claims.All_named ~k:2 ~outcomes ~bound:3 ()
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "clean log rejected: %s" msg

let test_claims_exclusiveness () =
  let outcomes =
    [| outcome "p0" (Some 5); outcome "p1" (Some 1); outcome "p2" (Some 5) |]
  in
  check_err "duplicate name"
    "exclusiveness: name 5 assigned to both p0 and p2"
    (Claims.check ~completion:Claims.All_named ~k:3 ~outcomes ~bound:8 ())

let test_claims_name_bound () =
  let outcomes = [| outcome "p0" (Some 0); outcome "p1" (Some 9) |] in
  check_err "out of range" "name bound: p1 holds name 9 outside [0, 7)"
    (Claims.check ~completion:Claims.All_named ~k:2 ~outcomes ~bound:7 ())

let test_claims_completion () =
  let outcomes = [| outcome "p0" (Some 0); outcome "p1" None |] in
  check_err "nameless finisher" "completion: p1 terminated without a name"
    (Claims.check ~completion:Claims.All_named ~k:2 ~outcomes ~bound:3 ())

let test_claims_termination () =
  let outcomes =
    [| outcome "p0" (Some 0); outcome ~status:Claims.Runnable "p1" None |]
  in
  check_err "still runnable" "termination: p1 still runnable at quiescence"
    (Claims.check ~completion:Claims.All_named ~k:2 ~outcomes ~bound:3 ())

let test_claims_steps_budget_optional () =
  (* steps over budget fail only when a budget is requested: the native
     harness omits it (no commit clock), so steps = 0 vs real steps must
     not matter *)
  let outcomes = [| outcome ~steps:9 "p0" (Some 0) |] in
  check_err "budgeted" "steps: p0 took 9 local steps, budget 8"
    (Claims.check ~completion:Claims.All_named ~k:1 ~outcomes ~bound:1
       ~steps_budget:8.0 ());
  match Claims.check ~completion:Claims.All_named ~k:1 ~outcomes ~bound:1 () with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "unbudgeted check rejected: %s" msg

(* ------------------------------------------------------------------ *)
(* Engine: one-shot pool semantics                                     *)
(* ------------------------------------------------------------------ *)

let test_engine_sequential_deterministic () =
  (* domains = 1 runs tasks in spawn order on the calling domain *)
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.spawn e ~name:(Printf.sprintf "t%d" i) (fun () ->
        log := i :: !log)
  done;
  Alcotest.(check int) "tasks" 10 (Engine.tasks e);
  Engine.run e ~domains:1;
  Alcotest.(check (list int)) "spawn order" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_engine_parallel_drains () =
  (* more tasks than domains: the queue must still drain completely *)
  let e = Engine.create () in
  let hits = Atomic.make 0 in
  for i = 0 to 31 do
    Engine.spawn e ~name:(Printf.sprintf "t%d" i) (fun () ->
        Atomic.incr hits)
  done;
  Engine.run e ~domains:4;
  Alcotest.(check int) "all ran" 32 (Atomic.get hits)

let test_engine_failure_propagates () =
  let e = Engine.create () in
  let survivors = Atomic.make 0 in
  Engine.spawn e ~name:"ok0" (fun () -> Atomic.incr survivors);
  Engine.spawn e ~name:"boom" (fun () -> failwith "exploded");
  Engine.spawn e ~name:"ok1" (fun () -> Atomic.incr survivors);
  (match Engine.run e ~domains:2 with
  | () -> Alcotest.fail "expected Task_failed"
  | exception Engine.Task_failed (name, Failure msg) ->
      Alcotest.(check string) "task name" "boom" name;
      Alcotest.(check string) "original exn" "exploded" msg
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e));
  (* the queue still drained: failure is recorded, not a hard stop *)
  Alcotest.(check int) "other tasks still ran" 2 (Atomic.get survivors)

let test_engine_one_shot () =
  let e = Engine.create () in
  Engine.spawn e ~name:"t" (fun () -> ());
  Engine.run e ~domains:1;
  (match Engine.spawn e ~name:"late" (fun () -> ()) with
  | () -> Alcotest.fail "spawn after run should raise"
  | exception Invalid_argument _ -> ());
  (match Engine.run e ~domains:1 with
  | () -> Alcotest.fail "second run should raise"
  | exception Invalid_argument _ -> ());
  match Engine.run (Engine.create ()) ~domains:0 with
  | () -> Alcotest.fail "domains = 0 should raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Backend: atomic registers and accounting                            *)
(* ------------------------------------------------------------------ *)

let test_backend_registers () =
  Alcotest.(check string) "label" "native" Backend.backend;
  let mem = Backend.create () in
  Alcotest.(check int) "fresh" 0 (Backend.registers mem);
  let r = Backend.alloc mem ~name:"r" 41 in
  let s = Backend.alloc mem ~name:"s" "init" in
  Alcotest.(check int) "counted" 2 (Backend.registers mem);
  Alcotest.(check int) "initial" 41 (Backend.read r);
  Backend.write r 42;
  Alcotest.(check int) "written" 42 (Backend.read r);
  Alcotest.(check int) "peek = read here" 42 (Backend.peek r);
  Backend.write s "next";
  Alcotest.(check string) "poly reg" "next" (Backend.read s)

(* ------------------------------------------------------------------ *)
(* Cross-validation: every algorithm, several domain counts, repeated  *)
(* trials, the paper's claims checked on each decision log             *)
(* ------------------------------------------------------------------ *)

let cross_validate algo =
  let n = 24 in
  List.iter
    (fun domains ->
      List.iter
        (fun seed ->
          let r = H.run ~algo ~n ~domains ~seed () in
          let what =
            Printf.sprintf "%s n=%d domains=%d seed=%d" r.H.algo n domains seed
          in
          (match H.check r with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s violates a claim: %s" what msg);
          Alcotest.(check int) (what ^ " all decided") n (H.decided r);
          Alcotest.(check int) (what ^ " latencies recorded") n
            (Array.length r.H.latency_ns);
          Array.iter
            (fun l ->
              if Int64.compare l 0L < 0 then
                Alcotest.failf "%s negative latency" what)
            r.H.latency_ns)
        [ 1; 2 ])
    [ 1; 2; 3 ]

let test_cross_validate_ma () = cross_validate H.Ma
let test_cross_validate_efficient () = cross_validate H.Efficient
let test_cross_validate_adaptive () = cross_validate H.Adaptive

let test_algo_names () =
  List.iter
    (fun (a, s) ->
      Alcotest.(check string) "name" s (H.algo_name a);
      match H.algo_of_string s with
      | Some a' when a' = a -> ()
      | _ -> Alcotest.failf "algo_of_string %S does not round-trip" s)
    [ (H.Ma, "ma"); (H.Efficient, "efficient"); (H.Adaptive, "adaptive") ];
  Alcotest.(check bool) "unknown rejected" true (H.algo_of_string "nope" = None)

(* ------------------------------------------------------------------ *)
(* Harness metrics observation                                         *)
(* ------------------------------------------------------------------ *)

let test_observe_records () =
  let n = 16 in
  let r = H.run ~algo:H.Ma ~n ~domains:2 ~seed:1 () in
  let reg = M.create () in
  H.observe reg r;
  let labels = [ ("algo", "ma"); ("backend", "native") ] in
  let h = M.histogram reg "exsel_rename_latency_ns" ~labels in
  Alcotest.(check int) "one latency per process" n (M.hist_count h);
  (* the decision counter carries the same labels; read it back through
     the rendered document, the only counter accessor *)
  let j = JP.roundtrip (M.to_json reg) in
  match JP.get_list "counters" j with
  | [ c ] ->
      Alcotest.(check string) "counter name" "exsel_rename_decisions_total"
        (JP.get_string "name" c);
      Alcotest.(check int) "decisions" n (JP.get_int "value" c)
  | l -> Alcotest.failf "expected one counter, got %d" (List.length l)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "native"
    [
      ( "claims",
        [
          Alcotest.test_case "clean log accepted" `Quick test_claims_ok;
          Alcotest.test_case "exclusiveness" `Quick test_claims_exclusiveness;
          Alcotest.test_case "name bound" `Quick test_claims_name_bound;
          Alcotest.test_case "completion" `Quick test_claims_completion;
          Alcotest.test_case "termination" `Quick test_claims_termination;
          Alcotest.test_case "steps budget optional" `Quick
            test_claims_steps_budget_optional;
        ] );
      ( "engine",
        [
          Alcotest.test_case "domains=1 sequential" `Quick
            test_engine_sequential_deterministic;
          Alcotest.test_case "pool drains" `Quick test_engine_parallel_drains;
          Alcotest.test_case "failure propagates" `Quick
            test_engine_failure_propagates;
          Alcotest.test_case "one-shot" `Quick test_engine_one_shot;
        ] );
      ( "backend",
        [ Alcotest.test_case "registers" `Quick test_backend_registers ] );
      ( "cross-validation",
        [
          Alcotest.test_case "ma" `Quick test_cross_validate_ma;
          Alcotest.test_case "efficient" `Quick test_cross_validate_efficient;
          Alcotest.test_case "adaptive" `Quick test_cross_validate_adaptive;
          Alcotest.test_case "algo names" `Quick test_algo_names;
        ] );
      ( "metrics",
        [ Alcotest.test_case "observe" `Quick test_observe_records ] );
    ]
