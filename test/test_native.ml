(* Tests for the native OCaml 5 backend (DESIGN.md §12): the pure
   decision-log claim checker shared with the conformance adapters, the
   one-shot domain-pool engine, register accounting on the atomic
   backend, cross-validation of every ported renaming algorithm against
   the paper's claims across several domain counts and repeated trials,
   and the harness's metrics observation. *)

module Claims = Exsel_backend.Claims
module Engine = Exsel_native.Engine
module Backend = Exsel_native.Backend
module H = Exsel_native.Harness
module M = Exsel_obs.Metrics
module Json = Exsel_obs.Json
module JP = Exsel_testkit.Json_parse

(* ------------------------------------------------------------------ *)
(* Claims: the pure checker, exact message formats                     *)
(* ------------------------------------------------------------------ *)

let outcome ?(status = Claims.Done) ?(steps = 0) name result =
  { Claims.name; status; result; steps }

let check_err what expected = function
  | Ok () -> Alcotest.failf "%s: expected %S, got Ok" what expected
  | Error msg -> Alcotest.(check string) what expected msg

let test_claims_ok () =
  let outcomes = [| outcome "p0" (Some 2); outcome "p1" (Some 0) |] in
  match
    Claims.check ~completion:Claims.All_named ~k:2 ~outcomes ~bound:3 ()
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "clean log rejected: %s" msg

let test_claims_exclusiveness () =
  let outcomes =
    [| outcome "p0" (Some 5); outcome "p1" (Some 1); outcome "p2" (Some 5) |]
  in
  check_err "duplicate name"
    "exclusiveness: name 5 assigned to both p0 and p2"
    (Claims.check ~completion:Claims.All_named ~k:3 ~outcomes ~bound:8 ())

let test_claims_name_bound () =
  let outcomes = [| outcome "p0" (Some 0); outcome "p1" (Some 9) |] in
  check_err "out of range" "name bound: p1 holds name 9 outside [0, 7)"
    (Claims.check ~completion:Claims.All_named ~k:2 ~outcomes ~bound:7 ())

let test_claims_completion () =
  let outcomes = [| outcome "p0" (Some 0); outcome "p1" None |] in
  check_err "nameless finisher" "completion: p1 terminated without a name"
    (Claims.check ~completion:Claims.All_named ~k:2 ~outcomes ~bound:3 ())

let test_claims_termination () =
  let outcomes =
    [| outcome "p0" (Some 0); outcome ~status:Claims.Runnable "p1" None |]
  in
  check_err "still runnable" "termination: p1 still runnable at quiescence"
    (Claims.check ~completion:Claims.All_named ~k:2 ~outcomes ~bound:3 ())

let test_claims_steps_budget_optional () =
  (* steps over budget fail only when a budget is requested: the native
     harness omits it (no commit clock), so steps = 0 vs real steps must
     not matter *)
  let outcomes = [| outcome ~steps:9 "p0" (Some 0) |] in
  check_err "budgeted" "steps: p0 took 9 local steps, budget 8"
    (Claims.check ~completion:Claims.All_named ~k:1 ~outcomes ~bound:1
       ~steps_budget:8.0 ());
  match Claims.check ~completion:Claims.All_named ~k:1 ~outcomes ~bound:1 () with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "unbudgeted check rejected: %s" msg

(* ------------------------------------------------------------------ *)
(* Engine: one-shot pool semantics                                     *)
(* ------------------------------------------------------------------ *)

let test_engine_sequential_deterministic () =
  (* domains = 1 runs tasks in spawn order on the calling domain *)
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.spawn e ~name:(Printf.sprintf "t%d" i) (fun () ->
        log := i :: !log)
  done;
  Alcotest.(check int) "tasks" 10 (Engine.tasks e);
  Engine.run e ~domains:1;
  Alcotest.(check (list int)) "spawn order" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_engine_parallel_drains () =
  (* more tasks than domains: the queue must still drain completely *)
  let e = Engine.create () in
  let hits = Atomic.make 0 in
  for i = 0 to 31 do
    Engine.spawn e ~name:(Printf.sprintf "t%d" i) (fun () ->
        Atomic.incr hits)
  done;
  Engine.run e ~domains:4;
  Alcotest.(check int) "all ran" 32 (Atomic.get hits)

let test_engine_failure_propagates () =
  let e = Engine.create () in
  let survivors = Atomic.make 0 in
  Engine.spawn e ~name:"ok0" (fun () -> Atomic.incr survivors);
  Engine.spawn e ~name:"boom" (fun () -> failwith "exploded");
  Engine.spawn e ~name:"ok1" (fun () -> Atomic.incr survivors);
  (match Engine.run e ~domains:2 with
  | () -> Alcotest.fail "expected Task_failed"
  | exception Engine.Task_failed (name, Failure msg) ->
      Alcotest.(check string) "task name" "boom" name;
      Alcotest.(check string) "original exn" "exploded" msg
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e));
  (* the queue still drained: failure is recorded, not a hard stop *)
  Alcotest.(check int) "other tasks still ran" 2 (Atomic.get survivors)

let test_engine_telemetry () =
  (* the flight record is present after run, covers every task exactly
     once, attributes spans to real workers, and keeps busy <= wall *)
  let e = Engine.create () in
  let n = 12 in
  for i = 0 to n - 1 do
    Engine.spawn e ~name:(Printf.sprintf "t%d" i) (fun () -> ())
  done;
  Alcotest.(check bool) "no telemetry before run" true (Engine.telemetry e = None);
  Engine.run e ~domains:3;
  let tl =
    match Engine.telemetry e with
    | Some tl -> tl
    | None -> Alcotest.fail "telemetry missing after run"
  in
  Alcotest.(check int) "domains" 3 tl.Engine.tl_domains;
  Alcotest.(check int) "one event per task" n (Array.length tl.Engine.tl_events);
  Alcotest.(check int) "one stat row per worker" 3
    (Array.length tl.Engine.tl_workers);
  let seen = Array.make n false in
  Array.iter
    (fun (ev : Engine.task_event) ->
      if seen.(ev.Engine.te_index) then
        Alcotest.failf "task %d recorded twice" ev.Engine.te_index;
      seen.(ev.Engine.te_index) <- true;
      Alcotest.(check string)
        "event name matches index"
        (Printf.sprintf "t%d" ev.Engine.te_index)
        ev.Engine.te_name;
      if ev.Engine.te_worker < 0 || ev.Engine.te_worker >= 3 then
        Alcotest.failf "worker %d out of range" ev.Engine.te_worker;
      if Int64.compare ev.Engine.te_start_ns ev.Engine.te_stop_ns > 0 then
        Alcotest.fail "span stops before it starts";
      if Int64.compare ev.Engine.te_start_ns tl.Engine.tl_start_ns < 0 then
        Alcotest.fail "span starts before the run")
    tl.Engine.tl_events;
  let tasks_by_stat =
    Array.fold_left (fun acc w -> acc + w.Engine.ws_tasks) 0 tl.Engine.tl_workers
  in
  Alcotest.(check int) "worker stats cover all tasks" n tasks_by_stat;
  if Int64.compare (Engine.busy_ns tl) 0L < 0 then Alcotest.fail "negative busy";
  if Int64.compare (Engine.wall_ns tl) 0L < 0 then Alcotest.fail "negative wall";
  let util = Engine.utilization tl in
  if util < 0.0 || util > 1.0 then Alcotest.failf "utilization %f out of [0,1]" util;
  if Int64.compare tl.Engine.tl_spawn_ns 0L < 0 then
    Alcotest.fail "negative spawn overhead";
  if Int64.compare tl.Engine.tl_join_ns 0L < 0 then
    Alcotest.fail "negative join overhead"

let test_engine_telemetry_sequential () =
  (* domains = 1: every span lands on worker 0 and they never overlap *)
  let e = Engine.create () in
  for i = 0 to 7 do
    Engine.spawn e ~name:(Printf.sprintf "t%d" i) (fun () -> ())
  done;
  Engine.run e ~domains:1;
  let tl = Option.get (Engine.telemetry e) in
  Alcotest.(check int) "single worker" 1 tl.Engine.tl_domains;
  let last = ref Int64.min_int in
  Array.iter
    (fun (ev : Engine.task_event) ->
      Alcotest.(check int) "worker 0" 0 ev.Engine.te_worker;
      if Int64.compare ev.Engine.te_start_ns !last < 0 then
        Alcotest.fail "sequential spans overlap";
      last := ev.Engine.te_stop_ns)
    tl.Engine.tl_events

let test_engine_one_shot () =
  let e = Engine.create () in
  Engine.spawn e ~name:"t" (fun () -> ());
  Engine.run e ~domains:1;
  (match Engine.spawn e ~name:"late" (fun () -> ()) with
  | () -> Alcotest.fail "spawn after run should raise"
  | exception Invalid_argument _ -> ());
  (match Engine.run e ~domains:1 with
  | () -> Alcotest.fail "second run should raise"
  | exception Invalid_argument _ -> ());
  match Engine.run (Engine.create ()) ~domains:0 with
  | () -> Alcotest.fail "domains = 0 should raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Backend: atomic registers and accounting                            *)
(* ------------------------------------------------------------------ *)

let test_backend_registers () =
  Alcotest.(check string) "label" "native" Backend.backend;
  let mem = Backend.create () in
  Alcotest.(check int) "fresh" 0 (Backend.registers mem);
  let r = Backend.alloc mem ~name:"r" 41 in
  let s = Backend.alloc mem ~name:"s" "init" in
  Alcotest.(check int) "counted" 2 (Backend.registers mem);
  Alcotest.(check int) "initial" 41 (Backend.read r);
  Backend.write r 42;
  Alcotest.(check int) "written" 42 (Backend.read r);
  Alcotest.(check int) "peek = read here" 42 (Backend.peek r);
  Backend.write s "next";
  Alcotest.(check string) "poly reg" "next" (Backend.read s)

let test_backend_register_names () =
  (* allocation names are kept (in allocation order), not dropped *)
  let mem = Backend.create () in
  Alcotest.(check (list string)) "fresh" [] (Backend.register_names mem);
  ignore (Backend.alloc mem ~name:"a" 0);
  ignore (Backend.alloc mem ~name:"b" 0);
  ignore (Backend.alloc mem ~name:"a" 0);
  Alcotest.(check (list string))
    "allocation order, duplicates kept" [ "a"; "b"; "a" ]
    (Backend.register_names mem);
  Alcotest.(check int) "count agrees" 3 (Backend.registers mem)

(* ------------------------------------------------------------------ *)
(* Probe backend: per-register access counting                         *)
(* ------------------------------------------------------------------ *)

module Probed = Exsel_native.Probe_backend.Make (Backend)

let test_probe_counts () =
  let mem = Probed.wrap (Backend.create ()) in
  let r = Probed.alloc mem ~name:"r" 0 in
  let s = Probed.alloc mem ~name:"s" 0 in
  let r2 = Probed.alloc mem ~name:"r" 0 in
  Alcotest.(check string) "label" "native+probe" Probed.backend;
  Alcotest.(check int) "registers delegate" 3 (Probed.registers mem);
  Probed.write r 1;
  Probed.write r 2;
  ignore (Probed.read r);
  ignore (Probed.read s);
  ignore (Probed.peek r);
  (* peek is the claim checker's backdoor: never counted *)
  ignore (Probed.read r2);
  Alcotest.(check int) "value delegated" 2 (Probed.read r);
  (* counts aggregate by allocation name, in first-allocation order;
     the read above counts too *)
  Alcotest.(check (list (triple string int int)))
    "aggregated by name"
    [ ("r", 3, 2); ("s", 1, 0) ]
    (Probed.counts mem)

(* ------------------------------------------------------------------ *)
(* Cross-validation: every algorithm, several domain counts, repeated  *)
(* trials, the paper's claims checked on each decision log             *)
(* ------------------------------------------------------------------ *)

let cross_validate algo =
  let n = 24 in
  List.iter
    (fun domains ->
      List.iter
        (fun seed ->
          let r = H.run ~algo ~n ~domains ~seed () in
          let what =
            Printf.sprintf "%s n=%d domains=%d seed=%d" r.H.algo n domains seed
          in
          (match H.check r with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s violates a claim: %s" what msg);
          Alcotest.(check int) (what ^ " all decided") n (H.decided r);
          Alcotest.(check int) (what ^ " latencies recorded") n
            (Array.length r.H.latency_ns);
          Array.iter
            (fun l ->
              if Int64.compare l 0L < 0 then
                Alcotest.failf "%s negative latency" what)
            r.H.latency_ns)
        [ 1; 2 ])
    [ 1; 2; 3 ]

let test_cross_validate_ma () = cross_validate H.Ma
let test_cross_validate_efficient () = cross_validate H.Efficient
let test_cross_validate_adaptive () = cross_validate H.Adaptive

let test_algo_names () =
  List.iter
    (fun (a, s) ->
      Alcotest.(check string) "name" s (H.algo_name a);
      match H.algo_of_string s with
      | Some a' when a' = a -> ()
      | _ -> Alcotest.failf "algo_of_string %S does not round-trip" s)
    [ (H.Ma, "ma"); (H.Efficient, "efficient"); (H.Adaptive, "adaptive") ];
  Alcotest.(check bool) "unknown rejected" true (H.algo_of_string "nope" = None)

(* ------------------------------------------------------------------ *)
(* Harness: clamp, warmup, probing, metrics observation                *)
(* ------------------------------------------------------------------ *)

let test_ns_to_int_clamp () =
  Alcotest.(check int) "zero" 0 (H.ns_to_int 0L);
  Alcotest.(check int) "small" 1234 (H.ns_to_int 1234L);
  Alcotest.(check int) "negative clamps to 0" 0 (H.ns_to_int (-5L));
  Alcotest.(check int) "Int64.max_int saturates" max_int
    (H.ns_to_int Int64.max_int);
  (* one past max_int wraps under Int64.to_int; the clamp must not *)
  let just_over = Int64.add (Int64.of_int max_int) 1L in
  Alcotest.(check int) "max_int + 1 saturates" max_int (H.ns_to_int just_over);
  Alcotest.(check int) "max_int exact" max_int
    (H.ns_to_int (Int64.of_int max_int))

let test_harness_warmup () =
  let r0 = H.run ~algo:H.Ma ~n:8 ~domains:2 ~seed:1 () in
  Alcotest.(check int) "default no warmup" 0 r0.H.warmup;
  Alcotest.(check bool) "no warmup cost" true (r0.H.warmup_ns = 0L);
  let r = H.run ~warmup:2 ~algo:H.Ma ~n:8 ~domains:2 ~seed:1 () in
  Alcotest.(check int) "warmup recorded" 2 r.H.warmup;
  Alcotest.(check bool) "warmup cost measured" true
    (Int64.compare r.H.warmup_ns 0L > 0);
  Alcotest.(check int) "measured run still decides all" 8 (H.decided r);
  match H.run ~warmup:(-1) ~algo:H.Ma ~n:8 ~domains:1 ~seed:1 () with
  | _ -> Alcotest.fail "negative warmup should raise"
  | exception Invalid_argument _ -> ()

let test_harness_probe () =
  let plain = H.run ~algo:H.Ma ~n:8 ~domains:2 ~seed:1 () in
  Alcotest.(check bool) "plain runs record no reg stats" true
    (plain.H.reg_stats = []);
  Alcotest.(check (list (pair int int))) "plain hot ranking empty" []
    (List.map (fun s -> (s.H.rs_reads, s.H.rs_writes)) (H.hot_registers plain));
  let r = H.run ~probe:true ~algo:H.Ma ~n:8 ~domains:2 ~seed:1 () in
  (match H.check r with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "probed run violates a claim: %s" msg);
  Alcotest.(check int) "probed run decides all" 8 (H.decided r);
  Alcotest.(check bool) "reg stats recorded" true (r.H.reg_stats <> []);
  let total s = s.H.rs_reads + s.H.rs_writes in
  if List.for_all (fun s -> total s = 0) r.H.reg_stats then
    Alcotest.fail "no register accesses counted";
  let ranked = H.hot_registers r in
  Alcotest.(check int) "ranking is a permutation"
    (List.length r.H.reg_stats) (List.length ranked);
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        if total a < total b then Alcotest.fail "ranking not descending";
        monotone rest
    | _ -> ()
  in
  monotone ranked

let counters_of reg =
  List.map
    (fun c -> (JP.get_string "name" c, JP.get_int "value" c))
    (JP.get_list "counters" (JP.roundtrip (M.to_json reg)))

let count_sum name counters =
  List.fold_left
    (fun acc (n, v) -> if n = name then acc + v else acc)
    0 counters

let test_observe_records () =
  let n = 16 in
  let r = H.run ~algo:H.Ma ~n ~domains:2 ~seed:1 () in
  let reg = M.create () in
  H.observe reg r;
  let labels = [ ("algo", "ma"); ("backend", "native") ] in
  let h = M.histogram reg "exsel_rename_latency_ns" ~labels in
  Alcotest.(check int) "one latency per process" n (M.hist_count h);
  (* decided-vs-spawned are separate counters; per-domain activity is
     labelled by executing domain.  Read them back through the rendered
     document, the only counter accessor. *)
  let counters = counters_of reg in
  Alcotest.(check int) "decisions" n
    (count_sum "exsel_rename_decisions" counters);
  Alcotest.(check int) "spawned" n
    (count_sum "exsel_rename_spawned" counters);
  Alcotest.(check int) "per-domain tasks sum to n" n
    (count_sum "exsel_domain_tasks" counters);
  Alcotest.(check bool) "no register counters without probe" true
    (count_sum "exsel_register_reads" counters = 0
    && count_sum "exsel_register_writes" counters = 0)

let test_observe_probe_registers () =
  let r = H.run ~probe:true ~algo:H.Ma ~n:8 ~domains:2 ~seed:1 () in
  let reg = M.create () in
  H.observe reg r;
  let counters = counters_of reg in
  let reads = count_sum "exsel_register_reads" counters in
  let writes = count_sum "exsel_register_writes" counters in
  Alcotest.(check int) "reads match reg_stats"
    (List.fold_left (fun a s -> a + s.H.rs_reads) 0 r.H.reg_stats)
    reads;
  Alcotest.(check int) "writes match reg_stats"
    (List.fold_left (fun a s -> a + s.H.rs_writes) 0 r.H.reg_stats)
    writes;
  if reads + writes = 0 then Alcotest.fail "no register traffic observed"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "native"
    [
      ( "claims",
        [
          Alcotest.test_case "clean log accepted" `Quick test_claims_ok;
          Alcotest.test_case "exclusiveness" `Quick test_claims_exclusiveness;
          Alcotest.test_case "name bound" `Quick test_claims_name_bound;
          Alcotest.test_case "completion" `Quick test_claims_completion;
          Alcotest.test_case "termination" `Quick test_claims_termination;
          Alcotest.test_case "steps budget optional" `Quick
            test_claims_steps_budget_optional;
        ] );
      ( "engine",
        [
          Alcotest.test_case "domains=1 sequential" `Quick
            test_engine_sequential_deterministic;
          Alcotest.test_case "pool drains" `Quick test_engine_parallel_drains;
          Alcotest.test_case "failure propagates" `Quick
            test_engine_failure_propagates;
          Alcotest.test_case "telemetry" `Quick test_engine_telemetry;
          Alcotest.test_case "telemetry domains=1" `Quick
            test_engine_telemetry_sequential;
          Alcotest.test_case "one-shot" `Quick test_engine_one_shot;
        ] );
      ( "backend",
        [
          Alcotest.test_case "registers" `Quick test_backend_registers;
          Alcotest.test_case "register names" `Quick
            test_backend_register_names;
          Alcotest.test_case "probe counts" `Quick test_probe_counts;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "ma" `Quick test_cross_validate_ma;
          Alcotest.test_case "efficient" `Quick test_cross_validate_efficient;
          Alcotest.test_case "adaptive" `Quick test_cross_validate_adaptive;
          Alcotest.test_case "algo names" `Quick test_algo_names;
        ] );
      ( "harness",
        [
          Alcotest.test_case "ns_to_int clamp" `Quick test_ns_to_int_clamp;
          Alcotest.test_case "warmup" `Quick test_harness_warmup;
          Alcotest.test_case "probe" `Quick test_harness_probe;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "observe" `Quick test_observe_records;
          Alcotest.test_case "observe probed registers" `Quick
            test_observe_probe_registers;
        ] );
    ]
