(* Tests for the conformance-campaign harness (lib/conformance) and the
   Spec bound-shape properties it relies on. *)

open Exsel_sim
module Runner = Exsel_conformance.Runner
module Adapter = Exsel_conformance.Adapter
module Regime = Exsel_conformance.Regime
module Campaign = Exsel_conformance.Campaign
module Json = Exsel_obs.Json
module Spec = Exsel_renaming.Spec

let small_config ~algos ~regimes ~seeds ~k =
  { Campaign.default with algos; regimes; seeds; k }

let adapter id =
  match Adapter.find id with
  | Some a -> a
  | None -> Alcotest.failf "adapter %s missing" id

let regime id =
  match Regime.find id with
  | Some r -> r
  | None -> Alcotest.failf "regime %s missing" id

(* ------------------------------------------------------------------ *)
(* Campaigns on honest algorithms                                      *)
(* ------------------------------------------------------------------ *)

let test_honest_campaign_green () =
  let cfg =
    small_config ~algos:Adapter.honest ~regimes:Regime.all ~seeds:[ 1 ] ~k:3
  in
  let report = Campaign.run cfg in
  Alcotest.(check int)
    "cells" (List.length Adapter.honest * List.length Regime.all)
    (List.length report.Campaign.r_cells);
  Alcotest.(check int) "no violations" 0 report.Campaign.r_violations

let test_crash_regimes_crash () =
  (* the crashing regimes must actually exercise the fault model *)
  let cfg =
    small_config
      ~algos:[ adapter "polylog" ]
      ~regimes:[ regime "crash-half"; regime "crash-on-write" ]
      ~seeds:[ 1; 2 ] ~k:4
  in
  let report = Campaign.run cfg in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.Campaign.c_regime ^ " crashed someone")
        true (c.Campaign.c_crashed > 0))
    report.Campaign.r_cells

let test_campaign_deterministic () =
  let cfg =
    small_config
      ~algos:[ adapter "efficient" ]
      ~regimes:[ regime "random"; regime "freeze" ]
      ~seeds:[ 1; 2 ] ~k:4
  in
  let r1 = Campaign.run cfg and r2 = Campaign.run cfg in
  List.iter2
    (fun c1 c2 ->
      Alcotest.(check int)
        "commits equal" c1.Campaign.c_commits c2.Campaign.c_commits;
      Alcotest.(check int)
        "max_steps equal" c1.Campaign.c_max_steps c2.Campaign.c_max_steps)
    r1.Campaign.r_cells r2.Campaign.r_cells

(* ------------------------------------------------------------------ *)
(* The negative control                                                *)
(* ------------------------------------------------------------------ *)

let buggy_violation () =
  let cfg =
    small_config ~algos:[ adapter "buggy-ma" ]
      ~regimes:[ regime "lockstep" ]
      ~seeds:[ 1; 2; 3 ] ~k:4
  in
  let report = Campaign.run cfg in
  match report.Campaign.r_cells with
  | [ { Campaign.c_violation = Some v; _ } ] -> v
  | _ -> Alcotest.fail "buggy-ma not caught"

let test_buggy_caught_and_shrunk () =
  let v = buggy_violation () in
  Alcotest.(check bool)
    "failure names exclusiveness" true
    (String.length v.Campaign.v_failure >= 13
    && String.sub v.Campaign.v_failure 0 13 = "exclusiveness");
  match v.Campaign.v_shrunk with
  | None -> Alcotest.fail "violation not shrunk"
  | Some shrunk ->
      Alcotest.(check bool)
        "shrunk no longer than recorded" true
        (List.length shrunk <= List.length v.Campaign.v_schedule);
      Alcotest.(check bool)
        "shrunk failure reported" true
        (v.Campaign.v_shrunk_failure <> None);
      Alcotest.(check bool)
        "trace captured" true
        (v.Campaign.v_trace <> [])

let test_buggy_counterexample_replays () =
  (* the shrunk schedule must reproduce the violation on a fresh
     instance, without the regime that found it *)
  let v = buggy_violation () in
  let shrunk = Option.get v.Campaign.v_shrunk in
  let spec =
    (adapter "buggy-ma").Adapter.make ~seed:v.Campaign.v_seed ~k:4
      ~steps_multiple:1.0
  in
  let inst = spec.Runner.init () in
  Explore.replay inst.Runner.runtime shrunk;
  match inst.Runner.check () with
  | Ok () -> Alcotest.fail "shrunk schedule no longer violates"
  | Error msg ->
      Alcotest.(check string)
        "same failure as recorded"
        (Option.get v.Campaign.v_shrunk_failure)
        msg

let test_honest_ma_fixes_the_race () =
  (* same grid walk, honest splitter: the lockstep campaign that breaks
     buggy-ma stays green *)
  let cfg =
    small_config ~algos:[ adapter "ma" ]
      ~regimes:[ regime "lockstep" ]
      ~seeds:[ 1; 2; 3 ] ~k:4
  in
  Alcotest.(check int)
    "no violations" 0 (Campaign.run cfg).Campaign.r_violations

(* ------------------------------------------------------------------ *)
(* Runner internals                                                    *)
(* ------------------------------------------------------------------ *)

let test_runner_detects_livelock () =
  let spec =
    {
      Runner.algo = "spin";
      claim = "none";
      init =
        (fun () ->
          let mem = Memory.create () in
          let rt = Runtime.create mem in
          let r = Register.create mem ~name:"spin" 0 in
          for i = 0 to 1 do
            ignore
              (Runtime.spawn rt ~name:(Printf.sprintf "s%d" i) (fun () ->
                   while Runtime.read r >= 0 do
                     Runtime.write r (Runtime.read r + 1)
                   done))
          done;
          { Runner.runtime = rt; check = (fun () -> Ok ()) });
    }
  in
  let driver = (regime "random").Regime.make ~seed:1 ~k:2 in
  let outcome = Runner.drive ~max_commits:100 spec ~driver in
  match outcome.Runner.failure with
  | Some msg ->
      Alcotest.(check bool)
        "liveness failure" true
        (String.length msg >= 9 && String.sub msg 0 9 = "liveness:")
  | None -> Alcotest.fail "livelock not detected"

let test_runner_schedule_replays () =
  (* the recorded schedule alone reproduces the execution: same commit
     count, same per-process steps *)
  let make () = (adapter "efficient").Adapter.make ~seed:7 ~k:3 ~steps_multiple:1.0 in
  let driver = (regime "crash-half").Regime.make ~seed:7 ~k:3 in
  let outcome = Runner.drive (make ()) ~driver in
  Alcotest.(check (option string)) "honest run ok" None outcome.Runner.failure;
  let inst = (make ()).Runner.init () in
  Explore.replay inst.Runner.runtime outcome.Runner.schedule;
  Alcotest.(check bool) "replay reaches quiescence" true
    (Runtime.all_quiet inst.Runner.runtime);
  Alcotest.(check int) "same commit count" outcome.Runner.commits
    (Runtime.commits inst.Runner.runtime);
  Alcotest.(check int) "same max steps" outcome.Runner.max_steps
    (Runtime.max_steps inst.Runner.runtime);
  Alcotest.(check (result unit string)) "claims hold on replay" (Ok ())
    (inst.Runner.check ())

(* ------------------------------------------------------------------ *)
(* Freeze windows (Exsel_lowerbound.Freeze reuse)                      *)
(* ------------------------------------------------------------------ *)

let test_freeze_window_freezes_and_thaws () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"w" 0 in
  let procs =
    Array.init 4 (fun i ->
        Runtime.spawn rt ~name:(Printf.sprintf "f%d" i) (fun () ->
            for _ = 1 to 10 do
              ignore (Runtime.read r)
            done))
  in
  ignore procs;
  let victims = [ 0; 1 ] in
  let freeze_at = 5 and thaw_at = 15 in
  let in_window = ref [] in
  Runtime.on_commit rt (fun p _ ->
      let c = Runtime.commits rt - 1 in
      if c >= freeze_at && c < thaw_at then
        in_window := Runtime.pid p :: !in_window);
  let policy =
    Exsel_lowerbound.Freeze.freeze_window
      ~rng:(Rng.create ~seed:9)
      ~victims ~freeze_at ~thaw_at
  in
  Runtime.run rt policy;
  Alcotest.(check bool) "all complete after thaw" true (Runtime.all_quiet rt);
  List.iter
    (fun pid ->
      Alcotest.(check bool)
        (Printf.sprintf "victim %d untouched inside window" pid)
        false
        (List.mem pid !in_window))
    victims;
  Alcotest.(check int) "everyone finished all ops" 40 (Runtime.commits rt)

let test_uniform_avoiding_never_picks_frozen () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"u" 0 in
  for i = 0 to 3 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "u%d" i) (fun () ->
           for _ = 1 to 5 do
             ignore (Runtime.read r)
           done))
  done;
  let policy =
    Exsel_lowerbound.Freeze.uniform_avoiding
      ~rng:(Rng.create ~seed:4)
      ~frozen:(fun p -> Runtime.pid p = 2)
  in
  Runtime.on_commit rt (fun p _ ->
      if Runtime.pid p = 2 then Alcotest.fail "frozen process scheduled");
  (* the policy stops (returns None) once only the frozen process
     remains runnable *)
  Runtime.run rt policy;
  Alcotest.(check int) "others drained" 15 (Runtime.commits rt);
  Alcotest.(check int) "frozen still runnable" 1 (Runtime.num_runnable rt)

(* ------------------------------------------------------------------ *)
(* Report JSON                                                         *)
(* ------------------------------------------------------------------ *)

let test_report_json_schema () =
  let cfg =
    small_config
      ~algos:[ adapter "compete"; adapter "buggy-ma" ]
      ~regimes:[ regime "lockstep" ]
      ~seeds:[ 1 ] ~k:4
  in
  (* round-trip through the shared testkit parser: the checks below run
     against what a consumer of the rendered document actually sees *)
  let j =
    Exsel_testkit.Json_parse.roundtrip (Campaign.to_json (Campaign.run cfg))
  in
  Alcotest.(check (option string))
    "schema" (Some "exsel-conformance/1")
    (match Json.member "schema" j with Some (Json.String s) -> Some s | _ -> None);
  (match Json.member "violations" j with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "violations count wrong");
  (match Json.member "metrics" j with
  | Some m -> (
      match Exsel_testkit.Validate.metrics_doc m with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "embedded exsel-metrics/1 invalid: %s" msg)
  | None -> Alcotest.fail "embedded metrics document missing");
  match Json.member "cells" j with
  | Some (Json.List [ ok_cell; bad_cell ]) -> (
      (match Json.member "ok" ok_cell with
      | Some (Json.Bool true) -> ()
      | _ -> Alcotest.fail "compete cell not ok");
      (match Json.member "ok" bad_cell with
      | Some (Json.Bool false) -> ()
      | _ -> Alcotest.fail "buggy cell not failed");
      match Json.member "violation" bad_cell with
      | Some v -> (
          (match Json.member "shrunk" v with
          | Some (Json.List (_ :: _)) -> ()
          | _ -> Alcotest.fail "shrunk schedule missing");
          match Json.member "trace" v with
          | Some t ->
              Alcotest.(check (option string))
                "embedded trace schema" (Some "exsel-trace/1")
                (match Json.member "schema" t with
                | Some (Json.String s) -> Some s
                | _ -> None)
          | None -> Alcotest.fail "trace missing")
      | None -> Alcotest.fail "violation object missing")
  | _ -> Alcotest.fail "cells shape wrong"

(* ------------------------------------------------------------------ *)
(* Spec shape properties (qcheck)                                      *)
(* ------------------------------------------------------------------ *)

let prop_steps_monotone_in_k =
  QCheck.Test.make ~name:"Spec steps shapes are monotone in k" ~count:200
    QCheck.(pair (int_range 1 4096) (int_range 2 1_000_000))
    (fun (k, n_names) ->
      Spec.basic_steps ~k:(k + 1) ~n_names >= Spec.basic_steps ~k ~n_names
      && Spec.efficient_steps ~k:(k + 1) >= Spec.efficient_steps ~k
      && Spec.almost_adaptive_steps ~k:(k + 1) ~n_names
         >= Spec.almost_adaptive_steps ~k ~n_names
      && Spec.adaptive_steps ~k:(k + 1) >= Spec.adaptive_steps ~k)

let prop_steps_monotone_in_names =
  QCheck.Test.make ~name:"Spec steps shapes are monotone in N" ~count:200
    QCheck.(pair (int_range 1 4096) (int_range 2 1_000_000))
    (fun (k, n_names) ->
      Spec.basic_steps ~k ~n_names:(2 * n_names) >= Spec.basic_steps ~k ~n_names
      && Spec.majority_steps ~n_names:(2 * n_names)
         >= Spec.majority_steps ~n_names
      && Spec.almost_adaptive_steps ~k ~n_names:(2 * n_names)
         >= Spec.almost_adaptive_steps ~k ~n_names)

let prop_name_bounds_exact =
  let rec lg_floor n = if n <= 1 then 0 else 1 + lg_floor (n / 2) in
  QCheck.Test.make
    ~name:"Spec name bounds are exactly 2k-1 and 8k-floor(lg k)-1" ~count:200
    QCheck.(int_range 1 100_000)
    (fun k ->
      Spec.efficient_names ~k = (2 * k) - 1
      && Spec.adaptive_names ~k = (8 * k) - lg_floor k - 1)

let () =
  Alcotest.run "conformance"
    [
      ( "campaign",
        [
          Alcotest.test_case "honest matrix green" `Quick
            test_honest_campaign_green;
          Alcotest.test_case "crash regimes crash" `Quick
            test_crash_regimes_crash;
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
        ] );
      ( "negative control",
        [
          Alcotest.test_case "buggy-ma caught and shrunk" `Quick
            test_buggy_caught_and_shrunk;
          Alcotest.test_case "counterexample replays" `Quick
            test_buggy_counterexample_replays;
          Alcotest.test_case "honest ma green" `Quick
            test_honest_ma_fixes_the_race;
        ] );
      ( "runner",
        [
          Alcotest.test_case "livelock detected" `Quick
            test_runner_detects_livelock;
          Alcotest.test_case "schedule replays" `Quick
            test_runner_schedule_replays;
        ] );
      ( "freeze",
        [
          Alcotest.test_case "freeze window" `Quick
            test_freeze_window_freezes_and_thaws;
          Alcotest.test_case "uniform avoiding" `Quick
            test_uniform_avoiding_never_picks_frozen;
        ] );
      ( "json",
        [ Alcotest.test_case "exsel-conformance/1" `Quick test_report_json_schema ] );
      ( "spec properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_steps_monotone_in_k;
            prop_steps_monotone_in_names;
            prop_name_bounds_exact;
          ] );
    ]
