(* Tests for Exsel_obs.Metrics: histogram bucketing and quantile
   estimation (qcheck rank-error property against an exact sort), merge
   algebra (commutative/associative, gauges max), ambient registry
   resolution across runtimes, the campaign's -j N byte-identity for
   both the OpenMetrics exposition and the exsel-events/1 stream, and
   acceptance of every rendered document by Exsel_testkit.Validate —
   the same validators CI's validate_docs runs. *)

module M = Exsel_obs.Metrics
module Json = Exsel_obs.Json
module JP = Exsel_testkit.Json_parse
module V = Exsel_testkit.Validate
module C = Exsel_conformance.Campaign
module A = Exsel_conformance.Adapter
module Regime = Exsel_conformance.Regime
module Runtime = Exsel_sim.Runtime
module Memory = Exsel_sim.Memory

let render reg = Json.to_string (M.to_json reg)

(* ------------------------------------------------------------------ *)
(* Histogram basics                                                    *)
(* ------------------------------------------------------------------ *)

let test_hist_exact_below_64 () =
  let reg = M.create () in
  let h = M.histogram reg "h" in
  for v = 0 to 63 do
    M.observe h v
  done;
  Alcotest.(check int) "count" 64 (M.hist_count h);
  Alcotest.(check int) "sum" (63 * 64 / 2) (M.hist_sum h);
  Alcotest.(check int) "max" 63 (M.hist_max h);
  (* values below 64 land in exact buckets: every quantile is exact *)
  for v = 0 to 63 do
    let q = float_of_int (v + 1) /. 64.0 in
    Alcotest.(check int) (Printf.sprintf "q=%g" q) v (M.hquantile h q)
  done

let test_hist_empty () =
  let reg = M.create () in
  let h = M.histogram reg "h" in
  Alcotest.(check int) "count" 0 (M.hist_count h);
  Alcotest.(check int) "max" 0 (M.hist_max h);
  Alcotest.(check int) "p50" 0 (M.hquantile h 0.5);
  Alcotest.(check int) "p999" 0 (M.hquantile h 0.999)

let test_kind_clash_and_bad_name () =
  let reg = M.create () in
  ignore (M.counter reg "c");
  (* same key: the instrument itself has the wrong kind *)
  Alcotest.check_raises "kind clash, same labels"
    (Invalid_argument "Metrics: \"c\" is a counter, not a histogram")
    (fun () -> ignore (M.histogram reg "c"));
  (* different labels: the family kind still clashes *)
  Alcotest.check_raises "kind clash, fresh labels"
    (Invalid_argument "Metrics: \"c\" already registered as a counter")
    (fun () -> ignore (M.histogram reg "c" ~labels:[ ("x", "y") ]));
  Alcotest.check_raises "bad name"
    (Invalid_argument "Metrics: invalid metric name \"no spaces\"")
    (fun () -> ignore (M.counter reg "no spaces"))

(* exact nearest-rank quantile off a sorted sample *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  let rank = max 1 (min (int_of_float (Float.ceil (q *. float_of_int n))) n) in
  sorted.(rank - 1)

let qcheck_rank_error =
  QCheck.Test.make ~count:200 ~name:"hquantile within 2^-5 of exact rank"
    QCheck.(pair (list_of_size Gen.(1 -- 200) (int_bound 100_000)) (0 -- 999))
    (fun (sample, qi) ->
      let q = float_of_int (qi + 1) /. 1000.0 in
      let reg = M.create () in
      let h = M.histogram reg "h" in
      List.iter (M.observe h) sample;
      let sorted = Array.of_list sample in
      Array.sort compare sorted;
      let exact = exact_quantile sorted q in
      let est = M.hquantile h q in
      (* the estimate is the bucket's upper bound clamped to the observed
         max: never below the exact answer, never more than the bucket
         width (<= exact/32, with slack for rounding) above it *)
      est >= exact && est - exact <= max 1 (exact / 16))

(* ------------------------------------------------------------------ *)
(* Merge algebra                                                       *)
(* ------------------------------------------------------------------ *)

(* a registry built from a list of small operations; name pools are
   disjoint per kind so random programs never clash kinds *)
type op = Inc of int * int * int | SetMax of int * int | Obs of int * int

let label_pool = [| []; [ ("algo", "a") ]; [ ("algo", "b"); ("n", "4") ] |]

let apply reg = function
  | Inc (n, l, v) ->
      M.inc
        (M.counter reg
           (Printf.sprintf "c%d" (n mod 2))
           ~labels:label_pool.(l mod 3))
        (abs v)
  | SetMax (n, v) ->
      M.max_gauge (M.gauge reg (Printf.sprintf "g%d" (n mod 2))) (abs v)
  | Obs (n, v) ->
      M.observe
        (M.histogram reg (Printf.sprintf "h%d" (n mod 2)))
        (abs v mod 100_000)

let build ops =
  let reg = M.create () in
  List.iter (apply reg) ops;
  reg

let gen_op =
  QCheck.Gen.(
    oneof
      [
        map3 (fun a b c -> Inc (a, b, c)) (int_bound 3) (int_bound 3) (int_bound 1000);
        map2 (fun a b -> SetMax (a, b)) (int_bound 3) (int_bound 1000);
        map2 (fun a b -> Obs (a, b)) (int_bound 3) (int_bound 100_000);
      ])

let arb_ops = QCheck.make QCheck.Gen.(list_size (0 -- 40) gen_op)

let qcheck_merge_commutative =
  QCheck.Test.make ~count:100 ~name:"merge commutative (up to rendering)"
    QCheck.(pair arb_ops arb_ops)
    (fun (a, b) ->
      let ab = build a in
      M.merge ~into:ab (build b);
      let ba = build b in
      M.merge ~into:ba (build a);
      render ab = render ba)

let qcheck_merge_associative =
  QCheck.Test.make ~count:100 ~name:"merge associative"
    QCheck.(triple arb_ops arb_ops arb_ops)
    (fun (a, b, c) ->
      let left = build a in
      M.merge ~into:left (build b);
      M.merge ~into:left (build c);
      let bc = build b in
      M.merge ~into:bc (build c);
      let right = build a in
      M.merge ~into:right bc;
      render left = render right)

let test_gauge_merges_by_max () =
  let a = M.create () in
  M.set_gauge (M.gauge a "g") 7;
  let b = M.create () in
  M.set_gauge (M.gauge b "g") 3;
  M.merge ~into:b a;
  M.max_gauge (M.gauge b "g") 5;
  Alcotest.(check string) "max wins" (render b)
    (let c = M.create () in
     M.set_gauge (M.gauge c "g") 7;
     render c)

(* ------------------------------------------------------------------ *)
(* Ambient resolution                                                  *)
(* ------------------------------------------------------------------ *)

let test_bind_attributes_per_runtime () =
  (* two interleaved runtimes, each bound to its own registry: process
     bodies must record into their owner's registry, never the other's *)
  let mk tag =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let r = Exsel_sim.Register.create mem ~name:"r" 0 in
    let reg = M.create () in
    M.bind rt reg;
    let p =
      Runtime.spawn rt ~name:tag (fun () ->
          Runtime.write r 1;
          (match M.ambient () with
          | Some m -> M.inc (M.counter m "seen" ~labels:[ ("rt", tag) ]) 1
          | None -> ());
          Runtime.write r 2)
    in
    (rt, reg, p)
  in
  let rt1, reg1, p1 = mk "one" in
  let rt2, reg2, p2 = mk "two" in
  (* interleave the two runtimes' commits: the ambient lookup between the
     writes runs with the *other* runtime's registry also bound *)
  Runtime.commit rt1 p1;
  Runtime.commit rt2 p2;
  Runtime.commit rt1 p1;
  Runtime.commit rt2 p2;
  M.unbind rt1;
  M.unbind rt2;
  let count reg tag =
    JP.roundtrip (M.to_json reg) |> fun j ->
    match JP.get_list "counters" j with
    | [ c ] ->
        Alcotest.(check string) "name" "seen" (JP.get_string "name" c);
        (match Json.member "labels" c with
        | Some (Json.Obj [ ("rt", Json.String t) ]) ->
            Alcotest.(check string) "label" tag t
        | _ -> Alcotest.fail "bad labels");
        JP.get_int "value" c
    | l -> Alcotest.failf "expected one counter, got %d" (List.length l)
  in
  Alcotest.(check int) "rt1 sees its own increment" 1 (count reg1 "one");
  Alcotest.(check int) "rt2 sees its own increment" 1 (count reg2 "two")

let test_with_ambient_nests_and_restores () =
  let outer = M.create () in
  let inner = M.create () in
  let is reg what =
    match M.ambient () with
    | Some m when m == reg -> ()
    | Some _ -> Alcotest.failf "%s: wrong registry ambient" what
    | None -> Alcotest.failf "%s: no registry ambient" what
  in
  Alcotest.(check bool) "no ambient outside" true (M.ambient () = None);
  M.with_ambient outer (fun () ->
      is outer "outer";
      M.with_ambient inner (fun () -> is inner "inner shadows");
      is outer "outer restored";
      (try M.with_ambient inner (fun () -> failwith "boom") with _ -> ());
      is outer "restored after raise");
  Alcotest.(check bool) "cleared" true (M.ambient () = None)

(* ------------------------------------------------------------------ *)
(* Campaign: -j N byte-identity and document validity                  *)
(* ------------------------------------------------------------------ *)

let small_cfg () =
  let find_a id = Option.get (A.find id) in
  let find_r id = Option.get (Regime.find id) in
  {
    C.default with
    C.algos = [ find_a "ma"; find_a "efficient" ];
    regimes = [ find_r "random"; find_r "crash-half" ];
    seeds = [ 1; 2 ];
    k = 4;
  }

(* run a campaign collecting the full exsel-events/1 stream (mutex: the
   on_event callback fires from worker domains under jobs > 1) *)
let run_with_events ~jobs cfg =
  let mu = Mutex.create () in
  let lines = ref [] in
  let push j =
    Mutex.lock mu;
    lines := Json.to_string j :: !lines;
    Mutex.unlock mu
  in
  push (C.start_event cfg);
  let report = C.run ~jobs ~on_event:(fun ev -> push (C.event_json ev)) cfg in
  push (C.done_event report);
  (report, List.rev !lines)

let test_campaign_jobs_byte_identical () =
  let cfg = small_cfg () in
  let r1, ev1 = run_with_events ~jobs:1 cfg in
  let r2, ev2 = run_with_events ~jobs:2 cfg in
  Alcotest.(check string) "openmetrics identical"
    (M.to_openmetrics r1.C.r_metrics)
    (M.to_openmetrics r2.C.r_metrics);
  Alcotest.(check string) "exsel-metrics/1 identical"
    (render r1.C.r_metrics) (render r2.C.r_metrics);
  (* the event stream is a permutation: sorted lines compare equal *)
  Alcotest.(check (list string)) "event multiset identical"
    (List.sort compare ev1) (List.sort compare ev2);
  Alcotest.(check bool) "streams differ only in order" true
    (List.length ev1 = List.length ev2)

let test_campaign_documents_validate () =
  let cfg = small_cfg () in
  let report, lines = run_with_events ~jobs:2 cfg in
  (match V.events (String.concat "\n" lines ^ "\n") with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "events stream rejected: %s" msg);
  (match V.openmetrics (M.to_openmetrics report.C.r_metrics) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "openmetrics rejected: %s" msg);
  (match V.metrics_doc (JP.roundtrip (M.to_json report.C.r_metrics)) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "metrics doc rejected: %s" msg);
  (* the full conformance report embeds the same registry *)
  let rj = JP.roundtrip (C.to_json report) in
  match Json.member "metrics" rj with
  | Some m -> (
      match V.metrics_doc m with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "embedded metrics rejected: %s" msg)
  | None -> Alcotest.fail "report embeds no metrics"

let test_openmetrics_escapes_label_values () =
  let reg = M.create () in
  M.inc (M.counter reg "c" ~labels:[ ("weird", "a\"b\\c\nd") ]) 2;
  M.observe (M.histogram reg "h" ~labels:[ ("weird", "x\"y") ]) 100;
  let text = M.to_openmetrics reg in
  match V.openmetrics text with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "escaped exposition rejected: %s\n%s" msg text

(* ------------------------------------------------------------------ *)

let q t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "metrics"
    [
      ( "histogram",
        [
          Alcotest.test_case "exact below 64" `Quick test_hist_exact_below_64;
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "kind clash / bad name" `Quick
            test_kind_clash_and_bad_name;
          q qcheck_rank_error;
        ] );
      ( "merge",
        [
          q qcheck_merge_commutative;
          q qcheck_merge_associative;
          Alcotest.test_case "gauge max" `Quick test_gauge_merges_by_max;
        ] );
      ( "ambient",
        [
          Alcotest.test_case "bind per runtime" `Quick
            test_bind_attributes_per_runtime;
          Alcotest.test_case "with_ambient nests" `Quick
            test_with_ambient_nests_and_restores;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "-j 2 byte-identical to -j 1" `Quick
            test_campaign_jobs_byte_identical;
          Alcotest.test_case "documents validate" `Quick
            test_campaign_documents_validate;
          Alcotest.test_case "openmetrics escaping" `Quick
            test_openmetrics_escapes_label_values;
        ] );
    ]
