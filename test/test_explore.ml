(* Model-checking tests: exhaustive schedule exploration of the paper's
   primitives on small instances.  Where the rest of the suite samples
   hundreds of random schedules, these tests check EVERY schedule (and
   every single-crash variant) of a bounded configuration. *)

open Exsel_sim
module R = Exsel_renaming

let no_failure label (o : Explore.outcome) =
  (match o.Explore.failure with
  | Some (msg, sched) ->
      Alcotest.failf "%s: %s via [%s]" label msg
        (String.concat "; "
           (List.map (Format.asprintf "%a" Explore.pp_choice) sched))
  | None -> ());
  Alcotest.(check bool) (label ^ ": not truncated") false o.Explore.truncated;
  Alcotest.(check bool) (label ^ ": explored something") true (o.Explore.paths > 0)

(* --- Compete-For-Register: Lemma 1, exhaustively --- *)

let test_compete_exhaustive_two () =
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let c = R.Compete.create mem ~name:"c" in
    let wins = Array.make 2 false in
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             wins.(i) <- R.Compete.compete c ~me:i))
    done;
    (wins, rt)
  in
  let check wins _rt =
    let winners = Array.to_list wins |> List.filter Fun.id |> List.length in
    if winners > 1 then Error "two winners" else Ok ()
  in
  let o = Explore.run ~init ~check () in
  no_failure "compete x2" o;
  (* both interleavings counts: paths = C(ops) — just sanity-check scale *)
  Alcotest.(check bool) "nontrivial path count" true (o.Explore.paths >= 10)

let test_compete_exhaustive_three () =
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let c = R.Compete.create mem ~name:"c" in
    let wins = Array.make 3 false in
    for i = 0 to 2 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             wins.(i) <- R.Compete.compete c ~me:i))
    done;
    (wins, rt)
  in
  let check wins _rt =
    let winners = Array.to_list wins |> List.filter Fun.id |> List.length in
    if winners > 1 then Error "two winners" else Ok ()
  in
  no_failure "compete x3" (Explore.run ~init ~check ())

let test_compete_exhaustive_with_crash () =
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let c = R.Compete.create mem ~name:"c" in
    let wins = Array.make 2 false in
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             wins.(i) <- R.Compete.compete c ~me:i))
    done;
    (wins, rt)
  in
  let check wins _rt =
    let winners = Array.to_list wins |> List.filter Fun.id |> List.length in
    if winners > 1 then Error "two winners" else Ok ()
  in
  no_failure "compete x2 +crash" (Explore.run ~max_crashes:1 ~init ~check ())

let test_compete_solo_win_all_schedules_of_two_with_crash () =
  (* wait-freedom facet of Lemma 1: if the other contender crashes before
     touching HR, the survivor must win — checked on all such schedules *)
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let c = R.Compete.create mem ~name:"c" in
    let wins = Array.make 2 false in
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             wins.(i) <- R.Compete.compete c ~me:i))
    done;
    ((wins, c), rt)
  in
  let check (wins, c) rt =
    (* exclusiveness always *)
    let winners = Array.to_list wins |> List.filter Fun.id |> List.length in
    if winners > 1 then Error "two winners"
    else
      (* solo guarantee: if p1 crashed with zero steps, p0 must have won *)
      let procs = Runtime.procs rt in
      let p1 = List.nth procs 1 in
      ignore c;
      if
        Runtime.status p1 = Runtime.Crashed
        && Runtime.steps p1 = 0
        && Runtime.status (List.nth procs 0) = Runtime.Done
        && not wins.(0)
      then Error "effectively-solo contender lost"
      else Ok ()
  in
  no_failure "compete solo facet" (Explore.run ~max_crashes:1 ~init ~check ())

(* --- Splitter: exhaustive splitter laws --- *)

let splitter_init contenders () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let s = R.Splitter.create mem ~name:"s" in
  let outs = Array.make contenders None in
  for i = 0 to contenders - 1 do
    ignore
      (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
           outs.(i) <- Some (R.Splitter.enter s ~me:i)))
  done;
  (outs, rt)

let splitter_check outs rt =
  let finished =
    List.filter (fun p -> Runtime.status p = Runtime.Done) (Runtime.procs rt)
  in
  let outcomes =
    List.filter_map (fun p -> outs.(Runtime.pid p)) finished
  in
  let count o = List.length (List.filter (fun x -> x = o) outcomes) in
  if count R.Splitter.Stop > 1 then Error "two processes stopped"
  else if
    (* among processes that finished (not crashed): not all right, not all
       down, when at least one finished *)
    outcomes <> []
    && count R.Splitter.Right = List.length outcomes
    && List.length outcomes = List.length (Runtime.procs rt)
  then Error "all went right"
  else if
    outcomes <> []
    && count R.Splitter.Down = List.length outcomes
    && List.length outcomes = List.length (Runtime.procs rt)
  then Error "all went down"
  else Ok ()

let test_splitter_exhaustive_two () =
  no_failure "splitter x2" (Explore.run ~init:(splitter_init 2) ~check:splitter_check ())

let test_splitter_exhaustive_three () =
  no_failure "splitter x3" (Explore.run ~init:(splitter_init 3) ~check:splitter_check ())

let test_splitter_exhaustive_two_with_crash () =
  no_failure "splitter x2 +crash"
    (Explore.run ~max_crashes:1 ~init:(splitter_init 2) ~check:splitter_check ())

(* --- Two-splitter MA fragment: exclusive names, exhaustively --- *)

let test_ma_grid_exhaustive_two () =
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let ma = R.Moir_anderson.create mem ~name:"ma" ~side:2 in
    let names = Array.make 2 None in
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             names.(i) <- R.Moir_anderson.rename ma ~me:i))
    done;
    (names, rt)
  in
  let check names _rt =
    match (names.(0), names.(1)) with
    | Some a, Some b when a = b -> Error "duplicate MA name"
    | (Some _ | None), (Some _ | None) -> Ok ()
  in
  no_failure "ma 2x2 grid" (Explore.run ~init ~check ())

(* --- Snapshot: scan validity on a tiny instance, exhaustively --- *)

let test_snapshot_exhaustive_tiny () =
  let module Snapshot = Exsel_snapshot.Snapshot in
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let snap = Snapshot.create mem ~name:"w" ~n:2 ~init:0 in
    let view = ref None in
    ignore
      (Runtime.spawn rt ~name:"updater" (fun () ->
           Snapshot.update snap ~me:1 5;
           Snapshot.update snap ~me:1 6));
    ignore
      (Runtime.spawn rt ~name:"scanner" (fun () -> view := Some (Snapshot.scan snap ~me:0)));
    (view, rt)
  in
  let check view rt =
    let scanner =
      List.find (fun p -> Runtime.proc_name p = "scanner") (Runtime.procs rt)
    in
    match (!view, Runtime.status scanner) with
    | None, Runtime.Done -> Error "scanner done without a view"
    | None, _ -> Ok ()
    | Some v, _ ->
        (* component 0 never written: must be 0; component 1 only ever 0,
           5 or 6, and monotone with respect to nothing else here *)
        if v.(0) <> 0 then Error "phantom value in component 0"
        else if v.(1) <> 0 && v.(1) <> 5 && v.(1) <> 6 then
          Error "phantom value in component 1"
        else Ok ()
  in
  let o = Explore.run ~max_paths:2_000_000 ~init ~check () in
  no_failure "snapshot tiny" o

(* --- Immediate snapshot: the three properties, exhaustively --- *)

let test_is_exhaustive_two () =
  let module IS = Exsel_snapshot.Immediate_snapshot in
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let is = IS.create mem ~name:"is" ~n:2 in
    let views = Array.make 2 None in
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             views.(i) <- Some (IS.access is ~me:i (10 + i))))
    done;
    (views, rt)
  in
  let subset a b = List.for_all (fun x -> List.mem x b) a in
  let check views _rt =
    match (views.(0), views.(1)) with
    | Some v0, Some v1 ->
        if not (List.mem_assoc 0 v0 && List.mem_assoc 1 v1) then
          Error "self-inclusion violated"
        else if not (subset v0 v1 || subset v1 v0) then Error "containment violated"
        else if List.mem_assoc 1 v0 && not (subset v1 v0) then
          Error "immediacy violated (0 sees 1)"
        else if List.mem_assoc 0 v1 && not (subset v0 v1) then
          Error "immediacy violated (1 sees 0)"
        else Ok ()
    | _ -> Error "a participant got no view"
  in
  let o = Explore.run ~reduction:`Sleep_sets ~max_paths:500_000 ~init ~check () in
  no_failure "immediate snapshot x2" o

let test_is_rename_exhaustive_two () =
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let ir = R.Is_rename.create mem ~name:"ir" ~n:2 in
    let names = Array.make 2 (-1) in
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             names.(i) <- R.Is_rename.rename ir ~slot:i))
    done;
    (names, rt)
  in
  let check names _rt =
    if names.(0) >= 0 && names.(0) = names.(1) then Error "duplicate IS names"
    else if names.(0) >= 3 || names.(1) >= 3 then Error "name beyond k(k+1)/2"
    else Ok ()
  in
  no_failure "is-rename x2" (Explore.run ~reduction:`Sleep_sets ~init ~check ())

(* --- Chain rename: exclusiveness across the chain, exhaustively --- *)

let test_chain_exhaustive () =
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let c = R.Chain_rename.create mem ~name:"ch" ~m:3 in
    let names = Array.make 2 None in
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             names.(i) <- R.Chain_rename.rename c ~me:i))
    done;
    (names, rt)
  in
  let check names _rt =
    match (names.(0), names.(1)) with
    | Some a, Some b when a = b -> Error "duplicate chain name"
    | (Some _ | None), (Some _ | None) -> Ok ()
  in
  no_failure "chain x2" (Explore.run ~max_paths:2_000_000 ~init ~check ())

(* --- Equivalence with the seed engine ---

   The original explorer re-instantiated the runtime and replayed the full
   prefix at every DFS node.  [reference_run] reproduces that engine
   verbatim (modulo using the public API); the rewritten [Explore.run]
   must report identical paths/states counts and the same first
   counterexample on every instance. *)

(* Returns (paths, states, truncated, failure) — the seed engine predates
   the stats/forensics fields, so the comparison is on the core facts. *)
let reference_run ?(max_crashes = 0) ?(max_paths = 1_000_000) ~init ~check () =
  let paths = ref 0 in
  let states = ref 0 in
  let exception Done of (int * int * bool * (string * Explore.choice list) option) in
  let apply rt = function
    | Explore.Step pid -> Runtime.commit rt (Runtime.proc_by_pid rt pid)
    | Explore.Crash pid -> Runtime.crash rt (Runtime.proc_by_pid rt pid)
  in
  let finish_path ctx rt prefix =
    incr paths;
    (match check ctx rt with
    | Ok () -> ()
    | Error msg -> raise (Done (!paths, !states, false, Some (msg, prefix))));
    if !paths >= max_paths then raise (Done (!paths, !states, true, None))
  in
  let rec explore_full prefix crashes =
    let ctx, rt = init () in
    List.iter (apply rt) prefix;
    match Runtime.runnable rt with
    | [] -> finish_path ctx rt prefix
    | runnable ->
        let pids = List.map Runtime.pid runnable in
        List.iter
          (fun pid ->
            incr states;
            explore_full (prefix @ [ Explore.Step pid ]) crashes)
          pids;
        if crashes < max_crashes then
          List.iter
            (fun pid ->
              incr states;
              explore_full (prefix @ [ Explore.Crash pid ]) (crashes + 1))
            pids
  in
  try
    explore_full [] 0;
    (!paths, !states, false, None)
  with Done o -> o

let check_equivalent ?(max_crashes = 0) ~label ~init ~check () =
  let seed_paths, seed_states, seed_truncated, seed_failure =
    reference_run ~max_crashes ~init ~check ()
  in
  let rewritten = Explore.run ~max_crashes ~init ~check () in
  Alcotest.(check int) (label ^ ": identical paths") seed_paths rewritten.Explore.paths;
  Alcotest.(check int)
    (label ^ ": identical states") seed_states rewritten.Explore.states;
  Alcotest.(check bool)
    (label ^ ": identical truncation") seed_truncated rewritten.Explore.truncated;
  let show = function
    | None -> "ok"
    | Some (msg, sched) ->
        msg ^ " via ["
        ^ String.concat "; " (List.map (Format.asprintf "%a" Explore.pp_choice) sched)
        ^ "]"
  in
  Alcotest.(check string)
    (label ^ ": identical first counterexample")
    (show seed_failure)
    (show rewritten.Explore.failure)

let compete_init n () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let c = R.Compete.create mem ~name:"c" in
  let wins = Array.make n false in
  for i = 0 to n - 1 do
    ignore
      (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
           wins.(i) <- R.Compete.compete c ~me:i))
  done;
  (wins, rt)

let compete_check wins _rt =
  let winners = Array.to_list wins |> List.filter Fun.id |> List.length in
  if winners > 1 then Error "two winners" else Ok ()

let test_equiv_compete_three () =
  check_equivalent ~label:"compete x3" ~init:(compete_init 3) ~check:compete_check ()

let test_equiv_splitter_two () =
  check_equivalent ~label:"splitter x2" ~init:(splitter_init 2) ~check:splitter_check ()

let test_equiv_splitter_three () =
  check_equivalent ~label:"splitter x3" ~init:(splitter_init 3) ~check:splitter_check ()

let test_equiv_crash_facet () =
  (* the crash-facet instance: compete x2 under single-crash decisions,
     including the solo-win invariant, so the counterexample machinery is
     exercised under [Crash] choices too *)
  let init () =
    let wins, rt = compete_init 2 () in
    (wins, rt)
  in
  check_equivalent ~max_crashes:1 ~label:"compete x2 +crash" ~init ~check:compete_check ()

let test_equiv_planted_bug_schedule () =
  (* both engines must report the very same first failing schedule *)
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let r = Register.create mem ~name:"r" 0 in
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             let v = Runtime.read r in
             Runtime.write r (v + 1)))
    done;
    (r, rt)
  in
  let check r _rt = if Register.peek r <> 2 then Error "lost update" else Ok () in
  check_equivalent ~label:"planted bug" ~init ~check ()

(* --- State-hash memoization --- *)

let test_state_hash_prunes_and_preserves_states () =
  (* same distinct-quiescent-state set as the exact engine, fewer or equal
     paths: dedup only skips subtrees already rooted at a visited state *)
  let init = splitter_init 2 in
  let fingerprint outs _rt =
    String.concat ","
      (Array.to_list
         (Array.map
            (function
              | Some R.Splitter.Stop -> "S"
              | Some R.Splitter.Right -> "R"
              | Some R.Splitter.Down -> "D"
              | None -> "-")
            outs))
  in
  let run_mode reduction =
    let seen = Hashtbl.create 64 in
    let o =
      Explore.run ~reduction ~init
        ~check:(fun ctx rt ->
          Hashtbl.replace seen (fingerprint ctx rt) ();
          Ok ())
        ()
    in
    (o, List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen []))
  in
  let full, full_states = run_mode `None in
  let memo, memo_states = run_mode `State_hash in
  Alcotest.(check bool) "no failures" true
    (full.Explore.failure = None && memo.Explore.failure = None);
  Alcotest.(check bool) "memoization explores fewer or equal paths" true
    (memo.Explore.paths <= full.Explore.paths);
  Alcotest.(check bool) "memoization actually prunes here" true
    (memo.Explore.paths < full.Explore.paths);
  Alcotest.(check (list string)) "same quiescent states" full_states memo_states

let test_state_hash_still_finds_violations () =
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let r = Register.create mem ~name:"r" 0 in
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             let v = Runtime.read r in
             Runtime.write r (v + 1)))
    done;
    (r, rt)
  in
  let check r _rt = if Register.peek r <> 2 then Error "lost update" else Ok () in
  let o = Explore.run ~reduction:`State_hash ~init ~check () in
  Alcotest.(check bool) "memoized exploration finds the race" true
    (match o.Explore.failure with Some ("lost update", _) -> true | Some _ | None -> false)

let test_state_hash_with_crashes () =
  (* crash budget is part of the memo key, so exclusiveness still holds
     over every single-crash schedule *)
  let o =
    Explore.run ~reduction:`State_hash ~max_crashes:1 ~init:(compete_init 2)
      ~check:compete_check ()
  in
  no_failure "state-hash +crash" o

(* --- Explore plumbing --- *)

let test_explore_counts_paths () =
  (* two independent single-op processes: exactly 2 interleavings *)
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    for i = 0 to 1 do
      let r = Register.create mem ~name:(string_of_int i) 0 in
      ignore (Runtime.spawn rt ~name:(string_of_int i) (fun () -> Runtime.write r 1))
    done;
    ((), rt)
  in
  let o = Explore.run ~init ~check:(fun () _ -> Ok ()) () in
  Alcotest.(check int) "2 paths" 2 o.Explore.paths

let test_explore_finds_planted_bug () =
  (* a racy increment: exploration must find the lost-update schedule *)
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let r = Register.create mem ~name:"r" 0 in
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             let v = Runtime.read r in
             Runtime.write r (v + 1)))
    done;
    (r, rt)
  in
  let check r _rt = if Register.peek r <> 2 then Error "lost update" else Ok () in
  let o = Explore.run ~init ~check () in
  match o.Explore.failure with
  | Some ("lost update", schedule) ->
      Alcotest.(check bool) "non-empty schedule" true (schedule <> [])
  | Some (msg, _) -> Alcotest.failf "unexpected failure %s" msg
  | None -> Alcotest.fail "exploration missed the planted race"

let test_explore_replay_reproduces () =
  let make () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let r = Register.create mem ~name:"r" 0 in
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             let v = Runtime.read r in
             Runtime.write r (v + 1)))
    done;
    (r, rt)
  in
  let o =
    Explore.run ~init:make ~check:(fun r _ -> if Register.peek r <> 2 then Error "x" else Ok ()) ()
  in
  match o.Explore.failure with
  | None -> Alcotest.fail "expected failure"
  | Some (_, schedule) ->
      let r, rt = make () in
      Explore.replay rt schedule;
      Alcotest.(check bool) "replay reproduces the bad state" true (Register.peek r <> 2)

(* --- Sleep-set reduction: soundness cross-validation --- *)

(* Run an instance in both modes, collecting the set of distinct quiescent
   states (via a caller-supplied fingerprint); the reduced run must reach
   exactly the same state set with no more paths. *)
let cross_validate ~label ~init ~fingerprint =
  let run_mode reduction =
    let seen = Hashtbl.create 64 in
    let o =
      Explore.run ~reduction ~init
        ~check:(fun ctx rt ->
          Hashtbl.replace seen (fingerprint ctx rt) ();
          Ok ())
        ()
    in
    let states = Hashtbl.fold (fun k () acc -> k :: acc) seen [] in
    (o, List.sort compare states)
  in
  let full, full_states = run_mode `None in
  let reduced, reduced_states = run_mode `Sleep_sets in
  Alcotest.(check bool) (label ^ ": no failures") true
    (full.Explore.failure = None && reduced.Explore.failure = None);
  Alcotest.(check bool)
    (label ^ ": reduction explores fewer or equal paths")
    true
    (reduced.Explore.paths <= full.Explore.paths);
  Alcotest.(check (list string)) (label ^ ": same quiescent states") full_states
    reduced_states;
  (full.Explore.paths, reduced.Explore.paths)

let test_por_cross_validate_disjoint_writers () =
  (* fully independent processes: reduction collapses to a single path *)
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let regs =
      Array.init 3 (fun i -> Register.create mem ~name:(string_of_int i) 0)
    in
    for i = 0 to 2 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             Runtime.write regs.(i) (i + 1);
             Runtime.write regs.(i) (i + 10)))
    done;
    (regs, rt)
  in
  let fingerprint regs _rt =
    String.concat "," (Array.to_list (Array.map (fun r -> string_of_int (Register.peek r)) regs))
  in
  let full, reduced = cross_validate ~label:"disjoint" ~init ~fingerprint in
  Alcotest.(check int) "full explores 90 interleavings" 90 full;
  Alcotest.(check int) "reduction collapses to 1" 1 reduced

let test_por_cross_validate_racy_counter () =
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let r = Register.create mem ~name:"r" 0 in
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             let v = Runtime.read r in
             Runtime.write r (v + 1)))
    done;
    (r, rt)
  in
  let fingerprint r _rt = string_of_int (Register.peek r) in
  let _full, _reduced = cross_validate ~label:"racy" ~init ~fingerprint in
  ()

let test_por_cross_validate_compete () =
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let c = R.Compete.create mem ~name:"c" in
    let wins = Array.make 2 false in
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             wins.(i) <- R.Compete.compete c ~me:i))
    done;
    (wins, rt)
  in
  let fingerprint wins _rt =
    Printf.sprintf "%b%b" wins.(0) wins.(1)
  in
  let full, reduced = cross_validate ~label:"compete" ~init ~fingerprint in
  Alcotest.(check bool) "meaningful reduction" true (reduced < full)

let test_por_cross_validate_splitter_three () =
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let s = R.Splitter.create mem ~name:"s" in
    let outs = Array.make 3 None in
    for i = 0 to 2 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             outs.(i) <- Some (R.Splitter.enter s ~me:i)))
    done;
    (outs, rt)
  in
  let fingerprint outs _rt =
    String.concat ","
      (Array.to_list
         (Array.map
            (function
              | Some R.Splitter.Stop -> "S"
              | Some R.Splitter.Right -> "R"
              | Some R.Splitter.Down -> "D"
              | None -> "-")
            outs))
  in
  ignore (cross_validate ~label:"splitter3" ~init ~fingerprint)

let test_por_still_finds_violations () =
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let r = Register.create mem ~name:"r" 0 in
    for i = 0 to 1 do
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             let v = Runtime.read r in
             Runtime.write r (v + 1)))
    done;
    (r, rt)
  in
  let check r _rt = if Register.peek r <> 2 then Error "lost update" else Ok () in
  let o = Explore.run ~reduction:`Sleep_sets ~init ~check () in
  Alcotest.(check bool) "reduced exploration finds the race" true
    (match o.Explore.failure with Some ("lost update", _) -> true | Some _ | None -> false)

let test_por_rejects_crashes () =
  Alcotest.(check bool) "invalid combination rejected" true
    (try
       ignore
         (Explore.run ~reduction:`Sleep_sets ~max_crashes:1
            ~init:(fun () ->
              let mem = Memory.create () in
              ((), Runtime.create mem))
            ~check:(fun () _ -> Ok ())
            ());
       false
     with Invalid_argument _ -> true)

let test_independence_relation () =
  Alcotest.(check bool) "reads commute" true
    (Explore.independent (Runtime.Read 1) (Runtime.Read 1));
  Alcotest.(check bool) "write/read same reg conflict" false
    (Explore.independent (Runtime.Write 1) (Runtime.Read 1));
  Alcotest.(check bool) "writes same reg conflict" false
    (Explore.independent (Runtime.Write 1) (Runtime.Write 1));
  Alcotest.(check bool) "different regs commute" true
    (Explore.independent (Runtime.Write 1) (Runtime.Write 2))

(* --- Execution forensics: failure traces, shrinking, effort stats --- *)

let race_init n () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"ctr" 0 in
  Register.set_printer r string_of_int;
  for i = 0 to n - 1 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "inc%d" i) (fun () ->
           let v = Runtime.read r in
           Runtime.write r (v + 1)))
  done;
  (r, rt)

let race_check n r _rt =
  if Register.peek r = n then Ok () else Error "lost update"

(* replaying [sched] on a fresh instance must reach quiescence and still
   violate the invariant *)
let violates ~init ~check sched =
  let ctx, rt = init () in
  Explore.replay rt sched;
  Runtime.all_quiet rt
  && match check ctx rt with Error _ -> true | Ok () -> false

let test_failure_trace_roundtrip () =
  let init = race_init 2 and check = race_check 2 in
  let o = Explore.run ~init ~check () in
  match o.Explore.failure with
  | None -> Alcotest.fail "expected the racy counter to violate"
  | Some (_msg, sched) ->
      Alcotest.(check bool) "failure trace attached" true
        (o.Explore.failure_trace <> []);
      (* replay-with-trace against a fresh instance reproduces the
         recorded value trace bit-for-bit *)
      let _r, rt = init () in
      let tr = Trace.attach rt in
      Explore.replay rt sched;
      Alcotest.(check bool) "replay reproduces the trace" true
        (Trace.events tr = o.Explore.failure_trace);
      (* the lost update is visible in the values: both increments read 0
         and both write 1 *)
      let writes =
        List.filter_map
          (fun e ->
            match e.Trace.kind with
            | Trace.Write { value; _ } -> Some value
            | _ -> None)
          o.Explore.failure_trace
      in
      Alcotest.(check (list string)) "both writes store 1" [ "1"; "1" ] writes

let test_failure_trace_lifecycle () =
  let init = race_init 2 and check = race_check 2 in
  let o = Explore.run ~init ~check () in
  let count k =
    List.length (List.filter (fun e -> e.Trace.kind = k) o.Explore.failure_trace)
  in
  Alcotest.(check int) "one spawn per process" 2 (count Trace.Spawn);
  Alcotest.(check int) "both processes finish" 2 (count Trace.Done)

let test_crash_counterexample_replay () =
  let init = race_init 2 and check = race_check 2 in
  let o = Explore.run ~max_crashes:1 ~init ~check () in
  match o.Explore.failure with
  | None -> Alcotest.fail "expected a violation under crashes"
  | Some (_msg, sched) ->
      Alcotest.(check bool) "counterexample carries a crash decision" true
        (List.exists (function Explore.Crash _ -> true | Explore.Step _ -> false) sched);
      Alcotest.(check bool) "crash schedule replays to a violation" true
        (violates ~init ~check sched);
      let _r, rt = init () in
      let tr = Trace.attach rt in
      Explore.replay rt sched;
      Alcotest.(check bool) "crash event recorded in trace" true
        (List.exists (fun e -> e.Trace.kind = Trace.Crash) (Trace.events tr));
      Alcotest.(check bool) "replay reproduces the crash trace" true
        (Trace.events tr = o.Explore.failure_trace)

let test_shrink_soundness () =
  let init = race_init 3 and check = race_check 3 in
  let o = Explore.run ~max_crashes:1 ~init ~check () in
  match o.Explore.failure with
  | None -> Alcotest.fail "expected a violation"
  | Some (_msg, sched) ->
      let s1 = Explore.shrink ~init ~check sched in
      Alcotest.(check bool) "shrunk schedule still violates" true
        (violates ~init ~check s1);
      Alcotest.(check bool) "shrunk is no longer than the original" true
        (List.length s1 <= List.length sched);
      let s2 = Explore.shrink ~init ~check s1 in
      Alcotest.(check bool) "shrink is idempotent" true (s1 = s2)

let test_shrink_crash_strictly_smaller () =
  (* dropping a crashed process's earlier steps makes it crash sooner, so
     crash-carrying counterexamples shrink strictly *)
  let init = race_init 2 and check = race_check 2 in
  let o = Explore.run ~max_crashes:1 ~init ~check () in
  match o.Explore.failure with
  | None -> Alcotest.fail "expected a violation"
  | Some (_msg, sched) ->
      let s = Explore.shrink ~init ~check sched in
      Alcotest.(check bool) "strictly shorter" true (List.length s < List.length sched);
      Alcotest.(check bool) "still violates" true (violates ~init ~check s)

let test_shrink_rejects_passing_schedule () =
  let init = race_init 2 and check = race_check 2 in
  (* the round-robin interleaving is correct: read0 write0 read1 write1 *)
  let passing = [ Explore.Step 0; Explore.Step 0; Explore.Step 1; Explore.Step 1 ] in
  Alcotest.(check bool) "passing schedule rejected" true
    (try
       ignore (Explore.shrink ~init ~check passing);
       false
     with Invalid_argument _ -> true)

let test_stats_sanity () =
  let init = compete_init 3 and check = compete_check in
  let o = Explore.run ~init ~check () in
  let st = o.Explore.stats in
  Alcotest.(check int) "depth histogram sums to paths" o.Explore.paths
    (List.fold_left (fun a (_, c) -> a + c) 0 st.Explore.depth_histogram);
  Alcotest.(check bool) "max depth positive" true (st.Explore.max_depth > 0);
  Alcotest.(check bool) "histogram depths bounded by max" true
    (List.for_all (fun (d, _) -> d <= st.Explore.max_depth) st.Explore.depth_histogram);
  (* unreduced, untruncated: every path but the first starts from a popped
     frame, and each pop is exactly one replay *)
  Alcotest.(check int) "replays = paths - 1" (o.Explore.paths - 1) st.Explore.replays;
  Alcotest.(check int) "no sleep prunes without reduction" 0 st.Explore.sleep_prunes;
  Alcotest.(check int) "no hash traffic without memoization" 0
    (st.Explore.hash_hits + st.Explore.hash_misses)

let test_stats_reductions () =
  let memo =
    Explore.run ~reduction:`State_hash ~init:(compete_init 3) ~check:compete_check ()
  in
  Alcotest.(check bool) "memo hits recorded" true
    (memo.Explore.stats.Explore.hash_hits > 0);
  Alcotest.(check bool) "memo misses recorded" true
    (memo.Explore.stats.Explore.hash_misses > 0);
  let slept =
    Explore.run ~reduction:`Sleep_sets ~init:(splitter_init 3) ~check:splitter_check ()
  in
  Alcotest.(check bool) "sleep prunes recorded" true
    (slept.Explore.stats.Explore.sleep_prunes > 0)

let test_explore_truncation () =
  let init () =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    for i = 0 to 2 do
      let r = Register.create mem ~name:(string_of_int i) 0 in
      ignore
        (Runtime.spawn rt ~name:(string_of_int i) (fun () ->
             Runtime.write r 1;
             Runtime.write r 2))
    done;
    ((), rt)
  in
  let o = Explore.run ~max_paths:5 ~init ~check:(fun () _ -> Ok ()) () in
  Alcotest.(check bool) "truncated" true o.Explore.truncated;
  Alcotest.(check int) "stopped at limit" 5 o.Explore.paths

let () =
  Alcotest.run "exsel_explore"
    [
      ( "compete",
        [
          Alcotest.test_case "exhaustive x2" `Quick test_compete_exhaustive_two;
          Alcotest.test_case "exhaustive x3" `Slow test_compete_exhaustive_three;
          Alcotest.test_case "exhaustive x2 +crash" `Quick test_compete_exhaustive_with_crash;
          Alcotest.test_case "solo facet +crash" `Quick
            test_compete_solo_win_all_schedules_of_two_with_crash;
        ] );
      ( "splitter",
        [
          Alcotest.test_case "exhaustive x2" `Quick test_splitter_exhaustive_two;
          Alcotest.test_case "exhaustive x3" `Slow test_splitter_exhaustive_three;
          Alcotest.test_case "exhaustive x2 +crash" `Quick test_splitter_exhaustive_two_with_crash;
        ] );
      ( "composites",
        [
          Alcotest.test_case "ma grid x2" `Quick test_ma_grid_exhaustive_two;
          Alcotest.test_case "snapshot tiny" `Slow test_snapshot_exhaustive_tiny;
          Alcotest.test_case "chain x2" `Slow test_chain_exhaustive;
          Alcotest.test_case "immediate snapshot x2" `Quick test_is_exhaustive_two;
          Alcotest.test_case "is-rename x2" `Quick test_is_rename_exhaustive_two;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "disjoint writers collapse" `Quick test_por_cross_validate_disjoint_writers;
          Alcotest.test_case "racy counter cross-validated" `Quick test_por_cross_validate_racy_counter;
          Alcotest.test_case "compete cross-validated" `Quick test_por_cross_validate_compete;
          Alcotest.test_case "splitter x3 cross-validated" `Slow test_por_cross_validate_splitter_three;
          Alcotest.test_case "violations still found" `Quick test_por_still_finds_violations;
          Alcotest.test_case "crashes rejected" `Quick test_por_rejects_crashes;
          Alcotest.test_case "independence relation" `Quick test_independence_relation;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "compete x3 vs seed engine" `Quick test_equiv_compete_three;
          Alcotest.test_case "splitter x2 vs seed engine" `Quick test_equiv_splitter_two;
          Alcotest.test_case "splitter x3 vs seed engine" `Slow test_equiv_splitter_three;
          Alcotest.test_case "crash facet vs seed engine" `Quick test_equiv_crash_facet;
          Alcotest.test_case "planted-bug schedule identical" `Quick
            test_equiv_planted_bug_schedule;
        ] );
      ( "state-hash",
        [
          Alcotest.test_case "prunes, same quiescent states" `Quick
            test_state_hash_prunes_and_preserves_states;
          Alcotest.test_case "violations still found" `Quick
            test_state_hash_still_finds_violations;
          Alcotest.test_case "with crash decisions" `Quick test_state_hash_with_crashes;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "counts paths" `Quick test_explore_counts_paths;
          Alcotest.test_case "finds planted bug" `Quick test_explore_finds_planted_bug;
          Alcotest.test_case "replay reproduces" `Quick test_explore_replay_reproduces;
          Alcotest.test_case "truncation" `Quick test_explore_truncation;
        ] );
      ( "forensics",
        [
          Alcotest.test_case "failure trace round-trips" `Quick
            test_failure_trace_roundtrip;
          Alcotest.test_case "failure trace lifecycle" `Quick
            test_failure_trace_lifecycle;
          Alcotest.test_case "crash counterexample replays" `Quick
            test_crash_counterexample_replay;
          Alcotest.test_case "shrink sound and idempotent" `Quick
            test_shrink_soundness;
          Alcotest.test_case "shrink strictly under crashes" `Quick
            test_shrink_crash_strictly_smaller;
          Alcotest.test_case "shrink rejects passing schedule" `Quick
            test_shrink_rejects_passing_schedule;
          Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
          Alcotest.test_case "stats under reductions" `Quick test_stats_reductions;
        ] );
    ]
