(* Tests for the native flight recorder's export surfaces (DESIGN.md
   §13): the exsel-native-trace/1 document shape and its golden
   rendering, the Chrome trace-event rendering (one track per domain,
   attributed spans, overhead bars), the Validate.native_trace
   accept/reject behaviour, and the Bench_diff perf trend differ. *)

module H = Exsel_native.Harness
module TN = Exsel_obs.Trace_export.Native
module Json = Exsel_obs.Json
module JP = Exsel_testkit.Json_parse
module V = Exsel_testkit.Validate
module BD = Exsel_testkit.Bench_diff

(* ------------------------------------------------------------------ *)
(* exsel-native-trace/1 document shape                                 *)
(* ------------------------------------------------------------------ *)

(* A tiny hand-built flight record with known numbers: two workers, two
   spans on worker 0, one on worker 1, worker 0 busy 30 of wall 100. *)
let tiny =
  {
    TN.nd_label = Some "tiny";
    nd_domains = 2;
    nd_spawn_ns = 5;
    nd_join_ns = 7;
    nd_wall_ns = 100;
    nd_spans =
      [
        { TN.sp_track = 0; sp_name = "p0"; sp_start_ns = 10; sp_stop_ns = 30 };
        { TN.sp_track = 1; sp_name = "p1"; sp_start_ns = 12; sp_stop_ns = 62 };
        { TN.sp_track = 0; sp_name = "p2"; sp_start_ns = 40; sp_stop_ns = 50 };
      ];
  }

let test_native_doc_golden () =
  (* the full rendering is pinned: field order and derived numbers
     (tasks, per-worker busy/utilization) are part of the contract *)
  let expected =
    "{\"schema\":\"exsel-native-trace/1\",\"label\":\"tiny\",\
     \"clock\":\"wall_ns\",\"domains\":2,\"tasks\":3,\"spawn_ns\":5,\
     \"join_ns\":7,\"wall_ns\":100,\"workers\":[{\"worker\":0,\"tasks\":2,\
     \"busy_ns\":30,\"utilization_ppm\":300000},{\"worker\":1,\"tasks\":1,\
     \"busy_ns\":50,\"utilization_ppm\":500000}],\"spans\":[{\"name\":\"p0\",\
     \"worker\":0,\"start_ns\":10,\"stop_ns\":30},{\"name\":\"p1\",\
     \"worker\":1,\"start_ns\":12,\"stop_ns\":62},{\"name\":\"p2\",\
     \"worker\":0,\"start_ns\":40,\"stop_ns\":50}]}"
  in
  Alcotest.(check string) "golden" expected (Json.to_string (TN.to_json tiny))

let test_native_doc_validates () =
  match V.native_trace (JP.roundtrip (TN.to_json tiny)) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "tiny doc rejected: %s" msg

let test_harness_trace_doc () =
  (* a real run's flight record: one span per process with its name,
     timestamps inside the window, and it passes the validator *)
  let n = 10 in
  let r = H.run ~algo:H.Efficient ~n ~domains:3 ~seed:2 () in
  let d = H.trace_doc r in
  Alcotest.(check int) "one span per process" n (List.length d.TN.nd_spans);
  Alcotest.(check (list string))
    "spans keep task names in spawn order"
    (List.init n (Printf.sprintf "p%d"))
    (List.map (fun s -> s.TN.sp_name) d.TN.nd_spans);
  List.iter
    (fun s ->
      if s.TN.sp_start_ns < 0 || s.TN.sp_stop_ns > d.TN.nd_wall_ns then
        Alcotest.failf "span %s outside the run window" s.TN.sp_name;
      if s.TN.sp_track < 0 || s.TN.sp_track >= d.TN.nd_domains then
        Alcotest.failf "span %s on unknown track %d" s.TN.sp_name s.TN.sp_track)
    d.TN.nd_spans;
  Alcotest.(check string)
    "default label" "efficient n=10 domains=3 seed=2"
    (Option.get d.TN.nd_label);
  match V.native_trace (JP.roundtrip (TN.to_json d)) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "real trace rejected: %s" msg

(* ------------------------------------------------------------------ *)
(* Validator rejections                                                *)
(* ------------------------------------------------------------------ *)

let expect_reject what doc =
  match V.native_trace (JP.roundtrip doc) with
  | Ok () -> Alcotest.failf "%s: accepted" what
  | Error _ -> ()

let test_validator_rejects () =
  expect_reject "wrong schema"
    (Json.Obj [ ("schema", Json.String "exsel-bench/1") ]);
  expect_reject "worker off the pool"
    (TN.to_json
       { tiny with TN.nd_spans = [ { TN.sp_track = 5; sp_name = "p0"; sp_start_ns = 0; sp_stop_ns = 1 } ] });
  expect_reject "span past the wall"
    (TN.to_json
       { tiny with TN.nd_spans = [ { TN.sp_track = 0; sp_name = "p0"; sp_start_ns = 0; sp_stop_ns = 101 } ] });
  expect_reject "stop before start"
    (TN.to_json
       { tiny with TN.nd_spans = [ { TN.sp_track = 0; sp_name = "p0"; sp_start_ns = 9; sp_stop_ns = 3 } ] });
  expect_reject "overlapping spans on one worker"
    (TN.to_json
       {
         tiny with
         TN.nd_spans =
           [
             { TN.sp_track = 0; sp_name = "p0"; sp_start_ns = 0; sp_stop_ns = 50 };
             { TN.sp_track = 0; sp_name = "p1"; sp_start_ns = 40; sp_stop_ns = 60 };
           ];
       });
  expect_reject "negative overhead" (TN.to_json { tiny with TN.nd_spawn_ns = -1 })

(* ------------------------------------------------------------------ *)
(* Chrome rendering                                                    *)
(* ------------------------------------------------------------------ *)

let test_chrome_tracks () =
  let j = JP.roundtrip (TN.chrome tiny) in
  let events = JP.get_list "traceEvents" j in
  let thread_names =
    List.filter_map
      (fun e ->
        if JP.get_string "name" e = "thread_name" then
          Some (JP.get_int "tid" e, JP.get_string "name" (Json.Obj (JP.get_obj "args" e)))
        else None)
      (List.filter (fun e -> JP.get_string "ph" e = "M") events)
  in
  (* one named track per domain, the caller's labelled as such *)
  Alcotest.(check (list (pair int string)))
    "one thread per domain"
    [ (0, "domain 0 (caller)"); (1, "domain 1") ]
    (List.sort compare thread_names);
  let xs = List.filter (fun e -> JP.get_string "ph" e = "X") events in
  let span_xs =
    List.filter
      (fun e -> JP.get_string "name" e <> "domain-spawn" && JP.get_string "name" e <> "join")
      xs
  in
  Alcotest.(check int) "every span rendered" 3 (List.length span_xs);
  List.iter
    (fun e ->
      let args = Json.Obj (JP.get_obj "args" e) in
      let dur_ns = JP.get_int "dur_ns" args in
      Alcotest.(check int) "us scale" (JP.get_int "start_ns" args / 1000) (JP.get_int "ts" e);
      if JP.get_int "dur" e < 1 then Alcotest.fail "invisible sliver";
      if dur_ns <> JP.get_int "stop_ns" args - JP.get_int "start_ns" args then
        Alcotest.fail "ns args inconsistent")
    span_xs;
  (* spawn/join overhead bars land on the caller's track *)
  let overheads = List.filter (fun e -> not (List.memq e span_xs)) xs in
  Alcotest.(check (list (pair string int)))
    "overhead bars on track 0"
    [ ("domain-spawn", 0); ("join", 0) ]
    (List.sort compare
       (List.map (fun e -> (JP.get_string "name" e, JP.get_int "tid" e)) overheads))

(* ------------------------------------------------------------------ *)
(* Bench_diff                                                          *)
(* ------------------------------------------------------------------ *)

let hist ?(p99 = 100) name labels =
  Json.Obj
    [
      ("name", Json.String name);
      ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels));
      ("p50", Json.Int 10);
      ("p90", Json.Int 50);
      ("p99", Json.Int p99);
      ("p999", Json.Int (max p99 200));
    ]

let bench_doc ?(suites = [ "P1" ]) ?(p99 = 100) ?(cell = "1000") () =
  Json.Obj
    [
      ("schema", Json.String "exsel-bench/1");
      ( "experiments",
        Json.List
          (List.map
             (fun id ->
               Json.Obj
                 [
                   ("id", Json.String id);
                   ( "table",
                     Json.Obj
                       [
                         ( "header",
                           Json.List
                             [ Json.String "algo"; Json.String "ops/sec" ] );
                         ( "rows",
                           Json.List
                             [
                               Json.List
                                 [ Json.String "ma"; Json.String cell ];
                             ] );
                       ] );
                 ])
             suites) );
      ( "metrics",
        Json.Obj
          [
            ("schema", Json.String "exsel-metrics/1");
            ( "histograms",
              Json.List [ hist ~p99 "exsel_rename_latency_ns" [ ("algo", "ma") ] ]
            );
          ] );
    ]

let diff_ok ?threshold old_doc new_doc =
  match BD.diff ?threshold ~old_doc ~new_doc () with
  | Ok t -> t
  | Error msg -> Alcotest.failf "diff refused: %s" msg

let test_bench_diff_self () =
  let d = bench_doc () in
  let t = diff_ok d d in
  Alcotest.(check bool) "self-diff clean" false (BD.regressed t);
  Alcotest.(check int) "no cell deltas" 0
    (List.fold_left (fun a (_, ds) -> a + List.length ds) 0 t.BD.suites);
  Alcotest.(check int) "no quantile deltas" 0 (List.length t.BD.quantiles)

let test_bench_diff_missing_suite () =
  let t =
    diff_ok (bench_doc ~suites:[ "P1"; "P2" ] ()) (bench_doc ~suites:[ "P1" ] ())
  in
  Alcotest.(check bool) "missing suite regresses" true (BD.regressed t);
  (* the reverse direction is only a note *)
  let t' =
    diff_ok (bench_doc ~suites:[ "P1" ] ()) (bench_doc ~suites:[ "P1"; "P2" ] ())
  in
  Alcotest.(check bool) "new suite is fine" false (BD.regressed t');
  Alcotest.(check bool) "but noted" true (t'.BD.notes <> [])

let test_bench_diff_quantile_threshold () =
  (* +30% p99 trips the default 25% threshold but not a 50% one *)
  let old_doc = bench_doc ~p99:100 () in
  let new_doc = bench_doc ~p99:130 () in
  let t = diff_ok old_doc new_doc in
  Alcotest.(check bool) "beyond default threshold" true (BD.regressed t);
  let t' = diff_ok ~threshold:0.5 old_doc new_doc in
  Alcotest.(check bool) "within a looser threshold" false (BD.regressed t');
  Alcotest.(check int) "delta still reported" 1 (List.length t'.BD.quantiles);
  (* improvements never regress *)
  let t'' = diff_ok new_doc old_doc in
  Alcotest.(check bool) "improvement is clean" false (BD.regressed t'')

let test_bench_diff_cells_reported_not_gated () =
  let t = diff_ok (bench_doc ~cell:"1000" ()) (bench_doc ~cell:"10" ()) in
  Alcotest.(check bool) "throughput collapse does not gate" false
    (BD.regressed t);
  match t.BD.suites with
  | [ ("P1", [ d ]) ] ->
      Alcotest.(check string) "delta key" "[ma] ops/sec" d.BD.d_key;
      Alcotest.(check (float 0.001)) "old" 1000. d.BD.d_old;
      Alcotest.(check (float 0.001)) "new" 10. d.BD.d_new
  | _ -> Alcotest.fail "expected exactly one cell delta in P1"

let test_bench_diff_render_and_errors () =
  let old_doc = bench_doc ~p99:100 () in
  let bad = bench_doc ~p99:1000 () in
  let s = BD.render (diff_ok old_doc bad) in
  if not (String.length s > 0) then Alcotest.fail "empty render";
  (let has_regression =
     let re = "REGRESSION" in
     let rec find i =
       i + String.length re <= String.length s
       && (String.sub s i (String.length re) = re || find (i + 1))
     in
     find 0
   in
   Alcotest.(check bool) "render flags the regression" true has_regression);
  (match BD.diff ~old_doc:(Json.Obj []) ~new_doc:old_doc () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-bench document accepted");
  match BD.diff ~threshold:(-1.0) ~old_doc ~new_doc:old_doc () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative threshold accepted"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "flight"
    [
      ( "native-trace",
        [
          Alcotest.test_case "golden document" `Quick test_native_doc_golden;
          Alcotest.test_case "tiny doc validates" `Quick
            test_native_doc_validates;
          Alcotest.test_case "harness trace_doc" `Quick test_harness_trace_doc;
          Alcotest.test_case "validator rejects" `Quick test_validator_rejects;
        ] );
      ( "chrome",
        [ Alcotest.test_case "tracks and spans" `Quick test_chrome_tracks ] );
      ( "bench-diff",
        [
          Alcotest.test_case "self-diff clean" `Quick test_bench_diff_self;
          Alcotest.test_case "missing suite" `Quick
            test_bench_diff_missing_suite;
          Alcotest.test_case "quantile threshold" `Quick
            test_bench_diff_quantile_threshold;
          Alcotest.test_case "cells reported not gated" `Quick
            test_bench_diff_cells_reported_not_gated;
          Alcotest.test_case "render and errors" `Quick
            test_bench_diff_render_and_errors;
        ] );
    ]
