(* The adversary DSL: legacy-regime schedule equivalence (the PR's
   byte-identity claim at the unit level — the five historic closures
   are hand-copied here and compared draw-for-draw against their DSL
   derived forms), parser round-trips, combinator semantics (cap,
   budget, phase sequencing, freeze windows), the regime edge cases the
   bugfixes cover, the versioned RNG, and the open-loop workload. *)

module Runtime = Exsel_sim.Runtime
module Memory = Exsel_sim.Memory
module Register = Exsel_sim.Register
module Rng = Exsel_sim.Rng
module Explore = Exsel_sim.Explore
module Freeze = Exsel_lowerbound.Freeze
module Dsl = Exsel_adversary.Dsl
module Runner = Exsel_conformance.Runner
module Regime = Exsel_conformance.Regime
module Workload = Exsel_service.Workload
module Churn = Exsel_service.Churn
module Validate = Exsel_testkit.Validate

(* ------------------------------------------------------------------ *)
(* A deterministic register workload to schedule                       *)
(* ------------------------------------------------------------------ *)

(* k processes, each incrementing a rotating window of k shared
   registers [ops] times: enough writes for crashw victims, enough
   commits (k * 2 * ops) for the crash-plan windows to fire. *)
let make_spec ~k ~ops () =
  {
    Runner.algo = "grid";
    claim = "none";
    init =
      (fun () ->
        let mem = Memory.create () in
        let rt = Runtime.create mem in
        let regs =
          Array.init k (fun i ->
              Register.create mem ~name:(Printf.sprintf "r%d" i) 0)
        in
        for i = 0 to k - 1 do
          ignore
            (Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
                 for j = 1 to ops do
                   let r = regs.((i + j) mod k) in
                   Runtime.write r (Runtime.read r + 1)
                 done))
        done;
        { Runner.runtime = rt; check = (fun () -> Ok ()) });
  }

let choice_str = function
  | Explore.Step p -> "S" ^ string_of_int p
  | Explore.Crash p -> "X" ^ string_of_int p

(* ------------------------------------------------------------------ *)
(* The five historic regime closures, copied verbatim from the         *)
(* pre-DSL lib/conformance/regime.ml (including its two scheduling     *)
(* bugs: physical-equality victim removal and crash draws for          *)
(* already-finished victims — both schedule-invisible, which is what   *)
(* these tests prove)                                                  *)
(* ------------------------------------------------------------------ *)

let random_commit rng rt =
  let n = Runtime.num_runnable rt in
  if n = 0 then None
  else Some (Runner.Commit (Runtime.nth_runnable rt (Rng.int rng n)))

let pick_victims ~seed ~k =
  let a = Array.init k Fun.id in
  Rng.shuffle (Rng.create ~seed:(seed lxor 0x9e3779b9)) a;
  Array.to_list (Array.sub a 0 ((k + 1) / 2))

let old_random ~seed ~k:_ =
  let rng = Rng.create ~seed in
  fun rt -> random_commit rng rt

let old_crash_half ~seed ~k =
  let rng = Rng.create ~seed in
  let plan_rng = Rng.create ~seed:(seed + 1) in
  let remaining =
    ref
      (List.mapi
         (fun i pid -> (pid, Rng.int plan_rng (4 * k * (i + 1))))
         (pick_victims ~seed ~k))
  in
  fun rt ->
    match
      List.find_opt (fun (_, at) -> Runtime.commits rt >= at) !remaining
    with
    | Some ((pid, _) as entry) ->
        remaining := List.filter (fun e -> e != entry) !remaining;
        Some (Runner.Crash (Runtime.proc_by_pid rt pid))
    | None -> random_commit rng rt

let old_crash_on_write ~seed ~k =
  let rng = Rng.create ~seed in
  let remaining = ref (pick_victims ~seed ~k) in
  let write_pending p =
    Runtime.status p = Runtime.Runnable
    &&
    match Runtime.pending p with
    | Some (Runtime.Write _) -> true
    | Some (Runtime.Read _) | None -> false
  in
  fun rt ->
    match
      List.find_opt
        (fun pid -> write_pending (Runtime.proc_by_pid rt pid))
        !remaining
    with
    | Some pid ->
        remaining := List.filter (fun x -> x <> pid) !remaining;
        Some (Runner.Crash (Runtime.proc_by_pid rt pid))
    | None -> random_commit rng rt

let old_freeze ~seed ~k =
  let rng = Rng.create ~seed in
  let victims = pick_victims ~seed:(seed + 2) ~k in
  let freeze_at = 4 + (k / 2) in
  let policy =
    Freeze.freeze_window ~rng ~victims ~freeze_at
      ~thaw_at:(freeze_at + (32 * k))
  in
  fun rt ->
    match policy rt with Some p -> Some (Runner.Commit p) | None -> None

let old_lockstep ~seed ~k:_ =
  let rng = Rng.create ~seed in
  fun rt ->
    if Runtime.num_runnable rt = 0 then None
    else begin
      let min_steps = ref max_int in
      Runtime.iter_runnable rt (fun p ->
          if Runtime.steps p < !min_steps then min_steps := Runtime.steps p);
      let count = ref 0 in
      Runtime.iter_runnable rt (fun p ->
          if Runtime.steps p = !min_steps then incr count);
      let j = Rng.int rng !count in
      let chosen = ref None in
      let i = ref 0 in
      Runtime.iter_runnable rt (fun p ->
          if Runtime.steps p = !min_steps then begin
            if !i = j then chosen := Some p;
            incr i
          end);
      match !chosen with
      | Some p -> Some (Runner.Commit p)
      | None -> None
    end

(* ------------------------------------------------------------------ *)
(* Legacy equivalence: old closure vs DSL regime, schedule for         *)
(* schedule                                                            *)
(* ------------------------------------------------------------------ *)

let regime id =
  match Regime.find id with
  | Some r -> r
  | None -> Alcotest.failf "regime %s missing" id

let check_equiv name old_make id ~k ~ops ~seeds =
  List.iter
    (fun seed ->
      let o_old =
        Runner.drive (make_spec ~k ~ops ()) ~driver:(old_make ~seed ~k)
      in
      let o_new =
        Runner.drive (make_spec ~k ~ops ())
          ~driver:((regime id).Regime.make ~seed ~k)
      in
      Alcotest.(check (list string))
        (Printf.sprintf "%s seed=%d schedule" name seed)
        (List.map choice_str o_old.Runner.schedule)
        (List.map choice_str o_new.Runner.schedule);
      Alcotest.(check int)
        (Printf.sprintf "%s seed=%d commits" name seed)
        o_old.Runner.commits o_new.Runner.commits;
      Alcotest.(check int)
        (Printf.sprintf "%s seed=%d crashed" name seed)
        o_old.Runner.crashed o_new.Runner.crashed;
      Alcotest.(check int)
        (Printf.sprintf "%s seed=%d max_steps" name seed)
        o_old.Runner.max_steps o_new.Runner.max_steps)
    seeds

let seeds = [ 1; 2; 3; 7; 11 ]
let test_equiv_random () = check_equiv "random" old_random "random" ~k:5 ~ops:12 ~seeds

let test_equiv_crash_half () =
  check_equiv "crash-half" old_crash_half "crash-half" ~k:5 ~ops:12 ~seeds

let test_equiv_crash_on_write () =
  check_equiv "crash-on-write" old_crash_on_write "crash-on-write" ~k:5
    ~ops:12 ~seeds

let test_equiv_freeze () =
  check_equiv "freeze" old_freeze "freeze" ~k:5 ~ops:12 ~seeds

let test_equiv_lockstep () =
  check_equiv "lockstep" old_lockstep "lockstep" ~k:5 ~ops:12 ~seeds

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let expr = Alcotest.testable (fun ppf e -> Fmt.string ppf (Dsl.to_string e)) ( = )

let test_parse_round_trip () =
  List.iter
    (fun e ->
      match Dsl.parse (Dsl.to_string e) with
      | Ok e' -> Alcotest.check expr (Dsl.to_string e) e e'
      | Error msg -> Alcotest.failf "%s does not re-parse: %s" (Dsl.to_string e) msg)
    [
      Dsl.legacy_random;
      Dsl.legacy_crash_half;
      Dsl.legacy_crash_on_write;
      Dsl.legacy_freeze;
      Dsl.legacy_lockstep;
      Dsl.First;
      Dsl.Halt;
      Dsl.Freeze (Dsl.Pids [ 0; 2; 4 ], Dsl.Window (10, 60), Dsl.Uniform);
      Dsl.Cap (2, Dsl.Lockstep);
      Dsl.Budget (1, Dsl.Uniform);
      Dsl.Seq (40, Dsl.Lockstep, Dsl.Crash_points (Dsl.Half 0, Dsl.Budget (1, Dsl.Uniform)));
      Dsl.Seq (5, Dsl.First, Dsl.Seq (5, Dsl.Lockstep, Dsl.Uniform));
      Dsl.Crash_on_write (Dsl.Pids [ 1 ], Dsl.Cap (3, Dsl.Uniform));
    ]

let test_parse_errors () =
  List.iter
    (fun s ->
      match Dsl.parse s with
      | Ok e -> Alcotest.failf "%S parsed as %s" s (Dsl.to_string e)
      | Error _ -> ())
    [
      "";
      "bogus";
      "crash(half uniform)";
      "uniform >> lockstep";
      "cap(uniform, 2)";
      "crash(half, uniform) extra";
      "freeze([1,], uniform)";
      "phase(3, uniform) >>";
    ]

let test_regime_of_string () =
  (match Regime.of_string "uniform" with
  | Ok r -> Alcotest.(check string) "dsl id" "dsl:uniform" r.Regime.id
  | Error msg -> Alcotest.failf "uniform rejected: %s" msg);
  (match Regime.of_string "cap(2,  lockstep)" with
  | Ok r ->
      Alcotest.(check string) "canonical id" "dsl:cap(2, lockstep)" r.Regime.id
  | Error msg -> Alcotest.failf "cap rejected: %s" msg);
  match Regime.of_string "nonsense(" with
  | Ok _ -> Alcotest.fail "nonsense parsed"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Combinator semantics (driving a runtime directly)                   *)
(* ------------------------------------------------------------------ *)

(* [counts.(i)] register-increments for process i, all on disjoint
   registers unless [shared] names one register everyone hammers *)
let mk_runtime ?shared ~counts () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let reg i =
    match shared with
    | Some r -> r
    | None -> Register.create mem ~name:(Printf.sprintf "r%d" i) 0
  in
  Array.iteri
    (fun i ops ->
      let r = reg i in
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
             for _ = 1 to ops do
               Runtime.write r 1
             done)))
    counts;
  rt

let drive_dsl rt driver =
  let sched = ref [] in
  let crashes = ref 0 in
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < 100_000 do
    incr steps;
    match driver rt with
    | Some (Dsl.Commit p) ->
        sched := Runtime.pid p :: !sched;
        Runtime.commit rt p
    | Some (Dsl.Crash p) ->
        incr crashes;
        Runtime.crash rt p
    | None -> continue := false
  done;
  (List.rev !sched, !crashes)

let test_cap_alternates () =
  let rt = mk_runtime ~counts:[| 6; 6 |] () in
  let driver = Dsl.compile (Dsl.Cap (1, Dsl.First)) ~seed:1 ~k:2 in
  let sched, _ = drive_dsl rt driver in
  Alcotest.(check (list int))
    "cap(1, first) alternates"
    [ 0; 1; 0; 1; 0; 1; 0; 1; 0; 1; 0; 1 ]
    sched;
  Alcotest.(check bool) "quiesced" true (Runtime.all_quiet rt)

let test_cap_relaxes_when_alone () =
  let rt = mk_runtime ~counts:[| 5 |] () in
  let driver = Dsl.compile (Dsl.Cap (1, Dsl.First)) ~seed:1 ~k:1 in
  let sched, _ = drive_dsl rt driver in
  Alcotest.(check (list int)) "sole process keeps running" [ 0; 0; 0; 0; 0 ] sched

let test_budget_drains_lowest_pid () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let r = Register.create mem ~name:"hot" 0 in
  for i = 0 to 2 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
           for _ = 1 to 4 do
             Runtime.write r 1
           done))
  done;
  let driver = Dsl.compile (Dsl.Budget (1, Dsl.Uniform)) ~seed:9 ~k:3 in
  let sched, _ = drive_dsl rt driver in
  (* three pending writers on one register with budget 1: the forced
     drain always picks the lowest pid, so the schedule is sorted *)
  Alcotest.(check (list int))
    "forced drains in pid order"
    [ 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2 ]
    sched

let test_budget_slack_is_inner_term () =
  (* a budget no census ever exceeds never forces a drain, so the term
     is draw-for-draw its inner scheduler *)
  let spec = make_spec ~k:4 ~ops:8 in
  let o_plain =
    Runner.drive (spec ()) ~driver:((regime "random").Regime.make ~seed:5 ~k:4)
  in
  let budget =
    match Regime.of_string "budget(64, uniform)" with
    | Ok r -> r
    | Error msg -> Alcotest.failf "budget(64, uniform): %s" msg
  in
  let o_budget =
    Runner.drive (spec ()) ~driver:(budget.Regime.make ~seed:5 ~k:4)
  in
  Alcotest.(check (list string))
    "slack budget = uniform"
    (List.map choice_str o_plain.Runner.schedule)
    (List.map choice_str o_budget.Runner.schedule)

let test_phase_budget_then_halt () =
  let rt = mk_runtime ~counts:[| 4; 4 |] () in
  let driver = Dsl.compile (Dsl.Seq (3, Dsl.First, Dsl.Halt)) ~seed:1 ~k:2 in
  let sched, _ = drive_dsl rt driver in
  Alcotest.(check int) "exactly 3 decisions issued" 3 (List.length sched);
  Alcotest.(check bool) "work remains" false (Runtime.all_quiet rt)

let test_phase_switches_permanently () =
  let rt = mk_runtime ~counts:[| 4; 4 |] () in
  (* 2 decisions of first-runnable, then cap(1, first) alternation *)
  let driver =
    Dsl.compile (Dsl.Seq (2, Dsl.First, Dsl.Cap (1, Dsl.First))) ~seed:1 ~k:2
  in
  let sched, _ = drive_dsl rt driver in
  Alcotest.(check (list int))
    "first-first then alternation"
    [ 0; 0; 0; 1; 0; 1; 1; 1 ]
    sched;
  Alcotest.(check bool) "quiesced" true (Runtime.all_quiet rt)

(* ------------------------------------------------------------------ *)
(* Regime edge cases (the bugfix coverage)                             *)
(* ------------------------------------------------------------------ *)

let test_crash_plan_skips_decided_victim () =
  let rt = mk_runtime ~counts:[| 1; 12 |] () in
  (* run the victim to completion before the adversary ever speaks *)
  while Runtime.status (Runtime.proc_by_pid rt 0) = Runtime.Runnable do
    Runtime.commit rt (Runtime.proc_by_pid rt 0)
  done;
  let driver =
    Dsl.compile (Dsl.Crash_points (Dsl.Pids [ 0 ], Dsl.First)) ~seed:3 ~k:2
  in
  let sched, crashes = drive_dsl rt driver in
  Alcotest.(check int) "no crash issued for a decided victim" 0 crashes;
  Alcotest.(check int) "the survivor finishes" 12 (List.length sched);
  Alcotest.(check bool) "quiesced" true (Runtime.all_quiet rt)

let test_crashw_skips_decided_victim () =
  let rt = mk_runtime ~counts:[| 1; 12 |] () in
  while Runtime.status (Runtime.proc_by_pid rt 0) = Runtime.Runnable do
    Runtime.commit rt (Runtime.proc_by_pid rt 0)
  done;
  let driver =
    Dsl.compile (Dsl.Crash_on_write (Dsl.Pids [ 0 ], Dsl.First)) ~seed:3 ~k:2
  in
  let _, crashes = drive_dsl rt driver in
  Alcotest.(check int) "no crash issued for a decided victim" 0 crashes;
  Alcotest.(check bool) "quiesced" true (Runtime.all_quiet rt)

let test_freeze_window_never_thaws () =
  (* a window far larger than the execution: the victim stays frozen
     until nothing else is eligible, then thaws permanently so the run
     still completes *)
  let rt = mk_runtime ~counts:[| 5; 5 |] () in
  let driver =
    Dsl.compile
      (Dsl.Freeze (Dsl.Pids [ 0 ], Dsl.Window (0, 1_000_000), Dsl.First))
      ~seed:1 ~k:2
  in
  let sched, _ = drive_dsl rt driver in
  Alcotest.(check (list int))
    "survivor first, frozen victim after the early permanent thaw"
    [ 1; 1; 1; 1; 1; 0; 0; 0; 0; 0 ]
    sched;
  Alcotest.(check bool) "quiesced" true (Runtime.all_quiet rt)

let test_lockstep_single_runnable () =
  let rt = mk_runtime ~counts:[| 5 |] () in
  let driver = Dsl.compile Dsl.Lockstep ~seed:1 ~k:1 in
  let sched, _ = drive_dsl rt driver in
  Alcotest.(check (list int)) "sole process runs" [ 0; 0; 0; 0; 0 ] sched;
  Alcotest.(check bool) "quiesced" true (Runtime.all_quiet rt)

(* ------------------------------------------------------------------ *)
(* Versioned RNG                                                       *)
(* ------------------------------------------------------------------ *)

let test_v1_golden_sequence () =
  (* the V1 stream is frozen forever: every seeded schedule and
     checked-in baseline depends on it bit-for-bit *)
  let r = Rng.create ~seed:42 in
  Alcotest.(check (list int))
    "seed 42, bound 1000"
    [ 140; 595; 570; 183; 779; 57; 244; 993 ]
    (List.init 8 (fun _ -> Rng.int r 1000))

let test_v2_determinism_and_range () =
  let a = Rng.create_v2 ~seed:7 and b = Rng.create_v2 ~seed:7 in
  for _ = 1 to 1000 do
    let bound = 1 + Rng.int (Rng.create ~seed:1) 1 in
    ignore bound;
    let x = Rng.int a 13 in
    Alcotest.(check int) "same stream" x (Rng.int b 13);
    if x < 0 || x >= 13 then Alcotest.failf "V2 draw %d out of range" x
  done;
  Alcotest.(check bool) "tagged V2" true (Rng.version a = Rng.V2);
  Alcotest.(check bool)
    "split inherits the version" true
    (Rng.version (Rng.split a) = Rng.V2);
  Alcotest.(check bool)
    "V1 split stays V1" true
    (Rng.version (Rng.split (Rng.create ~seed:3)) = Rng.V1)

let test_pick_weighted_rejects_zero () =
  let r = Rng.create ~seed:1 in
  (match Rng.pick_weighted r [ ("a", 0); ("b", 0) ] with
  | exception Invalid_argument msg ->
      Alcotest.(check string)
        "all-zero message" "Rng.pick_weighted: all weights are zero" msg
  | _ -> Alcotest.fail "all-zero weights accepted");
  (match Rng.pick_weighted r [] with
  | exception Invalid_argument msg ->
      Alcotest.(check string)
        "empty message" "Rng.pick_weighted: empty list" msg
  | _ -> Alcotest.fail "empty list accepted");
  match Rng.pick_weighted r [ ("a", 0); ("b", 2) ] with
  | "b", _ -> ()
  | x, _ -> Alcotest.failf "zero-weight element %s drawn" x

(* ------------------------------------------------------------------ *)
(* Open-loop workload                                                  *)
(* ------------------------------------------------------------------ *)

let small_workload =
  {
    Workload.default with
    Workload.shards = 2;
    cap = 3;
    rounds = 4;
    rate = 2;
    seeds = [ 1 ];
  }

let test_workload_deterministic_and_valid () =
  let doc () = Exsel_obs.Json.to_string (Workload.to_json (Workload.run small_workload)) in
  let a = doc () and b = doc () in
  Alcotest.(check string) "re-run is byte-identical" a b;
  match Validate.workload (Workload.run small_workload |> Workload.to_json) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "workload report invalid: %s" msg

let test_workload_parallel_identical () =
  let cfg = { small_workload with Workload.seeds = [ 1; 2 ] } in
  let seq = Exsel_obs.Json.to_string (Workload.to_json (Workload.run ~jobs:1 cfg)) in
  let par = Exsel_obs.Json.to_string (Workload.to_json (Workload.run ~jobs:2 cfg)) in
  Alcotest.(check string) "-j 2 byte-identical" seq par

let test_workload_quantiles_present () =
  let report = Workload.run small_workload in
  List.iter
    (fun c ->
      let h =
        Exsel_obs.Metrics.histogram c.Workload.w_metrics
          "exsel_workload_acquire_latency_commits"
          ~labels:
            [ ("pattern", c.Workload.w_pattern); ("backend", "sim") ]
      in
      if c.Workload.w_acquires > 0 then begin
        let p50 = Exsel_obs.Metrics.hquantile h 0.50 in
        let p999 = Exsel_obs.Metrics.hquantile h 0.999 in
        if p50 <= 0 then
          Alcotest.failf "%s cell has empty acquire histogram"
            c.Workload.w_pattern;
        if p999 < p50 then Alcotest.fail "p999 below p50"
      end)
    report.Workload.wr_cells

let test_workload_adversary_schedules () =
  let cfg =
    { small_workload with Workload.adversary = Some (Dsl.Cap (2, Dsl.Lockstep)) }
  in
  let report = Workload.run cfg in
  Alcotest.(check int) "no violations" 0 report.Workload.wr_violations;
  match Validate.workload (Workload.to_json report) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "adversary workload invalid: %s" msg

let test_workload_validate_rejections () =
  (match
     Workload.validate
       {
         small_workload with
         Workload.backend = Churn.Native { domains = 2 };
         adversary = Some Dsl.Uniform;
       }
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "native + adversary accepted");
  match
    Workload.validate
      {
        small_workload with
        Workload.adversary = Some (Dsl.Crash_points (Dsl.Half 0, Dsl.Uniform));
      }
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "crash-capable adversary accepted for the service"

let () =
  Alcotest.run "adversary"
    [
      ( "legacy-equivalence",
        [
          Alcotest.test_case "random" `Quick test_equiv_random;
          Alcotest.test_case "crash-half" `Quick test_equiv_crash_half;
          Alcotest.test_case "crash-on-write" `Quick test_equiv_crash_on_write;
          Alcotest.test_case "freeze" `Quick test_equiv_freeze;
          Alcotest.test_case "lockstep" `Quick test_equiv_lockstep;
        ] );
      ( "parser",
        [
          Alcotest.test_case "round-trip" `Quick test_parse_round_trip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "regime of_string" `Quick test_regime_of_string;
        ] );
      ( "combinators",
        [
          Alcotest.test_case "cap alternates" `Quick test_cap_alternates;
          Alcotest.test_case "cap relaxes when alone" `Quick
            test_cap_relaxes_when_alone;
          Alcotest.test_case "budget drains lowest pid" `Quick
            test_budget_drains_lowest_pid;
          Alcotest.test_case "slack budget = inner term" `Quick
            test_budget_slack_is_inner_term;
          Alcotest.test_case "phase then halt" `Quick test_phase_budget_then_halt;
          Alcotest.test_case "phase switches permanently" `Quick
            test_phase_switches_permanently;
        ] );
      ( "regime-edges",
        [
          Alcotest.test_case "crash plan skips decided victim" `Quick
            test_crash_plan_skips_decided_victim;
          Alcotest.test_case "crashw skips decided victim" `Quick
            test_crashw_skips_decided_victim;
          Alcotest.test_case "freeze window never thaws" `Quick
            test_freeze_window_never_thaws;
          Alcotest.test_case "lockstep single runnable" `Quick
            test_lockstep_single_runnable;
        ] );
      ( "rng",
        [
          Alcotest.test_case "v1 golden sequence" `Quick test_v1_golden_sequence;
          Alcotest.test_case "v2 determinism and range" `Quick
            test_v2_determinism_and_range;
          Alcotest.test_case "pick_weighted zero weights" `Quick
            test_pick_weighted_rejects_zero;
        ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic and valid" `Quick
            test_workload_deterministic_and_valid;
          Alcotest.test_case "-j 2 byte-identical" `Quick
            test_workload_parallel_identical;
          Alcotest.test_case "quantiles present" `Quick
            test_workload_quantiles_present;
          Alcotest.test_case "adversary schedules" `Quick
            test_workload_adversary_schedules;
          Alcotest.test_case "validate rejections" `Quick
            test_workload_validate_rejections;
        ] );
    ]
