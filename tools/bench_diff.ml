(* Perf trend differ: compare two exsel-bench/1 documents and fail on
   regressions.  Exit 0 when the new document is no worse than the old
   one, 1 on a regression (missing suite, missing histogram, or a
   latency quantile beyond the threshold), 2 on usage or parse errors.
   The comparison itself lives in Exsel_testkit.Bench_diff so the test
   suite exercises it directly. *)

module JP = Exsel_testkit.Json_parse
module BD = Exsel_testkit.Bench_diff

let usage () =
  prerr_endline
    "usage: bench_diff [--threshold FRACTION] OLD.json NEW.json\n\
    \  Compare two exsel-bench/1 documents.  Table cell deltas are\n\
    \  reported; a suite or histogram missing from NEW, or a latency\n\
    \  quantile grown beyond the threshold (default 0.25 = +25%), is a\n\
    \  regression.  Exit 0 ok, 1 regression, 2 usage/parse error.";
  exit 2

let load path =
  let contents =
    match In_channel.with_open_bin path In_channel.input_all with
    | contents -> contents
    | exception Sys_error msg ->
        Printf.eprintf "bench_diff: %s\n" msg;
        exit 2
  in
  try JP.parse contents
  with JP.Parse msg ->
    Printf.eprintf "bench_diff: %s does not parse: %s\n" path msg;
    exit 2

let () =
  let threshold = ref 0.25 in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f >= 0.0 ->
            threshold := f;
            parse_args rest
        | _ ->
            Printf.eprintf "bench_diff: bad threshold %S\n" v;
            usage ())
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        Printf.eprintf "bench_diff: unknown option %s\n" arg;
        usage ()
    | arg :: rest ->
        files := arg :: !files;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ old_path; new_path ] -> (
      let old_doc = load old_path in
      let new_doc = load new_path in
      match BD.diff ~threshold:!threshold ~old_doc ~new_doc () with
      | Error msg ->
          Printf.eprintf "bench_diff: %s\n" msg;
          exit 2
      | Ok result ->
          print_string (BD.render result);
          exit (if BD.regressed result then 1 else 0))
  | _ -> usage ()
