(* CI front-end for Exsel_testkit.Validate: check an artifact file and
   exit 0 (valid) or 1 (invalid, reason on stderr).  Usage errors exit 2.
   This replaces the inline python validation for the streaming
   documents, so CI runs the exact checks the test suite runs. *)

module Json = Exsel_obs.Json
module JP = Exsel_testkit.Json_parse
module V = Exsel_testkit.Validate

let usage () =
  prerr_endline
    "usage: validate_docs \
     {events|openmetrics|json SCHEMA|metrics-in-report|native-trace|bench-p7|service|workload|docs} \
     FILE|DIR\n\
    \  events             FILE is an exsel-events/1 NDJSON stream\n\
    \  openmetrics        FILE is an OpenMetrics text exposition\n\
    \  json SCHEMA        FILE is a JSON document with the given schema tag\n\
    \  metrics-in-report  FILE is a report embedding an exsel-metrics/1 \
     document\n\
    \  native-trace       FILE is an exsel-native-trace/1 flight record\n\
    \  bench-p7           FILE is an exsel-bench/1 document whose P7 native\n\
    \                     section has a full domain sweep, fully decided rows\n\
    \                     and backend=\"native\" latency metrics\n\
    \  service            FILE is an exsel-service/1 churn-campaign report\n\
    \  workload           FILE is an exsel-workload/1 open-loop traffic report\n\
    \  docs               DIR is the repo root; check the service and\n\
    \                     adversary layers' documentation cross-references\n\
    \                     (DESIGN.md \xc2\xa714/\xc2\xa715, EXPERIMENTS.md churn and\n\
    \                     open-loop walkthroughs, doc/ALGORITHMS.md claim\n\
    \                     rows, README)";
  exit 2

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> contents
  | exception Sys_error msg ->
      Printf.eprintf "validate_docs: %s\n" msg;
      exit 2

let finish what path = function
  | Ok () ->
      Printf.printf "validate_docs: %s ok: %s\n" what path;
      exit 0
  | Error msg ->
      Printf.eprintf "validate_docs: %s INVALID: %s: %s\n" what path msg;
      exit 1

let parse_json path contents =
  try JP.parse contents
  with JP.Parse msg ->
    Printf.eprintf "validate_docs: %s does not parse: %s\n" path msg;
    exit 1

let () =
  match Array.to_list Sys.argv with
  | [ _; "events"; path ] -> finish "events" path (V.events (read_file path))
  | [ _; "openmetrics"; path ] ->
      finish "openmetrics" path (V.openmetrics (read_file path))
  | [ _; "json"; schema; path ] ->
      let j = parse_json path (read_file path) in
      finish "json" path
        (if Json.member "schema" j = Some (Json.String schema) then Ok ()
         else Error (Printf.sprintf "schema is not %S" schema))
  | [ _; "metrics-in-report"; path ] ->
      let j = parse_json path (read_file path) in
      finish "metrics-in-report" path
        (match Json.member "metrics" j with
        | Some m -> V.metrics_doc m
        | None -> Error "report embeds no \"metrics\" field")
  | [ _; "native-trace"; path ] ->
      let j = parse_json path (read_file path) in
      finish "native-trace" path (V.native_trace j)
  | [ _; "bench-p7"; path ] ->
      let j = parse_json path (read_file path) in
      finish "bench-p7" path (V.bench_p7 j)
  | [ _; "service"; path ] ->
      let j = parse_json path (read_file path) in
      finish "service" path (V.service j)
  | [ _; "workload"; path ] ->
      let j = parse_json path (read_file path) in
      finish "workload" path (V.workload j)
  | [ _; "docs"; dir ] ->
      let read name = read_file (Filename.concat dir name) in
      let design = read "DESIGN.md" in
      let experiments = read "EXPERIMENTS.md" in
      let readme = read "README.md" in
      finish "docs" dir
        (match
           V.service_docs ~design ~experiments
             ~algorithms:(read "doc/ALGORITHMS.md") ~readme
         with
        | Ok () -> V.adversary_docs ~design ~experiments ~readme
        | Error _ as e -> e)
  | _ -> usage ()
