(* A participant's published state: joined with no proposal yet, or
   proposing a concrete name.  [None] in a component means absent
   (never joined, or withdrawn). *)
type cell = { id : int; proposal : int option }

(* The [rank]-th (1-based) natural number not present in [taken]. *)
let nth_free taken rank =
  let taken = List.sort_uniq compare taken in
  let rec go candidate remaining taken =
    match taken with
    | next :: rest when next = candidate -> go (candidate + 1) remaining rest
    | _ ->
        if remaining = 1 then candidate
        else go (candidate + 1) (remaining - 1) taken
  in
  go 0 rank taken

module type S = sig
  type memory
  type t

  val create : memory -> name:string -> slots:int -> ?cap:int -> unit -> t
  val slots : t -> int
  val rename : t -> slot:int -> int option
end

module Make (B : Exsel_backend.Intf.S) = struct
  module Snapshot = Exsel_snapshot.Snapshot.Make (B)

  type memory = B.memory

  type t = {
    slots : int;
    cap : int option;
    snap : cell option Snapshot.t;
  }

  let create mem ~name ~slots ?cap () =
    if slots <= 0 then invalid_arg "Attiya_renaming.create: slots must be positive";
    { slots; cap; snap = Snapshot.create mem ~name ~n:slots ~init:None }

  let slots t = t.slots

  let rename t ~slot =
    if slot < 0 || slot >= t.slots then
      invalid_arg "Attiya_renaming.rename: slot out of range";
    let rec round proposal =
      Snapshot.update t.snap ~me:slot (Some { id = slot; proposal });
      let view = Snapshot.scan t.snap ~me:slot in
      let others =
        view |> Array.to_list
        |> List.filter_map (fun c -> c)
        |> List.filter (fun c -> c.id <> slot)
      in
      let taken = List.filter_map (fun c -> c.proposal) others in
      match proposal with
      | Some name when not (List.mem name taken) -> Some name
      | Some _ | None -> (
          let participants_below =
            List.length (List.filter (fun c -> c.id < slot) others)
          in
          let rank = participants_below + 1 in
          let next = nth_free taken rank in
          match t.cap with
          | Some cap when next > cap ->
              Snapshot.update t.snap ~me:slot None;
              None
          | Some _ | None -> round (Some next))
    in
    round None
end

include Make (Exsel_sim.Backend)

let name_bound ~contenders = (2 * contenders) - 1
