type cell = { id : int; proposal : int option }

(* The [rank]-th (1-based) natural number not present in [taken].
   Backend-independent: pure list arithmetic on a scanned view. *)
let nth_free taken rank =
  let taken = List.sort_uniq compare taken in
  let rec go candidate remaining taken =
    match taken with
    | next :: rest when next = candidate -> go (candidate + 1) remaining rest
    | _ -> if remaining = 1 then candidate else go (candidate + 1) (remaining - 1) taken
  in
  go 0 rank taken

module type S = sig
  type memory
  type t

  val create : memory -> name:string -> n:int -> t
  val n : t -> int
  val acquire : t -> me:int -> int
  val release : t -> me:int -> unit
  val holder_view : t -> int option array
end

module Make (B : Exsel_backend.Intf.S) = struct
  module Snapshot = Exsel_snapshot.Snapshot.Make (B)

  type memory = B.memory

  type t = { n : int; snap : cell option Snapshot.t }

  let create mem ~name ~n =
    if n <= 0 then invalid_arg "Long_lived.create: n must be positive";
    { n; snap = Snapshot.create mem ~name ~n ~init:None }

  let n t = t.n

  (* Same proposal loop as the one-shot algorithm; the difference is in the
     lifecycle — a decided name stays published until [release], and the
     component can be reused for the next acquire. *)
  let acquire t ~me =
    if me < 0 || me >= t.n then invalid_arg "Long_lived.acquire: bad slot";
    let rec round proposal =
      Snapshot.update t.snap ~me (Some { id = me; proposal });
      let view = Snapshot.scan t.snap ~me in
      let others =
        view |> Array.to_list
        |> List.filter_map (fun c -> c)
        |> List.filter (fun c -> c.id <> me)
      in
      let taken = List.filter_map (fun c -> c.proposal) others in
      match proposal with
      | Some name when not (List.mem name taken) -> name
      | Some _ | None ->
          let participants_below =
            List.length (List.filter (fun c -> c.id < me) others)
          in
          let rank = participants_below + 1 in
          round (Some (nth_free taken rank))
    in
    round None

  let release t ~me = Snapshot.update t.snap ~me None

  let holder_view t =
    Array.map
      (fun c -> match c with Some { proposal; _ } -> proposal | None -> None)
      (Snapshot.peek t.snap)
end

include Make (Exsel_sim.Backend)
