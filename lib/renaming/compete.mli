(** Compete-For-Register (paper, Figure 1 and Lemma 1).

    A competition object over one register [R] with a placeholder register
    [HR].  Its two guarantees (Lemma 1):

    - {e wins are exclusive}: at most one contender ever wins;
    - {e solo wins}: a contender running with no other contender wins.

    Under contention the object may be won by nobody — that weakness is
    what the expander machinery compensates for.  Costs at most 5 local
    steps and uses exactly 2 registers. *)

(** The object over any {!Exsel_backend.Intf.S} substrate. *)
module type S = sig
  type memory
  type t

  val create : memory -> name:string -> t
  (** Allocate the register pair, both initialised to the paper's [null]. *)

  val compete : t -> me:int -> bool
  (** [compete t ~me] runs the procedure of Figure 1 for a process with
      identifier [me] (any integer unique to the caller).  Returns [true]
      on a win.  Must be called from inside a backend process, at most
      once per process per object. *)

  val occupant : t -> int option
  (** The identifier currently stored in [R] (test inspection,
      non-atomic).  Note this is {e not} necessarily a winner: a contender
      may write [R] and still lose the final placeholder check.
      Exclusiveness is about [compete] returning [true], which tests must
      collect at call sites. *)
end

module Make (B : Exsel_backend.Intf.S) : S with type memory = B.memory

include S with type memory = Exsel_sim.Memory.t
(** The simulator instantiation. *)

val steps_bound : int
(** Worst-case local steps of one [compete] call (5: three reads
    interleaved with two writes). *)

val registers_per_instance : int
(** Registers allocated by [create] (2). *)
