(** Wait-free splitter (Moir–Anderson / Lamport fast-path).

    A splitter partitions the processes that enter it: at most one {e stops}
    (captures the splitter), and of the rest, not all go right and not all
    go down — if [x] processes enter, at most [x−1] leave right and at most
    [x−1] leave down, and a solo entrant always stops.  Building block of
    the MA(k) renaming grid [41] used by the paper's Theorem 2. *)

type outcome = Stop | Right | Down

(** The splitter over any {!Exsel_backend.Intf.S} substrate ([memory] is
    that backend's allocation arena). *)
module type S = sig
  type memory
  type t

  val create : memory -> name:string -> t
  (** Allocates the 2 registers of the splitter. *)

  val enter : t -> me:int -> outcome
  (** Run the splitter.  At most 4 local steps.  Must be called from
      inside a backend process, at most once per process per splitter. *)

  val enter_racy : t -> me:int -> outcome
  (** {!enter} with the stop/right race {e deliberately reintroduced}: the
      final door re-check is skipped, so two contenders can both stop.
      This is the negative-control target of the conformance campaigns
      ({!Exsel_conformance}) — a grid built on it assigns duplicate names
      under contention, proving the harness catches and shrinks real
      violations.  Never use it in an actual composition. *)

  val captured_by : t -> int option
  (** Identifier that stopped here, if any (test inspection, non-atomic;
      sound only after the execution is quiet, when it equals the unique
      stopped process). *)
end

module Make (B : Exsel_backend.Intf.S) : S with type memory = B.memory
(** The algorithm, written once against the backend interface
    (DESIGN.md §12). *)

include S with type memory = Exsel_sim.Memory.t
(** The simulator instantiation — what every existing composition,
    explorer target and test uses. *)

val steps_bound : int
(** Worst-case local steps of [enter] (4). *)

val registers_per_instance : int
(** Registers allocated by [create] (2). *)
