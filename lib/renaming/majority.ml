module Bipartite = Exsel_expander.Bipartite
module Gen = Exsel_expander.Gen
module Params = Exsel_expander.Params

module Span = Exsel_obs.Span
module Check = Exsel_expander.Check

(* Sample a graph and certify the unique-neighbour majority property
   (exhaustively when the subset space is tiny, statistically otherwise);
   resample with fresh randomness on failure.  The last attempt is accepted
   uncertified — the caller's reserve lane covers the residual risk. *)
let sample_certified rng params ~inputs ~l ~attempts =
  let certify g =
    let cost = Check.exhaustive_cost ~inputs ~l in
    if cost <= 20_000 then Check.verify_exhaustive g ~l
    else
      Check.verify_sampled (Exsel_sim.Rng.split rng) g ~l
        ~trials:(min 200 (20 * l))
  in
  let rec go n =
    let g = Gen.sample (Exsel_sim.Rng.split rng) params ~inputs ~l in
    if n <= 1 then g
    else match certify g with Ok () -> g | Error _ -> go (n - 1)
  in
  go attempts

module type S = sig
  type memory
  type t

  val create :
    ?params:Exsel_expander.Params.t ->
    rng:Exsel_sim.Rng.t ->
    memory ->
    name:string ->
    l:int ->
    inputs:int ->
    t

  val graph : t -> Exsel_expander.Bipartite.t
  val contention_budget : t -> int
  val names : t -> int
  val rename : t -> me:int -> int option
  val steps_bound : t -> int
  val registers : t -> int
end

module Make (B : Exsel_backend.Intf.S) = struct
  module C = Compete.Make (B)

  type memory = B.memory

  type t = {
    graph : Bipartite.t;
    l : int;
    competitions : C.t array;  (* one per output *)
    span_label : string;
  }

  let create ?(params = Params.practical) ~rng mem ~name ~l ~inputs =
    if l <= 0 then invalid_arg "Majority.create: l must be positive";
    if inputs <= 0 then invalid_arg "Majority.create: inputs must be positive";
    let graph = sample_certified rng params ~inputs ~l ~attempts:16 in
    let competitions =
      Array.init (Bipartite.outputs graph) (fun w ->
          C.create mem ~name:(Printf.sprintf "%s.out%d" name w))
    in
    { graph; l; competitions; span_label = Printf.sprintf "majority:budget=%d" l }

  let graph t = t.graph
  let contention_budget t = t.l
  let names t = Bipartite.outputs t.graph

  let rename t ~me =
    if me < 0 || me >= Bipartite.inputs t.graph then
      invalid_arg "Majority.rename: name out of range";
    Span.wrap t.span_label (fun () ->
        let adj = Bipartite.neighbours t.graph me in
        let rec try_from i =
          if i >= Array.length adj then None
          else if C.compete t.competitions.(adj.(i)) ~me then Some adj.(i)
          else try_from (i + 1)
        in
        try_from 0)

  let steps_bound t = Compete.steps_bound * Bipartite.degree t.graph
  let registers t = Compete.registers_per_instance * names t
end

include Make (Exsel_sim.Backend)
