module type S = sig
  type memory
  type t

  val create : memory -> name:string -> t
  val compete : t -> me:int -> bool
  val occupant : t -> int option
end

(* Written once against the BACKEND interface (DESIGN.md §12); the
   simulator instantiation below keeps the historical API. *)
module Make (B : Exsel_backend.Intf.S) = struct
  type memory = B.memory

  type t = {
    hr : int option B.reg;  (* placeholder holding a reservation for r *)
    r : int option B.reg;
  }

  let create mem ~name =
    {
      hr = B.alloc mem ~name:(name ^ ".HR") None;
      r = B.alloc mem ~name:(name ^ ".R") None;
    }

  (* Figure 1.  Exclusiveness argument (Lemma 1): p's value in HR is only
     overwritten once R already stores p, so any later contender fails the
     read of R; an earlier contender that wrote HR before p would have made
     p's first read non-null. *)
  let compete t ~me =
    match B.read t.hr with
    | Some _ -> false
    | None -> (
        B.write t.hr (Some me);
        match B.read t.r with
        | Some _ -> false
        | None ->
            B.write t.r (Some me);
            B.read t.hr = Some me)

  let occupant t = B.peek t.r
end

include Make (Exsel_sim.Backend)

let steps_bound = 5
let registers_per_instance = 2
