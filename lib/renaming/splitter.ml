module Memory = Exsel_sim.Memory
module Register = Exsel_sim.Register
module Runtime = Exsel_sim.Runtime

type outcome = Stop | Right | Down

type t = {
  door : int option Register.t;  (* last entrant *)
  closed : bool Register.t;  (* set by the first process past the door *)
  mutable stopped : int option;  (* diagnostic mirror of the Stop outcome *)
}

let create mem ~name =
  {
    door = Register.create mem ~name:(name ^ ".X") None;
    closed = Register.create mem ~name:(name ^ ".Y") false;
    stopped = None;
  }

(* Classic argument: a process that finds the door still holding its own
   identifier after closing the gate is alone past the gate; any later
   process sees the gate closed and goes right, any gate-racer that lost
   the door goes down. *)
let enter t ~me =
  Runtime.write t.door (Some me);
  if Runtime.read t.closed then Right
  else begin
    Runtime.write t.closed true;
    if Runtime.read t.door = Some me then begin
      t.stopped <- Some me;
      Stop
    end
    else Down
  end

(* The stop/right race deliberately reintroduced: the final door re-check
   is skipped, so two contenders that both pass the open gate both stop.
   Negative control for the conformance harness — never call from real
   compositions. *)
let enter_racy t ~me =
  Runtime.write t.door (Some me);
  if Runtime.read t.closed then Right
  else begin
    Runtime.write t.closed true;
    t.stopped <- Some me;
    Stop
  end

let captured_by t = t.stopped

let steps_bound = 4
let registers_per_instance = 2
