type outcome = Stop | Right | Down

module type S = sig
  type memory
  type t

  val create : memory -> name:string -> t
  val enter : t -> me:int -> outcome
  val enter_racy : t -> me:int -> outcome
  val captured_by : t -> int option
end

(* Written once against the BACKEND interface (DESIGN.md §12); the
   simulator instantiation below keeps the historical API, and
   Exsel_native re-instantiates the same functor over Atomic.t cells. *)
module Make (B : Exsel_backend.Intf.S) = struct
  type memory = B.memory

  type t = {
    door : int option B.reg;  (* last entrant *)
    closed : bool B.reg;  (* set by the first process past the door *)
    mutable stopped : int option;  (* diagnostic mirror of the Stop outcome *)
  }

  let create mem ~name =
    {
      door = B.alloc mem ~name:(name ^ ".X") None;
      closed = B.alloc mem ~name:(name ^ ".Y") false;
      stopped = None;
    }

  (* Classic argument: a process that finds the door still holding its own
     identifier after closing the gate is alone past the gate; any later
     process sees the gate closed and goes right, any gate-racer that lost
     the door goes down. *)
  let enter t ~me =
    B.write t.door (Some me);
    if B.read t.closed then Right
    else begin
      B.write t.closed true;
      if B.read t.door = Some me then begin
        t.stopped <- Some me;
        Stop
      end
      else Down
    end

  (* The stop/right race deliberately reintroduced: the final door re-check
     is skipped, so two contenders that both pass the open gate both stop.
     Negative control for the conformance harness — never call from real
     compositions. *)
  let enter_racy t ~me =
    B.write t.door (Some me);
    if B.read t.closed then Right
    else begin
      B.write t.closed true;
      t.stopped <- Some me;
      Stop
    end

  let captured_by t = t.stopped
end

include Make (Exsel_sim.Backend)

let steps_bound = 4
let registers_per_instance = 2
