module Span = Exsel_obs.Span

(* Contention budgets k, ⌈k/2⌉, …, 2, 1 — the paper's lg k + 1 stages plus
   the terminal singleton stage that absorbs the last contender. *)
let budgets k =
  let rec go b acc = if b <= 1 then List.rev (1 :: acc) else go ((b + 1) / 2) (b :: acc) in
  go k []

(* Predicted name-range size of an instance, without allocating anything:
   the sum of the stage widths dictated by the expander parameters. *)
let plan_names ?(params = Exsel_expander.Params.practical) ~k ~inputs () =
  List.fold_left
    (fun acc l -> acc + Exsel_expander.Params.width params ~inputs ~l)
    0 (budgets k)

module type S = sig
  type memory
  type t

  val create :
    ?params:Exsel_expander.Params.t ->
    rng:Exsel_sim.Rng.t ->
    memory ->
    name:string ->
    k:int ->
    inputs:int ->
    t

  val stages : t -> int
  val names : t -> int
  val stage_budgets : t -> int list
  val rename : t -> me:int -> int option
  val rename_traced : t -> me:int -> int option * int
  val steps_bound : t -> int
  val registers : t -> int
end

module Make (B : Exsel_backend.Intf.S) = struct
  module Maj = Majority.Make (B)

  type memory = B.memory

  type stage = { majority : Maj.t; range : Name_range.range; span_label : string }

  type t = { stages : stage array; names : int }

  let create ?params ~rng mem ~name ~k ~inputs =
    if k <= 0 then invalid_arg "Basic_rename.create: k must be positive";
    let ranges = Name_range.allocator () in
    let stages =
      budgets k
      |> List.mapi (fun i l ->
             let majority =
               Maj.create ?params ~rng:(Exsel_sim.Rng.split rng) mem
                 ~name:(Printf.sprintf "%s.stage%d" name i)
                 ~l ~inputs
             in
             {
               majority;
               range = Name_range.take ranges (Maj.names majority);
               span_label = Printf.sprintf "basic:stage=%d:budget=%d" i l;
             })
      |> Array.of_list
    in
    { stages; names = Name_range.used ranges }

  let stages t = Array.length t.stages
  let names t = t.names

  let stage_budgets t =
    Array.to_list (Array.map (fun s -> Maj.contention_budget s.majority) t.stages)

  let rename_traced t ~me =
    let rec go i =
      if i >= Array.length t.stages then (None, i)
      else
        let s = t.stages.(i) in
        match Span.wrap s.span_label (fun () -> Maj.rename s.majority ~me) with
        | Some w -> (Some (Name_range.global s.range w), i)
        | None -> go (i + 1)
    in
    go 0

  let rename t ~me = fst (rename_traced t ~me)

  let steps_bound t =
    Array.fold_left (fun acc s -> acc + Maj.steps_bound s.majority) 0 t.stages

  let registers t =
    Array.fold_left (fun acc s -> acc + Maj.registers s.majority) 0 t.stages
end

include Make (Exsel_sim.Backend)
