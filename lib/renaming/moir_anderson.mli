(** MA(k): the Moir–Anderson splitter-grid renaming [41].

    A triangular grid of splitters of side [side]: positions [(r, c)] with
    [r + c < side].  A process enters at the origin, moves right or down as
    its splitters dictate, and adopts the index of the splitter it stops in
    as its name.  With [x ≤ side] contenders every process stops within the
    first [x] anti-diagonals, giving:

    - wait-free renaming in at most [4·side] local steps,
    - names below [x(x+1)/2] (adaptive: names are numbered along
      anti-diagonals, so low contention yields small names),
    - [side·(side+1)] registers (2 per splitter).

    With more than [side] contenders a process may walk off the grid, in
    which case [rename] reports failure — exactly the detector the paper's
    doubling constructions (Theorems 3 and 4) need. *)

(** The grid over any {!Exsel_backend.Intf.S} substrate. *)
module type S = sig
  type memory
  type t

  val create : memory -> name:string -> side:int -> t
  (** [create mem ~name ~side] allocates the triangular grid.
      @raise Invalid_argument if [side <= 0]. *)

  val side : t -> int

  val capacity : t -> int
  (** Total names available, [side·(side+1)/2]. *)

  val rename : t -> me:int -> int option
  (** Walk the grid from the origin.  [Some name] when the process stops —
      names of processes that stop are exclusive regardless of contention;
      [None] when it walks off the grid (contention exceeded [side]).
      Must be called from inside a backend process, once per process. *)
end

module Make (B : Exsel_backend.Intf.S) : S with type memory = B.memory

include S with type memory = Exsel_sim.Memory.t
(** The simulator instantiation. *)

val name_of_position : r:int -> c:int -> int
(** Anti-diagonal numbering: position [(r,c)] on diagonal [d = r+c] gets
    name [d(d+1)/2 + r].  Exposed for tests. *)

val max_name_bound : contenders:int -> int
(** Upper bound (exclusive) on names assigned when [contenders] processes
    participate: [contenders·(contenders+1)/2]. *)

val steps_bound : side:int -> int
(** Worst-case local steps of [rename]: [4·side]. *)
