module Span = Exsel_obs.Span

let span_reserve = "adaptive:reserve"

let rec ceil_lg n = if n <= 1 then 0 else 1 + ceil_lg ((n + 1) / 2)
let rec lg_floor n = if n <= 1 then 0 else 1 + lg_floor (n / 2)

let name_bound_for_contention ~k =
  if k <= 0 then invalid_arg "Adaptive_rename.name_bound_for_contention";
  (8 * k) - lg_floor k - 1

module type S = sig
  type memory
  type t

  val create :
    ?params:Exsel_expander.Params.t ->
    rng:Exsel_sim.Rng.t ->
    memory ->
    name:string ->
    n:int ->
    t

  val levels : t -> int
  val rename : t -> me:int -> int
  val rename_leveled : t -> me:int -> int * int
  val reserve_uses : t -> int
  val registers : t -> int
end

module Make (B : Exsel_backend.Intf.S) = struct
  module Eff = Efficient_rename.Make (B)
  module MA = Moir_anderson.Make (B)

  type memory = B.memory

  type level = { eff : Eff.t; range : Name_range.range; span_label : string }

  type t = {
    levels : level array;
    reserve : MA.t;
    reserve_range : Name_range.range;
    reserve_uses : int Atomic.t;  (* concurrent increments on native *)
  }

  let create ?params ~rng mem ~name ~n =
    if n <= 0 then invalid_arg "Adaptive_rename.create: n must be positive";
    let ranges = Name_range.allocator () in
    let levels =
      Array.init
        (ceil_lg n + 1)
        (fun i ->
          let k = min n (1 lsl i) in
          let eff =
            Eff.create ?params ~rng:(Exsel_sim.Rng.split rng) mem
              ~name:(Printf.sprintf "%s.lvl%d" name i)
              ~k
          in
          {
            eff;
            range = Name_range.take ranges (Eff.names eff);
            span_label = Printf.sprintf "adaptive:level=%d" i;
          })
    in
    let reserve = MA.create mem ~name:(name ^ ".reserve") ~side:n in
    let reserve_range = Name_range.take ranges (MA.capacity reserve) in
    { levels; reserve; reserve_range; reserve_uses = Atomic.make 0 }

  let levels t = Array.length t.levels

  let rename_leveled t ~me =
    let rec go i =
      if i >= Array.length t.levels then begin
        Atomic.incr t.reserve_uses;
        match Span.wrap span_reserve (fun () -> MA.rename t.reserve ~me) with
        | Some w -> (Name_range.global t.reserve_range w, i)
        | None ->
            (* unreachable: the reserve grid has side n >= contention *)
            assert false
      end
      else
        let lvl = t.levels.(i) in
        match Span.wrap lvl.span_label (fun () -> Eff.rename lvl.eff ~me) with
        | Some w -> (Name_range.global lvl.range w, i)
        | None -> go (i + 1)
    in
    go 0

  let rename t ~me = fst (rename_leveled t ~me)

  let reserve_uses t = Atomic.get t.reserve_uses

  let registers t =
    Array.fold_left (fun acc l -> acc + Eff.registers l.eff) 0 t.levels
    + (MA.side t.reserve * (MA.side t.reserve + 1))
end

include Make (Exsel_sim.Backend)
