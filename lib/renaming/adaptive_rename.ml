module Memory = Exsel_sim.Memory
module Span = Exsel_obs.Span

let span_reserve = "adaptive:reserve"

type level = { eff : Efficient_rename.t; range : Name_range.range; span_label : string }

type t = {
  levels : level array;
  reserve : Moir_anderson.t;
  reserve_range : Name_range.range;
  mutable reserve_uses : int;
}

let rec ceil_lg n = if n <= 1 then 0 else 1 + ceil_lg ((n + 1) / 2)

let create ?params ~rng mem ~name ~n =
  if n <= 0 then invalid_arg "Adaptive_rename.create: n must be positive";
  let ranges = Name_range.allocator () in
  let levels =
    Array.init
      (ceil_lg n + 1)
      (fun i ->
        let k = min n (1 lsl i) in
        let eff =
          Efficient_rename.create ?params ~rng:(Exsel_sim.Rng.split rng) mem
            ~name:(Printf.sprintf "%s.lvl%d" name i)
            ~k
        in
        {
          eff;
          range = Name_range.take ranges (Efficient_rename.names eff);
          span_label = Printf.sprintf "adaptive:level=%d" i;
        })
  in
  let reserve = Moir_anderson.create mem ~name:(name ^ ".reserve") ~side:n in
  let reserve_range = Name_range.take ranges (Moir_anderson.capacity reserve) in
  { levels; reserve; reserve_range; reserve_uses = 0 }

let levels t = Array.length t.levels

let rename_leveled t ~me =
  let rec go i =
    if i >= Array.length t.levels then begin
      t.reserve_uses <- t.reserve_uses + 1;
      match Span.wrap span_reserve (fun () -> Moir_anderson.rename t.reserve ~me) with
      | Some w -> (Name_range.global t.reserve_range w, i)
      | None ->
          (* unreachable: the reserve grid has side n >= contention *)
          assert false
    end
    else
      let lvl = t.levels.(i) in
      match Span.wrap lvl.span_label (fun () -> Efficient_rename.rename lvl.eff ~me) with
      | Some w -> (Name_range.global lvl.range w, i)
      | None -> go (i + 1)
  in
  go 0

let rename t ~me = fst (rename_leveled t ~me)

let rec lg_floor n = if n <= 1 then 0 else 1 + lg_floor (n / 2)

let name_bound_for_contention ~k =
  if k <= 0 then invalid_arg "Adaptive_rename.name_bound_for_contention";
  (8 * k) - lg_floor k - 1

let reserve_uses t = t.reserve_uses

let registers t =
  Array.fold_left (fun acc l -> acc + Efficient_rename.registers l.eff) 0 t.levels
  + (Moir_anderson.side t.reserve * (Moir_anderson.side t.reserve + 1))
