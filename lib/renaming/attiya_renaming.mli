(** Snapshot-based wait-free (2k−1)-renaming (Attiya et al. [14, 21]).

    Processes publish name proposals in an atomic snapshot; a process whose
    proposal is unique in its scan decides, otherwise it re-proposes the
    [rank]-th integer not proposed by others, where [rank] is the rank of
    its identifier among participants it sees.  With [k] concurrent
    participants, decided names lie in [0 .. 2k−2] and decisions are
    exclusive.

    This module is the substitute for the paper's AF(k,N) compression
    stage (Attiya–Fouren [16]) — same interface and the same name bound
    M = 2k−1 — see DESIGN.md, Substitution 2.  It is only ever applied to
    ranges of size O(k).

    The [cap] option supports the paper's Theorem 4 doubling: a process
    whose next proposal would exceed [cap] {e withdraws} (clears its
    component and reports failure), so an overloaded instance never emits
    a name outside its reserved interval. *)

(** The protocol over any {!Exsel_backend.Intf.S} substrate (it only needs
    the atomic snapshot, itself a functor over the backend). *)
module type S = sig
  type memory
  type t

  val create : memory -> name:string -> slots:int -> ?cap:int -> unit -> t
  (** [create mem ~name ~slots ?cap ()] allocates the snapshot object.
      [slots] bounds the number of distinct participants; each caller must
      use a distinct [slot] in [0 .. slots−1] (composed algorithms use the
      exclusive name of the previous stage).  [cap], if given, is the
      largest name (inclusive) the instance may assign. *)

  val slots : t -> int

  val rename : t -> slot:int -> int option
  (** Run the protocol in the given slot (which also serves as the process
      identifier for ranking).  [Some name] on decision; [None] after a
      withdrawal (only possible when [cap] is set).  Must be called from
      inside a backend process, once per slot. *)
end

module Make (B : Exsel_backend.Intf.S) : S with type memory = B.memory

include S with type memory = Exsel_sim.Memory.t
(** The simulator instantiation. *)

val name_bound : contenders:int -> int
(** Exclusive upper bound on decided names with [contenders] concurrent
    participants: [2·contenders − 1]. *)
