(** Efficient-Rename(k): MA → PolyLog → (2k−1)-compression (Theorem 2).

    Works for {e any} range of original names (they are only used as
    identifiers, never as indices): Moir–Anderson first maps contenders
    into [k(k+1)/2] names, PolyLog-Rename contracts that to [O(k)] when
    contraction is possible, and the snapshot-based stage compresses to
    the optimal [M = 2k−1].

    Bounds (paper): O(k) local steps, M = 2k−1, r = O(k²).

    Overflow: with more than [k] contenders the MA grid rejects the
    excess, and the final stage withdraws instead of exceeding its cap, so
    [rename] returns [None] — the detector Theorem 4's doubling needs.
    Names are exclusive under any contention. *)

(** The composition over any {!Exsel_backend.Intf.S} substrate. *)
module type S = sig
  type memory
  type t

  val create :
    ?params:Exsel_expander.Params.t ->
    rng:Exsel_sim.Rng.t ->
    memory ->
    name:string ->
    k:int ->
    t

  val k : t -> int

  val names : t -> int
  (** Bound on final names: [2k − 1]. *)

  val intermediate_names : t -> int
  (** Size of the range entering the final compression stage (the paper's
      M′), for the register-accounting experiments. *)

  val rename : t -> me:int -> int option
  (** [me] is any integer identifier, unique per process. *)

  val steps_bound : t -> int
  val registers : t -> int
end

module Make (B : Exsel_backend.Intf.S) : S with type memory = B.memory

include S with type memory = Exsel_sim.Memory.t
(** The simulator instantiation. *)
