module Memory = Exsel_sim.Memory
module Span = Exsel_obs.Span

let span_reserve = "almost-adaptive:reserve"

type level = { polylog : Polylog_rename.t; range : Name_range.range; span_label : string }

type t = {
  levels : level array;
  reserve : Moir_anderson.t;
  reserve_range : Name_range.range;
  mutable reserve_uses : int;
}

let rec ceil_lg n = if n <= 1 then 0 else 1 + ceil_lg ((n + 1) / 2)

let create ?params ~rng mem ~name ~n ~inputs =
  if n <= 0 then invalid_arg "Almost_adaptive.create: n must be positive";
  if inputs <= 0 then invalid_arg "Almost_adaptive.create: inputs must be positive";
  let ranges = Name_range.allocator () in
  let levels =
    Array.init
      (ceil_lg n + 1)
      (fun i ->
        let k = min n (1 lsl i) in
        let polylog =
          Polylog_rename.create ?params ~rng:(Exsel_sim.Rng.split rng) mem
            ~name:(Printf.sprintf "%s.lvl%d" name i)
            ~k ~inputs
        in
        {
          polylog;
          range = Name_range.take ranges (Polylog_rename.names polylog);
          span_label = Printf.sprintf "almost-adaptive:level=%d" i;
        })
  in
  let reserve = Moir_anderson.create mem ~name:(name ^ ".reserve") ~side:n in
  let reserve_range = Name_range.take ranges (Moir_anderson.capacity reserve) in
  { levels; reserve; reserve_range; reserve_uses = 0 }

let levels t = Array.length t.levels

let rename_leveled t ~me =
  let rec go i =
    if i >= Array.length t.levels then begin
      t.reserve_uses <- t.reserve_uses + 1;
      match Span.wrap span_reserve (fun () -> Moir_anderson.rename t.reserve ~me) with
      | Some w -> (Name_range.global t.reserve_range w, i)
      | None ->
          (* unreachable: the reserve grid has side n >= contention *)
          assert false
    end
    else
      let lvl = t.levels.(i) in
      match Span.wrap lvl.span_label (fun () -> Polylog_rename.rename lvl.polylog ~me) with
      | Some w -> (Name_range.global lvl.range w, i)
      | None -> go (i + 1)
  in
  go 0

let rename t ~me = fst (rename_leveled t ~me)

let name_bound_for_contention t ~k =
  let top = min (Array.length t.levels - 1) (ceil_lg k) in
  let last = t.levels.(top).range in
  last.Name_range.base + last.Name_range.size

let reserve_uses t = t.reserve_uses

let registers t =
  Array.fold_left (fun acc l -> acc + Polylog_rename.registers l.polylog) 0 t.levels
  + (Moir_anderson.side t.reserve * (Moir_anderson.side t.reserve + 1))
