(** PolyLog-Rename(k, N): epoch iteration of Basic-Rename (Theorem 1).

    Epoch 1 runs Basic-Rename(k, N); epoch [j+1] runs Basic-Rename over the
    name range produced by epoch [j].  Ranges contract geometrically
    (paper: ratio ≤ 27/32 per epoch) until a fixpoint of [O(k)] names; a
    process feeds the name it wins in one epoch as its input to the next.

    Bounds: [O(log k (log N + log k log log N))] local steps, [M = O(k)]
    names, [r = O(k log(N/k))] registers.  When [N] is already at the
    fixpoint the construction has zero epochs and renaming is the
    identity — the paper's epoch loop simply does not start. *)

(** The construction over any {!Exsel_backend.Intf.S} substrate. *)
module type S = sig
  type memory
  type t

  val create :
    ?params:Exsel_expander.Params.t ->
    rng:Exsel_sim.Rng.t ->
    memory ->
    name:string ->
    k:int ->
    inputs:int ->
    t

  val epochs : t -> int

  val epoch_ranges : t -> int list
  (** The contracting sequence [N₁ = inputs, N₂, …, M]; for tests of the
      geometric-contraction claim in Theorem 1's proof. *)

  val names : t -> int
  (** Final bound [M] on new names. *)

  val rename : t -> me:int -> int option
  (** Run the epochs, threading names.  [None] means some epoch failed
      (overflow beyond the certified contention, absorbed by the caller's
      reserve or doubling logic). *)

  val steps_bound : t -> int
  val registers : t -> int
end

module Make (B : Exsel_backend.Intf.S) : S with type memory = B.memory

include S with type memory = Exsel_sim.Memory.t
(** The simulator instantiation. *)
