module Span = Exsel_obs.Span

let span_ma = "efficient:phase=ma"
let span_polylog = "efficient:phase=polylog"
let span_final = "efficient:phase=final"

module type S = sig
  type memory
  type t

  val create :
    ?params:Exsel_expander.Params.t ->
    rng:Exsel_sim.Rng.t ->
    memory ->
    name:string ->
    k:int ->
    t

  val k : t -> int
  val names : t -> int
  val intermediate_names : t -> int
  val rename : t -> me:int -> int option
  val steps_bound : t -> int
  val registers : t -> int
end

module Make (B : Exsel_backend.Intf.S) = struct
  module MA = Moir_anderson.Make (B)
  module Polylog = Polylog_rename.Make (B)
  module Attiya = Attiya_renaming.Make (B)

  type memory = B.memory

  type t = {
    k : int;
    ma : MA.t;
    polylog : Polylog.t;
    final : Attiya.t;
  }

  let create ?params ~rng mem ~name ~k =
    if k <= 0 then invalid_arg "Efficient_rename.create: k must be positive";
    let ma = MA.create mem ~name:(name ^ ".ma") ~side:k in
    let polylog =
      Polylog.create ?params ~rng mem ~name:(name ^ ".plog") ~k
        ~inputs:(MA.capacity ma)
    in
    let final =
      Attiya.create mem ~name:(name ^ ".final")
        ~slots:(Polylog.names polylog)
        ~cap:((2 * k) - 2)
        ()
    in
    { k; ma; polylog; final }

  let k t = t.k
  let names t = (2 * t.k) - 1
  let intermediate_names t = Polylog.names t.polylog

  let rename t ~me =
    match Span.wrap span_ma (fun () -> MA.rename t.ma ~me) with
    | None -> None
    | Some ma_name -> (
        match Span.wrap span_polylog (fun () -> Polylog.rename t.polylog ~me:ma_name) with
        | None -> None
        | Some mid -> Span.wrap span_final (fun () -> Attiya.rename t.final ~slot:mid))

  let steps_bound t =
    (* The final stage's step count is data dependent; we report the
       structural part plus one representative round per contender, matching
       how EXPERIMENTS.md discusses the substituted stage. *)
    Moir_anderson.steps_bound ~side:t.k
    + Polylog.steps_bound t.polylog
    + (4 * t.k * Polylog.names t.polylog)

  let registers t =
    (t.k * (t.k + 1))
    + Polylog.registers t.polylog
    + Polylog.names t.polylog
end

include Make (Exsel_sim.Backend)
