module Memory = Exsel_sim.Memory
module Span = Exsel_obs.Span

let span_ma = "efficient:phase=ma"
let span_polylog = "efficient:phase=polylog"
let span_final = "efficient:phase=final"

type t = {
  k : int;
  ma : Moir_anderson.t;
  polylog : Polylog_rename.t;
  final : Attiya_renaming.t;
}

let create ?params ~rng mem ~name ~k =
  if k <= 0 then invalid_arg "Efficient_rename.create: k must be positive";
  let ma = Moir_anderson.create mem ~name:(name ^ ".ma") ~side:k in
  let polylog =
    Polylog_rename.create ?params ~rng mem ~name:(name ^ ".plog") ~k
      ~inputs:(Moir_anderson.capacity ma)
  in
  let final =
    Attiya_renaming.create mem ~name:(name ^ ".final")
      ~slots:(Polylog_rename.names polylog)
      ~cap:((2 * k) - 2)
      ()
  in
  { k; ma; polylog; final }

let k t = t.k
let names t = (2 * t.k) - 1
let intermediate_names t = Polylog_rename.names t.polylog

let rename t ~me =
  match Span.wrap span_ma (fun () -> Moir_anderson.rename t.ma ~me) with
  | None -> None
  | Some ma_name -> (
      match Span.wrap span_polylog (fun () -> Polylog_rename.rename t.polylog ~me:ma_name) with
      | None -> None
      | Some mid -> Span.wrap span_final (fun () -> Attiya_renaming.rename t.final ~slot:mid))

let steps_bound t =
  (* The final stage's step count is data dependent; we report the
     structural part plus one representative round per contender, matching
     how EXPERIMENTS.md discusses the substituted stage. *)
  Moir_anderson.steps_bound ~side:t.k
  + Polylog_rename.steps_bound t.polylog
  + (4 * t.k * Polylog_rename.names t.polylog)

let registers t =
  (t.k * (t.k + 1))
  + Polylog_rename.registers t.polylog
  + Polylog_rename.names t.polylog
