module Span = Exsel_obs.Span

module type S = sig
  type memory
  type t

  val create :
    ?params:Exsel_expander.Params.t ->
    rng:Exsel_sim.Rng.t ->
    memory ->
    name:string ->
    k:int ->
    inputs:int ->
    t

  val epochs : t -> int
  val epoch_ranges : t -> int list
  val names : t -> int
  val rename : t -> me:int -> int option
  val steps_bound : t -> int
  val registers : t -> int
end

module Make (B : Exsel_backend.Intf.S) = struct
  module Basic = Basic_rename.Make (B)

  type memory = B.memory

  type t = {
    epochs : Basic.t array;
    epoch_labels : string array;
    inputs : int;
    names : int;
  }

  (* Build epochs while the range strictly contracts, mirroring the paper's
     stopping rule (iterate until N_j reaches its Θ(k) fixpoint). *)
  let create ?params ~rng mem ~name ~k ~inputs =
    if k <= 0 then invalid_arg "Polylog_rename.create: k must be positive";
    if inputs <= 0 then invalid_arg "Polylog_rename.create: inputs must be positive";
    let rec go j current acc =
      let planned = Basic_rename.plan_names ?params ~k ~inputs:current () in
      if planned >= current then (current, List.rev acc)
      else
        let basic =
          Basic.create ?params ~rng:(Exsel_sim.Rng.split rng) mem
            ~name:(Printf.sprintf "%s.epoch%d" name j)
            ~k ~inputs:current
        in
        go (j + 1) (Basic.names basic) (basic :: acc)
    in
    let names, epochs = go 1 inputs [] in
    let epochs = Array.of_list epochs in
    {
      epochs;
      epoch_labels =
        Array.init (Array.length epochs) (fun i -> Printf.sprintf "polylog:epoch=%d" (i + 1));
      inputs;
      names;
    }

  let epochs t = Array.length t.epochs

  let epoch_ranges t =
    t.inputs :: (Array.to_list t.epochs |> List.map Basic.names)

  let names t = t.names

  let rename t ~me =
    let rec go i current =
      if i >= Array.length t.epochs then Some current
      else
        match
          Span.wrap t.epoch_labels.(i) (fun () -> Basic.rename t.epochs.(i) ~me:current)
        with
        | Some next -> go (i + 1) next
        | None -> None
    in
    go 0 me

  let steps_bound t =
    Array.fold_left (fun acc b -> acc + Basic.steps_bound b) 0 t.epochs

  let registers t =
    Array.fold_left (fun acc b -> acc + Basic.registers b) 0 t.epochs
end

include Make (Exsel_sim.Backend)
