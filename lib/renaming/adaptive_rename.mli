(** Adaptive-Rename: fully adaptive renaming, k and N unknown (Theorem 4).

    Doubles a contention guess over {!Efficient_rename} instances: level
    [i] hosts Efficient-Rename(2ⁱ) on a disjoint name interval of size
    [2·2ⁱ − 1].  A process tries levels in order; overflow in a level's MA
    grid or a withdrawal in its capped final stage advances it to the next
    level.  With realised contention [k], level [⌈lg k⌉] suffices, giving

      M ≤ Σ_{i ≤ ⌈lg k⌉} (2^{i+1} − 1) ≤ 8k − lg k − 1

    final names, O(k) local steps and O(n²) registers.  A Moir–Anderson
    grid of side [n] backs the construction as an unconditional
    wait-freedom reserve (unused in certified runs). *)

(** The composition over any {!Exsel_backend.Intf.S} substrate. *)
module type S = sig
  type memory
  type t

  val create :
    ?params:Exsel_expander.Params.t ->
    rng:Exsel_sim.Rng.t ->
    memory ->
    name:string ->
    n:int ->
    t
  (** [n] bounds the number of processes in the system; neither the realised
      contention [k] nor the original-name range appears anywhere. *)

  val levels : t -> int

  val rename : t -> me:int -> int
  (** Always succeeds; [me] is any integer identifier unique per process. *)

  val rename_leveled : t -> me:int -> int * int
  (** Name with the serving level ([levels t] for the reserve). *)

  val reserve_uses : t -> int
  val registers : t -> int
end

module Make (B : Exsel_backend.Intf.S) : S with type memory = B.memory

include S with type memory = Exsel_sim.Memory.t
(** The simulator instantiation. *)

val name_bound_for_contention : k:int -> int
(** The paper's bound [8k − lg k − 1] (exclusive upper bound on names,
    0-based). *)
