(** Basic-Rename(k, N): staged majority renaming (Lemma 5).

    Runs [⌊lg k⌋ + 1] stages; stage [i] is a {!Majority} instance with
    contention budget [⌈k/2ⁱ⌉] over the same input range [0 .. N−1], on a
    disjoint set of outputs.  Each stage renames at least half of the
    processes entering it, so after the last stage at most one contender
    remains, and a final singleton stage absorbs it.

    Bounds: [O(log k · log N)] local steps, [M = O(k·log(N/k))] new names,
    [r = O(k·log(N/k))] registers. *)

(** The construction over any {!Exsel_backend.Intf.S} substrate. *)
module type S = sig
  type memory
  type t

  val create :
    ?params:Exsel_expander.Params.t ->
    rng:Exsel_sim.Rng.t ->
    memory ->
    name:string ->
    k:int ->
    inputs:int ->
    t

  val stages : t -> int

  val names : t -> int
  (** Bound [M] on new names (sum of stage widths). *)

  val stage_budgets : t -> int list
  (** Contention budgets of the stages, for tests: [k, ⌈k/2⌉, …, 1]. *)

  val rename : t -> me:int -> int option
  (** Run stages in order until a name is won.  [None] only if every stage
      fails, which the expander certification makes not happen for ≤ k
      contenders; composed algorithms treat [None] as overflow. *)

  val rename_traced : t -> me:int -> int option * int
  (** Like [rename] but also reports the index of the stage that succeeded
      (or [stages t] on failure) — used to measure Lemma 5's geometric
      progress (figure F1). *)

  val steps_bound : t -> int
  val registers : t -> int
end

module Make (B : Exsel_backend.Intf.S) : S with type memory = B.memory

include S with type memory = Exsel_sim.Memory.t
(** The simulator instantiation. *)

val plan_names :
  ?params:Exsel_expander.Params.t -> k:int -> inputs:int -> unit -> int
(** Predicted {!names} of an instance with these dimensions, computed
    without allocating registers (used by PolyLog's epoch-planning). *)
