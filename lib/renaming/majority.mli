(** Majority(ℓ, N): expander-traversal majority renaming (Lemma 4).

    Names [0 .. N−1] are the inputs of a bipartite graph sampled per
    Lemma 3; outputs are candidate new names, each guarded by a
    {!Compete} pair.  A process walks the Δ neighbours of its input in
    order, competing for each, and adopts the first output it wins.

    Guarantees, given the graph's unique-neighbour property (certified by
    {!Exsel_expander.Check}): with at most ℓ contenders holding distinct
    inputs, at least ⌈half⌉ of them win, every winner's name is exclusive
    (unconditionally, by Lemma 1), and each process takes at most
    [5Δ = O(log N)] local steps.  Uses [2·M] registers where
    [M = O(ℓ log(N/ℓ))] is the output count. *)

(** The construction over any {!Exsel_backend.Intf.S} substrate.  Graph
    sampling stays on the deterministic simulator RNG on every backend so
    a seed names the same expander everywhere. *)
module type S = sig
  type memory
  type t

  val create :
    ?params:Exsel_expander.Params.t ->
    rng:Exsel_sim.Rng.t ->
    memory ->
    name:string ->
    l:int ->
    inputs:int ->
    t
  (** [create ~rng mem ~name ~l ~inputs] builds an instance for contention
      budget [l] over original names [0 .. inputs−1].  [params] defaults to
      {!Exsel_expander.Params.practical}. *)

  val graph : t -> Exsel_expander.Bipartite.t
  val contention_budget : t -> int

  val names : t -> int
  (** The bound [M] on new names (the graph's output count). *)

  val rename : t -> me:int -> int option
  (** Traverse and compete; [Some w] is the captured output index.
      [me] must lie in [0 .. inputs−1].  Must run inside a backend process,
      once per process. *)

  val steps_bound : t -> int
  (** Worst-case local steps: [5·Δ]. *)

  val registers : t -> int
  (** Registers allocated: [2·names]. *)
end

module Make (B : Exsel_backend.Intf.S) : S with type memory = B.memory

include S with type memory = Exsel_sim.Memory.t
(** The simulator instantiation. *)
