(** Long-lived renaming: acquire and release names repeatedly.

    Extension beyond the paper's one-shot setting (its §1 surveys
    long-lived renaming as the natural generalisation [2, 24, 25, 41, 42]).
    The snapshot-based renaming adapts directly: a process {e holds} a name
    by keeping it published in its snapshot component and {e releases} it
    by clearing the component, after which the name may be reused.

    Guarantees:
    - {e exclusive holds}: two processes never hold the same name at
      overlapping times;
    - {e adaptive range}: a successful acquire returns a name below
      [2k̂ − 1] where [k̂] is the number of processes concurrently holding
      or contending during the acquire (point contention);
    - {e wait-free}: an acquire completes regardless of other processes'
      speeds; a crash while holding pins that name forever (the paper's
      crash model — a crashed holder is indistinguishable from a slow
      one).

    Uses one [n]-component snapshot object ([n] registers).

    This is the exclusive-selection core of the long-lived service layer
    ({!Exsel_service.Core} holds one instance per shard and layers
    generation counters on top — DESIGN.md §14); the simulator
    instantiation below doubles as the service's reference oracle in the
    cross-validation tests. *)

(** The algorithm over any {!Exsel_backend.Intf.S} substrate. *)
module type S = sig
  type memory
  type t

  val create : memory -> name:string -> n:int -> t

  val n : t -> int

  val acquire : t -> me:int -> int
  (** Acquire a name exclusively.  [me] is the caller's slot in [0 .. n−1];
      the caller must not already hold a name.  Must run inside a backend
      process. *)

  val release : t -> me:int -> unit
  (** Release the held name (one snapshot update: O(n) reads + 1 write).
      Call only while holding. *)

  val holder_view : t -> int option array
  (** Currently published names per slot (test inspection, non-atomic). *)
end

module Make (B : Exsel_backend.Intf.S) : S with type memory = B.memory

include S with type memory = Exsel_sim.Memory.t
(** The simulator instantiation. *)
