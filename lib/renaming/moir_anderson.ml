let name_of_position ~r ~c =
  let d = r + c in
  (d * (d + 1) / 2) + r

module type S = sig
  type memory
  type t

  val create : memory -> name:string -> side:int -> t
  val side : t -> int
  val capacity : t -> int
  val rename : t -> me:int -> int option
end

module Make (B : Exsel_backend.Intf.S) = struct
  module Sp = Splitter.Make (B)

  type memory = B.memory

  type t = {
    side : int;
    grid : Sp.t array array;  (* grid.(r).(c) for r + c < side *)
  }

  let create mem ~name ~side =
    if side <= 0 then invalid_arg "Moir_anderson.create: side must be positive";
    let grid =
      Array.init side (fun r ->
          Array.init (side - r) (fun c ->
              Sp.create mem ~name:(Printf.sprintf "%s(%d,%d)" name r c)))
    in
    { side; grid }

  let side t = t.side
  let capacity t = t.side * (t.side + 1) / 2

  let rename t ~me =
    let rec walk r c =
      if r + c >= t.side then None
      else
        match Sp.enter t.grid.(r).(c) ~me with
        | Splitter.Stop -> Some (name_of_position ~r ~c)
        | Splitter.Right -> walk r (c + 1)
        | Splitter.Down -> walk (r + 1) c
    in
    walk 0 0
end

include Make (Exsel_sim.Backend)

let max_name_bound ~contenders = contenders * (contenders + 1) / 2
let steps_bound ~side = 4 * side
