(** Algorithm adapters: every renaming algorithm behind one runner shape.

    Each adapter wraps one algorithm as a {!Runner.spec} factory: given a
    seed, a contention [k] and a steps tolerance, it deterministically
    builds an instance with [k] contenders spawned and a quiescence check
    of the algorithm's executable claims:

    - {e exclusiveness} — no two processes hold the same name (for
      Compete: at most one winner);
    - {e name bound} — every assigned name lies in [[0, M)] for the
      claimed [M] (2k−1 for Efficient, 8k−lg k−1 for Adaptive, the
      instance's [names] for the staged constructions, k(k+1)/2 for the
      MA baseline);
    - {e completion} — every non-crashed contender terminates holding a
      name (Majority instead claims Lemma 4's weaker bound: winners plus
      crashed contenders cover at least half the contenders; Compete
      claims only win exclusiveness, as contested objects may be won by
      nobody);
    - {e steps} — every process's local steps stay within
      [steps_multiple ×] the adapter's budget, which is the instance's
      exact structural bound where the implementation exposes one
      ([Majority.steps_bound], [Basic_rename.steps_bound], …) and a
      calibrated multiple of the {!Exsel_renaming.Spec} shape for the
      adaptive constructions whose constants the paper hides.

    The [buggy-ma] adapter is the negative control: a Moir–Anderson-style
    grid built on {!Exsel_renaming.Splitter.enter_racy} (the stop/right
    race removed), which assigns duplicate names under contention.  The
    campaigns must catch it — see [test_conformance.ml]. *)

type t = {
  id : string;  (** CLI-stable identifier, e.g. ["efficient"] *)
  claim : string;  (** paper claim exercised, e.g. ["Theorem 2"] *)
  honest : bool;  (** [false] for the negative-control target *)
  make : seed:int -> k:int -> steps_multiple:float -> Runner.spec;
}

val all : t list
(** The nine honest adapters (compete, ma, attiya, majority, basic,
    polylog, efficient, almost-adaptive, adaptive) followed by the
    [buggy-ma] negative control. *)

val honest : t list
(** [all] without the negative control. *)

val find : string -> t option
(** Look an adapter up by [id]. *)

val ids : unit -> string list
(** All adapter ids, in {!all} order. *)
