open Exsel_sim
module R = Exsel_renaming
module Metrics = Exsel_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Claim checking, shared by every adapter                             *)
(* ------------------------------------------------------------------ *)

(* What "everyone is served" means for this algorithm: the wait-free
   constructions name every non-crashed contender; Majority claims only
   Lemma 4's half bound; Compete claims nothing beyond win
   exclusiveness (contested objects may be won by nobody).

   The checks themselves live in Exsel_backend.Claims, backend-free over
   a decision log, so the native harness runs the very same logic
   post hoc; this wrapper snapshots the simulator's per-process state
   (name, status, local-step clock) into outcome records. *)
module Claims = Exsel_backend.Claims

type completion = Claims.completion =
  | All_named
  | Half_renamed
  | Winners_exclusive

let check_claims ~completion ~k ~(results : int option array)
    ~(procs : Runtime.proc array) ~bound ~budget () =
  let outcomes =
    Array.mapi
      (fun i p ->
        {
          Claims.name = Runtime.proc_name p;
          status =
            (match Runtime.status p with
            | Runtime.Done -> Claims.Done
            | Runtime.Crashed -> Claims.Crashed
            | Runtime.Runnable -> Claims.Runnable);
          result = results.(i);
          steps = Runtime.steps p;
        })
      procs
  in
  Claims.check ~completion ~k ~outcomes ~bound ~steps_budget:budget ()

(* ------------------------------------------------------------------ *)
(* Generic spec factory                                                *)
(* ------------------------------------------------------------------ *)

type built = {
  rename : me:int -> int option;
  name_bound : int;
  steps_budget : float;
}

(* Contenders carrying distinct original names drawn from [0, bound). *)
let distinct_ids ~seed ~k ~bound =
  let a = Array.init bound Fun.id in
  Rng.shuffle (Rng.create ~seed:(seed + 0x1d5)) a;
  Array.sub a 0 k

let arbitrary_ids ~seed:_ ~k ~stride ~base = Array.init k (fun i -> base + (stride * i))

type t = {
  id : string;
  claim : string;
  honest : bool;
  make : seed:int -> k:int -> steps_multiple:float -> Runner.spec;
}

let generic ~id ~claim ?(honest = true) ~completion ~ids ~build () =
  let make ~seed ~k ~steps_multiple =
    let init () =
      let mem = Memory.create () in
      let rt = Runtime.create mem in
      let b = build ~seed ~k mem in
      let ids = ids ~seed ~k in
      let results = Array.make k None in
      let procs =
        Array.init k (fun i ->
            Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
                (* decide - invoke in commit-clock; recorded only when an
                   ambient registry is installed (Campaign, bench P6) and
                   only for operations that actually decide — crashed
                   bodies unwind before reaching the observe. *)
                let invoked = Runtime.commits rt in
                let r = b.rename ~me:ids.(i) in
                (match Metrics.ambient () with
                | None -> ()
                | Some reg ->
                    Metrics.observe
                      (Metrics.histogram reg "exsel_rename_latency_commits"
                         ~labels:[ ("algo", id) ])
                      (Runtime.commits rt - invoked));
                results.(i) <- r))
      in
      let check =
        check_claims ~completion ~k ~results ~procs ~bound:b.name_bound
          ~budget:(steps_multiple *. b.steps_budget)
      in
      { Runner.runtime = rt; check }
    in
    { Runner.algo = id; claim; init }
  in
  { id; claim; honest; make }

(* ------------------------------------------------------------------ *)
(* The adapters                                                       *)
(* ------------------------------------------------------------------ *)

(* Fixed original-name-space sizes: large enough that the staged
   constructions have real work to do, small enough that a campaign cell
   stays sub-second. *)
let inputs_small = 256
let inputs_polylog = 1024

let compete =
  generic ~id:"compete" ~claim:"Lemma 1" ~completion:Winners_exclusive
    ~ids:(fun ~seed:_ ~k -> Array.init k Fun.id)
    ~build:(fun ~seed:_ ~k:_ mem ->
      let c = R.Compete.create mem ~name:"c" in
      {
        rename = (fun ~me -> if R.Compete.compete c ~me then Some 0 else None);
        name_bound = 1;
        steps_budget = float_of_int R.Compete.steps_bound;
      })
    ()

let moir_anderson =
  generic ~id:"ma" ~claim:"MA baseline [41]" ~completion:All_named
    ~ids:(arbitrary_ids ~stride:37 ~base:100)
    ~build:(fun ~seed:_ ~k mem ->
      let ma = R.Moir_anderson.create mem ~name:"ma" ~side:k in
      {
        rename = (fun ~me -> R.Moir_anderson.rename ma ~me);
        name_bound = R.Moir_anderson.max_name_bound ~contenders:k;
        steps_budget = float_of_int (R.Moir_anderson.steps_bound ~side:k);
      })
    ()

let attiya =
  generic ~id:"attiya" ~claim:"snapshot (2k-1)-renaming [14, 21]"
    ~completion:All_named
    ~ids:(fun ~seed:_ ~k -> Array.init k Fun.id)
    ~build:(fun ~seed:_ ~k mem ->
      let a = R.Attiya_renaming.create mem ~name:"at" ~slots:k () in
      {
        rename = (fun ~me -> R.Attiya_renaming.rename a ~slot:me);
        name_bound = R.Attiya_renaming.name_bound ~contenders:k;
        (* no structural bound is exposed: each of <= k proposal rounds
           costs one snapshot update+scan, and the Afek et al. scan is
           O(k^2) reads under helping — calibrated with ~2x headroom *)
        steps_budget = 20.0 +. (8.0 *. float_of_int (k * k * k));
      })
    ()

let majority =
  generic ~id:"majority" ~claim:"Lemma 4" ~completion:Half_renamed
    ~ids:(fun ~seed ~k -> distinct_ids ~seed ~k ~bound:inputs_small)
    ~build:(fun ~seed ~k mem ->
      let m =
        R.Majority.create ~rng:(Rng.create ~seed:(seed * 13)) mem ~name:"maj"
          ~l:k ~inputs:inputs_small
      in
      {
        rename = (fun ~me -> R.Majority.rename m ~me);
        name_bound = R.Majority.names m;
        steps_budget = float_of_int (R.Majority.steps_bound m);
      })
    ()

let basic =
  generic ~id:"basic" ~claim:"Lemma 5" ~completion:All_named
    ~ids:(fun ~seed ~k -> distinct_ids ~seed ~k ~bound:inputs_small)
    ~build:(fun ~seed ~k mem ->
      let b =
        R.Basic_rename.create ~rng:(Rng.create ~seed:(seed * 7)) mem ~name:"bas"
          ~k ~inputs:inputs_small
      in
      {
        rename = (fun ~me -> R.Basic_rename.rename b ~me);
        name_bound = R.Basic_rename.names b;
        steps_budget = float_of_int (R.Basic_rename.steps_bound b);
      })
    ()

let polylog =
  generic ~id:"polylog" ~claim:"Theorem 1" ~completion:All_named
    ~ids:(fun ~seed ~k -> distinct_ids ~seed ~k ~bound:inputs_polylog)
    ~build:(fun ~seed ~k mem ->
      let p =
        R.Polylog_rename.create ~rng:(Rng.create ~seed:(seed * 3)) mem
          ~name:"pl" ~k ~inputs:inputs_polylog
      in
      {
        rename = (fun ~me -> R.Polylog_rename.rename p ~me);
        name_bound = R.Polylog_rename.names p;
        steps_budget = float_of_int (R.Polylog_rename.steps_bound p);
      })
    ()

let efficient =
  generic ~id:"efficient" ~claim:"Theorem 2" ~completion:All_named
    ~ids:(arbitrary_ids ~stride:37 ~base:1000)
    ~build:(fun ~seed ~k mem ->
      let e =
        R.Efficient_rename.create ~rng:(Rng.create ~seed:(seed * 5)) mem
          ~name:"ef" ~k
      in
      {
        rename = (fun ~me -> R.Efficient_rename.rename e ~me);
        name_bound = R.Efficient_rename.names e;
        (* steps_bound's final-stage term is one representative round per
           contender (see efficient_rename.ml); the true data-dependent
           worst case can exceed it, hence the headroom factor *)
        steps_budget = 2.0 *. float_of_int (R.Efficient_rename.steps_bound e);
      })
    ()

let almost_adaptive =
  generic ~id:"almost-adaptive" ~claim:"Theorem 3" ~completion:All_named
    ~ids:(fun ~seed ~k -> distinct_ids ~seed ~k ~bound:inputs_small)
    ~build:(fun ~seed ~k mem ->
      let a =
        R.Almost_adaptive.create ~rng:(Rng.create ~seed:(seed * 11)) mem
          ~name:"aa" ~n:k ~inputs:inputs_small
      in
      {
        rename = (fun ~me -> Some (R.Almost_adaptive.rename a ~me));
        name_bound = R.Almost_adaptive.name_bound_for_contention a ~k;
        (* Spec shape with a calibrated constant: the doubling retries
           every level up to ceil(lg k), each a full PolyLog run *)
        steps_budget =
          40.0
          *. R.Spec.almost_adaptive_steps ~k ~n_names:inputs_small;
      })
    ()

let adaptive =
  generic ~id:"adaptive" ~claim:"Theorem 4" ~completion:All_named
    ~ids:(arbitrary_ids ~stride:101 ~base:5000)
    ~build:(fun ~seed ~k mem ->
      let a =
        R.Adaptive_rename.create ~rng:(Rng.create ~seed:(seed * 17)) mem
          ~name:"ad" ~n:k
      in
      {
        rename = (fun ~me -> Some (R.Adaptive_rename.rename a ~me));
        name_bound = R.Adaptive_rename.name_bound_for_contention ~k;
        (* Theorem 4's O(k) with its hidden constant: every level up to
           ceil(lg k) is a full Efficient-Rename attempt whose final
           stage scans O(level-names) per proposal *)
        steps_budget = 60.0 *. float_of_int (k * k);
      })
    ()

(* Negative control: a Moir-Anderson-style triangular grid built on the
   racy splitter (stop/right race removed).  Two contenders can stop in
   the same cell and adopt the same name — the campaigns must catch it. *)
let buggy_ma =
  generic ~id:"buggy-ma" ~claim:"negative control (racy splitter grid)"
    ~honest:false ~completion:All_named
    ~ids:(fun ~seed:_ ~k -> Array.init k Fun.id)
    ~build:(fun ~seed:_ ~k mem ->
      let side = k in
      let cells =
        Array.init side (fun r ->
            Array.init (side - r) (fun c ->
                R.Splitter.create mem ~name:(Printf.sprintf "bug.%d.%d" r c)))
      in
      let rename ~me =
        let rec walk r c =
          if r + c >= side then None
          else
            match R.Splitter.enter_racy cells.(r).(c) ~me with
            | R.Splitter.Stop -> Some (R.Moir_anderson.name_of_position ~r ~c)
            | R.Splitter.Right -> walk r (c + 1)
            | R.Splitter.Down -> walk (r + 1) c
        in
        walk 0 0
      in
      {
        rename;
        name_bound = R.Moir_anderson.max_name_bound ~contenders:k;
        steps_budget = float_of_int (R.Moir_anderson.steps_bound ~side:k);
      })
    ()

let all =
  [
    compete;
    moir_anderson;
    attiya;
    majority;
    basic;
    polylog;
    efficient;
    almost_adaptive;
    adaptive;
    buggy_ma;
  ]

let honest = List.filter (fun a -> a.honest) all

let find id = List.find_opt (fun a -> a.id = id) all

let ids () = List.map (fun a -> a.id) all
