module Runtime = Exsel_sim.Runtime
module Explore = Exsel_sim.Explore

type instance = {
  runtime : Runtime.t;
  check : unit -> (unit, string) result;
}

type spec = {
  algo : string;
  claim : string;
  init : unit -> instance;
}

type decision = Commit of Runtime.proc | Crash of Runtime.proc

type driver = Runtime.t -> decision option

type outcome = {
  schedule : Explore.choice list;
  commits : int;
  max_steps : int;
  crashed : int;
  failure : string option;
}

let drive ?(max_commits = 2_000_000) spec ~driver =
  let inst = spec.init () in
  let rt = inst.runtime in
  let sched = ref [] in
  let commits = ref 0 in
  let crashed = ref 0 in
  let exhausted = ref false in
  let commit p =
    sched := Explore.Step (Runtime.pid p) :: !sched;
    Runtime.commit rt p;
    incr commits;
    if !commits >= max_commits && not (Runtime.all_quiet rt) then
      exhausted := true
  in
  (* regime phase: the driver decides until it relinquishes control *)
  let rec regime () =
    if (not (Runtime.all_quiet rt)) && not !exhausted then
      match driver rt with
      | Some (Commit p) ->
          commit p;
          regime ()
      | Some (Crash p) ->
          (* a regime may race its own crash plan against completion;
             crashing a finished process is a no-op we do not record *)
          if Runtime.status p = Runtime.Runnable then begin
            sched := Explore.Crash (Runtime.pid p) :: !sched;
            Runtime.crash rt p;
            incr crashed
          end;
          regime ()
      | None -> completion ()
  (* completion phase: pid order to quiescence, still recording *)
  and completion () =
    if (not (Runtime.all_quiet rt)) && not !exhausted then
      match Runtime.first_runnable rt with
      | Some p ->
          commit p;
          completion ()
      | None -> ()
  in
  regime ();
  let failure =
    if !exhausted then
      Some
        (Printf.sprintf
           "liveness: %d-commit budget exhausted with %d processes still \
            runnable"
           max_commits (Runtime.num_runnable rt))
    else match inst.check () with Ok () -> None | Error msg -> Some msg
  in
  {
    schedule = List.rev !sched;
    commits = !commits;
    max_steps = Runtime.max_steps rt;
    crashed = !crashed;
    failure;
  }
