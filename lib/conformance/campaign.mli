(** Conformance campaigns: the algorithm × regime × seed matrix.

    A campaign drives every selected {!Adapter} through every selected
    {!Regime} for every seed, checking the adapter's executable claims at
    quiescence of each run (see {!Adapter} for the claim list).  Within a
    cell (one algorithm under one regime) seeds run in order and stop at
    the first violation; the rest of the matrix still runs, so one report
    covers every failing cell.

    A violation carries everything needed to reproduce and explain it:

    - the failing [seed] and the full recorded schedule (every commit and
      crash decision, replayable with {!Exsel_sim.Explore.replay});
    - a minimized counterexample produced by {!Exsel_sim.Explore.shrink}
      (claim violations only — liveness violations, i.e. exhausted commit
      budgets, have no failing quiescent state to shrink towards);
    - a value-carrying {!Exsel_sim.Trace} of the minimized execution,
      exportable to Perfetto via {!Exsel_obs.Trace_export.chrome}.

    {!to_json} renders the whole report as an [exsel-conformance/1]
    document (schema described there); the CLI's [conformance] subcommand
    and the CI campaign step archive it as an artifact. *)

type config = {
  algos : Adapter.t list;
  regimes : Regime.t list;
  seeds : int list;
  k : int;  (** contenders per instance (>= 2) *)
  steps_multiple : float;
      (** tolerance on each adapter's steps budget (1.0 = as claimed) *)
  max_commits : int;  (** per-run liveness budget *)
  shrink : bool;  (** minimize claim-violating schedules *)
}

val default : config
(** All honest adapters, all regimes, seeds [1..3], [k = 5],
    [steps_multiple = 1.0], [max_commits = 1_000_000], shrinking on. *)

type violation = {
  v_algo : string;
  v_claim : string;
  v_regime : string;
  v_seed : int;
  v_failure : string;  (** the claim-check (or liveness) error message *)
  v_schedule : Exsel_sim.Explore.choice list;  (** as recorded *)
  v_shrunk : Exsel_sim.Explore.choice list option;
      (** minimized schedule; [None] for liveness violations or when
          shrinking is disabled *)
  v_shrunk_failure : string option;
      (** the (possibly different) claim error the minimized schedule
          fails with *)
  v_trace : Exsel_sim.Trace.event list;
      (** value-carrying trace of the minimized (else recorded) execution;
          [[]] when the schedule is too large to replay economically *)
}

type cell = {
  c_algo : string;
  c_claim : string;
  c_regime : string;
  c_seeds_run : int;
  c_commits : int;  (** summed over the cell's runs *)
  c_max_steps : int;  (** max over the cell's runs *)
  c_crashed : int;  (** crash decisions summed over the cell's runs *)
  c_violation : violation option;
  c_metrics : Exsel_obs.Metrics.t;
      (** the cell's private registry: campaign counters/gauges labelled
          [{algo; regime}] plus the [exsel_rename_latency_commits]
          histogram fed by the adapter bodies (decide − invoke in
          commit-clock; only the driven runs record — the analyse-phase
          replays are outside the ambient scope) *)
}

type report = {
  r_k : int;
  r_steps_multiple : float;
  r_seeds : int list;
  r_cells : cell list;  (** algo-major, regime-minor order *)
  r_violations : int;
  r_metrics : Exsel_obs.Metrics.t;
      (** per-cell registries folded in matrix order plus the
          [exsel_campaign_cells] total; since {!Exsel_obs.Metrics.merge}
          is commutative and rendering sorts, this is byte-identical at
          every [jobs] *)
}

(** Live progress notifications, in the order a cell produces them:
    [Cell_started], then [Cell_violated] (at most once — seeds stop at
    the first violation, after shrinking/trace capture), then
    [Cell_finished] carrying the completed cell. *)
type event =
  | Cell_started of { index : int; algo : string; regime : string }
      (** [index] is the cell's position in matrix order *)
  | Cell_violated of { index : int; violation : violation }
  | Cell_finished of { index : int; cell : cell }

val run :
  ?jobs:int ->
  ?on_cell:(cell -> unit) ->
  ?on_event:(event -> unit) ->
  config ->
  report
(** Execute the matrix.  [jobs] (default 1) shards the cells across that
    many domains ({!Exsel_sim.Pool}); every cell is an independent unit
    of work and results are merged in matrix order, so the report —
    cell outcomes, first-violation-per-cell, shrunk counterexamples,
    replayed traces, merged metrics — is field-for-field identical at
    every [jobs] (DESIGN.md §10).  [on_cell] is called after each
    finished cell (progress reporting); under [jobs > 1] it is called
    once per cell in matrix order after the whole matrix completes.
    [on_event] instead fires {e live}, as cells start and finish: under
    [jobs > 1] it runs concurrently on the worker domains and must be
    thread-safe (the CLI serializes writes with a mutex); event order
    across cells is then nondeterministic, but the multiset of events is
    not — see {!event_json}. *)

val seeds_of_string : string -> (int list, string) result
(** Parse a [--seeds] specification: a single positive count ["5"]
    (seeds [1..5]), or an explicit comma-separated list ["3,7,11"].
    Rejects — naming the offending value — non-integers, non-positive
    counts, negative seeds (they alias positive RNG states) and
    duplicate seeds (they skew [seeds_run]). *)

val to_json : report -> Exsel_obs.Json.t
(** The [exsel-conformance/1] document:
    [{ schema; k; steps_multiple; seeds; cells; violations }] where each
    cell is [{ algo; claim; regime; seeds_run; commits; max_steps;
    crashed; ok; violation? }] and a violation is
    [{ seed; failure; schedule_len; schedule?; shrunk?; shrunk_failure?;
    trace? }] — [schedule]/[shrunk] are arrays of
    [{ kind: "step"|"crash"; pid }] (omitted above 100_000 choices), and
    [trace] is an embedded [exsel-trace/1] document
    ({!Exsel_obs.Trace_export.to_json}).  [metrics] embeds the merged
    registry as an [exsel-metrics/1] document
    ({!Exsel_obs.Metrics.to_json}). *)

(** {2 exsel-events/1 (NDJSON progress stream)}

    One JSON object per line: a [start] header (the only line carrying
    the [schema] field), one [cell_started] / optional [cell_violated] /
    [cell_finished] per cell, and a [done] footer with the merged
    counters and quantile snapshots.  Lines deliberately carry no
    wall-clock or job-count data, so the [-j N] stream is a permutation
    of the [-j 1] stream: [sort]ed files compare byte-equal. *)

val start_event : config -> Exsel_obs.Json.t
(** [{ schema: "exsel-events/1"; event: "start"; kind: "conformance";
    algos; regimes; seeds; k; cells }]. *)

val event_json : event -> Exsel_obs.Json.t
(** [cell_started]: [{ event; cell; algo; regime }];
    [cell_violated]: [{ event; cell; algo; regime; seed; failure }];
    [cell_finished]: [{ event; cell; algo; regime; seeds_run; commits;
    max_steps; crashed; ok; quantiles }] where [quantiles] is
    {!Exsel_obs.Metrics.quantiles_json} of the cell registry. *)

val done_event : report -> Exsel_obs.Json.t
(** [{ event: "done"; cells; violations; metrics }] with [metrics] the
    compact {!Exsel_obs.Metrics.summary_json} of the merged registry. *)

val pp_summary : Format.formatter -> report -> unit
(** Human-readable matrix: one line per cell, violations expanded. *)
