module Runtime = Exsel_sim.Runtime
module Rng = Exsel_sim.Rng

type t = {
  id : string;
  describe : string;
  make : seed:int -> k:int -> Runner.driver;
}

let random_commit rng rt =
  let n = Runtime.num_runnable rt in
  if n = 0 then None
  else Some (Runner.Commit (Runtime.nth_runnable rt (Rng.int rng n)))

(* ⌈k/2⌉ distinct victim pids, uniform over [0, k). *)
let pick_victims ~seed ~k =
  let a = Array.init k Fun.id in
  Rng.shuffle (Rng.create ~seed:(seed lxor 0x9e3779b9)) a;
  Array.to_list (Array.sub a 0 ((k + 1) / 2))

let random =
  {
    id = "random";
    describe = "seeded uniformly-random scheduling, no crashes";
    make =
      (fun ~seed ~k:_ ->
        let rng = Rng.create ~seed in
        fun rt -> random_commit rng rt);
  }

let crash_half =
  {
    id = "crash-half";
    describe = "ceil(k/2) seeded victims crash at seeded commit points";
    make =
      (fun ~seed ~k ->
        let rng = Rng.create ~seed in
        let plan_rng = Rng.create ~seed:(seed + 1) in
        let remaining =
          (* the i-th victim's crash point is drawn from a 4k-wide window
             scaled by i+1, so short executions still see crashes while
             long ones get mid-run points too *)
          ref
            (List.mapi
               (fun i pid -> (pid, Rng.int plan_rng (4 * k * (i + 1))))
               (pick_victims ~seed ~k))
        in
        fun rt ->
          match
            List.find_opt (fun (_, at) -> Runtime.commits rt >= at) !remaining
          with
          | Some ((pid, _) as entry) ->
              remaining := List.filter (fun e -> e != entry) !remaining;
              Some (Runner.Crash (Runtime.proc_by_pid rt pid))
          | None -> random_commit rng rt);
  }

let crash_on_write =
  {
    id = "crash-on-write";
    describe = "ceil(k/2) seeded victims crash on their first pending write";
    make =
      (fun ~seed ~k ->
        let rng = Rng.create ~seed in
        let remaining = ref (pick_victims ~seed ~k) in
        let write_pending p =
          Runtime.status p = Runtime.Runnable
          && match Runtime.pending p with
             | Some (Runtime.Write _) -> true
             | Some (Runtime.Read _) | None -> false
        in
        fun rt ->
          match
            List.find_opt
              (fun pid -> write_pending (Runtime.proc_by_pid rt pid))
              !remaining
          with
          | Some pid ->
              remaining := List.filter (fun x -> x <> pid) !remaining;
              Some (Runner.Crash (Runtime.proc_by_pid rt pid))
          | None -> random_commit rng rt);
  }

let freeze =
  {
    id = "freeze";
    describe = "ceil(k/2) victims frozen for a commit window, then thawed";
    make =
      (fun ~seed ~k ->
        let rng = Rng.create ~seed in
        let victims = pick_victims ~seed:(seed + 2) ~k in
        let freeze_at = 4 + (k / 2) in
        let policy =
          Exsel_lowerbound.Freeze.freeze_window ~rng ~victims ~freeze_at
            ~thaw_at:(freeze_at + (32 * k))
        in
        fun rt ->
          match policy rt with
          | Some p -> Some (Runner.Commit p)
          | None -> None);
  }

let lockstep =
  {
    id = "lockstep";
    describe = "uniform among least-stepped runnable processes (max contention)";
    make =
      (fun ~seed ~k:_ ->
        let rng = Rng.create ~seed in
        fun rt ->
          if Runtime.num_runnable rt = 0 then None
          else begin
            let min_steps = ref max_int in
            Runtime.iter_runnable rt (fun p ->
                if Runtime.steps p < !min_steps then min_steps := Runtime.steps p);
            let count = ref 0 in
            Runtime.iter_runnable rt (fun p ->
                if Runtime.steps p = !min_steps then incr count);
            let j = Rng.int rng !count in
            let chosen = ref None in
            let i = ref 0 in
            Runtime.iter_runnable rt (fun p ->
                if Runtime.steps p = !min_steps then begin
                  if !i = j then chosen := Some p;
                  incr i
                end);
            match !chosen with
            | Some p -> Some (Runner.Commit p)
            | None -> None
          end);
  }

let all = [ random; crash_half; crash_on_write; freeze; lockstep ]

let find id = List.find_opt (fun r -> r.id = id) all

let ids () = List.map (fun r -> r.id) all
