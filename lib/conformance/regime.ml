(* The five fault regimes, each one a closed term of the adversary DSL
   (lib/adversary).  Until PR 10 these were hard-coded closures; the DSL
   terms compile to drivers making draw-for-draw identical RNG requests,
   so seeded schedules — and whole campaign reports — are byte-identical
   to the historical implementations (DESIGN.md §15 carries the
   equivalence table, test/test_adversary.ml pins it). *)

module Dsl = Exsel_adversary.Dsl

type t = {
  id : string;
  describe : string;
  make : seed:int -> k:int -> Runner.driver;
}

let lift_decision = function
  | Dsl.Commit p -> Runner.Commit p
  | Dsl.Crash p -> Runner.Crash p

let of_expr ~id ~describe expr =
  {
    id;
    describe;
    make =
      (fun ~seed ~k ->
        let driver = Dsl.compile expr ~seed ~k in
        fun rt -> Option.map lift_decision (driver rt));
  }

let of_string s =
  match Dsl.parse s with
  | Error _ as e -> e
  | Ok expr ->
      let canonical = Dsl.to_string expr in
      Ok
        (of_expr
           ~id:("dsl:" ^ canonical)
           ~describe:("adversary DSL term " ^ canonical)
           expr)

let random =
  of_expr ~id:"random"
    ~describe:"seeded uniformly-random scheduling, no crashes"
    Dsl.legacy_random

let crash_half =
  of_expr ~id:"crash-half"
    ~describe:"ceil(k/2) seeded victims crash at seeded commit points"
    Dsl.legacy_crash_half

let crash_on_write =
  of_expr ~id:"crash-on-write"
    ~describe:"ceil(k/2) seeded victims crash on their first pending write"
    Dsl.legacy_crash_on_write

let freeze =
  of_expr ~id:"freeze"
    ~describe:"ceil(k/2) victims frozen for a commit window, then thawed"
    Dsl.legacy_freeze

let lockstep =
  of_expr ~id:"lockstep"
    ~describe:"uniform among least-stepped runnable processes (max contention)"
    Dsl.legacy_lockstep

let all = [ random; crash_half; crash_on_write; freeze; lockstep ]

let find id = List.find_opt (fun r -> r.id = id) all

let ids () = List.map (fun r -> r.id) all
