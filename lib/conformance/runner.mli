(** The common runner interface of the conformance campaigns.

    Every algorithm under campaign is wrapped as a {!spec}: a
    deterministic builder for a fresh {!instance} — a runtime with the
    contenders already spawned — plus a check, evaluated at quiescence,
    of every executable claim the paper makes about that algorithm
    (pairwise-exclusive names, names within the claimed bound,
    termination of non-crashed processes, local steps within the claimed
    shape).  The shape is deliberately the one {!Exsel_sim.Explore}
    already speaks, so a violating run recorded by {!drive} can be
    handed to [Explore.shrink] unchanged for counterexample
    minimization, and to [Explore.replay] for value-carrying trace
    capture. *)

type instance = {
  runtime : Exsel_sim.Runtime.t;
  check : unit -> (unit, string) result;
      (** evaluate every claim at quiescence; [Error msg] names the first
          violated claim.  Must depend only on the quiescent state, not
          on the schedule that reached it, so shrinking preserves
          violations. *)
}

type spec = {
  algo : string;  (** adapter id, e.g. ["efficient"] *)
  claim : string;  (** the paper claim being exercised, e.g. ["Theorem 2"] *)
  init : unit -> instance;
      (** build a fresh instance; must be deterministic (seeds are
          captured at adapter-construction time) so replays reconstruct
          the same execution *)
}

type decision =
  | Commit of Exsel_sim.Runtime.proc
      (** commit this runnable process's pending operation *)
  | Crash of Exsel_sim.Runtime.proc  (** crash this process here *)

type driver = Exsel_sim.Runtime.t -> decision option
(** A fault regime instantiated for one run: called before every
    scheduling decision; [None] relinquishes control, after which the
    runner completes the execution to quiescence in pid order. *)

type outcome = {
  schedule : Exsel_sim.Explore.choice list;
      (** every decision taken, in order — replayable against a fresh
          [init]-ed instance with {!Exsel_sim.Explore.replay} *)
  commits : int;  (** operations committed in the run *)
  max_steps : int;  (** worst-case local steps over the processes *)
  crashed : int;  (** processes crashed by the regime *)
  failure : string option;
      (** the violated claim, if any; liveness failures (commit budget
          exhausted with runnable processes remaining) are reported here
          too *)
}

val drive : ?max_commits:int -> spec -> driver:driver -> outcome
(** [drive spec ~driver] builds a fresh instance, lets [driver] schedule
    (and crash) it decision by decision — recording the schedule — until
    quiescence, then evaluates the instance's check.  [max_commits]
    (default [2_000_000]) bounds the run; exhausting it with runnable
    processes remaining is reported as a liveness failure rather than
    raising. *)
