(** Fault regimes: seeded adversarial environments for campaign cells.

    A regime turns a seed and the contention [k] into a {!Runner.driver}.
    Five regimes ship, covering the fault classes the paper's claims are
    stated against:

    - ["random"] — seeded uniformly-random scheduling, no crashes (the
      baseline asynchronous adversary);
    - ["crash-half"] — ⌈k/2⌉ seeded victims crash at seeded global commit
      points, random scheduling otherwise;
    - ["crash-on-write"] — ⌈k/2⌉ seeded victims crash the first time
      their pending operation is a write, so half-performed announcements
      (a posted door value, a partial snapshot update) are left behind;
    - ["freeze"] — an adversarial freeze/wake window built on
      {!Exsel_lowerbound.Freeze.freeze_window}: ⌈k/2⌉ victims are frozen
      mid-protocol for a window of commits while the rest run, then
      thawed (no crashes — tests claims under maximal staleness);
    - ["lockstep"] — uniform choice among the runnable processes with the
      {e fewest} local steps, keeping all [k] contenders inside the same
      protocol stage — the highest-contention schedule a uniform
      adversary produces.

    Every driver is deterministic in [(seed, k)]; replaying a recorded
    schedule with {!Exsel_sim.Explore.replay} reproduces the execution
    without the regime. *)

type t = {
  id : string;  (** CLI-stable identifier, e.g. ["crash-half"] *)
  describe : string;  (** one-line description for reports *)
  make : seed:int -> k:int -> Runner.driver;
}

val all : t list
(** The five regimes, in the order listed above. *)

val find : string -> t option
(** Look a regime up by [id]. *)

val ids : unit -> string list
(** All regime ids, in {!all} order. *)
