(** Fault regimes: seeded adversarial environments for campaign cells.

    A regime turns a seed and the contention [k] into a {!Runner.driver}.
    Since PR 10 every regime is a closed term of the adversary DSL
    ({!Exsel_adversary.Dsl}), compiled on demand; the five stock terms
    cover the fault classes the paper's claims are stated against:

    - ["random"] = [uniform] — seeded uniformly-random scheduling, no
      crashes (the baseline asynchronous adversary);
    - ["crash-half"] = [crash(half, uniform)] — ⌈k/2⌉ seeded victims
      crash at seeded global commit points, random scheduling otherwise;
    - ["crash-on-write"] = [crashw(half, uniform)] — ⌈k/2⌉ seeded
      victims crash the first time their pending operation is a write,
      so half-performed announcements (a posted door value, a partial
      snapshot update) are left behind;
    - ["freeze"] = [freeze(half+2, uniform)] — ⌈k/2⌉ victims are frozen
      mid-protocol for a window of commits while the rest run, then
      thawed (no crashes — tests claims under maximal staleness);
    - ["lockstep"] = [lockstep] — uniform choice among the runnable
      processes with the {e fewest} local steps, keeping all [k]
      contenders inside the same protocol stage — the highest-contention
      schedule a uniform adversary produces.

    The DSL terms compile to drivers making draw-for-draw identical RNG
    requests to the pre-DSL closures, so seeded schedules and campaign
    reports are byte-identical across the rewrite.

    Every driver is deterministic in [(seed, k)]; replaying a recorded
    schedule with {!Exsel_sim.Explore.replay} reproduces the execution
    without the regime. *)

type t = {
  id : string;  (** CLI-stable identifier, e.g. ["crash-half"] *)
  describe : string;  (** one-line description for reports *)
  make : seed:int -> k:int -> Runner.driver;
}

val all : t list
(** The five regimes, in the order listed above. *)

val find : string -> t option
(** Look a regime up by [id]. *)

val ids : unit -> string list
(** All regime ids, in {!all} order. *)

val of_expr : id:string -> describe:string -> Exsel_adversary.Dsl.expr -> t
(** Wrap a DSL term as a regime: [make] compiles the term with fresh
    per-execution state for every [(seed, k)]. *)

val of_string : string -> (t, string) result
(** Parse a concrete-grammar adversary expression (CLI [--adversary])
    into a regime whose id is ["dsl:" ^ canonical-form]. *)
