module Explore = Exsel_sim.Explore
module Trace = Exsel_sim.Trace
module Json = Exsel_obs.Json

type config = {
  algos : Adapter.t list;
  regimes : Regime.t list;
  seeds : int list;
  k : int;
  steps_multiple : float;
  max_commits : int;
  shrink : bool;
}

let default =
  {
    algos = Adapter.honest;
    regimes = Regime.all;
    seeds = [ 1; 2; 3 ];
    k = 5;
    steps_multiple = 1.0;
    max_commits = 1_000_000;
    shrink = true;
  }

type violation = {
  v_algo : string;
  v_claim : string;
  v_regime : string;
  v_seed : int;
  v_failure : string;
  v_schedule : Explore.choice list;
  v_shrunk : Explore.choice list option;
  v_shrunk_failure : string option;
  v_trace : Trace.event list;
}

type cell = {
  c_algo : string;
  c_claim : string;
  c_regime : string;
  c_seeds_run : int;
  c_commits : int;
  c_max_steps : int;
  c_crashed : int;
  c_violation : violation option;
}

type report = {
  r_k : int;
  r_steps_multiple : float;
  r_seeds : int list;
  r_cells : cell list;
  r_violations : int;
}

let is_liveness msg = String.length msg >= 9 && String.sub msg 0 9 = "liveness:"

(* Replaying a schedule against a fresh instance only pays off while the
   result stays readable; beyond this many choices we skip the trace. *)
let trace_cap = 5_000

let analyse cfg (adapter : Adapter.t) (regime : Regime.t) ~seed
    (outcome : Runner.outcome) ~failure =
  let spec =
    adapter.Adapter.make ~seed ~k:cfg.k ~steps_multiple:cfg.steps_multiple
  in
  let init () =
    let i = spec.Runner.init () in
    (i, i.Runner.runtime)
  in
  let check i _rt = i.Runner.check () in
  let shrunk, shrunk_failure =
    if cfg.shrink && not (is_liveness failure) then begin
      let s = Explore.shrink ~init ~check outcome.Runner.schedule in
      let i, rt = init () in
      Explore.replay rt s;
      let f = match check i rt with Ok () -> None | Error m -> Some m in
      (Some s, f)
    end
    else (None, None)
  in
  let trace =
    let schedule = Option.value shrunk ~default:outcome.Runner.schedule in
    if List.length schedule > trace_cap then []
    else begin
      let _, rt = init () in
      let tr = Trace.attach rt in
      Explore.replay rt schedule;
      Trace.events tr
    end
  in
  {
    v_algo = adapter.Adapter.id;
    v_claim = adapter.Adapter.claim;
    v_regime = regime.Regime.id;
    v_seed = seed;
    v_failure = failure;
    v_schedule = outcome.Runner.schedule;
    v_shrunk = shrunk;
    v_shrunk_failure = shrunk_failure;
    v_trace = trace;
  }

let run_cell cfg (adapter : Adapter.t) (regime : Regime.t) =
  let seeds_run = ref 0 in
  let commits = ref 0 in
  let max_steps = ref 0 in
  let crashed = ref 0 in
  let violation = ref None in
  let rec go = function
    | [] -> ()
    | seed :: rest ->
        let spec =
          adapter.Adapter.make ~seed ~k:cfg.k
            ~steps_multiple:cfg.steps_multiple
        in
        let driver = regime.Regime.make ~seed ~k:cfg.k in
        let outcome = Runner.drive ~max_commits:cfg.max_commits spec ~driver in
        incr seeds_run;
        commits := !commits + outcome.Runner.commits;
        max_steps := max !max_steps outcome.Runner.max_steps;
        crashed := !crashed + outcome.Runner.crashed;
        (match outcome.Runner.failure with
        | None -> go rest
        | Some failure ->
            violation := Some (analyse cfg adapter regime ~seed outcome ~failure))
  in
  go cfg.seeds;
  {
    c_algo = adapter.Adapter.id;
    c_claim = adapter.Adapter.claim;
    c_regime = regime.Regime.id;
    c_seeds_run = !seeds_run;
    c_commits = !commits;
    c_max_steps = !max_steps;
    c_crashed = !crashed;
    c_violation = !violation;
  }

let run ?(on_cell = fun _ -> ()) cfg =
  let cells =
    List.concat_map
      (fun adapter ->
        List.map
          (fun regime ->
            let cell = run_cell cfg adapter regime in
            on_cell cell;
            cell)
          cfg.regimes)
      cfg.algos
  in
  let violations =
    List.length (List.filter (fun c -> c.c_violation <> None) cells)
  in
  {
    r_k = cfg.k;
    r_steps_multiple = cfg.steps_multiple;
    r_seeds = cfg.seeds;
    r_cells = cells;
    r_violations = violations;
  }

(* ------------------------------------------------------------------ *)
(* exsel-conformance/1                                                 *)
(* ------------------------------------------------------------------ *)

let schedule_cap = 100_000

let choice_json = function
  | Explore.Step pid -> Json.Obj [ ("kind", Json.String "step"); ("pid", Json.Int pid) ]
  | Explore.Crash pid ->
      Json.Obj [ ("kind", Json.String "crash"); ("pid", Json.Int pid) ]

let schedule_json s = Json.List (List.map choice_json s)

let violation_json v =
  let base =
    [
      ("seed", Json.Int v.v_seed);
      ("failure", Json.String v.v_failure);
      ("schedule_len", Json.Int (List.length v.v_schedule));
    ]
  in
  let sched =
    if List.length v.v_schedule <= schedule_cap then
      [ ("schedule", schedule_json v.v_schedule) ]
    else []
  in
  let shrunk =
    match v.v_shrunk with
    | None -> []
    | Some s -> [ ("shrunk", schedule_json s) ]
  in
  let shrunk_failure =
    match v.v_shrunk_failure with
    | None -> []
    | Some m -> [ ("shrunk_failure", Json.String m) ]
  in
  let trace =
    match v.v_trace with
    | [] -> []
    | events ->
        let label =
          Printf.sprintf "%s/%s seed=%d" v.v_algo v.v_regime v.v_seed
        in
        [ ("trace", Exsel_obs.Trace_export.to_json ~label events) ]
  in
  Json.Obj (base @ sched @ shrunk @ shrunk_failure @ trace)

let cell_json c =
  let base =
    [
      ("algo", Json.String c.c_algo);
      ("claim", Json.String c.c_claim);
      ("regime", Json.String c.c_regime);
      ("seeds_run", Json.Int c.c_seeds_run);
      ("commits", Json.Int c.c_commits);
      ("max_steps", Json.Int c.c_max_steps);
      ("crashed", Json.Int c.c_crashed);
      ("ok", Json.Bool (c.c_violation = None));
    ]
  in
  match c.c_violation with
  | None -> Json.Obj base
  | Some v -> Json.Obj (base @ [ ("violation", violation_json v) ])

let to_json r =
  Json.Obj
    [
      ("schema", Json.String "exsel-conformance/1");
      ("k", Json.Int r.r_k);
      ("steps_multiple", Json.Float r.r_steps_multiple);
      ("seeds", Json.List (List.map (fun s -> Json.Int s) r.r_seeds));
      ("cells", Json.List (List.map cell_json r.r_cells));
      ("violations", Json.Int r.r_violations);
    ]

let pp_summary ppf r =
  Format.fprintf ppf "conformance: k=%d seeds=%d steps_multiple=%g@." r.r_k
    (List.length r.r_seeds) r.r_steps_multiple;
  List.iter
    (fun c ->
      match c.c_violation with
      | None ->
          Format.fprintf ppf "  ok    %-16s %-14s (%s; %d seeds, %d commits, \
                              max_steps %d, crashed %d)@."
            c.c_algo c.c_regime c.c_claim c.c_seeds_run c.c_commits
            c.c_max_steps c.c_crashed
      | Some v ->
          Format.fprintf ppf "  FAIL  %-16s %-14s (%s) seed=%d@." c.c_algo
            c.c_regime c.c_claim v.v_seed;
          Format.fprintf ppf "        %s@." v.v_failure;
          (match v.v_shrunk with
          | Some s ->
              Format.fprintf ppf "        shrunk %d -> %d choices%s@."
                (List.length v.v_schedule) (List.length s)
                (match v.v_shrunk_failure with
                | Some m -> ": " ^ m
                | None -> "")
          | None -> ()))
    r.r_cells;
  Format.fprintf ppf "  %d violation%s in %d cells@." r.r_violations
    (if r.r_violations = 1 then "" else "s")
    (List.length r.r_cells)
