module Explore = Exsel_sim.Explore
module Trace = Exsel_sim.Trace
module Json = Exsel_obs.Json
module Metrics = Exsel_obs.Metrics

type config = {
  algos : Adapter.t list;
  regimes : Regime.t list;
  seeds : int list;
  k : int;
  steps_multiple : float;
  max_commits : int;
  shrink : bool;
}

let default =
  {
    algos = Adapter.honest;
    regimes = Regime.all;
    seeds = [ 1; 2; 3 ];
    k = 5;
    steps_multiple = 1.0;
    max_commits = 1_000_000;
    shrink = true;
  }

(* [--seeds] accepts either a count ("5" → seeds 1..5) or an explicit
   comma-separated list ("3,7,11").  Duplicate and negative seeds are
   rejected rather than silently accepted: a duplicate runs the same
   execution twice and skews [seeds_run], and a negative seed aliases
   the RNG state of a positive one ({!Exsel_sim.Rng.create} folds the
   seed), silently shrinking the coverage the report claims. *)
let seeds_of_string spec =
  let parts = String.split_on_char ',' (String.trim spec) in
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "invalid seed %S (expected an integer)" s)
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        match parse s with Ok n -> collect (n :: acc) rest | Error e -> Error e)
  in
  match collect [] parts with
  | Error e -> Error e
  | Ok [ n ] ->
      (* a single value is a count, matching the historical interface *)
      if n <= 0 then
        Error (Printf.sprintf "seed count %d must be positive" n)
      else Ok (List.init n (fun i -> i + 1))
  | Ok seeds -> (
      match List.find_opt (fun s -> s < 0) seeds with
      | Some bad -> Error (Printf.sprintf "negative seed %d aliases a positive RNG state" bad)
      | None -> (
          let rec first_dup seen = function
            | [] -> None
            | s :: rest ->
                if List.mem s seen then Some s else first_dup (s :: seen) rest
          in
          match first_dup [] seeds with
          | Some bad -> Error (Printf.sprintf "duplicate seed %d" bad)
          | None -> Ok seeds))

type violation = {
  v_algo : string;
  v_claim : string;
  v_regime : string;
  v_seed : int;
  v_failure : string;
  v_schedule : Explore.choice list;
  v_shrunk : Explore.choice list option;
  v_shrunk_failure : string option;
  v_trace : Trace.event list;
}

type cell = {
  c_algo : string;
  c_claim : string;
  c_regime : string;
  c_seeds_run : int;
  c_commits : int;
  c_max_steps : int;
  c_crashed : int;
  c_violation : violation option;
  c_metrics : Metrics.t;
}

type report = {
  r_k : int;
  r_steps_multiple : float;
  r_seeds : int list;
  r_cells : cell list;
  r_violations : int;
  r_metrics : Metrics.t;
}

type event =
  | Cell_started of { index : int; algo : string; regime : string }
  | Cell_violated of { index : int; violation : violation }
  | Cell_finished of { index : int; cell : cell }

let is_liveness msg = String.length msg >= 9 && String.sub msg 0 9 = "liveness:"

(* Replaying a schedule against a fresh instance only pays off while the
   result stays readable; beyond this many choices we skip the trace. *)
let trace_cap = 5_000

let analyse cfg (adapter : Adapter.t) (regime : Regime.t) ~seed
    (outcome : Runner.outcome) ~failure =
  let spec =
    adapter.Adapter.make ~seed ~k:cfg.k ~steps_multiple:cfg.steps_multiple
  in
  let init () =
    let i = spec.Runner.init () in
    (i, i.Runner.runtime)
  in
  let check i _rt = i.Runner.check () in
  let shrunk, shrunk_failure =
    if cfg.shrink && not (is_liveness failure) then begin
      let s = Explore.shrink ~init ~check outcome.Runner.schedule in
      let i, rt = init () in
      Explore.replay rt s;
      let f = match check i rt with Ok () -> None | Error m -> Some m in
      (Some s, f)
    end
    else (None, None)
  in
  let trace =
    let schedule = Option.value shrunk ~default:outcome.Runner.schedule in
    if List.length schedule > trace_cap then []
    else begin
      let _, rt = init () in
      let tr = Trace.attach rt in
      Explore.replay rt schedule;
      Trace.events tr
    end
  in
  {
    v_algo = adapter.Adapter.id;
    v_claim = adapter.Adapter.claim;
    v_regime = regime.Regime.id;
    v_seed = seed;
    v_failure = failure;
    v_schedule = outcome.Runner.schedule;
    v_shrunk = shrunk;
    v_shrunk_failure = shrunk_failure;
    v_trace = trace;
  }

let run_cell cfg ?(on_event = fun (_ : event) -> ()) ~index
    (adapter : Adapter.t) (regime : Regime.t) =
  let seeds_run = ref 0 in
  let commits = ref 0 in
  let max_steps = ref 0 in
  let crashed = ref 0 in
  let violation = ref None in
  (* Every cell owns a private registry, so the -j N merge can fold them
     back in matrix order.  The rename-latency histogram is fed by the
     adapter bodies through Metrics.ambient: the scope covers Runner.drive
     only, so the analyse-phase replays (shrink, trace capture) never
     double-count an operation. *)
  let reg = Metrics.create () in
  let labels = [ ("algo", adapter.Adapter.id); ("regime", regime.Regime.id) ] in
  let runs_c = Metrics.counter reg "exsel_campaign_runs" ~labels in
  let commits_c = Metrics.counter reg "exsel_campaign_commits" ~labels in
  let crashes_c = Metrics.counter reg "exsel_campaign_crashes" ~labels in
  let violations_c = Metrics.counter reg "exsel_campaign_violations" ~labels in
  let max_steps_g = Metrics.gauge reg "exsel_campaign_max_steps" ~labels in
  on_event
    (Cell_started { index; algo = adapter.Adapter.id; regime = regime.Regime.id });
  let rec go = function
    | [] -> ()
    | seed :: rest ->
        let spec =
          adapter.Adapter.make ~seed ~k:cfg.k
            ~steps_multiple:cfg.steps_multiple
        in
        let driver = regime.Regime.make ~seed ~k:cfg.k in
        let outcome =
          Metrics.with_ambient reg (fun () ->
              Runner.drive ~max_commits:cfg.max_commits spec ~driver)
        in
        incr seeds_run;
        commits := !commits + outcome.Runner.commits;
        max_steps := max !max_steps outcome.Runner.max_steps;
        crashed := !crashed + outcome.Runner.crashed;
        Metrics.inc runs_c 1;
        Metrics.inc commits_c outcome.Runner.commits;
        Metrics.inc crashes_c outcome.Runner.crashed;
        Metrics.max_gauge max_steps_g outcome.Runner.max_steps;
        (match outcome.Runner.failure with
        | None -> go rest
        | Some failure ->
            let v = analyse cfg adapter regime ~seed outcome ~failure in
            Metrics.inc violations_c 1;
            on_event (Cell_violated { index; violation = v });
            violation := Some v)
  in
  go cfg.seeds;
  let cell =
    {
      c_algo = adapter.Adapter.id;
      c_claim = adapter.Adapter.claim;
      c_regime = regime.Regime.id;
      c_seeds_run = !seeds_run;
      c_commits = !commits;
      c_max_steps = !max_steps;
      c_crashed = !crashed;
      c_violation = !violation;
      c_metrics = reg;
    }
  in
  on_event (Cell_finished { index; cell });
  cell

let run ?(jobs = 1) ?(on_cell = fun _ -> ()) ?(on_event = fun _ -> ()) cfg =
  (* Every cell (algo × regime, seeds run in order inside it) is an
     independent unit of work: each run builds its own memory, runtime,
     rng and observers, and all simulator ambient state is domain-local.
     Pool.map returns cell outcomes in matrix order regardless of which
     domain finished first, so the report — including each cell's first
     violation, its shrunk counterexample and its replayed trace — is
     identical at every [jobs]. *)
  let matrix =
    List.concat_map
      (fun adapter -> List.map (fun regime -> (adapter, regime)) cfg.regimes)
      cfg.algos
  in
  let matrix = List.mapi (fun index (a, r) -> (index, a, r)) matrix in
  let cells =
    if jobs <= 1 then
      List.map
        (fun (index, adapter, regime) ->
          let cell = run_cell cfg ~on_event ~index adapter regime in
          on_cell cell;
          cell)
        matrix
    else begin
      let cells =
        Exsel_sim.Pool.map ~jobs
          (fun (index, adapter, regime) ->
            run_cell cfg ~on_event ~index adapter regime)
          matrix
      in
      List.iter on_cell cells;
      cells
    end
  in
  let violations =
    List.length (List.filter (fun c -> c.c_violation <> None) cells)
  in
  (* Fold the per-cell registries in matrix order.  Metrics.merge is
     commutative, so any order yields the same rendered bytes — folding
     in matrix order anyway keeps the in-memory registry identical too. *)
  let merged = Metrics.create () in
  Metrics.inc (Metrics.counter merged "exsel_campaign_cells") (List.length cells);
  List.iter (fun c -> Metrics.merge ~into:merged c.c_metrics) cells;
  {
    r_k = cfg.k;
    r_steps_multiple = cfg.steps_multiple;
    r_seeds = cfg.seeds;
    r_cells = cells;
    r_violations = violations;
    r_metrics = merged;
  }

(* ------------------------------------------------------------------ *)
(* exsel-conformance/1                                                 *)
(* ------------------------------------------------------------------ *)

let schedule_cap = 100_000

let choice_json = function
  | Explore.Step pid -> Json.Obj [ ("kind", Json.String "step"); ("pid", Json.Int pid) ]
  | Explore.Crash pid ->
      Json.Obj [ ("kind", Json.String "crash"); ("pid", Json.Int pid) ]

let schedule_json s = Json.List (List.map choice_json s)

let violation_json v =
  let base =
    [
      ("seed", Json.Int v.v_seed);
      ("failure", Json.String v.v_failure);
      ("schedule_len", Json.Int (List.length v.v_schedule));
    ]
  in
  let sched =
    if List.length v.v_schedule <= schedule_cap then
      [ ("schedule", schedule_json v.v_schedule) ]
    else []
  in
  let shrunk =
    match v.v_shrunk with
    | None -> []
    | Some s -> [ ("shrunk", schedule_json s) ]
  in
  let shrunk_failure =
    match v.v_shrunk_failure with
    | None -> []
    | Some m -> [ ("shrunk_failure", Json.String m) ]
  in
  let trace =
    match v.v_trace with
    | [] -> []
    | events ->
        let label =
          Printf.sprintf "%s/%s seed=%d" v.v_algo v.v_regime v.v_seed
        in
        [ ("trace", Exsel_obs.Trace_export.to_json ~label events) ]
  in
  Json.Obj (base @ sched @ shrunk @ shrunk_failure @ trace)

let cell_json c =
  let base =
    [
      ("algo", Json.String c.c_algo);
      ("claim", Json.String c.c_claim);
      ("regime", Json.String c.c_regime);
      ("seeds_run", Json.Int c.c_seeds_run);
      ("commits", Json.Int c.c_commits);
      ("max_steps", Json.Int c.c_max_steps);
      ("crashed", Json.Int c.c_crashed);
      ("ok", Json.Bool (c.c_violation = None));
    ]
  in
  match c.c_violation with
  | None -> Json.Obj base
  | Some v -> Json.Obj (base @ [ ("violation", violation_json v) ])

let to_json r =
  Json.Obj
    [
      ("schema", Json.String "exsel-conformance/1");
      ("k", Json.Int r.r_k);
      ("steps_multiple", Json.Float r.r_steps_multiple);
      ("seeds", Json.List (List.map (fun s -> Json.Int s) r.r_seeds));
      ("cells", Json.List (List.map cell_json r.r_cells));
      ("violations", Json.Int r.r_violations);
      ("metrics", Metrics.to_json r.r_metrics);
    ]

(* ------------------------------------------------------------------ *)
(* exsel-events/1                                                      *)
(* ------------------------------------------------------------------ *)

(* Event lines carry no wall-clock or job-count data: under [-j N] they
   interleave in a nondeterministic order but the multiset of lines is
   identical to [-j 1], so sorted streams compare byte-equal. *)

let start_event cfg =
  Json.Obj
    [
      ("schema", Json.String "exsel-events/1");
      ("event", Json.String "start");
      ("kind", Json.String "conformance");
      ( "algos",
        Json.List
          (List.map (fun a -> Json.String a.Adapter.id) cfg.algos) );
      ( "regimes",
        Json.List
          (List.map (fun r -> Json.String r.Regime.id) cfg.regimes) );
      ("seeds", Json.List (List.map (fun s -> Json.Int s) cfg.seeds));
      ("k", Json.Int cfg.k);
      ("cells", Json.Int (List.length cfg.algos * List.length cfg.regimes));
    ]

let event_json = function
  | Cell_started { index; algo; regime } ->
      Json.Obj
        [
          ("event", Json.String "cell_started");
          ("cell", Json.Int index);
          ("algo", Json.String algo);
          ("regime", Json.String regime);
        ]
  | Cell_violated { index; violation = v } ->
      Json.Obj
        [
          ("event", Json.String "cell_violated");
          ("cell", Json.Int index);
          ("algo", Json.String v.v_algo);
          ("regime", Json.String v.v_regime);
          ("seed", Json.Int v.v_seed);
          ("failure", Json.String v.v_failure);
        ]
  | Cell_finished { index; cell = c } ->
      Json.Obj
        [
          ("event", Json.String "cell_finished");
          ("cell", Json.Int index);
          ("algo", Json.String c.c_algo);
          ("regime", Json.String c.c_regime);
          ("seeds_run", Json.Int c.c_seeds_run);
          ("commits", Json.Int c.c_commits);
          ("max_steps", Json.Int c.c_max_steps);
          ("crashed", Json.Int c.c_crashed);
          ("ok", Json.Bool (c.c_violation = None));
          ("quantiles", Metrics.quantiles_json c.c_metrics);
        ]

let done_event r =
  Json.Obj
    [
      ("event", Json.String "done");
      ("cells", Json.Int (List.length r.r_cells));
      ("violations", Json.Int r.r_violations);
      ("metrics", Metrics.summary_json r.r_metrics);
    ]

let pp_summary ppf r =
  Format.fprintf ppf "conformance: k=%d seeds=%d steps_multiple=%g@." r.r_k
    (List.length r.r_seeds) r.r_steps_multiple;
  List.iter
    (fun c ->
      match c.c_violation with
      | None ->
          Format.fprintf ppf "  ok    %-16s %-14s (%s; %d seeds, %d commits, \
                              max_steps %d, crashed %d)@."
            c.c_algo c.c_regime c.c_claim c.c_seeds_run c.c_commits
            c.c_max_steps c.c_crashed
      | Some v ->
          Format.fprintf ppf "  FAIL  %-16s %-14s (%s) seed=%d@." c.c_algo
            c.c_regime c.c_claim v.v_seed;
          Format.fprintf ppf "        %s@." v.v_failure;
          (match v.v_shrunk with
          | Some s ->
              Format.fprintf ppf "        shrunk %d -> %d choices%s@."
                (List.length v.v_schedule) (List.length s)
                (match v.v_shrunk_failure with
                | Some m -> ": " ^ m
                | None -> "")
          | None -> ()))
    r.r_cells;
  Format.fprintf ppf "  %d violation%s in %d cells@." r.r_violations
    (if r.r_violations = 1 then "" else "s")
    (List.length r.r_cells)
