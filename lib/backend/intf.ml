(* The register/runtime substrate every renaming algorithm is written
   against (DESIGN.md §12).  Two instantiations exist:

   - [Exsel_sim.Backend]: the deterministic effect-handler simulator.
     [read]/[write] suspend the calling logical process so the scheduler
     commits one shared-memory operation at a time — exploration,
     conformance regimes and replay all live here.
   - [Exsel_native.Backend]: registers are [Atomic.t] cells and logical
     processes are work-queued onto a pool of OCaml 5 domains —
     real silicon, measured with wall clocks and checked post hoc.

   The interface is deliberately the simulator's op set and nothing
   more: single-word atomic registers with sequentially consistent
   read/write, allocation against a memory that counts registers, and
   process spawning against a runner.  Everything the algorithms need
   beyond it (randomness at construction time, name-range bookkeeping)
   is pure OCaml and backend-independent. *)

module type S = sig
  val backend : string
  (** Label for documents and bench tables: ["sim"] or ["native"]. *)

  type memory
  (** Register allocation arena (counts allocations for the paper's
      register-complexity accounting). *)

  type 'a reg
  (** A single shared register holding an ['a]. *)

  type runner
  (** Whatever executes spawned logical processes: the simulator
      runtime, or the native domain-pool engine. *)

  val alloc : memory -> name:string -> 'a -> 'a reg
  (** Allocate a fresh register with an initial value.  Only called at
      construction time, before any process runs. *)

  val read : 'a reg -> 'a
  (** One shared-memory read — a local step of the calling process. *)

  val write : 'a reg -> 'a -> unit
  (** One shared-memory write — a local step of the calling process. *)

  val peek : 'a reg -> 'a
  (** Immediate, non-step inspection of a register from outside the
      execution (test/diagnostic use only; on the simulator this is
      [Register.peek], natively it is an ordinary atomic load). *)

  val registers : memory -> int
  (** Registers allocated so far. *)

  val spawn : runner -> name:string -> (unit -> unit) -> unit
  (** Enqueue one logical process.  When it runs is the backend's
      business: the simulator suspends it at every register access,
      the native engine runs it to completion on some domain. *)

  val yield : unit -> unit
  (** Politeness hint inside spin-ish retry loops.  A no-op on the
      simulator (every read/write is already a scheduling point); maps
      to [Domain.cpu_relax] natively. *)
end
