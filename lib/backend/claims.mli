(** Backend-independent claim checking over a recorded decision log.

    Extracted from the conformance adapters so the same per-claim checks
    — termination, pairwise name exclusiveness, the name bound, the
    algorithm's completion contract, and (when a step clock exists) the
    local-step budget — apply to simulator runs and to post-hoc native
    runs alike.  The error messages are the conformance reports' exact
    strings. *)

type completion =
  | All_named  (** every non-crashed contender decides a name *)
  | Half_renamed  (** Lemma 4: at least ⌈k/2⌉ − crashed decide *)
  | Winners_exclusive  (** Compete: at most one winner, nothing more *)

type status = Done | Crashed | Runnable

type outcome = {
  name : string;  (** process name, used in the termination message *)
  status : status;
  result : int option;  (** decided new name, if any *)
  steps : int;  (** local steps ([0] when the backend has no clock) *)
}

val check :
  completion:completion ->
  k:int ->
  outcomes:outcome array ->
  bound:int ->
  ?steps_budget:float ->
  unit ->
  (unit, string) result
(** [check ~completion ~k ~outcomes ~bound ?steps_budget ()] returns the
    first violated claim as [Error msg] (checks run in a fixed order:
    termination, exclusiveness, name bound, completion, steps), [Ok ()]
    otherwise.  The steps check only runs when [steps_budget] is given —
    native runs have no commit clock and omit it (DESIGN.md §12). *)
