(* Decision-log claim checking, shared by the conformance adapters (sim
   runs, where it also enforces the commit-clock step budgets) and the
   native harness (post-hoc, against the recorded decision log — there
   is no commit clock on real domains, so the steps check is simply not
   requested).  Pure: everything it needs is in the outcome records. *)

type completion = All_named | Half_renamed | Winners_exclusive

type status = Done | Crashed | Runnable

type outcome = {
  name : string;  (** process name, e.g. ["p3"] — used in messages *)
  status : status;
  result : int option;  (** the decided new name, if any *)
  steps : int;  (** local steps taken (0 when the backend has no clock) *)
}

let check ~completion ~k ~(outcomes : outcome array) ~bound ?steps_budget () =
  let winners = ref 0 in
  let crashed = ref 0 in
  Array.iter (fun o -> if o.result <> None then incr winners) outcomes;
  Array.iter (fun o -> if o.status = Crashed then incr crashed) outcomes;
  let exception Violation of string in
  try
    (* termination: at quiescence no process may still be runnable *)
    Array.iter
      (fun o ->
        if o.status = Runnable then
          raise
            (Violation
               (Printf.sprintf "termination: %s still runnable at quiescence"
                  o.name)))
      outcomes;
    (* pairwise-exclusive names *)
    let seen = Hashtbl.create 16 in
    Array.iteri
      (fun i o ->
        match o.result with
        | None -> ()
        | Some v -> (
            match Hashtbl.find_opt seen v with
            | Some j ->
                raise
                  (Violation
                     (Printf.sprintf
                        "exclusiveness: name %d assigned to both p%d and p%d" v
                        j i))
            | None -> Hashtbl.add seen v i))
      outcomes;
    (* names within the claimed bound *)
    Array.iteri
      (fun i o ->
        match o.result with
        | Some v when v < 0 || v >= bound ->
            raise
              (Violation
                 (Printf.sprintf "name bound: p%d holds name %d outside [0, %d)"
                    i v bound))
        | Some _ | None -> ())
      outcomes;
    (* completion *)
    (match completion with
    | All_named ->
        Array.iteri
          (fun i o ->
            if o.result = None && o.status = Done then
              raise
                (Violation
                   (Printf.sprintf "completion: p%d terminated without a name" i)))
          outcomes
    | Half_renamed ->
        let need = ((k + 1) / 2) - !crashed in
        if !winners < need then
          raise
            (Violation
               (Printf.sprintf
                  "completion: %d of %d renamed with %d crashed (Lemma 4 needs \
                   at least %d)"
                  !winners k !crashed need))
    | Winners_exclusive ->
        if !winners > 1 then
          raise
            (Violation (Printf.sprintf "exclusiveness: %d winners" !winners)));
    (* local steps within the claimed shape (commit-clock backends only) *)
    (match steps_budget with
    | None -> ()
    | Some budget ->
        let cap = int_of_float (Float.ceil budget) in
        Array.iteri
          (fun i o ->
            if o.steps > cap then
              raise
                (Violation
                   (Printf.sprintf "steps: p%d took %d local steps, budget %d" i
                      o.steps cap)))
          outcomes);
    Ok ()
  with Violation msg -> Error msg
