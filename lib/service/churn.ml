(* Churn campaigns: drive the sharded long-lived service through seeded
   arrival/departure/crash regimes and check the long-lived claims after
   every round.

   The shape mirrors lib/conformance/campaign.ml: a (regime × seed)
   matrix of independent cells, each owning its router, shard cores,
   runtimes and a private metrics registry, merged in matrix order — so
   [run ~jobs] is byte-identical to [-j 1].

   Execution is round-based but genuinely concurrent within a round: all
   of a round's operations (entry joins, acquires, releases) are spawned
   first and then interleaved one committed register operation at a time
   by a seeded scheduler across *all* shard runtimes (sim), or run on
   real domains by a per-round engine (native).  Claim checks run at
   round quiescence:

   - exclusive holds across generations: live leases never collide on a
     (shard, name), and a (shard, name, generation) triple is never
     issued twice — across releases, recycles and shard incarnations;
   - adaptive bound in point contention: an acquired local name stays
     below 2·k̂ − 1 where k̂ counts the sessions whose snapshot
     component may be published during the acquire (holders, concurrent
     acquirers/releasers, crash-pinned sessions) — a harness-side upper
     bound on the paper's point contention, so the check is sound;
   - no name leaked after release: a released slot publishes nothing at
     quiescence (and, dually, a crash-pinned name is still published —
     the crash model pins it forever). *)

module Rng = Exsel_sim.Rng
module Memory = Exsel_sim.Memory
module Runtime = Exsel_sim.Runtime
module Trace = Exsel_sim.Trace
module Json = Exsel_obs.Json
module Metrics = Exsel_obs.Metrics
module Engine = Exsel_native.Engine
module Dsl = Exsel_adversary.Dsl
module NCore = Core.Native

(* ------------------------------------------------------------------ *)
(* Regimes                                                             *)
(* ------------------------------------------------------------------ *)

type regime = Waves | Crash_rejoin | Hot_shard

let regime_id = function
  | Waves -> "waves"
  | Crash_rejoin -> "crash-rejoin"
  | Hot_shard -> "hot-shard"

let regime_of_string = function
  | "waves" -> Some Waves
  | "crash-rejoin" -> Some Crash_rejoin
  | "hot-shard" -> Some Hot_shard
  | _ -> None

let regime_describe = function
  | Waves ->
      "alternating arrival and departure waves: odd rounds admit a burst \
       of sessions, even rounds release and depart a seeded fraction"
  | Crash_rejoin ->
      "sessions crash while holding (pinning the name) or mid-acquire, \
       and fresh sessions rejoin every round to replace them"
  | Hot_shard ->
      "80% of arrivals prefer shard 0 under high acquire/release churn, \
       exercising overflow spill to the neighbour shards"

let all_regimes = [ Waves; Crash_rejoin; Hot_shard ]

let regime_ids () = List.map regime_id all_regimes

let regime_salt = function
  | Waves -> 0x5157
  | Crash_rejoin -> 0xC4A5
  | Hot_shard -> 0x0407

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type backend = Sim | Native of { domains : int }

let backend_name = function Sim -> "sim" | Native _ -> "native"

type config = {
  shards : int;
  cap : int;  (** per-shard session capacity and entry slots *)
  sessions : int;  (** service-wide target of concurrent sessions *)
  rounds : int;
  entry : Core.entry_algo;
  regimes : regime list;
  seeds : int list;
  backend : backend;
  max_commits : int;  (** per-round liveness budget (sim) *)
  adversary : Dsl.expr option;
      (** sim-only within-shard commit scheduler (crash-free DSL term);
          [None] keeps the historical uniform interleave bit-for-bit *)
}

let default =
  {
    shards = 2;
    cap = 4;
    sessions = 6;
    rounds = 6;
    entry = Core.Efficient;
    regimes = all_regimes;
    seeds = [ 1; 2; 3 ];
    backend = Sim;
    max_commits = 200_000;
    adversary = None;
  }

let validate cfg =
  if cfg.shards <= 0 then Error "shards must be positive"
  else if cfg.cap <= 0 then Error "cap must be positive"
  else if cfg.sessions <= 0 then Error "sessions must be positive"
  else if cfg.rounds <= 0 then Error "rounds must be positive"
  else if cfg.regimes = [] then Error "at least one churn regime required"
  else if cfg.seeds = [] then Error "at least one seed required"
  else if cfg.max_commits <= 0 then Error "max-commits must be positive"
  else
    match (cfg.backend, cfg.adversary) with
    | Native { domains }, _ when domains <= 0 -> Error "domains must be positive"
    | Native _, Some _ ->
        Error "--adversary schedules simulator commits (sim backend only)"
    | _, Some expr when not (Dsl.crash_free expr) ->
        Error
          "adversary term must be crash-free for service scheduling (crash \
           decisions would bypass the session ledger)"
    | _ -> Ok ()

(* ------------------------------------------------------------------ *)
(* Sessions and operations                                             *)
(* ------------------------------------------------------------------ *)

type lease = { l_shard : int; l_local : int; l_name : int; l_gen : int }

type crashed = {
  cx_pinned : lease option;  (* crashed while holding: the pinned lease *)
  cx_participant : bool;  (* component may be published (counts in k̂) *)
}

type phase =
  | Joining
  | Idle
  | Acquiring
  | Holding of lease
  | Releasing of lease * bool  (* depart after the release completes *)
  | Departed
  | Crashed of crashed

type session = {
  s_client : int;
  s_shard : int;
  s_epoch : int;  (* shard incarnation the session joined *)
  mutable s_slot : int option;
  mutable s_phase : phase;
}

type op =
  | Join of {
      j_s : session;
      mutable j_slot : int option;
      mutable j_t0 : int;
      mutable j_t1 : int;
    }
  | Acq of {
      a_s : session;
      a_crash_after : int option;  (* sim: crash this many commits in *)
      mutable a_kmax : int;
      mutable a_lease : (int * int) option;
      mutable a_crashed : bool;
      mutable a_t0 : int;
      mutable a_t1 : int;
    }
  | Rel of {
      r_s : session;
      r_lease : lease;
      r_depart : bool;
      mutable r_t0 : int;
      mutable r_t1 : int;
    }

let op_session = function
  | Join j -> j.j_s
  | Acq a -> a.a_s
  | Rel r -> r.r_s

exception Round_stalled of string

(* ------------------------------------------------------------------ *)
(* Cell state                                                          *)
(* ------------------------------------------------------------------ *)

type shard_summary = {
  ss_shard : int;
  ss_epochs : int;  (* incarnations = router epoch + 1 *)
  ss_admitted : int;  (* admissions in the current incarnation *)
  ss_held_max : int;
  ss_occupancy_max : int;
}

type cell = {
  c_regime : string;
  c_seed : int;
  c_rounds : int;  (* rounds completed *)
  c_joins : int;
  c_acquires : int;
  c_releases : int;
  c_crashes : int;
  c_spills : int;
  c_rejects : int;
  c_recycles : int;
  c_commits : int;  (* sim: committed register operations; native: 0 *)
  c_wall_ns : int;  (* native: summed engine wall; sim: 0 *)
  c_max_name : int;  (* largest global name issued; -1 if none *)
  c_shards : shard_summary list;
  c_violations : string list;
  c_metrics : Metrics.t;
}

type ctx = {
  cfg : config;
  regime : regime;
  seed : int;
  rng : Rng.t;
  router : Router.t;
  stride : int;
  mutable sessions : session list;  (* creation order *)
  mutable next_client : int;
  issued : (int * int * int, unit) Hashtbl.t;
  mutable violations : string list;  (* newest first *)
  mutable joins : int;
  mutable acquires : int;
  mutable releases : int;
  mutable crashes : int;
  mutable max_name : int;
  held_max : int array;
  occupancy_max : int array;
  reg : Metrics.t;
  acq_hist : Metrics.histogram;
  rel_hist : Metrics.histogram;
}

let violate ctx fmt =
  Printf.ksprintf (fun m -> ctx.violations <- m :: ctx.violations) fmt

let fresh_session ctx shard =
  let client = (7919 * ctx.next_client) + 1_299_721 in
  ctx.next_client <- ctx.next_client + 1;
  let s =
    {
      s_client = client;
      s_shard = shard;
      s_epoch = Router.epoch ctx.router shard;
      s_slot = None;
      s_phase = Joining;
    }
  in
  ctx.sessions <- ctx.sessions @ [ s ];
  s

(* ------------------------------------------------------------------ *)
(* Planner (backend-independent)                                       *)
(* ------------------------------------------------------------------ *)

(* One round of regime behaviour: decide departures/crashes/releases for
   existing sessions, admit arrivals through the router, and return the
   operation batch.  [recycle] rebuilds a worn-out quiescent shard's
   core before any admission.  [midop_ok] is true on the simulator,
   where a crash can be injected mid-acquire; natively the same draw
   crashes the session before it starts (a crash is just a process that
   never takes another step, so "before the op" is a legal instant). *)
let plan ctx ~round ~midop_ok ~recycle =
  let rng = ctx.rng in
  let pct p = Rng.int rng 100 < p in
  let ops = ref [] in
  let add op = ops := op :: !ops in
  let rel s l depart =
    s.s_phase <- Releasing (l, depart);
    add (Rel { r_s = s; r_lease = l; r_depart = depart; r_t0 = 0; r_t1 = 0 })
  in
  let acq ?crash_after s =
    s.s_phase <- Acquiring;
    add
      (Acq
         {
           a_s = s;
           a_crash_after = crash_after;
           a_kmax = 0;
           a_lease = None;
           a_crashed = false;
           a_t0 = 0;
           a_t1 = 0;
         })
  in
  let crash_now s ~pinned ~participant =
    s.s_phase <- Crashed { cx_pinned = pinned; cx_participant = participant };
    Router.crash ctx.router s.s_shard;
    ctx.crashes <- ctx.crashes + 1
  in
  for i = 0 to Router.shards ctx.router - 1 do
    if Router.needs_recycle ctx.router i then begin
      recycle i;
      Router.recycled ctx.router i
    end
  done;
  List.iter
    (fun s ->
      match s.s_phase with
      | Holding l -> (
          match ctx.regime with
          | Waves -> if round mod 2 = 0 && pct 60 then rel s l true
          | Crash_rejoin ->
              let d = Rng.int rng 100 in
              if d < 15 then crash_now s ~pinned:(Some l) ~participant:true
              else if d < 45 then rel s l false
          | Hot_shard -> if pct 50 then rel s l false)
      | Idle -> (
          match ctx.regime with
          | Waves ->
              if round mod 2 = 0 && pct 40 then begin
                s.s_phase <- Departed;
                Router.depart ctx.router s.s_shard
              end
              else acq s
          | Crash_rejoin ->
              if Rng.int rng 100 < 15 then
                if midop_ok then acq ~crash_after:(1 + Rng.int rng 25) s
                else crash_now s ~pinned:None ~participant:false
              else acq s
          | Hot_shard -> acq s)
      | Joining | Acquiring | Releasing _ | Departed | Crashed _ -> ())
    ctx.sessions;
  let live =
    List.length
      (List.filter
         (fun s ->
           match s.s_phase with
           | Joining | Idle | Acquiring | Holding _ | Releasing _ -> true
           | Departed | Crashed _ -> false)
         ctx.sessions)
  in
  let arrivals =
    match ctx.regime with
    | Waves -> if round mod 2 = 1 then max 0 (ctx.cfg.sessions - live) else 0
    | Crash_rejoin | Hot_shard -> max 0 (ctx.cfg.sessions - live)
  in
  for _ = 1 to arrivals do
    let prefer =
      match ctx.regime with
      | Hot_shard -> if pct 80 then Some 0 else None
      | Waves | Crash_rejoin -> None
    in
    match Router.route ?prefer ctx.router with
    | None -> () (* reject counted by the router *)
    | Some sh ->
        Router.admit ctx.router sh;
        let s = fresh_session ctx sh in
        add (Join { j_s = s; j_slot = None; j_t0 = 0; j_t1 = 0 })
  done;
  let ops = List.rev !ops in
  (* k̂ upper bound per acquire: sessions on the shard whose component
     may be published while this round runs.  All of the round's
     operations are spawned before any commits, so the set only shrinks
     during the round — counting it at spawn time bounds the point
     contention of every acquire in the batch. *)
  let active = Array.make ctx.cfg.shards 0 in
  List.iter
    (fun s ->
      match s.s_phase with
      | Acquiring | Holding _ | Releasing _ ->
          active.(s.s_shard) <- active.(s.s_shard) + 1
      | Crashed { cx_participant = true; _ } ->
          active.(s.s_shard) <- active.(s.s_shard) + 1
      | Joining | Idle | Departed | Crashed _ -> ())
    ctx.sessions;
  List.iter
    (function Acq a -> a.a_kmax <- active.(a.a_s.s_shard) | Join _ | Rel _ -> ())
    ops;
  ops

(* ------------------------------------------------------------------ *)
(* Harvest: apply results, check claims (backend-independent)          *)
(* ------------------------------------------------------------------ *)

let harvest ctx ~round ~holder_view ops =
  List.iter
    (fun op ->
      match op with
      | Join j -> (
          ctx.joins <- ctx.joins + 1;
          match j.j_slot with
          | Some sl ->
              j.j_s.s_slot <- Some sl;
              j.j_s.s_phase <- Idle
          | None ->
              (* defensive: router admission makes entry overflow
                 unreachable, but a buggy core must not wedge the cell *)
              violate ctx "entry-overflow: round %d: client %d rejected by \
                           shard %d entry renamer despite admission" round
                j.j_s.s_client j.j_s.s_shard;
              j.j_s.s_phase <- Departed;
              Router.depart ctx.router j.j_s.s_shard)
      | Acq a ->
          if a.a_crashed then begin
            a.a_s.s_phase <- Crashed { cx_pinned = None; cx_participant = true };
            Router.crash ctx.router a.a_s.s_shard;
            ctx.crashes <- ctx.crashes + 1
          end
          else begin
            match a.a_lease with
            | None ->
                violate ctx
                  "wait-freedom: round %d: client %d acquire returned without \
                   a lease" round a.a_s.s_client
            | Some (local, gen) ->
                let sh = a.a_s.s_shard in
                let lease =
                  {
                    l_shard = sh;
                    l_local = local;
                    l_name = (sh * ctx.stride) + local;
                    l_gen = gen;
                  }
                in
                a.a_s.s_phase <- Holding lease;
                ctx.acquires <- ctx.acquires + 1;
                ctx.max_name <- max ctx.max_name lease.l_name;
                Metrics.observe ctx.acq_hist (max 0 (a.a_t1 - a.a_t0));
                if Hashtbl.mem ctx.issued (sh, local, gen) then
                  violate ctx
                    "generation-reuse: round %d: shard %d name %d generation \
                     %d issued twice" round sh local gen
                else Hashtbl.add ctx.issued (sh, local, gen) ();
                if local > (2 * a.a_kmax) - 2 then
                  violate ctx
                    "adaptive-bound: round %d: shard %d local name %d exceeds \
                     2k̂−2 for point contention k̂=%d" round sh local a.a_kmax
          end
      | Rel r ->
          ctx.releases <- ctx.releases + 1;
          Metrics.observe ctx.rel_hist (max 0 (r.r_t1 - r.r_t0));
          if r.r_depart then begin
            r.r_s.s_phase <- Departed;
            Router.depart ctx.router r.r_s.s_shard
          end
          else r.r_s.s_phase <- Idle)
    ops;
  (* quiescence checks per shard: published components match the ledger.
     Only sessions of the shard's *current* incarnation are inspected —
     a recycled core reuses the slot space, so a departed session from a
     previous epoch says nothing about today's holder view (recycle
     requires quiescence, so nothing older can still be live). *)
  for i = 0 to ctx.cfg.shards - 1 do
    let view = holder_view i in
    List.iter
      (fun s ->
        if s.s_shard = i && s.s_epoch = Router.epoch ctx.router i then
          match (s.s_phase, s.s_slot) with
          | Holding l, Some sl ->
              if view.(sl) <> Some l.l_local then
                violate ctx
                  "hold-not-published: round %d: shard %d slot %d holds name \
                   %d but publishes %s" round i sl l.l_local
                  (match view.(sl) with
                  | Some x -> string_of_int x
                  | None -> "nothing")
          | (Idle | Departed), Some sl ->
              if view.(sl) <> None then
                violate ctx
                  "leak: round %d: shard %d slot %d still publishes name %d \
                   after release" round i sl
                  (Option.value (view.(sl)) ~default:(-1))
          | Crashed { cx_pinned = Some l; _ }, Some sl ->
              if view.(sl) <> Some l.l_local then
                violate ctx
                  "crash-pin: round %d: shard %d pinned name %d vanished from \
                   slot %d" round i l.l_local sl
          | _ -> ())
      ctx.sessions
  done;
  (* exclusive holds among live leases *)
  let holds = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match s.s_phase with
      | Holding l -> (
          match Hashtbl.find_opt holds (l.l_shard, l.l_local) with
          | Some other ->
              violate ctx
                "exclusive-holds: round %d: shard %d name %d held by clients \
                 %d and %d concurrently" round l.l_shard l.l_local other
                s.s_client
          | None -> Hashtbl.add holds (l.l_shard, l.l_local) s.s_client)
      | _ -> ())
    ctx.sessions;
  (* occupancy gauges *)
  for i = 0 to ctx.cfg.shards - 1 do
    ctx.occupancy_max.(i) <-
      max ctx.occupancy_max.(i) (Router.occupancy ctx.router i);
    let held =
      List.length
        (List.filter
           (fun s ->
             s.s_shard = i
             && match s.s_phase with Holding _ -> true | _ -> false)
           ctx.sessions)
    in
    ctx.held_max.(i) <- max ctx.held_max.(i) held
  done

(* ------------------------------------------------------------------ *)
(* Simulator execution                                                 *)
(* ------------------------------------------------------------------ *)

type sim_shard = {
  sim_mem : Memory.t;
  sim_rt : Runtime.t;
  mutable sim_core : Core.t;
  sim_trace : Trace.t option;
}

type crash_plan = {
  cp_due : int;  (* round-commit count at which to fire *)
  cp_rt : Runtime.t;
  cp_proc : Runtime.proc;
  cp_op : op;
  mutable cp_fired : bool;
}

let exec_sim ctx shards clock ~round ~drivers ops =
  let crashes = ref [] in
  List.iter
    (fun op ->
      let s = op_session op in
      let sh = shards.(s.s_shard) in
      let core = sh.sim_core in
      let spawn name body = Runtime.spawn sh.sim_rt ~name body in
      match op with
      | Join j ->
          j.j_t0 <- !clock;
          ignore
            (spawn
               (Printf.sprintf "c%d.join" s.s_client)
               (fun () ->
                 j.j_slot <- Core.join core ~client:s.s_client;
                 j.j_t1 <- !clock))
      | Acq a ->
          let slot = Option.get s.s_slot in
          a.a_t0 <- !clock;
          let proc =
            spawn
              (Printf.sprintf "c%d.acquire" s.s_client)
              (fun () ->
                a.a_lease <- Some (Core.acquire core ~slot);
                a.a_t1 <- !clock)
          in
          Option.iter
            (fun d ->
              crashes :=
                {
                  cp_due = d;
                  cp_rt = sh.sim_rt;
                  cp_proc = proc;
                  cp_op = op;
                  cp_fired = false;
                }
                :: !crashes)
            a.a_crash_after
      | Rel r ->
          let slot = Option.get s.s_slot in
          r.r_t0 <- !clock;
          ignore
            (spawn
               (Printf.sprintf "c%d.release" s.s_client)
               (fun () ->
                 Core.release core ~slot ~name:r.r_lease.l_local;
                 r.r_t1 <- !clock)))
    ops;
  (* interleave across all shard runtimes, one commit at a time *)
  let commits_round = ref 0 in
  let total_runnable () =
    Array.fold_left (fun acc sh -> acc + Runtime.num_runnable sh.sim_rt) 0 shards
  in
  let fire_crashes () =
    List.iter
      (fun cp ->
        if
          (not cp.cp_fired)
          && !commits_round >= cp.cp_due
          && Runtime.status cp.cp_proc = Runtime.Runnable
        then begin
          Runtime.crash cp.cp_rt cp.cp_proc;
          (match cp.cp_op with Acq a -> a.a_crashed <- true | _ -> ());
          cp.cp_fired <- true
        end)
      !crashes
  in
  let rec loop () =
    fire_crashes ();
    let total = total_runnable () in
    if total > 0 then begin
      if !commits_round >= ctx.cfg.max_commits then
        raise
          (Round_stalled
             (Printf.sprintf
                "liveness: round %d: %d-commit budget exhausted with %d \
                 operations still runnable" round ctx.cfg.max_commits total));
      let pick = ref (Rng.int ctx.rng total) in
      let si = ref 0 in
      while !pick >= Runtime.num_runnable shards.(!si).sim_rt do
        pick := !pick - Runtime.num_runnable shards.(!si).sim_rt;
        incr si
      done;
      let rt = shards.(!si).sim_rt in
      let p =
        match drivers with
        | None -> Runtime.nth_runnable rt !pick
        | Some ds -> (
            (* the uniform draw still picks the shard; the compiled
               adversary chooses within it (crash terms are rejected by
               validate, and a relinquishing term falls back to the
               draw's own offset) *)
            match ds.(!si) rt with
            | Some (Dsl.Commit p) -> p
            | Some (Dsl.Crash _) | None -> Runtime.nth_runnable rt !pick)
      in
      Runtime.commit rt p;
      incr clock;
      incr commits_round;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Native execution                                                    *)
(* ------------------------------------------------------------------ *)

type nat_shard = {
  nat_mem : Exsel_native.Backend.memory;
  mutable nat_core : NCore.t;
}

let ns_to_int ns =
  if Int64.compare ns 0L < 0 then 0
  else if Int64.compare ns (Int64.of_int max_int) > 0 then max_int
  else Int64.to_int ns

let exec_native shards ~domains wall_acc ops =
  if ops <> [] then begin
    let engine = Engine.create () in
    List.iter
      (fun op ->
        let s = op_session op in
        let core = shards.(s.s_shard).nat_core in
        match op with
        | Join j ->
            Engine.spawn engine
              ~name:(Printf.sprintf "c%d.join" s.s_client)
              (fun () ->
                let t0 = Monotonic_clock.now () in
                j.j_slot <- NCore.join core ~client:s.s_client;
                j.j_t1 <- ns_to_int (Int64.sub (Monotonic_clock.now ()) t0))
        | Acq a ->
            let slot = Option.get s.s_slot in
            Engine.spawn engine
              ~name:(Printf.sprintf "c%d.acquire" s.s_client)
              (fun () ->
                let t0 = Monotonic_clock.now () in
                a.a_lease <- Some (NCore.acquire core ~slot);
                a.a_t1 <- ns_to_int (Int64.sub (Monotonic_clock.now ()) t0))
        | Rel r ->
            let slot = Option.get s.s_slot in
            Engine.spawn engine
              ~name:(Printf.sprintf "c%d.release" s.s_client)
              (fun () ->
                let t0 = Monotonic_clock.now () in
                NCore.release core ~slot ~name:r.r_lease.l_local;
                r.r_t1 <- ns_to_int (Int64.sub (Monotonic_clock.now ()) t0)))
      ops;
    Engine.run engine ~domains;
    match Engine.telemetry engine with
    | Some tl -> wall_acc := !wall_acc + ns_to_int (Engine.wall_ns tl)
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Cells                                                               *)
(* ------------------------------------------------------------------ *)

type event =
  | Cell_started of { index : int; regime : string; seed : int }
  | Cell_finished of { index : int; cell : cell }

let core_rng ~seed ~shard ~epoch =
  Rng.create ~seed:((seed * 97) + shard + (1000 * epoch))

let make_ctx cfg regime ~seed =
  let reg = Metrics.create () in
  let labels =
    [ ("regime", regime_id regime); ("backend", backend_name cfg.backend) ]
  in
  let unit_suffix =
    match cfg.backend with Sim -> "commits" | Native _ -> "ns"
  in
  {
    cfg;
    regime;
    seed;
    rng = Rng.create ~seed:((seed * 1_000_003) lxor regime_salt regime);
    router = Router.create ~shards:cfg.shards ~cap:cfg.cap;
    stride = Core.width_for cfg.entry ~cap:cfg.cap;
    sessions = [];
    next_client = 0;
    issued = Hashtbl.create 64;
    violations = [];
    joins = 0;
    acquires = 0;
    releases = 0;
    crashes = 0;
    max_name = -1;
    held_max = Array.make cfg.shards 0;
    occupancy_max = Array.make cfg.shards 0;
    reg;
    acq_hist =
      Metrics.histogram reg ("exsel_acquire_latency_" ^ unit_suffix) ~labels;
    rel_hist =
      Metrics.histogram reg ("exsel_release_latency_" ^ unit_suffix) ~labels;
  }

let finish_cell ctx ~rounds_done ~commits ~wall_ns =
  let labels =
    [
      ("regime", regime_id ctx.regime);
      ("backend", backend_name ctx.cfg.backend);
    ]
  in
  let c name v = Metrics.inc (Metrics.counter ctx.reg name ~labels) v in
  c "exsel_service_joins" ctx.joins;
  c "exsel_service_acquires" ctx.acquires;
  c "exsel_service_releases" ctx.releases;
  c "exsel_service_crashes" ctx.crashes;
  c "exsel_service_spills" (Router.spills ctx.router);
  c "exsel_service_rejects" (Router.rejects ctx.router);
  c "exsel_service_recycles" (Router.recycles ctx.router);
  c "exsel_service_violations" (List.length ctx.violations);
  for i = 0 to ctx.cfg.shards - 1 do
    let labels = ("shard", string_of_int i) :: labels in
    Metrics.max_gauge
      (Metrics.gauge ctx.reg "exsel_shard_occupancy" ~labels)
      ctx.occupancy_max.(i);
    Metrics.max_gauge
      (Metrics.gauge ctx.reg "exsel_shard_held" ~labels)
      ctx.held_max.(i)
  done;
  {
    c_regime = regime_id ctx.regime;
    c_seed = ctx.seed;
    c_rounds = rounds_done;
    c_joins = ctx.joins;
    c_acquires = ctx.acquires;
    c_releases = ctx.releases;
    c_crashes = ctx.crashes;
    c_spills = Router.spills ctx.router;
    c_rejects = Router.rejects ctx.router;
    c_recycles = Router.recycles ctx.router;
    c_commits = commits;
    c_wall_ns = wall_ns;
    c_max_name = ctx.max_name;
    c_shards =
      List.init ctx.cfg.shards (fun i ->
          {
            ss_shard = i;
            ss_epochs = Router.epoch ctx.router i + 1;
            ss_admitted = Router.admitted ctx.router i;
            ss_held_max = ctx.held_max.(i);
            ss_occupancy_max = ctx.occupancy_max.(i);
          });
    c_violations = List.rev ctx.violations;
    c_metrics = ctx.reg;
  }

let run_cell_sim cfg regime ~seed ~capture_traces =
  let ctx = make_ctx cfg regime ~seed in
  let shards =
    Array.init cfg.shards (fun i ->
        let mem = Memory.create () in
        let rt = Runtime.create mem in
        let core =
          Core.create ~algo:cfg.entry
            ~rng:(core_rng ~seed ~shard:i ~epoch:0)
            mem
            ~name:(Printf.sprintf "shard%d" i)
            ~cap:cfg.cap
        in
        let trace = if capture_traces then Some (Trace.attach rt) else None in
        { sim_mem = mem; sim_rt = rt; sim_core = core; sim_trace = trace })
  in
  let recycle i =
    let sh = shards.(i) in
    let epoch = Router.epoch ctx.router i + 1 in
    sh.sim_core <-
      Core.create ~algo:cfg.entry
        ~gen0:(Core.generations sh.sim_core)
        ~rng:(core_rng ~seed ~shard:i ~epoch)
        sh.sim_mem
        ~name:(Printf.sprintf "shard%d.e%d" i epoch)
        ~cap:cfg.cap
  in
  let drivers =
    Option.map
      (fun expr ->
        Array.init cfg.shards (fun shard ->
            Dsl.compile expr
              ~seed:
                (((seed * 1_000_003) lxor regime_salt regime) + (7919 * shard))
              ~k:cfg.cap))
      cfg.adversary
  in
  let clock = ref 0 in
  let rounds_done = ref 0 in
  (try
     for round = 1 to cfg.rounds do
       let ops = plan ctx ~round ~midop_ok:true ~recycle in
       exec_sim ctx shards clock ~round ~drivers ops;
       harvest ctx ~round
         ~holder_view:(fun i -> Core.holder_view shards.(i).sim_core)
         ops;
       incr rounds_done
     done
   with Round_stalled msg -> ctx.violations <- msg :: ctx.violations);
  let cell = finish_cell ctx ~rounds_done:!rounds_done ~commits:!clock ~wall_ns:0 in
  let traces =
    if capture_traces then
      Array.to_list
        (Array.mapi
           (fun i sh ->
             ( i,
               Runtime.commits sh.sim_rt,
               match sh.sim_trace with Some t -> Trace.events t | None -> [] ))
           shards)
    else []
  in
  (cell, traces)

let run_cell_native cfg regime ~seed ~domains =
  let ctx = make_ctx cfg regime ~seed in
  let shards =
    Array.init cfg.shards (fun i ->
        let mem = Exsel_native.Backend.create () in
        let core =
          NCore.create ~algo:cfg.entry
            ~rng:(core_rng ~seed ~shard:i ~epoch:0)
            mem
            ~name:(Printf.sprintf "shard%d" i)
            ~cap:cfg.cap
        in
        { nat_mem = mem; nat_core = core })
  in
  let recycle i =
    let sh = shards.(i) in
    let epoch = Router.epoch ctx.router i + 1 in
    sh.nat_core <-
      NCore.create ~algo:cfg.entry
        ~gen0:(NCore.generations sh.nat_core)
        ~rng:(core_rng ~seed ~shard:i ~epoch)
        sh.nat_mem
        ~name:(Printf.sprintf "shard%d.e%d" i epoch)
        ~cap:cfg.cap
  in
  let wall = ref 0 in
  let rounds_done = ref 0 in
  for round = 1 to cfg.rounds do
    let ops = plan ctx ~round ~midop_ok:false ~recycle in
    exec_native shards ~domains wall ops;
    harvest ctx ~round
      ~holder_view:(fun i -> NCore.holder_view shards.(i).nat_core)
      ops;
    incr rounds_done
  done;
  finish_cell ctx ~rounds_done:!rounds_done ~commits:0 ~wall_ns:!wall

let run_cell cfg ~index regime ~seed ~on_event =
  on_event (Cell_started { index; regime = regime_id regime; seed });
  let cell =
    match cfg.backend with
    | Sim -> fst (run_cell_sim cfg regime ~seed ~capture_traces:false)
    | Native { domains } -> run_cell_native cfg regime ~seed ~domains
  in
  on_event (Cell_finished { index; cell });
  cell

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

type report = {
  r_config : config;
  r_cells : cell list;
  r_violations : int;
  r_metrics : Metrics.t;
}

let run ?(jobs = 1) ?(on_event = fun (_ : event) -> ()) cfg =
  (match validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Churn.run: " ^ msg));
  let matrix =
    List.concat_map
      (fun regime -> List.map (fun seed -> (regime, seed)) cfg.seeds)
      cfg.regimes
  in
  let matrix = List.mapi (fun index (r, s) -> (index, r, s)) matrix in
  let cells =
    if jobs <= 1 then
      List.map
        (fun (index, regime, seed) -> run_cell cfg ~index regime ~seed ~on_event)
        matrix
    else
      Exsel_sim.Pool.map ~jobs
        (fun (index, regime, seed) -> run_cell cfg ~index regime ~seed ~on_event)
        matrix
  in
  let violations =
    List.fold_left (fun acc c -> acc + List.length c.c_violations) 0 cells
  in
  let merged = Metrics.create () in
  Metrics.inc (Metrics.counter merged "exsel_service_cells") (List.length cells);
  List.iter (fun c -> Metrics.merge ~into:merged c.c_metrics) cells;
  { r_config = cfg; r_cells = cells; r_violations = violations; r_metrics = merged }

let shard_traces cfg regime ~seed =
  match cfg.backend with
  | Native _ ->
      invalid_arg "Churn.shard_traces: traces are commit-clock (sim only)"
  | Sim -> snd (run_cell_sim cfg regime ~seed ~capture_traces:true)

(* ------------------------------------------------------------------ *)
(* exsel-service/1                                                     *)
(* ------------------------------------------------------------------ *)

let shard_summary_json s =
  Json.Obj
    [
      ("shard", Json.Int s.ss_shard);
      ("epochs", Json.Int s.ss_epochs);
      ("admitted", Json.Int s.ss_admitted);
      ("held_max", Json.Int s.ss_held_max);
      ("occupancy_max", Json.Int s.ss_occupancy_max);
    ]

let cell_json c =
  Json.Obj
    [
      ("regime", Json.String c.c_regime);
      ("seed", Json.Int c.c_seed);
      ("ok", Json.Bool (c.c_violations = []));
      ("rounds", Json.Int c.c_rounds);
      ("joins", Json.Int c.c_joins);
      ("acquires", Json.Int c.c_acquires);
      ("releases", Json.Int c.c_releases);
      ("crashes", Json.Int c.c_crashes);
      ("spills", Json.Int c.c_spills);
      ("rejects", Json.Int c.c_rejects);
      ("recycles", Json.Int c.c_recycles);
      ("commits", Json.Int c.c_commits);
      ("wall_ns", Json.Int c.c_wall_ns);
      ("max_name", Json.Int c.c_max_name);
      ("shards", Json.List (List.map shard_summary_json c.c_shards));
      ( "violations",
        Json.List (List.map (fun v -> Json.String v) c.c_violations) );
    ]

let to_json r =
  let cfg = r.r_config in
  Json.Obj
    ([
       ("schema", Json.String "exsel-service/1");
       ("backend", Json.String (backend_name cfg.backend));
     ]
    @ (match cfg.backend with
      | Native { domains } -> [ ("domains", Json.Int domains) ]
      | Sim -> [])
    @ [
        ("shards", Json.Int cfg.shards);
        ("cap", Json.Int cfg.cap);
        ("sessions", Json.Int cfg.sessions);
        ("rounds", Json.Int cfg.rounds);
        ("entry", Json.String (Core.entry_algo_to_string cfg.entry));
        ("stride", Json.Int (Core.width_for cfg.entry ~cap:cfg.cap));
        ("seeds", Json.List (List.map (fun s -> Json.Int s) cfg.seeds));
      ]
    @ (match cfg.adversary with
      | Some expr -> [ ("adversary", Json.String (Dsl.to_string expr)) ]
      | None -> [])
    @ [
        ("cells", Json.List (List.map cell_json r.r_cells));
        ("violations", Json.Int r.r_violations);
        ("metrics", Metrics.to_json r.r_metrics);
      ])

(* ------------------------------------------------------------------ *)
(* exsel-events/1                                                      *)
(* ------------------------------------------------------------------ *)

let start_event cfg =
  Json.Obj
    ([
      ("schema", Json.String "exsel-events/1");
      ("event", Json.String "start");
      ("kind", Json.String "service");
      ("backend", Json.String (backend_name cfg.backend));
      ( "regimes",
        Json.List (List.map (fun r -> Json.String (regime_id r)) cfg.regimes) );
      ("seeds", Json.List (List.map (fun s -> Json.Int s) cfg.seeds));
      ("shards", Json.Int cfg.shards);
      ("cap", Json.Int cfg.cap);
      ("sessions", Json.Int cfg.sessions);
      ("rounds", Json.Int cfg.rounds);
    ]
    @ (match cfg.adversary with
      | Some expr -> [ ("adversary", Json.String (Dsl.to_string expr)) ]
      | None -> [])
    @ [ ("cells", Json.Int (List.length cfg.regimes * List.length cfg.seeds)) ])

let event_json = function
  | Cell_started { index; regime; seed } ->
      Json.Obj
        [
          ("event", Json.String "cell_started");
          ("cell", Json.Int index);
          ("regime", Json.String regime);
          ("seed", Json.Int seed);
        ]
  | Cell_finished { index; cell = c } ->
      Json.Obj
        [
          ("event", Json.String "cell_finished");
          ("cell", Json.Int index);
          ("regime", Json.String c.c_regime);
          ("seed", Json.Int c.c_seed);
          ("ok", Json.Bool (c.c_violations = []));
          ("acquires", Json.Int c.c_acquires);
          ("releases", Json.Int c.c_releases);
          ("crashes", Json.Int c.c_crashes);
          ("spills", Json.Int c.c_spills);
          ("max_name", Json.Int c.c_max_name);
          ("quantiles", Metrics.quantiles_json c.c_metrics);
        ]

let done_event r =
  Json.Obj
    [
      ("event", Json.String "done");
      ("cells", Json.Int (List.length r.r_cells));
      ("violations", Json.Int r.r_violations);
      ("metrics", Metrics.summary_json r.r_metrics);
    ]

let pp_summary ppf r =
  let cfg = r.r_config in
  Format.fprintf ppf
    "service: backend=%s shards=%d cap=%d sessions=%d rounds=%d entry=%s%s@."
    (backend_name cfg.backend) cfg.shards cfg.cap cfg.sessions cfg.rounds
    (Core.entry_algo_to_string cfg.entry)
    (match cfg.adversary with
    | Some e -> " adversary=" ^ Dsl.to_string e
    | None -> "");
  List.iter
    (fun c ->
      if c.c_violations = [] then
        Format.fprintf ppf
          "  ok    %-13s seed=%-3d acquires=%-4d releases=%-4d crashes=%-3d \
           spills=%-3d recycles=%-2d max-name=%d@."
          c.c_regime c.c_seed c.c_acquires c.c_releases c.c_crashes c.c_spills
          c.c_recycles c.c_max_name
      else begin
        Format.fprintf ppf "  FAIL  %-13s seed=%-3d (%d violations)@."
          c.c_regime c.c_seed
          (List.length c.c_violations);
        List.iter (fun v -> Format.fprintf ppf "        %s@." v) c.c_violations
      end)
    r.r_cells;
  Format.fprintf ppf "  %d violation%s in %d cells@." r.r_violations
    (if r.r_violations = 1 then "" else "s")
    (List.length r.r_cells)
