(** Churn campaigns for the sharded long-lived renaming service.

    A campaign is a (regime × seed) matrix of independent {e cells},
    each driving a fresh service instance — router, per-shard cores,
    per-shard runtimes (sim) or a per-round engine (native) — through
    [rounds] rounds of seeded arrivals, departures, crashes and
    acquire/release traffic, with the long-lived claims checked at every
    round's quiescence:

    - {e exclusive holds across generations}: live leases never collide
      on a (shard, name), and no (shard, name, generation) triple is
      issued twice — across releases, recycles and shard incarnations;
    - {e adaptive bound in point contention}: every acquired local name
      is below [2·k̂ − 1] for a harness-computed upper bound [k̂] on the
      acquire's point contention;
    - {e no name leaked after release}: a released slot publishes
      nothing at quiescence, and a crash-pinned name is still published.

    Cells own private {!Exsel_obs.Metrics} registries merged in matrix
    order, and events carry no wall-clock data on the simulator, so
    [run ~jobs] output is byte-identical to [-j 1] (EXPERIMENTS.md,
    "A service under churn"). *)

(** {2 Regimes} *)

type regime = Waves | Crash_rejoin | Hot_shard

val regime_id : regime -> string
(** ["waves"], ["crash-rejoin"], ["hot-shard"]. *)

val regime_of_string : string -> regime option
val regime_describe : regime -> string

val all_regimes : regime list
val regime_ids : unit -> string list

(** {2 Configuration} *)

type backend = Sim | Native of { domains : int }

val backend_name : backend -> string

type config = {
  shards : int;
  cap : int;  (** per-shard session capacity and entry slots *)
  sessions : int;  (** service-wide target of concurrent sessions *)
  rounds : int;
  entry : Core.entry_algo;
  regimes : regime list;
  seeds : int list;
  backend : backend;
  max_commits : int;  (** per-round liveness budget (sim) *)
  adversary : Exsel_adversary.Dsl.expr option;
      (** sim-only within-shard commit scheduler: each commit still picks
          a shard by the historical uniform runnable-weighted draw, then
          the compiled DSL term chooses the process inside it.  Must be
          {!Exsel_adversary.Dsl.crash_free}.  [None] (the default) keeps
          the uniform interleave bit-for-bit. *)
}

val default : config

val validate : config -> (unit, string) result
(** Shape check for CLI-supplied configurations (positive sizes,
    non-empty regime/seed lists, positive [domains] for native, and —
    when an adversary term is named — a sim backend and a crash-free
    term). *)

(** {2 Results} *)

type shard_summary = {
  ss_shard : int;
  ss_epochs : int;  (** core incarnations (recycles + 1) *)
  ss_admitted : int;  (** admissions in the current incarnation *)
  ss_held_max : int;
  ss_occupancy_max : int;
}

type cell = {
  c_regime : string;
  c_seed : int;
  c_rounds : int;
  c_joins : int;
  c_acquires : int;
  c_releases : int;
  c_crashes : int;
  c_spills : int;
  c_rejects : int;
  c_recycles : int;
  c_commits : int;  (** sim: committed register operations; native: 0 *)
  c_wall_ns : int;  (** native: summed engine wall time; sim: 0 *)
  c_max_name : int;  (** largest global name issued; [-1] if none *)
  c_shards : shard_summary list;
  c_violations : string list;
  c_metrics : Exsel_obs.Metrics.t;
}

type report = {
  r_config : config;
  r_cells : cell list;  (** matrix order: regimes × seeds *)
  r_violations : int;
  r_metrics : Exsel_obs.Metrics.t;  (** cells merged in matrix order *)
}

type event =
  | Cell_started of { index : int; regime : string; seed : int }
  | Cell_finished of { index : int; cell : cell }

val run : ?jobs:int -> ?on_event:(event -> unit) -> config -> report
(** Run the campaign.  [jobs > 1] shards cells over
    {!Exsel_sim.Pool.map}; reports and metrics are byte-identical to a
    sequential run.  [on_event] may fire from worker domains.
    @raise Invalid_argument when {!validate} rejects the config. *)

val shard_traces :
  config -> regime -> seed:int -> (int * int * Exsel_sim.Trace.event list) list
(** Re-run one simulator cell with {!Exsel_sim.Trace} attached to every
    shard runtime; returns [(shard, commits, events)] per shard — feed
    the busiest shard's events to {!Exsel_obs.Trace_export.chrome}.
    @raise Invalid_argument on a native config (traces are
    commit-clock). *)

(** {2 Rendering} *)

val cell_json : cell -> Exsel_obs.Json.t

val to_json : report -> Exsel_obs.Json.t
(** The [exsel-service/1] document: config echo, per-cell results with
    per-shard occupancy summaries and violations, and the merged
    [exsel-metrics/1] registry under ["metrics"]. *)

val start_event : config -> Exsel_obs.Json.t
val event_json : event -> Exsel_obs.Json.t
val done_event : report -> Exsel_obs.Json.t

val pp_summary : Format.formatter -> report -> unit
