(** Open-loop traffic generator for the long-lived renaming service.

    Where {!Churn} is {e closed-loop} — each round tops sessions back up
    to a target, so offered load tracks completion — this module drives
    {e open-loop} traffic: a seeded arrival process decides how many
    acquire/release sessions arrive each round {e regardless} of how many
    are still in flight, so overload shows up as router rejections and
    tail latency instead of back-pressure.  Three arrival patterns ship:

    - [steady] — exactly [rate] arrivals per round;
    - [poisson] — Poisson-distributed arrivals of mean [rate] per round
      (realised as a binomial(4·rate, 1/4) thinning, drawn with integer
      RNG only so counts are machine-independent);
    - [bursty] — a burst of [rate·burst_every] arrivals every
      [burst_every] rounds, nothing in between (same long-run mean as
      [steady], maximally clumped).

    Each admitted session joins its shard, acquires a name the next
    round, holds it for a seeded number of rounds (mean [hold]), then
    releases and departs.  Latencies are measured per operation — in
    {e commit-clock} on the simulator (the shared commit counter across
    all shard runtimes) and {e wall-clock nanoseconds} on the native
    backend — into `exsel_workload_{join,acquire,release}_latency_*`
    histograms whose p50/p90/p99/p999 quantiles flow through
    {!Exsel_obs.Metrics} into the JSON report, OpenMetrics exposition
    and bench suite P9.

    All arrival/hold draws come from {!Exsel_sim.Rng.create_v2}
    (rejection-sampled, bias-free) streams; cells own private metrics
    registries merged in matrix order, so [run ~jobs] output is
    byte-identical to [-j 1].

    An optional {!Exsel_adversary.Dsl} term (crash-free) replaces the
    uniform within-shard scheduler on the simulator: each commit still
    picks a shard by a uniform runnable-weighted draw, then the
    compiled per-shard adversary chooses the process. *)

type pattern = Poisson | Bursty | Steady

val pattern_id : pattern -> string
val pattern_of_string : string -> pattern option
val all_patterns : pattern list
val pattern_ids : unit -> string list

type config = {
  shards : int;
  cap : int;  (** per-shard session capacity and entry slots *)
  entry : Core.entry_algo;
  rounds : int;
  rate : int;  (** mean arrivals per round *)
  burst_every : int;  (** bursty: rounds between bursts *)
  hold : int;  (** mean hold duration in rounds *)
  patterns : pattern list;
  seeds : int list;
  backend : Churn.backend;
  max_commits : int;  (** per-round liveness budget (sim) *)
  adversary : Exsel_adversary.Dsl.expr option;
      (** sim-only within-shard scheduler; must be {!Exsel_adversary.Dsl.crash_free} *)
}

val default : config

val validate : config -> (unit, string) result
(** Shape check for CLI-supplied configurations: positive sizes,
    non-empty pattern/seed lists, positive native [domains], and a
    crash-free adversary term (crash decisions would bypass the session
    ledger). *)

type cell = {
  w_pattern : string;
  w_seed : int;
  w_rounds : int;  (** rounds completed *)
  w_arrivals : int;  (** offered sessions (admitted + rejected) *)
  w_admitted : int;
  w_rejected : int;  (** arrivals dropped open-loop: no shard had room *)
  w_joins : int;
  w_acquires : int;
  w_releases : int;
  w_spills : int;
  w_recycles : int;
  w_commits : int;  (** sim: committed register operations; native: 0 *)
  w_wall_ns : int;  (** native: summed engine wall time; sim: 0 *)
  w_max_name : int;  (** largest global name issued; [-1] if none *)
  w_violations : string list;
  w_metrics : Exsel_obs.Metrics.t;
}

type report = {
  wr_config : config;
  wr_cells : cell list;  (** matrix order: patterns × seeds *)
  wr_violations : int;
  wr_metrics : Exsel_obs.Metrics.t;  (** cells merged in matrix order *)
}

type event =
  | Cell_started of { index : int; pattern : string; seed : int }
  | Cell_finished of { index : int; cell : cell }

val run : ?jobs:int -> ?on_event:(event -> unit) -> config -> report
(** Run the campaign; [jobs > 1] shards cells over {!Exsel_sim.Pool.map}
    with byte-identical reports and metrics.
    @raise Invalid_argument when {!validate} rejects the config. *)

val shard_traces :
  config -> pattern -> seed:int -> (int * int * Exsel_sim.Trace.event list) list
(** Re-run one simulator cell with {!Exsel_sim.Trace} attached to every
    shard runtime; returns [(shard, commits, events)] per shard — feed
    the busiest shard's events to {!Exsel_obs.Trace_export.chrome} for a
    Perfetto track of the open-loop execution.
    @raise Invalid_argument on a native config. *)

(** {2 Rendering} *)

val cell_json : cell -> Exsel_obs.Json.t

val to_json : report -> Exsel_obs.Json.t
(** The [exsel-workload/1] document: config echo, per-cell results, and
    the merged [exsel-metrics/1] registry under ["metrics"]. *)

val start_event : config -> Exsel_obs.Json.t
val event_json : event -> Exsel_obs.Json.t
val done_event : report -> Exsel_obs.Json.t

val pp_summary : Format.formatter -> report -> unit
