module Rng = Exsel_sim.Rng

type entry_algo = Efficient | Adaptive

let entry_algo_to_string = function
  | Efficient -> "efficient"
  | Adaptive -> "adaptive"

let entry_algo_of_string = function
  | "efficient" -> Some Efficient
  | "adaptive" -> Some Adaptive
  | _ -> None

let slots_for algo ~cap =
  match algo with
  | Efficient -> (2 * cap) - 1
  | Adaptive -> Exsel_renaming.Adaptive_rename.name_bound_for_contention ~k:cap

let width_for algo ~cap = (2 * slots_for algo ~cap) - 1

module type S = sig
  type memory
  type t

  val create :
    ?algo:entry_algo ->
    ?gen0:int array ->
    rng:Rng.t ->
    memory ->
    name:string ->
    cap:int ->
    t

  val cap : t -> int
  val slots : t -> int
  val width : t -> int
  val algo : t -> entry_algo
  val join : t -> client:int -> int option
  val acquire : t -> slot:int -> int * int
  val release : t -> slot:int -> name:int -> unit
  val holder_view : t -> int option array
  val generations : t -> int array
end

module Make (B : Exsel_backend.Intf.S) = struct
  module LL = Exsel_renaming.Long_lived.Make (B)
  module Eff = Exsel_renaming.Efficient_rename.Make (B)
  module Ada = Exsel_renaming.Adaptive_rename.Make (B)

  type memory = B.memory

  type entry = E of Eff.t | A of Ada.t

  type t = {
    cap : int;  (** admissions per incarnation (entry slots) *)
    slots : int;  (** dense slot space = long-lived components *)
    width : int;  (** local name-space width = [2·slots − 1] *)
    algo : entry_algo;
    entry : entry;
    hold : LL.t;
    gens : int B.reg array;  (** per local name, generation counter *)
  }

  let create ?(algo = Efficient) ?gen0 ~rng mem ~name ~cap =
    if cap <= 0 then invalid_arg "Core.create: cap must be positive";
    let slots = slots_for algo ~cap in
    let width = (2 * slots) - 1 in
    let entry =
      match algo with
      | Efficient -> E (Eff.create ~rng mem ~name:(name ^ ".entry") ~k:cap)
      | Adaptive -> A (Ada.create ~rng mem ~name:(name ^ ".entry") ~n:cap)
    in
    let hold = LL.create mem ~name:(name ^ ".hold") ~n:slots in
    let gen0 =
      match gen0 with
      | Some g ->
          if Array.length g <> width then
            invalid_arg "Core.create: gen0 width mismatch";
          g
      | None -> Array.make width 0
    in
    let gens =
      Array.init width (fun i ->
          B.alloc mem ~name:(Printf.sprintf "%s.gen[%d]" name i) gen0.(i))
    in
    { cap; slots; width; algo; entry; hold; gens }

  let cap t = t.cap
  let slots t = t.slots
  let width t = t.width
  let algo t = t.algo

  (* The one-shot entry renamer assigns the session a dense component
     slot in the long-lived snapshot core; slots are never recycled
     within an incarnation (the router recycles the whole core once it
     is quiescent and worn out).  The reserve-lane guard keeps a
     defensive [None] on any slot beyond the core (never taken in
     certified runs). *)
  let join t ~client =
    let slot =
      match t.entry with
      | E e -> Eff.rename e ~me:client
      | A a -> Some (Ada.rename a ~me:client)
    in
    match slot with Some s when s < t.slots -> Some s | _ -> None

  (* Generation-counter soundness (DESIGN.md §14): [gens.(x)] is read
     while the caller holds [x] exclusively, and written only by a
     releasing holder before it clears the hold — so increments are
     serialized in hold order and every (name, generation) lease is
     issued at most once. *)
  let acquire t ~slot =
    let name = LL.acquire t.hold ~me:slot in
    let gen = B.read t.gens.(name) in
    (name, gen)

  let release t ~slot ~name =
    B.write t.gens.(name) (B.read t.gens.(name) + 1);
    LL.release t.hold ~me:slot

  let holder_view t = LL.holder_view t.hold
  let generations t = Array.map B.peek t.gens
end

include Make (Exsel_sim.Backend)
module Native = Make (Exsel_native.Backend)
