(** Per-shard core of the long-lived renaming service (DESIGN.md §14).

    One core = one incarnation of a shard: a one-shot {e entry renamer}
    (Efficient- or Adaptive-Rename, functorized over the backend) that
    maps arriving client identifiers onto dense component slots, a
    functorized {!Exsel_renaming.Long_lived} snapshot object through
    which a joined session repeatedly acquires and releases local names,
    and one generation register per local name.

    Layering:
    - [join] runs the one-shot entry renamer once per session — entry
      slots are consumed, never recycled, so a core admits at most [cap]
      sessions over its lifetime (the router recycles a worn-out core
      once it is quiescent, carrying {!generations} into the fresh
      incarnation's [gen0]);
    - [acquire]/[release] go through the long-lived core: a name may be
      recycled arbitrarily many times within an incarnation, and every
      release increments the name's generation {e before} clearing the
      hold, so a lease [(name, generation)] is issued at most once, ever
      — the recycled name is distinguishable from its previous life;
    - a crash while holding pins the name (and its generation) forever,
      which is exactly why a shard with crashed sessions is never
      recycled (router invariant, {!Router.needs_recycle}).

    All three operations must run inside backend processes. *)

type entry_algo = Efficient | Adaptive

val entry_algo_to_string : entry_algo -> string
val entry_algo_of_string : string -> entry_algo option

val slots_for : entry_algo -> cap:int -> int
(** Component slots backing a core admitting [cap] sessions: [2·cap − 1]
    for Efficient entry (Theorem 2's bound), the paper's
    [8·cap − lg cap − 1] for Adaptive entry. *)

val width_for : entry_algo -> cap:int -> int
(** Local name-space width ([2·slots − 1], the worst-case long-lived
    name bound) — the per-shard stride of the global namespace. *)

module type S = sig
  type memory
  type t

  val create :
    ?algo:entry_algo ->
    ?gen0:int array ->
    rng:Exsel_sim.Rng.t ->
    memory ->
    name:string ->
    cap:int ->
    t
  (** [gen0] (length {!width}) seeds the generation registers — pass the
      retiring incarnation's {!generations} when recycling a shard. *)

  val cap : t -> int
  val slots : t -> int
  val width : t -> int
  val algo : t -> entry_algo

  val join : t -> client:int -> int option
  (** One-shot entry: the session's dense component slot, or [None] on
      entry overflow (more than [cap] admissions — the router's
      admission accounting makes this unreachable; kept defensive). *)

  val acquire : t -> slot:int -> int * int
  (** [(name, generation)]: an exclusively held local name below
      [2·k̂ − 1] for point contention [k̂], with the generation read
      under the hold. *)

  val release : t -> slot:int -> name:int -> unit
  (** Increment the name's generation, then clear the hold (in that
      order — a crash between the two pins the name, never reissues a
      generation). *)

  val holder_view : t -> int option array
  (** Published local name per slot (harness inspection, non-atomic). *)

  val generations : t -> int array
  (** Current generation per local name (harness inspection). *)
end

module Make (B : Exsel_backend.Intf.S) : S with type memory = B.memory

include S with type memory = Exsel_sim.Memory.t
(** The simulator instantiation. *)

module Native : S with type memory = Exsel_native.Backend.memory
(** The native (Atomic.t) instantiation. *)
