(** Shard router: deterministic placement of arriving sessions.

    Pure bookkeeping — no registers, no processes — so every routing
    decision is a function of the admission history alone (DESIGN.md §14
    lists the invariants).  The namespace is partitioned statically:
    shard [i] owns global names [[i·stride, (i+1)·stride)] where
    [stride = Core.width], so cross-shard exclusivity is structural and
    only within-shard exclusivity needs the algorithmic argument.

    Invariants:
    - {e occupancy bound}: [live + pinned <= cap] per shard — admission
      control is what turns the long-lived core's adaptive bound into a
      per-shard name interval of width [2·cap − 1];
    - {e wear bound}: at most [cap] admissions per incarnation (the
      entry renamer is one-shot);
    - {e recycle safety}: a shard is recycled only when worn out {e and}
      quiescent ([live = pinned = 0]) — a pinned (crashed) holder never
      increments its name's generation, so rebuilding under it could
      reissue a (name, generation) lease. *)

type t

val create : shards:int -> cap:int -> t

val shards : t -> int
val cap : t -> int
val live : t -> int -> int
val pinned : t -> int -> int
val admitted : t -> int -> int

val epoch : t -> int -> int
(** Incarnation counter of the shard's core (bumped by {!recycled}). *)

val occupancy : t -> int -> int
(** [live + pinned] — the quantity admission control bounds by [cap]. *)

val spills : t -> int
(** Arrivals whose preferred shard was full and that were rerouted. *)

val rejects : t -> int
(** Arrivals no shard could admit. *)

val recycles : t -> int

val admissible : t -> int -> bool

val needs_recycle : t -> int -> bool
(** Worn out (no entry slots left) and quiescent (no live or pinned
    session) — the caller should rebuild the shard's core (carrying
    {!Core.generations} forward) and call {!recycled}. *)

val recycled : t -> int -> unit
(** @raise Invalid_argument if {!needs_recycle} does not hold. *)

val route : ?prefer:int -> t -> int option
(** The shard an arrival should join: the preferred shard while
    admissible, else the nearest admissible ring-wise neighbour (counted
    as a spill); with no preference, the admissible shard with least
    [(occupancy, admitted, index)].  [None] (a reject) when no shard can
    admit.  Routing only — the caller still calls {!admit}. *)

val admit : t -> int -> unit
(** @raise Invalid_argument if the shard is not {!admissible}. *)

val depart : t -> int -> unit
val crash : t -> int -> unit
