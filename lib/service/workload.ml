(* Open-loop traffic generator: seeded arrival processes against the
   sharded long-lived service.

   The cell machinery mirrors lib/service/churn.ml — a (pattern × seed)
   matrix of independent cells, private metrics registries merged in
   matrix order, round-based execution with all of a round's operations
   spawned before any commit — but the load model is open-loop: the
   arrival process is drawn up front from the pattern alone, never from
   how many sessions are still in flight.  A full router rejects the
   arrival (counted, dropped); nothing retries.  That is the defining
   property of an open-loop generator: offered load is exogenous, so
   saturation appears as rejects and tail latency, not as a quietly
   throttled arrival rate.

   All randomness draws from Rng.create_v2 (rejection-sampled) streams:
   this subsystem is new in PR 10, so it has no V1 artefacts to
   preserve. *)

module Rng = Exsel_sim.Rng
module Memory = Exsel_sim.Memory
module Runtime = Exsel_sim.Runtime
module Trace = Exsel_sim.Trace
module Json = Exsel_obs.Json
module Metrics = Exsel_obs.Metrics
module Engine = Exsel_native.Engine
module Dsl = Exsel_adversary.Dsl
module NCore = Core.Native

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)
(* ------------------------------------------------------------------ *)

type pattern = Poisson | Bursty | Steady

let pattern_id = function
  | Poisson -> "poisson"
  | Bursty -> "bursty"
  | Steady -> "steady"

let pattern_of_string = function
  | "poisson" -> Some Poisson
  | "bursty" -> Some Bursty
  | "steady" -> Some Steady
  | _ -> None

let all_patterns = [ Poisson; Bursty; Steady ]

let pattern_ids () = List.map pattern_id all_patterns

let pattern_salt = function
  | Poisson -> 0x5013
  | Bursty -> 0xB357
  | Steady -> 0x57D7

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  shards : int;
  cap : int;
  entry : Core.entry_algo;
  rounds : int;
  rate : int;
  burst_every : int;
  hold : int;
  patterns : pattern list;
  seeds : int list;
  backend : Churn.backend;
  max_commits : int;
  adversary : Dsl.expr option;
}

let default =
  {
    shards = 2;
    cap = 4;
    entry = Core.Efficient;
    rounds = 8;
    rate = 3;
    burst_every = 4;
    hold = 2;
    patterns = all_patterns;
    seeds = [ 1; 2; 3 ];
    backend = Churn.Sim;
    max_commits = 200_000;
    adversary = None;
  }

let validate cfg =
  if cfg.shards <= 0 then Error "shards must be positive"
  else if cfg.cap <= 0 then Error "cap must be positive"
  else if cfg.rounds <= 0 then Error "rounds must be positive"
  else if cfg.rate <= 0 then Error "rate must be positive"
  else if cfg.burst_every <= 0 then Error "burst-every must be positive"
  else if cfg.hold <= 0 then Error "hold must be positive"
  else if cfg.patterns = [] then Error "at least one arrival pattern required"
  else if cfg.seeds = [] then Error "at least one seed required"
  else if cfg.max_commits <= 0 then Error "max-commits must be positive"
  else
    match
      ( cfg.backend,
        Option.map Dsl.crash_free cfg.adversary,
        cfg.backend )
    with
    | Churn.Native { domains }, _, _ when domains <= 0 ->
        Error "domains must be positive"
    | Churn.Native _, Some _, _ ->
        Error "--adversary schedules simulator commits (sim backend only)"
    | _, Some false, _ ->
        Error
          "adversary term must be crash-free for workload scheduling \
           (crash decisions would bypass the session ledger)"
    | _ -> Ok ()

(* ------------------------------------------------------------------ *)
(* Sessions and operations                                             *)
(* ------------------------------------------------------------------ *)

type lease = { l_shard : int; l_local : int; l_name : int; l_gen : int }

type phase =
  | Joining
  | Idle
  | Acquiring
  | Holding of lease * int  (* release at this round *)
  | Releasing of lease
  | Departed

type session = {
  s_client : int;
  s_shard : int;
  s_epoch : int;
  mutable s_slot : int option;
  mutable s_phase : phase;
}

type op =
  | Join of {
      j_s : session;
      mutable j_slot : int option;
      mutable j_t0 : int;
      mutable j_t1 : int;
    }
  | Acq of {
      a_s : session;
      a_hold : int;  (* hold duration in rounds, drawn at plan time *)
      mutable a_lease : (int * int) option;
      mutable a_t0 : int;
      mutable a_t1 : int;
    }
  | Rel of {
      r_s : session;
      r_lease : lease;
      mutable r_t0 : int;
      mutable r_t1 : int;
    }

let op_session = function Join j -> j.j_s | Acq a -> a.a_s | Rel r -> r.r_s

exception Round_stalled of string

(* ------------------------------------------------------------------ *)
(* Cell state                                                          *)
(* ------------------------------------------------------------------ *)

type cell = {
  w_pattern : string;
  w_seed : int;
  w_rounds : int;
  w_arrivals : int;
  w_admitted : int;
  w_rejected : int;
  w_joins : int;
  w_acquires : int;
  w_releases : int;
  w_spills : int;
  w_recycles : int;
  w_commits : int;
  w_wall_ns : int;
  w_max_name : int;
  w_violations : string list;
  w_metrics : Metrics.t;
}

type ctx = {
  cfg : config;
  pattern : pattern;
  seed : int;
  rng : Rng.t;
  router : Router.t;
  stride : int;
  mutable sessions : session list;
  mutable next_client : int;
  issued : (int * int * int, unit) Hashtbl.t;
  mutable violations : string list;  (* newest first *)
  mutable arrivals : int;
  mutable admitted : int;
  mutable joins : int;
  mutable acquires : int;
  mutable releases : int;
  mutable max_name : int;
  occupancy_max : int array;
  reg : Metrics.t;
  join_hist : Metrics.histogram;
  acq_hist : Metrics.histogram;
  rel_hist : Metrics.histogram;
}

let violate ctx fmt =
  Printf.ksprintf (fun m -> ctx.violations <- m :: ctx.violations) fmt

let make_ctx cfg pattern ~seed =
  let reg = Metrics.create () in
  let labels =
    [
      ("pattern", pattern_id pattern);
      ("backend", Churn.backend_name cfg.backend);
    ]
  in
  let unit_suffix =
    match cfg.backend with Churn.Sim -> "commits" | Churn.Native _ -> "ns"
  in
  let hist what =
    Metrics.histogram reg
      (Printf.sprintf "exsel_workload_%s_latency_%s" what unit_suffix)
      ~labels
  in
  {
    cfg;
    pattern;
    seed;
    rng = Rng.create_v2 ~seed:((seed * 1_000_003) lxor pattern_salt pattern);
    router = Router.create ~shards:cfg.shards ~cap:cfg.cap;
    stride = Core.width_for cfg.entry ~cap:cfg.cap;
    sessions = [];
    next_client = 0;
    issued = Hashtbl.create 64;
    violations = [];
    arrivals = 0;
    admitted = 0;
    joins = 0;
    acquires = 0;
    releases = 0;
    max_name = -1;
    occupancy_max = Array.make cfg.shards 0;
    reg;
    join_hist = hist "join";
    acq_hist = hist "acquire";
    rel_hist = hist "release";
  }

let fresh_session ctx shard =
  let client = (6709 * ctx.next_client) + 611_953 in
  ctx.next_client <- ctx.next_client + 1;
  let s =
    {
      s_client = client;
      s_shard = shard;
      s_epoch = Router.epoch ctx.router shard;
      s_slot = None;
      s_phase = Joining;
    }
  in
  ctx.sessions <- ctx.sessions @ [ s ];
  s

(* ------------------------------------------------------------------ *)
(* Planner (backend-independent)                                       *)
(* ------------------------------------------------------------------ *)

(* Arrivals this round, from the pattern alone — never from the live
   session count.  Poisson is realised as binomial(4·rate, 1/4): the
   same mean, Poisson in the thinning limit, and integer draws only, so
   counts are identical on every machine (no libm in sight). *)
let arrivals_for ctx ~round =
  match ctx.pattern with
  | Steady -> ctx.cfg.rate
  | Poisson ->
      let n = ref 0 in
      for _ = 1 to 4 * ctx.cfg.rate do
        if Rng.int ctx.rng 4 = 0 then incr n
      done;
      !n
  | Bursty ->
      if (round - 1) mod ctx.cfg.burst_every = 0 then
        ctx.cfg.rate * ctx.cfg.burst_every
      else 0

(* Mean [hold], uniform over [1, 2·hold − 1]. *)
let hold_draw ctx =
  if ctx.cfg.hold = 1 then 1 else 1 + Rng.int ctx.rng ((2 * ctx.cfg.hold) - 1)

let plan ctx ~round ~recycle =
  let ops = ref [] in
  let add op = ops := op :: !ops in
  for i = 0 to Router.shards ctx.router - 1 do
    if Router.needs_recycle ctx.router i then begin
      recycle i;
      Router.recycled ctx.router i
    end
  done;
  List.iter
    (fun s ->
      match s.s_phase with
      | Holding (l, until) when round >= until ->
          s.s_phase <- Releasing l;
          add (Rel { r_s = s; r_lease = l; r_t0 = 0; r_t1 = 0 })
      | Idle ->
          s.s_phase <- Acquiring;
          add
            (Acq
               {
                 a_s = s;
                 a_hold = hold_draw ctx;
                 a_lease = None;
                 a_t0 = 0;
                 a_t1 = 0;
               })
      | Holding _ | Joining | Acquiring | Releasing _ | Departed -> ())
    ctx.sessions;
  let n = arrivals_for ctx ~round in
  ctx.arrivals <- ctx.arrivals + n;
  for _ = 1 to n do
    match Router.route ctx.router with
    | None -> () (* open-loop drop; the router counts the reject *)
    | Some sh ->
        Router.admit ctx.router sh;
        ctx.admitted <- ctx.admitted + 1;
        let s = fresh_session ctx sh in
        add (Join { j_s = s; j_slot = None; j_t0 = 0; j_t1 = 0 })
  done;
  List.rev !ops

(* ------------------------------------------------------------------ *)
(* Harvest: apply results, check claims (backend-independent)          *)
(* ------------------------------------------------------------------ *)

let harvest ctx ~round ~holder_view ops =
  List.iter
    (fun op ->
      match op with
      | Join j -> (
          ctx.joins <- ctx.joins + 1;
          Metrics.observe ctx.join_hist (max 0 (j.j_t1 - j.j_t0));
          match j.j_slot with
          | Some sl ->
              j.j_s.s_slot <- Some sl;
              j.j_s.s_phase <- Idle
          | None ->
              violate ctx
                "entry-overflow: round %d: client %d rejected by shard %d \
                 entry renamer despite admission" round j.j_s.s_client
                j.j_s.s_shard;
              j.j_s.s_phase <- Departed;
              Router.depart ctx.router j.j_s.s_shard)
      | Acq a -> (
          match a.a_lease with
          | None ->
              violate ctx
                "wait-freedom: round %d: client %d acquire returned without a \
                 lease" round a.a_s.s_client
          | Some (local, gen) ->
              let sh = a.a_s.s_shard in
              let lease =
                {
                  l_shard = sh;
                  l_local = local;
                  l_name = (sh * ctx.stride) + local;
                  l_gen = gen;
                }
              in
              a.a_s.s_phase <- Holding (lease, round + a.a_hold);
              ctx.acquires <- ctx.acquires + 1;
              ctx.max_name <- max ctx.max_name lease.l_name;
              Metrics.observe ctx.acq_hist (max 0 (a.a_t1 - a.a_t0));
              if Hashtbl.mem ctx.issued (sh, local, gen) then
                violate ctx
                  "generation-reuse: round %d: shard %d name %d generation %d \
                   issued twice" round sh local gen
              else Hashtbl.add ctx.issued (sh, local, gen) ())
      | Rel r ->
          ctx.releases <- ctx.releases + 1;
          Metrics.observe ctx.rel_hist (max 0 (r.r_t1 - r.r_t0));
          r.r_s.s_phase <- Departed;
          Router.depart ctx.router r.r_s.s_shard)
    ops;
  (* leak check: a departed session's slot publishes nothing at
     quiescence (current incarnation only, as in Churn.harvest) *)
  for i = 0 to ctx.cfg.shards - 1 do
    let view = holder_view i in
    List.iter
      (fun s ->
        if s.s_shard = i && s.s_epoch = Router.epoch ctx.router i then
          match (s.s_phase, s.s_slot) with
          | (Idle | Departed), Some sl ->
              if view.(sl) <> None then
                violate ctx
                  "leak: round %d: shard %d slot %d still publishes name %d \
                   after release" round i sl
                  (Option.value view.(sl) ~default:(-1))
          | Holding (l, _), Some sl ->
              if view.(sl) <> Some l.l_local then
                violate ctx
                  "hold-not-published: round %d: shard %d slot %d holds name \
                   %d but publishes %s" round i sl l.l_local
                  (match view.(sl) with
                  | Some x -> string_of_int x
                  | None -> "nothing")
          | _ -> ())
      ctx.sessions
  done;
  (* exclusive holds among live leases *)
  let holds = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match s.s_phase with
      | Holding (l, _) -> (
          match Hashtbl.find_opt holds (l.l_shard, l.l_local) with
          | Some other ->
              violate ctx
                "exclusive-holds: round %d: shard %d name %d held by clients \
                 %d and %d concurrently" round l.l_shard l.l_local other
                s.s_client
          | None -> Hashtbl.add holds (l.l_shard, l.l_local) s.s_client)
      | _ -> ())
    ctx.sessions;
  for i = 0 to ctx.cfg.shards - 1 do
    ctx.occupancy_max.(i) <-
      max ctx.occupancy_max.(i) (Router.occupancy ctx.router i)
  done

(* ------------------------------------------------------------------ *)
(* Simulator execution                                                 *)
(* ------------------------------------------------------------------ *)

type sim_shard = {
  sim_mem : Memory.t;
  sim_rt : Runtime.t;
  mutable sim_core : Core.t;
  sim_trace : Trace.t option;
}

let exec_sim ctx shards clock ~round ~drivers ops =
  List.iter
    (fun op ->
      let s = op_session op in
      let sh = shards.(s.s_shard) in
      let core = sh.sim_core in
      let spawn name body = ignore (Runtime.spawn sh.sim_rt ~name body) in
      match op with
      | Join j ->
          j.j_t0 <- !clock;
          spawn
            (Printf.sprintf "c%d.join" s.s_client)
            (fun () ->
              j.j_slot <- Core.join core ~client:s.s_client;
              j.j_t1 <- !clock)
      | Acq a ->
          let slot = Option.get s.s_slot in
          a.a_t0 <- !clock;
          spawn
            (Printf.sprintf "c%d.acquire" s.s_client)
            (fun () ->
              a.a_lease <- Some (Core.acquire core ~slot);
              a.a_t1 <- !clock)
      | Rel r ->
          let slot = Option.get s.s_slot in
          r.r_t0 <- !clock;
          spawn
            (Printf.sprintf "c%d.release" s.s_client)
            (fun () ->
              Core.release core ~slot ~name:r.r_lease.l_local;
              r.r_t1 <- !clock))
    ops;
  (* interleave across all shard runtimes, one commit at a time: a
     uniform runnable-weighted draw picks the shard; the within-shard
     choice is the same draw's offset, or the compiled adversary's *)
  let commits_round = ref 0 in
  let total_runnable () =
    Array.fold_left (fun acc sh -> acc + Runtime.num_runnable sh.sim_rt) 0 shards
  in
  let rec loop () =
    let total = total_runnable () in
    if total > 0 then begin
      if !commits_round >= ctx.cfg.max_commits then
        raise
          (Round_stalled
             (Printf.sprintf
                "liveness: round %d: %d-commit budget exhausted with %d \
                 operations still runnable" round ctx.cfg.max_commits total));
      let pick = ref (Rng.int ctx.rng total) in
      let si = ref 0 in
      while !pick >= Runtime.num_runnable shards.(!si).sim_rt do
        pick := !pick - Runtime.num_runnable shards.(!si).sim_rt;
        incr si
      done;
      let rt = shards.(!si).sim_rt in
      let p =
        match drivers with
        | None -> Runtime.nth_runnable rt !pick
        | Some ds -> (
            match ds.(!si) rt with
            | Some (Dsl.Commit p) -> p
            | Some (Dsl.Crash _) | None ->
                (* crash terms are rejected by validate; a relinquishing
                   adversary falls back to the uniform offset *)
                Runtime.nth_runnable rt !pick)
      in
      Runtime.commit rt p;
      incr clock;
      incr commits_round;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Native execution                                                    *)
(* ------------------------------------------------------------------ *)

type nat_shard = {
  nat_mem : Exsel_native.Backend.memory;
  mutable nat_core : NCore.t;
}

let ns_to_int ns =
  if Int64.compare ns 0L < 0 then 0
  else if Int64.compare ns (Int64.of_int max_int) > 0 then max_int
  else Int64.to_int ns

let exec_native shards ~domains wall_acc ops =
  if ops <> [] then begin
    let engine = Engine.create () in
    List.iter
      (fun op ->
        let s = op_session op in
        let core = shards.(s.s_shard).nat_core in
        match op with
        | Join j ->
            Engine.spawn engine
              ~name:(Printf.sprintf "c%d.join" s.s_client)
              (fun () ->
                let t0 = Monotonic_clock.now () in
                j.j_slot <- NCore.join core ~client:s.s_client;
                j.j_t1 <- ns_to_int (Int64.sub (Monotonic_clock.now ()) t0))
        | Acq a ->
            let slot = Option.get s.s_slot in
            Engine.spawn engine
              ~name:(Printf.sprintf "c%d.acquire" s.s_client)
              (fun () ->
                let t0 = Monotonic_clock.now () in
                a.a_lease <- Some (NCore.acquire core ~slot);
                a.a_t1 <- ns_to_int (Int64.sub (Monotonic_clock.now ()) t0))
        | Rel r ->
            let slot = Option.get s.s_slot in
            Engine.spawn engine
              ~name:(Printf.sprintf "c%d.release" s.s_client)
              (fun () ->
                let t0 = Monotonic_clock.now () in
                NCore.release core ~slot ~name:r.r_lease.l_local;
                r.r_t1 <- ns_to_int (Int64.sub (Monotonic_clock.now ()) t0)))
      ops;
    Engine.run engine ~domains;
    match Engine.telemetry engine with
    | Some tl -> wall_acc := !wall_acc + ns_to_int (Engine.wall_ns tl)
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Cells                                                               *)
(* ------------------------------------------------------------------ *)

type event =
  | Cell_started of { index : int; pattern : string; seed : int }
  | Cell_finished of { index : int; cell : cell }

let core_rng ~seed ~shard ~epoch =
  Rng.create_v2 ~seed:((seed * 89) + shard + (1000 * epoch))

let finish_cell ctx ~rounds_done ~commits ~wall_ns =
  let labels =
    [
      ("pattern", pattern_id ctx.pattern);
      ("backend", Churn.backend_name ctx.cfg.backend);
    ]
  in
  let c name v = Metrics.inc (Metrics.counter ctx.reg name ~labels) v in
  c "exsel_workload_arrivals" ctx.arrivals;
  c "exsel_workload_admitted" ctx.admitted;
  c "exsel_workload_rejected" (Router.rejects ctx.router);
  c "exsel_workload_joins" ctx.joins;
  c "exsel_workload_acquires" ctx.acquires;
  c "exsel_workload_releases" ctx.releases;
  c "exsel_workload_violations" (List.length ctx.violations);
  for i = 0 to ctx.cfg.shards - 1 do
    let labels = ("shard", string_of_int i) :: labels in
    Metrics.max_gauge
      (Metrics.gauge ctx.reg "exsel_workload_occupancy" ~labels)
      ctx.occupancy_max.(i)
  done;
  {
    w_pattern = pattern_id ctx.pattern;
    w_seed = ctx.seed;
    w_rounds = rounds_done;
    w_arrivals = ctx.arrivals;
    w_admitted = ctx.admitted;
    w_rejected = Router.rejects ctx.router;
    w_joins = ctx.joins;
    w_acquires = ctx.acquires;
    w_releases = ctx.releases;
    w_spills = Router.spills ctx.router;
    w_recycles = Router.recycles ctx.router;
    w_commits = commits;
    w_wall_ns = wall_ns;
    w_max_name = ctx.max_name;
    w_violations = List.rev ctx.violations;
    w_metrics = ctx.reg;
  }

let compile_drivers cfg pattern ~seed =
  Option.map
    (fun expr ->
      Array.init cfg.shards (fun shard ->
          Dsl.compile expr
            ~seed:(((seed * 1_000_003) lxor pattern_salt pattern) + (7919 * shard))
            ~k:cfg.cap))
    cfg.adversary

let run_cell_sim cfg pattern ~seed ~capture_traces =
  let ctx = make_ctx cfg pattern ~seed in
  let shards =
    Array.init cfg.shards (fun i ->
        let mem = Memory.create () in
        let rt = Runtime.create mem in
        let core =
          Core.create ~algo:cfg.entry
            ~rng:(core_rng ~seed ~shard:i ~epoch:0)
            mem
            ~name:(Printf.sprintf "shard%d" i)
            ~cap:cfg.cap
        in
        let trace = if capture_traces then Some (Trace.attach rt) else None in
        { sim_mem = mem; sim_rt = rt; sim_core = core; sim_trace = trace })
  in
  let recycle i =
    let sh = shards.(i) in
    let epoch = Router.epoch ctx.router i + 1 in
    sh.sim_core <-
      Core.create ~algo:cfg.entry
        ~gen0:(Core.generations sh.sim_core)
        ~rng:(core_rng ~seed ~shard:i ~epoch)
        sh.sim_mem
        ~name:(Printf.sprintf "shard%d.e%d" i epoch)
        ~cap:cfg.cap
  in
  let drivers = compile_drivers cfg pattern ~seed in
  let clock = ref 0 in
  let rounds_done = ref 0 in
  (try
     for round = 1 to cfg.rounds do
       let ops = plan ctx ~round ~recycle in
       exec_sim ctx shards clock ~round ~drivers ops;
       harvest ctx ~round
         ~holder_view:(fun i -> Core.holder_view shards.(i).sim_core)
         ops;
       incr rounds_done
     done
   with Round_stalled msg -> ctx.violations <- msg :: ctx.violations);
  let cell = finish_cell ctx ~rounds_done:!rounds_done ~commits:!clock ~wall_ns:0 in
  let traces =
    if capture_traces then
      Array.to_list
        (Array.mapi
           (fun i sh ->
             ( i,
               Runtime.commits sh.sim_rt,
               match sh.sim_trace with Some t -> Trace.events t | None -> [] ))
           shards)
    else []
  in
  (cell, traces)

let run_cell_native cfg pattern ~seed ~domains =
  let ctx = make_ctx cfg pattern ~seed in
  let shards =
    Array.init cfg.shards (fun i ->
        let mem = Exsel_native.Backend.create () in
        let core =
          NCore.create ~algo:cfg.entry
            ~rng:(core_rng ~seed ~shard:i ~epoch:0)
            mem
            ~name:(Printf.sprintf "shard%d" i)
            ~cap:cfg.cap
        in
        { nat_mem = mem; nat_core = core })
  in
  let recycle i =
    let sh = shards.(i) in
    let epoch = Router.epoch ctx.router i + 1 in
    sh.nat_core <-
      NCore.create ~algo:cfg.entry
        ~gen0:(NCore.generations sh.nat_core)
        ~rng:(core_rng ~seed ~shard:i ~epoch)
        sh.nat_mem
        ~name:(Printf.sprintf "shard%d.e%d" i epoch)
        ~cap:cfg.cap
  in
  let wall = ref 0 in
  let rounds_done = ref 0 in
  for round = 1 to cfg.rounds do
    let ops = plan ctx ~round ~recycle in
    exec_native shards ~domains wall ops;
    harvest ctx ~round
      ~holder_view:(fun i -> NCore.holder_view shards.(i).nat_core)
      ops;
    incr rounds_done
  done;
  finish_cell ctx ~rounds_done:!rounds_done ~commits:0 ~wall_ns:!wall

let run_cell cfg ~index pattern ~seed ~on_event =
  on_event (Cell_started { index; pattern = pattern_id pattern; seed });
  let cell =
    match cfg.backend with
    | Churn.Sim -> fst (run_cell_sim cfg pattern ~seed ~capture_traces:false)
    | Churn.Native { domains } -> run_cell_native cfg pattern ~seed ~domains
  in
  on_event (Cell_finished { index; cell });
  cell

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

type report = {
  wr_config : config;
  wr_cells : cell list;
  wr_violations : int;
  wr_metrics : Metrics.t;
}

let run ?(jobs = 1) ?(on_event = fun (_ : event) -> ()) cfg =
  (match validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Workload.run: " ^ msg));
  let matrix =
    List.concat_map
      (fun pattern -> List.map (fun seed -> (pattern, seed)) cfg.seeds)
      cfg.patterns
  in
  let matrix = List.mapi (fun index (p, s) -> (index, p, s)) matrix in
  let cells =
    if jobs <= 1 then
      List.map
        (fun (index, pattern, seed) ->
          run_cell cfg ~index pattern ~seed ~on_event)
        matrix
    else
      Exsel_sim.Pool.map ~jobs
        (fun (index, pattern, seed) ->
          run_cell cfg ~index pattern ~seed ~on_event)
        matrix
  in
  let violations =
    List.fold_left (fun acc c -> acc + List.length c.w_violations) 0 cells
  in
  let merged = Metrics.create () in
  Metrics.inc (Metrics.counter merged "exsel_workload_cells") (List.length cells);
  List.iter (fun c -> Metrics.merge ~into:merged c.w_metrics) cells;
  {
    wr_config = cfg;
    wr_cells = cells;
    wr_violations = violations;
    wr_metrics = merged;
  }

let shard_traces cfg pattern ~seed =
  match cfg.backend with
  | Churn.Native _ ->
      invalid_arg "Workload.shard_traces: traces are commit-clock (sim only)"
  | Churn.Sim -> snd (run_cell_sim cfg pattern ~seed ~capture_traces:true)

(* ------------------------------------------------------------------ *)
(* exsel-workload/1                                                    *)
(* ------------------------------------------------------------------ *)

let cell_json c =
  Json.Obj
    [
      ("pattern", Json.String c.w_pattern);
      ("seed", Json.Int c.w_seed);
      ("ok", Json.Bool (c.w_violations = []));
      ("rounds", Json.Int c.w_rounds);
      ("arrivals", Json.Int c.w_arrivals);
      ("admitted", Json.Int c.w_admitted);
      ("rejected", Json.Int c.w_rejected);
      ("joins", Json.Int c.w_joins);
      ("acquires", Json.Int c.w_acquires);
      ("releases", Json.Int c.w_releases);
      ("spills", Json.Int c.w_spills);
      ("recycles", Json.Int c.w_recycles);
      ("commits", Json.Int c.w_commits);
      ("wall_ns", Json.Int c.w_wall_ns);
      ("max_name", Json.Int c.w_max_name);
      ( "violations",
        Json.List (List.map (fun v -> Json.String v) c.w_violations) );
    ]

let to_json r =
  let cfg = r.wr_config in
  Json.Obj
    ([
       ("schema", Json.String "exsel-workload/1");
       ("backend", Json.String (Churn.backend_name cfg.backend));
     ]
    @ (match cfg.backend with
      | Churn.Native { domains } -> [ ("domains", Json.Int domains) ]
      | Churn.Sim -> [])
    @ [
        ("shards", Json.Int cfg.shards);
        ("cap", Json.Int cfg.cap);
        ("rounds", Json.Int cfg.rounds);
        ("rate", Json.Int cfg.rate);
        ("burst_every", Json.Int cfg.burst_every);
        ("hold", Json.Int cfg.hold);
        ("entry", Json.String (Core.entry_algo_to_string cfg.entry));
        ("stride", Json.Int (Core.width_for cfg.entry ~cap:cfg.cap));
        ( "patterns",
          Json.List
            (List.map (fun p -> Json.String (pattern_id p)) cfg.patterns) );
        ("seeds", Json.List (List.map (fun s -> Json.Int s) cfg.seeds));
      ]
    @ (match cfg.adversary with
      | Some expr -> [ ("adversary", Json.String (Dsl.to_string expr)) ]
      | None -> [])
    @ [
        ("cells", Json.List (List.map cell_json r.wr_cells));
        ("violations", Json.Int r.wr_violations);
        ("metrics", Metrics.to_json r.wr_metrics);
      ])

(* ------------------------------------------------------------------ *)
(* exsel-events/1                                                      *)
(* ------------------------------------------------------------------ *)

let start_event cfg =
  Json.Obj
    [
      ("schema", Json.String "exsel-events/1");
      ("event", Json.String "start");
      ("kind", Json.String "workload");
      ("backend", Json.String (Churn.backend_name cfg.backend));
      ( "patterns",
        Json.List (List.map (fun p -> Json.String (pattern_id p)) cfg.patterns)
      );
      ("seeds", Json.List (List.map (fun s -> Json.Int s) cfg.seeds));
      ("shards", Json.Int cfg.shards);
      ("cap", Json.Int cfg.cap);
      ("rounds", Json.Int cfg.rounds);
      ("rate", Json.Int cfg.rate);
      ("cells", Json.Int (List.length cfg.patterns * List.length cfg.seeds));
    ]

let event_json = function
  | Cell_started { index; pattern; seed } ->
      Json.Obj
        [
          ("event", Json.String "cell_started");
          ("cell", Json.Int index);
          ("pattern", Json.String pattern);
          ("seed", Json.Int seed);
        ]
  | Cell_finished { index; cell = c } ->
      Json.Obj
        [
          ("event", Json.String "cell_finished");
          ("cell", Json.Int index);
          ("pattern", Json.String c.w_pattern);
          ("seed", Json.Int c.w_seed);
          ("ok", Json.Bool (c.w_violations = []));
          ("arrivals", Json.Int c.w_arrivals);
          ("rejected", Json.Int c.w_rejected);
          ("acquires", Json.Int c.w_acquires);
          ("releases", Json.Int c.w_releases);
          ("max_name", Json.Int c.w_max_name);
          ("quantiles", Metrics.quantiles_json c.w_metrics);
        ]

let done_event r =
  Json.Obj
    [
      ("event", Json.String "done");
      ("cells", Json.Int (List.length r.wr_cells));
      ("violations", Json.Int r.wr_violations);
      ("metrics", Metrics.summary_json r.wr_metrics);
    ]

let pp_summary ppf r =
  let cfg = r.wr_config in
  Format.fprintf ppf
    "workload: backend=%s shards=%d cap=%d rounds=%d rate=%d hold=%d entry=%s%s@."
    (Churn.backend_name cfg.backend)
    cfg.shards cfg.cap cfg.rounds cfg.rate cfg.hold
    (Core.entry_algo_to_string cfg.entry)
    (match cfg.adversary with
    | Some e -> " adversary=" ^ Dsl.to_string e
    | None -> "");
  List.iter
    (fun c ->
      if c.w_violations = [] then
        Format.fprintf ppf
          "  ok    %-8s seed=%-3d arrivals=%-4d admitted=%-4d rejected=%-4d \
           acquires=%-4d releases=%-4d max-name=%d@."
          c.w_pattern c.w_seed c.w_arrivals c.w_admitted c.w_rejected
          c.w_acquires c.w_releases c.w_max_name
      else begin
        Format.fprintf ppf "  FAIL  %-8s seed=%-3d (%d violations)@."
          c.w_pattern c.w_seed
          (List.length c.w_violations);
        List.iter (fun v -> Format.fprintf ppf "        %s@." v) c.w_violations
      end)
    r.wr_cells;
  Format.fprintf ppf "  %d violation%s in %d cells@." r.wr_violations
    (if r.wr_violations = 1 then "" else "s")
    (List.length r.wr_cells)
