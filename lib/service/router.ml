(* Pure shard-router bookkeeping: no shared memory, no processes.  The
   router decides *where* an arriving session goes before any backend
   process runs, so its decisions are deterministic given the admission
   history — which is what makes the campaign reports byte-identical
   across [-j N] (every cell owns a private router). *)

type shard = {
  mutable live : int;  (* admitted, not departed/crashed *)
  mutable pinned : int;  (* crashed sessions (components possibly pinned) *)
  mutable admitted : int;  (* admissions in the current incarnation *)
  mutable epoch : int;
}

type t = {
  cap : int;
  shards : shard array;
  mutable spills : int;
  mutable rejects : int;
  mutable recycles : int;
}

let create ~shards ~cap =
  if shards <= 0 then invalid_arg "Router.create: shards must be positive";
  if cap <= 0 then invalid_arg "Router.create: cap must be positive";
  {
    cap;
    shards =
      Array.init shards (fun _ ->
          { live = 0; pinned = 0; admitted = 0; epoch = 0 });
    spills = 0;
    rejects = 0;
    recycles = 0;
  }

let shards t = Array.length t.shards
let cap t = t.cap
let live t i = t.shards.(i).live
let pinned t i = t.shards.(i).pinned
let admitted t i = t.shards.(i).admitted
let epoch t i = t.shards.(i).epoch
let occupancy t i = t.shards.(i).live + t.shards.(i).pinned
let spills t = t.spills
let rejects t = t.rejects
let recycles t = t.recycles

(* A shard can admit while it has both a free session seat (occupancy
   below cap keeps the adaptive point-contention bound at 2·cap − 1) and
   a free entry slot in the current incarnation. *)
let admissible t i =
  occupancy t i < t.cap && t.shards.(i).admitted < t.cap

(* Worn out (entry slots exhausted) but quiescent: no live session, no
   pinned one.  The pinned condition is a soundness invariant, not an
   optimisation — a crashed holder never releases, so its name's
   generation is never incremented, and rebuilding the core would let a
   fresh session re-acquire the pinned (name, generation) pair. *)
let needs_recycle t i =
  let s = t.shards.(i) in
  s.live = 0 && s.pinned = 0 && s.admitted >= t.cap

let recycled t i =
  let s = t.shards.(i) in
  if not (needs_recycle t i) then invalid_arg "Router.recycled: not recyclable";
  s.admitted <- 0;
  s.epoch <- s.epoch + 1;
  t.recycles <- t.recycles + 1

(* Pick-cheapest balancing: least occupancy, then least-worn incarnation,
   then lowest index — a total order, so routing is deterministic.  A
   preferred shard is honored while admissible; otherwise the arrival
   spills ring-wise to the nearest admissible neighbour. *)
let cheapest t =
  let best = ref None in
  Array.iteri
    (fun i s ->
      if admissible t i then
        let key = (s.live + s.pinned, s.admitted, i) in
        match !best with
        | Some (bkey, _) when compare bkey key <= 0 -> ()
        | _ -> best := Some (key, i))
    t.shards;
  Option.map snd !best

let route ?prefer t =
  match prefer with
  | Some p when p >= 0 && p < Array.length t.shards && admissible t p ->
      Some p
  | Some p when p >= 0 && p < Array.length t.shards ->
      let n = Array.length t.shards in
      let rec probe d =
        if d >= n then None
        else
          let i = (p + d) mod n in
          if admissible t i then Some i else probe (d + 1)
      in
      (match probe 1 with
      | Some i ->
          t.spills <- t.spills + 1;
          Some i
      | None ->
          t.rejects <- t.rejects + 1;
          None)
  | Some p -> invalid_arg (Printf.sprintf "Router.route: bad shard %d" p)
  | None -> (
      match cheapest t with
      | Some i -> Some i
      | None ->
          t.rejects <- t.rejects + 1;
          None)

let admit t i =
  if not (admissible t i) then invalid_arg "Router.admit: shard not admissible";
  t.shards.(i).live <- t.shards.(i).live + 1;
  t.shards.(i).admitted <- t.shards.(i).admitted + 1

let depart t i = t.shards.(i).live <- t.shards.(i).live - 1

let crash t i =
  t.shards.(i).live <- t.shards.(i).live - 1;
  t.shards.(i).pinned <- t.shards.(i).pinned + 1
