module Rng = Exsel_sim.Rng

type status = Running | Waiting | Done | Crashed

exception Crash_signal

(* A suspended operation.  All message typing lives inside the closures,
   which capture the (typed) network the effect was performed on; the
   scheduler only sees kinds and counts. *)
type pending =
  | Send_pending of { to_ : int; commit : unit -> unit; kill : unit -> unit }
  | Recv_pending of {
      available : unit -> int;  (* current in-flight count for this proc *)
      commit : int -> unit;  (* deliver the message at this queue index *)
      kill : unit -> unit;
    }

type proc = {
  pid : int;
  mutable status : status;
  mutable pending : pending option;
  mutable sent : int;
  mutable received : int;
}

type 'm t = {
  size : int;
  members : proc option array;
  inboxes : (int * 'm) list array;  (* in-flight (sender, message) per dest *)
}

type _ Effect.t +=
  | E_send : ('m t * int * 'm) -> unit Effect.t
  | E_recv : 'm t -> (int * 'm) Effect.t

let create ~n =
  if n <= 0 then invalid_arg "Mnet.create: n must be positive";
  { size = n; members = Array.make n None; inboxes = Array.make n [] }

let n t = t.size

let send t ~to_ msg =
  if to_ < 0 || to_ >= t.size then invalid_arg "Mnet.send: bad destination";
  Effect.perform (E_send (t, to_, msg))

let broadcast t msg =
  for q = 0 to t.size - 1 do
    send t ~to_:q msg
  done

let receive t = Effect.perform (E_recv t)

let spawn t ~me body =
  if me < 0 || me >= t.size then invalid_arg "Mnet.spawn: bad slot";
  (match t.members.(me) with
  | Some _ -> invalid_arg "Mnet.spawn: slot already occupied"
  | None -> ());
  let p = { pid = me; status = Running; pending = None; sent = 0; received = 0 } in
  t.members.(me) <- Some p;
  let open Effect.Deep in
  let handler : (unit, unit) handler =
    {
      retc =
        (fun () ->
          p.status <- Done;
          p.pending <- None);
      exnc =
        (fun e ->
          match e with
          | Crash_signal ->
              p.status <- Crashed;
              p.pending <- None
          | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_send (net, to_, msg) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  p.status <- Running;
                  p.pending <-
                    Some
                      (Send_pending
                         {
                           to_;
                           commit =
                             (fun () ->
                               p.pending <- None;
                               p.sent <- p.sent + 1;
                               net.inboxes.(to_) <-
                                 net.inboxes.(to_) @ [ (p.pid, msg) ];
                               continue k ());
                           kill = (fun () -> discontinue k Crash_signal);
                         }))
          | E_recv net ->
              Some
                (fun (k : (a, unit) continuation) ->
                  p.status <- Waiting;
                  p.pending <-
                    Some
                      (Recv_pending
                         {
                           available = (fun () -> List.length net.inboxes.(p.pid));
                           commit =
                             (fun index ->
                               let inbox = net.inboxes.(p.pid) in
                               if index < 0 || index >= List.length inbox then
                                 invalid_arg "Mnet: delivery index out of range";
                               let msg = List.nth inbox index in
                               net.inboxes.(p.pid) <-
                                 List.filteri (fun i _ -> i <> index) inbox;
                               p.pending <- None;
                               p.received <- p.received + 1;
                               p.status <- Running;
                               continue k msg);
                           kill = (fun () -> discontinue k Crash_signal);
                         }))
          | _ -> None);
    }
  in
  match_with body () handler;
  p

let procs t =
  Array.to_list t.members |> List.filter_map Fun.id

let pid p = p.pid
let status p = p.status
let sent p = p.sent
let received p = p.received

let in_flight t ~to_ = List.length t.inboxes.(to_)

let crash t p =
  match (p.status, p.pending) with
  | (Running | Waiting), Some (Send_pending { kill; _ })
  | (Running | Waiting), Some (Recv_pending { kill; _ }) ->
      p.pending <- None;
      kill ();
      t.inboxes.(p.pid) <- []
  | (Running | Waiting), None ->
      p.status <- Crashed;
      t.inboxes.(p.pid) <- []
  | (Done | Crashed), _ -> ()

(* A committable event: a pending send taking effect, or one specific
   in-flight message delivered to a waiting receiver. *)
let events t =
  List.concat_map
    (fun p ->
      match (p.status, p.pending) with
      | Running, Some (Send_pending _) -> [ (p, 0) ]
      | Waiting, Some (Recv_pending { available; _ }) ->
          List.init (available ()) (fun i -> (p, i))
      | _ -> [])
    (procs t)

let quiescent t = events t = []

(* Same event space as [events t], but as (process, choice-count) buckets
   in the same enumeration order — lets the random drivers draw one event
   with [Rng.pick_weighted] without materialising the flattened list.
   Draw-for-draw identical to picking uniformly from [events t]. *)
let event_buckets t =
  List.filter_map
    (fun p ->
      match (p.status, p.pending) with
      | Running, Some (Send_pending _) -> Some (p, 1)
      | Waiting, Some (Recv_pending { available; _ }) ->
          let n = available () in
          if n > 0 then Some (p, n) else None
      | _ -> None)
    (procs t)

let commit_event (p, index) =
  match p.pending with
  | Some (Send_pending { commit; _ }) -> commit ()
  | Some (Recv_pending { commit; _ }) -> commit index
  | None -> invalid_arg "Mnet: no pending operation"

let step_random t rng =
  match event_buckets t with
  | [] -> false
  | buckets ->
      commit_event (Rng.pick_weighted rng buckets);
      true

let run_random ?(max_events = 10_000_000) t rng =
  let budget = ref max_events in
  let rec loop () =
    match event_buckets t with
    | [] -> ()
    | buckets ->
        if !budget <= 0 then raise Exsel_sim.Runtime.Stalled;
        decr budget;
        commit_event (Rng.pick_weighted rng buckets);
        loop ()
  in
  loop ()
