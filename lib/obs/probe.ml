module Runtime = Exsel_sim.Runtime
module Memory = Exsel_sim.Memory

type reg_profile = {
  id : int;
  reads : int;
  writes : int;
  writers : int;
  peak_pending : int;
}

type report = {
  registers : int;
  touched : int;
  max_writers : int;
  peak_pending : int;
  profiles : reg_profile list;
  steps_histogram : (int * int) list;
  processes : (int * string * int) list;
}

type reg_stat = {
  mutable st_reads : int;
  mutable st_writes : int;
  mutable writer_set : (int, unit) Hashtbl.t option;  (* lazily allocated *)
}

type t = {
  rt : Runtime.t;
  mutable stats : reg_stat option array;  (* register id -> access stats *)
  mutable live : int array;  (* register id -> processes pending on it now *)
  mutable peak : int array;  (* register id -> max of [live] over time *)
  mutable counted : int array;  (* pid -> register its pending op is counted on, -1 none *)
}

let grow_int arr n fill =
  if n <= Array.length !arr then ()
  else begin
    let bigger = Array.make (max n (2 * Array.length !arr)) fill in
    Array.blit !arr 0 bigger 0 (Array.length !arr);
    arr := bigger
  end

let grow_stats t n =
  if n > Array.length t.stats then begin
    let bigger = Array.make (max n (2 * Array.length t.stats)) None in
    Array.blit t.stats 0 bigger 0 (Array.length t.stats);
    t.stats <- bigger
  end

let reg_of = function Runtime.Read id | Runtime.Write id -> id

let bump_live t id =
  let live = ref t.live and peak = ref t.peak in
  grow_int live (id + 1) 0;
  grow_int peak (id + 1) 0;
  t.live <- !live;
  t.peak <- !peak;
  t.live.(id) <- t.live.(id) + 1;
  if t.live.(id) > t.peak.(id) then t.peak.(id) <- t.live.(id)

let stat_for t id =
  grow_stats t (id + 1);
  match t.stats.(id) with
  | Some s -> s
  | None ->
      let s = { st_reads = 0; st_writes = 0; writer_set = None } in
      t.stats.(id) <- Some s;
      s

let on_commit t p op =
  let id = reg_of op in
  let pid = Runtime.pid p in
  let s = stat_for t id in
  (match op with
  | Runtime.Read _ -> s.st_reads <- s.st_reads + 1
  | Runtime.Write _ ->
      s.st_writes <- s.st_writes + 1;
      let set =
        match s.writer_set with
        | Some set -> set
        | None ->
            let set = Hashtbl.create 4 in
            s.writer_set <- Some set;
            set
      in
      Hashtbl.replace set pid ());
  (* Contention bookkeeping: the committed operation was pending on [id]
     until this instant.  A process first seen here (spawned after
     attach) is back-credited so the pre-commit peak is exact. *)
  let counted = ref t.counted in
  grow_int counted (pid + 1) (-1);
  t.counted <- !counted;
  let prev =
    match t.counted.(pid) with
    | -1 ->
        bump_live t id;
        id
    | r -> r
  in
  t.live.(prev) <- t.live.(prev) - 1;
  (match Runtime.pending p with
  | Some op' ->
      let id' = reg_of op' in
      t.counted.(pid) <- id';
      bump_live t id'
  | None -> t.counted.(pid) <- -1)

let attach rt =
  let t =
    {
      rt;
      stats = Array.make 64 None;
      live = Array.make 64 0;
      peak = Array.make 64 0;
      counted = Array.make 16 (-1);
    }
  in
  List.iter
    (fun p ->
      match Runtime.pending p with
      | Some op ->
          let id = reg_of op in
          let counted = ref t.counted in
          grow_int counted (Runtime.pid p + 1) (-1);
          t.counted <- !counted;
          t.counted.(Runtime.pid p) <- id;
          bump_live t id
      | None -> ())
    (Runtime.procs rt);
  Runtime.on_commit rt (on_commit t);
  t

let report t =
  let registers = Memory.registers (Runtime.memory t.rt) in
  let profiles = ref [] in
  for id = min (Array.length t.stats) registers - 1 downto 0 do
    match t.stats.(id) with
    | None -> ()
    | Some s ->
        let peak = if id < Array.length t.peak then t.peak.(id) else 0 in
        profiles :=
          {
            id;
            reads = s.st_reads;
            writes = s.st_writes;
            writers =
              (match s.writer_set with Some set -> Hashtbl.length set | None -> 0);
            peak_pending = peak;
          }
          :: !profiles
  done;
  let profiles = !profiles in
  let procs = Runtime.procs t.rt in
  let processes =
    List.map (fun p -> (Runtime.pid p, Runtime.proc_name p, Runtime.steps p)) procs
  in
  let hist = Hashtbl.create 16 in
  List.iter
    (fun (_, _, steps) ->
      Hashtbl.replace hist steps (1 + Option.value ~default:0 (Hashtbl.find_opt hist steps)))
    processes;
  {
    registers;
    touched = List.length profiles;
    max_writers = List.fold_left (fun acc p -> max acc p.writers) 0 profiles;
    peak_pending =
      List.fold_left (fun acc (p : reg_profile) -> max acc p.peak_pending) 0 profiles;
    profiles;
    steps_histogram =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist [] |> List.sort compare;
    processes;
  }

let to_json r =
  Json.Obj
    [
      ("schema", Json.String "exsel-probe/1");
      ("registers", Json.Int r.registers);
      ("touched", Json.Int r.touched);
      ("max_writers", Json.Int r.max_writers);
      ("peak_pending", Json.Int r.peak_pending);
      ( "profiles",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("id", Json.Int p.id);
                   ("reads", Json.Int p.reads);
                   ("writes", Json.Int p.writes);
                   ("writers", Json.Int p.writers);
                   ("peak_pending", Json.Int p.peak_pending);
                 ])
             r.profiles) );
      ( "steps_histogram",
        Json.List
          (List.map
             (fun (steps, count) ->
               Json.Obj [ ("steps", Json.Int steps); ("processes", Json.Int count) ])
             r.steps_histogram) );
      ( "processes",
        Json.List
          (List.map
             (fun (pid, name, steps) ->
               Json.Obj
                 [
                   ("pid", Json.Int pid);
                   ("name", Json.String name);
                   ("steps", Json.Int steps);
                 ])
             r.processes) );
    ]

let pp ppf r =
  Format.fprintf ppf
    "probe: %d registers (%d touched), max distinct writers %d, peak pending %d@."
    r.registers r.touched r.max_writers r.peak_pending;
  let hot =
    List.sort
      (fun (a : reg_profile) (b : reg_profile) ->
        compare (b.peak_pending, b.writes) (a.peak_pending, a.writes))
      r.profiles
  in
  let shown = List.filteri (fun i _ -> i < 16) hot in
  List.iter
    (fun p ->
      Format.fprintf ppf "  reg %-5d r/w=%d/%d writers=%d peak-pending=%d@." p.id
        p.reads p.writes p.writers p.peak_pending)
    shown;
  if List.length hot > List.length shown then
    Format.fprintf ppf "  ... %d more registers@." (List.length hot - List.length shown);
  Format.fprintf ppf "  steps histogram:";
  List.iter
    (fun (steps, count) -> Format.fprintf ppf " %dx%d" count steps)
    r.steps_histogram;
  Format.fprintf ppf "@."
