(** Domain-safe metrics registry: counters, gauges, and log-bucketed
    (HDR-style) histograms with tail-latency quantile estimation.

    A {!t} is an explicitly-created registry holding named instruments,
    each optionally labelled (e.g. [("algo", "efficient")]).  All values
    are integers — the natural unit here is the {e commit clock}
    ({!Exsel_sim.Runtime.commits}), which is deterministic per schedule,
    so every instrument in a registry built from a deterministic run is
    itself deterministic: two runs of the same work produce registries
    that render byte-identically.

    {b Histograms} bucket values logarithmically with [2^5 = 32]
    sub-buckets per octave (values below 64 are exact), bounding the
    relative quantile error by [2^-5] ≈ 3.2%.  Quantiles are
    nearest-rank over the bucket cumulative counts, reported as the
    bucket's upper bound clamped to the observed maximum — integer in,
    integer out, no floating-point state.

    {b Merging} ({!merge}) is per-instrument: counters and histogram
    buckets add, gauges take the maximum.  Addition and max are
    commutative and associative, and every rendering sorts instruments
    by (name, labels), so folding shard-local registries in {e any}
    order yields the same document — the property `Campaign.run ~jobs`
    relies on for byte-identical [-j N] reports (DESIGN.md §11).

    {b Domain safety} follows the {!Probe}/{!Span} split: a registry has
    no ambient state of its own — every counter lives in the explicitly
    threaded [t] — and the optional ambient lookup below is
    [Domain.DLS]-scoped.  {!bind} associates a registry with one runtime
    (resolved through {!Exsel_sim.Runtime.owner} of the current process,
    so two live runtimes never cross-attribute), and {!with_ambient}
    scopes a domain-local default for instrumented code that runs
    outside any process body.  Registries on different domains never
    interact; a registry must only be mutated from one domain at a time
    (merge after joining, as {!Exsel_sim.Pool} does). *)

type t
(** A metrics registry. *)

type counter
(** Monotonically increasing integer. *)

type gauge
(** Last-set integer; merges by maximum. *)

type histogram
(** Log-bucketed distribution of non-negative integers. *)

val create : unit -> t
(** A fresh, empty registry. *)

val counter : t -> ?labels:(string * string) list -> string -> counter
(** [counter t name] finds or creates the counter [name] with the given
    labels (sorted internally; default none).  Names and label keys must
    match [[a-zA-Z_][a-zA-Z0-9_]*] (the OpenMetrics charset) and a name
    must keep one instrument kind across the registry.
    @raise Invalid_argument on a malformed name or a kind clash. *)

val gauge : t -> ?labels:(string * string) list -> string -> gauge
(** Find or create a gauge; same rules as {!counter}. *)

val histogram : t -> ?labels:(string * string) list -> string -> histogram
(** Find or create a histogram; same rules as {!counter}. *)

val inc : counter -> int -> unit
(** Add a (non-negative) amount to a counter. *)

val set_gauge : gauge -> int -> unit
(** Set a gauge to a value. *)

val max_gauge : gauge -> int -> unit
(** Raise a gauge to [max current v] — the merge-friendly update. *)

val observe : histogram -> int -> unit
(** Record one value (clamped below at 0) into a histogram. *)

val hist_count : histogram -> int
(** Number of recorded values. *)

val hist_sum : histogram -> int
(** Exact sum of recorded values. *)

val hist_max : histogram -> int
(** Largest recorded value ([0] when empty). *)

val hquantile : histogram -> float -> int
(** [hquantile h q] estimates the [q]-quantile ([0 < q <= 1]) by
    nearest rank: the upper bound of the bucket holding the
    [ceil (q * count)]-th smallest value, clamped to {!hist_max}.
    Relative error is at most [2^-5]; [0] when empty. *)

val merge : into:t -> t -> unit
(** Fold [src] into [into]: counters and histograms add bucket-wise,
    gauges take the maximum; instruments missing from [into] are
    created.  Commutative and associative up to rendering (which sorts).
    @raise Invalid_argument if a name is used with different kinds. *)

(** {2 Ambient lookup (Domain.DLS)} *)

val bind : Exsel_sim.Runtime.t -> t -> unit
(** Register [t] as the metrics registry of this runtime on the calling
    domain.  At most one registry per runtime: re-binding replaces. *)

val unbind : Exsel_sim.Runtime.t -> unit
(** Remove the runtime's binding on the calling domain, if any. *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** [with_ambient t f] runs [f] with [t] as the calling domain's default
    registry (a stack: nested scopes shadow, and the previous default is
    restored even if [f] raises). *)

val ambient : unit -> t option
(** The registry instrumented code should record into, resolved in
    order: the {!bind}-ing of the current process's owning runtime
    ({!Exsel_sim.Runtime.current_proc} → {!Exsel_sim.Runtime.owner}),
    else the innermost {!with_ambient} scope of the calling domain,
    else [None].  Constant-time-ish; instrumentation sites should treat
    [None] as "recording off". *)

(** {2 Rendering} *)

val to_json : t -> Json.t
(** The [exsel-metrics/1] document:
    [{ schema; counters; gauges; histograms }] where counters/gauges are
    arrays of [{ name; labels; value }] and histograms are arrays of
    [{ name; labels; count; sum; min; max; p50; p90; p99; p999;
    buckets }] with [buckets] an array of [[le, cumulative_count]]
    pairs over the non-empty buckets.  Instruments are sorted by
    (name, labels), so equal registries render byte-identically. *)

val summary_json : t -> Json.t
(** Compact form for event streams: counters and gauges as in
    {!to_json} plus [quantiles] ({!quantiles_json}) — no buckets. *)

val quantiles_json : t -> Json.t
(** Array of [{ name; labels; count; p50; p90; p99; p999 }], one per
    histogram, sorted. *)

val to_openmetrics : t -> string
(** OpenMetrics text exposition: one [# TYPE] block per metric family
    (sorted by name), counters rendered with the [_total] suffix,
    histograms as cumulative [_bucket{le="..."}] series over non-empty
    buckets plus [le="+Inf"], [_sum] and [_count], terminated by
    [# EOF].  Suitable for a Prometheus/OpenMetrics scraper. *)
