module Runtime = Exsel_sim.Runtime

(* Log-bucketed histogram, HDR-style: [sub_bits] sub-buckets per octave.
   Bucket [i < 2 * sub_count] holds exactly the value [i]; above that,
   bucket index = shift * sub_count + (v lsr shift) with
   shift = bitlen v - 1 - sub_bits, giving relative width <= 2^-sub_bits
   per bucket.  A dense int array of ~2048 entries covers all of
   [0, max_int] on 64-bit. *)
let sub_bits = 5

let sub_count = 1 lsl sub_bits

let bit_length v =
  let rec go n v = if v = 0 then n else go (n + 1) (v lsr 1) in
  go 0 v

let bucket_of v =
  let v = if v < 0 then 0 else v in
  if v < 2 * sub_count then v
  else
    let shift = bit_length v - 1 - sub_bits in
    (shift * sub_count) + (v lsr shift)

(* Inclusive upper bound of bucket [i] — the quantile estimate. *)
let bucket_upper i =
  if i < 2 * sub_count then i
  else
    let shift = (i lsr sub_bits) - 1 in
    let top = i - (shift * sub_count) in
    ((top + 1) lsl shift) - 1

type hist = {
  mutable buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
  mutable h_min : int; (* max_int when empty *)
}

type histogram = hist

type counter = int ref

type gauge = int ref

type instrument = Counter of counter | Gauge of gauge | Histogram of hist

type key = string * (string * string) list

type t = {
  tbl : (key, instrument) Hashtbl.t;
  kinds : (string, string) Hashtbl.t; (* name -> kind, for clash detection *)
}

let create () = { tbl = Hashtbl.create 16; kinds = Hashtbl.create 16 }

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let check_name what s =
  if not (valid_name s) then
    invalid_arg (Printf.sprintf "Metrics: invalid %s %S" what s)

let normalize_labels labels =
  List.iter (fun (k, _) -> check_name "label name" k) labels;
  List.sort compare labels

let kind_of = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find_or_create t name labels fresh =
  check_name "metric name" name;
  let key = (name, normalize_labels labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some inst -> inst
  | None ->
      let inst = fresh () in
      (match Hashtbl.find_opt t.kinds name with
      | Some k when k <> kind_of inst ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name k)
      | Some _ -> ()
      | None -> Hashtbl.replace t.kinds name (kind_of inst));
      Hashtbl.replace t.tbl key inst;
      inst

let counter t ?(labels = []) name =
  match find_or_create t name labels (fun () -> Counter (ref 0)) with
  | Counter c -> c
  | inst ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is a %s, not a counter" name (kind_of inst))

let gauge t ?(labels = []) name =
  match find_or_create t name labels (fun () -> Gauge (ref 0)) with
  | Gauge g -> g
  | inst ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is a %s, not a gauge" name (kind_of inst))

let fresh_hist () =
  Histogram
    {
      buckets = Array.make 64 0;
      h_count = 0;
      h_sum = 0;
      h_max = 0;
      h_min = max_int;
    }

let histogram t ?(labels = []) name =
  match find_or_create t name labels fresh_hist with
  | Histogram h -> h
  | inst ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is a %s, not a histogram" name
           (kind_of inst))

let inc c n = c := !c + max 0 n

let set_gauge g v = g := v

let max_gauge g v = if v > !g then g := v

let ensure_capacity h i =
  if i >= Array.length h.buckets then begin
    let bigger = Array.make (max (i + 1) (2 * Array.length h.buckets)) 0 in
    Array.blit h.buckets 0 bigger 0 (Array.length h.buckets);
    h.buckets <- bigger
  end

let observe h v =
  let v = if v < 0 then 0 else v in
  let i = bucket_of v in
  ensure_capacity h i;
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v;
  if v < h.h_min then h.h_min <- v

let hist_count h = h.h_count

let hist_sum h = h.h_sum

let hist_max h = h.h_max

let hist_min h = if h.h_count = 0 then 0 else h.h_min

let hquantile h q =
  if h.h_count = 0 then 0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
    let rank = max 1 (min rank h.h_count) in
    let res = ref h.h_max in
    let cum = ref 0 in
    (try
       for i = 0 to Array.length h.buckets - 1 do
         cum := !cum + h.buckets.(i);
         if !cum >= rank then begin
           res := min h.h_max (bucket_upper i);
           raise Exit
         end
       done
     with Exit -> ());
    !res
  end

let merge ~into src =
  Hashtbl.iter
    (fun (name, labels) inst ->
      match inst with
      | Counter c ->
          let d = counter into ~labels name in
          d := !d + !c
      | Gauge g -> max_gauge (gauge into ~labels name) !g
      | Histogram h ->
          let d = histogram into ~labels name in
          ensure_capacity d (Array.length h.buckets - 1);
          Array.iteri
            (fun i n -> if n > 0 then d.buckets.(i) <- d.buckets.(i) + n)
            h.buckets;
          d.h_count <- d.h_count + h.h_count;
          d.h_sum <- d.h_sum + h.h_sum;
          if h.h_max > d.h_max then d.h_max <- h.h_max;
          if h.h_min < d.h_min then d.h_min <- h.h_min)
    src.tbl

(* ---- Ambient lookup ----------------------------------------------------
   Mirrors Span's per-domain registry: each domain keeps its own runtime
   bindings and scope stack in DLS, so worker domains of Pool.map never
   observe each other's registries. *)

type scope = {
  mutable bound : (Runtime.t * t) list;
  mutable stack : t list;
}

let scope_key =
  Domain.DLS.new_key (fun () -> { bound = []; stack = [] })

let bind rt reg =
  let s = Domain.DLS.get scope_key in
  s.bound <- (rt, reg) :: List.filter (fun (r, _) -> r != rt) s.bound

let unbind rt =
  let s = Domain.DLS.get scope_key in
  s.bound <- List.filter (fun (r, _) -> r != rt) s.bound

let with_ambient reg f =
  let s = Domain.DLS.get scope_key in
  s.stack <- reg :: s.stack;
  Fun.protect
    ~finally:(fun () ->
      match s.stack with [] -> () | _ :: rest -> s.stack <- rest)
    f

let ambient () =
  let s = Domain.DLS.get scope_key in
  let of_stack () = match s.stack with reg :: _ -> Some reg | [] -> None in
  match Runtime.current_proc () with
  | None -> of_stack ()
  | Some p -> (
      let rt = Runtime.owner p in
      match List.find_opt (fun (r, _) -> r == rt) s.bound with
      | Some (_, reg) -> Some reg
      | None -> of_stack ())

(* ---- Rendering --------------------------------------------------------- *)

let sorted_instruments t =
  Hashtbl.fold (fun key inst acc -> (key, inst) :: acc) t.tbl []
  |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let nonempty_buckets h =
  let acc = ref [] in
  for i = Array.length h.buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then acc := (i, h.buckets.(i)) :: !acc
  done;
  !acc

let quantile_fields h =
  [
    ("p50", Json.Int (hquantile h 0.5));
    ("p90", Json.Int (hquantile h 0.9));
    ("p99", Json.Int (hquantile h 0.99));
    ("p999", Json.Int (hquantile h 0.999));
  ]

let scalar_json name labels v =
  Json.Obj
    [ ("name", Json.String name); ("labels", labels_json labels); ("value", Json.Int v) ]

let hist_json ?(buckets = true) name labels h =
  let cum = ref 0 in
  let bucket_rows =
    nonempty_buckets h
    |> List.map (fun (i, n) ->
           cum := !cum + n;
           Json.List [ Json.Int (bucket_upper i); Json.Int !cum ])
  in
  Json.Obj
    ([
       ("name", Json.String name);
       ("labels", labels_json labels);
       ("count", Json.Int h.h_count);
       ("sum", Json.Int h.h_sum);
       ("min", Json.Int (hist_min h));
       ("max", Json.Int h.h_max);
     ]
    @ quantile_fields h
    @ if buckets then [ ("buckets", Json.List bucket_rows) ] else [])

let partition t =
  List.fold_right
    (fun ((name, labels), inst) (cs, gs, hs) ->
      match inst with
      | Counter c -> (scalar_json name labels !c :: cs, gs, hs)
      | Gauge g -> (cs, scalar_json name labels !g :: gs, hs)
      | Histogram h -> (cs, gs, (name, labels, h) :: hs))
    (sorted_instruments t) ([], [], [])

let to_json t =
  let cs, gs, hs = partition t in
  Json.Obj
    [
      ("schema", Json.String "exsel-metrics/1");
      ("counters", Json.List cs);
      ("gauges", Json.List gs);
      ( "histograms",
        Json.List (List.map (fun (n, l, h) -> hist_json n l h) hs) );
    ]

let quantiles_json t =
  let _, _, hs = partition t in
  Json.List
    (List.map
       (fun (name, labels, h) ->
         Json.Obj
           ([
              ("name", Json.String name);
              ("labels", labels_json labels);
              ("count", Json.Int h.h_count);
            ]
           @ quantile_fields h))
       hs)

let summary_json t =
  let cs, gs, _ = partition t in
  Json.Obj
    [
      ("counters", Json.List cs);
      ("gauges", Json.List gs);
      ("quantiles", quantiles_json t);
    ]

(* OpenMetrics text exposition.  Label values may hold arbitrary bytes;
   the format requires escaping backslash, double-quote and newline. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let to_openmetrics t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* Group the sorted instruments into per-name families: sorting makes
     same-name instruments adjacent, so one pass suffices. *)
  let insts = sorted_instruments t in
  let seen_type = Hashtbl.create 16 in
  List.iter
    (fun ((name, labels), inst) ->
      if not (Hashtbl.mem seen_type name) then begin
        Hashtbl.replace seen_type name ();
        add "# TYPE %s %s\n" name (kind_of inst)
      end;
      let lbl = render_labels labels in
      match inst with
      | Counter c -> add "%s_total%s %d\n" name lbl !c
      | Gauge g -> add "%s%s %d\n" name lbl !g
      | Histogram h ->
          let cum = ref 0 in
          List.iter
            (fun (i, n) ->
              cum := !cum + n;
              let le = ("le", string_of_int (bucket_upper i)) in
              add "%s_bucket%s %d\n" name (render_labels (labels @ [ le ])) !cum)
            (nonempty_buckets h);
          add "%s_bucket%s %d\n" name
            (render_labels (labels @ [ ("le", "+Inf") ]))
            h.h_count;
          add "%s_sum%s %d\n" name lbl h.h_sum;
          add "%s_count%s %d\n" name lbl h.h_count)
    insts;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
