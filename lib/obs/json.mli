(** Dependency-free JSON encoding for the observability layer.

    The bench trajectory ([BENCH_*.json]), the CLI's [--json] mode and the
    test suite all consume this representation; it is deliberately tiny —
    a value type, an escaping-correct serializer, and renderers for the
    simulator's {!Exsel_sim.Metrics.summary}.  Emitted documents are
    strict RFC 8259 JSON: strings are escaped, non-finite floats are
    rendered as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering for human eyes. *)

val output : out_channel -> t -> unit
(** Write the compact rendering followed by a newline. *)

val of_summary : Exsel_sim.Metrics.summary -> t
(** Render an execution summary as an object with the fields
    [processes completed crashed max_steps total_steps registers reads
    writes]. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks a field up; [None] on absent keys or
    non-objects.  Convenience for tests and consumers. *)
