(** Algorithm phase spans.

    A span brackets a paper-level phase of an algorithm — one
    [Majority(ℓ,N)] traversal, one Basic-Rename stage, one PolyLog epoch,
    one doubling level — and measures the local steps and register
    traffic the issuing process spent inside it.  Spans nest: a PolyLog
    epoch contains Basic stages which contain Majority traversals, so
    each process produces a span {e tree}.

    Label convention: [<algorithm>:<key>=<value>[:<key>=<value>…]], e.g.
    ["majority:budget=8"], ["basic:stage=3:budget=2"],
    ["polylog:epoch=1"], ["efficient:phase=final"],
    ["adaptive:level=2"], ["adaptive:reserve"].

    Instrumentation is ambient: algorithm code calls {!wrap} (or
    {!enter}/{!exit}) unconditionally; the calls are no-ops — one
    domain-local lookup — unless a sink is {!attach}ed for the issuing
    process's runtime.  Attribution uses
    {!Exsel_sim.Runtime.current_proc} plus {!Exsel_sim.Runtime.owner},
    so spans opened in process bodies land on the right process {e of
    the right runtime} even though the harness never threads a handle
    through the algorithms — several runtimes may be live at once (one
    nested in another's proc body, or concurrently on different domains)
    and each records only its own spans.  The sink registry is
    domain-local ([Domain.DLS], DESIGN.md §10): attach and record on the
    same domain.  Attach the sink {e before} spawning: bodies run to
    their first suspension at spawn time and may already open spans
    there.

    A crash unwinds the process fiber through {!wrap}'s protection, so
    crashed spans are closed (and marked incomplete where the unwind
    skipped them); spans left open at {!per_process}/{!aggregate} time
    are closed as incomplete. *)

type t
(** A span sink bound to one runtime. *)

type node = {
  label : string;
  pid : int;
  start : int;  (** global commit clock ({!Runtime.commits}) at open *)
  mutable stop : int;  (** commit clock at close (= [start] until closed) *)
  mutable steps : int;  (** committed ops of the process inside the span *)
  mutable reads : int;
  mutable writes : int;
  mutable complete : bool;  (** [false] if closed by crash or report *)
  mutable children_rev : node list;  (** sub-spans, reverse order *)
}

val children : node -> node list
(** Sub-spans in open order. *)

type agg = {
  agg_label : string;
  count : int;  (** spans with this label, across all processes *)
  incomplete : int;
  steps_total : int;
  steps_max : int;
  agg_reads : int;
  agg_writes : int;
}

(** {2 Sink lifecycle (harness side)} *)

val attach : Exsel_sim.Runtime.t -> t
(** Create a sink for this runtime and install it in the current
    domain's registry (replacing any previous sink {e of the same
    runtime}; sinks of other runtimes are untouched). *)

val detach : t -> unit
(** Remove the sink from the registry; its recorded spans remain
    readable.  Other runtimes' sinks are untouched.  Idempotent. *)

(** {2 Recording (algorithm side)} *)

val wrap : string -> (unit -> 'a) -> 'a
(** [wrap label f] runs [f] inside a span.  Exception- and crash-safe;
    free when no sink is attached. *)

val enter : string -> unit
(** Open a span explicitly.  Prefer {!wrap}. *)

val exit : unit -> unit
(** Close the innermost open span of the current process.  No-op with no
    sink or no open span. *)

(** {2 Reports} *)

val per_process : t -> (int * string * node list) list
(** [(pid, process name, span roots in open order)] per process that
    recorded at least one span. *)

val aggregate : t -> agg list
(** Per-label totals over every recorded span (nested spans count their
    own traffic, which their ancestors also include), sorted by label. *)

val to_json : t -> Json.t
(** Span trees: [{"processes": [{"pid", "proc", "spans": [...]}]}]. *)

val aggregate_to_json : agg list -> Json.t
(** Aggregates as JSON: one object per label with count, step and
    read/write totals. *)

val pp_aggregate : Format.formatter -> agg list -> unit
(** One line per label: count, steps (total/max), reads/writes. *)
