module Trace = Exsel_sim.Trace

(* Distinct (pid, proc_name) pairs in pid order, from the events alone —
   a trace always opens with one Spawn per process (Trace.attach
   synthesizes them), but scan every event so partial traces work too. *)
let processes_of events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.event) ->
      if not (Hashtbl.mem tbl e.pid) then Hashtbl.add tbl e.pid e.proc_name)
    events;
  Hashtbl.fold (fun pid name acc -> (pid, name) :: acc) tbl [] |> List.sort compare

let kind_string = function
  | Trace.Read _ -> "read"
  | Trace.Write _ -> "write"
  | Trace.Spawn -> "spawn"
  | Trace.Done -> "done"
  | Trace.Crash -> "crash"

let event_to_json (e : Trace.event) =
  let base =
    [
      ("i", Json.Int e.index);
      ("t", Json.Int e.time);
      ("pid", Json.Int e.pid);
      ("proc", Json.String e.proc_name);
      ("kind", Json.String (kind_string e.kind));
    ]
  in
  let reg_fields =
    match e.kind with
    | Trace.Read { reg; reg_name; value } | Trace.Write { reg; reg_name; value } ->
        [
          ("reg", Json.Int reg);
          ("reg_name", Json.String reg_name);
          ("value", Json.String value);
        ]
    | Trace.Spawn | Trace.Done | Trace.Crash -> []
  in
  Json.Obj (base @ reg_fields @ [ ("step", Json.Int e.step) ])

let to_json ?label events =
  let label_field =
    match label with None -> [] | Some l -> [ ("label", Json.String l) ]
  in
  Json.Obj
    ([ ("schema", Json.String "exsel-trace/1") ]
    @ label_field
    @ [
        ("length", Json.Int (List.length events));
        ( "processes",
          Json.List
            (List.map
               (fun (pid, name) ->
                 Json.Obj [ ("pid", Json.Int pid); ("proc", Json.String name) ])
               (processes_of events)) );
        ("events", Json.List (List.map event_to_json events));
      ])

(* {2 Chrome trace-event export}

   Everything lives in Chrome process 1; the simulator pid becomes the
   Chrome thread id, so Perfetto renders one horizontal track per
   process.  The commit clock scales by [us_per_commit] (default
   1 commit = 1000 µs; dense campaign traces stay readable at smaller
   scales). *)

let default_us_per_commit = 1000
let chrome_pid = Json.Int 1

let instant_name (e : Trace.event) =
  match e.kind with
  | Trace.Read { reg_name; value; _ } -> Printf.sprintf "read %s=%s" reg_name value
  | Trace.Write { reg_name; value; _ } ->
      Printf.sprintf "write %s:=%s" reg_name value
  | Trace.Spawn -> "spawn"
  | Trace.Done -> "done"
  | Trace.Crash -> "crash"

let instant_event ~us_per_commit (e : Trace.event) =
  let args =
    match e.kind with
    | Trace.Read { reg; reg_name; value } | Trace.Write { reg; reg_name; value } ->
        [
          ("reg", Json.Int reg);
          ("reg_name", Json.String reg_name);
          ("value", Json.String value);
          ("step", Json.Int e.step);
        ]
    | Trace.Spawn | Trace.Done | Trace.Crash -> [ ("step", Json.Int e.step) ]
  in
  Json.Obj
    [
      ("name", Json.String (instant_name e));
      ("ph", Json.String "i");
      ("s", Json.String "t");
      ("ts", Json.Int (e.time * us_per_commit));
      ("pid", chrome_pid);
      ("tid", Json.Int e.pid);
      ("args", Json.Obj args);
    ]

let rec span_events ~us_per_commit acc (n : Span.node) =
  let acc =
    Json.Obj
      [
        ("name", Json.String n.Span.label);
        ("ph", Json.String "X");
        ("ts", Json.Int (n.Span.start * us_per_commit));
        (* zero-width phases still get a visible sliver *)
        ("dur", Json.Int (max 1 ((n.Span.stop - n.Span.start) * us_per_commit)));
        ("pid", chrome_pid);
        ("tid", Json.Int n.Span.pid);
        ( "args",
          Json.Obj
            [
              ("steps", Json.Int n.Span.steps);
              ("reads", Json.Int n.Span.reads);
              ("writes", Json.Int n.Span.writes);
              ("complete", Json.Bool n.Span.complete);
            ] );
      ]
    :: acc
  in
  List.fold_left (span_events ~us_per_commit) acc (Span.children n)

let metadata_events processes =
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", chrome_pid);
      ("args", Json.Obj [ ("name", Json.String "exsel simulator") ]);
    ]
  :: List.concat_map
       (fun (pid, name) ->
         [
           Json.Obj
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", chrome_pid);
               ("tid", Json.Int pid);
               ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "%s (p%d)" name pid)) ]);
             ];
           Json.Obj
             [
               ("name", Json.String "thread_sort_index");
               ("ph", Json.String "M");
               ("pid", chrome_pid);
               ("tid", Json.Int pid);
               ("args", Json.Obj [ ("sort_index", Json.Int pid) ]);
             ];
         ])
       processes

let chrome ?spans ?(us_per_commit = default_us_per_commit) events =
  if us_per_commit <= 0 then
    invalid_arg "Trace_export.chrome: us_per_commit must be positive";
  let duration_events =
    match spans with
    | None -> []
    | Some sink ->
        List.concat_map
          (fun (_pid, _name, roots) ->
            List.fold_left (span_events ~us_per_commit) [] roots)
          (Span.per_process sink)
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ms");
      ( "traceEvents",
        Json.List
          (metadata_events (processes_of events)
          @ duration_events
          @ List.map (instant_event ~us_per_commit) events) );
    ]

let write_file path json =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Json.output oc json)

(* {2 Wall-clock (native) mode}

   The native backend has no commit clock: its only timeline is the
   monotonic wall clock stamped by the engine's flight recorder.  The
   track unit changes accordingly — one track per *domain* (worker),
   not per logical process — and a rename span is attributed to the
   worker that executed it.  Timestamps are nanoseconds relative to the
   run start (small, monotone integers). *)

module Native = struct
  type span = {
    sp_track : int;
    sp_name : string;
    sp_start_ns : int;
    sp_stop_ns : int;
  }

  type doc = {
    nd_label : string option;
    nd_domains : int;
    nd_spawn_ns : int;
    nd_join_ns : int;
    nd_wall_ns : int;
    nd_spans : span list;
  }

  (* Per-worker task counts and busy time, covering every track
     [0 .. domains-1] (idle workers get a zero row — the validator and
     the Chrome metadata both want one entry per domain). *)
  let worker_rows d =
    let tasks = Array.make d.nd_domains 0 in
    let busy = Array.make d.nd_domains 0 in
    List.iter
      (fun s ->
        if s.sp_track >= 0 && s.sp_track < d.nd_domains then begin
          tasks.(s.sp_track) <- tasks.(s.sp_track) + 1;
          busy.(s.sp_track) <- busy.(s.sp_track) + (s.sp_stop_ns - s.sp_start_ns)
        end)
      d.nd_spans;
    List.init d.nd_domains (fun w ->
        let util =
          if d.nd_wall_ns <= 0 then 0
          else
            int_of_float
              (float_of_int busy.(w) *. 1_000_000. /. float_of_int d.nd_wall_ns)
        in
        Json.Obj
          [
            ("worker", Json.Int w);
            ("tasks", Json.Int tasks.(w));
            ("busy_ns", Json.Int busy.(w));
            ("utilization_ppm", Json.Int util);
          ])

  let span_json s =
    Json.Obj
      [
        ("name", Json.String s.sp_name);
        ("worker", Json.Int s.sp_track);
        ("start_ns", Json.Int s.sp_start_ns);
        ("stop_ns", Json.Int s.sp_stop_ns);
      ]

  let to_json d =
    let label_field =
      match d.nd_label with None -> [] | Some l -> [ ("label", Json.String l) ]
    in
    Json.Obj
      ([ ("schema", Json.String "exsel-native-trace/1") ]
      @ label_field
      @ [
          ("clock", Json.String "wall_ns");
          ("domains", Json.Int d.nd_domains);
          ("tasks", Json.Int (List.length d.nd_spans));
          ("spawn_ns", Json.Int d.nd_spawn_ns);
          ("join_ns", Json.Int d.nd_join_ns);
          ("wall_ns", Json.Int d.nd_wall_ns);
          ("workers", Json.List (worker_rows d));
          ("spans", Json.List (List.map span_json d.nd_spans));
        ])

  (* Chrome timestamps are microseconds; sub-microsecond tasks keep a
     1 µs sliver so they stay visible in Perfetto. *)
  let us ns = ns / 1000

  let chrome_span s =
    Json.Obj
      [
        ("name", Json.String s.sp_name);
        ("ph", Json.String "X");
        ("ts", Json.Int (us s.sp_start_ns));
        ("dur", Json.Int (max 1 (us (s.sp_stop_ns - s.sp_start_ns))));
        ("pid", chrome_pid);
        ("tid", Json.Int s.sp_track);
        ( "args",
          Json.Obj
            [
              ("start_ns", Json.Int s.sp_start_ns);
              ("stop_ns", Json.Int s.sp_stop_ns);
              ("dur_ns", Json.Int (s.sp_stop_ns - s.sp_start_ns));
            ] );
      ]

  let overhead_span ~name ~tid ~start_ns ~dur_ns =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "X");
        ("ts", Json.Int (us start_ns));
        ("dur", Json.Int (max 1 (us dur_ns)));
        ("pid", chrome_pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("dur_ns", Json.Int dur_ns) ]);
      ]

  let chrome d =
    let process_label =
      match d.nd_label with
      | None -> "exsel native"
      | Some l -> Printf.sprintf "exsel native (%s)" l
    in
    let metadata =
      Json.Obj
        [
          ("name", Json.String "process_name");
          ("ph", Json.String "M");
          ("pid", chrome_pid);
          ("args", Json.Obj [ ("name", Json.String process_label) ]);
        ]
      :: List.concat_map
           (fun w ->
             [
               Json.Obj
                 [
                   ("name", Json.String "thread_name");
                   ("ph", Json.String "M");
                   ("pid", chrome_pid);
                   ("tid", Json.Int w);
                   ( "args",
                     Json.Obj
                       [
                         ( "name",
                           Json.String
                             (if w = 0 then "domain 0 (caller)"
                              else Printf.sprintf "domain %d" w) );
                       ] );
                 ];
               Json.Obj
                 [
                   ("name", Json.String "thread_sort_index");
                   ("ph", Json.String "M");
                   ("pid", chrome_pid);
                   ("tid", Json.Int w);
                   ("args", Json.Obj [ ("sort_index", Json.Int w) ]);
                 ];
             ])
           (List.init d.nd_domains Fun.id)
    in
    let overheads =
      (if d.nd_spawn_ns > 0 then
         [
           overhead_span ~name:"domain-spawn" ~tid:0 ~start_ns:0
             ~dur_ns:d.nd_spawn_ns;
         ]
       else [])
      @
      if d.nd_join_ns > 0 then
        [
          overhead_span ~name:"join" ~tid:0
            ~start_ns:(max 0 (d.nd_wall_ns - d.nd_join_ns))
            ~dur_ns:d.nd_join_ns;
        ]
      else []
    in
    Json.Obj
      [
        ("displayTimeUnit", Json.String "ms");
        ( "traceEvents",
          Json.List (metadata @ overheads @ List.map chrome_span d.nd_spans) );
      ]
end
