(** Per-register access profiler.

    Attaches to a {!Exsel_sim.Runtime} through the public
    [on_commit]/[pending] API — no simulator cooperation needed — and
    records, per register id:

    - committed reads and writes,
    - the number of {e distinct} writer processes (the write-contention
      measure of Alistarh–Gelashvili–Nadiradze's lower bounds), and
    - the {e peak pending contention}: the maximum number of processes
      that were simultaneously suspended on the register, sampled exactly
      at every commit boundary (the pending set only changes at spawns
      and commits).

    It also keeps the per-process step histogram, giving the paper's
    local-step and register-count measures in one report.

    Attach discipline: call {!attach} {e after} spawning the contending
    processes and {e before} running the scheduler — the initial scan
    then captures the full pre-run pending burst.  A process spawned
    after attach is accounted from its first commit (its pre-commit
    pending operation is back-credited exactly at that commit).  A
    process that crashes while suspended keeps contributing its pending
    operation to the live count until the report; none of the
    experiment paths crash profiled runs, and peaks recorded before the
    crash are always exact.

    Domain safety: unlike {!Span}, a probe has {e no} ambient state —
    every counter lives in the explicitly-threaded [t] hooked onto one
    runtime — so probes on different runtimes never interact, whether
    the runtimes share a domain or run concurrently on several
    (DESIGN.md §10).  A probe must be driven from the domain that runs
    its runtime. *)

type reg_profile = {
  id : int;  (** register id within the memory *)
  reads : int;  (** committed reads *)
  writes : int;  (** committed writes *)
  writers : int;  (** distinct processes that committed a write *)
  peak_pending : int;  (** max processes simultaneously suspended on it *)
}

type report = {
  registers : int;
      (** registers allocated in the memory — equals the [registers]
          field of {!Exsel_sim.Metrics.summary} for the same run *)
  touched : int;  (** registers with at least one committed access *)
  max_writers : int;  (** max {!reg_profile.writers} over all registers *)
  peak_pending : int;  (** max {!reg_profile.peak_pending} over all registers *)
  profiles : reg_profile list;  (** touched registers, ascending id *)
  steps_histogram : (int * int) list;
      (** (local steps, number of processes), ascending steps *)
  processes : (int * string * int) list;  (** (pid, name, steps) per process *)
}

type t

val attach : Exsel_sim.Runtime.t -> t
(** Install the profiler: scan the current pending set, then observe
    every commit.  Constant work per commit. *)

val report : t -> report
(** Snapshot the profile (the probe keeps observing afterwards). *)

val to_json : report -> Json.t
(** Contention profile as an [exsel-probe/1] document ([schema] field
    included, like every other JSON artifact): the report's totals
    ([registers], [touched], [max_writers], [peak_pending]) plus
    [profiles] (ascending register id), [steps_histogram] (ascending
    steps — deterministically ordered, so equal reports render
    byte-identically) and [processes] (ascending pid). *)

val pp : Format.formatter -> report -> unit
(** Human-readable rendering: header line plus one line per hot register
    (sorted by peak pending contention, then writes). *)
