type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf f =
  if Float.is_finite f then begin
    (* %.12g keeps round trips faithful while avoiding 0.1000000000001
       noise; JSON numbers must carry a digit, not an OCaml "1." *)
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s;
    if String.for_all (fun c -> c = '-' || (c >= '0' && c <= '9')) s then
      Buffer.add_string buf ".0"
  end
  else Buffer.add_string buf "null"

let rec write buf ~indent ~level v =
  let nl sep lvl =
    if indent = 0 then Buffer.add_string buf sep
    else begin
      Buffer.add_string buf (String.trim sep);
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (indent * lvl) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | String s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          nl (if i = 0 then "" else ",") (level + 1);
          write buf ~indent ~level:(level + 1) item)
        items;
      nl "" level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          nl (if i = 0 then "" else ",") (level + 1);
          escape_to buf k;
          Buffer.add_string buf (if indent = 0 then ":" else ": ");
          write buf ~indent ~level:(level + 1) item)
        fields;
      nl "" level;
      Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 1024 in
  write buf ~indent ~level:0 v;
  Buffer.contents buf

let to_string v = render ~indent:0 v
let to_string_pretty v = render ~indent:2 v

let output oc v =
  output_string oc (to_string v);
  output_char oc '\n'

let of_summary (s : Exsel_sim.Metrics.summary) =
  Obj
    [
      ("processes", Int s.Exsel_sim.Metrics.processes);
      ("completed", Int s.Exsel_sim.Metrics.completed);
      ("crashed", Int s.Exsel_sim.Metrics.crashed);
      ("max_steps", Int s.Exsel_sim.Metrics.max_steps);
      ("total_steps", Int s.Exsel_sim.Metrics.total_steps);
      ("registers", Int s.Exsel_sim.Metrics.registers);
      ("reads", Int s.Exsel_sim.Metrics.reads);
      ("writes", Int s.Exsel_sim.Metrics.writes);
    ]

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
