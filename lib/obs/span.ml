module Runtime = Exsel_sim.Runtime

type node = {
  label : string;
  pid : int;
  start : int;
  mutable stop : int;
  mutable steps : int;
  mutable reads : int;
  mutable writes : int;
  mutable complete : bool;
  mutable children_rev : node list;
}

let children n = List.rev n.children_rev

type agg = {
  agg_label : string;
  count : int;
  incomplete : int;
  steps_total : int;
  steps_max : int;
  agg_reads : int;
  agg_writes : int;
}

type frame = {
  node : node;
  proc : Runtime.proc;
  s0 : int;
  mutable r0 : int;
  mutable w0 : int;
}

(* [Runtime.commit] resumes the fiber before firing the commit hooks, so
   a span opened or closed during that resume sees read/write counters
   that lag the in-flight operation by exactly one (steps do not lag:
   they are bumped before the resume).  Each lagging open/close registers
   a fixup that the same commit's hook — which fires as soon as the
   resume returns — drains with the operation's kind. *)
type fixup = Fix_open of frame | Fix_closed of node

type t = {
  rt : Runtime.t;
  mutable reads_of : int array;  (* pid -> committed reads *)
  mutable writes_of : int array;
  mutable stacks : frame list array;  (* pid -> open frames, innermost first *)
  mutable roots_rev : node list array;  (* pid -> closed root spans *)
  mutable fixups : fixup list array;  (* pid -> lag corrections to drain *)
}

let grow t pid =
  let n = pid + 1 in
  let extend arr fill =
    if n <= Array.length arr then arr
    else begin
      let bigger = Array.make (max n (2 * Array.length arr)) fill in
      Array.blit arr 0 bigger 0 (Array.length arr);
      bigger
    end
  in
  t.reads_of <- extend t.reads_of 0;
  t.writes_of <- extend t.writes_of 0;
  t.stacks <- extend t.stacks [];
  t.roots_rev <- extend t.roots_rev [];
  t.fixups <- extend t.fixups []

(* Ambient sink registry, one per domain ([Domain.DLS]) and within a
   domain one sink per runtime.  Recording calls ({!wrap} etc.) look the
   sink up by the *owner* of the currently-active process, so two live
   runtimes — one constructed inside the other's proc body, or running
   concurrently on separate domains — never cross-attribute spans, and
   detaching an inner sink cannot knock out an outer one. *)
let installed_key : t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let sink_for rt =
  List.find_opt (fun s -> s.rt == rt) !(Domain.DLS.get installed_key)

let attach rt =
  let t =
    {
      rt;
      reads_of = Array.make 16 0;
      writes_of = Array.make 16 0;
      stacks = Array.make 16 [];
      roots_rev = Array.make 16 [];
      fixups = Array.make 16 [];
    }
  in
  Runtime.on_commit rt (fun p op ->
      let pid = Runtime.pid p in
      grow t pid;
      let is_read = match op with Runtime.Read _ -> true | Runtime.Write _ -> false in
      (match t.fixups.(pid) with
      | [] -> ()
      | fixes ->
          t.fixups.(pid) <- [];
          List.iter
            (fun fix ->
              match (fix, is_read) with
              (* the lagging op predates the span: fold it into the baseline *)
              | Fix_open f, true -> f.r0 <- f.r0 + 1
              | Fix_open f, false -> f.w0 <- f.w0 + 1
              (* the lagging op is the span's own last step: add it back *)
              | Fix_closed n, true -> n.reads <- n.reads + 1
              | Fix_closed n, false -> n.writes <- n.writes + 1)
            fixes);
      if is_read then t.reads_of.(pid) <- t.reads_of.(pid) + 1
      else t.writes_of.(pid) <- t.writes_of.(pid) + 1);
  let reg = Domain.DLS.get installed_key in
  (* at most one sink per runtime: re-attaching replaces the old one *)
  reg := t :: List.filter (fun s -> s.rt != rt) !reg;
  t

let detach t =
  let reg = Domain.DLS.get installed_key in
  reg := List.filter (fun s -> s != t) !reg

let push t p label =
  let pid = Runtime.pid p in
  grow t pid;
  let clock = Runtime.commits t.rt in
  let node =
    {
      label;
      pid;
      start = clock;
      stop = clock;
      steps = 0;
      reads = 0;
      writes = 0;
      complete = false;
      children_rev = [];
    }
  in
  let frame =
    { node; proc = p; s0 = Runtime.steps p; r0 = t.reads_of.(pid); w0 = t.writes_of.(pid) }
  in
  if frame.s0 > t.reads_of.(pid) + t.writes_of.(pid) then
    t.fixups.(pid) <- Fix_open frame :: t.fixups.(pid);
  t.stacks.(pid) <- frame :: t.stacks.(pid);
  node

let close t frame ~complete =
  let pid = frame.node.pid in
  frame.node.stop <- Runtime.commits t.rt;
  frame.node.steps <- Runtime.steps frame.proc - frame.s0;
  frame.node.reads <- t.reads_of.(pid) - frame.r0;
  frame.node.writes <- t.writes_of.(pid) - frame.w0;
  frame.node.complete <- complete;
  if frame.node.steps > frame.node.reads + frame.node.writes then
    t.fixups.(pid) <- Fix_closed frame.node :: t.fixups.(pid);
  match t.stacks.(pid) with
  | parent :: _ -> parent.node.children_rev <- frame.node :: parent.node.children_rev
  | [] -> t.roots_rev.(pid) <- frame.node :: t.roots_rev.(pid)

(* Pop frames down to and including [node]; frames above it (leaked by an
   unmatched [enter]) are closed as incomplete. *)
let pop_until t pid node ~complete =
  let rec go () =
    match t.stacks.(pid) with
    | [] -> ()
    | frame :: rest ->
        t.stacks.(pid) <- rest;
        if frame.node == node then close t frame ~complete
        else begin
          close t frame ~complete:false;
          go ()
        end
  in
  go ()

let pop_one t pid =
  match t.stacks.(pid) with
  | [] -> ()
  | frame :: rest ->
      t.stacks.(pid) <- rest;
      close t frame ~complete:true

let wrap label f =
  match Runtime.current_proc () with
  | None -> f ()
  | Some p -> (
      match sink_for (Runtime.owner p) with
      | None -> f ()
      | Some t -> (
          let node = push t p label in
          (* not [Fun.protect]: a crash unwind must mark the span
             incomplete, which the finalizer could not distinguish *)
          match f () with
          | v ->
              pop_until t (Runtime.pid p) node ~complete:true;
              v
          | exception e ->
              pop_until t (Runtime.pid p) node ~complete:false;
              raise e))

let enter label =
  match Runtime.current_proc () with
  | None -> ()
  | Some p -> (
      match sink_for (Runtime.owner p) with
      | None -> ()
      | Some t -> ignore (push t p label))

let exit () =
  match Runtime.current_proc () with
  | None -> ()
  | Some p -> (
      match sink_for (Runtime.owner p) with
      | None -> ()
      | Some t -> pop_one t (Runtime.pid p))

(* Close anything still open (crashed or abandoned processes) so reports
   see every span. *)
let finalize t =
  Array.iteri
    (fun pid stack ->
      List.iter
        (fun frame ->
          t.stacks.(pid) <- List.tl t.stacks.(pid);
          close t frame ~complete:false)
        stack)
    t.stacks

let per_process t =
  finalize t;
  let name_of =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun p -> Hashtbl.replace tbl (Runtime.pid p) (Runtime.proc_name p))
      (Runtime.procs t.rt);
    fun pid -> Option.value ~default:(Printf.sprintf "p%d" pid) (Hashtbl.find_opt tbl pid)
  in
  let out = ref [] in
  for pid = Array.length t.roots_rev - 1 downto 0 do
    match t.roots_rev.(pid) with
    | [] -> ()
    | roots_rev -> out := (pid, name_of pid, List.rev roots_rev) :: !out
  done;
  !out

let aggregate t =
  finalize t;
  let tbl : (string, agg) Hashtbl.t = Hashtbl.create 32 in
  let rec visit n =
    let prev =
      Option.value
        ~default:
          {
            agg_label = n.label;
            count = 0;
            incomplete = 0;
            steps_total = 0;
            steps_max = 0;
            agg_reads = 0;
            agg_writes = 0;
          }
        (Hashtbl.find_opt tbl n.label)
    in
    Hashtbl.replace tbl n.label
      {
        prev with
        count = prev.count + 1;
        incomplete = (prev.incomplete + if n.complete then 0 else 1);
        steps_total = prev.steps_total + n.steps;
        steps_max = max prev.steps_max n.steps;
        agg_reads = prev.agg_reads + n.reads;
        agg_writes = prev.agg_writes + n.writes;
      };
    List.iter visit n.children_rev
  in
  Array.iter (fun roots -> List.iter visit roots) t.roots_rev;
  Hashtbl.fold (fun _ a acc -> a :: acc) tbl []
  |> List.sort (fun a b -> compare a.agg_label b.agg_label)

let rec node_to_json n =
  Json.Obj
    [
      ("label", Json.String n.label);
      ("t0", Json.Int n.start);
      ("t1", Json.Int n.stop);
      ("steps", Json.Int n.steps);
      ("reads", Json.Int n.reads);
      ("writes", Json.Int n.writes);
      ("complete", Json.Bool n.complete);
      ("children", Json.List (List.map node_to_json (children n)));
    ]

let to_json t =
  Json.Obj
    [
      ( "processes",
        Json.List
          (List.map
             (fun (pid, name, roots) ->
               Json.Obj
                 [
                   ("pid", Json.Int pid);
                   ("proc", Json.String name);
                   ("spans", Json.List (List.map node_to_json roots));
                 ])
             (per_process t)) );
    ]

let aggregate_to_json aggs =
  Json.List
    (List.map
       (fun a ->
         Json.Obj
           [
             ("label", Json.String a.agg_label);
             ("count", Json.Int a.count);
             ("incomplete", Json.Int a.incomplete);
             ("steps_total", Json.Int a.steps_total);
             ("steps_max", Json.Int a.steps_max);
             ("reads", Json.Int a.agg_reads);
             ("writes", Json.Int a.agg_writes);
           ])
       aggs)

let pp_aggregate ppf aggs =
  Format.fprintf ppf "spans: %d labels@." (List.length aggs);
  List.iter
    (fun a ->
      Format.fprintf ppf "  %-36s count=%-4d steps=%d/max %d  r/w=%d/%d%s@."
        a.agg_label a.count a.steps_total a.steps_max a.agg_reads a.agg_writes
        (if a.incomplete > 0 then Printf.sprintf "  (%d incomplete)" a.incomplete else ""))
    aggs
