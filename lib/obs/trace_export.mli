(** Trace export: [exsel-trace/1] JSON and Chrome trace-event JSON.

    Two serializations of a value-carrying {!Exsel_sim.Trace}:

    - {!to_json} emits the canonical machine-readable document (schema
      [exsel-trace/1]): every event with its index, commit clock, process,
      kind, register and rendered value — the artifact CI archives next to
      a counterexample.
    - {!chrome} emits Chrome trace-event JSON loadable in Perfetto
      ([ui.perfetto.dev]) or [chrome://tracing]: one track (thread) per
      process, commits and lifecycle transitions as instant events, and —
      when a {!Span} sink is supplied — algorithm phases as duration
      events on the same tracks.

    Timestamps: the simulator's only clock is the global commit counter
    ({!Exsel_sim.Runtime.commits}).  Chrome timestamps are microseconds,
    so one commit maps to 1000 µs ("1 ms per commit") — zoomable in
    Perfetto without sub-microsecond rounding artifacts.  Spans record the
    same clock, so phase bars align with the commits they cover. *)

module Trace = Exsel_sim.Trace

val to_json : ?label:string -> Trace.event list -> Json.t
(** [exsel-trace/1] document:
    [{ schema; label?; length; processes: [{pid; proc}];
       events: [{i; t; pid; proc; kind; reg?; reg_name?; value?; step}] }].
    [kind] is one of ["read"], ["write"], ["spawn"], ["done"], ["crash"];
    the register fields are present only on reads/writes. *)

val chrome : ?spans:Span.t -> ?us_per_commit:int -> Trace.event list -> Json.t
(** Chrome trace-event document ([{displayTimeUnit; traceEvents}]):
    process/thread metadata records naming one track per pid, ["i"]
    (instant) events for every trace event, and — with [?spans] — ["X"]
    (complete) events for every closed span node.  All events live in
    Chrome pid 1; the simulator pid becomes the Chrome tid.
    [us_per_commit] (default 1000) scales the commit clock to trace
    microseconds; pick a smaller scale to keep dense campaign traces
    readable in Perfetto.
    @raise Invalid_argument if [us_per_commit <= 0]. *)

val write_file : string -> Json.t -> unit
(** Serialize compactly to a file (trailing newline included). *)

(** Wall-clock trace export for the native backend (DESIGN.md §13).

    The simulator's exports above are commit-clock; the native engine's
    flight recorder stamps real monotonic nanoseconds instead, and the
    track unit changes from logical process to {e domain}: one track per
    pool worker, each rename span attributed to the worker that executed
    it.  All timestamps are nanoseconds relative to the engine run
    start, so they are small, non-negative, and monotone per worker. *)
module Native : sig
  type span = {
    sp_track : int;  (** executing worker, [0 .. domains-1] *)
    sp_name : string;  (** task name, e.g. ["p3"] *)
    sp_start_ns : int;  (** relative to the run start *)
    sp_stop_ns : int;
  }

  type doc = {
    nd_label : string option;
    nd_domains : int;  (** pool workers (tracks) *)
    nd_spawn_ns : int;  (** helper [Domain.spawn] overhead *)
    nd_join_ns : int;  (** drain-to-join overhead *)
    nd_wall_ns : int;  (** end-to-end engine wall clock *)
    nd_spans : span list;  (** in task spawn order *)
  }

  val to_json : doc -> Json.t
  (** The [exsel-native-trace/1] document:
      [{ schema; label?; clock = "wall_ns"; domains; tasks; spawn_ns;
         join_ns; wall_ns;
         workers: [{worker; tasks; busy_ns; utilization_ppm}];
         spans: [{name; worker; start_ns; stop_ns}] }].
      [workers] has one row per track, idle workers included. *)

  val chrome : doc -> Json.t
  (** Chrome trace-event JSON for Perfetto: one thread per domain
      (worker 0 labelled as the caller), every task as an ["X"] duration
      event on its executing worker's track (nanosecond args preserved;
      sub-microsecond tasks keep a 1 µs sliver), and the engine's spawn
      and join overheads as ["X"] events on track 0. *)
end
