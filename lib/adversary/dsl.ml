(* Adversary DSL: composable scheduling/fault terms compiled to drivers.

   Compilation threads an *eligibility* predicate down the term: every
   base scheduler draws uniformly over the runnable processes no
   surrounding combinator has excluded (frozen victims, capped
   processes), and makes *no* RNG draw when that set is empty.  That
   discipline is what makes the legacy-regime terms draw-for-draw
   identical to the historical closures in lib/conformance/regime.ml:
   with an all-pass predicate each base consumes exactly one draw per
   decision from exactly the legacy stream. *)

module Runtime = Exsel_sim.Runtime
module Rng = Exsel_sim.Rng
module Freeze = Exsel_lowerbound.Freeze

type victims = Half of int | Pids of int list

type window = Legacy | Window of int * int

type expr =
  | Uniform
  | Lockstep
  | First
  | Halt
  | Crash_points of victims * expr
  | Crash_on_write of victims * expr
  | Freeze of victims * window * expr
  | Cap of int * expr
  | Budget of int * expr
  | Seq of int * expr * expr

let legacy_random = Uniform
let legacy_crash_half = Crash_points (Half 0, Uniform)
let legacy_crash_on_write = Crash_on_write (Half 0, Uniform)
let legacy_freeze = Freeze (Half 2, Legacy, Uniform)
let legacy_lockstep = Lockstep

(* ------------------------------------------------------------------ *)
(* Text form                                                           *)
(* ------------------------------------------------------------------ *)

let victims_to_string = function
  | Half 0 -> "half"
  | Half s -> Printf.sprintf "half+%d" s
  | Pids ps -> "[" ^ String.concat "," (List.map string_of_int ps) ^ "]"

let rec to_string = function
  | Uniform -> "uniform"
  | Lockstep -> "lockstep"
  | First -> "first"
  | Halt -> "halt"
  | Crash_points (v, e) ->
      Printf.sprintf "crash(%s, %s)" (victims_to_string v) (to_string e)
  | Crash_on_write (v, e) ->
      Printf.sprintf "crashw(%s, %s)" (victims_to_string v) (to_string e)
  | Freeze (v, Legacy, e) ->
      Printf.sprintf "freeze(%s, %s)" (victims_to_string v) (to_string e)
  | Freeze (v, Window (a, b), e) ->
      Printf.sprintf "freeze(%s, %d..%d, %s)" (victims_to_string v) a b
        (to_string e)
  | Cap (c, e) -> Printf.sprintf "cap(%d, %s)" c (to_string e)
  | Budget (b, e) -> Printf.sprintf "budget(%d, %s)" b (to_string e)
  | Seq (n, e1, Halt) -> Printf.sprintf "phase(%d, %s)" n (to_string e1)
  | Seq (n, e1, e2) ->
      Printf.sprintf "phase(%d, %s) >> %s" n (to_string e1) (to_string e2)

let rec crash_free = function
  | Uniform | Lockstep | First | Halt -> true
  | Crash_points _ | Crash_on_write _ -> false
  | Freeze (_, _, e) | Cap (_, e) | Budget (_, e) -> crash_free e
  | Seq (_, e1, e2) -> crash_free e1 && crash_free e2

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type tok =
  | Id of string
  | Num of int
  | LPar
  | RPar
  | LBrk
  | RBrk
  | Comma
  | Plus
  | Arrow  (* >> *)
  | DotDot

exception Bad of string

let lex s =
  let n = String.length s in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '(' -> emit LPar; incr i
    | ')' -> emit RPar; incr i
    | '[' -> emit LBrk; incr i
    | ']' -> emit RBrk; incr i
    | ',' -> emit Comma; incr i
    | '+' -> emit Plus; incr i
    | '>' ->
        if !i + 1 < n && s.[!i + 1] = '>' then begin
          emit Arrow;
          i := !i + 2
        end
        else raise (Bad (Printf.sprintf "stray '>' at offset %d" !i))
    | '.' ->
        if !i + 1 < n && s.[!i + 1] = '.' then begin
          emit DotDot;
          i := !i + 2
        end
        else raise (Bad (Printf.sprintf "stray '.' at offset %d" !i))
    | '0' .. '9' ->
        let j = ref !i in
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
          incr j
        done;
        emit (Num (int_of_string (String.sub s !i (!j - !i))));
        i := !j
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let j = ref !i in
        let word c =
          (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
        in
        while !j < n && word s.[!j] do
          incr j
        done;
        emit (Id (String.lowercase_ascii (String.sub s !i (!j - !i))));
        i := !j
    | c -> raise (Bad (Printf.sprintf "unexpected character %C at offset %d" c !i)));
  done;
  List.rev !toks

let tok_name = function
  | Id s -> Printf.sprintf "%S" s
  | Num n -> string_of_int n
  | LPar -> "'('"
  | RPar -> "')'"
  | LBrk -> "'['"
  | RBrk -> "']'"
  | Comma -> "','"
  | Plus -> "'+'"
  | Arrow -> "'>>'"
  | DotDot -> "'..'"

let expect t = function
  | t' :: rest when t' = t -> rest
  | t' :: _ -> raise (Bad (Printf.sprintf "expected %s, found %s" (tok_name t) (tok_name t')))
  | [] -> raise (Bad (Printf.sprintf "expected %s at end of input" (tok_name t)))

let num = function
  | Num n :: rest -> (n, rest)
  | t :: _ -> raise (Bad (Printf.sprintf "expected a number, found %s" (tok_name t)))
  | [] -> raise (Bad "expected a number at end of input")

let positive what n =
  if n <= 0 then raise (Bad (Printf.sprintf "%s must be positive (got %d)" what n))

let parse_victims = function
  | Id "half" :: Plus :: rest ->
      let s, rest = num rest in
      (Half s, rest)
  | Id "half" :: rest -> (Half 0, rest)
  | LBrk :: RBrk :: rest -> (Pids [], rest)
  | LBrk :: rest ->
      let rec pids acc rest =
        let p, rest = num rest in
        match rest with
        | Comma :: rest -> pids (p :: acc) rest
        | RBrk :: rest -> (Pids (List.rev (p :: acc)), rest)
        | t :: _ ->
            raise (Bad (Printf.sprintf "expected ',' or ']', found %s" (tok_name t)))
        | [] -> raise (Bad "unterminated pid list")
      in
      pids [] rest
  | t :: _ ->
      raise
        (Bad (Printf.sprintf "expected victims (half, half+N or [pids]), found %s" (tok_name t)))
  | [] -> raise (Bad "expected victims at end of input")

(* parse_term returns [`Plain e | `Phased (n, e)]: only a phase(...) item
   may be followed by '>>'. *)
let rec parse_expr toks =
  let item, rest = parse_term toks in
  match (item, rest) with
  | `Phased (n, e), Arrow :: rest ->
      let tail, rest = parse_expr rest in
      (Seq (n, e, tail), rest)
  | `Plain _, Arrow :: _ ->
      raise (Bad "only phase(N, ...) may precede '>>' (the left side needs a decision budget)")
  | `Phased (n, e), rest -> (Seq (n, e, Halt), rest)
  | `Plain e, rest -> (e, rest)

and parse_term = function
  | Id "uniform" :: rest -> (`Plain Uniform, rest)
  | Id "lockstep" :: rest -> (`Plain Lockstep, rest)
  | Id "first" :: rest -> (`Plain First, rest)
  | Id "halt" :: rest -> (`Plain Halt, rest)
  | Id "cap" :: LPar :: rest ->
      let c, rest = num rest in
      positive "cap" c;
      let e, rest = parse_expr (expect Comma rest) in
      (`Plain (Cap (c, e)), expect RPar rest)
  | Id "budget" :: LPar :: rest ->
      let b, rest = num rest in
      positive "budget" b;
      let e, rest = parse_expr (expect Comma rest) in
      (`Plain (Budget (b, e)), expect RPar rest)
  | Id "crash" :: LPar :: rest ->
      let v, rest = parse_victims rest in
      let e, rest = parse_expr (expect Comma rest) in
      (`Plain (Crash_points (v, e)), expect RPar rest)
  | Id "crashw" :: LPar :: rest ->
      let v, rest = parse_victims rest in
      let e, rest = parse_expr (expect Comma rest) in
      (`Plain (Crash_on_write (v, e)), expect RPar rest)
  | Id "freeze" :: LPar :: rest -> (
      let v, rest = parse_victims rest in
      let rest = expect Comma rest in
      match rest with
      | Num a :: DotDot :: rest ->
          let b, rest = num rest in
          if b < a then
            raise (Bad (Printf.sprintf "freeze window %d..%d is inverted" a b));
          let e, rest = parse_expr (expect Comma rest) in
          (`Plain (Freeze (v, Window (a, b), e)), expect RPar rest)
      | rest ->
          let e, rest = parse_expr rest in
          (`Plain (Freeze (v, Legacy, e)), expect RPar rest))
  | Id "phase" :: LPar :: rest ->
      let n, rest = num rest in
      positive "phase" n;
      let e, rest = parse_expr (expect Comma rest) in
      (`Phased (n, e), expect RPar rest)
  | LPar :: rest ->
      let e, rest = parse_expr rest in
      (`Plain e, expect RPar rest)
  | t :: _ -> raise (Bad (Printf.sprintf "unexpected %s" (tok_name t)))
  | [] -> raise (Bad "unexpected end of input")

let parse s =
  match lex s with
  | exception Bad msg -> Error msg
  | toks -> (
      match parse_expr toks with
      | e, [] -> Ok e
      | _, t :: _ -> Error (Printf.sprintf "trailing %s after expression" (tok_name t))
      | exception Bad msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

type decision = Commit of Runtime.proc | Crash of Runtime.proc

type driver = Runtime.t -> decision option

(* ⌈k/2⌉ distinct victim pids, uniform over [0, k) — the exact selection
   (seed salt, shuffle, prefix) every crash/freeze regime has used since
   PR 4, so victim sets are unchanged. *)
let pick_victims ~seed ~k =
  let a = Array.init k Fun.id in
  Rng.shuffle (Rng.create ~seed:(seed lxor 0x9e3779b9)) a;
  Array.to_list (Array.sub a 0 ((k + 1) / 2))

let victim_pids ~seed ~k = function
  | Half salt -> pick_victims ~seed:(seed + salt) ~k
  | Pids ps -> List.filter (fun p -> p >= 0 && p < k) ps

(* A compiled node decides over the processes [frozen] has not excluded.
   Base schedulers draw nothing when the eligible set is empty — the
   invariant that keeps wrapped retries (freeze thaw, cap relaxation)
   from perturbing the stream. *)
type cnode = Runtime.t -> frozen:(Runtime.proc -> bool) -> decision option

let compile expr ~seed ~k =
  (* Seed allocation: the first scheduler stream and the first crash
     plan land on the exact legacy seeds (seed, seed + 1); further
     occurrences of either kind — which no legacy regime has — step far
     away so streams stay distinct. *)
  let sched_count = ref 0 and plan_count = ref 0 in
  let sched_seed () =
    let c = !sched_count in
    incr sched_count;
    if c = 0 then seed else seed + (1_000_003 * c)
  in
  let plan_seed () =
    let c = !plan_count in
    incr plan_count;
    if c = 0 then seed + 1 else seed + 1 + (1_000_003 * c) + 499
  in
  let uniform () : cnode =
    let rng = Rng.create ~seed:(sched_seed ()) in
    fun rt ~frozen ->
      match Freeze.uniform_avoiding ~rng ~frozen rt with
      | Some p -> Some (Commit p)
      | None -> None
  in
  let lockstep () : cnode =
    let rng = Rng.create ~seed:(sched_seed ()) in
    fun rt ~frozen ->
      let eligible = ref 0 in
      Runtime.iter_runnable rt (fun p -> if not (frozen p) then incr eligible);
      if !eligible = 0 then None
      else begin
        let min_steps = ref max_int in
        Runtime.iter_runnable rt (fun p ->
            if (not (frozen p)) && Runtime.steps p < !min_steps then
              min_steps := Runtime.steps p);
        let count = ref 0 in
        Runtime.iter_runnable rt (fun p ->
            if (not (frozen p)) && Runtime.steps p = !min_steps then incr count);
        let j = Rng.int rng !count in
        let chosen = ref None in
        let i = ref 0 in
        Runtime.iter_runnable rt (fun p ->
            if (not (frozen p)) && Runtime.steps p = !min_steps then begin
              if !i = j then chosen := Some p;
              incr i
            end);
        match !chosen with Some p -> Some (Commit p) | None -> None
      end
  in
  let first () : cnode =
   fun rt ~frozen ->
    let chosen = ref None in
    Runtime.iter_runnable rt (fun p ->
        if !chosen = None && not (frozen p) then chosen := Some p);
    Option.map (fun p -> Commit p) !chosen
  in
  let rec go = function
    | Uniform -> uniform ()
    | Lockstep -> lockstep ()
    | First -> first ()
    | Halt -> fun _ ~frozen:_ -> None
    | Crash_points (v, e) ->
        let plan_rng = Rng.create ~seed:(plan_seed ()) in
        let remaining =
          ref
            (List.mapi
               (fun i pid -> (pid, Rng.int plan_rng (4 * k * (i + 1))))
               (victim_pids ~seed ~k v))
        in
        let inner = go e in
        fun rt ~frozen ->
          let rec due () =
            match
              List.find_opt (fun (_, at) -> Runtime.commits rt >= at) !remaining
            with
            | Some entry ->
                remaining := List.filter (fun e -> e <> entry) !remaining;
                let p = Runtime.proc_by_pid rt (fst entry) in
                (* a due victim that already decided or crashed is
                   skipped, never issued a crash *)
                if Runtime.status p = Runtime.Runnable then Some (Crash p)
                else due ()
            | None -> inner rt ~frozen
          in
          due ()
    | Crash_on_write (v, e) ->
        let remaining = ref (victim_pids ~seed ~k v) in
        let inner = go e in
        let write_pending p =
          Runtime.status p = Runtime.Runnable
          && match Runtime.pending p with
             | Some (Runtime.Write _) -> true
             | Some (Runtime.Read _) | None -> false
        in
        fun rt ~frozen ->
          (* drop victims that already decided or crashed: they can
             never have a pending write again *)
          remaining :=
            List.filter
              (fun pid ->
                Runtime.status (Runtime.proc_by_pid rt pid) = Runtime.Runnable)
              !remaining;
          (match
             List.find_opt
               (fun pid -> write_pending (Runtime.proc_by_pid rt pid))
               !remaining
           with
          | Some pid ->
              remaining := List.filter (fun x -> x <> pid) !remaining;
              Some (Crash (Runtime.proc_by_pid rt pid))
          | None -> inner rt ~frozen)
    | Freeze (v, window, e) ->
        let vs = victim_pids ~seed ~k v in
        let freeze_at, thaw_at =
          match window with
          | Legacy ->
              let f = 4 + (k / 2) in
              (f, f + (32 * k))
          | Window (a, b) -> (a, b)
        in
        if thaw_at < freeze_at then
          invalid_arg "Dsl.compile: freeze window is inverted";
        let thawed_early = ref false in
        let inner = go e in
        fun rt ~frozen ->
          let clock = Runtime.commits rt in
          let in_window =
            (not !thawed_early) && clock >= freeze_at && clock < thaw_at
          in
          if not in_window then inner rt ~frozen
          else begin
            let frozen' p = frozen p || List.mem (Runtime.pid p) vs in
            match inner rt ~frozen:frozen' with
            | Some _ as r -> r
            | None ->
                (* every eligible process is frozen: thaw permanently so
                   the execution completes and liveness stays checkable *)
                thawed_early := true;
                inner rt ~frozen
          end
    | Cap (c, e) ->
        let inner = go e in
        let last = ref (-1) in
        let run = ref 0 in
        let note = function
          | Some (Commit p) as r ->
              let pid = Runtime.pid p in
              if pid = !last then incr run
              else begin
                last := pid;
                run := 1
              end;
              r
          | r -> r
        in
        fun rt ~frozen ->
          let capped p = !run >= c && Runtime.pid p = !last in
          (match inner rt ~frozen:(fun p -> frozen p || capped p) with
          | Some _ as r -> note r
          | None ->
              (* only the capped process remains: relax the cap rather
                 than stall the execution *)
              note (inner rt ~frozen))
    | Budget (b, e) ->
        let inner = go e in
        fun rt ~frozen ->
          (* census of runnable pending writers per register *)
          let counts : (int, int) Hashtbl.t = Hashtbl.create 8 in
          Runtime.iter_runnable rt (fun p ->
              match Runtime.pending p with
              | Some (Runtime.Write r) ->
                  Hashtbl.replace counts r
                    (1 + Option.value (Hashtbl.find_opt counts r) ~default:0)
              | Some (Runtime.Read _) | None -> ());
          let best = ref None in
          Hashtbl.iter
            (fun r c ->
              if c > b then
                match !best with
                | Some (r0, c0) when c0 > c || (c0 = c && r0 < r) -> ()
                | _ -> best := Some (r, c))
            counts;
          (match !best with
          | None -> inner rt ~frozen
          | Some (r, _) ->
              (* over budget: forced drain of the most-contended
                 register's lowest-pid eligible writer *)
              let chosen = ref None in
              Runtime.iter_runnable rt (fun p ->
                  if
                    (not (frozen p))
                    && Runtime.pending p = Some (Runtime.Write r)
                  then
                    match !chosen with
                    | Some q when Runtime.pid q <= Runtime.pid p -> ()
                    | _ -> chosen := Some p);
              (match !chosen with
              | Some p -> Some (Commit p)
              | None -> inner rt ~frozen))
    | Seq (n, e1, e2) ->
        let c1 = go e1 in
        let c2 = go e2 in
        let issued = ref 0 in
        let active = ref true in
        fun rt ~frozen ->
          if !active && !issued < n then (
            match c1 rt ~frozen with
            | Some _ as r ->
                incr issued;
                r
            | None ->
                active := false;
                c2 rt ~frozen)
          else begin
            active := false;
            c2 rt ~frozen
          end
  in
  let root = go expr in
  fun rt -> root rt ~frozen:(fun _ -> false)
