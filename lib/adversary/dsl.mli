(** A small composable adversary language for scheduling experiments.

    The paper's lower-bound constructions are adversary arguments:
    schedulers that freeze victims at chosen instants, crash them at
    chosen commit points, or starve them behind contention.  The five
    conformance regimes of {!Exsel_conformance.Regime} started life as
    hard-coded closures of exactly that shape; this module generalizes
    them into an expression language so campaigns (and the CLI, via
    [--adversary EXPR]) can compose new adversaries without new code.

    {2 Grammar}

    {v
    expr    := term | phase(N, expr) | phase(N, expr) >> expr
    term    := uniform | lockstep | first | halt
             | cap(N, expr)               interleaving cap
             | budget(N, expr)            write-contention budget
             | crash(victims, expr)       seeded commit-point crash plan
             | crashw(victims, expr)      crash on first pending write
             | freeze(victims, expr)      legacy window: 4+k/2 .. +32k
             | freeze(victims, A..B, expr)
             | ( expr )
    victims := half | half+N | [p0,p1,...]
    v}

    {2 Semantics}

    A term denotes a {!driver}: one scheduling decision per call, over
    the processes a surrounding combinator has not excluded.

    - [uniform] — one seeded draw, uniform over the eligible runnable
      processes (the historical "random" regime).
    - [lockstep] — uniform over the {e least-stepped} eligible runnable
      processes: maximal contention.
    - [first] — deterministically the lowest-pid eligible process.
    - [halt] — relinquish immediately (the runner's completion phase
      finishes the execution in pid order).
    - [crash(v, e)] — victims crash at seeded commit points (the i-th
      victim's point is drawn from a [4·k·(i+1)]-wide window); between
      crashes, [e] schedules.  Victims already decided or crashed are
      skipped, never issued a crash.
    - [crashw(v, e)] — victims crash at their first pending write.
    - [freeze(v, A..B, e)] — victims are ineligible while the commit
      clock is in [A, B); if at some decision {e every} runnable process
      is frozen, the window thaws permanently (liveness stays
      checkable).
    - [cap(c, e)] — interleaving cap: a process that [e] has committed
      [c] times in a row becomes ineligible until another process
      commits.  If that leaves nothing eligible the cap relaxes rather
      than stall.
    - [budget(b, e)] — write-contention budget, after Alistarh,
      Gelashvili & Nadiradze: the adversary may not let more than [b]
      writes stay concurrently pending on any one register.  Whenever
      some register has more than [b] runnable pending writers, the
      adversary is forced to drain one (the lowest-pid writer to the
      most-contended register) before [e] regains control.
    - [phase(n, e1) >> e2] — [e1] makes the first [n] decisions (or
      relinquishes early), then [e2] takes over for good.

    Victim sets: [half] is the seeded ⌈k/2⌉-subset of [\[0, k)] the
    legacy regimes used; [half+N] salts the selection seed by [+N];
    [[p0,p1,...]] names pids explicitly (out-of-range pids are ignored).

    {2 Legacy equivalence}

    Each of the five conformance regimes is one closed term, and the
    compiled driver makes {e draw-for-draw identical} RNG requests, so
    seeded schedules — and whole campaign reports — are byte-identical
    to the historical closures:

    {v
    random          uniform
    crash-half      crash(half, uniform)
    crash-on-write  crashw(half, uniform)
    freeze          freeze(half+2, uniform)
    lockstep        lockstep
    v}

    Compiled terms draw from {!Exsel_sim.Rng.create} (V1) streams at the
    legacy seeds; only combinators with no legacy counterpart introduce
    new streams. *)

module Runtime := Exsel_sim.Runtime

(** {2 Abstract syntax} *)

type victims =
  | Half of int  (** seeded ⌈k/2⌉ subset of [\[0, k)]; the int salts the seed *)
  | Pids of int list  (** explicit pids; out-of-range entries are ignored *)

type window = Legacy | Window of int * int  (** freeze window [\[A, B)] *)

type expr =
  | Uniform
  | Lockstep
  | First
  | Halt
  | Crash_points of victims * expr
  | Crash_on_write of victims * expr
  | Freeze of victims * window * expr
  | Cap of int * expr
  | Budget of int * expr
  | Seq of int * expr * expr  (** [phase(n, e1) >> e2] *)

(** {2 The five legacy regimes as terms} *)

val legacy_random : expr
val legacy_crash_half : expr
val legacy_crash_on_write : expr
val legacy_freeze : expr
val legacy_lockstep : expr

(** {2 Text form} *)

val to_string : expr -> string
(** Canonical rendering in the concrete grammar;
    [parse (to_string e) = Ok e]. *)

val parse : string -> (expr, string) result
(** Parse the concrete grammar (whitespace-insensitive).  Rejects
    non-positive [cap]/[budget]/[phase] arguments, inverted freeze
    windows and negative pids with a positioned message. *)

val crash_free : expr -> bool
(** No [crash]/[crashw] combinator anywhere in the term — required of
    adversaries used for service/workload scheduling, where a crash
    decision would bypass the session ledger. *)

(** {2 Compilation} *)

type decision = Commit of Runtime.proc | Crash of Runtime.proc

type driver = Runtime.t -> decision option
(** One decision per call; [None] relinquishes to the caller's
    completion phase.  Mirrors {!Exsel_conformance.Runner.driver}. *)

val compile : expr -> seed:int -> k:int -> driver
(** [compile e ~seed ~k] instantiates fresh per-execution state
    (crash plans, freeze windows, cap counters) and returns the driver.
    [k] scales victim selection, crash-point windows and the legacy
    freeze window exactly as the historical regimes did.
    @raise Invalid_argument on an inverted explicit freeze window. *)

val pick_victims : seed:int -> k:int -> int list
(** The seeded ⌈k/2⌉ victim subset of [\[0, k)] shared by every
    crash/freeze regime since PR 4 (exposed for tests). *)
