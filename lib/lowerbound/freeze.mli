(** Corollary 2's optimality argument, executably.

    The paper shows no repository implementation can waste fewer than
    [n − 1] registers: freeze a process at the instant its deposit write
    to register [R] is {e enabled but not yet committed}.  No other
    process may ever deposit into [R] — if some process did and
    acknowledged, un-freezing the pending write would overwrite a
    deposited value, contradicting Persistence.  So a crash at that
    instant pins [R] forever, and [n − 1] crashes pin [n − 1] registers.

    [corollary2] replays this construction against our Selfish-Deposit:
    it drives a victim until its deposit write is pending, freezes it,
    lets the other processes deposit arbitrarily often, and reports
    whether the frozen register stayed untouched — and that un-freezing
    afterwards completes the deposit without any overwrite. *)

(** {2 Reusable freeze/wake scheduling}

    The construction above is one instance of a general adversarial
    pattern — {e freeze} a set of processes (never schedule them) for a
    window of the execution while the rest run freely, then {e wake} the
    frozen set and let the execution complete.  The conformance campaigns
    ({!Exsel_conformance}) reuse the two policies below to slam every
    renaming algorithm with exactly this regime. *)

val uniform_avoiding :
  rng:Exsel_sim.Rng.t ->
  frozen:(Exsel_sim.Runtime.proc -> bool) ->
  Exsel_sim.Scheduler.policy
(** Uniformly random choice over the runnable processes for which
    [frozen] is [false]; [None] (stop) when every runnable process is
    frozen.  One generator draw per decision.  With a single frozen
    victim the draw sequence is identical to the historical
    rank-skipping policy inside {!corollary2}, so seeded executions are
    unchanged. *)

val freeze_window :
  rng:Exsel_sim.Rng.t ->
  victims:int list ->
  freeze_at:int ->
  thaw_at:int ->
  Exsel_sim.Scheduler.policy
(** An adversarial freeze/wake schedule: uniformly random scheduling,
    except that processes whose pid is listed in [victims] are frozen —
    never scheduled — while the global commit clock
    ({!Exsel_sim.Runtime.commits}) lies in [[freeze_at, thaw_at)].
    Outside the window the policy is plain uniform-random.  If at some
    point {e every} runnable process is frozen, the window ends early
    (the victims thaw permanently) so executions always complete —
    liveness claims stay checkable under the regime. *)

type result = {
  frozen_register : int;  (** index of the register pinned by the freeze *)
  others_deposits : int;  (** deposits completed by the other processes *)
  untouched_while_frozen : bool;  (** nobody wrote it while frozen *)
  deposit_completed_after_thaw : bool;
      (** the victim's write landed cleanly when resumed *)
}

val corollary2 :
  n:int -> deposits_per_other:int -> seed:int -> result
(** Run the construction with [n] processes ([n ≥ 2]); the victim is
    process 0, the other [n − 1] each deposit [deposits_per_other]
    values while the victim is frozen. *)
