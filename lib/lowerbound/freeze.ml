module Memory = Exsel_sim.Memory
module Register = Exsel_sim.Register
module Runtime = Exsel_sim.Runtime
module Scheduler = Exsel_sim.Scheduler
module Rng = Exsel_sim.Rng
module SD = Exsel_repository.Selfish_deposit
module DA = Exsel_repository.Deposit_array

(* Uniform over the runnable processes not excluded by [frozen], straight
   off the runtime's runnable index: one draw per decision, one
   allocation-free walk to the chosen element.  With one frozen victim
   the walk degenerates to the historical rank-skip, so draw sequences
   (and hence whole seeded executions) are unchanged. *)
let uniform_avoiding ~rng ~frozen t =
  let eligible = ref 0 in
  Runtime.iter_runnable t (fun p -> if not (frozen p) then incr eligible);
  if !eligible = 0 then None
  else begin
    let j = Rng.int rng !eligible in
    let seen = ref 0 and chosen = ref None in
    Runtime.iter_runnable t (fun p ->
        if not (frozen p) then begin
          if !seen = j && !chosen = None then chosen := Some p;
          incr seen
        end);
    match !chosen with Some _ as r -> r | None -> assert false
  end

let freeze_window ~rng ~victims ~freeze_at ~thaw_at =
  if thaw_at < freeze_at then
    invalid_arg "Freeze.freeze_window: thaw_at must be at least freeze_at";
  let thawed_early = ref false in
  fun t ->
    let clock = Runtime.commits t in
    let in_window =
      (not !thawed_early) && clock >= freeze_at && clock < thaw_at
    in
    if not in_window then uniform_avoiding ~rng ~frozen:(fun _ -> false) t
    else begin
      let frozen p = List.mem (Runtime.pid p) victims in
      match uniform_avoiding ~rng ~frozen t with
      | Some _ as r -> r
      | None ->
          (* every runnable process is frozen: thaw permanently so the
             execution completes and liveness stays checkable *)
          thawed_early := true;
          uniform_avoiding ~rng ~frozen:(fun _ -> false) t
    end

type result = {
  frozen_register : int;
  others_deposits : int;
  untouched_while_frozen : bool;
  deposit_completed_after_thaw : bool;
}

(* Identify the deposit-register ids currently allocated. *)
let deposit_reg_ids regs =
  List.init (DA.allocated regs) (fun i -> Register.id (DA.get regs i))

let index_of_reg regs reg_id =
  let rec go i =
    if i >= DA.allocated regs then None
    else if Register.id (DA.get regs i) = reg_id then Some i
    else go (i + 1)
  in
  go 0

let corollary2 ~n ~deposits_per_other ~seed =
  if n < 2 then invalid_arg "Freeze.corollary2: n must be at least 2";
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let sd = SD.create mem ~name:"sd" ~n in
  (* The victim performs one deposit; we advance it alone until its
     pending operation is a write to a dedicated deposit register — the
     instant the paper freezes. *)
  let victim = Runtime.spawn rt ~name:"victim" (fun () -> ignore (SD.deposit sd ~me:0 999)) in
  let regs = SD.registers sd in
  let rec advance () =
    match Runtime.pending victim with
    | Some (Runtime.Write reg_id) when List.mem reg_id (deposit_reg_ids regs) ->
        reg_id
    | Some _ ->
        Runtime.commit rt victim;
        advance ()
    | None -> invalid_arg "Freeze.corollary2: victim finished without depositing"
  in
  let frozen_reg_id = advance () in
  let frozen_index =
    match index_of_reg regs frozen_reg_id with
    | Some i -> i
    | None -> assert false
  in
  (* watch for any write to the frozen register while the victim sleeps *)
  let touched = ref false in
  Runtime.on_commit rt (fun p op ->
      match op with
      | Runtime.Write r when r = frozen_reg_id && Runtime.pid p <> Runtime.pid victim ->
          touched := true
      | Runtime.Write _ | Runtime.Read _ -> ());
  (* the other processes deposit freely *)
  let completed = ref 0 in
  for i = 1 to n - 1 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
           for v = 1 to deposits_per_other do
             ignore (SD.deposit sd ~me:i ((100 * i) + v));
             incr completed
           done))
  done;
  let rng = Rng.create ~seed in
  (* uniform over the runnable processes other than the frozen victim —
     the shared freeze machinery, draw-for-draw identical to the
     historical rank-skipping policy this construction used *)
  let victim_pid = Runtime.pid victim in
  let policy =
    uniform_avoiding ~rng ~frozen:(fun p -> Runtime.pid p = victim_pid)
  in
  Runtime.run ~max_commits:200_000_000 rt policy;
  let untouched_while_frozen =
    (not !touched) && DA.value regs frozen_index = None
  in
  (* thaw: the victim's pending write commits and must land cleanly *)
  Scheduler.run rt (Scheduler.round_robin ());
  let deposit_completed_after_thaw =
    Runtime.status victim = Runtime.Done
    && DA.value regs frozen_index = Some 999
  in
  {
    frozen_register = frozen_index;
    others_deposits = !completed;
    untouched_while_frozen;
    deposit_completed_after_thaw;
  }
