(** The reproduction experiments (DESIGN.md, Section 3).

    Each function regenerates one table or figure of the paper's
    evaluation-equivalent (the theorem claims and the comparisons of the
    introduction), as a {!Table.t} with fixed seeds so runs are
    reproducible.  EXPERIMENTS.md records their outputs against the
    paper's statements. *)

val t1_comparison : unit -> Table.t
(** Measured steps / name bound / registers of MA, snapshot-renaming,
    PolyLog, Efficient and Adaptive at several k (paper §1's comparisons). *)

val t2_polylog : unit -> Table.t
(** Theorem 1 sweep: PolyLog-Rename over k and N; measured-vs-bound ratio. *)

val t3_efficient : unit -> Table.t
(** Theorem 2 sweep: Efficient-Rename steps/k, M = 2k−1, r/k². *)

val t4_almost_adaptive : unit -> Table.t
(** Theorem 3 sweep: k unknown to the code; names stay O(k). *)

val t5_adaptive : unit -> Table.t
(** Theorem 4 sweep: M ≤ 8k − lg k − 1, steps O(k). *)

val t6_store_collect : unit -> Table.t
(** Theorem 5: the four knowledge settings. *)

val t7_lower_bound : unit -> Table.t
(** Theorems 6–7: adversary-forced steps vs 1 + min\{k−2, log₂ᵣ N/2M\}. *)

val t8_repositories : unit -> Table.t
(** Theorems 8–9: repository waste under crashes vs n−1 and n(n−1). *)

val t9_unbounded_naming : unit -> Table.t
(** Theorem 10: exclusive unbounded naming, skipped integers. *)

val f1_majority_progress : unit -> Table.t
(** Lemma 5 series: fraction renamed per Basic-Rename stage. *)

val f2_crossover : unit -> Table.t
(** §1 series: steps as N grows at fixed k — who wins where. *)

val a1_expander_constants : unit -> Table.t
(** Ablation: how the expander constants trade name-range size against
    per-stage success (DESIGN.md, Substitution 1). *)

val a2_certification : unit -> Table.t
(** Ablation: acceptance rate of raw sampled graphs under certification. *)

val a3_reserve_lane : unit -> Table.t
(** Ablation: cost and effect of the deterministic reserve lane. *)

val x1_long_lived : unit -> Table.t
(** Extension: long-lived renaming (acquire/release churn) — exclusive
    holds, range tracking point contention. *)

val x2_message_passing : unit -> Table.t
(** Extension: the message-passing origin of renaming (ABDPR [14]) on the
    {!Exsel_msgnet} substrate. *)

val x3_randomized : unit -> Table.t
(** Extension: randomized loose renaming vs deterministic primitives. *)

val all_named : (string * (unit -> Table.t)) list
(** Every experiment keyed by its table id ("T1" … "X3"), in order.  The
    shared registry behind both the bench driver and [exsel_cli
    experiments], so id filtering and validation agree everywhere. *)

val all : unit -> Table.t list
(** Every table, figure and ablation, in order. *)

(** {1 Observation capture}

    When observing is on, every run executed through the internal
    renaming driver attaches an {!Exsel_obs.Probe} and an
    {!Exsel_obs.Span} sink and queues an {!observation}; drain the queue
    after each experiment to associate observations with their table.
    Experiments that drive the scheduler directly (T6–T9, F1, A2, X1,
    X2) produce no observations. *)

type observation = {
  obs_label : string;  (** run parameters, e.g. ["k=8,N=16384"] *)
  obs_summary : Exsel_sim.Metrics.summary;
  obs_probe : Exsel_obs.Probe.report;
  obs_spans : Exsel_obs.Span.agg list;
}

val set_observing : bool -> unit
(** Toggle observation capture for the {e current domain}.  Enabling
    also clears the domain's queue, so observations left over from a run
    that raised before {!drain_observations} never bleed into the next
    report. *)

val drain_observations : unit -> observation list
(** Return and clear the current domain's queued observations, oldest
    first.  Capture state is domain-local ([Domain.DLS], DESIGN.md §10):
    each domain observes and drains only its own runs. *)

val observation_to_json : observation -> Exsel_obs.Json.t
(** Object with [label summary probe spans]. *)
