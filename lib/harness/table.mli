(** Plain-text tables for the experiment harness. *)

type t = {
  id : string;  (** experiment id, e.g. "T2" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;  (** shape commentary printed under the table *)
}

val make :
  id:string -> title:string -> header:string list -> ?notes:string list ->
  string list list -> t

val render : t -> string
(** Column-aligned rendering with a title rule and notes. *)

val print : t -> unit

val to_json : t -> Exsel_obs.Json.t
(** Object with [id title header rows notes]; cells stay strings so the
    rendering is exactly what the text table shows. *)

val cell_int : int -> string
val cell_float : float -> string
(** Two-decimal rendering. *)
