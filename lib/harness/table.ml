type t = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~header ?(notes = []) rows = { id; title; header; rows; notes }

let render t =
  let all = t.header :: t.rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some s -> max acc (String.length s)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line row =
    List.mapi (fun c w -> pad (Option.value ~default:"" (List.nth_opt row c)) w) widths
    |> String.concat "  "
  in
  let rule =
    String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "== %s: %s ==\n" t.id t.title);
  Buffer.add_string buf (line t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (line r);
      Buffer.add_char buf '\n')
    t.rows;
  List.iter (fun n -> Buffer.add_string buf ("   " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let print t = print_string (render t); print_newline ()

let to_json t =
  let strings l = Exsel_obs.Json.List (List.map (fun s -> Exsel_obs.Json.String s) l) in
  Exsel_obs.Json.Obj
    [
      ("id", Exsel_obs.Json.String t.id);
      ("title", Exsel_obs.Json.String t.title);
      ("header", strings t.header);
      ("rows", Exsel_obs.Json.List (List.map strings t.rows));
      ("notes", strings t.notes);
    ]

let cell_int = string_of_int
let cell_float f = Printf.sprintf "%.2f" f
