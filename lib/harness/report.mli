(** JSON export of experiment results (DESIGN.md, Section 7).

    Schema ["exsel-bench/1"]: a top-level object with

    {v
    { "schema": "exsel-bench/1",
      "experiments": [ { "id": "T1", "table": {...}, "runs": [...] } ] }
    v}

    where ["table"] is {!Table.to_json} and each element of ["runs"] is
    {!Experiments.observation_to_json} — the run's metrics summary,
    per-register contention profile and phase-span aggregates. *)

type entry = { table : Table.t; runs : Experiments.observation list }

val observe : (string * (unit -> Table.t)) list -> entry list
(** Run the given experiments (a sublist of {!Experiments.all_named})
    with observation capture on, pairing each table with the
    observations its runs produced.  Observation state is restored even
    if an experiment raises. *)

val entry_to_json : entry -> Exsel_obs.Json.t

val document : ?metrics:Exsel_obs.Metrics.t -> entry list -> Exsel_obs.Json.t
(** The [exsel-bench/1] document; with [?metrics] the registry is
    embedded as a top-level ["metrics"] field rendered by
    {!Exsel_obs.Metrics.to_json} (an [exsel-metrics/1] document). *)

val write_file : ?metrics:Exsel_obs.Metrics.t -> string -> entry list -> unit
(** Write [document ?metrics entries] to [path], newline-terminated. *)
