open Exsel_sim
module R = Exsel_renaming
module SC = Exsel_collect.Store_collect
module SD = Exsel_repository.Selfish_deposit
module AD = Exsel_repository.Altruistic_deposit
module UN = Exsel_repository.Unbounded_naming
module HB = Exsel_repository.Help_board
module Adversary = Exsel_lowerbound.Adversary

type outcome = {
  summary : Metrics.summary;
  names : int list;  (* names actually assigned *)
  failures : int;  (* processes that reported overflow *)
}

(* ------------------------------------------------------------------ *)
(* Observation capture: when observing is on, every run executed through
   [run_renaming] attaches a register probe and a span sink and queues a
   structured record; the bench / CLI JSON exports drain the queue after
   each experiment. *)

type observation = {
  obs_label : string;
  obs_summary : Metrics.summary;
  obs_probe : Exsel_obs.Probe.report;
  obs_spans : Exsel_obs.Span.agg list;
}

(* Domain-local capture state ([Domain.DLS], DESIGN.md §10): campaigns
   and benches running experiments on several domains each get their own
   observing flag and queue, so observations never leak across domains.
   Enabling observation also clears the queue — a run that raised before
   [drain_observations] (e.g. an invariant check failing mid-experiment)
   must not bleed its observations into the next report. *)
type obs_state = {
  mutable observing : bool;
  mutable observations_rev : observation list;
}

let obs_key : obs_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { observing = false; observations_rev = [] })

let obs_state () = Domain.DLS.get obs_key

let set_observing b =
  let st = obs_state () in
  if b then st.observations_rev <- [];
  st.observing <- b

let drain_observations () =
  let st = obs_state () in
  let obs = List.rev st.observations_rev in
  st.observations_rev <- [];
  obs

let observation_to_json o =
  Exsel_obs.Json.Obj
    [
      ("label", Exsel_obs.Json.String o.obs_label);
      ("summary", Exsel_obs.Json.of_summary o.obs_summary);
      ("probe", Exsel_obs.Probe.to_json o.obs_probe);
      ("spans", Exsel_obs.Span.aggregate_to_json o.obs_spans);
    ]

(* Run [ids] as concurrent contenders, each calling [rename] with its
   identifier, under a seeded random schedule.  [label] tags the queued
   observation when observing is on.  Sink order matters: spans must be
   live before spawning (bodies run to their first suspension at spawn
   time), the probe attaches after spawning so its initial scan sees the
   whole pending burst. *)
let run_renaming ?(label = "") ~seed ~ids rename mem rt =
  let st = obs_state () in
  let span = if st.observing then Some (Exsel_obs.Span.attach rt) else None in
  let results = Array.make (List.length ids) None in
  List.iteri
    (fun i me ->
      ignore
        (Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
             results.(i) <- rename ~me)))
    ids;
  let probe = if st.observing then Some (Exsel_obs.Probe.attach rt) else None in
  Scheduler.run ~max_commits:200_000_000 rt (Scheduler.random (Rng.create ~seed));
  ignore mem;
  let names = Array.to_list results |> List.filter_map Fun.id in
  let summary = Metrics.of_runtime rt in
  (match (span, probe) with
  | Some sp, Some pr ->
      st.observations_rev <-
        {
          obs_label = label;
          obs_summary = summary;
          obs_probe = Exsel_obs.Probe.report pr;
          obs_spans = Exsel_obs.Span.aggregate sp;
        }
        :: st.observations_rev;
      Exsel_obs.Span.detach sp
  | _ -> ());
  { summary; names; failures = List.length ids - List.length names }

let max_name names = List.fold_left max (-1) names

let distinct names = List.length (List.sort_uniq compare names) = List.length names

let check_distinct id names =
  if not (distinct names) then
    failwith (Printf.sprintf "%s: duplicate names assigned — exclusiveness broken!" id)

let ids_spread ~count ~bound =
  List.init count (fun i -> i * (bound / count) mod bound)

(* ------------------------------------------------------------------ *)

let t1_comparison () =
  let n_names = 1024 in
  let row algo k build =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let rename = build mem in
    let o =
      run_renaming
        ~label:(Printf.sprintf "algo=%s,k=%d" algo k)
        ~seed:(100 + k) ~ids:(ids_spread ~count:k ~bound:n_names) rename mem rt
    in
    check_distinct "T1" o.names;
    [
      algo;
      Table.cell_int k;
      Table.cell_int o.summary.Metrics.max_steps;
      Table.cell_int (max_name o.names + 1);
      Table.cell_int o.summary.Metrics.registers;
      Table.cell_int o.failures;
    ]
  in
  let rows =
    List.concat_map
      (fun k ->
        [
          row "MA (Moir-Anderson)" k (fun mem ->
              let ma = R.Moir_anderson.create mem ~name:"ma" ~side:k in
              fun ~me -> R.Moir_anderson.rename ma ~me);
          row "Snapshot (Attiya et al.)" k (fun mem ->
              let a = R.Attiya_renaming.create mem ~name:"at" ~slots:n_names () in
              fun ~me -> R.Attiya_renaming.rename a ~slot:me);
          row "PolyLog-Rename" k (fun mem ->
              let p =
                R.Polylog_rename.create ~rng:(Rng.create ~seed:(7 * k)) mem
                  ~name:"pl" ~k ~inputs:n_names
              in
              fun ~me -> R.Polylog_rename.rename p ~me);
          row "Efficient-Rename" k (fun mem ->
              let e =
                R.Efficient_rename.create ~rng:(Rng.create ~seed:(9 * k)) mem
                  ~name:"ef" ~k
              in
              fun ~me -> R.Efficient_rename.rename e ~me);
          row "Adaptive-Rename" k (fun mem ->
              let a =
                R.Adaptive_rename.create ~rng:(Rng.create ~seed:(11 * k)) mem
                  ~name:"ad" ~n:k
              in
              fun ~me -> Some (R.Adaptive_rename.rename a ~me));
        ])
      [ 4; 8; 16 ]
  in
  Table.make ~id:"T1" ~title:(Printf.sprintf "renaming algorithms at N=%d" n_names)
    ~header:[ "algorithm"; "k"; "max steps"; "M (measured)"; "registers"; "failed" ]
    ~notes:
      [
        "Expected shape: MA has smallest steps but M=k(k+1)/2; the snapshot";
        "baseline pays O(N)-size scans; PolyLog has polylog(N) steps with M=O(k);";
        "Efficient reaches the optimal M=2k-1; Adaptive matches it without knowing k, N.";
      ]
    rows

let t2_polylog () =
  let rows =
    List.concat_map
      (fun n_names ->
        List.map
          (fun k ->
            let mem = Memory.create () in
            let rt = Runtime.create mem in
            let p =
              R.Polylog_rename.create ~rng:(Rng.create ~seed:(k + n_names)) mem
                ~name:"pl" ~k ~inputs:n_names
            in
            let o =
              run_renaming
                ~label:(Printf.sprintf "k=%d,N=%d" k n_names)
                ~seed:(3 * k) ~ids:(ids_spread ~count:k ~bound:n_names)
                (fun ~me -> R.Polylog_rename.rename p ~me)
                mem rt
            in
            check_distinct "T2" o.names;
            let bound = R.Spec.polylog_steps ~k ~n_names in
            [
              Table.cell_int k;
              Table.cell_int n_names;
              Table.cell_int o.summary.Metrics.max_steps;
              Table.cell_float bound;
              Table.cell_float (float_of_int o.summary.Metrics.max_steps /. bound);
              Table.cell_int (R.Polylog_rename.names p);
              Table.cell_int o.summary.Metrics.registers;
              Table.cell_float (R.Spec.polylog_registers ~k ~n_names);
              Table.cell_int o.failures;
            ])
          [ 4; 8; 16; 32 ])
      [ 1024; 16384; 262144 ]
  in
  Table.make ~id:"T2" ~title:"Theorem 1: PolyLog-Rename(k, N) sweep"
    ~header:
      [ "k"; "N"; "max steps"; "bound"; "ratio"; "M"; "registers"; "r-bound"; "failed" ]
    ~notes:
      [
        "Shape holds if ratio stays flat (or falls) as k and N grow:";
        "steps = O(log k (log N + log k log log N)), M = O(k), r = O(k log(N/k)).";
      ]
    rows

let t3_efficient () =
  let rows =
    List.map
      (fun k ->
        let mem = Memory.create () in
        let rt = Runtime.create mem in
        let e = R.Efficient_rename.create ~rng:(Rng.create ~seed:(13 * k)) mem ~name:"ef" ~k in
        let o =
          run_renaming
            ~label:(Printf.sprintf "k=%d" k)
            ~seed:k ~ids:(List.init k (fun i -> 1000 + (257 * i)))
            (fun ~me -> R.Efficient_rename.rename e ~me)
            mem rt
        in
        check_distinct "T3" o.names;
        [
          Table.cell_int k;
          Table.cell_int o.summary.Metrics.max_steps;
          Table.cell_float (float_of_int o.summary.Metrics.max_steps /. float_of_int k);
          Table.cell_int (max_name o.names + 1);
          Table.cell_int (R.Spec.efficient_names ~k);
          Table.cell_int (R.Efficient_rename.intermediate_names e);
          Table.cell_int o.summary.Metrics.registers;
          Table.cell_float
            (float_of_int o.summary.Metrics.registers /. float_of_int (k * k));
        ])
      [ 2; 4; 8; 16; 24 ]
  in
  Table.make ~id:"T3" ~title:"Theorem 2: Efficient-Rename(k)"
    ~header:[ "k"; "max steps"; "steps/k"; "M meas"; "2k-1"; "M'"; "registers"; "r/k^2" ]
    ~notes:
      [
        "Shape: M meas <= 2k-1 always; r/k^2 bounded.  steps/k grows with the";
        "substituted final stage (snapshot renaming costs O(M') reads per scan";
        "where AF would pay O(M') total) — see EXPERIMENTS.md, Substitution 2.";
      ]
    rows

let t4_almost_adaptive () =
  let n = 64 and n_names = 2048 in
  let rows =
    List.map
      (fun k ->
        let mem = Memory.create () in
        let rt = Runtime.create mem in
        let a =
          R.Almost_adaptive.create ~rng:(Rng.create ~seed:(17 * k)) mem ~name:"aa" ~n
            ~inputs:n_names
        in
        let levels = ref [] in
        let o =
          run_renaming
            ~label:(Printf.sprintf "k=%d" k)
            ~seed:(19 + k) ~ids:(ids_spread ~count:k ~bound:n_names)
            (fun ~me ->
              let name, level = R.Almost_adaptive.rename_leveled a ~me in
              levels := level :: !levels;
              Some name)
            mem rt
        in
        check_distinct "T4" o.names;
        let bound = R.Almost_adaptive.name_bound_for_contention a ~k in
        [
          Table.cell_int k;
          Table.cell_int o.summary.Metrics.max_steps;
          Table.cell_int (max_name o.names + 1);
          Table.cell_int bound;
          Table.cell_int (List.fold_left max 0 !levels);
          Table.cell_int (R.Almost_adaptive.reserve_uses a);
          Table.cell_int o.summary.Metrics.registers;
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  Table.make ~id:"T4"
    ~title:(Printf.sprintf "Theorem 3: Almost-Adaptive(N=%d), n=%d, k unknown" n_names n)
    ~header:[ "k"; "max steps"; "max name+1"; "name bound(k)"; "top level"; "reserve"; "registers" ]
    ~notes:
      [
        "Shape: names stay within the k-dependent bound although the code";
        "never sees k; the reserve lane is never exercised.";
      ]
    rows

let t5_adaptive () =
  let n = 32 in
  let rows =
    List.map
      (fun k ->
        let mem = Memory.create () in
        let rt = Runtime.create mem in
        let a = R.Adaptive_rename.create ~rng:(Rng.create ~seed:(23 * k)) mem ~name:"ad" ~n in
        let o =
          run_renaming
            ~label:(Printf.sprintf "k=%d" k)
            ~seed:(29 + k) ~ids:(List.init k (fun i -> 777 + (13 * i)))
            (fun ~me -> Some (R.Adaptive_rename.rename a ~me))
            mem rt
        in
        check_distinct "T5" o.names;
        [
          Table.cell_int k;
          Table.cell_int o.summary.Metrics.max_steps;
          Table.cell_float (float_of_int o.summary.Metrics.max_steps /. float_of_int k);
          Table.cell_int (max_name o.names + 1);
          Table.cell_int (R.Adaptive_rename.name_bound_for_contention ~k);
          Table.cell_int (R.Adaptive_rename.reserve_uses a);
          Table.cell_int o.summary.Metrics.registers;
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  Table.make ~id:"T5" ~title:(Printf.sprintf "Theorem 4: Adaptive-Rename, n=%d, k and N unknown" n)
    ~header:[ "k"; "max steps"; "steps/k"; "max name+1"; "8k-lgk-1"; "reserve"; "registers" ]
    ~notes:[ "Shape: names within 8k-lgk-1; registers O(n^2) independent of k." ]
    rows

let t6_store_collect () =
  let k = 8 in
  let run label make =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let sc = make mem in
    let first_steps = ref 0 in
    let procs =
      List.init k (fun i ->
          Runtime.spawn rt ~name:(Printf.sprintf "s%d" i) (fun () ->
              SC.store sc ~me:(i * 3) (100 + i)))
    in
    Scheduler.run ~max_commits:200_000_000 rt (Scheduler.random (Rng.create ~seed:41));
    List.iter (fun p -> first_steps := max !first_steps (Runtime.steps p)) procs;
    (* subsequent store *)
    let second = Runtime.spawn rt ~name:"again" (fun () -> SC.store sc ~me:0 999) in
    Scheduler.run rt (Scheduler.round_robin ());
    let collector = Runtime.spawn rt ~name:"c" (fun () -> ignore (SC.collect sc)) in
    Scheduler.run rt (Scheduler.round_robin ());
    [
      label;
      Table.cell_int !first_steps;
      Table.cell_int (Runtime.steps second);
      Table.cell_int (Runtime.steps collector);
      Table.cell_int (SC.slots sc);
      Table.cell_int (Memory.registers mem);
    ]
  in
  let rows =
    [
      run "(i) k,N known (N=256)" (fun mem ->
          SC.create_known ~rng:(Rng.create ~seed:51) mem ~name:"sc" ~k ~inputs:256);
      run "(ii) N=O(n) (n=32)" (fun mem ->
          SC.create_almost ~rng:(Rng.create ~seed:52) mem ~name:"sc" ~n:32 ~inputs:32);
      run "(iii) N=poly(n) (n=32,N=1024)" (fun mem ->
          SC.create_almost ~rng:(Rng.create ~seed:53) mem ~name:"sc" ~n:32 ~inputs:1024);
      run "(iv) fully adaptive (n=32)" (fun mem ->
          SC.create_adaptive ~rng:(Rng.create ~seed:54) mem ~name:"sc" ~n:32);
    ]
  in
  Table.make ~id:"T6" ~title:(Printf.sprintf "Theorem 5: Store&Collect, k=%d contenders" k)
    ~header:
      [ "setting"; "first store steps"; "next store"; "collect steps"; "slots"; "registers" ]
    ~notes:
      [
        "Shape: subsequent stores are 1 step; collect reads an O(k) prefix";
        "(compare collect steps with the slot count).";
      ]
    rows

let t7_lower_bound () =
  let case label ~n_names ~k build =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let rename, m = build mem in
    let spawn v =
      Runtime.spawn rt ~name:(Printf.sprintf "p%d" v) (fun () -> ignore (rename ~me:v))
    in
    let r = Memory.registers mem in
    let res = Adversary.force rt ~spawn ~n_names ~k ~m ~r in
    [
      label;
      Table.cell_int n_names;
      Table.cell_int k;
      Table.cell_int m;
      Table.cell_int r;
      Table.cell_int res.Adversary.theoretical_stages;
      Table.cell_int res.Adversary.forced_stages;
      Table.cell_int res.Adversary.bound;
      Table.cell_int res.Adversary.max_steps;
    ]
  in
  let rows =
    [
      case "Majority" ~n_names:4096 ~k:8 (fun mem ->
          let m =
            R.Majority.create ~rng:(Rng.create ~seed:61) mem ~name:"maj" ~l:8
              ~inputs:4096
          in
          ((fun ~me -> R.Majority.rename m ~me), R.Majority.names m));
      case "Majority" ~n_names:65536 ~k:8 (fun mem ->
          let m =
            R.Majority.create ~rng:(Rng.create ~seed:62) mem ~name:"maj" ~l:8
              ~inputs:65536
          in
          ((fun ~me -> R.Majority.rename m ~me), R.Majority.names m));
      case "Basic-Rename" ~n_names:4096 ~k:8 (fun mem ->
          let b =
            R.Basic_rename.create ~rng:(Rng.create ~seed:63) mem ~name:"bas" ~k:8
              ~inputs:4096
          in
          ((fun ~me -> R.Basic_rename.rename b ~me), R.Basic_rename.names b));
      case "Moir-Anderson" ~n_names:1024 ~k:8 (fun mem ->
          let ma = R.Moir_anderson.create mem ~name:"ma" ~side:8 in
          ((fun ~me -> R.Moir_anderson.rename ma ~me), R.Moir_anderson.capacity ma));
      (* register-lean strawman: with r this small the log term binds and
         the adversary forces multiple stages *)
      case "Chain (r-lean)" ~n_names:8192 ~k:8 (fun mem ->
          let c = R.Chain_rename.create mem ~name:"ch" ~m:15 in
          ((fun ~me -> R.Chain_rename.rename c ~me), R.Chain_rename.names c));
      case "Chain (r-lean)" ~n_names:32768 ~k:4 (fun mem ->
          let c = R.Chain_rename.create mem ~name:"ch" ~m:7 in
          ((fun ~me -> R.Chain_rename.rename c ~me), R.Chain_rename.names c));
    ]
  in
  (* Theorem 7's variant: a first Store against the adversary *)
  let store_case ~n_names ~k =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let sc = SC.create_known ~rng:(Rng.create ~seed:67) mem ~name:"sc" ~k ~inputs:n_names in
    let spawn v =
      Runtime.spawn rt ~name:(Printf.sprintf "p%d" v) (fun () -> SC.store sc ~me:v v)
    in
    let r = Memory.registers mem in
    let budget = R.Spec.store_lower_bound ~k ~n_names ~r - 1 in
    let res =
      Adversary.force ~stage_budget:budget rt ~spawn ~n_names ~k ~m:(SC.slots sc) ~r
    in
    [
      "Store (Thm 7)";
      Table.cell_int n_names;
      Table.cell_int k;
      Table.cell_int (SC.slots sc);
      Table.cell_int r;
      Table.cell_int res.Adversary.theoretical_stages;
      Table.cell_int res.Adversary.forced_stages;
      Table.cell_int res.Adversary.bound;
      Table.cell_int res.Adversary.max_steps;
    ]
  in
  let rows = rows @ [ store_case ~n_names:4096 ~k:8 ] in
  Table.make ~id:"T7" ~title:"Theorems 6-7: adversary-forced local steps"
    ~header:
      [ "algorithm"; "N"; "k"; "M"; "r"; "t theory"; "t forced"; "bound 1+t"; "max steps" ]
    ~notes:
      [
        "Shape: measured max steps >= bound 1+t for every algorithm; the";
        "theory stage budget t = min{k-2, log_2r(N/2M)} shrinks as r grows.";
      ]
    rows

let t8_repositories () =
  let selfish_row n =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let sd = SD.create mem ~name:"sd" ~n in
    let procs =
      Array.init n (fun i ->
          Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
              for v = 1 to 10 do
                ignore (SD.deposit sd ~me:i ((100 * i) + v))
              done))
    in
    let rng = Rng.create ~seed:(71 + n) in
    Scheduler.run_for rt ~commits:(100 * n) (Scheduler.random rng);
    let crashed = n / 2 in
    for i = 0 to crashed - 1 do
      Runtime.crash rt procs.(i)
    done;
    Scheduler.run ~max_commits:200_000_000 rt (Scheduler.random rng);
    let pinned = SD.pinned sd ~alive:(fun q -> q >= crashed) in
    [
      "Selfish";
      Table.cell_int n;
      Table.cell_int crashed;
      Table.cell_int (List.length (SD.deposits sd));
      Table.cell_int (List.length pinned);
      Table.cell_int (n - 1);
      Table.cell_int (Memory.registers mem);
      Table.cell_float
        (float_of_int (Memory.reads mem + Memory.writes mem)
        /. float_of_int (max 1 (List.length (SD.deposits sd))));
    ]
  in
  let altruistic_row n =
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let ad = AD.create mem ~name:"ad" ~n in
    AD.spawn_all rt ad
      ~values:(fun me -> List.init 4 (fun v -> (100 * me) + v))
      ~on_deposit:(fun ~me:_ ~index:_ ~value:_ -> ());
    let rng = Rng.create ~seed:(81 + n) in
    Scheduler.run_for rt ~commits:(300 * n) (Scheduler.random rng);
    let crashed = n - 1 in
    List.iter
      (fun p ->
        let nm = Runtime.proc_name p in
        let victim i = nm = Printf.sprintf "depositor%d" i || nm = Printf.sprintf "provider%d" i in
        if List.exists victim (List.init crashed Fun.id) then Runtime.crash rt p)
      (Runtime.procs rt);
    Scheduler.run ~max_commits:200_000_000 rt (Scheduler.random rng);
    let stranded = HB.stranded (AD.board ad) ~alive:(fun q -> q >= crashed) in
    [
      "Altruistic";
      Table.cell_int n;
      Table.cell_int crashed;
      Table.cell_int (List.length (AD.deposits ad));
      Table.cell_int (List.length stranded);
      Table.cell_int (n * (n - 1));
      Table.cell_int (Memory.registers mem);
      Table.cell_float
        (float_of_int (Memory.reads mem + Memory.writes mem)
        /. float_of_int (max 1 (List.length (AD.deposits ad))));
    ]
  in
  Table.make ~id:"T8" ~title:"Theorems 8-9: repository waste under crashes"
    ~header:
      [ "repository"; "n"; "crashed"; "deposits"; "wasted"; "waste bound"; "registers"; "ops/deposit" ]
    ~notes:
      [
        "Shape: Selfish wastes at most n-1 registers (those pinned in W by";
        "crashed processes); Altruistic strands at most n(n-1) names on the";
        "Help board.";
      ]
    (List.concat [ List.map selfish_row [ 4; 8 ]; List.map altruistic_row [ 3; 4 ] ])

let t9_unbounded_naming () =
  let rows =
    List.map
      (fun n ->
        let mem = Memory.create () in
        let rt = Runtime.create mem in
        let un = UN.create mem ~name:"un" ~n in
        let procs =
          Array.init n (fun i ->
              Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
                  for _ = 1 to 8 do
                    ignore (UN.acquire un ~me:i)
                  done))
        in
        let rng = Rng.create ~seed:(91 + n) in
        Scheduler.run_for rt ~commits:(150 * n) (Scheduler.random rng);
        Runtime.crash rt procs.(0);
        Scheduler.run ~max_commits:200_000_000 rt (Scheduler.random rng);
        let names = UN.committed_names un in
        let high = List.fold_left max 0 names in
        let missing =
          List.filter (fun i -> not (List.mem i names)) (List.init high Fun.id)
        in
        let exclusive = List.length (List.sort_uniq compare names) = List.length names in
        [
          Table.cell_int n;
          Table.cell_int (List.length names);
          (if exclusive then "yes" else "NO");
          Table.cell_int high;
          Table.cell_int (List.length missing);
          Table.cell_int (Memory.registers mem);
        ])
      [ 3; 4; 6 ]
  in
  Table.make ~id:"T9" ~title:"Theorem 10: unbounded naming (1 crash mid-run)"
    ~header:[ "n"; "names committed"; "exclusive"; "high-water"; "skipped so far"; "registers" ]
    ~notes:
      [
        "Shape: exclusiveness always; skipped integers below the high-water";
        "mark are standing candidates plus at most n-1 pinned by crashes";
        "(they shrink again as survivors keep acquiring).";
      ]
    rows

let f1_majority_progress () =
  let k = 8 and n_names = 4096 in
  (* one run per contention multiplier: within budget (x1) the stages beat
     the >= 1/2 guarantee outright; overloaded (x4, x8) the geometric
     cascade of Lemma 5 becomes visible *)
  let run_factor factor =
    let contenders = k * factor in
    let mem = Memory.create () in
    let rt = Runtime.create mem in
    let b =
      R.Basic_rename.create ~rng:(Rng.create ~seed:(95 + factor)) mem ~name:"bas" ~k
        ~inputs:n_names
    in
    let stage_of = Array.make contenders (-1) in
    List.iteri
      (fun i me ->
        ignore
          (Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
               let _, stage = R.Basic_rename.rename_traced b ~me in
               stage_of.(i) <- stage)))
      (ids_spread ~count:contenders ~bound:n_names);
    Scheduler.run ~max_commits:200_000_000 rt (Scheduler.random (Rng.create ~seed:96));
    let stages = R.Basic_rename.stages b in
    let per_stage =
      List.init (stages + 1) (fun s ->
          Array.to_list stage_of |> List.filter (fun x -> x = s) |> List.length)
    in
    (contenders, per_stage)
  in
  let runs = List.map run_factor [ 1; 16; 40 ] in
  let budgets =
    let mem = Memory.create () in
    R.Basic_rename.stage_budgets
      (R.Basic_rename.create ~rng:(Rng.create ~seed:95) mem ~name:"b" ~k ~inputs:n_names)
  in
  let stages = List.length budgets in
  let rows =
    List.init (stages + 1) (fun s ->
        let label =
          if s < stages then Table.cell_int s else "unserved"
        in
        let budget =
          if s < stages then Table.cell_int (List.nth budgets s) else "-"
        in
        label :: budget
        :: List.map (fun (_, per_stage) -> Table.cell_int (List.nth per_stage s)) runs)
  in
  Table.make ~id:"F1"
    ~title:
      (Printf.sprintf
         "Lemma 5 series: renamed per stage of Basic-Rename(k=%d, N=%d) under x1/x16/x40 contention"
         k n_names)
    ~header:
      ([ "stage"; "budget" ]
      @ List.map (fun (c, _) -> Printf.sprintf "renamed (%d procs)" c) runs)
    ~notes:
      [
        "Shape: within budget (x1) the first stage serves everyone (the >= 1/2";
        "guarantee is a worst case); under overload the counts cascade";
        "geometrically through the stages, and the leftover is 'unserved'";
        "(absorbed by the reserve lane in composed algorithms).";
      ]
    rows

let f2_crossover () =
  let k = 8 in
  let rows =
    List.map
      (fun n_names ->
        let ids = ids_spread ~count:k ~bound:n_names in
        let measure algo build =
          let mem = Memory.create () in
          let rt = Runtime.create mem in
          let rename = build mem in
          let o =
            run_renaming
              ~label:(Printf.sprintf "algo=%s,N=%d" algo n_names)
              ~seed:(n_names + 5) ~ids rename mem rt
          in
          o.summary.Metrics.max_steps
        in
        let snapshot_steps =
          if n_names > 4096 then None
          else
            Some
              (measure "snapshot" (fun mem ->
                   let a = R.Attiya_renaming.create mem ~name:"at" ~slots:n_names () in
                   fun ~me -> R.Attiya_renaming.rename a ~slot:me))
        in
        let basic =
          measure "basic" (fun mem ->
              let b =
                R.Basic_rename.create ~rng:(Rng.create ~seed:(n_names + 1)) mem
                  ~name:"bas" ~k ~inputs:n_names
              in
              fun ~me -> R.Basic_rename.rename b ~me)
        in
        let polylog =
          measure "polylog" (fun mem ->
              let p =
                R.Polylog_rename.create ~rng:(Rng.create ~seed:(n_names + 2)) mem
                  ~name:"pl" ~k ~inputs:n_names
              in
              fun ~me -> R.Polylog_rename.rename p ~me)
        in
        let efficient =
          measure "efficient" (fun mem ->
              let e =
                R.Efficient_rename.create ~rng:(Rng.create ~seed:(n_names + 3)) mem
                  ~name:"ef" ~k
              in
              fun ~me -> R.Efficient_rename.rename e ~me)
        in
        [
          Table.cell_int n_names;
          (match snapshot_steps with Some s -> Table.cell_int s | None -> "-");
          Table.cell_int basic;
          Table.cell_int polylog;
          Table.cell_int efficient;
        ])
      [ 256; 1024; 4096; 16384; 65536 ]
  in
  Table.make ~id:"F2" ~title:(Printf.sprintf "series: steps vs N at k=%d — who wins where" k)
    ~header:[ "N"; "snapshot O(N)"; "Basic"; "PolyLog"; "Efficient (N-free)" ]
    ~notes:
      [
        "Shape: the O(N) baseline wins only at small N and grows linearly;";
        "Basic/PolyLog grow polylogarithmically; Efficient is flat in N.";
        "('-' = configuration too expensive for the harness budget.)";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                   *)
(* ------------------------------------------------------------------ *)

let a1_expander_constants () =
  (* How the expander dimensioning constants trade name-range size against
     per-stage success — the reason the paper's 12e4 exists. *)
  let l = 16 and n_names = 4096 in
  let presets =
    [
      ("tight (2, 1)", Exsel_expander.Params.tight);
      ("practical (4, 2.5)", Exsel_expander.Params.practical);
      ( "generous (4, 8)",
        {
          Exsel_expander.Params.degree_factor = 4.0;
          width_factor = 8.0;
          min_degree = 4;
          width_floor = 6;
        } );
    ]
  in
  let rows =
    List.map
      (fun (label, params) ->
        let mem = Memory.create () in
        let rt = Runtime.create mem in
        let m =
          R.Majority.create ~params ~rng:(Rng.create ~seed:111) mem ~name:"maj" ~l
            ~inputs:n_names
        in
        let o =
          run_renaming
            ~label:(Printf.sprintf "preset=%s" label)
            ~seed:7 ~ids:(ids_spread ~count:l ~bound:n_names)
            (fun ~me -> R.Majority.rename m ~me)
            mem rt
        in
        check_distinct "A1" o.names;
        [
          label;
          Table.cell_int (Exsel_expander.Bipartite.degree (R.Majority.graph m));
          Table.cell_int (R.Majority.names m);
          Table.cell_int (List.length o.names);
          Table.cell_int o.failures;
          Table.cell_int o.summary.Metrics.max_steps;
          Table.cell_int o.summary.Metrics.registers;
        ])
      presets
  in
  let paper_row =
    (* Lemma 3 verbatim: dimensions only — the register file would not fit *)
    let params = Exsel_expander.Params.paper in
    [
      "paper (4, 12e4) [dims only]";
      Table.cell_int (Exsel_expander.Params.degree params ~inputs:n_names ~l);
      Table.cell_int (Exsel_expander.Params.width params ~inputs:n_names ~l);
      "-";
      "-";
      "-";
      Table.cell_int (2 * Exsel_expander.Params.width params ~inputs:n_names ~l);
    ]
  in
  let rows = rows @ [ paper_row ] in
  Table.make ~id:"A1"
    ~title:(Printf.sprintf "ablation: expander constants, Majority(l=%d, N=%d)" l n_names)
    ~header:[ "preset (deg, width)"; "degree"; "M"; "renamed"; "failed"; "max steps"; "registers" ]
    ~notes:
      [
        "Wider graphs buy success probability with name-range size — the";
        "trade the paper resolves with its galactic 12e4 constant; the";
        "practical preset relies on certification-and-resampling instead.";
      ]
    rows

let a2_certification () =
  (* What certification-with-resampling contributes: acceptance rates of
     raw sampled graphs per preset. *)
  let l = 8 and n_names = 1024 and samples = 60 in
  let rate params =
    let rng = Rng.create ~seed:222 in
    let passed = ref 0 in
    for _ = 1 to samples do
      let g = Exsel_expander.Gen.sample (Rng.split rng) params ~inputs:n_names ~l in
      match Exsel_expander.Check.verify_sampled (Rng.split rng) g ~l ~trials:100 with
      | Ok () -> incr passed
      | Error _ -> ()
    done;
    float_of_int !passed /. float_of_int samples
  in
  let rows =
    List.map
      (fun (label, params) -> [ label; Table.cell_float (rate params) ])
      [
        ("tight (2, 1)", Exsel_expander.Params.tight);
        ("practical (4, 2.5)", Exsel_expander.Params.practical);
      ]
  in
  Table.make ~id:"A2"
    ~title:
      (Printf.sprintf
         "ablation: certification acceptance of raw sampled graphs (l=%d, N=%d, %d samples)"
         l n_names samples)
    ~header:[ "preset"; "pass rate" ]
    ~notes:
      [
        "Majority.create retries up to 16 samples, so an acceptance rate p";
        "leaves a miss probability of (1-p)^16 — with the practical preset";
        "effectively zero; the reserve lane covers the remainder.";
      ]
    rows

let a3_reserve_lane () =
  (* What the deterministic reserve lane costs and buys: overload a
     PolyLog instance and count who the reserve rescues. *)
  let k = 4 and n_names = 1024 in
  let rows =
    List.map
      (fun factor ->
        let contenders = k * factor in
        let mem = Memory.create () in
        let rt = Runtime.create mem in
        let p =
          R.Polylog_rename.create ~rng:(Rng.create ~seed:333) mem ~name:"pl" ~k
            ~inputs:n_names
        in
        let reserve = R.Moir_anderson.create mem ~name:"rsv" ~side:contenders in
        let rescued = ref 0 in
        let o =
          run_renaming
            ~label:(Printf.sprintf "contenders=%d" contenders)
            ~seed:(factor + 40)
            ~ids:(ids_spread ~count:contenders ~bound:n_names)
            (fun ~me ->
              match R.Polylog_rename.rename p ~me with
              | Some w -> Some w
              | None -> (
                  incr rescued;
                  match R.Moir_anderson.rename reserve ~me with
                  | Some w -> Some (R.Polylog_rename.names p + w)
                  | None -> None))
            mem rt
        in
        check_distinct "A3" o.names;
        [
          Table.cell_int contenders;
          Table.cell_int (List.length o.names);
          Table.cell_int !rescued;
          Table.cell_int o.failures;
          Table.cell_int
            (R.Moir_anderson.side reserve * (R.Moir_anderson.side reserve + 1));
        ])
      [ 1; 8; 32 ]
  in
  Table.make ~id:"A3"
    ~title:
      (Printf.sprintf
         "ablation: reserve lane under overload, PolyLog(k=%d, N=%d) + MA reserve" k
         n_names)
    ~header:[ "contenders"; "named"; "rescued by reserve"; "unserved"; "reserve registers" ]
    ~notes:
      [
        "Within budget the reserve is dead weight (its registers are the";
        "cost); under overload it restores wait-freedom for every process";
        "the expander lanes reject.";
      ]
    rows

let x1_long_lived () =
  (* Extension: long-lived renaming under churn — exclusive holds with a
     name range tracking point contention. *)
  let n = 8 in
  let rows =
    List.map
      (fun holders ->
        let mem = Memory.create () in
        let rt = Runtime.create mem in
        let ll = R.Long_lived.create mem ~name:"ll" ~n in
        let max_seen = ref 0 in
        let rounds = 5 in
        for i = 0 to holders - 1 do
          ignore
            (Runtime.spawn rt ~name:(Printf.sprintf "p%d" i) (fun () ->
                 for _ = 1 to rounds do
                   let x = R.Long_lived.acquire ll ~me:i in
                   if x > !max_seen then max_seen := x;
                   R.Long_lived.release ll ~me:i
                 done))
        done;
        Scheduler.run ~max_commits:200_000_000 rt
          (Scheduler.random (Rng.create ~seed:(500 + holders)));
        [
          Table.cell_int holders;
          Table.cell_int (rounds * holders);
          Table.cell_int (!max_seen + 1);
          Table.cell_int ((2 * holders) - 1);
          Table.cell_int (Memory.registers mem);
        ])
      [ 1; 2; 4; 8 ]
  in
  Table.make ~id:"X1"
    ~title:(Printf.sprintf "extension: long-lived renaming under churn, n=%d" n)
    ~header:[ "concurrent holders"; "acquires"; "max name+1"; "2k-1"; "registers" ]
    ~notes:
      [
        "Extension beyond the paper's one-shot setting: names are released";
        "and reused; the observed range tracks the point contention k, not";
        "the total number of acquires.";
      ]
    rows

let x2_message_passing () =
  (* The model where renaming was born: ABDPR stable-vectors renaming,
     message complexity and name ranges under crashes. *)
  let module Mnet = Exsel_msgnet.Mnet in
  let module Abdpr = Exsel_msgnet.Abdpr_renaming in
  let rows =
    List.concat_map
      (fun (n, f) ->
        List.map
          (fun crashes ->
            let net = Abdpr.make_net ~n in
            let originals = List.init n (fun i -> (i, 100 + (7 * i))) in
            let crash_after = List.init crashes (fun i -> (i, 25 + (15 * i))) in
            let decided =
              Abdpr.run ~net ~f ~originals ~rng:(Rng.create ~seed:(600 + n + crashes))
                ~crash_after ()
            in
            let names = List.map snd decided in
            if List.length (List.sort_uniq compare names) <> List.length names then
              failwith "X2: duplicate names";
            let max_sent =
              List.fold_left (fun acc p -> max acc (Mnet.sent p)) 0 (Mnet.procs net)
            in
            [
              Table.cell_int n;
              Table.cell_int f;
              Table.cell_int crashes;
              Table.cell_int (List.length decided);
              Table.cell_int (List.fold_left max 0 names + 1);
              Table.cell_int (Abdpr.name_bound ~n ~f);
              Table.cell_int max_sent;
            ])
          [ 0; f ])
      [ (5, 2); (9, 4) ]
  in
  Table.make ~id:"X2"
    ~title:"extension: renaming in asynchronous message passing (ABDPR [14])"
    ~header:
      [ "n"; "f"; "crashed"; "decided"; "max name+1"; "M=(f+1)n"; "max msgs sent" ]
    ~notes:
      [
        "The model where renaming was introduced: stable-vectors renaming";
        "with majorities; survivors always decide exclusive names within";
        "(f+1)n (the original paper's refined mapping reaches n+f).";
      ]
    rows

let x3_randomized () =
  (* Randomized loose renaming vs the deterministic primitives: probes/steps
     at equal contention. *)
  let rows =
    List.concat_map
      (fun k ->
        let run label build =
          let mem = Memory.create () in
          let rt = Runtime.create mem in
          let rename = build mem in
          let o =
            run_renaming
              ~label:(Printf.sprintf "algo=%s,k=%d" label k)
              ~seed:(700 + k) ~ids:(List.init k (fun i -> 31 * i)) rename mem rt
          in
          check_distinct "X3" o.names;
          [
            label;
            Table.cell_int k;
            Table.cell_int o.summary.Metrics.max_steps;
            Table.cell_float
              (float_of_int o.summary.Metrics.total_steps /. float_of_int k);
            Table.cell_int (max_name o.names + 1);
            Table.cell_int o.failures;
          ]
        in
        [
          run "Randomized (eps=1)" (fun mem ->
              let rr =
                R.Randomized_rename.create mem ~name:"rr" ~seed:(11 * k) ~k ~epsilon:1.0
              in
              fun ~me -> R.Randomized_rename.rename rr ~me);
          run "MA (deterministic)" (fun mem ->
              let ma = R.Moir_anderson.create mem ~name:"ma" ~side:k in
              fun ~me -> R.Moir_anderson.rename ma ~me);
          run "Chain (deterministic)" (fun mem ->
              let c = R.Chain_rename.create mem ~name:"ch" ~m:(2 * k) in
              fun ~me -> R.Chain_rename.rename c ~me);
          run "IS one-shot (BG-style)" (fun mem ->
              let ir = R.Is_rename.create mem ~name:"ir" ~n:k in
              let next = ref 0 in
              fun ~me ->
                ignore me;
                let slot = !next in
                incr next;
                Some (R.Is_rename.rename ir ~slot));
        ])
      [ 8; 16; 32 ]
  in
  Table.make ~id:"X3"
    ~title:"extension: randomized loose renaming vs deterministic primitives"
    ~header:[ "algorithm"; "k"; "max steps"; "avg steps"; "max name+1"; "failed" ]
    ~notes:
      [
        "Private coins spread contention: the randomized table keeps both";
        "average and worst-case probes low at the cost of a (1+eps)k name";
        "range and Las-Vegas (not deterministic) guarantees.";
      ]
    rows

let all_named =
  [
    ("T1", t1_comparison);
    ("T2", t2_polylog);
    ("T3", t3_efficient);
    ("T4", t4_almost_adaptive);
    ("T5", t5_adaptive);
    ("T6", t6_store_collect);
    ("T7", t7_lower_bound);
    ("T8", t8_repositories);
    ("T9", t9_unbounded_naming);
    ("F1", f1_majority_progress);
    ("F2", f2_crossover);
    ("A1", a1_expander_constants);
    ("A2", a2_certification);
    ("A3", a3_reserve_lane);
    ("X1", x1_long_lived);
    ("X2", x2_message_passing);
    ("X3", x3_randomized);
  ]

let all () = List.map (fun (_, f) -> f ()) all_named
