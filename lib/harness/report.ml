(* Assembles the structured export the bench driver and the CLI write
   with --json: every experiment table plus the per-run observations
   captured while it executed. *)

module Json = Exsel_obs.Json

type entry = { table : Table.t; runs : Experiments.observation list }

let observe named =
  Experiments.set_observing true;
  ignore (Experiments.drain_observations ());
  Fun.protect
    ~finally:(fun () -> Experiments.set_observing false)
    (fun () ->
      List.map
        (fun (_, f) ->
          let table = f () in
          { table; runs = Experiments.drain_observations () })
        named)

let entry_to_json e =
  Json.Obj
    [
      ("id", Json.String e.table.Table.id);
      ("table", Table.to_json e.table);
      ("runs", Json.List (List.map Experiments.observation_to_json e.runs));
    ]

let document ?metrics entries =
  Json.Obj
    ([
       ("schema", Json.String "exsel-bench/1");
       ("experiments", Json.List (List.map entry_to_json entries));
     ]
    @
    match metrics with
    | None -> []
    | Some reg -> [ ("metrics", Exsel_obs.Metrics.to_json reg) ])

let write_file ?metrics path entries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.output oc (document ?metrics entries))
