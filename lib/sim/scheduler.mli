(** Scheduling policies and crash injection.

    A policy picks which runnable process commits its next shared-memory
    operation.  Policies compose: {!with_crashes} wraps any policy with a
    crash plan.  Fully programmatic adversaries (such as the lower-bound
    construction of the paper's Theorem 6) drive {!Runtime.commit} directly
    instead of going through a policy. *)

type policy = Runtime.t -> Runtime.proc option
(** Return the process whose pending operation should commit next, or
    [None] to stop the execution. *)

val round_robin : unit -> policy
(** Fair cyclic order over runnable processes.  Fresh state per call.
    Cursor-based over the runtime's runnable index: O(log runnable) per
    decision, allocation-free. *)

val random : Rng.t -> policy
(** Uniformly random runnable process at each commit.  One generator
    draw and one O(1) index lookup per decision; draws (and hence whole
    executions) are identical to the historical list-based
    implementation for a given seed. *)

val sequential : unit -> policy
(** Run the lowest-pid runnable process to completion, then the next.
    Simulates the solo/contention-free schedule (useful for wait-freedom
    tests: processes observed after all others crashed). *)

val with_crashes : crash_at:(int * int) list -> policy -> policy
(** [with_crashes ~crash_at policy] crashes process [pid] just before the
    [c]-th global commit for each [(c, pid)] in [crash_at] (commits are
    numbered from 0), then defers to [policy]. *)

val random_crashes : Rng.t -> victims:int list -> prob:float -> policy -> policy
(** Before each commit, each still-runnable victim crashes with probability
    [prob].  Deterministic given the generator. *)

val run : ?max_commits:int -> Runtime.t -> policy -> unit
(** Alias of {!Runtime.run} for readability at call sites. *)

val run_for : Runtime.t -> commits:int -> policy -> unit
(** Drive at most [commits] operations and return, whether or not work
    remains — a warm-up/partial-execution helper that, unlike a [run] with
    [max_commits], never raises {!Runtime.Stalled}. *)
