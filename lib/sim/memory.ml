type t = {
  mutable next_id : int;
  mutable reads : int;
  mutable writes : int;
  mutable fingerprints : (unit -> int) list;  (* newest register first *)
  names : (int, string) Hashtbl.t;
}

let create () =
  { next_id = 0; reads = 0; writes = 0; fingerprints = []; names = Hashtbl.create 32 }

let registers t = t.next_id
let reads t = t.reads
let writes t = t.writes

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let note_read t = t.reads <- t.reads + 1
let note_write t = t.writes <- t.writes + 1

let register_fingerprint t f = t.fingerprints <- f :: t.fingerprints

let register_name t id name = Hashtbl.replace t.names id name

let name_of t id =
  match Hashtbl.find_opt t.names id with
  | Some n -> n
  | None -> Printf.sprintf "reg%d" id

let fingerprint t =
  List.fold_left
    (fun acc f -> ((acc * 0x01000193) + f ()) land max_int)
    t.next_id t.fingerprints
