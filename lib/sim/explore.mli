(** Exhaustive schedule exploration (bounded model checking).

    For small protocol instances, enumerate {e every} interleaving of the
    processes' shared-memory operations — optionally with crash decisions —
    and check an invariant at quiescence of each complete execution.  This
    upgrades statistical schedule testing ("no violation in 200 random
    schedules") to a proof over the bounded instance ("no violation in any
    of the 34 650 schedules").

    The runtime replays deterministically: a schedule is the sequence of
    choices taken at each step, and re-running [init] and replaying a
    prefix reconstructs the state exactly (protocol code must be
    deterministic apart from scheduling, which seeded generators ensure).
    Exploration is depth-first with one live runtime per path: a fresh
    runtime is instantiated and its prefix replayed once per {e backtrack}
    (not once per node), so memory use is flat and time is
    O(paths × depth) with a single replay per emitted path — see
    DESIGN.md §8.

    {b Partial-order reduction.}  With [reduction = `Sleep_sets] the
    explorer prunes interleavings that only permute {e independent}
    adjacent operations (different processes touching different registers,
    or both reading).  Every Mazurkiewicz trace — hence every reachable
    quiescent state and every per-process observation sequence — is still
    covered, so invariant checking is unaffected while the path count
    drops combinatorially.  Reduction currently requires [max_crashes = 0]
    and at most 61 processes (sleep-set membership is a pid-indexed
    bitset).

    {b State-hash memoization.}  With [reduction = `State_hash] the
    explorer additionally prunes any node whose {e global state} —
    register values plus per-process status and committed-operation
    signature ({!Runtime.state_signature}) — was already expanded with the
    same crash budget.  Because protocol bodies are deterministic, two
    such nodes root identical subtrees, so every reachable quiescent state
    is still checked (via the first visit) while revisits are cut; [paths]
    and [states] are therefore {e not} comparable with the other modes,
    and a counterexample, if any, may be reported via a different (still
    valid) schedule.  Signatures are 62-bit hashes: a collision could in
    principle mask a state, so use [`None]/[`Sleep_sets] when a bit-exact
    proof over the bounded instance is required — see the soundness
    argument in DESIGN.md §8.  Compatible with [max_crashes > 0].

    Choice fan-out grows factorially with processes × operations: keep
    instances small and use [max_paths] as a safety valve. *)

type choice =
  | Step of int  (** commit the pending operation of process [pid] *)
  | Crash of int  (** crash process [pid] at this point *)

type reduction = [ `None | `Sleep_sets | `State_hash ]

type stats = {
  max_depth : int;  (** longest complete schedule seen *)
  replays : int;  (** fresh-instance replays (backtracks + trace capture) *)
  sleep_prunes : int;
      (** nodes cut because every enabled move was sleeping ([`Sleep_sets]) *)
  hash_hits : int;  (** nodes pruned by state-hash memoization ([`State_hash]) *)
  hash_misses : int;  (** distinct (state, crash-budget) keys expanded *)
  depth_histogram : (int * int) list;
      (** (depth, paths completed at that depth), ascending by depth;
          counts sum to [paths] *)
}

val empty_stats : stats
(** All counters zero, empty histogram — the accumulator seed. *)

type outcome = {
  paths : int;  (** complete executions checked *)
  states : int;  (** scheduling decisions taken across all paths *)
  truncated : bool;  (** stopped at [max_paths] before finishing *)
  failure : (string * choice list) option;
      (** first invariant violation and the schedule reaching it *)
  failure_trace : Trace.event list;
      (** value-carrying trace of the violating execution, captured by
          replaying [failure]'s schedule against a fresh instance with a
          {!Trace} attached; [[]] when there is no failure *)
  stats : stats;  (** exploration-effort counters, for forensics & perf *)
}

val run :
  ?max_crashes:int ->
  ?max_paths:int ->
  ?reduction:reduction ->
  ?jobs:int ->
  ?on_progress:(int -> unit) ->
  init:(unit -> 'ctx * Runtime.t) ->
  check:('ctx -> Runtime.t -> (unit, string) result) ->
  unit ->
  outcome
(** [run ~init ~check ()] explores all schedules of the instance built by
    [init] (which must deterministically create a fresh memory, runtime
    and processes, returning any context [check] needs).  [check] runs at
    quiescence of each path.  [max_crashes] (default 0) bounds crash
    decisions per path; [max_paths] (default 1_000_000) bounds the
    exploration; [reduction] (default [`None]) enables sleep-set pruning
    or state-hash memoization.
    Exploration stops at the first violation.

    [jobs] (default 1) shards the top-level schedule branches — one
    subtree per root choice — across that many domains ({!Pool}) and
    folds the shard outcomes back in root order.  The result is
    field-for-field identical to [jobs = 1]: same counters, same first
    violation, same trace (DESIGN.md §10 gives the argument; when the
    [max_paths] budget would expire inside a shard, that one shard is
    re-run with the exact remaining budget).  [init]/[check] are then
    called concurrently from several domains and must not share mutable
    state across calls.  [`State_hash] shares one memo table across the
    whole tree, so that mode ignores [jobs] and runs sequentially.

    [on_progress] (default a no-op) is a purely observational hook for
    live progress reporting: it receives {e increments} of completed
    paths, fired about every 1024 paths; the increments sum to at most
    [outcome.paths] and never affect the result.  Under [jobs > 1] it is
    called concurrently from the worker domains (it must be thread-safe)
    and a budget-expiring shard's re-run reports its paths again, so
    treat the running total as approximate while the exploration is
    live — the returned [outcome] stays exact and [jobs]-independent.
    @raise Invalid_argument if sleep-set reduction is combined with
    crashes. *)

val independent : Runtime.op_kind -> Runtime.op_kind -> bool
(** The dependency relation underlying the reduction: two operations of
    {e distinct} processes are independent iff they target different
    registers or are both reads.  (Operations of the same process are
    always dependent; callers pass ops of distinct processes.) *)

val pp_choice : Format.formatter -> choice -> unit
(** Render a choice as [pN] (commit) or [xN] (crash). *)

val replay : Runtime.t -> choice list -> unit
(** Re-execute a schedule (as returned in [failure]) against a freshly
    [init]-ed runtime, for debugging a violation.  Attach a {!Trace}
    before replaying to recover the full value-carrying history — replay
    is deterministic, so the trace is identical to [failure_trace]. *)

val shrink :
  init:(unit -> 'ctx * Runtime.t) ->
  check:('ctx -> Runtime.t -> (unit, string) result) ->
  choice list ->
  choice list
(** [shrink ~init ~check schedule] minimizes a violating schedule by
    ddmin-style delta debugging: chunks of choices (halving from
    [length/2] down to 1) are greedily dropped, each candidate is replayed
    against a fresh instance — skipping choices whose process is no longer
    runnable, then completing to quiescence in pid order — and accepted
    only if the completed schedule is strictly shorter and [check] still
    fails.  Sweeps repeat to a fixpoint, so the result is 1-minimal w.r.t.
    chunk removal and [shrink] is idempotent: shrinking its own output
    returns it unchanged.  The result is a complete schedule (quiescent
    instance) that still violates [check] and is never longer than the
    input.
    @raise Invalid_argument if [schedule] does not violate [check]. *)
