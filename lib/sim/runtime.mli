(** Cooperative runtime for asynchronous crash-prone processes.

    Protocol code is ordinary OCaml written in direct style; every shared
    register access ({!read}, {!write}) suspends the process through an
    effect handler.  The suspended operation is exposed as a {e pending}
    operation — its kind and target register are visible {e before} it takes
    effect — and a scheduler (or an adversary, cf. the paper's Theorem 6)
    decides the order in which pending operations commit.  Exactly one
    operation commits at a time, so executions are linearizable by
    construction and every asynchronous interleaving is reachable.

    Crashes: a process can be crashed at any point; its pending operation is
    discarded and its fiber unwound.  A crashed process takes no further
    steps, matching the paper's crash-fault model.

    Local steps: the runtime counts committed shared-memory operations per
    process; [steps] of a process is the paper's local-step complexity. *)

type t
(** A runtime instance: a set of processes over one shared memory. *)

type proc
(** Handle on a spawned process. *)

type op_kind =
  | Read of int  (** pending read of register [id] *)
  | Write of int  (** pending write to register [id] *)

type status =
  | Runnable  (** has a pending operation awaiting commit *)
  | Done  (** body returned *)
  | Crashed  (** crashed by the scheduler *)

type lifecycle =
  | Spawned  (** process created (fired after the body's initial run) *)
  | Finished  (** body returned — status flipped to [Done] *)
  | Killed  (** crashed — status flipped to [Crashed] *)

exception Stalled
(** Raised by {!run} when a positive [max_commits] budget is exhausted while
    runnable processes remain — a liveness-failure detector for tests. *)

val create : Memory.t -> t
(** [create mem] makes a runtime whose processes share memory [mem]. *)

val memory : t -> Memory.t
(** The shared memory the runtime's processes operate on. *)

val spawn : t -> name:string -> (unit -> unit) -> proc
(** [spawn t ~name body] starts a process.  The body runs immediately up to
    its first shared-memory operation (or to completion if it performs
    none); thereafter it advances only when the scheduler commits its
    pending operations.  Results should be communicated through refs or
    registers captured by [body]. *)

(** {2 Operations available inside process bodies} *)

val read : 'a Register.t -> 'a
(** Suspend on a read; returns the register's value at commit time.
    Must be called from within a spawned process body. *)

val write : 'a Register.t -> 'a -> unit
(** Suspend on a write; the register is updated at commit time.
    Must be called from within a spawned process body. *)

(** {2 Scheduling interface} *)

val procs : t -> proc list
(** All processes in spawn order.  Builds a fresh list — prefer
    {!proc_by_pid}/{!nprocs} on hot paths. *)

val nprocs : t -> int
(** Number of spawned processes.  O(1). *)

val proc_by_pid : t -> int -> proc
(** [proc_by_pid t pid] is the process with dense index [pid].  O(1).
    @raise Invalid_argument if [pid] is out of range. *)

val pid : proc -> int
(** Dense index of the process (0-based, in spawn order). *)

val proc_name : proc -> string
(** The diagnostic label given at {!spawn}. *)

val owner : proc -> t
(** The runtime that spawned this process.  Lets ambient observers
    (span sinks, probes) attribute events to the right runtime when
    several runtimes are live at once — nested in one domain, or running
    concurrently on different domains. *)

val status : proc -> status
(** Current lifecycle state of the process. *)

val steps : proc -> int
(** Committed shared-memory operations of this process so far. *)

val pending : proc -> op_kind option
(** The operation the process is suspended on, if runnable. *)

val commit : t -> proc -> unit
(** Commit the pending operation of a runnable process: the memory effect
    takes place and the process runs to its next suspension point or to
    completion.  @raise Invalid_argument if the process is not runnable. *)

val crash : t -> proc -> unit
(** Crash a process: discard its pending operation and unwind its fiber.
    Idempotent on finished processes. *)

val runnable : t -> proc list
(** Processes currently awaiting a commit, in pid order.  Builds a fresh
    list in O(runnable); the index queries below avoid even that. *)

val all_quiet : t -> bool
(** [true] when no process is runnable (all done or crashed).  O(1). *)

(** {2 Runnable-index queries}

    The runtime maintains a dense, pid-sorted index of runnable processes
    (appended at spawn, shift-removed exactly once when a process leaves
    [Runnable]), so the queries below are allocation-free and O(1) or
    O(log runnable) — the scheduler and explorer hot path. *)

val num_runnable : t -> int
(** Number of runnable processes.  O(1). *)

val nth_runnable : t -> int -> proc
(** [nth_runnable t k] is the [k]-th runnable process in pid order — the
    same element as [List.nth (runnable t) k], in O(1).
    @raise Invalid_argument if [k] is out of range. *)

val first_runnable : t -> proc option
(** Lowest-pid runnable process.  O(1). *)

val next_runnable_after : t -> int -> proc option
(** [next_runnable_after t pid] is the runnable process with the least pid
    strictly greater than [pid], if any.  O(log runnable) binary search —
    the round-robin cursor step. *)

val runnable_rank : proc -> int option
(** Position of the process in the pid-sorted runnable index ([Some k] iff
    [nth_runnable t k] is this process), or [None] if not runnable.  O(1). *)

val iter_runnable : t -> (proc -> unit) -> unit
(** Apply a function to every runnable process in pid order, without
    allocating.  The callback must not commit, crash, or spawn. *)

val commits : t -> int
(** Total operations committed in this runtime. *)

val max_steps : t -> int
(** Maximum {!steps} over all processes — the paper's worst-case local-step
    measure for the execution.  Maintained incrementally; O(1). *)

(** {2 State signatures}

    Support for the explorer's [`State_hash] memoization: a cheap integer
    signature of the global state — register values (via
    {!Memory.fingerprint}) plus, per process, its status and the signature
    of the operation/value sequence it has committed so far.  For
    deterministic protocol bodies two nodes with equal signatures have
    identical futures (see DESIGN.md §8). *)

val enable_state_tracking : t -> unit
(** Start maintaining per-process commit signatures.  Must be called
    before any operation commits (i.e. right after {!create}/spawning);
    costs a couple of integer mixes plus one [Hashtbl.hash] of the read
    value per commit. *)

val state_signature : t -> int
(** Signature of the current global state.  Only meaningful if
    {!enable_state_tracking} was called before the first commit. *)

val run : ?max_commits:int -> t -> (t -> proc option) -> unit
(** [run t policy] repeatedly asks [policy] for a runnable process and
    commits its pending operation, until [policy] returns [None] or no
    process is runnable.  [max_commits] (default unlimited) bounds the total
    number of commits; exceeding it raises {!Stalled}. *)

val on_commit : t -> (proc -> op_kind -> unit) -> unit
(** Install a callback invoked after every commit (tracing, invariants). *)

val on_lifecycle : t -> (proc -> lifecycle -> unit) -> unit
(** Install a callback invoked at process lifecycle transitions: after a
    spawn (following the body's initial run to its first suspension), and
    whenever a process leaves [Runnable] — [Finished] after the commit
    hooks of its final operation, [Killed] on crash. *)

(** {2 Value capture (value-carrying traces)}

    When enabled, every commit renders the value read or written — via the
    register's {!Register.set_printer} hook, falling back to a fingerprint
    hash — into a slot that commit hooks can query with {!last_value}.
    Off by default: the untraced commit loop pays a single branch. *)

val set_value_capture : t -> bool -> unit
(** Turn value rendering at commit on or off.  {!Trace.attach} enables it. *)

val last_value : t -> string
(** Rendering of the most recently committed operation's value (the value
    returned for a read, the value stored for a write).  Only meaningful
    inside a commit hook while value capture is on; [""] before the first
    captured commit. *)

val current_proc : unit -> proc option
(** The process whose body is executing right now, if any: set while a
    spawned body runs to its first suspension and while a committed
    operation resumes it (including crash unwinding).  Observability
    layers use this to attribute in-body events — e.g. phase-span
    enter/exit calls — to the process that issued them; combine with
    {!owner} to recover the runtime it belongs to.  [None] outside any
    process body (scheduler code, harness code).

    The slot is domain-local ([Domain.DLS]): each domain tracks its own
    active fiber, so runtimes driven concurrently on different domains
    never observe each other's processes (see DESIGN.md §10). *)
