(** Shared-memory accounting.

    A [Memory.t] tracks how many shared registers a protocol has allocated
    and how often they are accessed.  The paper's register complexity [r] of
    an algorithm is exactly [Memory.registers] of the memory it ran against;
    its step complexity is counted per process by {!Runtime}. *)

type t

val create : unit -> t
(** A fresh memory with no registers. *)

val registers : t -> int
(** Number of registers allocated so far (the paper's [r]). *)

val reads : t -> int
(** Total committed read operations across all registers. *)

val writes : t -> int
(** Total committed write operations across all registers. *)

val fresh_id : t -> int
(** Allocate a new register identifier.  Used by {!Register.create};
    protocols do not call this directly. *)

val note_read : t -> unit
(** Record one committed read.  Called by the runtime. *)

val note_write : t -> unit
(** Record one committed write.  Called by the runtime. *)

val register_fingerprint : t -> (unit -> int) -> unit
(** Register a thunk hashing one register's current value.  Called by
    {!Register.create}; protocols do not call this directly. *)

val register_name : t -> int -> string -> unit
(** Record the diagnostic label of a register id.  Called by
    {!Register.create}; protocols do not call this directly. *)

val name_of : t -> int -> string
(** Diagnostic label of a register id ([reg<id>] if unknown) — used by
    value-carrying traces and their exports. *)

val fingerprint : t -> int
(** Combined hash of every register's current value (in allocation
    order), the register-values half of the explorer's [`State_hash]
    memoization key.  O(registers). *)
