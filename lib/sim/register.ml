type 'a t = {
  id : int;
  name : string;
  memory : Memory.t;
  mutable value : 'a;
  mutable reads : int;
  mutable writes : int;
  mutable printer : ('a -> string) option;
}

let create memory ~name init =
  let t =
    {
      id = Memory.fresh_id memory;
      name;
      memory;
      value = init;
      reads = 0;
      writes = 0;
      printer = None;
    }
  in
  Memory.register_fingerprint memory (fun () -> Hashtbl.hash t.value);
  Memory.register_name memory t.id name;
  t

let set_printer t pr = t.printer <- Some pr

let render t v =
  match t.printer with
  | Some pr -> pr v
  | None -> Printf.sprintf "#%06x" (Hashtbl.hash v land 0xFFFFFF)

let id t = t.id
let name t = t.name
let peek t = t.value
let poke t v = t.value <- v
let reads t = t.reads
let writes t = t.writes
let memory t = t.memory

let commit_read t =
  t.reads <- t.reads + 1;
  Memory.note_read t.memory;
  t.value

let commit_write t v =
  t.writes <- t.writes + 1;
  Memory.note_write t.memory;
  t.value <- v
