(* Fixed-size domain pool with a deterministic, order-preserving map.

   Work items are claimed off a shared atomic cursor, but each item's
   result is written into the slot matching its *input* position, so the
   caller sees results in input order no matter which domain finished
   first.  That slot discipline — plus callers only sharing immutable
   shard descriptors with the workers — is what makes every `-j N`
   report mergeable into a byte-identical `-j 1` document (DESIGN.md
   §10). *)

let default_jobs () = Domain.recommended_domain_count ()

let map ?(jobs = 1) f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let running = ref true in
      while !running do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then running := false
        else
          results.(i) <-
            Some (match f arr.(i) with v -> Ok v | exception e -> Error e)
      done
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (* re-raise the failure of the *earliest* item, not the first domain
       to trip — exceptions surface deterministically too *)
    Array.iter
      (function Some (Error e) -> raise e | Some (Ok _) | None -> ())
      results;
    Array.to_list
      (Array.map
         (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
         results)
  end
