type op_kind = Read of int | Write of int

type status = Runnable | Done | Crashed

type lifecycle = Spawned | Finished | Killed

exception Stalled
exception Crash_signal

type pending = {
  kind : op_kind;
  apply : unit -> unit;  (* commit the memory effect and resume the fiber *)
  kill : unit -> unit;  (* unwind the fiber with Crash_signal *)
}

type proc = {
  pid : int;
  name : string;
  owner : t;
      (* the runtime that spawned this process — lets ambient observers
         (spans, probes) attribute events to the right runtime even when
         several runtimes are live in one domain *)
  mutable status : status;
  mutable pending_op : pending option;
  mutable steps : int;
  mutable rpos : int;
      (* position in the runnable index, or -1 when not runnable *)
  mutable lsig : int;
      (* running signature of committed operations; only maintained when
         the runtime has state tracking enabled (explorer memoization) *)
}

and t = {
  memory : Memory.t;
  mutable proc_tbl : proc array;  (* dense by pid; first [nprocs] valid *)
  mutable nprocs : int;
  mutable run_idx : proc array;
      (* pid-sorted dense index of runnable processes; first [nrunnable]
         valid.  Pids only grow, and a process leaves the set exactly once
         (Done or Crashed), so appends keep it sorted and the one
         shift-remove per process is amortized O(1) per commit. *)
  mutable nrunnable : int;
  mutable commits : int;
  mutable max_step : int;
  mutable track_sigs : bool;
  mutable hooks : (proc -> op_kind -> unit) list;
  mutable life_hooks : (proc -> lifecycle -> unit) list;
  mutable capture_values : bool;
      (* when set (a value-carrying trace is attached), each commit renders
         the value read or written into [last_value]; off by default so the
         untraced commit loop pays one branch, nothing more *)
  mutable last_value : string;
}

type _ Effect.t +=
  | E_read : 'a Register.t -> 'a Effect.t
  | E_write : 'a Register.t * 'a -> unit Effect.t

let create memory =
  {
    memory;
    proc_tbl = [||];
    nprocs = 0;
    run_idx = [||];
    nrunnable = 0;
    commits = 0;
    max_step = 0;
    track_sigs = false;
    hooks = [];
    life_hooks = [];
    capture_values = false;
    last_value = "";
  }

let memory t = t.memory

let sig_mix h x = ((h * 0x01000193) + x + 0x517cc1b7) land max_int

(* The process whose body is executing right now.  Each domain runs at
   most one fiber at a time, so one save/restore slot per domain suffices
   even across nested runtimes — but the slot must be domain-local, not
   process-global: with a shared ref, concurrent runtimes on different
   domains would clobber each other's attribution (and racing writes to
   an unsynchronized ref are undefined under OCaml 5 domains). *)
let active_key : proc option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_proc () = !(Domain.DLS.get active_key)

let with_active p f =
  let slot = Domain.DLS.get active_key in
  let saved = !slot in
  slot := Some p;
  Fun.protect ~finally:(fun () -> slot := saved) f

let read r = Effect.perform (E_read r)
let write r v = Effect.perform (E_write (r, v))

let fire_lifecycle t p lc =
  match t.life_hooks with
  | [] -> ()
  | hooks -> List.iter (fun hook -> hook p lc) hooks

let idx_add t p =
  (if t.nrunnable = Array.length t.run_idx then
     let bigger = Array.make (max 8 (2 * t.nrunnable)) p in
     Array.blit t.run_idx 0 bigger 0 t.nrunnable;
     t.run_idx <- bigger);
  t.run_idx.(t.nrunnable) <- p;
  p.rpos <- t.nrunnable;
  t.nrunnable <- t.nrunnable + 1

let idx_remove t p =
  if p.rpos >= 0 then begin
    (* shift left so the index stays pid-sorted; each process is removed
       at most once, so the total shifting work is O(nprocs * nrunnable)
       per execution — negligible next to the commits it serves *)
    for i = p.rpos to t.nrunnable - 2 do
      let q = t.run_idx.(i + 1) in
      t.run_idx.(i) <- q;
      q.rpos <- i
    done;
    t.nrunnable <- t.nrunnable - 1;
    p.rpos <- -1
  end

let spawn t ~name body =
  let p =
    {
      pid = t.nprocs;
      name;
      owner = t;
      status = Runnable;
      pending_op = None;
      steps = 0;
      rpos = -1;
      lsig = 0;
    }
  in
  (if t.nprocs = Array.length t.proc_tbl then
     let bigger = Array.make (max 8 (2 * t.nprocs)) p in
     Array.blit t.proc_tbl 0 bigger 0 t.nprocs;
     t.proc_tbl <- bigger);
  t.proc_tbl.(t.nprocs) <- p;
  t.nprocs <- t.nprocs + 1;
  let open Effect.Deep in
  let handler : (unit, unit) handler =
    {
      retc =
        (fun () ->
          p.status <- Done;
          p.pending_op <- None);
      exnc =
        (fun e ->
          match e with
          | Crash_signal ->
              p.status <- Crashed;
              p.pending_op <- None
          | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_read r ->
              Some
                (fun (k : (a, unit) continuation) ->
                  p.pending_op <-
                    Some
                      {
                        kind = Read (Register.id r);
                        apply =
                          (fun () ->
                            p.pending_op <- None;
                            p.steps <- p.steps + 1;
                            let v = Register.commit_read r in
                            if t.capture_values then
                              t.last_value <- Register.render r v;
                            if t.track_sigs then
                              p.lsig <-
                                sig_mix (sig_mix p.lsig (Register.id r))
                                  (Hashtbl.hash v);
                            with_active p (fun () -> continue k v));
                        kill = (fun () -> with_active p (fun () -> discontinue k Crash_signal));
                      })
          | E_write (r, v) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  p.pending_op <-
                    Some
                      {
                        kind = Write (Register.id r);
                        apply =
                          (fun () ->
                            p.pending_op <- None;
                            p.steps <- p.steps + 1;
                            Register.commit_write r v;
                            if t.capture_values then
                              t.last_value <- Register.render r v;
                            if t.track_sigs then
                              p.lsig <-
                                sig_mix (sig_mix p.lsig (Register.id r)) (-1);
                            with_active p (fun () -> continue k ()));
                        kill = (fun () -> with_active p (fun () -> discontinue k Crash_signal));
                      })
          | _ -> None);
    }
  in
  with_active p (fun () -> match_with body () handler);
  if p.status = Runnable then idx_add t p;
  fire_lifecycle t p Spawned;
  (match p.status with
  | Runnable -> ()
  | Done -> fire_lifecycle t p Finished
  | Crashed -> fire_lifecycle t p Killed);
  p

let nprocs t = t.nprocs

let proc_by_pid t pid =
  if pid < 0 || pid >= t.nprocs then
    invalid_arg (Printf.sprintf "Runtime.proc_by_pid: no process with pid %d" pid)
  else t.proc_tbl.(pid)

let procs t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.proc_tbl.(i) :: acc) in
  go (t.nprocs - 1) []

let pid p = p.pid
let proc_name p = p.name
let owner p = p.owner
let status p = p.status
let steps p = p.steps

let pending p =
  match p.pending_op with None -> None | Some pd -> Some pd.kind

let commit t p =
  match p.status, p.pending_op with
  | Runnable, Some pd ->
      t.commits <- t.commits + 1;
      pd.apply ();
      if p.steps > t.max_step then t.max_step <- p.steps;
      if p.status <> Runnable then idx_remove t p;
      List.iter (fun hook -> hook p pd.kind) t.hooks;
      (match p.status with
      | Runnable -> ()
      | Done -> fire_lifecycle t p Finished
      | Crashed -> fire_lifecycle t p Killed)
  | _, _ -> invalid_arg "Runtime.commit: process is not runnable"

let crash t p =
  match p.status, p.pending_op with
  | Runnable, Some pd ->
      p.pending_op <- None;
      pd.kill ();
      if p.status <> Runnable then idx_remove t p;
      fire_lifecycle t p Killed
  | Runnable, None ->
      (* spawned but suspended state lost: mark directly *)
      p.status <- Crashed;
      idx_remove t p;
      fire_lifecycle t p Killed
  | (Done | Crashed), _ -> ()

(* {2 Runnable-index queries — the scheduler/explorer hot path} *)

let num_runnable t = t.nrunnable
let all_quiet t = t.nrunnable = 0

let nth_runnable t k =
  if k < 0 || k >= t.nrunnable then
    invalid_arg (Printf.sprintf "Runtime.nth_runnable: index %d out of %d" k t.nrunnable)
  else t.run_idx.(k)

let first_runnable t = if t.nrunnable = 0 then None else Some t.run_idx.(0)

let next_runnable_after t pid =
  (* binary search in the pid-sorted index for the least pid' > pid *)
  let lo = ref 0 and hi = ref t.nrunnable in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.run_idx.(mid).pid <= pid then lo := mid + 1 else hi := mid
  done;
  if !lo < t.nrunnable then Some t.run_idx.(!lo) else None

let runnable_rank p = if p.rpos >= 0 then Some p.rpos else None

let iter_runnable t f =
  for i = 0 to t.nrunnable - 1 do
    f t.run_idx.(i)
  done

let runnable t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.run_idx.(i) :: acc) in
  go (t.nrunnable - 1) []

let commits t = t.commits
let max_steps t = t.max_step

(* {2 State signatures (explorer memoization)} *)

let enable_state_tracking t = t.track_sigs <- true

let state_signature t =
  let h = ref (Memory.fingerprint t.memory) in
  for i = 0 to t.nprocs - 1 do
    let p = t.proc_tbl.(i) in
    let s = match p.status with Runnable -> 1 | Done -> 2 | Crashed -> 3 in
    h := sig_mix (sig_mix !h s) p.lsig
  done;
  !h

let run ?max_commits t policy =
  let budget = ref max_commits in
  let rec loop () =
    (match !budget with
    | Some b when b <= 0 -> if not (all_quiet t) then raise Stalled
    | _ -> (
        match policy t with
        | None -> ()
        | Some p ->
            commit t p;
            (match !budget with
            | Some b -> budget := Some (b - 1)
            | None -> ());
            loop ()))
  in
  loop ()

let on_commit t hook = t.hooks <- hook :: t.hooks
let on_lifecycle t hook = t.life_hooks <- hook :: t.life_hooks
let set_value_capture t flag = t.capture_values <- flag
let last_value t = t.last_value
