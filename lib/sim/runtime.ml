type op_kind = Read of int | Write of int

type status = Runnable | Done | Crashed

exception Stalled
exception Crash_signal

type pending = {
  kind : op_kind;
  apply : unit -> unit;  (* commit the memory effect and resume the fiber *)
  kill : unit -> unit;  (* unwind the fiber with Crash_signal *)
}

type proc = {
  pid : int;
  name : string;
  mutable status : status;
  mutable pending_op : pending option;
  mutable steps : int;
}

type t = {
  memory : Memory.t;
  mutable procs_rev : proc list;
  mutable nprocs : int;
  mutable commits : int;
  mutable hooks : (proc -> op_kind -> unit) list;
}

type _ Effect.t +=
  | E_read : 'a Register.t -> 'a Effect.t
  | E_write : 'a Register.t * 'a -> unit Effect.t

let create memory = { memory; procs_rev = []; nprocs = 0; commits = 0; hooks = [] }

let memory t = t.memory

(* The process whose body is executing right now.  The simulator is
   single-threaded and only ever runs one fiber at a time, so a single
   save/restore slot suffices even across nested runtimes. *)
let active : proc option ref = ref None

let current_proc () = !active

let with_active p f =
  let saved = !active in
  active := Some p;
  Fun.protect ~finally:(fun () -> active := saved) f

let read r = Effect.perform (E_read r)
let write r v = Effect.perform (E_write (r, v))

let spawn t ~name body =
  let p =
    { pid = t.nprocs; name; status = Runnable; pending_op = None; steps = 0 }
  in
  t.procs_rev <- p :: t.procs_rev;
  t.nprocs <- t.nprocs + 1;
  let open Effect.Deep in
  let handler : (unit, unit) handler =
    {
      retc =
        (fun () ->
          p.status <- Done;
          p.pending_op <- None);
      exnc =
        (fun e ->
          match e with
          | Crash_signal ->
              p.status <- Crashed;
              p.pending_op <- None
          | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_read r ->
              Some
                (fun (k : (a, unit) continuation) ->
                  p.pending_op <-
                    Some
                      {
                        kind = Read (Register.id r);
                        apply =
                          (fun () ->
                            p.pending_op <- None;
                            p.steps <- p.steps + 1;
                            let v = Register.commit_read r in
                            with_active p (fun () -> continue k v));
                        kill = (fun () -> with_active p (fun () -> discontinue k Crash_signal));
                      })
          | E_write (r, v) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  p.pending_op <-
                    Some
                      {
                        kind = Write (Register.id r);
                        apply =
                          (fun () ->
                            p.pending_op <- None;
                            p.steps <- p.steps + 1;
                            Register.commit_write r v;
                            with_active p (fun () -> continue k ()));
                        kill = (fun () -> with_active p (fun () -> discontinue k Crash_signal));
                      })
          | _ -> None);
    }
  in
  with_active p (fun () -> match_with body () handler);
  p

let procs t = List.rev t.procs_rev
let pid p = p.pid
let proc_name p = p.name
let status p = p.status
let steps p = p.steps

let pending p =
  match p.pending_op with None -> None | Some pd -> Some pd.kind

let commit t p =
  match p.status, p.pending_op with
  | Runnable, Some pd ->
      t.commits <- t.commits + 1;
      pd.apply ();
      List.iter (fun hook -> hook p pd.kind) t.hooks
  | _, _ -> invalid_arg "Runtime.commit: process is not runnable"

let crash _t p =
  match p.status, p.pending_op with
  | Runnable, Some pd ->
      p.pending_op <- None;
      pd.kill ()
  | Runnable, None ->
      (* spawned but suspended state lost: mark directly *)
      p.status <- Crashed
  | (Done | Crashed), _ -> ()

let runnable t = List.filter (fun p -> p.status = Runnable) (procs t)
let all_quiet t = runnable t = []
let commits t = t.commits

let max_steps t =
  List.fold_left (fun acc p -> max acc p.steps) 0 (procs t)

let run ?max_commits t policy =
  let budget = ref max_commits in
  let rec loop () =
    (match !budget with
    | Some b when b <= 0 -> if not (all_quiet t) then raise Stalled
    | _ -> (
        match policy t with
        | None -> ()
        | Some p ->
            commit t p;
            (match !budget with
            | Some b -> budget := Some (b - 1)
            | None -> ());
            loop ()))
  in
  loop ()

let on_commit t hook = t.hooks <- hook :: t.hooks
