(** Value-carrying execution traces.

    A trace records the full observable history of an execution: every
    committed operation in linearization order — {e with the value read or
    written} — plus process lifecycle events (spawn, completion, crash).
    This is the forensic artifact behind the explorer's counterexamples
    and the [exsel-trace/1] / Chrome trace-event exports
    ({!Exsel_obs.Trace_export}): a violation or a hot register is
    explainable from the history alone, without re-running anything.

    Values render through the per-register {!Register.set_printer} hook,
    falling back to a stable 24-bit fingerprint hash ([#a3f2d1]).
    Recording costs one list cell per event and one value rendering per
    commit; {e nothing} is paid when no trace is attached (the runtime's
    value capture stays off — a single dead branch per commit). *)

type kind =
  | Read of { reg : int; reg_name : string; value : string }
      (** committed read: the value returned *)
  | Write of { reg : int; reg_name : string; value : string }
      (** committed write: the value stored *)
  | Spawn  (** process created *)
  | Done  (** body returned *)
  | Crash  (** crashed by the scheduler *)

type event = {
  index : int;  (** position in the trace, from 0 *)
  time : int;  (** global commit clock ({!Runtime.commits}) at recording *)
  pid : int;
  proc_name : string;
  kind : kind;
  step : int;  (** the process's local step count after this event *)
}

type t

val attach : Runtime.t -> t
(** Start recording the runtime's commits and lifecycle transitions (from
    now on), and enable value capture on the runtime.  Processes already
    spawned get their [Spawn] (and, if applicable, [Done]/[Crash]) events
    synthesized at attach time, so replay-with-trace of a schedule against
    a freshly built instance is reproducible event-for-event. *)

val events : t -> event list
(** Events recorded so far, oldest first.  The forward list is cached and
    invalidated on append: repeated calls between commits are O(1). *)

val length : t -> int
(** Number of events recorded so far.  O(1). *)

val by_process : t -> int -> event list
(** Events of one process, oldest first.  Single pass, no intermediate
    list. *)

val writes_to : t -> int -> event list
(** Write events targeting a register id, oldest first.  Single pass, no
    intermediate list. *)

val pp_event : Format.formatter -> event -> unit
(** One event on one line: index, commit clock, process, kind, register
    and value. *)

val pp : Format.formatter -> t -> unit
(** Full trace, one event per line. *)
