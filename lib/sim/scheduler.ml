type policy = Runtime.t -> Runtime.proc option

let round_robin () =
  let last = ref (-1) in
  fun t ->
    if Runtime.num_runnable t = 0 then None
    else
      let p =
        match Runtime.next_runnable_after t !last with
        | Some p -> p
        | None -> Runtime.nth_runnable t 0 (* wrap the cursor *)
      in
      last := Runtime.pid p;
      Some p

let random rng t =
  match Runtime.num_runnable t with
  | 0 -> None
  | n -> Some (Runtime.nth_runnable t (Rng.int rng n))

let sequential () t = Runtime.first_runnable t

let with_crashes ~crash_at inner =
  let plan = ref crash_at in
  fun t ->
    let now = Runtime.commits t in
    let due, later = List.partition (fun (c, _) -> c <= now) !plan in
    plan := later;
    List.iter
      (fun (_, pid) ->
        if pid >= 0 && pid < Runtime.nprocs t then
          Runtime.crash t (Runtime.proc_by_pid t pid))
      due;
    inner t

let random_crashes rng ~victims ~prob inner t =
  for pid = 0 to Runtime.nprocs t - 1 do
    let p = Runtime.proc_by_pid t pid in
    if
      Runtime.status p = Runtime.Runnable
      && List.mem pid victims
      && Rng.float rng < prob
    then Runtime.crash t p
  done;
  inner t

let run ?max_commits t policy = Runtime.run ?max_commits t policy

let run_for t ~commits policy =
  try Runtime.run ~max_commits:commits t policy with Runtime.Stalled -> ()
